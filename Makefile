.PHONY: check test bench

# Tier-1 gate: build + vet + full suite under -race (includes the engine
# goroutine-leak and cancellation tests).
check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...
