.PHONY: check test bench lint fuzz perf history-check

# Tier-1 gate: build + vet + lint + full suite under -race (includes the
# engine goroutine-leak and cancellation tests), fuzz smoke, perf smoke.
check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Pinned staticcheck + govulncheck (MLA_SKIP_LINT=1 skips; offline machines
# warn and skip unless MLA_REQUIRE_LINT=1).
lint:
	./scripts/lint.sh

# The same fuzz smoke check.sh runs: coverage-guided WAL recovery fuzzing.
fuzz:
	go test ./internal/wal/ -run FuzzWALRecovery -fuzz FuzzWALRecovery -fuzztime 10s

# The history-oracle slice of check.sh: record a live engine run as an
# event history, check it offline with the black-box checker, verify the
# known-violating histories are rejected, and run the E20
# checker-vs-scheduler cross-check.
history-check:
	go run ./cmd/mlasim -engine -history /tmp/mla_check_history.json > /dev/null
	go run ./cmd/mlacheck -history /tmp/mla_check_history.json
	@for v in internal/history/testdata/violation_*.json; do \
		if go run ./cmd/mlacheck -history "$$v" > /dev/null 2>&1; then \
			echo "$$v should have been rejected" >&2; exit 1; \
		fi; \
	done
	go run ./cmd/mlabench -exp E20

# The same perf smoke check.sh runs: quick E19 sweep under -race with
# telemetry on; trace and report land in /tmp.
perf:
	go run -race ./cmd/mlabench -perf -quick -out /tmp/mla_perf_smoke.json \
		-telemetry -trace-out /tmp/mla_perf_smoke_trace.json
