#!/usr/bin/env sh
# Tier-1 gate: build, vet, and the full test suite under the race detector
# (which exercises the engine's leak-free shutdown guarantees), then a short
# coverage-guided fuzz smoke over WAL recovery (every log prefix must be a
# consistent recovery input; recovery must be idempotent).
set -eu
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
go test -race ./...
go test ./internal/wal/ -run FuzzWALRecovery -fuzz FuzzWALRecovery -fuzztime 10s
