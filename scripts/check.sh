#!/usr/bin/env sh
# Tier-1 gate: build, vet, lint, and the full test suite under the race
# detector (which exercises the engine's leak-free shutdown guarantees),
# then a short coverage-guided fuzz smoke over WAL recovery (every log
# prefix must be a consistent recovery input; recovery must be idempotent).
set -eu
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
# Pinned staticcheck + govulncheck; MLA_SKIP_LINT=1 skips, offline machines
# warn-and-skip unless MLA_REQUIRE_LINT=1 (CI sets it).
./scripts/lint.sh
go test -race ./...
go test ./internal/wal/ -run FuzzWALRecovery -fuzz FuzzWALRecovery -fuzztime 10s
# Same recovery law over the real medium: a file-backed log whose tail is
# truncated or bit-flipped at an arbitrary point must mount to a consistent
# prefix, idempotently, with the in-memory medium as the oracle.
go test ./internal/wal/ -run FuzzFileWALRecovery -fuzz FuzzFileWALRecovery -fuzztime 10s
# Checker-vs-scheduler fuzz smoke: the black-box history checker must agree
# with the Theorem 2 analysis on random interleavings of the banking
# workload.
go test ./internal/history/ -run FuzzHistoryCheck -fuzz FuzzHistoryCheck -fuzztime 10s
# History oracle, end to end: a live engine run recorded as an event
# history must check clean offline, known-violating histories must be
# rejected (exit 2), and E20 cross-checks both checkers over mixed-level
# runs on every control — a disagreement fails the gate.
go run ./cmd/mlasim -engine -history /tmp/mla_check_history.json > /dev/null
go run ./cmd/mlacheck -history /tmp/mla_check_history.json
for v in internal/history/testdata/violation_*.json; do
    if go run ./cmd/mlacheck -history "$v" > /dev/null 2>&1; then
        echo "check.sh: $v should have been rejected" >&2
        exit 1
    fi
done
go run ./cmd/mlabench -exp E20
# Service front-end smoke: mlaserve serves a real listener, its own load
# client offers an open-loop Poisson load with injected disconnects, a real
# SIGTERM lands mid-run, and the drain is audited — every 200-acked
# transaction durable and committed in the recorded history, which must
# then pass the black-box checker standalone.
go run ./cmd/mlaserve -selftest -sessions 20 -txns 400 -rate 40 \
    -disconnect-pct 5 -drain-after 250ms -history /tmp/mla_serve_history.json > /dev/null
go run ./cmd/mlacheck -history /tmp/mla_serve_history.json
# Crash-restart durability smoke: a real mlaserve process over an on-disk
# WAL, SIGKILLed mid-load twice with injected disk faults; every 200-acked
# transaction must be re-verifiable after each restart and the multi-boot
# history spool must pass the black-box checker (the nightly runs the full
# five-round soak).
rm -rf /tmp/mla_soak_smoke
go run ./cmd/mlaserve -soak -soak-rounds 2 -soak-txns 200 -soak-dir /tmp/mla_soak_smoke \
    -checkpoint-every 64 -disk-write-err 0.02 -disk-short-write 0.02 -disk-sync-err 0.01 > /dev/null
go run ./cmd/mlacheck -history /tmp/mla_soak_smoke/history.spool
# Perf-path smoke under the race detector: the striped-lock engine and the
# group-commit pipeline at full concurrency, asserting the optimized paths
# leave commit outcomes unchanged, with telemetry recording on so the
# observer path is race-checked too. The reports land in /tmp, not the
# repo; CI uploads the trace as an artifact.
go run -race ./cmd/mlabench -perf -quick -out /tmp/mla_perf_smoke.json \
    -telemetry -trace-out /tmp/mla_perf_smoke_trace.json
# Open-loop load smoke + bench regression gate: a Poisson cell against the
# resident engine with coordinated-omission-safe latency accounting, gated
# against the last entry recorded in BENCH_HISTORY.json — a >10% throughput
# or p99 regression (past an absolute noise floor) fails the push. CI
# uploads the appended history as a per-push artifact.
./scripts/bench_gate.sh
