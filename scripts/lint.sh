#!/usr/bin/env sh
# Static-analysis gate: staticcheck (pinned) and govulncheck (pinned).
#
#   MLA_SKIP_LINT=1     skip entirely (e.g. a quick local iteration)
#   MLA_REQUIRE_LINT=1  fail if the tools cannot be installed (CI sets this;
#                       the default tolerates offline machines, which cannot
#                       `go install` missing tools, by warning and skipping)
#
# The pins keep local runs and CI on identical tool versions, so a finding
# is reproducible and an upgrade is an explicit diff to this file.
set -eu
cd "$(dirname "$0")/.."

STATICCHECK_VERSION="2025.1.1"
GOVULNCHECK_VERSION="v1.1.4"

if [ "${MLA_SKIP_LINT:-0}" = "1" ]; then
    echo "lint: skipped (MLA_SKIP_LINT=1)"
    exit 0
fi

# Install the pinned tools into a private GOBIN so the gate never depends on
# (or clobbers) whatever versions the developer has on PATH. Installer
# output is captured, not discarded: when MLA_REQUIRE_LINT=1 makes a failed
# download fatal, the actual `go install` error must reach the CI log.
TOOLBIN="${TMPDIR:-/tmp}/mla-lint-bin"
INSTALL_LOG="$TOOLBIN/install.log"
mkdir -p "$TOOLBIN"
: > "$INSTALL_LOG"

install_tool() {
    pkg="$1"
    bin="$TOOLBIN/$2"
    [ -x "$bin" ] && return 0
    if ! GOBIN="$TOOLBIN" go install "$pkg" >>"$INSTALL_LOG" 2>&1; then
        return 1
    fi
}

missing=""
install_tool "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" staticcheck || missing="staticcheck $missing"
install_tool "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" govulncheck || missing="govulncheck $missing"

if [ -n "$missing" ]; then
    if [ "${MLA_REQUIRE_LINT:-0}" = "1" ]; then
        echo "lint: FAILED to install: ${missing% } (MLA_REQUIRE_LINT=1 makes this fatal)" >&2
        if [ -s "$INSTALL_LOG" ]; then
            echo "lint: go install output:" >&2
            cat "$INSTALL_LOG" >&2
        fi
        exit 1
    fi
    echo "lint: warning: could not install: ${missing% } — skipping (offline?); set MLA_REQUIRE_LINT=1 to make this fatal" >&2
    exit 0
fi

echo "lint: staticcheck $STATICCHECK_VERSION"
"$TOOLBIN/staticcheck" ./...
echo "lint: govulncheck $GOVULNCHECK_VERSION"
"$TOOLBIN/govulncheck" ./...
