#!/usr/bin/env sh
# Bench regression gate: run one open-loop load cell against the single
# store and one against the partitioned store, append each mla-bench/v1
# report to BENCH_HISTORY.json keyed by the current commit, and fail when
# throughput drops or p99 rises more than 10% (plus an absolute slack floor,
# so a small CI cell's noise cannot flake a push) versus the last recorded
# entry of the same lineage — the history gate keys on the report's shard
# signature, so the sharded cell never gates against the single-store cell.
# The first run on a fresh history passes by default and seeds it.
#
# Tunables (environment):
#   BENCH_RATE      offered rate, txns/s           (default 60000)
#   BENCH_DURATION  cell length                    (default 500ms)
#   BENCH_SLO       p99 objective; a miss fails    (default 50ms)
#   BENCH_HISTORY   history file                   (default BENCH_HISTORY.json)
#   BENCH_SHARDS    partitioned cell's shard count (default 4; 0 skips it)
set -eu
cd "$(dirname "$0")/.."
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

run_cell() {
    go run ./cmd/mlabench \
        -rate "${BENCH_RATE:-60000}" \
        -duration "${BENCH_DURATION:-500ms}" \
        -slo-p99 "${BENCH_SLO:-50ms}" \
        -history "${BENCH_HISTORY:-BENCH_HISTORY.json}" \
        -commit "$commit" \
        -gate "$@"
}

echo "bench gate: single-store load cell"
run_cell

shards="${BENCH_SHARDS:-4}"
if [ "$shards" -gt 1 ]; then
    echo "bench gate: sharded load cell (shards=$shards)"
    run_cell -shards "$shards"
fi
