#!/usr/bin/env sh
# Bench regression gate: run one open-loop load cell, append the mla-bench/v1
# report to BENCH_HISTORY.json keyed by the current commit, and fail when
# throughput drops or p99 rises more than 10% (plus an absolute slack floor,
# so a small CI cell's noise cannot flake a push) versus the last recorded
# load entry. The first run on a fresh history passes by default and seeds it.
#
# Tunables (environment):
#   BENCH_RATE      offered rate, txns/s           (default 60000)
#   BENCH_DURATION  cell length                    (default 500ms)
#   BENCH_SLO       p99 objective; a miss fails    (default 50ms)
#   BENCH_HISTORY   history file                   (default BENCH_HISTORY.json)
set -eu
cd "$(dirname "$0")/.."
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
exec go run ./cmd/mlabench \
    -rate "${BENCH_RATE:-60000}" \
    -duration "${BENCH_DURATION:-500ms}" \
    -slo-p99 "${BENCH_SLO:-50ms}" \
    -history "${BENCH_HISTORY:-BENCH_HISTORY.json}" \
    -commit "$commit" \
    -gate
