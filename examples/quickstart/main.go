// Quickstart: define a multilevel atomicity specification, record an
// interleaved execution, and ask the three questions the library answers —
// is it atomic, is it correctable, and what is a witness.
//
// The scenario is the paper's smallest interesting case: two funds
// transfers from different families plus a bank audit. Transfers expose a
// breakpoint between their withdrawal and deposit phases where other
// customers may interleave; the audit may not interleave with anything.
package main

import (
	"fmt"
	"log"

	"mla"
)

func main() {
	// 1. Transactions: two transfers (withdraw, withdraw, deposit, deposit)
	//    and an audit reading the three "hot" accounts.
	t1 := &mla.Scripted{Txn: "t1", Ops: []mla.Op{
		mla.Add("A", -10), mla.Add("B", -10), mla.Add("C", 10), mla.Add("D", 10),
	}}
	t2 := &mla.Scripted{Txn: "t2", Ops: []mla.Op{
		mla.Add("A", -5), mla.Add("C", -5), mla.Add("E", 5), mla.Add("F", 5),
	}}
	audit := &mla.Scripted{Txn: "audit", Ops: []mla.Op{
		mla.Read("A"), mla.Read("B"), mla.Read("C"),
	}}

	// 2. The nest: 3 levels — everything (1), customers {t1,t2} vs the
	//    audit (2), singletons (3).
	n := mla.NewNest(3)
	n.Add("t1", "cust")
	n.Add("t2", "cust")
	n.Add("audit", "audit")

	// 3. Breakpoints: a transfer's boundary after its second step (the end
	//    of the withdrawal phase) has coarseness 2 — other customers may
	//    interleave there; all other boundaries admit nobody.
	bp := mla.BreakpointFunc(3, func(t mla.TxnID, prefix []mla.Step) int {
		if t != "audit" && len(prefix) == 2 {
			return 2
		}
		return 3
	})
	spec, err := mla.NewSpec(n, bp)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Record an execution: the transfers interleave at their phase
	//    boundaries, then the audit runs.
	vals := map[mla.EntityID]mla.Value{"A": 100, "B": 100, "C": 100, "D": 100, "E": 100, "F": 100}
	exec, err := mla.Interleave(
		[]mla.Program{t1, t2, audit}, vals,
		[]int{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recorded execution:")
	for i, s := range exec {
		fmt.Printf("  %2d  %s\n", i, s)
	}

	// 5. Ask the three questions.
	atomic, err := spec.Atomic(exec)
	if err != nil {
		log.Fatal(err)
	}
	correctable, err := spec.Correctable(exec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmultilevel atomic: %v\n", atomic)
	fmt.Printf("correctable:       %v\n", correctable)

	// The same interleaving is NOT serializable: t1 precedes t2 on A but
	// follows it on C.
	ser := mla.Serializability([]mla.TxnID{"t1", "t2", "audit"})
	serOK, err := ser.Correctable(exec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serializable:      %v  (multilevel atomicity admits more)\n", serOK)

	// 6. A witness: an equivalent execution that is atomic as recorded.
	w, ok, err := spec.Witness(exec)
	if err != nil || !ok {
		log.Fatalf("witness: ok=%v err=%v", ok, err)
	}
	fmt.Println("\nwitness (equivalent, multilevel atomic):")
	for i, s := range w {
		fmt.Printf("  %2d  %s\n", i, s)
	}
}
