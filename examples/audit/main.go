// Audit: the transfer/audit anomaly from the paper's introduction and from
// [FGL]. A transfer moves money in two phases (withdraw, then deposit); an
// audit that reads the accounts between the phases misses the money in
// transit. The example demonstrates:
//
//  1. without control, audits undercount or overcount;
//  2. under the prevention scheduler with the Section 4.2 banking
//     specification, audits are exact while transfers still interleave
//     with each other at their phase boundaries — the audit "does not stop
//     transactions in progress" any more than the criterion requires.
package main

import (
	"fmt"
	"log"

	"mla/internal/bank"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/serial"
	"mla/internal/sim"
)

func main() {
	// Part 1: the anomaly, hand-constructed. One transfer A→C, one audit.
	transfer := &bank.Transfer{
		Txn:     "xfer",
		Sources: []model.EntityID{"A"},
		Targets: [2]model.EntityID{"C", "D"},
		Amount:  100, Reserve: 1 << 30, // everything goes to C
	}
	audit := &bank.Audit{
		Txn:      "audit",
		Accounts: []model.EntityID{"A", "C", "D"},
		Result:   "auditres",
	}
	init := map[model.EntityID]model.Value{"A": 100, "C": 100, "D": 100, "auditres": 0}

	vals := copyVals(init)
	// Interleaving: withdraw; audit runs completely; deposit.
	exec, err := model.Interleave([]model.Program{transfer, audit}, vals,
		[]int{0, 1, 1, 1, 1, 0}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the anomaly — audit interleaved between withdraw and deposit:")
	for _, s := range exec {
		fmt.Printf("  %s\n", s)
	}
	fmt.Printf("audit recorded %d, true total is 300: $%d was in transit\n\n",
		vals["auditres"], 300-vals["auditres"])

	// Part 2: a full workload under the prevention scheduler. Audits are
	// exact, and the admitted execution is generally NOT serializable —
	// transfers did interleave.
	params := bank.DefaultParams()
	params.Transfers = 16
	params.BankAudits = 2
	params.CreditorAudits = 0
	params.Families = 2
	found := false
	for seed := int64(1); seed <= 10; seed++ {
		params.Seed = seed
		wl := bank.Generate(params)
		c := sched.NewPreventer(wl.Nest, wl.Spec)
		res, err := sim.Run(sim.DefaultConfig(), wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			log.Fatal(err)
		}
		inv := wl.Check(res.Exec, res.Final)
		if inv.AuditsInexact > 0 || !inv.ConservationOK {
			log.Fatalf("seed %d: invariants violated: %+v", seed, inv)
		}
		if !serial.Serializable(res.Exec) {
			fmt.Printf("under the prevention scheduler (seed %d):\n", seed)
			fmt.Printf("  audits exact:       %d/%d\n", inv.AuditsExact, inv.AuditsExact)
			fmt.Printf("  execution serializable: false — transfers interleaved at phase boundaries\n")
			fmt.Printf("  throughput:         %.2f txns/1000u (aborts %d)\n",
				res.Throughput(), res.Stats.Aborts)
			found = true
			break
		}
	}
	if !found {
		fmt.Println("all sampled runs happened to be serializable; audits were exact in every one")
	}
}

func copyVals(m map[model.EntityID]model.Value) map[model.EntityID]model.Value {
	out := make(map[model.EntityID]model.Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
