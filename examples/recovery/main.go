// Recovery: the banking workload survives crashes. The run executes on the
// WAL-backed store under the prevention scheduler; at each injected crash
// every piece of volatile state — the scheduler, in-flight transactions,
// cached values — is lost, recovery replays the log (redo + compensation,
// then loser undo), and a fresh round resumes whatever had not durably
// committed. Committed transfers are never redone; money is conserved and
// audits stay exact across any number of crashes.
package main

import (
	"fmt"
	"log"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/sched"
	"mla/internal/sim"
)

func main() {
	params := bank.DefaultParams()
	params.Transfers = 16
	params.BankAudits = 1
	params.CreditorAudits = 1
	wl := bank.Generate(params)

	crashes := []int64{120, 260, 400}
	fmt.Printf("running %d transactions with crashes at t=%v\n\n", len(wl.Programs), crashes)

	plan := sim.CrashPlan{
		Cfg:     sim.DefaultConfig(),
		Spec:    wl.Spec,
		Init:    wl.Init,
		Crashes: crashes,
		NewControl: func() sched.Control {
			return sched.NewPreventer(wl.Nest, wl.Spec)
		},
	}
	res, err := sim.RunWithCrashes(plan, wl.Programs)
	if err != nil {
		log.Fatal(err)
	}
	inv := wl.Check(res.Exec, res.Final)
	correctable, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounds:            %d (crashes + final)\n", res.Rounds)
	fmt.Printf("committed:         %d/%d (each exactly once)\n", res.Committed, len(wl.Programs))
	fmt.Printf("redone in-flight:  %d transaction attempts lost to crashes\n", res.RedoneTxns)
	fmt.Printf("money conserved:   %v (total %d)\n", inv.ConservationOK, inv.Expected)
	fmt.Printf("audits exact:      %d/%d\n", inv.AuditsExact, inv.AuditsExact+inv.AuditsInexact)
	fmt.Printf("stitched execution valid: %v, correctable: %v\n", inv.TraceValid == nil, correctable)
	if !inv.ConservationOK || inv.AuditsInexact > 0 || inv.TraceValid != nil || !correctable {
		log.Fatal("invariants violated")
	}
	fmt.Println("\nThe paper separates the unit of recovery from the unit of atomicity;")
	fmt.Println("here the WAL realizes it across crashes: durable commits are the only")
	fmt.Println("thing a crash cannot take away.")
}
