// Concurrent: the banking workload executed by the real goroutine-based
// engine (one goroutine per transaction, true parallelism) instead of the
// deterministic simulator. Each run is validated end to end: conservation,
// audit exactness, value-chain integrity, and the offline Theorem 2 check.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/engine"
	"mla/internal/sched"
	"mla/internal/serial"
)

func main() {
	params := bank.DefaultParams()
	params.Transfers = 20
	params.BankAudits = 2
	params.CreditorAudits = 2

	for _, name := range []string{"2pl", "prevent", "detect"} {
		wl := bank.Generate(params)
		var c sched.Control
		switch name {
		case "2pl":
			c = sched.NewTwoPhase()
		case "prevent":
			c = sched.NewPreventer(wl.Nest, wl.Spec)
		case "detect":
			c = sched.NewDetector(wl.Nest, wl.Spec)
		}
		res, err := engine.Run(context.Background(), engine.Config{Seed: 42, StepDelay: 300 * time.Microsecond}, wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		inv := wl.Check(res.Exec, res.Final)
		correctable, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			log.Fatal(err)
		}
		lat, ws := res.LatencySummary(), res.WaitSummary()
		fmt.Printf("%-8s committed=%d in %v  aborts=%d (cascades %d)  lat-p50=%dµs wait-p50=%dµs\n",
			name, res.Committed, res.Elapsed.Round(1000), res.Aborts, res.Cascades, lat.P50, ws.P50)
		fmt.Printf("         conserved=%v auditsExact=%d/%d correctable=%v serializable=%v groups=%v\n",
			inv.ConservationOK, inv.AuditsExact, inv.AuditsExact+inv.AuditsInexact,
			correctable, serial.Serializable(res.Exec), res.CommitGroups)
		if inv.TraceValid != nil {
			log.Fatalf("%s: trace invalid: %v", name, inv.TraceValid)
		}
		if !correctable {
			log.Fatalf("%s: admitted a non-correctable execution", name)
		}
	}
	fmt.Println("\nEvery control's concurrent run is Theorem-2 correctable; the MLA")
	fmt.Println("controls typically commit in groups (value-dependency chains) and")
	fmt.Println("admit non-serializable interleavings — run it a few times and watch")
	fmt.Println("the schedules change while the invariants never do.")
}
