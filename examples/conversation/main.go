// Conversation: two transactions exchange values through a mailbox in
// alternating turns — the application class the paper's Section 7 points to
// ("conversations between transactions [Ra]"). A completed conversation has
// cyclic information flow, so it can never be conflict serializable; under
// multilevel atomicity the pair forms one level-2 class and converses
// freely while staying atomic with respect to everyone else.
package main

import (
	"fmt"
	"log"

	"mla/internal/coherent"
	"mla/internal/conv"
	"mla/internal/sched"
	"mla/internal/serial"
	"mla/internal/sim"
	"mla/internal/viz"
)

func main() {
	params := conv.DefaultParams()
	params.Conversations = 2
	params.Rounds = 2

	fmt.Println("conversations under the MLA prevention scheduler:")
	wl := conv.Generate(params)
	res, err := sim.Run(sim.DefaultConfig(), wl.Programs,
		sched.NewPreventer(wl.Nest, wl.Spec), wl.Spec, wl.Init)
	if err != nil {
		log.Fatal(err)
	}
	out := wl.Check(res.Final)
	correctable, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  completed %d/%d parties, serializable=%v, correctable=%v\n\n",
		out.Completed, out.Completed+out.Failed, serial.Serializable(res.Exec), correctable)
	fmt.Println("timeline (polls elided by the scheduler's pacing):")
	fmt.Print(viz.Timeline(res.Exec, wl.Spec, viz.Options{Width: 28}))

	fmt.Println("\nthe same workload under strict 2PL:")
	wl2 := conv.Generate(params)
	res2, err := sim.Run(sim.DefaultConfig(), wl2.Programs,
		sched.NewTwoPhase(), wl2.Spec, wl2.Init)
	if err != nil {
		log.Fatal(err)
	}
	out2 := wl2.Check(res2.Final)
	fmt.Printf("  completed %d/%d parties — the first poller holds the mailbox\n",
		out2.Completed, out2.Completed+out2.Failed)
	fmt.Printf("  until transaction end, so the partner can never reply.\n")
}
