// CAD: Utopian Planning, Inc. (Section 2). Expert modifications organized
// by specialty and team run against the city plan while public-relations
// snapshots require a consistent view. The example sweeps the nest depth
// from k=2 (serializability: snapshots and mods all mutually atomic) to
// k=5 (the full trust hierarchy) under the prevention scheduler, then
// prints the Section 7 nested action tree of one multilevel atomic
// execution.
package main

import (
	"fmt"
	"log"
	"os"

	"mla/internal/cad"
	"mla/internal/coherent"
	"mla/internal/metrics"
	"mla/internal/nested"
	"mla/internal/sched"
	"mla/internal/sim"
)

func main() {
	params := cad.DefaultParams()
	params.Mods = 10
	params.Snapshots = 2
	wl := cad.Generate(params)

	table := metrics.NewTable(
		fmt.Sprintf("Utopian Planning: %d modifications, %d snapshots, %d specialties × %d teams",
			params.Mods, params.Snapshots, params.Specialties, params.TeamsPerSpecialty),
		"nest-depth", "throughput", "waits", "aborts", "snapshots-clean")

	for k := 2; k <= 5; k++ {
		n, spec := wl.WithDepth(k)
		c := sched.NewPreventer(n, spec)
		res, err := sim.Run(sim.DefaultConfig(), wl.Programs, c, spec, wl.Init)
		if err != nil {
			log.Fatalf("k=%d: %v", k, err)
		}
		inv := wl.Check(res.Exec, res.Final)
		if !inv.TotalsConsistent || inv.SnapshotsDirty > 0 || inv.TraceValid != nil {
			log.Fatalf("k=%d: invariants violated: %+v", k, inv)
		}
		table.Row(k, res.Throughput(), res.Control.Waits, res.Stats.Aborts, inv.SnapshotsClean)
	}
	table.Render(os.Stdout)

	// Section 7: organize a multilevel atomic execution as a nested action
	// tree. Take the k=5 run's execution, reorder it into its witness, and
	// build the tree.
	n5, spec5 := wl.WithDepth(5)
	c := sched.NewPreventer(n5, spec5)
	res, err := sim.Run(sim.DefaultConfig(), wl.Programs, c, spec5, wl.Init)
	if err != nil {
		log.Fatal(err)
	}
	chk, err := coherent.CheckExecution(res.Exec, n5, spec5)
	if err != nil {
		log.Fatal(err)
	}
	w, ok := chk.Witness()
	if !ok {
		log.Fatal("execution not correctable")
	}
	tree, err := nested.Build(w, n5, spec5)
	if err != nil {
		log.Fatal(err)
	}
	st := tree.Stats()
	fmt.Printf("\nnested action tree of the witness (Section 7): %d nodes, %d leaves, depth %d, max fanout %d\n",
		st.Nodes, st.Leaves, st.MaxDepth, st.MaxFanout)
	fmt.Println("top of the tree:")
	lines := 0
	for _, line := range splitLines(tree.String()) {
		fmt.Println(" ", line)
		lines++
		if lines >= 12 {
			fmt.Println("  ...")
			break
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
