// Banking: the paper's Big Bucks Bank (Sections 2 and 4) end to end. A
// generated workload of conditional funds transfers, bank audits, and
// creditor audits runs on the migrating-transaction simulator under each
// concurrency control; the run reports throughput, the conservation and
// audit-exactness invariants, and the offline Theorem 2 verdict. The "none"
// row shows what goes wrong without concurrency control: audits catch
// money in transit.
package main

import (
	"fmt"
	"log"
	"os"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/metrics"
	"mla/internal/sched"
	"mla/internal/sim"
)

func main() {
	params := bank.DefaultParams()
	params.Transfers = 20
	params.BankAudits = 2
	params.CreditorAudits = 3
	params.Families = 3

	table := metrics.NewTable(
		fmt.Sprintf("Big Bucks Bank: %d transfers, %d bank audits, %d creditor audits, %d families",
			params.Transfers, params.BankAudits, params.CreditorAudits, params.Families),
		"control", "throughput", "p99-latency", "aborts", "conserved", "audits-exact", "correctable")

	for _, name := range []string{"serial", "2pl", "tso", "prevent", "detect", "none"} {
		wl := bank.Generate(params)
		var c sched.Control
		switch name {
		case "serial":
			c = sched.NewSerial()
		case "2pl":
			c = sched.NewTwoPhase()
		case "tso":
			c = sched.NewTimestamp()
		case "prevent":
			c = sched.NewPreventer(wl.Nest, wl.Spec)
		case "detect":
			c = sched.NewDetector(wl.Nest, wl.Spec)
		case "none":
			c = sched.NewNone()
		}
		res, err := sim.Run(sim.DefaultConfig(), wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		inv := wl.Check(res.Exec, res.Final)
		if inv.TraceValid != nil {
			log.Fatalf("%s: invalid trace: %v", name, inv.TraceValid)
		}
		correctable, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			log.Fatal(err)
		}
		table.Row(name, res.Throughput(), res.LatencyPercentile(99), res.Stats.Aborts,
			inv.ConservationOK, fmt.Sprintf("%d/%d", inv.AuditsExact, inv.AuditsExact+inv.AuditsInexact),
			correctable)
	}
	table.Render(os.Stdout)
	fmt.Println(`
Reading the table:
  - every control conserves money (transfers are atomic steps either way);
  - the MLA controls (prevent, detect) and the serializable baselines all
    keep bank audits exact and admit only Theorem-2-correctable executions;
  - "none" commits fastest but its audits see money in transit — the
    paper's motivating anomaly.`)
}
