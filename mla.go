// Package mla implements multilevel atomicity, the correctness criterion
// for database concurrency control introduced by Nancy Lynch (PODS 1982,
// MIT/LCS/TR-281). It weakens classical serializability by permitting
// controlled interleaving among transactions: transactions are grouped in
// a k-level nest of classes, and each transaction exposes per-level
// breakpoints at which more closely related transactions may interleave.
//
// The package re-exports the library façade:
//
//   - Spec pairs a Nest (who may interleave with whom) with a breakpoint
//     specification (where). Spec.Atomic tests membership in C(π,B),
//     Spec.Correctable applies the Theorem 2 characterization (the coherent
//     closure of the dependency relation is a partial order), and
//     Spec.Witness constructs an equivalent multilevel atomic execution via
//     the Lemma 1 stage-wise extension.
//   - Serializability and CompatibilitySets build the paper's two named
//     special cases (k=2, and Garcia-Molina's k=3 scheme).
//
// Deeper machinery lives in the internal packages: internal/coherent (the
// combinatorial core), internal/sched (the Section 6 concurrency
// controls), internal/sim (the migrating-transaction simulator),
// internal/bank and internal/cad (the paper's two running applications),
// and internal/nested (the Section 7 action-tree correspondence).
package mla

import (
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/core"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/viz"
)

// Core model types.
type (
	// EntityID names a database entity.
	EntityID = model.EntityID
	// TxnID names a transaction.
	TxnID = model.TxnID
	// Value is an entity's contents.
	Value = model.Value
	// Step is one atomic entity access in an execution.
	Step = model.Step
	// Execution is a totally ordered sequence of steps.
	Execution = model.Execution
	// Program is a deterministic transaction automaton.
	Program = model.Program
	// Nest is a k-nest of transaction classes.
	Nest = nest.Nest
	// BreakpointSpec supplies per-execution breakpoint descriptions.
	BreakpointSpec = breakpoint.Spec
	// Spec is a complete multilevel atomicity specification.
	Spec = core.Spec
)

// Program-building helpers.
type (
	// Op is one scripted access (see Read, Write, Add).
	Op = model.Op
	// Scripted is a straight-line transaction program.
	Scripted = model.Scripted
	// ProgState is one state of a transaction automaton; implement Program
	// directly for branching transactions.
	ProgState = model.ProgState
	// CheckResult is the full Theorem 2 analysis of an execution.
	CheckResult = coherent.Result
)

// Read returns an op that reads x and writes it back unchanged.
func Read(x EntityID) Op { return model.Read(x) }

// Write returns an op that overwrites x with v.
func Write(x EntityID, v Value) Op { return model.Write(x, v) }

// Add returns an op that adds d to x.
func Add(x EntityID, d Value) Op { return model.Add(x, d) }

// RunSerial executes the programs one after another against vals (mutated
// in place), returning the serial execution — the reference semantics.
func RunSerial(programs []Program, vals map[EntityID]Value) (Execution, error) {
	return model.RunSerial(programs, vals)
}

// Interleave replays the programs in the given merge order (order[i] is the
// index of the program performing the i-th global step).
func Interleave(programs []Program, vals map[EntityID]Value, order []int) (Execution, error) {
	return model.Interleave(programs, vals, order, false)
}

// Timeline renders an execution as one lane per transaction with breakpoint
// markers; spec may be nil. width 0 renders every step.
func Timeline(e Execution, spec BreakpointSpec, width int) string {
	return viz.Timeline(e, spec, viz.Options{Width: width})
}

// NewNest creates an empty k-nest (k ≥ 2).
func NewNest(k int) *Nest { return nest.New(k) }

// NewSpec pairs a nest with a breakpoint specification.
func NewSpec(n *Nest, bp BreakpointSpec) (*Spec, error) { return core.NewSpec(n, bp) }

// Serializability returns the k=2 specification, under which correctability
// is classical serializability.
func Serializability(txns []TxnID) *Spec { return core.Serializability(txns) }

// CompatibilitySets returns Garcia-Molina's scheme as the k=3 special case.
func CompatibilitySets(classes [][]TxnID) *Spec { return core.CompatibilitySets(classes) }

// Uniform is a breakpoint specification giving every interior boundary the
// same coarseness.
func Uniform(levels, coarseness int) BreakpointSpec {
	return breakpoint.Uniform{Levels: levels, C: coarseness}
}

// BreakpointFunc adapts a closure to a breakpoint specification: fn returns
// the coarseness (2..levels) of the boundary after the given prefix.
func BreakpointFunc(levels int, fn func(t TxnID, prefix []Step) int) BreakpointSpec {
	return breakpoint.Func{Levels: levels, Fn: fn}
}
