// Command mlasim runs one simulation of the migrating-transaction model
// under a chosen concurrency control and prints throughput, latency,
// control statistics, and the application invariants.
//
// Usage:
//
//	mlasim [-workload bank|sessions|cad|conv] [-config workload.json]
//	       [-control prevent|detect|2pl|tso|serial|none|dist|shard]
//	       [-txns 24] [-seed 1] [-partial] [-engine] [-check] [-trace out.json]
//	       [-history out.json]
//	       [-crashes 0] [-tear 2] [-errrate 0]
//	       [-shards 4]
//	       [-delay 5] [-loss 0] [-reorder 0] [-partition 0] [-heal 0] [-procfail 0]
//
// -config runs a user-defined workload (see internal/config for the JSON
// format) instead of a generated one.
//
// -partial enables breakpoint-granular rollback (the paper's smaller unit
// of recovery); -engine executes the workload on the concurrent engine
// (goroutine per transaction, wall-clock timing) instead of the
// deterministic simulator; -check verifies the admitted execution against
// Theorem 2 offline; -trace writes the execution in mlacheck's JSON format.
//
// -history writes the run as an mla-history event log (checkable offline
// with mlacheck -history). On the engine it records live — every attempt,
// abort, and injected crash appears as an event; on the simulator it
// materializes the committed execution.
//
// -crashes and -errrate enable the deterministic fault-injection layer
// (engine only): -crashes kills the system that many times at fixed
// WAL-append counts, tearing -tear records off the durable tail each time,
// and recovers between rounds; -errrate injects transient step errors the
// engine retries with capped exponential backoff.
//
// -control dist runs the multi-node prevention control (internal/dist) on
// its simulated message bus, simulator only. -delay is the one-hop bus
// latency; the chaos flags schedule failures: -loss drops each message
// with the given probability, -reorder delays it (60 extra units) with the
// given probability, -partition splits the processors into two halves at
// that simulated time (healing at -heal, default partition+300), and
// -procfail crashes that many processors in sequence, each rejoining 400
// units later. Every chaos run still reports the invariants, and -check
// verifies Theorem 2 on the admitted execution.
//
// -control shard runs the partitioned entity store (internal/shard) on the
// same simulated bus, simulator only: -shards per-shard lock tables and WAL
// disciplines at their owning processors, lock requests/grants and per-shot
// participant votes on typed messages, cross-shard deadlocks resolved by
// edge-chasing probes, crashes recovered by epoch-fenced anti-entropy
// resync. The same -delay and chaos flags apply, with -partition splitting
// and -procfail crashing the shard processors.
//
// An interrupt (^C) cancels the run promptly — both executors stop and
// report the cancellation instead of running to completion.
//
// -telemetry records spans and counters from the run (engine lock waits,
// commit groups, recoveries; simulator transactions; dist bus messages) and
// prints the aggregated metrics table at exit. -trace-out writes the spans
// as Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev), and
// implies -telemetry; it is distinct from -trace, which writes the admitted
// execution in mlacheck's format. -pprof PREFIX writes PREFIX.cpu.pprof and
// PREFIX.heap.pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/cad"
	"mla/internal/coherent"
	"mla/internal/config"
	"mla/internal/conv"
	"mla/internal/dist"
	"mla/internal/engine"
	"mla/internal/fault"
	"mla/internal/history"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/shard"
	"mla/internal/sim"
	"mla/internal/telemetry"
	"mla/internal/trace"
)

func main() {
	os.Exit(run())
}

// run keeps the real logic defer-safe: os.Exit in main would skip the
// telemetry export and pprof stop otherwise.
func run() int {
	workload := flag.String("workload", "bank", "bank, sessions, cad, or conv")
	configPath := flag.String("config", "", "run a JSON-defined workload instead (see internal/config)")
	control := flag.String("control", "prevent", "prevent, detect, 2pl, tso, serial, none, dist, or shard")
	txns := flag.Int("txns", 24, "number of main transactions (transfers / sessions / modifications / conversations)")
	seed := flag.Int64("seed", 1, "workload seed")
	partial := flag.Bool("partial", false, "enable breakpoint-granular partial recovery")
	useEngine := flag.Bool("engine", false, "run on the concurrent engine instead of the simulator")
	check := flag.Bool("check", false, "verify the execution against Theorem 2")
	traceOut := flag.String("trace", "", "write the execution trace to this file (JSON)")
	historyOut := flag.String("history", "", "write the run's event history (mla-history JSON, checkable by mlacheck -history) to this file")
	crashes := flag.Int("crashes", 0, "engine only: inject this many crashes on a WAL-backed store, recovering between rounds")
	tear := flag.Int("tear", 2, "records torn off the durable tail at each injected crash")
	errRate := flag.Float64("errrate", 0, "engine only: transient step-error rate in [0,1]")
	shards := flag.Int("shards", 4, "shard control: partition count (per-shard lock tables on the simulated bus)")
	delay := flag.Int64("delay", 5, "dist/shard controls: one-hop bus latency in simulated time units")
	loss := flag.Float64("loss", 0, "dist/shard controls: per-message drop probability in [0,1]")
	reorder := flag.Float64("reorder", 0, "dist/shard controls: per-message extra-delay probability in [0,1] (60 extra units, reorders)")
	partTime := flag.Int64("partition", 0, "dist/shard controls: split the processors into two halves at this time (0 = never)")
	healTime := flag.Int64("heal", 0, "dist/shard controls: heal the partition at this time (0 = partition+300)")
	procFail := flag.Int("procfail", 0, "dist/shard controls: crash this many processors in sequence, each rejoining 400 units later")
	useTel := flag.Bool("telemetry", false, "record spans and counters; print the metrics table at exit")
	telOut := flag.String("trace-out", "", "write recorded spans as Chrome trace-event JSON (implies -telemetry)")
	pprofPrefix := flag.String("pprof", "", "write CPU and heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	flag.Parse()

	var tel *telemetry.Telemetry
	if *useTel || *telOut != "" {
		tel = telemetry.New()
	}
	if *pprofPrefix != "" {
		stop, err := telemetry.StartPprof(*pprofPrefix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim: pprof:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "mlasim: pprof:", err)
			}
		}()
	}
	// Export telemetry on every path out, including failures: the trace of
	// a failed run is the one worth looking at.
	defer func() {
		if tel == nil {
			return
		}
		if *telOut != "" {
			if err := tel.WriteTrace(*telOut); err != nil {
				fmt.Fprintln(os.Stderr, "mlasim: trace-out:", err)
			} else {
				fmt.Printf("spans written:  %s (load in ui.perfetto.dev)\n", *telOut)
			}
		}
		tel.Table().Render(os.Stdout)
	}()

	var (
		programs []model.Program
		n        *nest.Nest
		spec     breakpoint.Spec
		init     map[model.EntityID]model.Value
		// report checks application invariants over the surviving execution
		// and final store — shared by the simulator and engine paths.
		report func(model.Execution, map[model.EntityID]model.Value)
	)
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim:", err)
			return 1
		}
		wl, err := config.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim:", err)
			return 1
		}
		programs, n, spec, init = wl.Programs, wl.Nest, wl.Spec, wl.Init
		report = func(exec model.Execution, _ map[model.EntityID]model.Value) {
			if err := exec.Validate(init); err != nil {
				fmt.Printf("TRACE INVALID:  %v\n", err)
			}
		}
		*workload = "config:" + *configPath
	} else {
		switch *workload {
		case "bank":
			p := bank.DefaultParams()
			p.Transfers = *txns
			p.Seed = *seed
			wl := bank.Generate(p)
			programs, n, spec, init = wl.Programs, wl.Nest, wl.Spec, wl.Init
			report = func(exec model.Execution, final map[model.EntityID]model.Value) {
				inv := wl.Check(exec, final)
				fmt.Printf("conservation:   %v (total %d)\n", inv.ConservationOK, inv.Expected)
				fmt.Printf("audits exact:   %d, inexact: %d\n", inv.AuditsExact, inv.AuditsInexact)
				if inv.TraceValid != nil {
					fmt.Printf("TRACE INVALID:  %v\n", inv.TraceValid)
				}
			}
		case "sessions":
			p := bank.DefaultSessionParams()
			p.Sessions = *txns
			p.Seed = *seed
			wl := bank.GenerateSessions(p)
			programs, n, spec, init = wl.Programs, wl.Nest, wl.Spec, wl.Init
			report = func(exec model.Execution, final map[model.EntityID]model.Value) {
				inv := wl.Check(exec, final)
				fmt.Printf("conservation:   %v (total %d)\n", inv.ConservationOK, inv.Expected)
				fmt.Printf("audits exact:   %d, inexact: %d\n", inv.AuditsExact, inv.AuditsInexact)
				if inv.TraceValid != nil {
					fmt.Printf("TRACE INVALID:  %v\n", inv.TraceValid)
				}
			}
		case "conv":
			p := conv.DefaultParams()
			p.Conversations = *txns
			p.Seed = *seed
			wl := conv.Generate(p)
			programs, n, spec, init = wl.Programs, wl.Nest, wl.Spec, wl.Init
			report = func(_ model.Execution, final map[model.EntityID]model.Value) {
				out := wl.Check(final)
				fmt.Printf("conversations:  %d completed, %d failed\n", out.Completed, out.Failed)
			}
		case "cad":
			p := cad.DefaultParams()
			p.Mods = *txns
			p.Seed = *seed
			wl := cad.Generate(p)
			programs, n, spec, init = wl.Programs, wl.Nest, wl.Spec, wl.Init
			report = func(exec model.Execution, final map[model.EntityID]model.Value) {
				inv := wl.Check(exec, final)
				fmt.Printf("totals consistent: %v\n", inv.TotalsConsistent)
				fmt.Printf("snapshots clean:   %d, dirty: %d\n", inv.SnapshotsClean, inv.SnapshotsDirty)
				if inv.TraceValid != nil {
					fmt.Printf("TRACE INVALID:     %v\n", inv.TraceValid)
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "mlasim: unknown workload %q\n", *workload)
			return 2
		}
	}

	chaosFlags := *loss > 0 || *reorder > 0 || *partTime > 0 || *healTime > 0 || *procFail > 0
	busCtl := *control == "dist" || *control == "shard"
	if !busCtl && chaosFlags {
		fmt.Fprintln(os.Stderr, "mlasim: -loss, -reorder, -partition, -heal, and -procfail apply to -control dist and shard only")
		return 2
	}
	if busCtl && *useEngine {
		fmt.Fprintf(os.Stderr, "mlasim: -control %s is simulator-only (the engine has no message-bus clock)\n", *control)
		return 2
	}

	// busChaos builds the shared chaos schedule for the bus-backed controls
	// over the given processor population.
	busChaos := func(procs int) fault.Plan {
		plan := fault.Plan{
			Seed:          *seed,
			NetDropRate:   *loss,
			NetDelayRate:  *reorder,
			NetExtraDelay: 60,
		}
		if *partTime > 0 {
			h := *healTime
			if h == 0 {
				h = *partTime + 300
			}
			plan.Partitions = []fault.Partition{{At: *partTime, Heal: h}}
		}
		for i := 0; i < *procFail; i++ {
			at := int64(150 * (i + 1))
			plan.ProcCrashes = append(plan.ProcCrashes, fault.ProcCrash{
				Proc: (i + 1) % procs, At: at, Rejoin: at + 400,
			})
		}
		return plan
	}

	// Controls are volatile: the crash-recovery path builds a fresh one per
	// round, everything else uses a single instance.
	var distCtl *dist.Preventer
	var shardCtl *shard.SimControl
	mkCtl := func() sched.Control {
		switch *control {
		case "prevent":
			return sched.NewPreventer(n, spec)
		case "detect":
			return sched.NewDetector(n, spec)
		case "2pl":
			return sched.NewTwoPhase()
		case "tso":
			return sched.NewTimestamp()
		case "serial":
			return sched.NewSerial()
		case "none":
			return sched.NewNone()
		case "dist":
			procs := sim.DefaultConfig().Processors
			distCtl = dist.NewNet(n, spec, dist.Params{
				Procs:  procs,
				Owner:  sim.OwnerFunc(procs),
				Delay:  *delay,
				Faults: fault.New(busChaos(procs)),
			})
			return distCtl
		case "shard":
			if *shards < 1 {
				fmt.Fprintln(os.Stderr, "mlasim: -shards must be at least 1")
				os.Exit(2)
			}
			shardCtl = shard.NewSimControl(shard.SimParams{
				Shards: *shards,
				Delay:  *delay,
				Faults: fault.New(busChaos(*shards)),
				Nest:   n,
			})
			return shardCtl
		}
		fmt.Fprintf(os.Stderr, "mlasim: unknown control %q\n", *control)
		os.Exit(2)
		return nil
	}
	c := mkCtl()
	if tel != nil && distCtl != nil {
		distCtl.AttachTelemetry(tel)
	}

	// -history records live on the engine (every attempt, abort, and
	// injected crash lands in the event log); the simulator path
	// materializes the committed execution instead, since the simulator
	// reports only surviving steps. recObs stays a nil interface when
	// recording is off so engine.Tee drops it.
	var rec *history.Recorder
	var recObs engine.Observer
	if *historyOut != "" && *useEngine {
		rec = history.NewRecorder(n)
		recObs = rec
	}

	// ^C cancels the run: both executors take the context and stop promptly.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	var (
		exec  model.Execution
		final map[model.EntityID]model.Value
	)
	if !*useEngine && (*crashes > 0 || *errRate > 0) {
		fmt.Fprintln(os.Stderr, "mlasim: -crashes and -errrate require -engine (the simulator's crash path is sim.RunWithCrashes)")
		return 2
	}
	if *useEngine && (*crashes > 0 || *errRate > 0) {
		if *partial {
			fmt.Fprintln(os.Stderr, "mlasim: -partial is simulator-only (the engine rolls back whole transactions)")
			return 2
		}
		var ev engine.EventCounts
		appends := make([]int64, *crashes)
		for i := range appends {
			appends[i] = int64(10 * (i + 1))
		}
		plan := engine.CrashPlan{
			Cfg: engine.Config{
				Seed:     *seed,
				Observer: engine.Tee(&ev, engine.NewTelemetryObserver(tel, "mlasim engine"), recObs),
			},
			Spec: spec,
			Init: init,
			Faults: fault.Plan{
				Seed:          *seed,
				CrashAppends:  appends,
				TearTail:      *tear,
				StepErrorRate: *errRate,
			},
			NewControl: mkCtl,
		}
		res, err := engine.RunWithCrashes(ctx, plan, programs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim:", err)
			return 1
		}
		exec, final = res.Exec, res.Final
		fmt.Printf("workload=%s control=%s txns=%d seed=%d executor=engine+faults\n", *workload, c.Name(), *txns, *seed)
		fmt.Printf("committed:      %d (%d gave up) across %d rounds\n", res.Committed, res.GaveUp, res.Rounds)
		fmt.Printf("crashes:        %d (%d records torn, %d txn attempts redone)\n", res.Crashes, res.TornTotal, res.RedoneTxns)
		fmt.Printf("faults:         %d transient step errors injected, %d restarts\n", res.FaultsInjected, res.Restarts)
		fmt.Printf("events:         %d steps, %d commit groups, %d crashes, %d recoveries observed\n",
			ev.Steps, ev.Groups, ev.Crashes, ev.Recoveries)
	} else if *useEngine {
		if *partial {
			fmt.Fprintln(os.Stderr, "mlasim: -partial is simulator-only (the engine rolls back whole transactions)")
			return 2
		}
		var ev engine.EventCounts
		cfg := engine.Config{
			Seed:     *seed,
			Observer: engine.Tee(&ev, engine.NewTelemetryObserver(tel, "mlasim engine"), recObs),
		}
		res, err := engine.Run(ctx, cfg, programs, c, spec, init)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim:", err)
			return 1
		}
		exec, final = res.Exec, res.Final
		lat, wt := res.LatencySummary(), res.WaitSummary()
		fmt.Printf("workload=%s control=%s txns=%d seed=%d executor=engine\n", *workload, c.Name(), *txns, *seed)
		fmt.Printf("committed:      %d in %v (%d restarts)\n", res.Committed, res.Elapsed, res.Restarts)
		fmt.Printf("latency:        p50=%dµs p95=%dµs p99=%dµs mean=%.1fµs\n", lat.P50, lat.P95, lat.P99, lat.Mean)
		fmt.Printf("lock wait:      p50=%dµs p95=%dµs p99=%dµs mean=%.1fµs\n", wt.P50, wt.P95, wt.P99, wt.Mean)
		fmt.Printf("events:         %d steps, %d waits (%v waiting), %d commit groups\n",
			ev.Steps, ev.Waits, ev.WaitTime, ev.Groups)
		fmt.Printf("aborts:         %d (%d cascades)\n", res.Aborts, res.Cascades)
		fmt.Printf("control:        %+v\n", *c.Stats())
		if tel != nil {
			tel.Metrics.ObserveSnapshot("control."+c.Name(), c.Stats().Snapshot())
		}
	} else {
		cfg := sim.DefaultConfig()
		cfg.PartialRecovery = *partial
		cfg.Telemetry = tel
		res, err := sim.RunContext(ctx, cfg, programs, c, spec, init)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim:", err)
			return 1
		}
		exec, final = res.Exec, res.Final
		lat := metrics.Summarize(res.Latencies)
		fmt.Printf("workload=%s control=%s txns=%d seed=%d\n", *workload, c.Name(), *txns, *seed)
		fmt.Printf("committed:      %d in %d time units (throughput %.2f/1000u)\n",
			res.Stats.Committed, res.Time, res.Throughput())
		fmt.Printf("latency:        p50=%d p95=%d p99=%d mean=%.1f\n", lat.P50, lat.P95, lat.P99, lat.Mean)
		fmt.Printf("steps:          %d (%d messages)\n", res.Stats.Steps, res.Stats.Messages)
		fmt.Printf("aborts:         %d (%d cascades, %d partial, %d stall breaks)\n",
			res.Stats.Aborts, res.Stats.Cascades, res.Stats.PartialRollbacks, res.Stats.StallBreaks)
		fmt.Printf("control:        %+v\n", *res.Control)
		if distCtl != nil {
			ns := distCtl.NetStats()
			fmt.Printf("network:        %d sent, %d delivered, %d dropped (%d fault, %d link, %d crash)\n",
				ns.Sent, ns.Delivered, ns.Dropped+ns.DroppedLink+ns.DroppedCrash,
				ns.Dropped, ns.DroppedLink, ns.DroppedCrash)
			fmt.Printf("chaos:          %d stale waits, %d grace aborts, %d crash aborts, %d probe deadlocks, %d retransmits\n",
				distCtl.StaleWaits, distCtl.GraceAborts, distCtl.CrashAborts,
				distCtl.ProbeDeadlocks, distCtl.Retransmits)
			if tel != nil {
				distCtl.FillTelemetry(tel)
			}
		}
		if shardCtl != nil {
			ns := shardCtl.NetStats()
			fmt.Printf("network:        %d sent, %d delivered, %d dropped (%d fault, %d link, %d crash)\n",
				ns.Sent, ns.Delivered, ns.Dropped+ns.DroppedLink+ns.DroppedCrash,
				ns.Dropped, ns.DroppedLink, ns.DroppedCrash)
			fmt.Printf("shards:         %d shots committed, %d cross-shard txns, %d probe deadlocks\n",
				shardCtl.Shots, shardCtl.CrossShard, shardCtl.ProbeDeadlocks)
			fmt.Printf("chaos:          %d grace aborts, %d crash aborts, %d retransmits\n",
				shardCtl.GraceAborts, shardCtl.CrashAborts, shardCtl.Retransmits)
		}
	}
	report(exec, final)

	if *check {
		chk, err := coherent.CheckExecution(exec, n, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim: check:", err)
			return 1
		}
		fmt.Printf("theorem 2:      atomic=%v correctable=%v\n", chk.Atomic, chk.Correctable)
		if !chk.Correctable && c.Name() != "none" {
			fmt.Fprintln(os.Stderr, "mlasim: control admitted a non-correctable execution")
			return 1
		}
	}
	if *historyOut != "" {
		var h *history.History
		if rec != nil {
			h = rec.History()
		} else {
			var err error
			h, err = history.FromExecution(exec, n.Restrict(exec.Txns()), spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mlasim: history:", err)
				return 1
			}
		}
		f, err := os.Create(*historyOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim:", err)
			return 1
		}
		err = h.Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim: history:", err)
			return 1
		}
		fmt.Printf("history written: %s\n", *historyOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlasim:", err)
			return 1
		}
		defer f.Close()
		if err := trace.Encode(f, exec, n.Restrict(exec.Txns()), spec, init); err != nil {
			fmt.Fprintln(os.Stderr, "mlasim:", err)
			return 1
		}
		fmt.Printf("trace written:  %s\n", *traceOut)
	}
	return 0
}
