// Command mlaserve runs the multilevel-atomicity engine as a long-lived
// JSON-over-HTTP service: one resident engine, many concurrent client
// sessions, per-transaction deadlines, bounded admission queues with load
// shedding (429 + Retry-After), and a graceful drain on SIGTERM that lets
// every in-flight transaction reach a breakpoint before the WAL pipeline
// is flushed and the process exits.
//
// Usage:
//
//	mlaserve [-addr 127.0.0.1:7070] [-control 2pl-sharded] [-history h.json]
//	mlaserve -data-dir /var/lib/mla [-spool h.spool] [-checkpoint-every 512]
//	mlaserve -selftest [-sessions 100] [-txns 10000] [-rate 150] [-overload]
//	mlaserve -soak [-soak-rounds 5] [-soak-dir DIR]
//
// In serve mode the process runs until SIGTERM/SIGINT, then drains: new
// work is refused with 503 while admitted transactions finish, the WAL
// group-commit pipeline is flushed, and the recorded history / telemetry
// are exported on every exit path. `mlacheck -history <file>` then audits
// the run's multilevel atomicity black-box.
//
// With -data-dir the WAL is a real segmented on-disk log: commits are
// fsynced before their 200 is written, a restart over the same directory
// replays from the latest checkpoint (the listener answers immediately but
// /readyz stays 503 until recovery completes), and the graceful drain
// seals the log with a checkpoint so the next boot replays almost nothing.
// -spool appends a crash-safe history stream (JSONL, one line per event)
// that `mlacheck -history` can audit even when the process died by kill -9.
//
// In selftest mode the binary is its own client: it starts the server,
// offers an open-loop Poisson load from many sessions (with injected
// disconnects), raises a real SIGTERM against itself mid-run to exercise
// the signal path, and exits nonzero unless every acknowledged transaction
// is durable and committed in a history the checker accepts.
//
// In soak mode the binary spawns ITSELF as a child server over a shared
// data directory and runs the crash-restart durability soak: SIGKILL the
// child mid-load, restart, re-verify every previously acknowledged
// transaction, repeat; exit nonzero on any lost ack, unbounded recovery
// replay, or a merged history the checker rejects.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mla/internal/fault"
	"mla/internal/history"
	"mla/internal/serve"
	"mla/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// run keeps the real logic defer-safe: os.Exit in main would skip the
// history and telemetry exports otherwise.
func run() int {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	families := flag.Int("families", 0, "account families (0 = default)")
	accounts := flag.Int("accounts", 0, "accounts per family (0 = default)")
	control := flag.String("control", "", "concurrency control: 2pl-sharded, 2pl, tso, none")
	shards := flag.Int("shards", 0, "lock shards for 2pl-sharded (0 = default)")
	homeShards := flag.Int("home-shards", 0, "partition families across this many home shards with per-shard admission queues (0/1 = single customer queue)")
	maxInflight := flag.Int("max-inflight", 0, "transactions admitted into the engine at once")
	queueDepth := flag.Int("queue-depth", 0, "bounded admission queue depth per class")
	admitWait := flag.Duration("admit-wait", 0, "how long admission may queue before shedding")
	deadline := flag.Duration("deadline", 0, "default per-transaction deadline")
	maxDeadline := flag.Duration("max-deadline", 0, "clamp for client-supplied deadlines")
	seed := flag.Int64("seed", 1, "seed for synthesized workload choices")
	historyOut := flag.String("history", "", "record the execution history and write it here on exit (mlacheck -history audits it)")
	traceOut := flag.String("trace-out", "", "write telemetry spans as Chrome trace-event JSON on exit")
	metricsOut := flag.String("metrics-out", "", "write the telemetry metrics snapshot as JSON on exit")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long the SIGTERM drain may take")

	dataDir := flag.String("data-dir", "", "persist the WAL as a segmented on-disk log here; restarts recover from it")
	spoolPath := flag.String("spool", "", "append a crash-safe history spool here (mlacheck -history audits it across restarts)")
	checkpointEvery := flag.Int("checkpoint-every", 512, "compact the on-disk log after this many records (0 = never)")
	segmentBytes := flag.Int64("segment-bytes", 0, "on-disk WAL segment rotation size (0 = default)")
	diskWriteErr := flag.Float64("disk-write-err", 0, "inject: probability a WAL write fails transiently")
	diskShortWrite := flag.Float64("disk-short-write", 0, "inject: probability a WAL write lands torn (then retried)")
	diskSyncErr := flag.Float64("disk-sync-err", 0, "inject: probability an fsync fails transiently")
	diskFullAfter := flag.Int64("disk-full-after", 0, "inject: device byte budget; writes past it fail with ENOSPC (0 = unlimited)")
	diskFaultSeed := flag.Int64("disk-fault-seed", 1, "inject: seed for the disk fault coins")

	selftest := flag.Bool("selftest", false, "run the end-to-end selftest (server + open-loop load + mid-run SIGTERM) and exit")
	sessions := flag.Int("sessions", 100, "selftest: concurrent client sessions")
	txns := flag.Int("txns", 10000, "selftest: total transactions offered")
	rate := flag.Float64("rate", 150, "selftest: Poisson arrivals/sec per session")
	auditPct := flag.Int("audit-pct", 2, "selftest: percent of transactions that are audits")
	creditPct := flag.Int("credit-pct", 8, "selftest: percent of transactions that are credits")
	disconnectPct := flag.Int("disconnect-pct", 5, "selftest: percent of requests abandoned mid-flight")
	drainAfter := flag.Duration("drain-after", 2*time.Second, "selftest: raise SIGTERM this long into the load (0 = drain after load)")
	overload := flag.Bool("overload", false, "selftest: shrink admission capacity so shedding must engage")
	p99SLO := flag.Duration("p99-slo", 5*time.Second, "selftest: acked p99 latency bound (0 = unchecked)")

	soak := flag.Bool("soak", false, "run the crash-restart durability soak (spawns this binary as a child server) and exit")
	soakDir := flag.String("soak-dir", "", "soak: data directory shared across restarts (default: a temp dir)")
	soakRounds := flag.Int("soak-rounds", 5, "soak: number of SIGKILL rounds")
	soakTxns := flag.Int("soak-txns", 300, "soak: transactions offered per round")
	soakKillAfter := flag.Duration("soak-kill-after", 0, "soak: how long into each round's load the SIGKILL lands (0 = half the expected load duration)")
	flag.Parse()

	cfg := serve.DefaultConfig()
	if *families > 0 {
		cfg.Families = *families
	}
	if *accounts > 0 {
		cfg.AccountsPerFamily = *accounts
	}
	if *control != "" {
		cfg.Control = *control
	}
	if *shards > 0 {
		cfg.Shards = *shards
	}
	if *homeShards > 0 {
		cfg.HomeShards = *homeShards
	}
	if *maxInflight > 0 {
		cfg.MaxInflight = *maxInflight
	}
	if *queueDepth > 0 {
		cfg.QueueDepth = *queueDepth
	}
	if *admitWait > 0 {
		cfg.AdmitWait = *admitWait
	}
	if *deadline > 0 {
		cfg.DefaultDeadline = *deadline
	}
	if *maxDeadline > 0 {
		cfg.MaxDeadline = *maxDeadline
	}
	cfg.Seed = *seed
	cfg.Record = *historyOut != ""
	cfg.DataDir = *dataDir
	cfg.SpoolPath = *spoolPath
	cfg.SegmentBytes = *segmentBytes
	if *dataDir != "" {
		cfg.CheckpointEvery = *checkpointEvery
	}
	cfg.DiskFaults = fault.Plan{
		Seed:               *diskFaultSeed,
		DiskWriteErrRate:   *diskWriteErr,
		DiskShortWriteRate: *diskShortWrite,
		DiskSyncErrRate:    *diskSyncErr,
		DiskFullAfter:      *diskFullAfter,
	}

	var tel *telemetry.Telemetry
	if *traceOut != "" || *metricsOut != "" {
		tel = telemetry.New()
		cfg.Telemetry = tel
	}
	// Export telemetry on every path out, including failures: the trace of
	// a failed run is the one worth looking at.
	defer func() {
		if tel == nil {
			return
		}
		if *traceOut != "" {
			if err := tel.WriteTrace(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "mlaserve: trace: %v\n", err)
			} else {
				fmt.Printf("wrote %s (load in ui.perfetto.dev)\n", *traceOut)
			}
		}
		if *metricsOut != "" {
			if err := tel.WriteMetrics(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "mlaserve: metrics: %v\n", err)
			} else {
				fmt.Printf("wrote %s\n", *metricsOut)
			}
		}
	}()

	if *soak {
		return runSoak(*soakDir, *soakRounds, *soakTxns, *soakKillAfter, *checkpointEvery, *seed,
			*diskWriteErr, *diskShortWrite, *diskSyncErr)
	}
	if *selftest {
		return runSelfTest(serve.SelfTestOptions{
			Config:        cfg,
			Sessions:      *sessions,
			Txns:          *txns,
			Rate:          *rate,
			AuditPct:      *auditPct,
			CreditPct:     *creditPct,
			DisconnectPct: *disconnectPct,
			DrainAfter:    *drainAfter,
			Overload:      *overload,
			P99SLO:        *p99SLO,
			Out:           os.Stderr,
		}, *historyOut)
	}
	return runServe(cfg, *addr, *historyOut, *drainTimeout)
}

// runServe is the long-lived mode: serve until SIGTERM/SIGINT, then drain
// gracefully and export the recorded history.
//
// The listener binds and announces BEFORE serve.New runs — WAL recovery
// happens inside New and its duration grows with the unreplayed log, so the
// recovery window must be observable from outside (probes get 503
// "recovering" through the gate) rather than a connection-refused blackout.
func runServe(cfg serve.Config, addr, historyOut string, drainTimeout time.Duration) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlaserve: %v\n", err)
		return 1
	}
	gate := &serve.Gate{}
	hs := &http.Server{Handler: gate}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("mlaserve: listening on %s (control=%s, inflight=%d, queue=%d)\n",
		ln.Addr(), cfg.Control, cfg.MaxInflight, cfg.QueueDepth)

	start := time.Now()
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlaserve: %v\n", err)
		hs.Close()
		return 1
	}
	if info := srv.RecoveryInfo(); info.Epoch > 0 {
		fmt.Printf("mlaserve: recovered %s in %v — epoch %d, %d records (%d past checkpoint, %d torn bytes, %d segments)\n",
			cfg.DataDir, time.Since(start).Round(time.Millisecond), info.Epoch,
			info.Records, info.SinceCheckpoint, info.TornBytes, info.Segments)
	}
	gate.Set(srv.Handler())
	// The history is written on every exit path — a run that died half-way
	// is exactly the one whose audit trail matters. The snapshot must be
	// taken inside the closure: a plain defer would evaluate History() now,
	// exporting the empty pre-traffic state.
	defer func() { exportHistory(srv.History(), historyOut) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "mlaserve: %v — draining (in-flight transactions run to a breakpoint)\n", s)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "mlaserve: serve: %v\n", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mlaserve: drain: %v\n", err)
		code = 1
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mlaserve: http shutdown: %v\n", err)
	}
	<-serveErr
	if err := srv.SpoolErr(); err != nil {
		fmt.Fprintf(os.Stderr, "mlaserve: history spool: %v\n", err)
		code = 1
	}
	st := srv.Stats()
	fmt.Printf("mlaserve: drained clean — %d committed, %d shed, %d deadline-aborted\n",
		st.Acked, st.Shed, st.Deadline)
	return code
}

// runSoak spawns this very binary as the child server: the soak's verdict
// is only meaningful against a process whose SIGKILL this one cannot
// intercept.
func runSoak(dir string, rounds, txns int, killAfter time.Duration, checkpointEvery int, seed int64,
	writeErr, shortWrite, syncErr float64) int {
	bin, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlaserve: soak: %v\n", err)
		return 1
	}
	if dir == "" {
		dir, err = os.MkdirTemp("", "mlaserve-soak-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlaserve: soak: %v\n", err)
			return 1
		}
		fmt.Printf("mlaserve: soak dir %s\n", dir)
	}
	rep, err := serve.Soak(context.Background(), serve.SoakOptions{
		Bin:                bin,
		Dir:                dir,
		Rounds:             rounds,
		TxnsPerRound:       txns,
		KillAfter:          killAfter,
		CheckpointEvery:    checkpointEvery,
		DiskWriteErrRate:   writeErr,
		DiskShortWriteRate: shortWrite,
		DiskSyncErrRate:    syncErr,
		Seed:               seed,
		Out:                os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlaserve: soak: %v\n", err)
		return 1
	}
	rep.Summary().Render(os.Stdout)
	fmt.Printf("soak spool: %s (audit with: mlacheck -history %s)\n", rep.SpoolPath, rep.SpoolPath)
	if !rep.OK() {
		for _, p := range rep.Problems {
			fmt.Fprintf(os.Stderr, "mlaserve: soak: FAIL: %s\n", p)
		}
		return 1
	}
	return 0
}

// runSelfTest drives serve.SelfTest with the drain routed through a REAL
// SIGTERM against our own process, so the signal path itself is under test
// rather than simulated.
func runSelfTest(o serve.SelfTestOptions, historyOut string) int {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	defer signal.Stop(sig)
	o.TriggerDrain = func(shutdown func()) {
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "mlaserve: selftest: SIGTERM received — draining")
			shutdown()
		}()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			// Signal delivery failed (exotic platform); drain directly so
			// the run still finishes.
			fmt.Fprintf(os.Stderr, "mlaserve: selftest: kill: %v — draining directly\n", err)
			shutdown()
		}
	}

	rep, err := serve.SelfTest(context.Background(), o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlaserve: selftest: %v\n", err)
		return 1
	}
	exportHistory(rep.Recorded, historyOut)
	rep.Summary().Render(os.Stdout)
	if !rep.OK() {
		for _, p := range rep.Problems {
			fmt.Fprintf(os.Stderr, "mlaserve: selftest: FAIL: %s\n", p)
		}
		return 1
	}
	return 0
}

func exportHistory(h *history.History, path string) {
	if h == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlaserve: history: %v\n", err)
		return
	}
	defer f.Close()
	if err := h.Encode(f); err != nil {
		fmt.Fprintf(os.Stderr, "mlaserve: history: %v\n", err)
		return
	}
	fmt.Printf("wrote %s (audit with: mlacheck -history %s)\n", path, path)
}
