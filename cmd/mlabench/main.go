// Command mlabench regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	mlabench [-exp E5] [-scale 2] [-seed 1]
//
// Without -exp it runs the full suite E1..E18.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"mla/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "run only this experiment (E1..E18)")
	scale := flag.Int("scale", 2, "workload scale multiplier (1 = quick)")
	seed := flag.Int64("seed", 1, "random seed")
	markdown := flag.Bool("md", false, "render tables as markdown")
	flag.Parse()

	// ^C cancels the in-flight simulation and skips the rest of the suite.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	opts := bench.Options{Scale: *scale, Seed: *seed, Context: ctx}
	failed := 0
	for _, ex := range bench.All() {
		if *exp != "" && ex.ID != *exp {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "mlabench: interrupted")
			os.Exit(1)
		}
		start := time.Now()
		tbl, err := ex.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.ID, err)
			failed++
			continue
		}
		fmt.Printf("%s — %s  (%.1fs)\n", ex.ID, ex.Claim, time.Since(start).Seconds())
		if *markdown {
			tbl.RenderMarkdown(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
