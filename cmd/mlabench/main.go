// Command mlabench regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	mlabench [-exp E5] [-scale 2] [-seed 1]
//	mlabench -perf [-out BENCH_4.json] [-quick]
//	mlabench -perf -quick -telemetry -trace-out trace.json
//	mlabench -rate 120000 -duration 1s -slo-p99 20ms
//	mlabench -rate 5000 -base http://127.0.0.1:7070
//	mlabench -rate 60000 -history BENCH_HISTORY.json -commit $(git rev-parse --short HEAD) -gate
//	mlabench -rate 60000 -shards 4 -history BENCH_HISTORY.json -gate
//	mlabench -shardperf -shards 4 -scaling-min 1.5 -out BENCH_SHARD.json
//
// Without -exp it runs the full suite E1..E21. With -perf it runs the
// engine performance sweep (E19's harness) instead, prints the table, and
// writes the JSON report; it exits nonzero if the optimized engine paths
// changed any commit outcome relative to the unoptimized ones.
//
// With -rate (or -load) it runs the open-loop load cell: Poisson arrivals
// at the given rate against the in-process engine — or, with -base, a
// running mlaserve over real HTTP — reporting coordinated-omission-safe
// p50/p99/p99.9 and throughput at the -slo-p99 objective. -closed switches
// to the classic closed loop for comparison. -shards N drives the cell
// against the partitioned store (shard.Group) instead of the single
// resident engine. -history appends the report to BENCH_HISTORY.json keyed
// by -commit; -gate additionally compares against the previous recorded
// run of the same kind AND shard count (sharded and unsharded cells keep
// independent lineages in one file) and exits nonzero on a >10% throughput
// or p99 regression.
//
// With -shardperf it sweeps shard count × GOMAXPROCS over the shard-affine
// hot-spot workload on the partitioned store: -shards N pins the sweep to
// {1, N} (the CI matrix leg; default {1, 2, 4}), every cell is gated on
// decision equivalence against the schedule-independent expected state,
// and -scaling-min S additionally fails the run when max-shards throughput
// is below S× the 1-shard baseline at max procs (enforced only on hosts
// with >1 CPU — a single-CPU host cannot exhibit shard parallelism, so
// the floor is reported there but not fatal). -procs P1,P2 overrides the
// GOMAXPROCS points (default 1,4).
//
// -telemetry records spans and counters from the runs that support tracing
// (the engine, the simulator, the dist bus); -trace-out exports the spans
// as Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing, and implies -telemetry. -pprof PREFIX writes
// PREFIX.cpu.pprof and PREFIX.heap.pprof for `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mla/internal/bench"
	"mla/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// run keeps the real logic defer-safe: os.Exit in main would skip the
// telemetry export and pprof stop otherwise.
func run() int {
	exp := flag.String("exp", "", "run only this experiment (E1..E22)")
	scale := flag.Int("scale", 2, "workload scale multiplier (1 = quick)")
	seed := flag.Int64("seed", 1, "random seed")
	markdown := flag.Bool("md", false, "render tables as markdown")
	perf := flag.Bool("perf", false, "run the engine performance sweep and write the JSON report")
	out := flag.String("out", "", "output path for the JSON report (default BENCH_4.json for -perf, none for -rate)")
	quick := flag.Bool("quick", false, "-perf/-rate: smaller workloads, GOMAXPROCS {1,8} only")
	load := flag.Bool("load", false, "run the open-loop load cell (implied by -rate)")
	rate := flag.Float64("rate", 0, "open-loop offered rate, txns/second (runs the load cell)")
	duration := flag.Duration("duration", 0, "load cell length (rate×duration txns; default 1s, quick 250ms)")
	txns := flag.Int("txns", 0, "load cell: explicit transaction count (overrides -duration)")
	workload := flag.String("workload", "lowcontention", "load cell shape: lowcontention | hotspot")
	workers := flag.Int("workers", 0, "load cell: worker pool bound (default 32)")
	closed := flag.Bool("closed", false, "load cell: closed loop (CO-unsafe; comparison only)")
	shards := flag.Int("shards", 0, "partition the entity store: -rate drives a shard.Group of N shards; -shardperf sweeps {1,N}")
	shardPerf := flag.Bool("shardperf", false, "run the shards × GOMAXPROCS sweep on the partitioned store and write the JSON report")
	scalingMin := flag.Float64("scaling-min", 0, "-shardperf: fail unless max-shards throughput ≥ this × the 1-shard baseline (0 = report only)")
	procsFlag := flag.String("procs", "", "-shardperf: comma-separated GOMAXPROCS points (default 1,4)")
	sloP99 := flag.Duration("slo-p99", 0, "load cell: p99 latency objective; a miss exits nonzero")
	base := flag.String("base", "", "load cell: drive a running mlaserve at this base URL instead of the in-process engine")
	historyPath := flag.String("history", "", "append the report to this BENCH_HISTORY.json")
	commit := flag.String("commit", "unknown", "commit key for the -history entry")
	gate := flag.Bool("gate", false, "with -history: fail on >10% throughput/p99 regression vs the last recorded run")
	useTel := flag.Bool("telemetry", false, "record spans and counters; print the metrics table at exit")
	traceOut := flag.String("trace-out", "", "write the recorded spans as Chrome trace-event JSON (implies -telemetry)")
	pprofPrefix := flag.String("pprof", "", "write CPU and heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	flag.Parse()

	// ^C cancels the in-flight simulation and skips the rest of the suite.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	var tel *telemetry.Telemetry
	if *useTel || *traceOut != "" {
		tel = telemetry.New()
	}
	if *pprofPrefix != "" {
		stop, err := telemetry.StartPprof(*pprofPrefix)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: pprof: %v\n", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "mlabench: pprof: %v\n", err)
			}
		}()
	}
	// Export telemetry on every path out, including failures: a trace of a
	// failed run is the one you actually want to look at.
	defer func() {
		if tel == nil {
			return
		}
		if *traceOut != "" {
			if err := tel.WriteTrace(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "mlabench: trace: %v\n", err)
			} else {
				fmt.Printf("wrote %s (load in ui.perfetto.dev)\n", *traceOut)
			}
		}
		tel.Table().Render(os.Stdout)
	}()

	// record appends rep to the history file and runs the regression gate;
	// it returns a nonzero exit code on gate failure.
	record := func(rep *bench.Report) int {
		if *historyPath == "" {
			if *gate {
				fmt.Fprintln(os.Stderr, "mlabench: -gate needs -history")
				return 1
			}
			return 0
		}
		hist, err := bench.LoadHistory(*historyPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: history: %v\n", err)
			return 1
		}
		prev := hist.LastFor(rep.Kind, rep.Shards)
		if err := hist.Append(*historyPath, *commit, rep, time.Now()); err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: history: %v\n", err)
			return 1
		}
		fmt.Printf("recorded %s entry %s in %s\n", rep.Kind, *commit, *historyPath)
		if !*gate {
			return 0
		}
		if prev == nil {
			fmt.Println("bench gate: no previous entry, pass by default")
			return 0
		}
		if bad := bench.Gate(prev.Report, rep); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "mlabench: bench gate FAILED vs %s:\n", prev.Commit)
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "  %s\n", b)
			}
			return 1
		}
		fmt.Printf("bench gate: pass vs %s\n", prev.Commit)
		return 0
	}

	if *perf {
		if *out == "" {
			*out = "BENCH_4.json"
		}
		rep, err := bench.PerfRun(ctx, bench.NewConfig(
			bench.WithSeed(*seed), bench.WithQuick(*quick), bench.WithTelemetry(tel)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: perf: %v\n", err)
			return 1
		}
		rep.Table().Render(os.Stdout)
		if err := rep.WriteJSON(*out); err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: perf: write %s: %v\n", *out, err)
			return 1
		}
		fmt.Printf("wrote %s (hotspot speedup %.2fx at max procs)\n", *out, rep.HotspotSpeedup)
		if !rep.EquivalenceOK {
			fmt.Fprintln(os.Stderr, "mlabench: perf: EQUIVALENCE FAILED — optimized paths changed commit outcomes")
			return 1
		}
		return record(rep)
	}

	if *shardPerf {
		if *out == "" {
			*out = "BENCH_SHARD.json"
		}
		opts := []bench.Option{
			bench.WithSeed(*seed), bench.WithQuick(*quick), bench.WithContext(ctx),
			bench.WithShards(*shards), bench.WithWorkers(*workers),
		}
		if *procsFlag != "" {
			var pts []int
			for _, s := range strings.Split(*procsFlag, ",") {
				p, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || p < 1 {
					fmt.Fprintf(os.Stderr, "mlabench: -procs: bad GOMAXPROCS point %q\n", s)
					return 1
				}
				pts = append(pts, p)
			}
			opts = append(opts, bench.WithProcs(pts...))
		}
		rep, err := bench.ShardRun(ctx, bench.NewConfig(opts...))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: shardperf: %v\n", err)
			return 1
		}
		rep.Table().Render(os.Stdout)
		if err := rep.WriteJSON(*out); err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: shardperf: write %s: %v\n", *out, err)
			return 1
		}
		fmt.Printf("wrote %s (shard speedup %.2fx: %d shards vs 1 at max procs)\n", *out, rep.ShardSpeedup, rep.Shards)
		if !rep.EquivalenceOK {
			fmt.Fprintln(os.Stderr, "mlabench: shardperf: EQUIVALENCE FAILED — sharded cells diverged from the unsharded expected state")
			return 1
		}
		if *scalingMin > 0 && rep.ShardSpeedup < *scalingMin {
			// The floor asserts that N shards beat 1 shard in wall-clock
			// time, which requires hardware parallelism: on a single-CPU
			// host every GOMAXPROCS point executes serially and no shard
			// count can scale, so enforcing the floor there only measures
			// the machine. Report the miss, fail only where it can bind.
			if runtime.NumCPU() > 1 {
				fmt.Fprintf(os.Stderr, "mlabench: shardperf: SCALING FAILED — %.2fx < required %.2fx\n", rep.ShardSpeedup, *scalingMin)
				return 1
			}
			fmt.Printf("shardperf: scaling floor %.2fx not enforced (measured %.2fx): single-CPU host cannot exhibit shard parallelism\n", *scalingMin, rep.ShardSpeedup)
		}
		return record(rep)
	}

	if *load || *rate > 0 {
		opts := []bench.Option{
			bench.WithSeed(*seed), bench.WithQuick(*quick), bench.WithContext(ctx),
			bench.WithRate(*rate), bench.WithDuration(*duration), bench.WithTxns(*txns),
			bench.WithWorkload(*workload), bench.WithWorkers(*workers), bench.WithSLO(*sloP99),
			bench.WithShards(*shards),
		}
		if *closed {
			opts = append(opts, bench.WithClosedLoop())
		}
		cfg := bench.NewConfig(opts...)
		var rep *bench.Report
		var err error
		if *base != "" {
			if *shards > 1 {
				fmt.Fprintln(os.Stderr, "mlabench: -shards applies to in-process cells only (-base drives a remote server)")
				return 1
			}
			rep, err = bench.LoadRunHTTP(ctx, *base, cfg)
		} else {
			rep, err = bench.LoadRun(ctx, cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: load: %v\n", err)
			return 1
		}
		rep.Table().Render(os.Stdout)
		if *out != "" {
			if err := rep.WriteJSON(*out); err != nil {
				fmt.Fprintf(os.Stderr, "mlabench: load: write %s: %v\n", *out, err)
				return 1
			}
			fmt.Printf("wrote %s\n", *out)
		}
		if !rep.EquivalenceOK {
			fmt.Fprintln(os.Stderr, "mlabench: load: EQUIVALENCE FAILED — final state diverged from acked increments")
			return 1
		}
		for _, c := range rep.Load {
			if !c.SLOMet {
				fmt.Fprintf(os.Stderr, "mlabench: load: SLO MISS — %s/%s p99 %dµs > objective %dµs\n",
					c.Workload, c.Mode, c.P99US, c.SLOP99US)
				return 1
			}
		}
		return record(rep)
	}

	opts := bench.Options{Scale: *scale, Seed: *seed, Context: ctx, Telemetry: tel}
	failed := 0
	for _, ex := range bench.All() {
		if *exp != "" && ex.ID != *exp {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "mlabench: interrupted")
			return 1
		}
		start := time.Now()
		tbl, err := ex.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.ID, err)
			failed++
			continue
		}
		fmt.Printf("%s — %s  (%.1fs)\n", ex.ID, ex.Claim, time.Since(start).Seconds())
		if *markdown {
			tbl.RenderMarkdown(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
		fmt.Println()
	}
	if failed > 0 {
		return 1
	}
	return 0
}
