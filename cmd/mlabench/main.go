// Command mlabench regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	mlabench [-exp E5] [-scale 2] [-seed 1]
//	mlabench -perf [-out BENCH_4.json] [-quick]
//
// Without -exp it runs the full suite E1..E19. With -perf it runs the
// engine performance sweep (E19's harness) instead, prints the table, and
// writes the JSON report; it exits nonzero if the optimized engine paths
// changed any commit outcome relative to the unoptimized ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"mla/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "run only this experiment (E1..E19)")
	scale := flag.Int("scale", 2, "workload scale multiplier (1 = quick)")
	seed := flag.Int64("seed", 1, "random seed")
	markdown := flag.Bool("md", false, "render tables as markdown")
	perf := flag.Bool("perf", false, "run the engine performance sweep and write the JSON report")
	out := flag.String("out", "BENCH_4.json", "output path for the -perf JSON report")
	quick := flag.Bool("quick", false, "-perf: smaller workloads, GOMAXPROCS {1,8} only")
	flag.Parse()

	// ^C cancels the in-flight simulation and skips the rest of the suite.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *perf {
		rep, err := bench.PerfRun(ctx, bench.PerfOptions{Seed: *seed, Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: perf: %v\n", err)
			os.Exit(1)
		}
		rep.Table().Render(os.Stdout)
		if err := rep.WriteJSON(*out); err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: perf: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (hotspot speedup %.2fx at max procs)\n", *out, rep.HotspotSpeedup)
		if !rep.EquivalenceOK {
			fmt.Fprintln(os.Stderr, "mlabench: perf: EQUIVALENCE FAILED — optimized paths changed commit outcomes")
			os.Exit(1)
		}
		return
	}

	opts := bench.Options{Scale: *scale, Seed: *seed, Context: ctx}
	failed := 0
	for _, ex := range bench.All() {
		if *exp != "" && ex.ID != *exp {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "mlabench: interrupted")
			os.Exit(1)
		}
		start := time.Now()
		tbl, err := ex.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.ID, err)
			failed++
			continue
		}
		fmt.Printf("%s — %s  (%.1fs)\n", ex.ID, ex.Claim, time.Since(start).Seconds())
		if *markdown {
			tbl.RenderMarkdown(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
