// Command mlabench regenerates every experiment table in EXPERIMENTS.md.
//
// Usage:
//
//	mlabench [-exp E5] [-scale 2] [-seed 1]
//	mlabench -perf [-out BENCH_4.json] [-quick]
//	mlabench -perf -quick -telemetry -trace-out trace.json
//
// Without -exp it runs the full suite E1..E21. With -perf it runs the
// engine performance sweep (E19's harness) instead, prints the table, and
// writes the JSON report; it exits nonzero if the optimized engine paths
// changed any commit outcome relative to the unoptimized ones.
//
// -telemetry records spans and counters from the runs that support tracing
// (the engine, the simulator, the dist bus); -trace-out exports the spans
// as Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing, and implies -telemetry. -pprof PREFIX writes
// PREFIX.cpu.pprof and PREFIX.heap.pprof for `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"mla/internal/bench"
	"mla/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// run keeps the real logic defer-safe: os.Exit in main would skip the
// telemetry export and pprof stop otherwise.
func run() int {
	exp := flag.String("exp", "", "run only this experiment (E1..E22)")
	scale := flag.Int("scale", 2, "workload scale multiplier (1 = quick)")
	seed := flag.Int64("seed", 1, "random seed")
	markdown := flag.Bool("md", false, "render tables as markdown")
	perf := flag.Bool("perf", false, "run the engine performance sweep and write the JSON report")
	out := flag.String("out", "BENCH_4.json", "output path for the -perf JSON report")
	quick := flag.Bool("quick", false, "-perf: smaller workloads, GOMAXPROCS {1,8} only")
	useTel := flag.Bool("telemetry", false, "record spans and counters; print the metrics table at exit")
	traceOut := flag.String("trace-out", "", "write the recorded spans as Chrome trace-event JSON (implies -telemetry)")
	pprofPrefix := flag.String("pprof", "", "write CPU and heap profiles to PREFIX.cpu.pprof / PREFIX.heap.pprof")
	flag.Parse()

	// ^C cancels the in-flight simulation and skips the rest of the suite.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	var tel *telemetry.Telemetry
	if *useTel || *traceOut != "" {
		tel = telemetry.New()
	}
	if *pprofPrefix != "" {
		stop, err := telemetry.StartPprof(*pprofPrefix)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: pprof: %v\n", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintf(os.Stderr, "mlabench: pprof: %v\n", err)
			}
		}()
	}
	// Export telemetry on every path out, including failures: a trace of a
	// failed run is the one you actually want to look at.
	defer func() {
		if tel == nil {
			return
		}
		if *traceOut != "" {
			if err := tel.WriteTrace(*traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "mlabench: trace: %v\n", err)
			} else {
				fmt.Printf("wrote %s (load in ui.perfetto.dev)\n", *traceOut)
			}
		}
		tel.Table().Render(os.Stdout)
	}()

	if *perf {
		rep, err := bench.PerfRun(ctx, bench.PerfOptions{Seed: *seed, Quick: *quick, Telemetry: tel})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: perf: %v\n", err)
			return 1
		}
		rep.Table().Render(os.Stdout)
		if err := rep.WriteJSON(*out); err != nil {
			fmt.Fprintf(os.Stderr, "mlabench: perf: write %s: %v\n", *out, err)
			return 1
		}
		fmt.Printf("wrote %s (hotspot speedup %.2fx at max procs)\n", *out, rep.HotspotSpeedup)
		if !rep.EquivalenceOK {
			fmt.Fprintln(os.Stderr, "mlabench: perf: EQUIVALENCE FAILED — optimized paths changed commit outcomes")
			return 1
		}
		return 0
	}

	opts := bench.Options{Scale: *scale, Seed: *seed, Context: ctx, Telemetry: tel}
	failed := 0
	for _, ex := range bench.All() {
		if *exp != "" && ex.ID != *exp {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "mlabench: interrupted")
			return 1
		}
		start := time.Now()
		tbl, err := ex.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.ID, err)
			failed++
			continue
		}
		fmt.Printf("%s — %s  (%.1fs)\n", ex.ID, ex.Claim, time.Since(start).Seconds())
		if *markdown {
			tbl.RenderMarkdown(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
		fmt.Println()
	}
	if failed > 0 {
		return 1
	}
	return 0
}
