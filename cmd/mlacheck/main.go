// Command mlacheck applies the Theorem 2 analysis to a recorded execution
// trace (the JSON format of internal/trace): is the execution multilevel
// atomic as recorded, is it correctable, and if so what is an equivalent
// multilevel atomic witness.
//
// Usage:
//
//	mlacheck [-witness] [-sample] [file]
//
// Reads the trace from file or stdin. -witness prints the reordered
// witness execution. -sample instead writes an example trace (a correctable
// banking execution) to stdout, for trying the tool out.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mla/internal/bank"
	"mla/internal/model"
	"mla/internal/nested"
	"mla/internal/trace"
	"mla/internal/viz"
)

func main() {
	witness := flag.Bool("witness", false, "print the equivalent multilevel atomic execution")
	tree := flag.Bool("tree", false, "print the witness's Section 7 nested action tree")
	timeline := flag.Bool("timeline", false, "render the execution as per-transaction lanes")
	sample := flag.Bool("sample", false, "emit a sample trace instead of checking")
	flag.Parse()

	if *sample {
		if err := emitSample(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mlacheck:", err)
			os.Exit(1)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlacheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	res, dec, err := trace.Check(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlacheck:", err)
		os.Exit(1)
	}
	fmt.Printf("steps:        %d\n", len(dec.Exec))
	fmt.Printf("transactions: %d\n", len(dec.Exec.Txns()))
	fmt.Printf("levels (k):   %d\n", dec.Nest.K())
	fmt.Printf("atomic:       %v\n", res.Atomic)
	fmt.Printf("correctable:  %v\n", res.Correctable)
	if *timeline {
		fmt.Println("timeline:")
		fmt.Print(viz.Timeline(dec.Exec, dec.Spec, viz.Options{Width: 48}))
	}
	if !res.Correctable {
		fmt.Println("verdict:      the coherent closure of ≤e contains a cycle (Theorem 2)")
		os.Exit(2)
	}
	if *witness || *tree {
		w, ok := res.Witness()
		if !ok {
			fmt.Fprintln(os.Stderr, "mlacheck: witness construction failed")
			os.Exit(1)
		}
		if *witness {
			fmt.Println("witness (an equivalent multilevel atomic execution):")
			for i, s := range w {
				fmt.Printf("  %3d  %s\n", i, s)
			}
		}
		if *tree {
			tr, err := nested.Build(w, dec.Nest, dec.Spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mlacheck: action tree:", err)
				os.Exit(1)
			}
			st := tr.Stats()
			fmt.Printf("nested action tree: %d nodes, %d leaves, depth %d, max fanout %d\n",
				st.Nodes, st.Leaves, st.MaxDepth, st.MaxFanout)
			fmt.Print(tr.String())
		}
	}
}

// emitSample writes a correctable banking execution: two transfers
// interleaved at their phase boundaries plus a serial audit.
func emitSample(w io.Writer) error {
	params := bank.DefaultParams()
	params.Transfers = 3
	params.BankAudits = 1
	params.CreditorAudits = 0
	wl := bank.Generate(params)
	vals := make(map[model.EntityID]model.Value, len(wl.Init))
	for k, v := range wl.Init {
		vals[k] = v
	}
	e, err := model.RunSerial(wl.Programs, vals)
	if err != nil {
		return err
	}
	return trace.Encode(w, e, wl.Nest, wl.Spec, wl.Init)
}
