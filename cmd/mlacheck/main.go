// Command mlacheck applies the Theorem 2 analysis to a recorded execution
// trace (the JSON format of internal/trace): is the execution multilevel
// atomic as recorded, is it correctable, and if so what is an equivalent
// multilevel atomic witness.
//
// Usage:
//
//	mlacheck [-witness] [-stats] [-sample] [file]
//
// Reads the trace from file or stdin. -witness prints the reordered
// witness execution. -stats prints a per-transaction breakdown table.
// -sample instead writes an example trace (a correctable banking
// execution) to stdout, for trying the tool out.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mla/internal/bank"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/nested"
	"mla/internal/trace"
	"mla/internal/viz"
)

func main() {
	witness := flag.Bool("witness", false, "print the equivalent multilevel atomic execution")
	tree := flag.Bool("tree", false, "print the witness's Section 7 nested action tree")
	timeline := flag.Bool("timeline", false, "render the execution as per-transaction lanes")
	stats := flag.Bool("stats", false, "print a per-transaction breakdown table")
	sample := flag.Bool("sample", false, "emit a sample trace instead of checking")
	flag.Parse()

	if *sample {
		if err := emitSample(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mlacheck:", err)
			os.Exit(1)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlacheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	res, dec, err := trace.Check(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlacheck:", err)
		os.Exit(1)
	}
	fmt.Printf("steps:        %d\n", len(dec.Exec))
	fmt.Printf("transactions: %d\n", len(dec.Exec.Txns()))
	fmt.Printf("levels (k):   %d\n", dec.Nest.K())
	fmt.Printf("atomic:       %v\n", res.Atomic)
	fmt.Printf("correctable:  %v\n", res.Correctable)
	if *timeline {
		fmt.Println("timeline:")
		fmt.Print(viz.Timeline(dec.Exec, dec.Spec, viz.Options{Width: 48}))
	}
	if *stats {
		txnStats(dec.Exec).Render(os.Stdout)
	}
	if !res.Correctable {
		fmt.Println("verdict:      the coherent closure of ≤e contains a cycle (Theorem 2)")
		os.Exit(2)
	}
	if *witness || *tree {
		w, ok := res.Witness()
		if !ok {
			fmt.Fprintln(os.Stderr, "mlacheck: witness construction failed")
			os.Exit(1)
		}
		if *witness {
			fmt.Println("witness (an equivalent multilevel atomic execution):")
			for i, s := range w {
				fmt.Printf("  %3d  %s\n", i, s)
			}
		}
		if *tree {
			tr, err := nested.Build(w, dec.Nest, dec.Spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mlacheck: action tree:", err)
				os.Exit(1)
			}
			st := tr.Stats()
			fmt.Printf("nested action tree: %d nodes, %d leaves, depth %d, max fanout %d\n",
				st.Nodes, st.Leaves, st.MaxDepth, st.MaxFanout)
			fmt.Print(tr.String())
		}
	}
}

// txnStats builds the -stats table: per transaction, its step count,
// distinct entities, span in the total order, and own/foreign — the ratio
// of its own steps to other transactions' steps inside its span ("∞" means
// it ran contiguously, with no interleaving at all).
func txnStats(exec model.Execution) *metrics.Table {
	type agg struct {
		steps       int
		first, last int
		entities    map[model.EntityID]bool
	}
	byTxn := make(map[model.TxnID]*agg)
	for i, s := range exec {
		a := byTxn[s.Txn]
		if a == nil {
			a = &agg{first: i, entities: make(map[model.EntityID]bool)}
			byTxn[s.Txn] = a
		}
		a.steps++
		a.last = i
		a.entities[s.Entity] = true
	}
	t := metrics.NewTable("per-transaction:", "txn", "steps", "entities", "span", "own/foreign")
	for _, id := range exec.Txns() {
		a := byTxn[id]
		span := a.last - a.first + 1
		t.Row(string(id), a.steps, len(a.entities), span,
			metrics.Ratio(float64(a.steps), float64(span-a.steps)))
	}
	return t
}

// emitSample writes a correctable banking execution: two transfers
// interleaved at their phase boundaries plus a serial audit.
func emitSample(w io.Writer) error {
	params := bank.DefaultParams()
	params.Transfers = 3
	params.BankAudits = 1
	params.CreditorAudits = 0
	wl := bank.Generate(params)
	vals := make(map[model.EntityID]model.Value, len(wl.Init))
	for k, v := range wl.Init {
		vals[k] = v
	}
	e, err := model.RunSerial(wl.Programs, vals)
	if err != nil {
		return err
	}
	return trace.Encode(w, e, wl.Nest, wl.Spec, wl.Init)
}
