// Command mlacheck applies the Theorem 2 analysis to a recorded execution
// trace (the JSON format of internal/trace): is the execution multilevel
// atomic as recorded, is it correctable, and if so what is an equivalent
// multilevel atomic witness.
//
// Usage:
//
//	mlacheck [-witness] [-tree] [-timeline] [-stats] [file]
//	mlacheck -history <file|->
//	mlacheck -sample
//
// Reads the trace from file or stdin. -witness prints the reordered
// witness execution. -stats prints a per-transaction breakdown table.
// -sample instead writes an example trace (a correctable banking
// execution) to stdout, for trying the tool out.
//
// -history runs the independent black-box checker (internal/history) over
// an execution history instead: either the native mla-history/v1 format or
// a Chrome trace-event export from -trace-out (every process lane that
// recorded step events is checked). On a violation the minimal witness
// cycle is printed and the exit status is 2; malformed input exits 1 with
// a diagnostic.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mla/internal/bank"
	"mla/internal/history"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/nested"
	"mla/internal/trace"
	"mla/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests can drive every path; the
// return value is the exit status. All file handles it opens are closed
// before returning, on success and failure alike.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlacheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	witness := fs.Bool("witness", false, "print the equivalent multilevel atomic execution")
	tree := fs.Bool("tree", false, "print the witness's Section 7 nested action tree")
	timeline := fs.Bool("timeline", false, "render the execution as per-transaction lanes")
	stats := fs.Bool("stats", false, "print a per-transaction breakdown table")
	sample := fs.Bool("sample", false, "emit a sample trace instead of checking")
	histFile := fs.String("history", "", "check an execution history (native or Chrome trace JSON; - for stdin)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *sample {
		if fs.NArg() > 0 {
			fmt.Fprintln(stderr, "mlacheck: -sample writes to stdout and takes no file argument")
			return 2
		}
		if *histFile != "" {
			fmt.Fprintln(stderr, "mlacheck: -sample and -history are mutually exclusive")
			return 2
		}
		if err := emitSample(stdout); err != nil {
			fmt.Fprintln(stderr, "mlacheck:", err)
			return 1
		}
		return 0
	}

	if *histFile != "" {
		if fs.NArg() > 0 {
			fmt.Fprintln(stderr, "mlacheck: -history takes its input as the flag value, not a positional argument")
			return 2
		}
		return runHistory(*histFile, stdout, stderr)
	}

	var in io.Reader = os.Stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "mlacheck:", err)
			return 1
		}
		defer f.Close()
		in = f
	}

	res, dec, err := trace.Check(in)
	if err != nil {
		fmt.Fprintln(stderr, "mlacheck:", err)
		return 1
	}
	fmt.Fprintf(stdout, "steps:        %d\n", len(dec.Exec))
	fmt.Fprintf(stdout, "transactions: %d\n", len(dec.Exec.Txns()))
	fmt.Fprintf(stdout, "levels (k):   %d\n", dec.Nest.K())
	fmt.Fprintf(stdout, "atomic:       %v\n", res.Atomic)
	fmt.Fprintf(stdout, "correctable:  %v\n", res.Correctable)
	if *timeline {
		fmt.Fprintln(stdout, "timeline:")
		fmt.Fprint(stdout, viz.Timeline(dec.Exec, dec.Spec, viz.Options{Width: 48}))
	}
	if *stats {
		txnStats(dec.Exec).Render(stdout)
	}
	if !res.Correctable {
		fmt.Fprintln(stdout, "verdict:      the coherent closure of ≤e contains a cycle (Theorem 2)")
		return 2
	}
	if *witness || *tree {
		w, ok := res.Witness()
		if !ok {
			fmt.Fprintln(stderr, "mlacheck: witness construction failed")
			return 1
		}
		if *witness {
			fmt.Fprintln(stdout, "witness (an equivalent multilevel atomic execution):")
			for i, s := range w {
				fmt.Fprintf(stdout, "  %3d  %s\n", i, s)
			}
		}
		if *tree {
			tr, err := nested.Build(w, dec.Nest, dec.Spec)
			if err != nil {
				fmt.Fprintln(stderr, "mlacheck: action tree:", err)
				return 1
			}
			st := tr.Stats()
			fmt.Fprintf(stdout, "nested action tree: %d nodes, %d leaves, depth %d, max fanout %d\n",
				st.Nodes, st.Leaves, st.MaxDepth, st.MaxFanout)
			fmt.Fprint(stdout, tr.String())
		}
	}
	return 0
}

// runHistory checks one history input — native mla-history/v1 or a Chrome
// trace export, sniffed from the content — and reports per-run verdicts.
func runHistory(path string, stdout, stderr io.Writer) int {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintln(stderr, "mlacheck:", err)
		return 1
	}

	// A spool (JSONL, possibly many boots concatenated by crash-restarts)
	// is sniffed from its header line BEFORE the single-document probe —
	// a multi-line stream is not one JSON value.
	if history.SniffSpool(data) {
		h, err := history.ReadSpool(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(stderr, "mlacheck:", err)
			return 1
		}
		rep, err := history.Check(h)
		if err != nil {
			fmt.Fprintln(stderr, "mlacheck: spool:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-24s %s\n", "spool:", rep.Summary())
		if rep.Witness != nil {
			fmt.Fprint(stdout, rep.Witness)
			return 2
		}
		return 0
	}

	var probe struct {
		Format      string          `json:"format"`
		TraceEvents json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		fmt.Fprintln(stderr, "mlacheck: history input is not JSON:", err)
		return 1
	}

	type namedHistory struct {
		name string
		h    *history.History
	}
	var inputs []namedHistory
	switch {
	case probe.Format == history.Format:
		h, err := history.Decode(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(stderr, "mlacheck:", err)
			return 1
		}
		inputs = append(inputs, namedHistory{name: "history", h: h})
	case probe.TraceEvents != nil:
		runs, err := history.ImportChrome(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(stderr, "mlacheck:", err)
			return 1
		}
		if len(runs) == 0 {
			fmt.Fprintln(stderr, "mlacheck: trace has no step-recording lanes (was it exported with telemetry on?)")
			return 1
		}
		for _, r := range runs {
			name := r.Name
			if name == "" {
				name = fmt.Sprintf("pid %d", r.PID)
			}
			inputs = append(inputs, namedHistory{name: name, h: r.History})
		}
	default:
		fmt.Fprintf(stderr, "mlacheck: unrecognized history input (want format %q or a Chrome traceEvents export)\n", history.Format)
		return 1
	}

	status := 0
	for _, in := range inputs {
		rep, err := history.Check(in.h)
		if err != nil {
			fmt.Fprintf(stderr, "mlacheck: %s: %v\n", in.name, err)
			return 1
		}
		fmt.Fprintf(stdout, "%-24s %s\n", in.name+":", rep.Summary())
		if rep.Witness != nil {
			fmt.Fprint(stdout, rep.Witness)
			status = 2
		}
	}
	return status
}

// txnStats builds the -stats table: per transaction, its step count,
// distinct entities, span in the total order, and own/foreign — the ratio
// of its own steps to other transactions' steps inside its span ("∞" means
// it ran contiguously, with no interleaving at all).
func txnStats(exec model.Execution) *metrics.Table {
	type agg struct {
		steps       int
		first, last int
		entities    map[model.EntityID]bool
	}
	byTxn := make(map[model.TxnID]*agg)
	for i, s := range exec {
		a := byTxn[s.Txn]
		if a == nil {
			a = &agg{first: i, entities: make(map[model.EntityID]bool)}
			byTxn[s.Txn] = a
		}
		a.steps++
		a.last = i
		a.entities[s.Entity] = true
	}
	t := metrics.NewTable("per-transaction:", "txn", "steps", "entities", "span", "own/foreign")
	for _, id := range exec.Txns() {
		a := byTxn[id]
		span := a.last - a.first + 1
		t.Row(string(id), a.steps, len(a.entities), span,
			metrics.Ratio(float64(a.steps), float64(span-a.steps)))
	}
	return t
}

// emitSample writes a correctable banking execution: two transfers
// interleaved at their phase boundaries plus a serial audit.
func emitSample(w io.Writer) error {
	params := bank.DefaultParams()
	params.Transfers = 3
	params.BankAudits = 1
	params.CreditorAudits = 0
	wl := bank.Generate(params)
	vals := make(map[model.EntityID]model.Value, len(wl.Init))
	for k, v := range wl.Init {
		vals[k] = v
	}
	e, err := model.RunSerial(wl.Programs, vals)
	if err != nil {
		return err
	}
	return trace.Encode(w, e, wl.Nest, wl.Spec, wl.Init)
}
