package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec runs the CLI with captured output and returns (status, stdout, stderr).
func execCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	status := run(args, &out, &errb)
	return status, out.String(), errb.String()
}

// write drops content into a temp file and returns its path.
func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// sampleTrace round-trips -sample output through a file so the check paths
// below exercise the same bytes the tool itself emits.
func sampleTrace(t *testing.T) string {
	t.Helper()
	status, out, errs := execCLI(t, "-sample")
	if status != 0 {
		t.Fatalf("-sample exited %d: %s", status, errs)
	}
	return write(t, "sample.json", out)
}

func TestCheckSampleTrace(t *testing.T) {
	status, out, errs := execCLI(t, sampleTrace(t))
	if status != 0 {
		t.Fatalf("checking the sample trace exited %d: %s", status, errs)
	}
	if !strings.Contains(out, "correctable:  true") {
		t.Errorf("sample verdict missing:\n%s", out)
	}
}

// Regression: malformed input must produce a diagnostic and exit 1, never a
// panic or a silent 0.
func TestMalformedInputs(t *testing.T) {
	cases := map[string]string{
		"not json":          `{oops`,
		"empty object":      `{}`,
		"bad k":             `{"k": 1, "nest": {}, "cuts": {}, "steps": []}`,
		"step missing txn":  `{"k": 2, "nest": {}, "cuts": {}, "steps": [{"txn": "ghost", "seq": 1, "entity": "x", "before": 0, "after": 1}]}`,
		"step zero seq":     `{"k": 2, "nest": {"t1": []}, "cuts": {}, "steps": [{"txn": "t1", "seq": 0, "entity": "x", "before": 0, "after": 1}]}`,
		"cut out of range":  `{"k": 2, "nest": {"t1": []}, "cuts": {"t1": [9]}, "steps": [{"txn": "t1", "seq": 1, "entity": "x", "before": 0, "after": 1}]}`,
		"wrong label arity": `{"k": 3, "nest": {"t1": []}, "cuts": {}, "steps": [{"txn": "t1", "seq": 1, "entity": "x", "before": 0, "after": 1}]}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			status, _, errs := execCLI(t, write(t, "bad.json", content))
			if status != 1 {
				t.Errorf("exit = %d, want 1 (stderr: %s)", status, errs)
			}
			if !strings.Contains(errs, "mlacheck:") {
				t.Errorf("no diagnostic on stderr: %q", errs)
			}
		})
	}
}

func TestMissingFileExitsOne(t *testing.T) {
	status, _, errs := execCLI(t, filepath.Join(t.TempDir(), "nope.json"))
	if status != 1 {
		t.Errorf("exit = %d, want 1", status)
	}
	if errs == "" {
		t.Error("no diagnostic for a missing file")
	}
}

// Regression: -sample used to accept (and ignore) a file argument; it must
// be a usage error, as must combining it with -history.
func TestUsageContradictions(t *testing.T) {
	cases := [][]string{
		{"-sample", "trace.json"},
		{"-sample", "-history", "h.json"},
		{"-history", "h.json", "extra.json"},
		{"-nosuchflag"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			status, _, _ := execCLI(t, args...)
			if status != 2 {
				t.Errorf("exit = %d, want 2", status)
			}
		})
	}
}

func TestHistoryViolationsExitTwo(t *testing.T) {
	paths, err := filepath.Glob("../../internal/history/testdata/violation_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("want >= 3 violating testdata histories, found %d", len(paths))
	}
	for _, p := range paths {
		t.Run(filepath.Base(p), func(t *testing.T) {
			status, out, errs := execCLI(t, "-history", p)
			if status != 2 {
				t.Errorf("exit = %d, want 2 (stderr: %s)", status, errs)
			}
			if !strings.Contains(out, "VIOLATION") || !strings.Contains(out, "witness cycle") {
				t.Errorf("violation output missing verdict or witness:\n%s", out)
			}
		})
	}
}

func TestHistoryAcceptExitsZero(t *testing.T) {
	status, out, errs := execCLI(t, "-history", "../../internal/history/testdata/accept_mixed.json")
	if status != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", status, errs)
	}
	if !strings.Contains(out, "ATOMIC") && !strings.Contains(out, "CORRECTABLE") {
		t.Errorf("no verdict printed:\n%s", out)
	}
}

func TestHistoryMalformedExitsOne(t *testing.T) {
	cases := map[string]string{
		"not json":        `{oops`,
		"wrong format":    `{"format": "mystery/v9", "k": 2, "levels": {}, "events": []}`,
		"no step lanes":   `{"traceEvents": [{"name": "run", "cat": "run", "ph": "X", "ts": 0, "dur": 5, "pid": 1, "tid": 0}]}`,
		"unrecognized":    `{"hello": "world"}`,
		"invalid history": `{"format": "mla-history/v1", "k": 1, "levels": {}, "events": []}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			status, _, errs := execCLI(t, "-history", write(t, "h.json", content))
			if status != 1 {
				t.Errorf("exit = %d, want 1 (stderr: %s)", status, errs)
			}
			if !strings.Contains(errs, "mlacheck:") {
				t.Errorf("no diagnostic on stderr: %q", errs)
			}
		})
	}
}

func TestHistoryMissingFileExitsOne(t *testing.T) {
	status, _, _ := execCLI(t, "-history", filepath.Join(t.TempDir(), "nope.json"))
	if status != 1 {
		t.Errorf("exit = %d, want 1", status)
	}
}

func TestWitnessAndStatsFlags(t *testing.T) {
	status, out, errs := execCLI(t, "-witness", "-stats", "-tree", sampleTrace(t))
	if status != 0 {
		t.Fatalf("exit = %d: %s", status, errs)
	}
	for _, want := range []string{"witness (", "per-transaction:", "nested action tree:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
