package mla_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mla/internal/bank"
	"mla/internal/bench"
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

// The experiment benchmarks: each regenerates one EXPERIMENTS.md table per
// iteration at scale 1. Run `go test -bench=E -benchtime=1x -v` to see the
// tables once, or cmd/mlabench for the full-scale versions.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var ex *bench.Experiment
	for _, e := range bench.All() {
		if e.ID == id {
			ex = &e
			break
		}
	}
	if ex == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := ex.Run(bench.Options{Scale: 1, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if tbl.Len() == 0 {
			b.Fatalf("%s produced an empty table", id)
		}
	}
}

func BenchmarkE1Equivalence(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2PaperExamples(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3Extension(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4CycleRate(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5Throughput(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6Audit(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7NestDepth(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8ActionTrees(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9CheckerScaling(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE10Ablations(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11Recovery(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Sessions(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13Distributed(b *testing.B)   { benchExperiment(b, "E13") }
func BenchmarkE14CrashRecovery(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15Conversations(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkE16HotSpot(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17EngineCrash(b *testing.B)   { benchExperiment(b, "E17") }
func BenchmarkE18Chaos(b *testing.B)         { benchExperiment(b, "E18") }
func BenchmarkE19Perf(b *testing.B)          { benchExperiment(b, "E19") }
func BenchmarkE20MixedHistory(b *testing.B)  { benchExperiment(b, "E20") }
func BenchmarkE21Serve(b *testing.B)         { benchExperiment(b, "E21") }

// Micro-benchmarks for the hot paths.

// makeExecution builds a random n-step execution over txns transactions.
func makeExecution(n, txns, entities int, seed int64) (model.Execution, *nest.Nest) {
	rng := rand.New(rand.NewSource(seed))
	progs := make([]model.Program, txns)
	nst := nest.New(3)
	per := n / txns
	for i := range progs {
		ops := make([]model.Op, per)
		for j := range ops {
			ops[j] = model.Add(model.EntityID(fmt.Sprintf("x%02d", rng.Intn(entities))), 1)
		}
		id := model.TxnID(fmt.Sprintf("t%03d", i))
		progs[i] = &model.Scripted{Txn: id, Ops: ops}
		nst.Add(id, fmt.Sprintf("c%d", i%3))
	}
	e, err := model.RandomInterleave(progs, map[model.EntityID]model.Value{}, rng)
	if err != nil {
		panic(err)
	}
	return e, nst
}

func BenchmarkCoherentClosure(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("steps=%d", n), func(b *testing.B) {
			e, nst := makeExecution(n, 8, 8, 42)
			spec := breakpoint.Uniform{Levels: 3, C: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coherent.CheckExecution(e, nst, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWitnessExtension(b *testing.B) {
	// Build a guaranteed-correctable, non-trivial execution: transactions
	// of the same class interleave freely (atomic under C=2), classes run
	// one after another.
	rng := rand.New(rand.NewSource(17))
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	nst := nest.New(3)
	var e model.Execution
	vals := map[model.EntityID]model.Value{}
	for class := 0; class < 3; class++ {
		var progs []model.Program
		for i := 0; i < 4; i++ {
			id := model.TxnID(fmt.Sprintf("c%dt%d", class, i))
			ops := make([]model.Op, 8)
			for j := range ops {
				ops[j] = model.Add(model.EntityID(fmt.Sprintf("x%02d", rng.Intn(8))), 1)
			}
			progs = append(progs, &model.Scripted{Txn: id, Ops: ops})
			nst.Add(id, fmt.Sprintf("g%d", class))
		}
		part, err := model.RandomInterleave(progs, vals, rng)
		if err != nil {
			b.Fatal(err)
		}
		e = append(e, part...)
	}
	res, err := coherent.CheckExecution(e, nst, spec)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Correctable {
		b.Fatal("constructed execution must be correctable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := res.Witness(); !ok {
			b.Fatal("witness failed")
		}
	}
}

func BenchmarkPreventerRequests(b *testing.B) {
	wl := bank.Generate(bank.DefaultParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sched.NewPreventer(wl.Nest, wl.Spec)
		if _, err := sim.Run(sim.DefaultConfig(), wl.Programs, c, wl.Spec, wl.Init); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectorRequests(b *testing.B) {
	wl := bank.Generate(bank.DefaultParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sched.NewDetector(wl.Nest, wl.Spec)
		if _, err := sim.Run(sim.DefaultConfig(), wl.Programs, c, wl.Spec, wl.Init); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimBanking2PL(b *testing.B) {
	wl := bank.Generate(bank.DefaultParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.DefaultConfig(), wl.Programs, sched.NewTwoPhase(), wl.Spec, wl.Init); err != nil {
			b.Fatal(err)
		}
	}
}
