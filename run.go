package mla

import (
	"context"

	"mla/internal/engine"
	"mla/internal/fault"
	"mla/internal/sched"
	"mla/internal/telemetry"
)

// This file is the façade's execution surface: run transaction programs
// for real — concurrently, under a pluggable concurrency control, with
// optional crash injection — without importing the internal packages.
// Everything here is context-first and mirrors internal/engine; the
// deterministic discrete-event counterpart stays in internal/sim.

// Control is a pluggable concurrency control (see NewControl for the
// catalogue). Controls are single-run and volatile: build a fresh one per
// Run.
type Control = sched.Control

// ControlKind names a control family for NewControl.
type ControlKind = sched.ControlKind

// The control catalogue: the paper's Section 6 controls plus the
// serializability baselines.
const (
	// ControlNone grants everything (the chaos ceiling).
	ControlNone = sched.KindNone
	// ControlSerial runs one transaction at a time (the throughput floor).
	ControlSerial = sched.KindSerial
	// ControlTwoPhase is strict 2PL with waits-for deadlock detection.
	ControlTwoPhase = sched.KindTwoPhase
	// ControlShardedTwoPhase is strict 2PL with wound-wait over a striped
	// lock table; the concurrent engine's scalable choice.
	ControlShardedTwoPhase = sched.KindShardedTwoPhase
	// ControlTimestamp is basic timestamp ordering.
	ControlTimestamp = sched.KindTimestamp
	// ControlPrevent is the paper's cycle-prevention control.
	ControlPrevent = sched.KindPrevent
	// ControlPreventDirect is prevention without transitive tracking.
	ControlPreventDirect = sched.KindPreventDirect
	// ControlDetect is the paper's cycle-detection control.
	ControlDetect = sched.KindDetect
)

// NewControl constructs a fresh control of the given kind. The multilevel
// controls (ControlPrevent, ControlPreventDirect, ControlDetect) need the
// class nest and breakpoint specification; the baselines ignore both and
// accept nil.
func NewControl(kind ControlKind, n *Nest, bp BreakpointSpec) (Control, error) {
	return sched.New(kind, n, bp)
}

// ParseControlKind resolves a kind by name ("2pl", "prevent", ...),
// inverting ControlKind.String.
func ParseControlKind(name string) (ControlKind, error) { return sched.ParseControlKind(name) }

// Observer receives a run's lifecycle events (steps, waits, aborts, commit
// groups, faults, crashes); NopObserver is the embeddable no-op and
// EventCounts a ready-made tally.
type Observer = engine.Observer

// NopObserver implements Observer with no-ops; embed it to implement only
// the events of interest.
type NopObserver = engine.NopObserver

// EventCounts is a ready-made Observer tallying every event; read it only
// after the run returns.
type EventCounts = engine.EventCounts

// TeeObservers fans one run's events out to several observers (nil entries
// are dropped; a nil result means "no observer").
func TeeObservers(obs ...Observer) Observer { return engine.Tee(obs...) }

// Telemetry is the shared observability sink: a registry of named counters,
// gauges, and histograms plus a span tracer whose output loads in Perfetto
// (ui.perfetto.dev) via WriteTrace. Create one with NewTelemetry, attach it
// to a run with WithTelemetry, then export.
type Telemetry = telemetry.Telemetry

// NewTelemetry creates an empty telemetry sink.
func NewTelemetry() *Telemetry { return telemetry.New() }

// WithTelemetry returns cfg with a span- and counter-recording observer
// attached (teed with any observer already present). Every engine event
// becomes a span: intervals for the run, each transaction attempt,
// breakpoint unit, lock wait, and recovery pass; instants for commit
// groups, aborts, faults, give-ups, and crashes. label names the trace
// lane; a nil tel returns cfg unchanged.
func WithTelemetry(cfg RunConfig, tel *Telemetry, label string) RunConfig {
	if tel == nil {
		return cfg
	}
	cfg.Observer = engine.Tee(cfg.Observer, engine.NewTelemetryObserver(tel, label))
	return cfg
}

// RunConfig bounds a concurrent run: timeout, backoff, per-step delay,
// seed, observer, restart budget, fault injection.
type RunConfig = engine.Config

// RunResult reports a concurrent run: the committed execution, final
// values, and throughput/latency/abort accounting.
type RunResult = engine.Result

// CrashPlan configures RunWithCrashes: the workload bounds plus the fault
// plan (crash points, torn tails, transient step errors) and a fresh
// control per recovery round.
type CrashPlan = engine.CrashPlan

// CrashResult aggregates a crash-recovery run across all rounds.
type CrashResult = engine.CrashResult

// FaultPlan declares deterministic fault injection: transient step errors,
// crash append counts, wall-clock crash budgets, torn log tails.
type FaultPlan = fault.Plan

// Run executes the programs concurrently — one goroutine per transaction —
// under the control, against an in-memory store initialized with init.
// Cancelling ctx (or exceeding cfg.Timeout, whichever is first) stops every
// goroutine before Run returns. The returned execution contains exactly the
// committed steps; validate it with Spec.Atomic or Spec.Correctable.
func Run(ctx context.Context, cfg RunConfig, programs []Program, control Control, bp BreakpointSpec, init map[EntityID]Value) (*RunResult, error) {
	return engine.Run(ctx, cfg, programs, control, bp, init)
}

// RunWithCrashes executes the plan's workload to completion across
// injected crashes: each crash loses all volatile state (and optionally
// tears the durable log tail), a write-ahead log recovers the committed
// prefix, and a fresh round restarts every transaction without a durable
// commit. Committed work is never redone.
func RunWithCrashes(ctx context.Context, plan CrashPlan, programs []Program) (*CrashResult, error) {
	return engine.RunWithCrashes(ctx, plan, programs)
}
