module mla

go 1.22
