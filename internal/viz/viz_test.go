package viz

import (
	"strings"
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
)

func sampleExec() model.Execution {
	return model.Execution{
		{Txn: "t1", Seq: 1, Entity: "A", Label: "withdraw", Before: 100, After: 90},
		{Txn: "t2", Seq: 1, Entity: "B", Label: "read", Before: 5, After: 5},
		{Txn: "t1", Seq: 2, Entity: "acct/f0/a1", Label: "deposit", Before: 0, After: 10},
	}
}

func TestTimelineBasics(t *testing.T) {
	out := Timeline(sampleExec(), nil, Options{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lanes, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "t1") || !strings.HasPrefix(lines[1], "t2") {
		t.Errorf("lane order wrong:\n%s", out)
	}
	if !strings.Contains(lines[0], "with(A)") {
		t.Errorf("missing step cell:\n%s", out)
	}
	// Hierarchical entity names are shortened to the last component.
	if !strings.Contains(lines[0], "(a1)") {
		t.Errorf("entity not shortened:\n%s", out)
	}
	// Transaction ends are marked.
	if strings.Count(out, "│") != 2 {
		t.Errorf("want 2 end markers:\n%s", out)
	}
}

func TestTimelineBreakpointMarkers(t *testing.T) {
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	out := Timeline(sampleExec(), spec, Options{})
	// t1 has an interior boundary after step 1: marker ╫2.
	if !strings.Contains(out, "╫2") {
		t.Errorf("missing breakpoint marker:\n%s", out)
	}
}

func TestTimelineValues(t *testing.T) {
	out := Timeline(sampleExec(), nil, Options{ShowValues: true})
	if !strings.Contains(out, "100→90") {
		t.Errorf("missing values:\n%s", out)
	}
}

func TestTimelineTruncation(t *testing.T) {
	out := Timeline(sampleExec(), nil, Options{Width: 2})
	if !strings.Contains(out, "1 more steps") {
		t.Errorf("missing truncation note:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	if got := Timeline(nil, nil, Options{}); !strings.Contains(got, "empty") {
		t.Errorf("empty rendering = %q", got)
	}
}
