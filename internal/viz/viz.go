// Package viz renders executions as per-transaction timelines: one lane per
// transaction, steps in global order, with breakpoint coarseness markers.
// Used by the examples and cmd/mlacheck to make interleavings and their
// breakpoint structure visible at a glance.
//
//	t1   w(A)──w(B)─╫2──────────────d(C)──d(D)│
//	t2   ──────────────w(A)──w(C)─╫2──────────d(E)…
//
// ╫n marks a breakpoint of coarseness n after the preceding step; │ marks
// the end of the transaction.
package viz

import (
	"fmt"
	"strings"

	"mla/internal/breakpoint"
	"mla/internal/model"
)

// Options control the rendering.
type Options struct {
	// Width truncates the timeline after this many global steps (0 = all).
	Width int
	// ShowValues appends before→after values to each step cell.
	ShowValues bool
}

// Timeline renders the execution as one lane per transaction. spec may be
// nil, in which case no breakpoint markers are drawn.
func Timeline(e model.Execution, spec breakpoint.Spec, opts Options) string {
	if len(e) == 0 {
		return "(empty execution)\n"
	}
	n := len(e)
	if opts.Width > 0 && opts.Width < n {
		n = opts.Width
	}

	txns := e.Txns()
	lane := make(map[model.TxnID]int, len(txns))
	for i, t := range txns {
		lane[t] = i
	}

	// Per-transaction step prefixes for breakpoint queries.
	prefixes := make(map[model.TxnID][]model.Step)
	counts := make(map[model.TxnID]int)
	for _, s := range e {
		counts[s.Txn]++
	}

	// Build cells: cells[lane][pos].
	cells := make([][]string, len(txns))
	for i := range cells {
		cells[i] = make([]string, n)
	}
	width := 0
	for pos := 0; pos < n; pos++ {
		s := e[pos]
		cell := stepCell(s, opts)
		prefixes[s.Txn] = append(prefixes[s.Txn], s)
		if len(prefixes[s.Txn]) < counts[s.Txn] && spec != nil {
			cell += fmt.Sprintf("╫%d", spec.CutAfter(s.Txn, prefixes[s.Txn]))
		} else if len(prefixes[s.Txn]) == counts[s.Txn] {
			cell += "│"
		}
		cells[lane[s.Txn]][pos] = cell
		if w := cellWidth(cell); w > width {
			width = w
		}
	}

	nameW := 0
	for _, t := range txns {
		if len(t) > nameW {
			nameW = len(string(t))
		}
	}

	var b strings.Builder
	for li, t := range txns {
		b.WriteString(pad(string(t), nameW))
		b.WriteString("  ")
		for pos := 0; pos < n; pos++ {
			c := cells[li][pos]
			if c == "" {
				b.WriteString(strings.Repeat("─", width))
			} else {
				b.WriteString(c)
				if w := cellWidth(c); w < width {
					b.WriteString(strings.Repeat("─", width-w))
				}
			}
		}
		b.WriteString("\n")
	}
	if opts.Width > 0 && opts.Width < len(e) {
		fmt.Fprintf(&b, "… %d more steps\n", len(e)-opts.Width)
	}
	return b.String()
}

func stepCell(s model.Step, opts Options) string {
	op := s.Label
	if op == "" {
		op = "op"
	}
	if len(op) > 4 {
		op = op[:4]
	}
	cell := fmt.Sprintf("%s(%s)", op, shortEntity(s.Entity))
	if opts.ShowValues {
		cell += fmt.Sprintf("%d→%d", s.Before, s.After)
	}
	return cell
}

// shortEntity keeps the last path component of hierarchical entity names.
func shortEntity(x model.EntityID) string {
	s := string(x)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	if len(s) > 8 {
		s = s[:8]
	}
	return s
}

// cellWidth counts display runes (the box-drawing characters are single
// width).
func cellWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
