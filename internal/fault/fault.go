// Package fault is a seeded, deterministic fault-injection layer for the
// executors. The paper's Section 1 names the transaction as a *unit of
// recovery*; making that role testable requires failures that are
// first-class and reproducible rather than ad-hoc. A Plan describes which
// faults to inject — system crashes keyed to WAL-append counts or a
// wall-clock budget, torn durable tails, transient step errors the engine
// must retry, and dropped or extra-delayed distributed announcements — and
// an Injector executes the plan deterministically: every decision is a pure
// function of the plan's seed and the event's identity (transaction, step,
// attempt, retry, or a global counter), so a failing run replays exactly.
//
// The Injector is safe for concurrent use: the engine consults it from one
// goroutine per transaction. One Injector spans all rounds of a
// crash-recovery run, so each configured crash fires exactly once and the
// run provably converges once the plan is exhausted.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mla/internal/model"
)

// ErrCrash is the sentinel for an injected whole-system crash: all volatile
// state (schedulers, in-flight transactions, value caches) is lost and only
// the durable medium survives. engine.RunWithCrashes recognizes it and runs
// recovery instead of failing the plan.
var ErrCrash = errors.New("fault: injected crash")

// TransientError is an injected, retryable step failure — the model of a
// lost message or timed-out I/O. The step was NOT performed; the engine
// retries it with capped exponential backoff.
type TransientError struct {
	Txn model.TxnID
	Seq int
	Try int // 0 = first attempt at this step
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: transient error at %s seq %d (try %d)", e.Txn, e.Seq, e.Try)
}

// Plan describes the faults to inject. The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision. Two injectors built from
	// equal plans make identical decisions for identical event identities.
	Seed int64

	// CrashAppends lists cumulative WAL-append counts at which the system
	// crashes: the Nth durable append (update and commit records alike,
	// counted across recovery rounds) triggers ErrCrash. Each entry fires
	// once; entries are sorted internally.
	CrashAppends []int64

	// CrashAfter, when positive, crashes the system once after this much
	// wall-clock time in the engine. It fires at most once per Injector.
	CrashAfter time.Duration

	// TearTail drops the last TearTail records from the durable medium at
	// each crash — a torn write: records the engine believed durable never
	// reached the device. The WAL discipline makes any prefix a consistent
	// recovery input, which the recovery path (and FuzzWALRecovery) assert.
	TearTail int

	// StepErrorRate is the probability in [0, 1] that a step attempt fails
	// with a TransientError before reaching the store. At 1.0 every try
	// fails, which exercises the retry cap and the restart budget.
	StepErrorRate float64

	// AnnounceDropRate is the probability that a distributed boundary
	// announcement is dropped entirely. Safe by the monotone-wait argument
	// (internal/dist): a missing announcement only under-reports progress,
	// making remote schedulers wait longer, never admit more.
	AnnounceDropRate float64

	// AnnounceDelayRate is the probability that an announcement is delayed
	// by AnnounceExtraDelay additional time units.
	AnnounceDelayRate float64

	// AnnounceExtraDelay is the extra latency applied to delayed
	// announcements, in simulator time units.
	AnnounceExtraDelay int64

	// NetDropRate is the probability that an individual bus message of the
	// distributed control (boundary, finish, ack, heartbeat, probe, or sync
	// traffic — see internal/net) is lost. Loss is safe end to end:
	// boundary announcements only under-report remote progress, finishes
	// are retransmitted until acknowledged, and heartbeat loss at worst
	// makes the failure detector suspect a live peer — which costs aborts,
	// never wrong admissions.
	NetDropRate float64

	// NetDelayRate is the probability that a bus message takes
	// NetExtraDelay additional time units — enough extra reorders it
	// behind later traffic.
	NetDelayRate float64

	// NetExtraDelay is the extra latency applied to delayed bus messages.
	NetExtraDelay int64

	// Partitions are named network partitions applied on the simulated
	// clock by the distributed control's chaos harness (internal/dist).
	Partitions []Partition

	// ProcCrashes are processor crash windows: at At the processor loses
	// its volatile scheduler state (views, wait records, and the
	// transactions resident on it); at Rejoin it comes back empty and
	// rebuilds its views by anti-entropy resync from its peers.
	ProcCrashes []ProcCrash
}

// Partition describes one named partition window. While active, processors
// on different sides cannot exchange any message.
type Partition struct {
	Name  string
	At    int64
	Heal  int64   // 0 = never heals
	Sides [][]int // processor groups; empty = split into two halves
}

// ProcCrash describes one processor crash window.
type ProcCrash struct {
	Proc   int
	At     int64
	Rejoin int64 // 0 = stays down forever
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return len(p.CrashAppends) > 0 || p.CrashAfter > 0 || p.StepErrorRate > 0 ||
		p.AnnounceDropRate > 0 || p.AnnounceDelayRate > 0 ||
		p.NetDropRate > 0 || p.NetDelayRate > 0 ||
		len(p.Partitions) > 0 || len(p.ProcCrashes) > 0
}

// Crashes returns the total number of crashes the plan can inject — the
// bound on recovery rounds a crash-tolerant run needs.
func (p Plan) Crashes() int {
	n := len(p.CrashAppends)
	if p.CrashAfter > 0 {
		n++
	}
	return n
}

// Injector executes a Plan. Create one per crash-tolerant run and share it
// across recovery rounds.
type Injector struct {
	plan Plan

	mu        sync.Mutex
	appends   int64
	crashIdx  int  // next unfired entry of plan.CrashAppends
	wallArmed bool // CrashAfter not yet handed out
	announceN int64
	netN      map[string]int64 // per-kind bus message counters
}

// New builds an injector for the plan.
func New(p Plan) *Injector {
	crashes := append([]int64(nil), p.CrashAppends...)
	sort.Slice(crashes, func(i, j int) bool { return crashes[i] < crashes[j] })
	p.CrashAppends = crashes
	return &Injector{plan: p, wallArmed: p.CrashAfter > 0, netN: make(map[string]int64)}
}

// Plan returns the injector's plan (crash points sorted).
func (i *Injector) Plan() Plan { return i.plan }

// OnAppend counts one durable WAL append and reports whether the system
// crashes now. Each configured crash point fires exactly once.
func (i *Injector) OnAppend() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.appends++
	if i.crashIdx < len(i.plan.CrashAppends) && i.appends >= i.plan.CrashAppends[i.crashIdx] {
		i.crashIdx++
		return true
	}
	return false
}

// Appends returns the number of durable appends counted so far.
func (i *Injector) Appends() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.appends
}

// ArmWallClock hands out the wall-clock crash budget at most once: the
// first caller receives (CrashAfter, true) and must crash the system when
// the budget elapses; later callers receive false.
func (i *Injector) ArmWallClock() (time.Duration, bool) {
	if i == nil {
		return 0, false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.wallArmed {
		return 0, false
	}
	i.wallArmed = false
	return i.plan.CrashAfter, true
}

// TearTail returns how many trailing records each crash tears off the
// durable medium.
func (i *Injector) TearTail() int {
	if i == nil {
		return 0
	}
	return i.plan.TearTail
}

// StepError decides whether transaction t's step seq fails transiently on
// its try-th retry during the given attempt. Deterministic in (seed, txn,
// seq, attempt, try); at rates below 1 a retried step eventually succeeds
// because every try re-flips an independent coin.
func (i *Injector) StepError(t model.TxnID, seq, attempt, try int) error {
	if i == nil || i.plan.StepErrorRate <= 0 {
		return nil
	}
	if !i.coin(i.plan.StepErrorRate, fmt.Sprintf("step/%s/%d/%d/%d", t, seq, attempt, try)) {
		return nil
	}
	return &TransientError{Txn: t, Seq: seq, Try: try}
}

// Net decides the fate of one bus message of the given kind: dropped, or
// delivered with extra latency (which reorders it past later traffic).
// Deterministic in (seed, kind, per-kind counter), so equal plans driving
// equal message sequences make identical decisions.
func (i *Injector) Net(kind string) (drop bool, extra int64) {
	if i == nil || (i.plan.NetDropRate <= 0 && i.plan.NetDelayRate <= 0) {
		return false, 0
	}
	i.mu.Lock()
	n := i.netN[kind]
	i.netN[kind] = n + 1
	i.mu.Unlock()
	key := fmt.Sprintf("net/%s/%d", kind, n)
	if i.coin(i.plan.NetDropRate, "drop/"+key) {
		return true, 0
	}
	if i.coin(i.plan.NetDelayRate, "delay/"+key) {
		return false, i.plan.NetExtraDelay
	}
	return false, 0
}

// Announce decides the fate of the next distributed announcement: dropped
// entirely, or delivered with extra delay. Legacy single-table knob — the
// bus-backed distributed control uses Net instead, where a dropped finish
// is recovered by retransmission rather than forbidden.
func (i *Injector) Announce() (drop bool, extra int64) {
	if i == nil {
		return false, 0
	}
	i.mu.Lock()
	n := i.announceN
	i.announceN++
	i.mu.Unlock()
	key := fmt.Sprintf("announce/%d", n)
	if i.coin(i.plan.AnnounceDropRate, "drop/"+key) {
		return true, 0
	}
	if i.coin(i.plan.AnnounceDelayRate, "delay/"+key) {
		return false, i.plan.AnnounceExtraDelay
	}
	return false, 0
}

// coin flips a deterministic biased coin: true with probability rate.
func (i *Injector) coin(rate float64, key string) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := hash64(fmt.Sprintf("%d/%s", i.plan.Seed, key))
	// Map the hash to [0, 1) with 53 usable bits.
	u := float64(h>>11) / float64(1<<53)
	return u < rate
}

// hash64 is FNV-1a with an avalanche finalizer (FNV alone disperses short
// keys poorly in the high bits, which the coin mapping uses). Inlined to
// keep the package dependency-free.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
