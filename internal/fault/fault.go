// Package fault is a seeded, deterministic fault-injection layer for the
// executors. The paper's Section 1 names the transaction as a *unit of
// recovery*; making that role testable requires failures that are
// first-class and reproducible rather than ad-hoc. A Plan describes which
// faults to inject — system crashes keyed to WAL-append counts or a
// wall-clock budget, torn durable tails, transient step errors the engine
// must retry, and dropped or extra-delayed distributed announcements — and
// an Injector executes the plan deterministically: every decision is a pure
// function of the plan's seed and the event's identity (transaction, step,
// attempt, retry, or a global counter), so a failing run replays exactly.
//
// The Injector is safe for concurrent use: the engine consults it from one
// goroutine per transaction. One Injector spans all rounds of a
// crash-recovery run, so each configured crash fires exactly once and the
// run provably converges once the plan is exhausted.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mla/internal/model"
)

// ErrCrash is the sentinel for an injected whole-system crash: all volatile
// state (schedulers, in-flight transactions, value caches) is lost and only
// the durable medium survives. engine.RunWithCrashes recognizes it and runs
// recovery instead of failing the plan.
var ErrCrash = errors.New("fault: injected crash")

// TransientError is an injected, retryable step failure — the model of a
// lost message or timed-out I/O. The step was NOT performed; the engine
// retries it with capped exponential backoff.
type TransientError struct {
	Txn model.TxnID
	Seq int
	Try int // 0 = first attempt at this step
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: transient error at %s seq %d (try %d)", e.Txn, e.Seq, e.Try)
}

// ErrDiskFull is the persistent out-of-space error: unlike a DiskError it
// does not clear on retry, so the durable medium must give up immediately
// and the service above it must degrade rather than spin.
var ErrDiskFull = errors.New("fault: injected disk full")

// DiskError is an injected, transient disk I/O failure (a failed or short
// write, or a failed fsync). The durable medium retries the operation with
// capped backoff; every retry re-flips an independent coin, so at rates
// below 1 the operation eventually lands.
type DiskError struct {
	Op string // "write", "short-write", "fsync"
	N  int64  // per-op sequence number of the faulted call
}

func (e *DiskError) Error() string {
	return fmt.Sprintf("fault: injected disk %s error (op %d)", e.Op, e.N)
}

// Plan describes the faults to inject. The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision. Two injectors built from
	// equal plans make identical decisions for identical event identities.
	Seed int64

	// CrashAppends lists cumulative WAL-append counts at which the system
	// crashes: the Nth durable append (update and commit records alike,
	// counted across recovery rounds) triggers ErrCrash. Each entry fires
	// once; entries are sorted internally.
	CrashAppends []int64

	// CrashAfter, when positive, crashes the system once after this much
	// wall-clock time in the engine. It fires at most once per Injector.
	CrashAfter time.Duration

	// TearTail drops the last TearTail records from the durable medium at
	// each crash — a torn write: records the engine believed durable never
	// reached the device. The WAL discipline makes any prefix a consistent
	// recovery input, which the recovery path (and FuzzWALRecovery) assert.
	TearTail int

	// StepErrorRate is the probability in [0, 1] that a step attempt fails
	// with a TransientError before reaching the store. At 1.0 every try
	// fails, which exercises the retry cap and the restart budget.
	StepErrorRate float64

	// AnnounceDropRate is the probability that a distributed boundary
	// announcement is dropped entirely. Safe by the monotone-wait argument
	// (internal/dist): a missing announcement only under-reports progress,
	// making remote schedulers wait longer, never admit more.
	AnnounceDropRate float64

	// AnnounceDelayRate is the probability that an announcement is delayed
	// by AnnounceExtraDelay additional time units.
	AnnounceDelayRate float64

	// AnnounceExtraDelay is the extra latency applied to delayed
	// announcements, in simulator time units.
	AnnounceExtraDelay int64

	// NetDropRate is the probability that an individual bus message of the
	// distributed control (boundary, finish, ack, heartbeat, probe, or sync
	// traffic — see internal/net) is lost. Loss is safe end to end:
	// boundary announcements only under-report remote progress, finishes
	// are retransmitted until acknowledged, and heartbeat loss at worst
	// makes the failure detector suspect a live peer — which costs aborts,
	// never wrong admissions.
	NetDropRate float64

	// NetDelayRate is the probability that a bus message takes
	// NetExtraDelay additional time units — enough extra reorders it
	// behind later traffic.
	NetDelayRate float64

	// NetExtraDelay is the extra latency applied to delayed bus messages.
	NetExtraDelay int64

	// Partitions are named network partitions applied on the simulated
	// clock by the distributed control's chaos harness (internal/dist).
	Partitions []Partition

	// ProcCrashes are processor crash windows: at At the processor loses
	// its volatile scheduler state (views, wait records, and the
	// transactions resident on it); at Rejoin it comes back empty and
	// rebuilds its views by anti-entropy resync from its peers.
	ProcCrashes []ProcCrash

	// DiskWriteErrRate is the probability that a durable-medium write call
	// fails outright with a transient DiskError (no bytes reach the file).
	DiskWriteErrRate float64

	// DiskShortWriteRate is the probability that a write lands only
	// partially: the medium is told to persist a strict prefix of the
	// buffer and sees a DiskError, so it must re-write the whole frame at
	// the same offset — and a crash between the two leaves a torn frame
	// the loader has to truncate away.
	DiskShortWriteRate float64

	// DiskSyncErrRate is the probability that an fsync fails transiently.
	// Until a retried fsync succeeds, nothing since the previous sync is
	// durable — group-commit acks must not be released.
	DiskSyncErrRate float64

	// DiskFullAfter, when positive, is the total byte budget of the device:
	// once cumulative persisted bytes reach it, every further write fails
	// with ErrDiskFull (persistent — retries do not help).
	DiskFullAfter int64

	// DiskStallRate is the probability that a disk call (write or fsync)
	// stalls for DiskStall before proceeding — a latency spike, not an
	// error.
	DiskStallRate float64

	// DiskStall is the extra latency applied to stalled disk calls.
	DiskStall time.Duration
}

// Partition describes one named partition window. While active, processors
// on different sides cannot exchange any message.
type Partition struct {
	Name  string
	At    int64
	Heal  int64   // 0 = never heals
	Sides [][]int // processor groups; empty = split into two halves
}

// ProcCrash describes one processor crash window.
type ProcCrash struct {
	Proc   int
	At     int64
	Rejoin int64 // 0 = stays down forever
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return len(p.CrashAppends) > 0 || p.CrashAfter > 0 || p.StepErrorRate > 0 ||
		p.AnnounceDropRate > 0 || p.AnnounceDelayRate > 0 ||
		p.NetDropRate > 0 || p.NetDelayRate > 0 ||
		len(p.Partitions) > 0 || len(p.ProcCrashes) > 0 || p.DiskEnabled()
}

// DiskEnabled reports whether the plan injects any disk faults.
func (p Plan) DiskEnabled() bool {
	return p.DiskWriteErrRate > 0 || p.DiskShortWriteRate > 0 ||
		p.DiskSyncErrRate > 0 || p.DiskFullAfter > 0 || p.DiskStallRate > 0
}

// Crashes returns the total number of crashes the plan can inject — the
// bound on recovery rounds a crash-tolerant run needs.
func (p Plan) Crashes() int {
	n := len(p.CrashAppends)
	if p.CrashAfter > 0 {
		n++
	}
	return n
}

// Injector executes a Plan. Create one per crash-tolerant run and share it
// across recovery rounds.
type Injector struct {
	plan Plan

	mu         sync.Mutex
	appends    int64
	crashIdx   int  // next unfired entry of plan.CrashAppends
	wallArmed  bool // CrashAfter not yet handed out
	announceN  int64
	netN       map[string]int64 // per-kind bus message counters
	diskWrites int64            // write calls seen (coin identity)
	diskSyncs  int64            // fsync calls seen (coin identity)
	diskBytes  int64            // bytes persisted (ErrDiskFull budget)
}

// New builds an injector for the plan.
func New(p Plan) *Injector {
	crashes := append([]int64(nil), p.CrashAppends...)
	sort.Slice(crashes, func(i, j int) bool { return crashes[i] < crashes[j] })
	p.CrashAppends = crashes
	return &Injector{plan: p, wallArmed: p.CrashAfter > 0, netN: make(map[string]int64)}
}

// Plan returns the injector's plan (crash points sorted).
func (i *Injector) Plan() Plan { return i.plan }

// OnAppend counts one durable WAL append and reports whether the system
// crashes now. Each configured crash point fires exactly once.
func (i *Injector) OnAppend() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.appends++
	if i.crashIdx < len(i.plan.CrashAppends) && i.appends >= i.plan.CrashAppends[i.crashIdx] {
		i.crashIdx++
		return true
	}
	return false
}

// Appends returns the number of durable appends counted so far.
func (i *Injector) Appends() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.appends
}

// ArmWallClock hands out the wall-clock crash budget at most once: the
// first caller receives (CrashAfter, true) and must crash the system when
// the budget elapses; later callers receive false.
func (i *Injector) ArmWallClock() (time.Duration, bool) {
	if i == nil {
		return 0, false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.wallArmed {
		return 0, false
	}
	i.wallArmed = false
	return i.plan.CrashAfter, true
}

// TearTail returns how many trailing records each crash tears off the
// durable medium.
func (i *Injector) TearTail() int {
	if i == nil {
		return 0
	}
	return i.plan.TearTail
}

// StepError decides whether transaction t's step seq fails transiently on
// its try-th retry during the given attempt. Deterministic in (seed, txn,
// seq, attempt, try); at rates below 1 a retried step eventually succeeds
// because every try re-flips an independent coin.
func (i *Injector) StepError(t model.TxnID, seq, attempt, try int) error {
	if i == nil || i.plan.StepErrorRate <= 0 {
		return nil
	}
	if !i.coin(i.plan.StepErrorRate, fmt.Sprintf("step/%s/%d/%d/%d", t, seq, attempt, try)) {
		return nil
	}
	return &TransientError{Txn: t, Seq: seq, Try: try}
}

// Net decides the fate of one bus message of the given kind: dropped, or
// delivered with extra latency (which reorders it past later traffic).
// Deterministic in (seed, kind, per-kind counter), so equal plans driving
// equal message sequences make identical decisions.
func (i *Injector) Net(kind string) (drop bool, extra int64) {
	if i == nil || (i.plan.NetDropRate <= 0 && i.plan.NetDelayRate <= 0) {
		return false, 0
	}
	i.mu.Lock()
	n := i.netN[kind]
	i.netN[kind] = n + 1
	i.mu.Unlock()
	key := fmt.Sprintf("net/%s/%d", kind, n)
	if i.coin(i.plan.NetDropRate, "drop/"+key) {
		return true, 0
	}
	if i.coin(i.plan.NetDelayRate, "delay/"+key) {
		return false, i.plan.NetExtraDelay
	}
	return false, 0
}

// Announce decides the fate of the next distributed announcement: dropped
// entirely, or delivered with extra delay. Legacy single-table knob — the
// bus-backed distributed control uses Net instead, where a dropped finish
// is recovered by retransmission rather than forbidden.
func (i *Injector) Announce() (drop bool, extra int64) {
	if i == nil {
		return false, 0
	}
	i.mu.Lock()
	n := i.announceN
	i.announceN++
	i.mu.Unlock()
	key := fmt.Sprintf("announce/%d", n)
	if i.coin(i.plan.AnnounceDropRate, "drop/"+key) {
		return true, 0
	}
	if i.coin(i.plan.AnnounceDelayRate, "delay/"+key) {
		return false, i.plan.AnnounceExtraDelay
	}
	return false, 0
}

// DiskWrite decides the fate of one durable-medium write of n bytes. It
// returns how many bytes the medium may hand to the OS and, when fewer
// than n (or zero), the error the medium must surface after persisting
// that prefix. Decisions are deterministic in (seed, per-call counter);
// each retry is a new call with a new counter, so transient faults clear.
// ErrDiskFull is persistent: once the byte budget is exhausted every call
// fails without consuming coin flips.
func (i *Injector) DiskWrite(n int) (int, error) {
	if i == nil || !i.plan.DiskEnabled() {
		return n, nil
	}
	i.mu.Lock()
	seq := i.diskWrites
	i.diskWrites++
	full := i.plan.DiskFullAfter > 0 && i.diskBytes >= i.plan.DiskFullAfter
	i.mu.Unlock()
	if full {
		return 0, ErrDiskFull
	}
	key := fmt.Sprintf("disk/write/%d", seq)
	if i.coin(i.plan.DiskStallRate, "stall/"+key) && i.plan.DiskStall > 0 {
		time.Sleep(i.plan.DiskStall)
	}
	if i.coin(i.plan.DiskWriteErrRate, "err/"+key) {
		return 0, &DiskError{Op: "write", N: seq}
	}
	allowed := n
	var err error
	if n > 1 && i.coin(i.plan.DiskShortWriteRate, "short/"+key) {
		// A strict prefix, at least one byte, position derived from the
		// same hash so the tear point replays.
		allowed = 1 + int(hash64(fmt.Sprintf("%d/cut/%s", i.plan.Seed, key))%uint64(n-1))
		err = &DiskError{Op: "short-write", N: seq}
	}
	i.mu.Lock()
	i.diskBytes += int64(allowed)
	i.mu.Unlock()
	return allowed, err
}

// DiskSync decides the fate of one fsync of the durable medium.
func (i *Injector) DiskSync() error {
	if i == nil || !i.plan.DiskEnabled() {
		return nil
	}
	i.mu.Lock()
	seq := i.diskSyncs
	i.diskSyncs++
	i.mu.Unlock()
	key := fmt.Sprintf("disk/sync/%d", seq)
	if i.coin(i.plan.DiskStallRate, "stall/"+key) && i.plan.DiskStall > 0 {
		time.Sleep(i.plan.DiskStall)
	}
	if i.coin(i.plan.DiskSyncErrRate, "err/"+key) {
		return &DiskError{Op: "fsync", N: seq}
	}
	return nil
}

// coin flips a deterministic biased coin: true with probability rate.
func (i *Injector) coin(rate float64, key string) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := hash64(fmt.Sprintf("%d/%s", i.plan.Seed, key))
	// Map the hash to [0, 1) with 53 usable bits.
	u := float64(h>>11) / float64(1<<53)
	return u < rate
}

// hash64 is FNV-1a with an avalanche finalizer (FNV alone disperses short
// keys poorly in the high bits, which the coin mapping uses). Inlined to
// keep the package dependency-free.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
