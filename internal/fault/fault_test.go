package fault

import (
	"errors"
	"testing"
	"time"
)

func TestCrashPointsFireOnceInOrder(t *testing.T) {
	inj := New(Plan{CrashAppends: []int64{5, 3}}) // sorted internally
	var fired []int64
	for n := int64(1); n <= 10; n++ {
		if inj.OnAppend() {
			fired = append(fired, n)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Fatalf("crashes fired at %v, want [3 5]", fired)
	}
	if inj.Appends() != 10 {
		t.Errorf("appends = %d", inj.Appends())
	}
}

func TestWallClockArmsOnce(t *testing.T) {
	inj := New(Plan{CrashAfter: time.Second})
	if d, ok := inj.ArmWallClock(); !ok || d != time.Second {
		t.Fatalf("first arm: %v %v", d, ok)
	}
	if _, ok := inj.ArmWallClock(); ok {
		t.Fatal("second arm must fail")
	}
	if _, ok := New(Plan{}).ArmWallClock(); ok {
		t.Fatal("no budget must not arm")
	}
}

func TestStepErrorDeterministicAndRetryable(t *testing.T) {
	a := New(Plan{Seed: 9, StepErrorRate: 0.5})
	b := New(Plan{Seed: 9, StepErrorRate: 0.5})
	faults := 0
	for seq := 1; seq <= 200; seq++ {
		ea := a.StepError("t1", seq, 0, 0)
		eb := b.StepError("t1", seq, 0, 0)
		if (ea == nil) != (eb == nil) {
			t.Fatal("same seed, same event, different decision")
		}
		if ea != nil {
			faults++
			var te *TransientError
			if !errors.As(ea, &te) || te.Seq != seq {
				t.Fatalf("wrong error shape: %v", ea)
			}
		}
	}
	if faults < 50 || faults > 150 {
		t.Errorf("rate 0.5 produced %d/200 faults", faults)
	}
	// Retries flip fresh coins: some retry of a failing step must succeed.
	inj := New(Plan{Seed: 1, StepErrorRate: 0.5})
	for seq := 1; seq <= 20; seq++ {
		cleared := false
		for try := 0; try < 40; try++ {
			if inj.StepError("t", seq, 0, try) == nil {
				cleared = true
				break
			}
		}
		if !cleared {
			t.Fatalf("step %d never cleared in 40 tries at rate 0.5", seq)
		}
	}
}

func TestStepErrorRateOne(t *testing.T) {
	inj := New(Plan{StepErrorRate: 1})
	for try := 0; try < 10; try++ {
		if inj.StepError("t", 1, 0, try) == nil {
			t.Fatal("rate 1.0 must always fail")
		}
	}
}

func TestAnnounceDeterministic(t *testing.T) {
	a := New(Plan{Seed: 4, AnnounceDropRate: 0.3, AnnounceDelayRate: 0.5, AnnounceExtraDelay: 40})
	b := New(Plan{Seed: 4, AnnounceDropRate: 0.3, AnnounceDelayRate: 0.5, AnnounceExtraDelay: 40})
	drops, delays := 0, 0
	for n := 0; n < 300; n++ {
		da, xa := a.Announce()
		db, xb := b.Announce()
		if da != db || xa != xb {
			t.Fatal("announce decisions diverged under one seed")
		}
		if da {
			drops++
		} else if xa > 0 {
			if xa != 40 {
				t.Fatalf("extra delay = %d", xa)
			}
			delays++
		}
	}
	if drops == 0 || delays == 0 {
		t.Errorf("drops=%d delays=%d; both should occur", drops, delays)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var inj *Injector
	if inj.OnAppend() || inj.StepError("t", 1, 0, 0) != nil {
		t.Fatal("nil injector must be inert")
	}
	if d, _ := inj.Announce(); d {
		t.Fatal("nil injector dropped an announcement")
	}
	if _, ok := inj.ArmWallClock(); ok {
		t.Fatal("nil injector armed a crash")
	}
	if inj.TearTail() != 0 || inj.Appends() != 0 {
		t.Fatal("nil injector reported state")
	}
}

func TestPlanHelpers(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan enabled")
	}
	p := Plan{CrashAppends: []int64{3}, CrashAfter: time.Second}
	if !p.Enabled() || p.Crashes() != 2 {
		t.Errorf("Enabled=%v Crashes=%d", p.Enabled(), p.Crashes())
	}
}
