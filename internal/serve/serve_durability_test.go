package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"mla/internal/fault"
	"mla/internal/history"
	"mla/internal/model"
	"mla/internal/wal"
)

// TestServeDurabilityRoundTrip: the tentpole contract end to end — a server
// with a data directory acks transactions, shuts down, and a second server
// opened over the same directory recovers every ack, answers the durability
// lookup for each, and mints session IDs in a fresh epoch. The spool merges
// both boots into one history that passes the black-box checker.
func TestServeDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.DataDir = filepath.Join(dir, "wal")
	cfg.SpoolPath = filepath.Join(dir, "history.spool")
	cfg.CheckpointEvery = 8

	bootAcks := func(n int) []model.TxnID {
		srv, ts := startServer(t, cfg)
		if e := srv.RecoveryInfo().Epoch; e < 1 {
			t.Fatalf("epoch %d, want >= 1", e)
		}
		sess := openTestSession(t, ts.URL)
		var acked []model.TxnID
		for i := 0; i < n; i++ {
			resp, body := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("txn %d: status %d: %s", i, resp.StatusCode, body)
			}
			var tr txnResponse
			if err := json.Unmarshal(body, &tr); err != nil {
				t.Fatal(err)
			}
			acked = append(acked, model.TxnID(tr.Txn))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		ts.Close()
		return acked
	}

	first := bootAcks(12)

	// Second boot over the same directory: a fresh epoch, all prior acks
	// durable, and a bounded replay (shutdown sealed with a checkpoint, so
	// recovery redoes almost nothing).
	srv2, ts2 := startServer(t, cfg)
	info := srv2.RecoveryInfo()
	if info.Epoch < 2 {
		t.Fatalf("second boot epoch %d, want >= 2", info.Epoch)
	}
	if info.SinceCheckpoint > 2 {
		t.Errorf("replayed %d records past the checkpoint; sealed shutdown should bound this to <= 2", info.SinceCheckpoint)
	}
	for _, id := range first {
		if !srv2.Durable(id) {
			t.Errorf("%s acked in boot 1 but not durable in boot 2", id)
		}
		resp, _ := http.Get(ts2.URL + "/v1/txns/" + string(id))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("lookup %s: status %d, want 200", id, resp.StatusCode)
		}
	}
	if resp, _ := http.Get(ts2.URL + "/v1/txns/never-happened"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("lookup of unknown txn: status %d, want 404", resp.StatusCode)
	}

	// Epoch-qualified session IDs: no boot can reuse another's txn IDs.
	sess := openTestSession(t, ts2.URL)
	if len(sess) < 2 || sess[0] != 'e' {
		t.Errorf("second-boot session id %q lacks epoch prefix", sess)
	}
	resp, body := postJSON(t, ts2.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second-boot txn: status %d: %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv2.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	ts2.Close()

	// The spool spans both boots; merged it must validate, pass the
	// checker, and contain every acked commit.
	h, err := history.ReadSpoolFile(cfg.SpoolPath)
	if err != nil {
		t.Fatalf("spool: %v", err)
	}
	rep, err := history.Check(h)
	if err != nil {
		t.Fatalf("spool history check: %v", err)
	}
	if !rep.Correctable {
		t.Fatalf("spool history not multilevel atomic: %s", rep.Summary())
	}
	exec, _, err := h.Committed()
	if err != nil {
		t.Fatal(err)
	}
	committed := make(map[model.TxnID]bool)
	for _, st := range exec {
		committed[st.Txn] = true
	}
	for _, id := range first {
		if !committed[id] {
			t.Errorf("acked %s missing from spool replay", id)
		}
	}
}

// TestServeDegradedMode: a device that fills up mid-run must flip the
// server to read-only shedding — writes 503 "degraded" with Retry-After,
// health probes reflect it, durability lookups still answer — instead of
// crashing or lying.
func TestServeDegradedMode(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.DataDir = filepath.Join(dir, "wal")
	cfg.DiskFaults = fault.Plan{Seed: 7, DiskFullAfter: 4096}

	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	sess := openTestSession(t, ts.URL)
	var acked []model.TxnID
	var sawDegraded bool
	for i := 0; i < 200; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
		switch resp.StatusCode {
		case http.StatusOK:
			var tr txnResponse
			if json.Unmarshal(body, &tr) == nil {
				acked = append(acked, model.TxnID(tr.Txn))
			}
		case http.StatusServiceUnavailable:
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("503 body: %s", body)
			}
			if er.Error != "degraded" && er.Error != "engine_failed" {
				t.Fatalf("503 code %q, want degraded", er.Error)
			}
			if er.Error == "degraded" {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("degraded 503 without Retry-After")
				}
				sawDegraded = true
			}
		default:
			t.Fatalf("txn %d: unexpected status %d: %s", i, resp.StatusCode, body)
		}
		if sawDegraded {
			break
		}
	}
	if !sawDegraded {
		t.Fatal("device filled but no request saw a degraded 503")
	}
	if len(acked) == 0 {
		t.Fatal("no transactions acked before the device filled")
	}
	if !srv.Degraded() {
		t.Error("server not in degraded state after the disk filled")
	}
	if err := srv.Err(); !errors.Is(err, wal.ErrDegraded) || !errors.Is(err, fault.ErrDiskFull) {
		t.Errorf("Err() = %v, want wrapped ErrDegraded and ErrDiskFull", err)
	}

	// Probes: liveness reports the degradation; readiness refuses traffic.
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded healthz: status %d, want 503", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded readyz: status %d, want 503", resp.StatusCode)
	}
	// Writes are refused with the degraded code...
	resp, body := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded write: status %d, want 503: %s", resp.StatusCode, body)
	}
	var er errorResponse
	if json.Unmarshal(body, &er) != nil || er.Error != "degraded" {
		t.Errorf("degraded write code %q, want degraded: %s", er.Error, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions", map[string]any{}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded session open: status %d, want 503", resp.StatusCode)
	}
	// ...but reads still serve: every pre-failure ack remains answerable.
	for _, id := range acked {
		if resp, _ := http.Get(ts.URL + "/v1/txns/" + string(id)); resp.StatusCode != http.StatusOK {
			t.Errorf("degraded lookup %s: status %d, want 200", id, resp.StatusCode)
		}
	}
	if resp, _ := http.Get(ts.URL + "/statz"); resp.StatusCode != http.StatusOK {
		t.Errorf("degraded statz: status %d, want 200", resp.StatusCode)
	}
}

// TestGateRecoveryWindow: before Set, the gate serves liveness and refuses
// everything else with 503 "recovering"; after Set, it is the real handler.
func TestGateRecoveryWindow(t *testing.T) {
	var g Gate
	ts := httptest.NewServer(&g)
	defer ts.Close()

	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("gated healthz: status %d, want 200", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("gated readyz: status %d, want 503", resp.StatusCode)
	}
	var er errorResponse
	if json.NewDecoder(resp.Body).Decode(&er) != nil || er.Error != "recovering" {
		t.Errorf("gated readyz code %q, want recovering", er.Error)
	}
	resp.Body.Close()
	if resp, _ := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: "x", Kind: "transfer"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("gated txn: status %d, want 503", resp.StatusCode)
	}

	srv, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	g.Set(srv.Handler())
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("post-Set readyz: status %d, want 200", resp.StatusCode)
	}
	sess := openTestSession(t, ts.URL)
	if resp, _ := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"}); resp.StatusCode != http.StatusOK {
		t.Errorf("post-Set txn: status %d, want 200", resp.StatusCode)
	}
}
