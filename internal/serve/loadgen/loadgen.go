// Package loadgen is an open-loop load driver for mlaserve: arrivals
// follow a Poisson process, so offered load does NOT slow down when the
// server does — exactly the regime where admission control and load
// shedding earn their keep (a closed-loop client would politely
// self-throttle and never produce a 429).
//
// The package is structured as three layers:
//
//   - Client (client.go) executes individual transactions — over HTTP
//     against a real server, or in-process against the bare engine (the
//     bench package's client), so one driver measures both regimes.
//   - Pool (pool.go) runs a bounded set of workers over a Client,
//     consuming a scheduled Arrival stream and measuring latency from the
//     scheduled arrival time (coordinated-omission-safe). There is no
//     goroutine per request.
//   - Run (this file) is the batteries-included entry point the selftest
//     and soak harnesses use: Poisson arrivals, workload mix, injected
//     mid-flight disconnects, 429 retry with capped backoff.
//
// The generator injects client misbehavior on purpose: a fraction of
// requests disconnect mid-flight (the context is cancelled while the
// transaction runs), which the server must answer by withdrawing the
// transaction at its next breakpoint without losing anyone else's work.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Sessions is the number of concurrent client sessions.
	Sessions int
	// Txns is the total number of transactions to offer across sessions.
	Txns int
	// Rate is the Poisson arrival rate per session, in arrivals/second
	// (the pool offers Sessions×Rate in total; superposed Poisson
	// processes are Poisson).
	Rate float64
	// AuditPct and CreditPct set the kind mix; the rest are transfers.
	AuditPct  int
	CreditPct int
	// DeadlineMS is the per-transaction deadline passed to the server
	// (0 = server default).
	DeadlineMS int64
	// DisconnectPct is the percentage of requests abandoned mid-flight:
	// the client cancels its context a few milliseconds in, simulating a
	// dropped connection.
	DisconnectPct int
	// MaxRetries bounds the capped-backoff retries of a 429-shed request
	// (fault-style: base doubles per try with jitter, capped). 0 disables
	// retrying.
	MaxRetries int
	// BackoffBase is the initial retry backoff (default 20ms, cap 64×).
	BackoffBase time.Duration
	// Seed drives arrivals, mix, disconnects, and backoff jitter.
	Seed int64
	// Client overrides the HTTP client (tests inject httptest transports).
	Client *http.Client
	// Workers bounds the concurrent in-flight requests (default
	// 4×Sessions, clamped to [8, 128]).
	Workers int
}

// Report tallies one load run. Counters sum over requests, not retries
// (one logical transaction shed three times and then acked counts once in
// Acked and three in Retries).
type Report struct {
	Offered   int // logical transactions offered
	Acked     int // 200: committed and durable
	AckedIDs  []string
	Deadline  int     // 408 deadline_exceeded
	Shed      int     // 429 that exhausted retries (or retrying disabled)
	Draining  int     // 503 during drain
	Canceled  int     // client-side disconnects injected
	Down      int     // transport-level failures: the server was unreachable
	Errors    int     // unexpected statuses, protocol violations
	Retries   int     // 429s that were retried
	Latencies []int64 // µs, acked transactions only (server-reported)

	// ErrorSamples holds the first few error details (transport error
	// strings, unexpected status lines) so a failed run is diagnosable
	// from the report alone.
	ErrorSamples []string
}

// Run drives the load through a worker Pool and blocks until every offered
// transaction resolved or ctx is cancelled. The returned report is
// complete either way.
func Run(ctx context.Context, o Options) (*Report, error) {
	if o.Sessions <= 0 || o.Txns <= 0 {
		return nil, fmt.Errorf("loadgen: need sessions and txns, got %d/%d", o.Sessions, o.Txns)
	}
	if o.Rate <= 0 {
		o.Rate = 200
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 20 * time.Millisecond
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 4 * o.Sessions
		if workers < 8 {
			workers = 8
		}
		if workers > 128 {
			workers = 128
		}
	}
	client := NewHTTPClient(o.BaseURL, o.Client)

	rep := &Report{}
	var sessions []string
	for si := 0; si < o.Sessions; si++ {
		id, err := client.OpenSession(ctx)
		if err != nil {
			// This session's share of the load cannot be offered; charge it
			// to Errors so the accounting stays visible, like the old
			// per-session driver did.
			share := o.Txns / o.Sessions
			if si < o.Txns%o.Sessions {
				share++
			}
			rep.Errors += share
			if len(rep.ErrorSamples) < 8 {
				rep.ErrorSamples = append(rep.ErrorSamples, "open session: "+err.Error())
			}
			continue
		}
		sessions = append(sessions, id)
	}
	if len(sessions) == 0 {
		return rep, nil
	}
	txns := o.Txns - rep.Errors

	rng := rand.New(rand.NewSource(o.Seed))
	mk := func(i int) Request {
		kind := "transfer"
		switch p := rng.Intn(100); {
		case p < o.AuditPct:
			kind = "audit"
		case p < o.AuditPct+o.CreditPct:
			kind = "credit"
		}
		return Request{
			Session:    sessions[i%len(sessions)],
			Kind:       kind,
			DeadlineMS: o.DeadlineMS,
			Disconnect: rng.Intn(100) < o.DisconnectPct,
			Jitter:     time.Duration(rng.Int63n(int64(o.BackoffBase) + 1)),
		}
	}

	var mu sync.Mutex
	pool := &Pool{
		Client:      client,
		Workers:     workers,
		MaxRetries:  o.MaxRetries,
		BackoffBase: o.BackoffBase,
		KeepIDs:     true, // the soak's Reverify audit consumes AckedIDs
		Observe: func(res Result, _ int64) {
			if res.Status == StatusAcked {
				mu.Lock()
				rep.Latencies = append(rep.Latencies, res.LatencyUS)
				mu.Unlock()
			}
		},
	}
	rate := o.Rate * float64(len(sessions))
	pr := pool.Run(ctx, OpenLoop(ctx, Wall, txns, rate, rng, mk))

	// Sessions are closed only now: requests (and their backoff retries)
	// outlive the arrival schedule, and closing the session under them
	// would turn live work into 404s.
	for _, id := range sessions {
		client.CloseSession(id)
	}

	rep.Offered = pr.Offered
	rep.Acked = pr.Acked
	rep.AckedIDs = pr.AckedIDs
	rep.Deadline = pr.Deadline
	rep.Shed = pr.Shed
	rep.Draining = pr.Draining
	rep.Canceled = pr.Canceled
	rep.Down = pr.Down
	rep.Errors += pr.Errors
	rep.Retries = pr.Retries
	for _, s := range pr.ErrorSamples {
		if len(rep.ErrorSamples) < 8 {
			rep.ErrorSamples = append(rep.ErrorSamples, s)
		}
	}
	return rep, nil
}
