// Package loadgen is an open-loop HTTP client for mlaserve: arrivals
// follow a Poisson process per client session, so offered load does NOT
// slow down when the server does — exactly the regime where admission
// control and load shedding earn their keep (a closed-loop client would
// politely self-throttle and never produce a 429).
//
// The generator also injects client misbehavior on purpose: a fraction of
// requests disconnect mid-flight (the context is cancelled while the
// transaction runs), which the server must answer by withdrawing the
// transaction at its next breakpoint without losing anyone else's work.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Sessions is the number of concurrent client sessions.
	Sessions int
	// Txns is the total number of transactions to offer across sessions.
	Txns int
	// Rate is the Poisson arrival rate per session, in arrivals/second.
	Rate float64
	// AuditPct and CreditPct set the kind mix; the rest are transfers.
	AuditPct  int
	CreditPct int
	// DeadlineMS is the per-transaction deadline passed to the server
	// (0 = server default).
	DeadlineMS int64
	// DisconnectPct is the percentage of requests abandoned mid-flight:
	// the client cancels its context a few milliseconds in, simulating a
	// dropped connection.
	DisconnectPct int
	// MaxRetries bounds the capped-backoff retries of a 429-shed request
	// (fault-style: base doubles per try with jitter, capped). 0 disables
	// retrying.
	MaxRetries int
	// BackoffBase is the initial retry backoff (default 20ms, cap 64×).
	BackoffBase time.Duration
	// Seed drives arrivals, mix, disconnects, and backoff jitter.
	Seed int64
	// Client overrides the HTTP client (tests inject httptest transports).
	Client *http.Client
}

// Report tallies one load run. Counters sum over requests, not retries
// (one logical transaction shed three times and then acked counts once in
// Acked and three in Retries).
type Report struct {
	Offered   int // logical transactions offered
	Acked     int // 200: committed and durable
	AckedIDs  []string
	Deadline  int     // 408 deadline_exceeded
	Shed      int     // 429 that exhausted retries (or retrying disabled)
	Draining  int     // 503 during drain
	Canceled  int     // client-side disconnects injected
	Down      int     // transport-level failures: the server was unreachable
	Errors    int     // unexpected statuses, protocol violations
	Retries   int     // 429s that were retried
	Latencies []int64 // µs, acked transactions only

	// ErrorSamples holds the first few error details (transport error
	// strings, unexpected status lines) so a failed run is diagnosable
	// from the report alone.
	ErrorSamples []string
}

// Run drives the load and blocks until every offered transaction resolved
// or ctx is cancelled. The returned report is complete either way.
func Run(ctx context.Context, o Options) (*Report, error) {
	if o.Sessions <= 0 || o.Txns <= 0 {
		return nil, fmt.Errorf("loadgen: need sessions and txns, got %d/%d", o.Sessions, o.Txns)
	}
	if o.Rate <= 0 {
		o.Rate = 200
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 20 * time.Millisecond
	}
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}

	rep := &Report{}
	var mu sync.Mutex
	var wg sync.WaitGroup // session goroutines
	var rq sync.WaitGroup // in-flight requests (open loop: not awaited per arrival)
	var openIDs []string  // sessions to close once every request resolved

	noteError := func(detail string) {
		if len(rep.ErrorSamples) < 8 {
			rep.ErrorSamples = append(rep.ErrorSamples, detail)
		}
	}

	perSession := o.Txns / o.Sessions
	extra := o.Txns % o.Sessions
	for si := 0; si < o.Sessions; si++ {
		n := perSession
		if si < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(si, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(si)*7919))
			sess, err := openSession(ctx, client, o.BaseURL)
			if err != nil {
				mu.Lock()
				rep.Errors += n
				noteError("open session: " + err.Error())
				mu.Unlock()
				return
			}
			mu.Lock()
			openIDs = append(openIDs, sess)
			mu.Unlock()
			for i := 0; i < n; i++ {
				// Poisson arrivals: exponential inter-arrival times. The
				// arrival fires whether or not earlier requests resolved —
				// that is the open loop.
				wait := time.Duration(rng.ExpFloat64() / o.Rate * float64(time.Second))
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					mu.Lock()
					rep.Errors += n - i
					mu.Unlock()
					return
				}
				kind := "transfer"
				switch p := rng.Intn(100); {
				case p < o.AuditPct:
					kind = "audit"
				case p < o.AuditPct+o.CreditPct:
					kind = "credit"
				}
				disconnect := rng.Intn(100) < o.DisconnectPct
				jitter := time.Duration(rng.Int63n(int64(o.BackoffBase) + 1))
				rq.Add(1)
				go func() {
					defer rq.Done()
					res := oneTxn(ctx, client, o, sess, kind, disconnect, jitter)
					mu.Lock()
					rep.Offered++
					rep.Retries += res.retries
					switch res.status {
					case statusAcked:
						rep.Acked++
						rep.AckedIDs = append(rep.AckedIDs, res.txn)
						rep.Latencies = append(rep.Latencies, res.latencyUS)
					case statusDeadline:
						rep.Deadline++
					case statusShed:
						rep.Shed++
					case statusDraining:
						rep.Draining++
					case statusCanceled:
						rep.Canceled++
					case statusDown:
						// Connection refused/reset: the server process was
						// gone. A crash-restart soak EXPECTS these (the kill
						// lands mid-load); anything acked before the kill is
						// still audited via Reverify.
						rep.Down++
						noteError(res.errDetail)
					default:
						rep.Errors++
						noteError(res.errDetail)
					}
					mu.Unlock()
				}()
			}
		}(si, n)
	}
	wg.Wait()
	rq.Wait()
	// Sessions are closed only now: the open loop means requests (and
	// their backoff retries) outlive the arrival loop, and closing the
	// session under them would turn live work into 404s.
	for _, id := range openIDs {
		closeSession(client, o.BaseURL, id)
	}
	return rep, nil
}

const (
	statusAcked = iota
	statusDeadline
	statusShed
	statusDraining
	statusCanceled
	statusDown
	statusError
)

type txnOutcome struct {
	status    int
	txn       string
	latencyUS int64
	retries   int
	errDetail string
}

// oneTxn submits one logical transaction, retrying 429s with capped
// exponential backoff (the same discipline the engine applies to transient
// step faults, moved to the client side of the contract).
func oneTxn(ctx context.Context, client *http.Client, o Options, sess, kind string, disconnect bool, jitter time.Duration) txnOutcome {
	out := txnOutcome{status: statusError}
	backoff := o.BackoffBase + jitter
	for try := 0; ; try++ {
		rctx := ctx
		var cancel context.CancelFunc
		if disconnect {
			// Abandon mid-flight: long enough to usually reach the engine,
			// short enough to often beat the commit (local commits run in
			// hundreds of microseconds).
			rctx, cancel = context.WithTimeout(ctx, 300*time.Microsecond+jitter/16)
		}
		st := doTxn(rctx, client, o, sess, kind, &out)
		if cancel != nil {
			cancel()
		}
		if disconnect && (st == statusError || st == statusDown || st == statusCanceled) {
			// The injected disconnect surfaced as a transport error or an
			// explicit cancel — either way, that was the point.
			out.status = statusCanceled
			return out
		}
		if st != statusShed || try >= o.MaxRetries {
			out.status = st
			return out
		}
		out.retries++
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			out.status = statusShed
			return out
		}
		backoff *= 2
		if max := 64 * o.BackoffBase; backoff > max {
			backoff = max
		}
	}
}

func doTxn(ctx context.Context, client *http.Client, o Options, sess, kind string, out *txnOutcome) int {
	body, _ := json.Marshal(map[string]any{
		"session":     sess,
		"kind":        kind,
		"deadline_ms": o.DeadlineMS,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, o.BaseURL+"/v1/txns", bytes.NewReader(body))
	if err != nil {
		out.errDetail = err.Error()
		return statusError
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return statusCanceled
		}
		out.errDetail = err.Error()
		return statusDown
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var tr struct {
			Txn       string `json:"txn"`
			Committed bool   `json:"committed"`
			LatencyUS int64  `json:"latency_us"`
		}
		if json.NewDecoder(resp.Body).Decode(&tr) != nil || !tr.Committed {
			out.errDetail = "200 with unparseable or uncommitted body"
			return statusError
		}
		out.txn = tr.Txn
		out.latencyUS = tr.LatencyUS
		return statusAcked
	case http.StatusRequestTimeout:
		var er struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error == "canceled" {
			return statusCanceled
		}
		return statusDeadline
	case http.StatusTooManyRequests:
		return statusShed
	case http.StatusServiceUnavailable:
		return statusDraining
	default:
		var buf bytes.Buffer
		io.Copy(&buf, io.LimitReader(resp.Body, 256))
		io.Copy(io.Discard, resp.Body)
		out.errDetail = fmt.Sprintf("status %d: %s", resp.StatusCode, buf.String())
		return statusError
	}
}

// Reverify asks the server whether each previously acked transaction is
// still durable (GET /v1/txns/{id}) and returns the ones it denies — the
// lost-ack audit a crash-restart soak runs after every recovery. A 404
// here is the exact failure durability exists to prevent: the server said
// 200 and then forgot.
func Reverify(ctx context.Context, client *http.Client, baseURL string, ids []string) ([]string, error) {
	if client == nil {
		client = &http.Client{}
	}
	var lost []string
	for _, id := range ids {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/txns/"+id, nil)
		if err != nil {
			return lost, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return lost, fmt.Errorf("loadgen: reverify %s: %w", id, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			lost = append(lost, id)
		default:
			return lost, fmt.Errorf("loadgen: reverify %s: status %d", id, resp.StatusCode)
		}
	}
	return lost, nil
}

func openSession(ctx context.Context, client *http.Client, base string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sessions", bytes.NewReader([]byte("{}")))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("loadgen: open session: status %d", resp.StatusCode)
	}
	var sr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", err
	}
	return sr.ID, nil
}

func closeSession(client *http.Client, base, id string) {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+id, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err == nil {
		resp.Body.Close()
	}
}
