package loadgen

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"mla/internal/metrics"
)

// Clock abstracts time for the pool so tests (and deterministic harnesses)
// can inject one. Wall is the real-time default.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wall is the real-time Clock.
var Wall Clock = wallClock{}

// Arrival is one scheduled transaction. At is the arrival's scheduled time
// under the open-loop model: the worker waits until At, executes, and
// measures latency FROM At — so time an arrival spends queued behind busy
// workers counts against the server, which is what makes the measurement
// coordinated-omission-safe. A zero At is the closed-loop degenerate case:
// execute immediately, measure from dispatch.
type Arrival struct {
	At  time.Time
	Req Request
}

// Pool executes arrivals with a fixed set of worker goroutines over a
// shared Client — the replacement for the old goroutine-per-request driver.
// Bounded workers put a hard cap on in-flight requests (and, over HTTP, on
// connections, which the pooled transport then reuses); open-loop fidelity
// is preserved by measuring from the scheduled arrival time rather than
// from dispatch.
type Pool struct {
	// Client executes individual attempts. Required.
	Client Client
	// Workers is the number of worker goroutines (default 16).
	Workers int
	// MaxRetries bounds capped-backoff retries of shed (429) attempts.
	MaxRetries int
	// BackoffBase is the initial retry backoff (default 20ms, cap 64×).
	BackoffBase time.Duration
	// Clock defaults to Wall.
	Clock Clock
	// Observe, when non-nil, is called by workers after each logical
	// transaction resolves, with the open-loop latency in nanoseconds
	// (acked transactions only; -1 otherwise). It runs on worker
	// goroutines and must be safe for concurrent use.
	Observe func(res Result, openLatNS int64)
	// KeepIDs retains every acked transaction ID in the report. The soak's
	// Reverify audit needs them; multi-million-txn load cells must leave
	// this off so report memory stays O(1) in the run length.
	KeepIDs bool
}

// PoolReport aggregates one pool run. Counters sum over logical
// transactions (a transaction shed twice and then acked counts once in
// Acked, twice in Retries).
type PoolReport struct {
	Offered  int
	Acked    int
	Deadline int
	Shed     int
	Draining int
	Canceled int
	Down     int
	Errors   int
	Retries  int
	AckedIDs []string

	// Latency is the open-loop latency histogram in nanoseconds, acked
	// transactions only, measured from the scheduled arrival (or dispatch
	// for closed-loop arrivals).
	Latency *metrics.Histogram
	// ServiceUS sums the server-reported per-transaction service latencies
	// (µs) of acked transactions, for mean service time.
	ServiceUS int64
	// ErrorSamples holds the first few error details so a failed run is
	// diagnosable from the report alone.
	ErrorSamples []string
}

func (r *PoolReport) note(detail string) {
	if detail != "" && len(r.ErrorSamples) < 8 {
		r.ErrorSamples = append(r.ErrorSamples, detail)
	}
}

func (r *PoolReport) merge(o *PoolReport) {
	r.Offered += o.Offered
	r.Acked += o.Acked
	r.Deadline += o.Deadline
	r.Shed += o.Shed
	r.Draining += o.Draining
	r.Canceled += o.Canceled
	r.Down += o.Down
	r.Errors += o.Errors
	r.Retries += o.Retries
	r.AckedIDs = append(r.AckedIDs, o.AckedIDs...)
	r.Latency.Merge(o.Latency)
	r.ServiceUS += o.ServiceUS
	for _, s := range o.ErrorSamples {
		r.note(s)
	}
}

// Run consumes arrivals until the channel closes (or ctx is cancelled, in
// which case remaining arrivals are drained and counted as Errors) and
// returns the merged report. Each worker keeps private counters and a
// private histogram, merged once at the end — the record path shares
// nothing.
func (p *Pool) Run(ctx context.Context, arrivals <-chan Arrival) *PoolReport {
	clk := p.Clock
	if clk == nil {
		clk = Wall
	}
	workers := p.Workers
	if workers <= 0 {
		workers = 16
	}
	backoffBase := p.BackoffBase
	if backoffBase <= 0 {
		backoffBase = 20 * time.Millisecond
	}
	locals := make([]*PoolReport, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		local := &PoolReport{Latency: metrics.NewHistogram()}
		locals[w] = local
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range arrivals {
				if ctx.Err() != nil {
					// Drain without executing: the run was cancelled.
					local.Offered++
					local.Errors++
					continue
				}
				start := a.At
				if start.IsZero() {
					start = clk.Now()
				} else if d := start.Sub(clk.Now()); d > 0 {
					if clk.Sleep(ctx, d) != nil {
						local.Offered++
						local.Errors++
						continue
					}
				}
				res, retries := p.oneTxn(ctx, clk, backoffBase, a.Req)
				local.Offered++
				local.Retries += retries
				openLat := int64(-1)
				if res.Status == StatusAcked {
					openLat = clk.Now().Sub(start).Nanoseconds()
				}
				if p.Observe != nil {
					p.Observe(res, openLat)
				}
				switch res.Status {
				case StatusAcked:
					local.Acked++
					if p.KeepIDs {
						local.AckedIDs = append(local.AckedIDs, res.Txn)
					}
					local.ServiceUS += res.LatencyUS
					local.Latency.Record(openLat)
				case StatusDeadline:
					local.Deadline++
				case StatusShed:
					local.Shed++
				case StatusDraining:
					local.Draining++
				case StatusCanceled:
					local.Canceled++
				case StatusDown:
					// Connection refused/reset: the server process was gone.
					// A crash-restart soak EXPECTS these (the kill lands
					// mid-load); anything acked before the kill is still
					// audited via Reverify.
					local.Down++
					local.note(res.ErrDetail)
				default:
					local.Errors++
					local.note(res.ErrDetail)
				}
			}
		}()
	}
	wg.Wait()
	rep := &PoolReport{Latency: metrics.NewHistogram()}
	for _, l := range locals {
		rep.merge(l)
	}
	return rep
}

// oneTxn runs one logical transaction to resolution, retrying 429s with
// capped exponential backoff (the same discipline the engine applies to
// transient step faults, moved to the client side of the contract).
func (p *Pool) oneTxn(ctx context.Context, clk Clock, backoffBase time.Duration, r Request) (Result, int) {
	backoff := backoffBase + r.Jitter
	retries := 0
	for try := 0; ; try++ {
		rctx := ctx
		var cancel context.CancelFunc
		if r.Disconnect {
			// Abandon mid-flight: long enough to usually reach the engine,
			// short enough to often beat the commit (local commits run in
			// hundreds of microseconds).
			rctx, cancel = context.WithTimeout(ctx, 300*time.Microsecond+r.Jitter/16)
		}
		res := p.Client.Do(rctx, r)
		if cancel != nil {
			cancel()
		}
		if r.Disconnect && (res.Status == StatusError || res.Status == StatusDown || res.Status == StatusCanceled) {
			// The injected disconnect surfaced as a transport error or an
			// explicit cancel — either way, that was the point.
			res.Status = StatusCanceled
			return res, retries
		}
		if res.Status != StatusShed || try >= p.MaxRetries {
			return res, retries
		}
		retries++
		if clk.Sleep(ctx, backoff) != nil {
			res.Status = StatusShed
			return res, retries
		}
		backoff *= 2
		if max := 64 * backoffBase; backoff > max {
			backoff = max
		}
	}
}

// OpenLoop emits n arrivals on the returned channel following a Poisson
// process of the given total rate (arrivals/second), anchored at the
// clock's now. Emission runs ahead of real time, bounded by the channel
// buffer — a slow consumer never distorts the schedule, it just falls
// behind it (and the latency histogram shows exactly that). mk builds the
// i-th request; rng drives the exponential inter-arrival gaps. The channel
// closes after the last arrival (or when ctx is cancelled).
func OpenLoop(ctx context.Context, clk Clock, n int, rate float64, rng *rand.Rand, mk func(i int) Request) <-chan Arrival {
	if clk == nil {
		clk = Wall
	}
	ch := make(chan Arrival, 1024)
	go func() {
		defer close(ch)
		at := clk.Now()
		for i := 0; i < n; i++ {
			at = at.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
			select {
			case ch <- Arrival{At: at, Req: mk(i)}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// ClosedLoop emits n unscheduled arrivals: each is executed as soon as a
// worker frees up and measured from dispatch. This is the classic
// benchmarking loop that coordinated omission hides stalls in — kept so
// the open/closed comparison (and the stall-oracle test pinning the
// difference) can run both regimes through one driver.
func ClosedLoop(ctx context.Context, n int, mk func(i int) Request) <-chan Arrival {
	ch := make(chan Arrival, 1024)
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			select {
			case ch <- Arrival{Req: mk(i)}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}
