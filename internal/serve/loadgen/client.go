package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Status classifies the outcome of one logical transaction.
type Status int

const (
	// StatusAcked: committed and durable (HTTP 200).
	StatusAcked Status = iota
	// StatusDeadline: the server gave up at the deadline (408).
	StatusDeadline
	// StatusShed: admission control refused and retries ran out (429).
	StatusShed
	// StatusDraining: the server is shutting down (503).
	StatusDraining
	// StatusCanceled: the client abandoned the request mid-flight.
	StatusCanceled
	// StatusDown: transport-level failure — the server was unreachable.
	StatusDown
	// StatusError: unexpected status or protocol violation.
	StatusError
)

// Request describes one logical transaction for a Client to execute.
type Request struct {
	// Session is the server session the transaction runs under.
	Session string
	// Kind selects the workload ("transfer", "credit", "audit").
	Kind string
	// DeadlineMS is the per-transaction deadline (0 = server default).
	DeadlineMS int64
	// Disconnect injects client misbehavior: the request context is
	// cancelled a few hundred microseconds in, simulating a dropped
	// connection mid-transaction.
	Disconnect bool
	// Jitter seeds this request's backoff jitter (and the disconnect
	// timing), so retry storms decorrelate without the pool owning a
	// shared RNG.
	Jitter time.Duration
}

// Result is the outcome of a single attempt (retries are the Pool's job).
type Result struct {
	Status Status
	// Txn is the server-assigned transaction ID (acked results only).
	Txn string
	// LatencyUS is the server-reported service latency in microseconds.
	LatencyUS int64
	// ErrDetail carries the first line of diagnosis for Down/Error results.
	ErrDetail string
}

// Client executes transactions against a target. The two implementations —
// HTTPClient here and the in-process engine client in internal/bench — let
// one Pool drive either a real mlaserve over the wire or the bare engine,
// so open-loop methodology is identical in both regimes.
//
// Implementations must be safe for concurrent use by many pool workers.
type Client interface {
	// OpenSession creates a session and returns its ID.
	OpenSession(ctx context.Context) (string, error)
	// CloseSession tears a session down (best effort).
	CloseSession(id string)
	// Do executes one transaction attempt under ctx.
	Do(ctx context.Context, r Request) Result
}

// HTTPClient drives mlaserve's HTTP API. The zero value is not usable; call
// NewHTTPClient, which installs a transport with a warm connection pool so
// pool workers reuse TCP connections instead of dialing per request.
type HTTPClient struct {
	base string
	hc   *http.Client
}

// NewHTTPClient returns a client for the server root base (e.g.
// "http://127.0.0.1:7070"). hc overrides the underlying *http.Client (tests
// inject httptest transports); nil gets a pooled default sized for the load
// harness.
func NewHTTPClient(base string, hc *http.Client) *HTTPClient {
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return &HTTPClient{base: base, hc: hc}
}

// OpenSession implements Client.
func (c *HTTPClient) OpenSession(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sessions", bytes.NewReader([]byte("{}")))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("loadgen: open session: status %d", resp.StatusCode)
	}
	var sr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", err
	}
	return sr.ID, nil
}

// CloseSession implements Client.
func (c *HTTPClient) CloseSession(id string) {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/sessions/"+id, nil)
	if err != nil {
		return
	}
	resp, err := c.hc.Do(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// Do implements Client: one POST /v1/txns attempt, classified by status.
func (c *HTTPClient) Do(ctx context.Context, r Request) Result {
	body, _ := json.Marshal(map[string]any{
		"session":     r.Session,
		"kind":        r.Kind,
		"deadline_ms": r.DeadlineMS,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/txns", bytes.NewReader(body))
	if err != nil {
		return Result{Status: StatusError, ErrDetail: err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return Result{Status: StatusCanceled}
		}
		return Result{Status: StatusDown, ErrDetail: err.Error()}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var tr struct {
			Txn       string `json:"txn"`
			Committed bool   `json:"committed"`
			LatencyUS int64  `json:"latency_us"`
		}
		if json.NewDecoder(resp.Body).Decode(&tr) != nil || !tr.Committed {
			return Result{Status: StatusError, ErrDetail: "200 with unparseable or uncommitted body"}
		}
		return Result{Status: StatusAcked, Txn: tr.Txn, LatencyUS: tr.LatencyUS}
	case http.StatusRequestTimeout:
		var er struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error == "canceled" {
			return Result{Status: StatusCanceled}
		}
		return Result{Status: StatusDeadline}
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return Result{Status: StatusShed}
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return Result{Status: StatusDraining}
	default:
		var buf bytes.Buffer
		io.Copy(&buf, io.LimitReader(resp.Body, 256))
		io.Copy(io.Discard, resp.Body)
		return Result{Status: StatusError, ErrDetail: fmt.Sprintf("status %d: %s", resp.StatusCode, buf.String())}
	}
}

// Reverify asks the server whether each previously acked transaction is
// still durable (GET /v1/txns/{id}) and returns the ones it denies — the
// lost-ack audit a crash-restart soak runs after every recovery. A 404
// here is the exact failure durability exists to prevent: the server said
// 200 and then forgot.
func Reverify(ctx context.Context, client *http.Client, baseURL string, ids []string) ([]string, error) {
	if client == nil {
		client = &http.Client{}
	}
	var lost []string
	for _, id := range ids {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/txns/"+id, nil)
		if err != nil {
			return lost, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return lost, fmt.Errorf("loadgen: reverify %s: %w", id, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			lost = append(lost, id)
		default:
			return lost, fmt.Errorf("loadgen: reverify %s: status %d", id, resp.StatusCode)
		}
	}
	return lost, nil
}
