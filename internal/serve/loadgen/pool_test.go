package loadgen

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stallClient acks every request instantly — except that when the trigger-th
// request arrives it goes unresponsive for stall: every Do call issued before
// the window ends blocks until the window ends, like a server hitting a GC
// pause or a flush convoy. The synthetic stall the oracle test pins on.
type stallClient struct {
	trigger int32
	stall   time.Duration

	n          atomic.Int32
	mu         sync.Mutex
	stallUntil time.Time
}

func (c *stallClient) OpenSession(context.Context) (string, error) { return "s", nil }
func (c *stallClient) CloseSession(string)                         {}

func (c *stallClient) Do(ctx context.Context, r Request) Result {
	if c.n.Add(1) == c.trigger {
		c.mu.Lock()
		c.stallUntil = time.Now().Add(c.stall)
		c.mu.Unlock()
	}
	c.mu.Lock()
	until := c.stallUntil
	c.mu.Unlock()
	if d := time.Until(until); d > 0 {
		time.Sleep(d)
	}
	return Result{Status: StatusAcked, Txn: "t", LatencyUS: 1}
}

// TestStallVisibleOpenLoopOnly is the coordinated-omission oracle: the same
// client, same stall, driven both ways. Open-loop arrivals keep their Poisson
// schedule, so everything scheduled during the stall queues and is measured
// from its scheduled arrival — the stall lands squarely in p99. The closed
// loop measures from dispatch and simply stops offering while the workers are
// stuck, so only Workers samples (out of ~1000) ever see the stall and p99
// stays oblivious. The thresholds leave wide margins for -race slowdowns.
func TestStallVisibleOpenLoopOnly(t *testing.T) {
	const (
		stall   = 120 * time.Millisecond
		txns    = 1000
		rate    = 5000.0 // txns/s → ~200ms schedule, stall covers most of it
		workers = 4
	)
	ctx := context.Background()
	mk := func(i int) Request { return Request{Session: "s", Kind: "transfer"} }

	open := &Pool{Client: &stallClient{trigger: 100, stall: stall}, Workers: workers}
	or := open.Run(ctx, OpenLoop(ctx, Wall, txns, rate, rand.New(rand.NewSource(1)), mk))
	if or.Acked != txns {
		t.Fatalf("open loop: acked %d of %d (samples %v)", or.Acked, txns, or.ErrorSamples)
	}
	openP99 := time.Duration(or.Latency.Percentile(99))

	closed := &Pool{Client: &stallClient{trigger: 100, stall: stall}, Workers: workers}
	cr := closed.Run(ctx, ClosedLoop(ctx, txns, mk))
	if cr.Acked != txns {
		t.Fatalf("closed loop: acked %d of %d (samples %v)", cr.Acked, txns, cr.ErrorSamples)
	}
	closedP99 := time.Duration(cr.Latency.Percentile(99))

	t.Logf("stall=%v: open-loop p99=%v closed-loop p99=%v", stall, openP99, closedP99)
	if openP99 < stall/3 {
		t.Errorf("open-loop p99 %v should expose the %v stall (≥%v expected)", openP99, stall, stall/3)
	}
	if closedP99 > stall/2 {
		t.Errorf("closed-loop p99 %v should hide the %v stall (coordinated omission) — got more than %v", closedP99, stall, stall/2)
	}
	if openP99 < 4*closedP99 {
		t.Errorf("open-loop p99 %v should dwarf closed-loop p99 %v", openP99, closedP99)
	}
}

// TestPoolKeepIDs pins the report-memory contract: IDs are retained only on
// request, so multi-million-txn cells stay O(1) in run length.
func TestPoolKeepIDs(t *testing.T) {
	ctx := context.Background()
	mk := func(i int) Request { return Request{Session: "s"} }
	fast := &stallClient{trigger: -1}

	p := &Pool{Client: fast, Workers: 2}
	if r := p.Run(ctx, ClosedLoop(ctx, 50, mk)); len(r.AckedIDs) != 0 {
		t.Errorf("KeepIDs off: got %d retained IDs, want 0", len(r.AckedIDs))
	}
	p = &Pool{Client: fast, Workers: 2, KeepIDs: true}
	if r := p.Run(ctx, ClosedLoop(ctx, 50, mk)); len(r.AckedIDs) != 50 {
		t.Errorf("KeepIDs on: got %d retained IDs, want 50", len(r.AckedIDs))
	}
}

// TestOpenLoopSchedule checks the generator against the Poisson model: n
// arrivals at rate r should span about n/r seconds of schedule,
// non-decreasing (gaps can round to zero nanoseconds at high rates),
// independent of how fast the consumer drains them.
func TestOpenLoopSchedule(t *testing.T) {
	ctx := context.Background()
	const n, rate = 2000, 100_000.0
	ch := OpenLoop(ctx, Wall, n, rate, rand.New(rand.NewSource(7)), func(i int) Request { return Request{} })
	var first, last time.Time
	count := 0
	for a := range ch {
		if a.At.IsZero() {
			t.Fatal("open-loop arrival without a schedule")
		}
		if count == 0 {
			first = a.At
		} else if a.At.Before(last) {
			t.Fatalf("arrival %d scheduled before its predecessor", count)
		}
		last = a.At
		count++
	}
	if count != n {
		t.Fatalf("got %d arrivals, want %d", count, n)
	}
	span := last.Sub(first).Seconds()
	want := float64(n) / rate
	if span < want/2 || span > want*2 {
		t.Errorf("schedule span %.3fs, want ~%.3fs for %d arrivals at %.0f/s", span, want, n, rate)
	}
}
