package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"time"

	"mla/internal/history"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/serve/loadgen"
)

// SoakOptions shapes one crash-restart soak (see Soak). The soak runs a
// REAL mlaserve process — durability claims about SIGKILL are only worth
// anything against a separate process whose death this one cannot soften.
type SoakOptions struct {
	// Bin is the mlaserve binary to spawn. Required.
	Bin string
	// Dir holds the data directory and history spool across restarts.
	// Required; reused (not wiped) so the soak exercises real recovery.
	Dir string

	// Rounds is the number of SIGKILL rounds (the final graceful round and
	// the post-seal verification boot come on top). Default 5.
	Rounds int
	// TxnsPerRound / Sessions / Rate shape each round's open-loop load.
	// Defaults: 300 txns, 12 sessions, 120 arrivals/sec/session.
	TxnsPerRound int
	Sessions     int
	Rate         float64
	// KillAfter is how long into each round's load the SIGKILL lands.
	// Default: half the expected load duration — late enough to bank
	// acks, early enough that the kill interrupts live traffic.
	KillAfter time.Duration

	// CheckpointEvery is the child's compacting-checkpoint threshold in
	// records (default 64). The soak's bounded-replay assertions scale
	// from it.
	CheckpointEvery int

	// Transient disk-fault rates injected in the child (its WAL retries
	// them; they must not cost durability). Zero disables.
	DiskWriteErrRate   float64
	DiskShortWriteRate float64
	DiskSyncErrRate    float64

	// Seed drives the load generator and the child's fault injection.
	Seed int64
	// StartTimeout bounds each boot: spawn → listening → ready. Default 30s.
	StartTimeout time.Duration
	// Out, when non-nil, receives progress lines (child output included).
	Out io.Writer
}

// SoakRound records one boot of the child: what recovery reported, what the
// lost-ack audit found, and what the round's load did.
type SoakRound struct {
	Epoch           int64 `json:"epoch"`
	Records         int   `json:"records"`
	SinceCheckpoint int   `json:"since_checkpoint"`
	TornBytes       int64 `json:"torn_bytes"`
	// Reverified is how many previously acked transactions were re-checked
	// against this boot via GET /v1/txns/{id}; Lost is how many the server
	// denied (MUST be zero — each one is an ack the crash destroyed).
	Reverified int `json:"reverified"`
	Lost       int `json:"lost"`
	Offered    int `json:"offered"`
	Acked      int `json:"acked"`
	Down       int `json:"down"`
	// Graceful marks the SIGTERM round (and the verification boot).
	Graceful bool `json:"graceful"`
}

// SoakReport is the soak's verdict.
type SoakReport struct {
	Rounds     []SoakRound
	TotalAcked int
	// LostAcks lists every acked-then-denied transaction across all
	// boots. Durability means this is empty.
	LostAcks []string
	// Checkpoints is the child-reported compacting-checkpoint count
	// (maximum observed over /statz samples).
	Checkpoints int64
	// History is the black-box checker's report over the merged spool.
	History *history.Report
	// SpoolPath is where the concatenated history spool lives (CI uploads
	// it as the run's audit artifact).
	SpoolPath string
	Problems  []string
}

// OK reports whether every assertion held.
func (r *SoakReport) OK() bool { return len(r.Problems) == 0 }

// Summary renders the report as a table.
func (r *SoakReport) Summary() *metrics.Table {
	t := metrics.NewTable("mlaserve crash-restart soak", "metric", "value")
	t.Row("boots", len(r.Rounds))
	t.Row("acked total", r.TotalAcked)
	t.Row("lost acks", len(r.LostAcks))
	t.Row("checkpoints", r.Checkpoints)
	if n := len(r.Rounds); n > 0 {
		last := r.Rounds[n-1]
		t.Row("final epoch", last.Epoch)
		t.Row("final replay (records past checkpoint)", last.SinceCheckpoint)
	}
	if r.History != nil {
		t.Row("history", r.History.Summary())
	}
	verdict := "PASS"
	if !r.OK() {
		verdict = fmt.Sprintf("FAIL (%d problems)", len(r.Problems))
	}
	t.Row("verdict", verdict)
	return t
}

// soakChild is one running mlaserve process plus the handles the soak needs.
type soakChild struct {
	cmd  *exec.Cmd
	base string // http://addr
	done chan error
}

var listenRE = regexp.MustCompile(`listening on ([0-9.]+:[0-9]+)`)

// Soak is the crash-restart durability soak: it boots a real mlaserve
// process over a persistent data directory, offers open-loop load, SIGKILLs
// the process mid-load, restarts it, and audits — on every boot — that each
// transaction EVER acknowledged with 200 is still durable, that recovery's
// replay stayed bounded by the last checkpoint, and that the history spool
// concatenated across all boots passes the black-box MLA checker. The final
// round drains gracefully (SIGTERM seals the log with a checkpoint) and one
// more boot verifies the seal made recovery nearly free.
func Soak(ctx context.Context, o SoakOptions) (*SoakReport, error) {
	if o.Bin == "" || o.Dir == "" {
		return nil, fmt.Errorf("soak: need Bin and Dir")
	}
	if o.Rounds <= 0 {
		o.Rounds = 5
	}
	if o.TxnsPerRound <= 0 {
		o.TxnsPerRound = 300
	}
	if o.Sessions <= 0 {
		o.Sessions = 12
	}
	if o.Rate <= 0 {
		o.Rate = 120
	}
	if o.KillAfter <= 0 {
		loadSecs := float64(o.TxnsPerRound) / float64(o.Sessions) / o.Rate
		o.KillAfter = time.Duration(loadSecs / 2 * float64(time.Second))
		if o.KillAfter < 20*time.Millisecond {
			o.KillAfter = 20 * time.Millisecond
		}
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64
	}
	if o.StartTimeout <= 0 {
		o.StartTimeout = 30 * time.Second
	}
	logf := func(format string, args ...any) {
		if o.Out != nil {
			fmt.Fprintf(o.Out, "soak: "+format+"\n", args...)
		}
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	rep := &SoakReport{SpoolPath: filepath.Join(o.Dir, "history.spool")}
	problem := func(format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}

	var acked []string // every 200-acked txn across all boots, audit set
	client := &http.Client{Timeout: 10 * time.Second}

	// boot starts the child, waits for readiness, reads recovery stats,
	// and runs the lost-ack audit over everything acked so far.
	boot := func(round int, graceful bool) (*soakChild, *SoakRound, error) {
		c, err := o.startChild(round)
		if err != nil {
			return nil, nil, err
		}
		if err := awaitReady(ctx, client, c, o.StartTimeout); err != nil {
			c.cmd.Process.Kill()
			<-c.done
			return nil, nil, err
		}
		st, err := fetchStatz(ctx, client, c.base)
		if err != nil {
			c.cmd.Process.Kill()
			<-c.done
			return nil, nil, err
		}
		r := &SoakRound{Graceful: graceful}
		if st.Recovery != nil {
			r.Epoch = st.Recovery.Epoch
			r.Records = st.Recovery.Records
			r.SinceCheckpoint = st.Recovery.SinceCheckpoint
			r.TornBytes = st.Recovery.TornBytes
		}
		lost, err := loadgen.Reverify(ctx, client, c.base, acked)
		if err != nil {
			problem("boot %d: reverify: %v", round, err)
		}
		r.Reverified = len(acked)
		r.Lost = len(lost)
		rep.LostAcks = append(rep.LostAcks, lost...)
		logf("boot %d: epoch %d, %d records (%d past checkpoint, %d torn bytes), reverified %d acks, %d lost",
			round, r.Epoch, r.Records, r.SinceCheckpoint, r.TornBytes, r.Reverified, r.Lost)
		return c, r, nil
	}

	load := func(c *soakChild, r *SoakRound, round int) error {
		lrep, err := loadgen.Run(ctx, loadgen.Options{
			BaseURL:   c.base,
			Sessions:  o.Sessions,
			Txns:      o.TxnsPerRound,
			Rate:      o.Rate,
			CreditPct: 8,
			AuditPct:  2,
			Seed:      o.Seed + int64(round)*1009,
			Client:    client,
		})
		if err != nil {
			return err
		}
		r.Offered, r.Acked, r.Down = lrep.Offered, lrep.Acked, lrep.Down
		acked = append(acked, lrep.AckedIDs...)
		rep.TotalAcked += lrep.Acked
		return nil
	}

	// SIGKILL rounds: boot, audit, load with a mid-flight kill.
	for round := 1; round <= o.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		c, r, err := boot(round, false)
		if err != nil {
			return rep, fmt.Errorf("soak: boot %d: %w", round, err)
		}
		// Replay past the checkpoint can exceed CheckpointEvery — the
		// auto-checkpoint needs a quiescent flush — but it must stay in
		// its neighborhood, not grow with the total history.
		if bound := 8 * o.CheckpointEvery; round > 1 && r.SinceCheckpoint > bound {
			problem("boot %d: recovery replayed %d records past the checkpoint (bound %d) — compaction is not bounding recovery",
				round, r.SinceCheckpoint, bound)
		}
		// The load runs concurrently; the kill lands from here, KillAfter
		// into it, with a checkpoint-progress sample taken just before the
		// lights go out.
		loadDone := make(chan error, 1)
		go func() { loadDone <- load(c, r, round) }()
		select {
		case <-time.After(o.KillAfter):
			logf("round %d: SIGKILL", round)
		case err := <-loadDone:
			// The load finished before the kill window — still kill (the
			// restart is the thing under test), unless it failed outright.
			if err != nil {
				c.cmd.Process.Kill()
				<-c.done
				return rep, fmt.Errorf("soak: round %d load: %w", round, err)
			}
			loadDone <- nil
		}
		if st, err := fetchStatz(ctx, client, c.base); err == nil && st.WAL.Checkpoints > rep.Checkpoints {
			rep.Checkpoints = st.WAL.Checkpoints
		}
		c.cmd.Process.Kill()
		if err := <-loadDone; err != nil {
			<-c.done
			return rep, fmt.Errorf("soak: round %d load: %w", round, err)
		}
		<-c.done
		rep.Rounds = append(rep.Rounds, *r)
		logf("round %d: offered %d, acked %d, down %d", round, r.Offered, r.Acked, r.Down)
		if r.Acked == 0 {
			problem("round %d acked nothing — the kill beat the load; raise KillAfter", round)
		}
	}

	// Graceful round: same audit, quiet load, SIGTERM drain. The drain
	// flushes the pipeline and seals the log with a checkpoint.
	c, r, err := boot(o.Rounds+1, true)
	if err != nil {
		return rep, fmt.Errorf("soak: graceful boot: %w", err)
	}
	if err := load(c, r, o.Rounds+1); err != nil {
		c.cmd.Process.Kill()
		<-c.done
		return rep, fmt.Errorf("soak: graceful load: %w", err)
	}
	if st, err := fetchStatz(ctx, client, c.base); err == nil && st.WAL.Checkpoints > rep.Checkpoints {
		rep.Checkpoints = st.WAL.Checkpoints
	}
	c.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-c.done:
		if err != nil {
			problem("graceful drain exited with: %v", err)
		}
	case <-time.After(o.StartTimeout):
		c.cmd.Process.Kill()
		<-c.done
		problem("graceful drain timed out after %v", o.StartTimeout)
	}
	rep.Rounds = append(rep.Rounds, *r)

	// Verification boot: a sealed log must make recovery nearly free —
	// the checkpoint is the last record (plus at most the seal's own
	// bookkeeping), NOT a replay of the whole history.
	c, r, err = boot(o.Rounds+2, true)
	if err != nil {
		return rep, fmt.Errorf("soak: verification boot: %w", err)
	}
	if r.SinceCheckpoint > 2 {
		problem("after a sealed shutdown, recovery replayed %d records past the checkpoint (want <= 2)", r.SinceCheckpoint)
	}
	c.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-c.done:
	case <-time.After(o.StartTimeout):
		c.cmd.Process.Kill()
		<-c.done
	}
	rep.Rounds = append(rep.Rounds, *r)

	// Verdicts that span the whole soak.
	if len(rep.LostAcks) > 0 {
		problem("%d acked transactions were lost across restarts: %v", len(rep.LostAcks), sample(rep.LostAcks, 8))
	}
	if rep.TotalAcked == 0 {
		problem("no transaction was ever acknowledged — the soak never got going")
	}
	if rep.Checkpoints == 0 {
		problem("no compacting checkpoint was ever observed — the log grew unbounded")
	}

	// The merged spool — every boot appended to one file, torn tails and
	// all — must reconstruct a history the black-box checker accepts, with
	// every acked transaction committed in it.
	h, err := history.ReadSpoolFile(rep.SpoolPath)
	if err != nil {
		problem("history spool: %v", err)
	} else {
		hr, err := history.Check(h)
		if err != nil {
			problem("history checker rejected the merged spool: %v", err)
		} else {
			rep.History = hr
			if !hr.Correctable {
				problem("merged spool history is NOT multilevel atomic: %s", hr.Summary())
			}
		}
		steps, _, err := h.Committed()
		if err != nil {
			problem("spool replay: %v", err)
		} else {
			committed := make(map[model.TxnID]bool, len(steps))
			for _, s := range steps {
				committed[s.Txn] = true
			}
			missing := 0
			for _, id := range acked {
				if !committed[model.TxnID(id)] {
					missing++
				}
			}
			if missing > 0 {
				problem("%d acked transactions missing from the merged spool history", missing)
			}
		}
	}
	logf("done: %d boots, %d acked, %d lost, %d checkpoints", len(rep.Rounds), rep.TotalAcked, len(rep.LostAcks), rep.Checkpoints)
	return rep, nil
}

// startChild spawns one mlaserve process over the soak's data directory and
// waits for its "listening on" line. Port 0 every boot: the address is
// re-parsed, so kill-induced TIME_WAIT states never collide.
func (o SoakOptions) startChild(round int) (*soakChild, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", filepath.Join(o.Dir, "wal"),
		"-spool", filepath.Join(o.Dir, "history.spool"),
		"-checkpoint-every", strconv.Itoa(o.CheckpointEvery),
		"-seed", strconv.FormatInt(o.Seed+int64(round), 10),
	}
	if o.DiskWriteErrRate > 0 {
		args = append(args, "-disk-write-err", fmt.Sprint(o.DiskWriteErrRate))
	}
	if o.DiskShortWriteRate > 0 {
		args = append(args, "-disk-short-write", fmt.Sprint(o.DiskShortWriteRate))
	}
	if o.DiskSyncErrRate > 0 {
		args = append(args, "-disk-sync-err", fmt.Sprint(o.DiskSyncErrRate))
	}
	if o.DiskWriteErrRate > 0 || o.DiskShortWriteRate > 0 || o.DiskSyncErrRate > 0 {
		args = append(args, "-disk-fault-seed", strconv.FormatInt(o.Seed*31+int64(round), 10))
	}
	cmd := exec.Command(o.Bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = cmd.Stdout // interleave; both feed the scanner below
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if o.Out != nil {
				fmt.Fprintf(o.Out, "  [child %d] %s\n", cmd.Process.Pid, line)
			}
		}
		close(addrCh)
	}()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			<-done
			return nil, fmt.Errorf("child exited before listening")
		}
		return &soakChild{cmd: cmd, base: "http://" + addr, done: done}, nil
	case <-time.After(o.StartTimeout):
		cmd.Process.Kill()
		<-done
		return nil, fmt.Errorf("child did not report listening within %v", o.StartTimeout)
	}
}

// awaitReady polls /readyz until the recovery gate lifts. Listening comes
// BEFORE recovery (that is the point of the gate), so this is where the
// replay time is actually spent.
func awaitReady(ctx context.Context, client *http.Client, c *soakChild, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := client.Get(c.base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case err := <-c.done:
			return fmt.Errorf("child exited while recovering: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("child not ready within %v", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// soakStatz is the slice of /statz the soak reads.
type soakStatz struct {
	Recovery *struct {
		Epoch           int64 `json:"epoch"`
		Records         int   `json:"records"`
		SinceCheckpoint int   `json:"since_checkpoint"`
		TornBytes       int64 `json:"torn_bytes"`
	} `json:"recovery"`
	WAL struct {
		Checkpoints int64 `json:"Checkpoints"`
	} `json:"wal"`
}

func fetchStatz(ctx context.Context, client *http.Client, base string) (*soakStatz, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/statz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st soakStatz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("statz: %w", err)
	}
	return &st, nil
}

func sample(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
