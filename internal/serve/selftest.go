package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"mla/internal/history"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/serve/loadgen"
)

// SelfTestOptions shapes one end-to-end exercise of the server (see
// SelfTest). The zero value is filled with the CI-sized defaults.
type SelfTestOptions struct {
	// Server configuration; zero value takes DefaultConfig (with Record
	// forced on — the selftest's verdict rests on the recorded history).
	Config Config

	// Load shape.
	Sessions      int
	Txns          int
	Rate          float64 // arrivals/sec per session
	AuditPct      int
	CreditPct     int
	DisconnectPct int
	DeadlineMS    int64

	// DrainAfter triggers the mid-run graceful drain this long into the
	// load; 0 drains only after the load completes. Transactions offered
	// after the drain must be refused with 503, never lost.
	DrainAfter time.Duration

	// Overload shrinks the admission capacity to force shedding: the run
	// passes only if 429s were actually produced and every shed request
	// was refused cleanly.
	Overload bool

	// P99SLO, when nonzero, bounds the acked commits' p99 latency.
	P99SLO time.Duration

	// TriggerDrain, when non-nil, is invoked (once, from its own
	// goroutine) when the drain moment arrives, instead of calling
	// shutdown directly — cmd/mlaserve routes this through a real SIGTERM
	// so the signal path itself is under test. The callback must
	// eventually cause shutdown() to run.
	TriggerDrain func(shutdown func())

	// Out, when non-nil, receives progress lines.
	Out io.Writer
}

// SelfTestReport is the verdict: the load report, the server's final
// stats, the history-checker result, and every assertion that failed.
type SelfTestReport struct {
	Load     *loadgen.Report
	Stats    Stats
	History  *history.Report
	P99      time.Duration
	Problems []string

	// Recorded is the raw recorded history, for callers that export it
	// (cmd/mlaserve writes it so `mlacheck -history` can audit the run
	// independently).
	Recorded *history.History
}

// OK reports whether every assertion held.
func (r *SelfTestReport) OK() bool { return len(r.Problems) == 0 }

// Summary renders the report as a table.
func (r *SelfTestReport) Summary() *metrics.Table {
	t := metrics.NewTable("mlaserve selftest", "metric", "value")
	t.Row("offered", r.Load.Offered)
	t.Row("acked (200)", r.Load.Acked)
	t.Row("deadline (408)", r.Load.Deadline)
	t.Row("shed (429)", r.Load.Shed)
	t.Row("draining (503)", r.Load.Draining)
	t.Row("disconnected", r.Load.Canceled)
	t.Row("retries", r.Load.Retries)
	t.Row("down", r.Load.Down)
	t.Row("errors", r.Load.Errors)
	t.Row("p99 latency", r.P99.String())
	if r.History != nil {
		t.Row("history", r.History.Summary())
	}
	verdict := "PASS"
	if !r.OK() {
		verdict = fmt.Sprintf("FAIL (%d problems)", len(r.Problems))
	}
	t.Row("verdict", verdict)
	return t
}

// SelfTest runs the full service loop against a real TCP listener: start
// the server, offer an open-loop Poisson load from many concurrent client
// sessions (with injected disconnects), drain gracefully mid-run, and then
// audit the wreckage:
//
//   - every transaction acknowledged with 200 is durably committed on the
//     WAL and committed in the recorded history — zero lost acks;
//   - the recorded history passes the black-box MLA checker;
//   - under forced overload, requests were genuinely shed with 429 and
//     the engine stayed within its admission bounds;
//   - the drain left no transaction half-done and the acked p99 is inside
//     the SLO (the deadline bounds it structurally).
//
// It returns an error only for harness failures (listen, load transport);
// assertion failures land in Report.Problems so callers can print all of
// them.
func SelfTest(ctx context.Context, o SelfTestOptions) (*SelfTestReport, error) {
	if o.Sessions == 0 {
		o.Sessions = 100
	}
	if o.Txns == 0 {
		o.Txns = 2000
	}
	if o.Rate == 0 {
		o.Rate = 150
	}
	if o.Config.Families == 0 {
		o.Config = DefaultConfig()
	}
	o.Config.Record = true
	if o.Overload {
		// Capacity far below the offered load: shedding must engage.
		o.Config.MaxInflight = 2
		o.Config.QueueDepth = 2
		o.Config.AdmitWait = time.Millisecond
	}
	logf := func(format string, args ...any) {
		if o.Out != nil {
			fmt.Fprintf(o.Out, format+"\n", args...)
		}
	}

	srv, err := New(o.Config)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("selftest: listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	logf("selftest: serving on %s (%d sessions, %d txns, %.0f/s each)", base, o.Sessions, o.Txns, o.Rate)

	// The drain trigger: directly, or through the caller's signal path.
	drained := make(chan struct{})
	shutdown := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logf("selftest: drain: %v", err)
		}
		close(drained)
	}
	if o.DrainAfter > 0 {
		go func() {
			select {
			case <-time.After(o.DrainAfter):
			case <-ctx.Done():
				return
			}
			logf("selftest: triggering mid-run drain")
			if o.TriggerDrain != nil {
				o.TriggerDrain(shutdown)
			} else {
				shutdown()
			}
		}()
	}

	load, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:       base,
		Sessions:      o.Sessions,
		Txns:          o.Txns,
		Rate:          o.Rate,
		AuditPct:      o.AuditPct,
		CreditPct:     o.CreditPct,
		DeadlineMS:    o.DeadlineMS,
		DisconnectPct: o.DisconnectPct,
		MaxRetries:    3,
		Seed:          o.Config.Seed + 17,
	})
	if err != nil {
		hs.Close()
		return nil, err
	}
	if o.DrainAfter > 0 {
		<-drained
	} else {
		shutdown()
	}
	hs.Close()
	<-serveErr

	rep := &SelfTestReport{Load: load, Stats: srv.Stats()}
	problem := func(format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
	}

	// Zero dropped acks: every 200 is durable on the WAL and committed in
	// the recorded history. This is THE serving contract — an ack that a
	// crash, drain, or disconnect can un-commit would make every client a
	// liar downstream.
	h := srv.History()
	rep.Recorded = h
	committed := make(map[model.TxnID]bool)
	if h != nil {
		exec, _, err := h.Committed()
		if err != nil {
			problem("recorded history does not replay: %v", err)
		} else {
			for _, st := range exec {
				committed[st.Txn] = true
			}
		}
	} else {
		problem("no history recorded")
	}
	lostWAL, lostHist := 0, 0
	for _, id := range load.AckedIDs {
		if !srv.Durable(model.TxnID(id)) {
			lostWAL++
		}
		if h != nil && !committed[model.TxnID(id)] {
			lostHist++
		}
	}
	if lostWAL > 0 {
		problem("%d acked transactions not durable on the WAL", lostWAL)
	}
	if lostHist > 0 {
		problem("%d acked transactions missing from the recorded history", lostHist)
	}

	// The black-box checker audits the multiplexed execution.
	if h != nil {
		hr, err := history.Check(h)
		if err != nil {
			problem("history checker rejected the input: %v", err)
		} else {
			rep.History = hr
			if !hr.Correctable {
				problem("recorded history is NOT multilevel atomic: %s", hr.Summary())
			}
		}
	}

	if load.Errors > 0 {
		problem("%d protocol errors (beyond injected disconnects); samples: %v", load.Errors, load.ErrorSamples)
	}
	if load.Down > 0 {
		// The selftest never kills the server, so an unreachable server is
		// a real failure here (unlike in the crash-restart soak).
		problem("%d transport failures — the server was unreachable; samples: %v", load.Down, load.ErrorSamples)
	}
	if load.Acked == 0 {
		problem("no transaction was acknowledged — the run never got going")
	}
	if o.Overload && load.Shed == 0 && rep.Stats.Shed == 0 {
		problem("overload cell produced no 429s — admission control never engaged")
	}
	if o.DrainAfter > 0 && load.Draining == 0 {
		problem("mid-run drain produced no 503s — drain raced past the load")
	}
	if sum := metrics.Summarize(load.Latencies); sum.N > 0 {
		rep.P99 = time.Duration(sum.P99) * time.Microsecond
		if o.P99SLO > 0 && rep.P99 > o.P99SLO {
			problem("acked p99 %v exceeds SLO %v", rep.P99, o.P99SLO)
		}
	}
	logf("selftest: %d offered, %d acked, %d shed, %d draining, p99 %v",
		load.Offered, load.Acked, load.Shed, load.Draining, rep.P99)
	return rep, nil
}
