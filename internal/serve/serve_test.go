package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"mla/internal/history"
	"mla/internal/model"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Families = 4
	cfg.AccountsPerFamily = 3
	cfg.MaxInflight = 16
	cfg.QueueDepth = 16
	return cfg
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func openTestSession(t *testing.T, base string) string {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/sessions", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open session: status %d: %s", resp.StatusCode, body)
	}
	var sr openSessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr.ID
}

// TestServeCommit: the basic contract — a transfer through the HTTP API
// commits, the response reports it, and the commit is durable on the WAL.
func TestServeCommit(t *testing.T) {
	srv, ts := startServer(t, testConfig())
	sess := openTestSession(t, ts.URL)
	for _, kind := range []string{"transfer", "audit", "credit"} {
		resp, body := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: kind})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", kind, resp.StatusCode, body)
		}
		var tr txnResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatal(err)
		}
		if !tr.Committed || tr.Txn == "" {
			t.Fatalf("%s: not committed: %+v", kind, tr)
		}
		if !srv.Durable(model.TxnID(tr.Txn)) {
			t.Fatalf("%s: %s acked but not durable", kind, tr.Txn)
		}
	}
	st := srv.Stats()
	if st.Acked != 3 || st.Engine.Committed != 3 {
		t.Errorf("stats: acked %d, engine committed %d, want 3/3", st.Acked, st.Engine.Committed)
	}
}

// TestServeHomeShardRouting: with HomeShards set, sessions pin to their
// family's home shard, customer traffic is admitted through that shard's
// own gate (visible in /statz as cust@N), and audits still share the one
// audit gate. Transactions keep committing across every home shard.
func TestServeHomeShardRouting(t *testing.T) {
	cfg := testConfig()
	cfg.HomeShards = 2
	srv, ts := startServer(t, cfg)

	// One session per family: families must spread across both home shards
	// and two sessions of the same family must agree on their pin.
	homes := make(map[int]bool)
	for f := 0; f < cfg.Families; f++ {
		cs, err := srv.OpenSession(f)
		if err != nil {
			t.Fatal(err)
		}
		dup, err := srv.OpenSession(f)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Home() != dup.Home() {
			t.Fatalf("family %d pinned to shards %d and %d", f, cs.Home(), dup.Home())
		}
		homes[cs.Home()] = true
		res, err := srv.Submit(context.Background(), TxnRequest{Session: cs.ID(), Kind: "transfer"})
		if err != nil || !res.Outcome.Committed {
			t.Fatalf("family %d transfer: %v %+v", f, err, res)
		}
		if _, err := srv.Submit(context.Background(), TxnRequest{Session: cs.ID(), Kind: "audit"}); err != nil {
			t.Fatalf("family %d audit: %v", f, err)
		}
	}
	if len(homes) != 2 {
		t.Fatalf("4 families landed on %d home shards, want 2", len(homes))
	}

	st := srv.Stats()
	if _, ok := st.Gates[classCust]; ok {
		t.Error("partitioned server still reports the single cust gate")
	}
	var custAdmitted int64
	for h := 0; h < cfg.HomeShards; h++ {
		gs, ok := st.Gates[custGateName(h)]
		if !ok {
			t.Fatalf("stats missing gate %s", custGateName(h))
		}
		custAdmitted += gs.Admitted
	}
	if custAdmitted != int64(cfg.Families) {
		t.Errorf("home-shard gates admitted %d, want %d", custAdmitted, cfg.Families)
	}
	if st.Gates[classAudit].Admitted != int64(cfg.Families) {
		t.Errorf("audit gate admitted %d, want %d", st.Gates[classAudit].Admitted, cfg.Families)
	}
	_ = ts
}

// TestServeUnknownSessionAndKind: 404 for a session never opened, 400 for
// a kind the server does not synthesize.
func TestServeUnknownSessionAndKind(t *testing.T) {
	_, ts := startServer(t, testConfig())
	resp, _ := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: "nope", Kind: "transfer"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}
	sess := openTestSession(t, ts.URL)
	resp, _ = postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "heist"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400", resp.StatusCode)
	}
}

// TestServeOverload: with the engine's one admission slot held hostage,
// the next request must be shed with 429 and a Retry-After hint, and the
// shed must show up in the stats.
func TestServeOverload(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflight = 1
	cfg.AdmitWait = 5 * time.Millisecond
	srv, ts := startServer(t, cfg)
	sess := openTestSession(t, ts.URL)

	// Occupy the single global slot directly; the HTTP path then cannot
	// admit anything until it is released.
	if !srv.global.acquire(context.Background(), time.Second) {
		t.Fatal("could not take the global slot")
	}
	resp, body := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
	srv.global.release()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterMS <= 0 {
		t.Errorf("429 body lacks retry_after_ms: %s", body)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Errorf("stats shed = %d, want 1", st.Shed)
	}

	// Released: the same request now commits.
	resp, body = postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status %d: %s", resp.StatusCode, body)
	}
}

// TestServeDeadline: a server whose default deadline is immediately spent
// answers 408 — the transaction is refused or rolled back at a breakpoint,
// never half-done.
func TestServeDeadline(t *testing.T) {
	cfg := testConfig()
	cfg.DefaultDeadline = time.Nanosecond
	cfg.MaxDeadline = time.Nanosecond
	srv, ts := startServer(t, cfg)
	sess := openTestSession(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408: %s", resp.StatusCode, body)
	}
	if st := srv.Stats(); st.Deadline != 1 {
		t.Errorf("stats deadline = %d, want 1", st.Deadline)
	}
}

// TestServeRetryBudget: a session whose retry budget is spent is shed with
// 429 before it can queue again.
func TestServeRetryBudget(t *testing.T) {
	cfg := testConfig()
	cfg.SessionRetryBudget = 1
	srv, ts := startServer(t, cfg)
	sess := openTestSession(t, ts.URL)
	cs := srv.lookupSession(sess)
	cs.mu.Lock()
	cs.budget = 0
	cs.mu.Unlock()
	resp, body := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if st := srv.Stats(); st.BudgetDenied != 1 {
		t.Errorf("stats budget_denied = %d, want 1", st.BudgetDenied)
	}
}

// TestServeDrain: Shutdown stops admission (readyz flips, txns 503), lets
// in-flight work resolve, and leaves every prior ack durable.
func TestServeDrain(t *testing.T) {
	srv, ts := startServer(t, testConfig())
	sess := openTestSession(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain txn: status %d: %s", resp.StatusCode, body)
	}
	var tr txnResponse
	json.Unmarshal(body, &tr)

	if r, err := http.Get(ts.URL + "/readyz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", r.StatusCode, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if r, _ := http.Get(ts.URL + "/readyz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: status %d, want 503", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/healthz"); r.StatusCode != http.StatusOK {
		t.Errorf("healthz after clean drain: status %d, want 200 (drain is not a failure)", r.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain txn: status %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sessions", map[string]any{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain session open: status %d, want 503", resp.StatusCode)
	}
	if !srv.Durable(model.TxnID(tr.Txn)) {
		t.Errorf("%s acked before drain but not durable after", tr.Txn)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestServeHistoryAudit: a recorded run's history replays, passes the
// black-box MLA checker, and contains every acknowledged commit — the same
// audit `mlacheck -history` performs on the exported file.
func TestServeHistoryAudit(t *testing.T) {
	cfg := testConfig()
	cfg.Record = true
	srv, ts := startServer(t, cfg)

	var mu sync.Mutex
	var acked []model.TxnID
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := openTestSession(t, ts.URL)
			for i := 0; i < 6; i++ {
				kind := "transfer"
				if i == 3 {
					kind = "credit"
				}
				if w == 0 && i == 5 {
					kind = "audit"
				}
				resp, body := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: kind})
				if resp.StatusCode == http.StatusOK {
					var tr txnResponse
					if json.Unmarshal(body, &tr) == nil && tr.Committed {
						mu.Lock()
						acked = append(acked, model.TxnID(tr.Txn))
						mu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	h := srv.History()
	if h == nil {
		t.Fatal("recording enabled but no history")
	}
	rep, err := history.Check(h)
	if err != nil {
		t.Fatalf("history check: %v", err)
	}
	if !rep.Correctable {
		t.Fatalf("history not multilevel atomic: %s", rep.Summary())
	}
	exec, _, err := h.Committed()
	if err != nil {
		t.Fatal(err)
	}
	committed := make(map[model.TxnID]bool)
	for _, st := range exec {
		committed[st.Txn] = true
	}
	if len(acked) == 0 {
		t.Fatal("no acks collected")
	}
	for _, id := range acked {
		if !committed[id] {
			t.Errorf("acked %s missing from recorded history", id)
		}
		if !srv.Durable(id) {
			t.Errorf("acked %s not durable", id)
		}
	}
	// The history round-trips through its wire format (what mlaserve
	// writes and mlacheck reads).
	var buf bytes.Buffer
	if err := h.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	h2, err := history.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rep2, err := history.Check(h2); err != nil || !rep2.Correctable {
		t.Fatalf("decoded history fails the checker: %v", err)
	}
}

// TestServeConcurrentLoadNoLeaks: a burst of concurrent HTTP clients, then
// drain — conservation must hold on the WAL values and nothing may leak.
func TestServeConcurrentLoadNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := openTestSession(t, ts.URL)
			for i := 0; i < 5; i++ {
				resp, _ := postJSON(t, ts.URL+"/v1/txns", txnRequest{Session: sess, Kind: "transfer"})
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests &&
					resp.StatusCode != http.StatusRequestTimeout {
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()

	// Conservation: transfers move money, audits only read; result
	// entities live outside the account space.
	var sum model.Value
	for x, v := range srv.db.Values() {
		if w := srv.world; len(x) >= 4 && x[:4] != "audi" && x[:4] != "cred" {
			_ = w
			sum += v
		}
	}
	want := srv.world.Total()
	if sum != want {
		t.Errorf("accounts sum to %d, want %d", sum, want)
	}
	waitGoroutines(t, before)
}

// waitGoroutines mirrors the engine tests' leak check.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSelfTestSmoke runs the full selftest loop at CI scale: open-loop
// load with disconnects and a mid-run drain, all assertions on.
func TestSelfTestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("selftest loop in -short mode")
	}
	// Load duration ≈ (Txns/Sessions)/Rate = 20/40 = 500ms, so the 250ms
	// drain lands mid-load: the first half commits, the second half must
	// see clean 503s.
	rep, err := SelfTest(context.Background(), SelfTestOptions{
		Sessions:      20,
		Txns:          400,
		Rate:          40,
		AuditPct:      2,
		CreditPct:     8,
		DisconnectPct: 5,
		DrainAfter:    250 * time.Millisecond,
		P99SLO:        5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Error(p)
	}
	if rep.Load.Acked == 0 {
		t.Error("no acks")
	}
}

// TestSelfTestOverload: the overload cell must actually shed.
func TestSelfTestOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("selftest loop in -short mode")
	}
	rep, err := SelfTest(context.Background(), SelfTestOptions{
		Sessions: 16,
		Txns:     240,
		Rate:     400,
		Overload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Error(p)
	}
	if rep.Load.Shed == 0 && rep.Stats.Shed == 0 {
		t.Error("overload run shed nothing")
	}
}

func ExampleServer_Handler() {
	srv, err := New(DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := http.Get(ts.URL + "/healthz")
	fmt.Println(resp.StatusCode)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	// Output: 200
}
