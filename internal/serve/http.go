package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"mla/internal/engine"
	"mla/internal/model"
	"mla/internal/wal"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/sessions        {"family": n?}            -> {"id", "family"}
//	DELETE /v1/sessions/{id}                             -> 204
//	POST   /v1/txns            {"session","kind","deadline_ms"?}
//	GET    /v1/txns/{id}       durability lookup          -> {"txn","durable"}
//	GET    /healthz            liveness (engine alive, disk healthy)
//	GET    /readyz             readiness (accepting, not draining)
//	GET    /statz              full Stats snapshot
//
// POST /v1/txns status codes carry the backpressure contract:
//
//	200 committed (durable before this response is written)
//	408 the transaction's deadline expired at a breakpoint
//	429 shed (admission timed out, retry budget spent) + Retry-After
//	503 draining, degraded (disk failed; read-only), or engine failed,
//	    + Retry-After where retry makes sense
//
// GET /v1/txns/{id} answers from the recovered WAL state: 200 when the
// commit record is durable (across any number of restarts), 404 when it is
// not — the crash-restart soak re-verifies every previously acked
// transaction through it.
//
// A request abandoned by its client (connection gone) is withdrawn at the
// transaction's next breakpoint; no response is deliverable, so none is
// recorded beyond the canceled counter.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleOpenSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCloseSession)
	mux.HandleFunc("POST /v1/txns", s.handleTxn)
	mux.HandleFunc("GET /v1/txns/{id}", s.handleTxnLookup)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

type openSessionRequest struct {
	Family *int `json:"family"`
}

type openSessionResponse struct {
	ID     string `json:"id"`
	Family int    `json:"family"`
}

type txnRequest struct {
	Session    string `json:"session"`
	Kind       string `json:"kind"`
	DeadlineMS int64  `json:"deadline_ms"`
}

type txnResponse struct {
	Txn       string `json:"txn"`
	Committed bool   `json:"committed"`
	Restarts  int    `json:"restarts"`
	LatencyUS int64  `json:"latency_us"`
	WaitedUS  int64  `json:"waited_us"`
}

type errorResponse struct {
	Error        string `json:"error"`
	Detail       string `json:"detail,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeRetryable writes an error with the Retry-After contract: the header
// in whole seconds (rounded up, HTTP's resolution) and the precise hint in
// the body for clients that parse it.
func (s *Server) writeRetryable(w http.ResponseWriter, status int, code, detail string) {
	ra := s.RetryAfter()
	secs := int64((ra + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, errorResponse{Error: code, Detail: detail, RetryAfterMS: ra.Milliseconds()})
}

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req openSessionRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad_request", Detail: err.Error()})
			return
		}
	}
	family := -1
	if req.Family != nil {
		family = *req.Family
	}
	cs, err := s.OpenSession(family)
	if err != nil {
		code := "draining"
		if errors.Is(err, wal.ErrDegraded) {
			code = "degraded"
		}
		s.writeRetryable(w, http.StatusServiceUnavailable, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, openSessionResponse{ID: cs.ID(), Family: cs.Family()})
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if !s.CloseSession(r.PathValue("id")) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown_session"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	var req txnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad_request", Detail: err.Error()})
		return
	}
	res, err := s.Submit(r.Context(), TxnRequest{
		Session:  req.Session,
		Kind:     req.Kind,
		Deadline: time.Duration(req.DeadlineMS) * time.Millisecond,
	})
	switch {
	case err == nil:
	case errors.Is(err, ErrOverload):
		s.writeRetryable(w, http.StatusTooManyRequests, "overload", err.Error())
		return
	case errors.Is(err, ErrDraining):
		s.writeRetryable(w, http.StatusServiceUnavailable, "draining", err.Error())
		return
	case errors.Is(err, wal.ErrDegraded):
		// Checked before ErrSessionClosed: an engine that died OF the disk
		// reports the disk, so clients and probes see "degraded", not a
		// generic engine failure. Retry-After because an operator replacing
		// the volume brings a restarted server back.
		s.writeRetryable(w, http.StatusServiceUnavailable, "degraded", err.Error())
		return
	case errors.Is(err, engine.ErrSessionClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "engine_failed", Detail: err.Error()})
		return
	case errors.Is(err, ErrUnknownSession):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown_session", Detail: err.Error()})
		return
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad_request", Detail: err.Error()})
		return
	}

	out := res.Outcome
	switch {
	case out.Committed:
		writeJSON(w, http.StatusOK, txnResponse{
			Txn:       string(res.Txn),
			Committed: true,
			Restarts:  out.Restarts,
			LatencyUS: out.Latency.Microseconds(),
			WaitedUS:  out.Waited.Microseconds(),
		})
	case out.DeadlineExceeded:
		writeJSON(w, http.StatusRequestTimeout, errorResponse{
			Error:  "deadline_exceeded",
			Detail: fmt.Sprintf("%s rolled back at a breakpoint after %d restarts", res.Txn, out.Restarts),
		})
	case out.GaveUp:
		s.writeRetryable(w, http.StatusTooManyRequests, "contention",
			fmt.Sprintf("%s exhausted its restart budget (%d rollbacks)", res.Txn, out.Restarts))
	case out.Canceled:
		// The client is gone; this write lands on a dead connection and is
		// best-effort only.
		writeJSON(w, http.StatusRequestTimeout, errorResponse{Error: "canceled"})
	}
}

func (s *Server) handleTxnLookup(w http.ResponseWriter, r *http.Request) {
	id := model.TxnID(r.PathValue("id"))
	if s.Durable(id) {
		writeJSON(w, http.StatusOK, map[string]any{"txn": string(id), "durable": true})
		return
	}
	writeJSON(w, http.StatusNotFound, map[string]any{"txn": string(id), "durable": false})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if err := s.Err(); err != nil {
		code := "engine_failed"
		if errors.Is(err, wal.ErrDegraded) {
			code = "degraded"
		}
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: code, Detail: err.Error()})
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.Accepting() {
		code, detail := "draining", "not accepting new transactions"
		if s.Degraded() {
			code, detail = "degraded", "durable medium failed; read-only"
		}
		s.writeRetryable(w, http.StatusServiceUnavailable, code, detail)
		return
	}
	w.Write([]byte("ready\n"))
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
