// Package serve is the long-lived service front-end over the resident
// engine: one engine.Session kept warm for the life of the process, with
// thousands of concurrent client sessions multiplexed onto the banking
// nest structure over a JSON HTTP API (cmd/mlaserve).
//
// The package exists to close the loop the batch tools cannot: Run and
// RunOnStore take a fixed transaction population and report afterwards,
// but the paper's motivating systems — airline reservation, banking — are
// *open* systems where transactions arrive forever and the interesting
// engineering is at the admission boundary. Everything here is about that
// boundary:
//
//   - Admission control: bounded queues per nest class plus a global
//     in-flight cap. When the scheduler saturates (waits pile up, commit
//     latency grows), requests are shed with 429 and a Retry-After derived
//     from the observed commit-latency EWMA scaled by queue pressure —
//     load shedding informed by sched.Stats rather than a blind counter.
//   - Deadlines: every transaction carries one (client-supplied or the
//     server default). The engine aborts it at its next breakpoint — a
//     runnable transaction finishes the unit it started, so nothing
//     partial is ever exposed, which is precisely the MLA notion of a
//     cheap place to change the schedule's mind.
//   - Backpressure to the client: deadline rollbacks are 408, shed
//     admissions 429, exhausted retry budgets 429, drain 503 — each with
//     enough structure (retry_after_ms) for a well-behaved client to back
//     off instead of hammering.
//   - Graceful drain: SIGTERM stops admission (readyz flips), in-flight
//     transactions run to their natural ends, the WAL pipeline is flushed
//     and closed, and the recorded history and telemetry are exported on
//     every exit path. A commit acknowledged with 200 is durable on the
//     WAL before the acknowledgment is written.
//
// The server optionally records the full execution history through
// history.Recorder, so `mlacheck -history` can audit a live run after the
// fact: the black-box checker either blesses the multiplexed execution as
// multilevel atomic or produces a witness cycle.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/engine"
	"mla/internal/fault"
	"mla/internal/history"
	"mla/internal/lock"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/shard"
	"mla/internal/telemetry"
	"mla/internal/wal"
)

// Config sizes the server. The zero value is unusable; call DefaultConfig
// and override.
type Config struct {
	// Families and AccountsPerFamily shape the banking world the clients
	// transact against; InitialBalance seeds every account.
	Families          int
	AccountsPerFamily int
	InitialBalance    model.Value

	// Amount and Reserve parameterize synthesized transfers exactly as
	// bank.Params does; CrossFamilyPct is the chance a transfer deposits
	// into another family.
	Amount         model.Value
	Reserve        model.Value
	CrossFamilyPct int

	// Control selects the concurrency control: "2pl-sharded" (default),
	// "2pl", "tso", or "none" (unsound; for demonstration only). Shards
	// sizes the sharded control's lock table.
	Control string
	Shards  int

	// HomeShards, when > 1, partitions the account families across that
	// many home shards with the same hash routing the partitioned entity
	// store uses: each session is pinned to the home shard of its family,
	// and customer traffic (transfers, creditor audits) is admitted
	// through a per-home-shard queue instead of the single "cust" gate —
	// one saturated partition sheds its own clients instead of everyone.
	// Bank audits still share the one "audit" gate (they read every
	// shard). 0 or 1 keeps the single customer queue.
	HomeShards int

	// MaxInflight caps transactions inside the engine at once; QueueDepth
	// bounds each admission class's queue on top of that. AdmitWait is how
	// long a request may wait for admission before it is shed with 429.
	MaxInflight int
	QueueDepth  int
	AdmitWait   time.Duration

	// DefaultDeadline bounds a transaction that did not bring its own;
	// MaxDeadline clamps client-supplied ones.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// MaxRestarts bounds rollbacks per transaction; SessionRetryBudget is
	// the total restarts one client session may consume across all its
	// transactions before further submissions are refused with 429 — the
	// per-session retry budget that stops one pathological client from
	// burning the whole engine on livelock.
	SessionRetryBudget int
	MaxRestarts        int

	// FlushInterval is the WAL group-commit pipeline's flush window.
	FlushInterval time.Duration

	// DataDir, when non-empty, makes the WAL real: a segmented on-disk log
	// under this directory (created if needed) replaces the in-memory
	// medium. The server recovers from it on start — committed work from
	// previous boots is replayed, losers are rolled back — and session and
	// transaction identifiers bake in the boot epoch so they never collide
	// across restarts.
	DataDir string

	// SegmentBytes is the on-disk WAL's segment rotation size (0 = the
	// wal package default). Only meaningful with DataDir.
	SegmentBytes int64

	// CheckpointEvery enables compacting checkpoints: once the log grows
	// this many records past the last checkpoint, the pipeline compacts at
	// the next quiescent flush boundary, bounding both recovery replay and
	// disk usage. 0 disables.
	CheckpointEvery int

	// DiskFaults injects deterministic disk faults (transient write/fsync
	// errors, short writes, ENOSPC, latency spikes) between the WAL and the
	// OS. Zero value injects nothing. Only meaningful with DataDir.
	DiskFaults fault.Plan

	// SpoolPath, when non-empty, appends every history event to a durable
	// JSONL spool (history.SpoolFormat) as it happens — the black-box
	// witness a kill -9 soak checks with mlacheck. Unlike Record, memory
	// use is O(1); unlike the recorder, the spool survives the process.
	SpoolPath string

	// Seed drives every synthesized workload choice deterministically.
	Seed int64

	// Record enables the history recorder (memory grows with the run;
	// meant for audited runs and tests, not unbounded production).
	Record bool

	// Telemetry, when non-nil, receives request spans and engine spans.
	Telemetry *telemetry.Telemetry
}

// DefaultConfig returns a small-but-real configuration: contended enough
// to exercise waits and wounds, bounded enough for CI.
func DefaultConfig() Config {
	return Config{
		Families:           8,
		AccountsPerFamily:  4,
		InitialBalance:     1000,
		Amount:             100,
		Reserve:            125,
		CrossFamilyPct:     50,
		Control:            "2pl-sharded",
		Shards:             16,
		MaxInflight:        64,
		QueueDepth:         128,
		AdmitWait:          20 * time.Millisecond,
		DefaultDeadline:    2 * time.Second,
		MaxDeadline:        30 * time.Second,
		SessionRetryBudget: 256,
		MaxRestarts:        32,
		FlushInterval:      200 * time.Microsecond,
		Seed:               1,
	}
}

// Server is the resident front-end. Create with New, serve its Handler,
// stop with Shutdown. All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	world   bank.World
	session *engine.Session
	control sched.Control
	medium  *wal.Medium
	db      *wal.DB
	pipe    *wal.Pipeline
	nest    *nest.Nest
	rec     *history.Recorder
	spool   *history.Spool
	epoch   int64 // boot count of DataDir; 0 when in-memory
	start   time.Time

	// transfers carries each in-flight transfer's parameters for the
	// breakpoint spec. Mutated only inside SubmitOpts.Prepare/Cleanup and
	// read only from Spec.CutAfter — all under the engine mutex, so no
	// lock of its own (the same discipline bank.Workload gets for free
	// from its fixed population).
	transfers map[model.TxnID]*bank.Transfer

	gates  map[string]*gate // admission queue per nest class (per home shard when partitioned)
	global *gate            // engine-wide in-flight cap
	homes  *shard.Router    // family→home-shard routing; nil unless HomeShards > 1

	mu       sync.Mutex
	state    int32 // accepting / draining / closed
	sessions map[string]*clientSession
	nextSess int64
	err      error // first fatal engine error

	shutOnce sync.Once
	shutErr  error

	txnSeq atomic.Int64 // transaction ID allocator (unique per lifetime)

	ewmaLatUs atomic.Int64 // commit latency EWMA, µs — drives Retry-After

	latMu  sync.Mutex
	lat    ring // commit latencies, µs
	waited ring // lock-wait time per committed txn, µs

	counters counters

	spanMu sync.Mutex
	spans  *telemetry.Local
	pid    int64
}

const (
	stAccepting int32 = iota
	stDraining
	stClosed
	// stDegraded is the read-only shedding mode a persistent durable-medium
	// failure puts the server in: writes are refused with 503 + Retry-After,
	// durability lookups and stats still answer, healthz reports the cause.
	stDegraded
)

// counters are the server-level outcome tallies /statz exposes; all
// atomics so the request path never takes the server mutex.
type counters struct {
	acked, deadline, canceled, gaveUp, shed, budget, rejected atomic.Int64
}

// clientSession is one client's handle: a stable identity, a pinned
// family (its nest class for transfers), the family's home shard when the
// store is partitioned, a deterministic parameter rng, and the remaining
// retry budget.
type clientSession struct {
	id     string
	family int
	home   int // family's home shard; 0 when HomeShards <= 1

	mu     sync.Mutex
	rng    *rand.Rand
	budget int
	txns   int
}

// ID returns the session's stable identity.
func (cs *clientSession) ID() string { return cs.id }

// Family returns the session's pinned family (its transfer nest class).
func (cs *clientSession) Family() int { return cs.family }

// Home returns the session's home shard (0 when the store is unpartitioned).
func (cs *clientSession) Home() int { return cs.home }

// New builds the world, opens the WAL, starts the group-commit pipeline
// and the resident engine session. The server is accepting immediately.
func New(cfg Config) (*Server, error) {
	if cfg.Families <= 0 || cfg.AccountsPerFamily <= 0 {
		return nil, fmt.Errorf("serve: need at least one family and account, got %d/%d", cfg.Families, cfg.AccountsPerFamily)
	}
	if cfg.MaxInflight <= 0 {
		return nil, fmt.Errorf("serve: MaxInflight must be positive, got %d", cfg.MaxInflight)
	}
	w := bank.World{
		Families:          cfg.Families,
		AccountsPerFamily: cfg.AccountsPerFamily,
		InitialBalance:    cfg.InitialBalance,
	}
	// The durable medium: a real on-disk segment log when DataDir is set
	// (recovery replays it before the first request is admitted), the
	// in-memory simulation otherwise.
	medium := wal.NewMedium()
	if cfg.DataDir != "" {
		var inj *fault.Injector
		if cfg.DiskFaults.DiskEnabled() {
			inj = fault.New(cfg.DiskFaults)
		}
		m, err := wal.OpenFile(cfg.DataDir, wal.FileOptions{SegmentBytes: cfg.SegmentBytes, Faults: inj})
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		medium = m
	}
	db, err := wal.Open(medium, w.Init())
	if err != nil {
		medium.Close()
		return nil, fmt.Errorf("serve: opening WAL: %w", err)
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 200 * time.Microsecond
	}
	pipe := wal.NewPipeline(db, cfg.FlushInterval)
	if cfg.CheckpointEvery > 0 {
		pipe.AutoCheckpoint(cfg.CheckpointEvery)
	}

	s := &Server{
		cfg:       cfg,
		world:     w,
		medium:    medium,
		db:        db,
		pipe:      pipe,
		epoch:     medium.Recovery().Epoch,
		nest:      nest.New(4),
		transfers: make(map[model.TxnID]*bank.Transfer),
		sessions:  make(map[string]*clientSession),
		start:     time.Now(),
		lat:       newRing(4096),
		waited:    newRing(4096),
	}
	s.control = controlByName(cfg.Control, cfg.Shards)
	if s.control == nil {
		pipe.Close()
		return nil, fmt.Errorf("serve: unknown control %q", cfg.Control)
	}

	// Admission: one bounded queue per nest class — "cust" admits the
	// level-2/3 interleavers (transfers and creditor audits), "audit" the
	// level-1 bank audits — plus the global in-flight cap underneath.
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = cfg.MaxInflight
	}
	s.gates = map[string]*gate{
		classAudit: newGate(classAudit, depth),
	}
	if cfg.HomeShards > 1 {
		s.homes = shard.NewRouter(cfg.HomeShards)
		for h := 0; h < cfg.HomeShards; h++ {
			name := custGateName(h)
			s.gates[name] = newGate(name, depth)
		}
	} else {
		s.gates[classCust] = newGate(classCust, depth)
	}
	s.global = newGate("inflight", cfg.MaxInflight)

	var obs []engine.Observer
	if cfg.Record {
		s.rec = history.NewRecorder(s.nest)
		obs = append(obs, s.rec)
	}
	if cfg.SpoolPath != "" {
		sp, err := history.OpenSpoolFile(cfg.SpoolPath, 4)
		if err != nil {
			pipe.Close()
			medium.Close()
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.spool = sp
		obs = append(obs, sp)
	}
	if cfg.Telemetry != nil {
		if o := engine.NewTelemetryObserver(cfg.Telemetry, "serve/"+s.control.Name()); o != nil {
			obs = append(obs, o)
		}
		s.spans = cfg.Telemetry.Trace.Local()
		s.pid = cfg.Telemetry.Trace.NextPID()
		cfg.Telemetry.Trace.NameProcess(s.pid, "serve/http")
		cfg.Telemetry.Trace.NameLane(s.pid, 0, "requests")
	}
	var observer engine.Observer
	if len(obs) == 1 {
		observer = obs[0]
	} else if len(obs) > 1 {
		observer = engine.Tee(obs...)
	}

	spec := breakpoint.Func{Levels: 4, Fn: s.cutAfter}
	s.session = engine.NewSession(engine.Config{
		Seed:        cfg.Seed,
		Observer:    observer,
		MaxRestarts: cfg.MaxRestarts,
	}, s.control, spec, engine.NewPipelinedWALStore(pipe))
	return s, nil
}

const (
	classCust  = "cust"
	classAudit = "audit"
)

// custGateName is the admission-queue name for one home shard's customer
// traffic ("cust@2"); /statz reports each as its own gate.
func custGateName(home int) string { return fmt.Sprintf("%s@%d", classCust, home) }

func controlByName(name string, shards int) sched.Control {
	switch name {
	case "", "2pl-sharded":
		return sched.NewShardedTwoPhase(shards)
	case "2pl":
		return sched.NewTwoPhase()
	case "tso":
		return sched.NewTimestamp()
	case "none":
		return sched.NewNone()
	}
	return nil
}

// cutAfter is the banking breakpoint description of Section 4.2 applied to
// an open population: transfers get a level-2 boundary after the withdrawal
// phase and level-3 boundaries elsewhere; audits get no interior boundary
// below the singleton level. Runs under the engine mutex (see transfers).
func (s *Server) cutAfter(t model.TxnID, prefix []model.Step) int {
	if tr, ok := s.transfers[t]; ok {
		last := prefix[len(prefix)-1]
		if last.Label == "withdraw" && tr.WithdrawDone(prefix) {
			return 2
		}
		return 3
	}
	return 4
}

// OpenSession registers a client session pinned to the given family (< 0
// picks one deterministically). It fails once draining.
func (s *Server) OpenSession(family int) (*clientSession, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case stAccepting:
	case stDegraded:
		return nil, fmt.Errorf("serve: read-only: %w", wal.ErrDegraded)
	default:
		return nil, ErrDraining
	}
	s.nextSess++
	// The boot epoch prefixes every session (and hence transaction) ID so
	// identifiers never collide across restarts of the same data directory
	// — the concatenated history spool depends on that uniqueness.
	id := fmt.Sprintf("s%06d", s.nextSess)
	if s.epoch > 0 {
		id = fmt.Sprintf("e%d-s%06d", s.epoch, s.nextSess)
	}
	if family < 0 || family >= s.cfg.Families {
		family = int(s.nextSess) % s.cfg.Families
	}
	cs := &clientSession{
		id:     id,
		family: family,
		rng:    rand.New(rand.NewSource(s.cfg.Seed ^ s.nextSess<<17)),
		budget: s.cfg.SessionRetryBudget,
	}
	if s.homes != nil {
		// Pin the session to its family's home shard: the anchor entity is
		// the family's first account, so every session of one family lands
		// on the same shard regardless of interning order.
		cs.home = s.homes.Shard(s.world.Account(family, 0))
	}
	s.sessions[id] = cs
	return cs, nil
}

// CloseSession forgets a client session; its in-flight transactions finish.
func (s *Server) CloseSession(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	return ok
}

func (s *Server) lookupSession(id string) *clientSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// ErrDraining rejects work arriving after Shutdown began.
var ErrDraining = errors.New("serve: draining")

// ErrOverload is the shed signal: admission timed out or the session's
// retry budget is spent. Carries no state — pair it with RetryAfter.
var ErrOverload = errors.New("serve: overloaded")

// ErrUnknownSession rejects a transaction naming a session that was never
// opened or was already closed.
var ErrUnknownSession = errors.New("serve: unknown session")

// TxnRequest describes one transaction submission.
type TxnRequest struct {
	Session  string
	Kind     string // "transfer", "audit", "credit"
	Deadline time.Duration
}

// TxnResult reports a resolved submission to the transport layer.
type TxnResult struct {
	Txn     model.TxnID
	Outcome engine.Outcome
}

// Submit synthesizes the requested transaction, admits it through the
// class and global gates, and runs it on the resident engine. The context
// is the client connection: its cancellation withdraws the transaction at
// the next breakpoint (unless the commit is already in flight — then it is
// seen through, because the record may be durable).
func (s *Server) Submit(ctx context.Context, req TxnRequest) (TxnResult, error) {
	cs := s.lookupSession(req.Session)
	if cs == nil {
		return TxnResult{}, fmt.Errorf("%w: %q", ErrUnknownSession, req.Session)
	}
	switch atomic.LoadInt32(&s.state) {
	case stAccepting:
	case stDegraded:
		// Read-only shedding mode: the durable medium is gone, so no new
		// write can ever be acknowledged honestly. Lookups still work.
		s.counters.rejected.Add(1)
		return TxnResult{}, fmt.Errorf("serve: read-only: %w", wal.ErrDegraded)
	default:
		s.counters.rejected.Add(1)
		return TxnResult{}, ErrDraining
	}

	// Per-session retry budget: a session that has burned its restart
	// allowance is shed before it can queue — its backlog of conflicts is
	// the strongest overload signal a single client can emit.
	cs.mu.Lock()
	budgetLeft := cs.budget
	cs.mu.Unlock()
	if budgetLeft <= 0 {
		s.counters.budget.Add(1)
		return TxnResult{}, fmt.Errorf("%w: session %s retry budget exhausted", ErrOverload, cs.id)
	}

	class := classCust
	if req.Kind == "audit" {
		class = classAudit
	} else if s.homes != nil {
		class = custGateName(cs.home)
	}
	g := s.gates[class]
	if !g.acquire(ctx, s.cfg.AdmitWait) {
		s.counters.shed.Add(1)
		return TxnResult{}, fmt.Errorf("%w: %s queue full", ErrOverload, class)
	}
	defer g.release()
	if !s.global.acquire(ctx, s.cfg.AdmitWait) {
		s.counters.shed.Add(1)
		return TxnResult{}, fmt.Errorf("%w: engine at capacity", ErrOverload)
	}
	defer s.global.release()

	p, path, tr, err := s.synthesize(cs, req.Kind)
	if err != nil {
		return TxnResult{}, err
	}
	id := p.ID()

	d := req.Deadline
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}

	maxRestarts := s.cfg.MaxRestarts
	if maxRestarts <= 0 || maxRestarts > budgetLeft {
		maxRestarts = budgetLeft
	}

	start := time.Now()
	var spanID telemetry.SpanID
	if s.spans != nil {
		s.spanMu.Lock()
		spanID = s.spans.Begin("serve", req.Kind, s.pid, 0, 0, "txn", string(id), "session", cs.id)
		s.spanMu.Unlock()
	}
	out, err := s.session.Submit(ctx, p, engine.SubmitOpts{
		Deadline:    start.Add(d),
		MaxRestarts: maxRestarts,
		Prepare: func() {
			// Under the engine mutex: the spec and the recorder see the
			// transaction's class before its first step.
			if tr != nil {
				s.transfers[id] = tr
			}
			if s.rec != nil {
				s.nest.Add(id, path...)
			}
			if s.spool != nil {
				s.spool.Declare(id, path)
			}
		},
		Cleanup: func() {
			delete(s.transfers, id)
			// The nest entry stays: the recorded history still refers to
			// this transaction, and the checker needs its class path.
		},
	})
	if s.spans != nil {
		s.spanMu.Lock()
		s.spans.Arg(spanID, "outcome", outcomeLabel(out, err))
		s.spans.End(spanID)
		s.spanMu.Unlock()
	}
	if err != nil {
		// Admission raced the drain: the engine refused what the state
		// check upstairs had let through. Same 503 as the state check.
		if errors.Is(err, engine.ErrDraining) {
			s.counters.rejected.Add(1)
			return TxnResult{}, ErrDraining
		}
		if errors.Is(err, engine.ErrSessionClosed) {
			// A real engine death while accepting turns healthz red; the
			// same error during a deliberate drain is just the shutdown
			// abandoning stragglers.
			if atomic.LoadInt32(&s.state) == stAccepting {
				s.noteFailure(err)
			}
		}
		return TxnResult{}, err
	}

	cs.mu.Lock()
	cs.budget -= out.Restarts
	cs.txns++
	cs.mu.Unlock()

	switch {
	case out.Committed:
		s.counters.acked.Add(1)
		us := out.Latency.Microseconds()
		s.observeLatency(us, out.Waited.Microseconds())
	case out.DeadlineExceeded:
		s.counters.deadline.Add(1)
	case out.Canceled:
		s.counters.canceled.Add(1)
	case out.GaveUp:
		s.counters.gaveUp.Add(1)
	}
	return TxnResult{Txn: id, Outcome: out}, nil
}

func outcomeLabel(out engine.Outcome, err error) string {
	switch {
	case err != nil:
		return "error"
	case out.Committed:
		return "committed"
	case out.DeadlineExceeded:
		return "deadline"
	case out.Canceled:
		return "canceled"
	case out.GaveUp:
		return "gave-up"
	}
	return "unknown"
}

func (s *Server) observeLatency(latUs, waitedUs int64) {
	// EWMA with α = 1/8, the classic RTT estimator: smooth enough to damp
	// one slow commit, fresh enough to track a saturating scheduler.
	for {
		old := s.ewmaLatUs.Load()
		next := old - old/8 + latUs/8
		if old == 0 {
			next = latUs
		}
		if s.ewmaLatUs.CompareAndSwap(old, next) {
			break
		}
	}
	s.latMu.Lock()
	s.lat.add(latUs)
	s.waited.add(waitedUs)
	s.latMu.Unlock()
	if s.cfg.Telemetry != nil {
		s.cfg.Telemetry.Metrics.Histogram("serve.commit_latency_us").Observe(latUs)
		s.cfg.Telemetry.Metrics.Histogram("serve.lock_wait_us").Observe(waitedUs)
	}
}

// RetryAfter is the backoff hint attached to 429/503: the commit-latency
// EWMA scaled by queue pressure — an idle server hints the floor, a
// saturated one stretches toward the ceiling. Clamped to [50ms, 5s].
func (s *Server) RetryAfter() time.Duration {
	base := time.Duration(s.ewmaLatUs.Load()) * time.Microsecond
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	queued, depth := int64(0), int64(0)
	for _, g := range s.gates {
		queued += g.queued.Load()
		depth += int64(g.depth)
	}
	queued += s.global.queued.Load()
	depth += int64(s.global.depth)
	d := base
	if depth > 0 {
		d = base * time.Duration(1+4*queued/depth)
	}
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// synthesize builds the program for one request from the session's
// deterministic rng, mirroring bank.Generate's shapes for an open
// population. Returns the program, its nest class path, and (for
// transfers) the parameters the breakpoint spec needs.
func (s *Server) synthesize(cs *clientSession, kind string) (model.Program, []string, *bank.Transfer, error) {
	n := s.txnSeq.Add(1)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	rng := cs.rng
	switch kind {
	case "", "transfer":
		id := model.TxnID(fmt.Sprintf("xfer-%s-%07d", cs.id, n))
		f := cs.family
		nsrc := 3
		if nsrc > s.cfg.AccountsPerFamily {
			nsrc = s.cfg.AccountsPerFamily
		}
		var sources []model.EntityID
		for _, ai := range rng.Perm(s.cfg.AccountsPerFamily)[:nsrc] {
			sources = append(sources, s.world.Account(f, ai))
		}
		tf := f
		if s.cfg.Families > 1 && rng.Intn(100) < s.cfg.CrossFamilyPct {
			for tf == f {
				tf = rng.Intn(s.cfg.Families)
			}
		}
		var targets [2]model.EntityID
		picked := 0
		for _, ai := range rng.Perm(s.cfg.AccountsPerFamily) {
			cand := s.world.Account(tf, ai)
			dup := false
			for _, src := range sources {
				if src == cand {
					dup = true
					break
				}
			}
			if !dup {
				targets[picked] = cand
				picked++
				if picked == 2 {
					break
				}
			}
		}
		for picked < 2 {
			targets[picked] = s.world.Account(tf, rng.Intn(s.cfg.AccountsPerFamily))
			picked++
		}
		tr := &bank.Transfer{
			Txn: id, Family: f, Sources: sources, Targets: targets,
			Amount: s.cfg.Amount, Reserve: s.cfg.Reserve,
		}
		return tr, []string{"cust", fmt.Sprintf("fam-%02d", f)}, tr, nil
	case "audit":
		id := model.TxnID(fmt.Sprintf("audit-%s-%07d", cs.id, n))
		a := &bank.Audit{Txn: id, Accounts: s.world.Accounts(), Result: model.EntityID("auditres/" + string(id))}
		return a, []string{"audit/" + string(id), "audit/" + string(id)}, nil, nil
	case "credit":
		id := model.TxnID(fmt.Sprintf("cred-%s-%07d", cs.id, n))
		a := &bank.Audit{Txn: id, Accounts: s.world.FamilyAccounts(cs.family), Result: model.EntityID("credres/" + string(id))}
		return a, []string{"cust", "cred/" + string(id)}, nil, nil
	}
	return nil, nil, nil, fmt.Errorf("serve: unknown transaction kind %q", kind)
}

func (s *Server) noteFailure(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	if errors.Is(err, wal.ErrDegraded) {
		// The engine died because the DISK died. The in-memory state and
		// the committed prefix are intact, so shed writes and keep serving
		// reads instead of going dark.
		atomic.CompareAndSwapInt32(&s.state, stAccepting, stDegraded)
		return
	}
	atomic.CompareAndSwapInt32(&s.state, stAccepting, stClosed)
}

// Degraded reports whether the server is in read-only shedding mode.
func (s *Server) Degraded() bool { return atomic.LoadInt32(&s.state) == stDegraded }

// Err reports the first fatal engine error, if any (healthz turns red).
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Accepting reports whether new work is admitted (readyz).
func (s *Server) Accepting() bool { return atomic.LoadInt32(&s.state) == stAccepting }

// Shutdown is the graceful drain: stop admitting, let in-flight
// transactions reach their breakpoints and resolve, stop the engine, flush
// and close the WAL pipeline, compact the log at the final quiescent
// instant, and release the durable medium and the history spool. Every
// committed acknowledgment issued before Shutdown returns is durable on
// the WAL afterwards, and a clean shutdown leaves the log one checkpoint
// long — the next boot's recovery replays (almost) nothing. Idempotent;
// the context bounds only the waiting (a timed-out drain still closes).
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		atomic.CompareAndSwapInt32(&s.state, stAccepting, stDraining)
		derr := s.session.Drain(ctx)
		cerr := s.session.Close()
		s.pipe.Close()
		// The engine is stopped and the pipeline's flusher joined: the DB
		// is single-threaded again. Seal the log with a compacting
		// checkpoint when the drain actually quiesced (a failed engine or
		// an abandoned straggler leaves live records — then the WAL keeps
		// its full tail and recovery does the rolling back).
		if s.pipe.Err() == nil && s.db.Live() == 0 {
			if err := s.db.CheckpointCompact(); err != nil && s.shutErr == nil {
				s.shutErr = err
			}
		}
		if err := s.medium.Close(); err != nil && s.shutErr == nil {
			s.shutErr = err
		}
		if s.spool != nil {
			s.spool.Close()
		}
		atomic.StoreInt32(&s.state, stClosed)
		if derr != nil {
			s.shutErr = derr
		} else if cerr != nil {
			s.shutErr = cerr
		}
	})
	return s.shutErr
}

// History snapshots the recorded history, or nil when recording is off.
// Meaningful after Shutdown (a mid-run snapshot is consistent but racy
// with respect to in-flight commits).
func (s *Server) History() *history.History {
	if s.rec == nil {
		return nil
	}
	return s.rec.History()
}

// Durable reports whether the transaction's commit record reached the WAL
// — the selftest's ground truth for acknowledged commits, and (through
// GET /v1/txns/{id}) the soak's restart re-verification oracle: after a
// kill -9 the committed set is rebuilt from the on-disk log, checkpoint
// Done-lists included, so every commit acked by ANY previous boot answers
// true here.
func (s *Server) Durable(id model.TxnID) bool { return s.pipe.Committed(id) }

// RecoveryInfo reports what this boot's WAL load found (zero value for an
// in-memory server): the epoch, the records replayed, the replay distance
// from the last checkpoint, and any torn bytes truncated.
func (s *Server) RecoveryInfo() wal.RecoveryInfo { return s.medium.Recovery() }

// SpoolErr reports the history spool's latched write failure, nil while
// healthy (or when no spool is configured).
func (s *Server) SpoolErr() error {
	if s.spool == nil {
		return nil
	}
	return s.spool.Err()
}

// Stats is the /statz payload: engine, scheduler, lock table, admission,
// and latency state in one JSON-serializable snapshot.
type Stats struct {
	Uptime       string               `json:"uptime"`
	State        string               `json:"state"`
	Sessions     int                  `json:"sessions"`
	Engine       engine.SessionStats  `json:"engine"`
	Sched        sched.Stats          `json:"sched"`
	Locks        *lockStats           `json:"locks,omitempty"`
	Gates        map[string]GateStats `json:"gates"`
	Acked        int64                `json:"acked"`
	Deadline     int64                `json:"deadline_exceeded"`
	Canceled     int64                `json:"canceled"`
	GaveUp       int64                `json:"gave_up"`
	Shed         int64                `json:"shed"`
	BudgetDenied int64                `json:"budget_denied"`
	Rejected     int64                `json:"rejected_draining"`
	Latency      metrics.Summary      `json:"latency_us"`
	LockWait     metrics.Summary      `json:"lock_wait_us"`
	RetryAfterMS int64                `json:"retry_after_ms"`

	// WAL is the group-commit pipeline's counters (flushes, batch sizes,
	// compacting checkpoints, degraded flag).
	WAL wal.PipelineStats `json:"wal"`
	// SinceCheckpoint is the current recovery replay bound: records a
	// restart right now would redo.
	SinceCheckpoint int `json:"wal_since_checkpoint"`
	// Recovery reports what this boot's WAL load found; nil for in-memory
	// servers.
	Recovery *wal.RecoveryInfo `json:"recovery,omitempty"`
}

type lockStats struct {
	Locked  int `json:"locked"`
	Holders int `json:"holders"`
	Shards  int `json:"shards"`
}

// GateStats snapshots one admission gate.
type GateStats struct {
	Depth    int   `json:"depth"`
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	nSess := len(s.sessions)
	s.mu.Unlock()
	st := Stats{
		Uptime:       time.Since(s.start).Round(time.Millisecond).String(),
		State:        [...]string{"accepting", "draining", "closed", "degraded"}[atomic.LoadInt32(&s.state)],
		Sessions:     nSess,
		Engine:       s.session.Stats(),
		Sched:        *s.control.Stats(),
		Gates:        make(map[string]GateStats, len(s.gates)+1),
		Acked:        s.counters.acked.Load(),
		Deadline:     s.counters.deadline.Load(),
		Canceled:     s.counters.canceled.Load(),
		GaveUp:       s.counters.gaveUp.Load(),
		Shed:         s.counters.shed.Load(),
		BudgetDenied: s.counters.budget.Load(),
		Rejected:     s.counters.rejected.Load(),
		RetryAfterMS: s.RetryAfter().Milliseconds(),
	}
	if lp, ok := s.control.(interface{ LockSnapshot() lock.Stats }); ok {
		ls := lp.LockSnapshot()
		st.Locks = &lockStats{Locked: ls.Locked, Holders: ls.Holders, Shards: ls.Shards}
	}
	for name, g := range s.gates {
		st.Gates[name] = g.snapshot()
	}
	st.Gates["inflight"] = s.global.snapshot()
	s.latMu.Lock()
	st.Latency = metrics.Summarize(s.lat.samples())
	st.LockWait = metrics.Summarize(s.waited.samples())
	s.latMu.Unlock()
	st.WAL = s.pipe.Snapshot()
	st.SinceCheckpoint = s.pipe.RecordsSinceCheckpoint()
	if info := s.medium.Recovery(); info.Epoch > 0 {
		st.Recovery = &info
	}
	return st
}

// gate is one bounded admission stage: a counting semaphore whose waiters
// give up after the configured admission wait — that bounded wait IS the
// queue (depth beyond the semaphore is the set of parked requesters, which
// HTTP already caps by its connection limits).
type gate struct {
	name  string
	depth int
	slots chan struct{}

	queued   atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

func newGate(name string, depth int) *gate {
	return &gate{name: name, depth: depth, slots: make(chan struct{}, depth)}
}

// acquire takes a slot, waiting at most wait; false means shed.
func (g *gate) acquire(ctx context.Context, wait time.Duration) bool {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	default:
	}
	g.queued.Add(1)
	defer g.queued.Add(-1)
	tm := time.NewTimer(wait)
	defer tm.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	case <-tm.C:
	case <-ctx.Done():
	}
	g.shed.Add(1)
	return false
}

func (g *gate) release() { <-g.slots }

func (g *gate) snapshot() GateStats {
	return GateStats{
		Depth:    g.depth,
		Inflight: int64(len(g.slots)),
		Queued:   g.queued.Load(),
		Admitted: g.admitted.Load(),
		Shed:     g.shed.Load(),
	}
}

// ring is a bounded sample buffer: the last cap samples win.
type ring struct {
	buf  []int64
	next int
	full bool
}

func newRing(n int) ring { return ring{buf: make([]int64, n)} }

func (r *ring) add(v int64) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *ring) samples() []int64 {
	if r.full {
		return append([]int64(nil), r.buf...)
	}
	return append([]int64(nil), r.buf[:r.next]...)
}
