package serve

import (
	"net/http"
	"sync/atomic"
)

// Gate is the recovery-readiness front door: an http.Handler that answers
// for the server while it is still replaying its WAL. Until Set is called,
// /healthz reports 200 (the process is alive and making progress) but every
// other path — /readyz included — returns 503 "recovering", so a load
// balancer keeps traffic away until recovery completes. Set installs the
// real handler atomically; requests racing the swap see one side or the
// other, never a partial server.
//
// cmd/mlaserve binds its listener and serves a Gate BEFORE calling New, so
// the recovery window (which grows with log length) is observable from
// outside rather than a connection-refused blackout.
type Gate struct {
	h atomic.Pointer[http.Handler]
}

// Set installs the real handler. Call once, after recovery completes.
func (g *Gate) Set(h http.Handler) {
	g.h.Store(&h)
}

// ServeHTTP dispatches to the installed handler, or answers the recovery
// stub while none is installed.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" {
		w.Write([]byte("ok\n"))
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:        "recovering",
		Detail:       "replaying write-ahead log; not ready",
		RetryAfterMS: 1000,
	})
}
