package bench

import (
	"fmt"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/metrics"
	"mla/internal/sim"
)

// E12Sessions measures the paper's core motivation (Section 1): "the
// logical unit should be as large as possible … the unit of atomicity
// should be as small as possible". Customer sessions perform L transfers
// each (total transfer count held constant); under serializability the
// whole session is one atomic unit, so 2PL's concurrency collapses as L
// grows, while the MLA controls — for which a session exposes a class-wide
// breakpoint after every transfer — are insensitive to L. Bank audits sit
// in the customers' level-2 class and so interleave at those breakpoints
// only, where no money is in transit: exactness is asserted at every L.
func E12Sessions(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E12: session length vs transfer throughput (8 concurrent sessions)",
		"session-len", "control", "xfers/1000u", "p99-lat", "aborts", "audits-exact", "vs-2pl")
	sc := o.scale()
	seeds := 3 * sc
	for _, length := range []int{1, 2, 4, 8} {
		base := 0.0
		for _, name := range []string{"2pl", "prevent", "detect", "prevent+pr", "detect+pr"} {
			var th float64
			var p99 int64
			aborts, exact, inexact := 0, 0, 0
			for s := 0; s < seeds; s++ {
				p := bank.DefaultSessionParams()
				p.SessionLength = length
				p.Sessions = 8
				p.Seed = o.Seed + int64(s)*29
				wl := bank.GenerateSessions(p)
				ctrlName := name
				partial := false
				if cut := len(name) - len("+pr"); cut > 0 && name[cut:] == "+pr" {
					ctrlName, partial = name[:cut], true
				}
				c := controlByName(ctrlName, wl.Nest, wl.Spec)
				cfg := simDefault()
				cfg.PartialRecovery = partial
				res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
				if err != nil {
					return nil, err
				}
				inv := wl.Check(res.Exec, res.Final)
				if !inv.ConservationOK || inv.TraceValid != nil {
					return nil, fmt.Errorf("E12: %s violated invariants at L=%d", name, length)
				}
				if inv.AuditsInexact > 0 {
					return nil, fmt.Errorf("E12: %s produced %d inexact audits at L=%d", name, inv.AuditsInexact, length)
				}
				ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("E12: %s admitted a non-correctable execution at L=%d", name, length)
				}
				// Transfer-level throughput: sessions carry L transfers each.
				th += float64(p.Sessions*length) * 1000 / float64(res.Time)
				if v := res.LatencyPercentile(99); v > p99 {
					p99 = v
				}
				aborts += res.Stats.Aborts
				exact += inv.AuditsExact
				inexact += inv.AuditsInexact
			}
			th /= float64(seeds)
			if name == "2pl" {
				base = th
			}
			ratio := "-"
			if name != "2pl" && base > 0 {
				ratio = metrics.Ratio(th, base)
			}
			t.Row(length, name, th, p99, aborts/seeds,
				fmt.Sprintf("%d/%d", exact, exact+inexact), ratio)
		}
	}
	return t, nil
}
