// Package bench is the experiment harness: one runner per experiment in
// EXPERIMENTS.md (E1–E22), each regenerating the corresponding table. The
// paper (PODS 1982) is theory-only, so the experiments reproduce its formal
// claims and worked examples, and run the evaluation its Section 6 and
// Section 7 call for. cmd/mlabench prints the tables; the root-level
// bench_test.go wraps each runner in a testing.B benchmark.
package bench

import (
	"context"
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID    string
	Claim string
	Run   func(Options) (*metrics.Table, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "k=2 multilevel atomicity coincides with serializability (Sec 4.3)", E1Equivalence},
		{"E2", "the paper's worked examples behave as stated (Sec 4.2, 4.3, 5)", E2PaperExamples},
		{"E3", "every coherent partial order extends to a coherent total order (Lemma 1)", E3Extension},
		{"E4", "MLA rejects fewer interleavings than serializability (Sec 6)", E4CycleRate},
		{"E5", "MLA scheduling beats serializable baselines on the banking workload (Sec 1, 6)", E5Throughput},
		{"E6", "audits stay exact while transfers keep interleaving (Sec 2, [FGL])", E6Audit},
		{"E7", "nest depth buys concurrency on the CAD workload (Sec 2, 4.2)", E7NestDepth},
		{"E8", "multilevel atomic executions admit nested action trees (Sec 7)", E8ActionTrees},
		{"E9", "Theorem 2 checker cost scaling", E9CheckerScaling},
		{"E10", "ablations: closure-grade predecessor tracking is necessary", E10Ablations},
		{"E11", "commit chaining and the unit of recovery (Sec 1, 6)", E11Recovery},
		{"E12", "long sessions: large logical units, small atomicity units (Sec 1)", E12Sessions},
		{"E13", "distributed prevention under announcement staleness (Sec 6, [RSL])", E13Distributed},
		{"E14", "crash recovery on the WAL-backed store (unit of recovery, Sec 1)", E14CrashRecovery},
		{"E15", "conversations: applications serializability cannot express (Sec 7, [Ra])", E15Conversations},
		{"E16", "hot-spot contention: MLA degrades gently where 2PL serializes", E16HotSpot},
		{"E17", "engine crash tolerance under deterministic fault injection", E17EngineCrash},
		{"E18", "distributed prevention under partitions, loss, and processor crashes", E18Chaos},
		{"E19", "striped locks + group commit scale the engine's hot path (-perf)", E19Perf},
		{"E20", "black-box history checker agrees with the scheduler on mixed-level runs", E20MixedHistory},
		{"E21", "resident front-end keeps the serving contract under drain and overload", E21Serve},
		{"E22", "acked commits survive SIGKILL crash-restarts with disk faults (real process)", E22CrashSoak},
	}
}

// controlByName builds a fresh control for a simulation run.
func controlByName(name string, n *nest.Nest, spec breakpoint.Spec) sched.Control {
	switch name {
	case "serial":
		return sched.NewSerial()
	case "2pl":
		return sched.NewTwoPhase()
	case "tso":
		return sched.NewTimestamp()
	case "prevent":
		return sched.NewPreventer(n, spec)
	case "prevent-direct":
		p := sched.NewPreventer(n, spec)
		p.TrackTransitive = false
		return p
	case "detect":
		return sched.NewDetector(n, spec)
	case "none":
		return sched.NewNone()
	}
	panic("bench: unknown control " + name)
}

// runSim executes one simulation with the default configuration.
func runSim(ctx context.Context, programs []model.Program, control sched.Control, spec breakpoint.Spec, init map[model.EntityID]model.Value) (*sim.Result, error) {
	cfg := sim.DefaultConfig()
	res, err := sim.RunContext(ctx, cfg, programs, control, spec, init)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", control.Name(), err)
	}
	return res, nil
}

// simDefault and simRun expose the simulator to experiment files without
// re-importing it everywhere.
func simDefault() sim.Config { return sim.DefaultConfig() }

func simRun(ctx context.Context, cfg sim.Config, programs []model.Program, control sched.Control, spec breakpoint.Spec) (*sim.Result, error) {
	return sim.RunContext(ctx, cfg, programs, control, spec, map[model.EntityID]model.Value{})
}

func copyInit(init map[model.EntityID]model.Value) map[model.EntityID]model.Value {
	out := make(map[model.EntityID]model.Value, len(init))
	for k, v := range init {
		out[k] = v
	}
	return out
}
