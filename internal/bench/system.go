package bench

import (
	"context"
	"fmt"
	"time"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/cad"
	"mla/internal/coherent"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/nested"
)

// bankWorkload builds a banking workload with the given shape.
func bankWorkload(families, accounts, transfers, audits int, seed int64) *bank.Workload {
	p := bank.DefaultParams()
	p.Families = families
	p.AccountsPerFamily = accounts
	p.Transfers = transfers
	p.BankAudits = audits
	p.CreditorAudits = 2
	p.Seed = seed
	return bank.Generate(p)
}

// E5Throughput runs the banking workload under every control across a
// contention sweep. The paper's thesis predicts the MLA controls commit
// more per unit time than the serializable baselines, with the gap growing
// as contention rises.
func E5Throughput(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E5: banking throughput by control (committed txns / 1000 time units)",
		"families", "transfers", "control", "throughput", "p50-lat", "p99-lat", "waits", "aborts", "vs-2pl")
	sc := o.scale()
	for _, cfg := range []struct{ fams, xfers int }{
		{4, 12 * sc}, {2, 16 * sc}, {1, 16 * sc},
	} {
		base := 0.0
		for _, name := range []string{"serial", "2pl", "tso", "prevent", "detect"} {
			wl := bankWorkload(cfg.fams, 4, cfg.xfers, 1, o.Seed)
			c := controlByName(name, wl.Nest, wl.Spec)
			res, err := runSim(o.ctx(), wl.Programs, c, wl.Spec, wl.Init)
			if err != nil {
				return nil, err
			}
			inv := wl.Check(res.Exec, res.Final)
			if !inv.ConservationOK || inv.TraceValid != nil {
				return nil, fmt.Errorf("E5: %s violated banking invariants", name)
			}
			th := res.Throughput()
			if name == "2pl" {
				base = th
			}
			ratio := "-"
			if base > 0 && name != "2pl" {
				ratio = metrics.Ratio(th, base)
			}
			t.Row(cfg.fams, cfg.xfers, name, th,
				res.LatencyPercentile(50), res.LatencyPercentile(99),
				res.Control.Waits, res.Stats.Aborts, ratio)
		}
	}
	return t, nil
}

// E6Audit sweeps the audit share of the banking mix, checking that audits
// stay exact under the MLA controls while transfer latency stays near the
// audit-free baseline — the [FGL] property the paper cites.
func E6Audit(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E6: audits vs transfer latency",
		"audits", "control", "audits-exact", "audits-inexact", "xfer-p50", "throughput")
	sc := o.scale()
	for _, audits := range []int{0, 1, 2, 4} {
		for _, name := range []string{"prevent", "2pl", "none"} {
			wl := bankWorkload(3, 4, 12*sc, audits, o.Seed)
			c := controlByName(name, wl.Nest, wl.Spec)
			res, err := runSim(o.ctx(), wl.Programs, c, wl.Spec, wl.Init)
			if err != nil {
				return nil, err
			}
			inv := wl.Check(res.Exec, res.Final)
			if name != "none" && inv.AuditsInexact > 0 {
				return nil, fmt.Errorf("E6: %s produced %d inexact audits", name, inv.AuditsInexact)
			}
			t.Row(audits, name, inv.AuditsExact, inv.AuditsInexact,
				res.LatencyPercentile(50), res.Throughput())
		}
	}
	return t, nil
}

// E7NestDepth runs the CAD workload at nest depths 2..5 under the
// Preventer, averaging over several seeds: deeper nests expose more
// breakpoints to more transactions, cutting blocking (waits fall
// monotonically) and raising throughput (k=2 is serializability, k=5 the
// full specialty/team hierarchy).
func E7NestDepth(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E7: CAD throughput by nest depth (Preventer, mean over seeds)",
		"k", "throughput", "waits", "aborts", "snapshots-clean", "vs-k2")
	seeds := 5 * o.scale()
	base := 0.0
	for k := 2; k <= 5; k++ {
		var th float64
		waits, aborts, clean := 0, 0, 0
		for s := 0; s < seeds; s++ {
			p := cad.DefaultParams()
			p.Mods = 12
			p.Seed = o.Seed + int64(s)*101
			wl := cad.Generate(p)
			n, spec := wl.WithDepth(k)
			c := controlByName("prevent", n, spec)
			res, err := runSim(o.ctx(), wl.Programs, c, spec, wl.Init)
			if err != nil {
				return nil, err
			}
			inv := wl.Check(res.Exec, res.Final)
			if !inv.TotalsConsistent || inv.TraceValid != nil {
				return nil, fmt.Errorf("E7: k=%d violated CAD invariants", k)
			}
			if inv.SnapshotsDirty > 0 {
				return nil, fmt.Errorf("E7: k=%d produced %d dirty snapshots", k, inv.SnapshotsDirty)
			}
			th += res.Throughput()
			waits += res.Control.Waits
			aborts += res.Stats.Aborts
			clean += inv.SnapshotsClean
		}
		th /= float64(seeds)
		if k == 2 {
			base = th
		}
		ratio := "-"
		if k > 2 {
			ratio = metrics.Ratio(th, base)
		}
		t.Row(k, th, waits/seeds, aborts/seeds, clean, ratio)
	}
	return t, nil
}

// E8ActionTrees converts multilevel atomic executions into Section 7 nested
// action trees and verifies the structural properties.
func E8ActionTrees(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E8: nested action trees from MLA executions",
		"workload", "steps", "atomic", "nodes", "leaves", "depth", "fanout", "verified")
	// CAD at depth 5 under the Preventer, then witnessed to an atomic
	// execution via Theorem 2 / Lemma 1.
	p := cad.DefaultParams()
	p.Mods = 8 * o.scale()
	p.Seed = o.Seed
	wl := cad.Generate(p)
	c := controlByName("prevent", wl.Nest, wl.Spec)
	res, err := runSim(o.ctx(), wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		return nil, err
	}
	chk, err := coherent.CheckExecution(res.Exec, wl.Nest, wl.Spec)
	if err != nil {
		return nil, err
	}
	w, ok := chk.Witness()
	if !ok {
		return nil, fmt.Errorf("E8: preventer execution not correctable")
	}
	tree, err := nested.Build(w, wl.Nest, wl.Spec)
	if err != nil {
		return nil, fmt.Errorf("E8: action tree rejected: %w", err)
	}
	st := tree.Stats()
	t.Row("cad/k=5", len(w), chk.Correctable, st.Nodes, st.Leaves, st.MaxDepth, st.MaxFanout, true)

	// Banking, same pipeline.
	bwl := bankWorkload(3, 4, 8*o.scale(), 1, o.Seed)
	bc := controlByName("prevent", bwl.Nest, bwl.Spec)
	bres, err := runSim(o.ctx(), bwl.Programs, bc, bwl.Spec, bwl.Init)
	if err != nil {
		return nil, err
	}
	bchk, err := coherent.CheckExecution(bres.Exec, bwl.Nest, bwl.Spec)
	if err != nil {
		return nil, err
	}
	bw, ok := bchk.Witness()
	if !ok {
		return nil, fmt.Errorf("E8: banking execution not correctable")
	}
	btree, err := nested.Build(bw, bwl.Nest, bwl.Spec)
	if err != nil {
		return nil, fmt.Errorf("E8: banking action tree rejected: %w", err)
	}
	bst := btree.Stats()
	t.Row("bank/k=4", len(bw), bchk.Correctable, bst.Nodes, bst.Leaves, bst.MaxDepth, bst.MaxFanout, true)
	return t, nil
}

// E9CheckerScaling measures the cost of the Theorem 2 test (coherent
// closure + cycle check) as the execution grows.
func E9CheckerScaling(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E9: Theorem 2 checker scaling",
		"steps", "k", "pairs", "ms/check", "correctable")
	rng := o.rng()
	for _, cfg := range []struct{ txns, steps, k int }{
		{4, 8, 2}, {8, 8, 3}, {8, 16, 4}, {16, 16, 4}, {16, 32, 4},
	} {
		n := nest.New(cfg.k)
		progs := make([]model.Program, cfg.txns)
		for i := range progs {
			ops := make([]model.Op, cfg.steps)
			for j := range ops {
				ops[j] = model.Add(model.EntityID(fmt.Sprintf("x%d", rng.Intn(cfg.txns))), 1)
			}
			id := model.TxnID(fmt.Sprintf("t%03d", i))
			progs[i] = &model.Scripted{Txn: id, Ops: ops}
			mid := make([]string, cfg.k-2)
			for l := range mid {
				mid[l] = fmt.Sprintf("c%d", i%(l+2))
			}
			n.Add(id, mid...)
		}
		spec := breakpoint.Uniform{Levels: cfg.k, C: 2}
		e, err := model.RandomInterleave(progs, map[model.EntityID]model.Value{}, rng)
		if err != nil {
			return nil, err
		}
		reps := 3 * o.scale()
		var pairs int
		var ok bool
		start := time.Now()
		for r := 0; r < reps; r++ {
			res, err := coherent.CheckExecution(e, n, spec)
			if err != nil {
				return nil, err
			}
			pairs = res.Rel.Pairs()
			ok = res.Correctable
		}
		ms := float64(time.Since(start).Microseconds()) / 1000 / float64(reps)
		t.Row(cfg.txns*cfg.steps, cfg.k, pairs, ms, ok)
	}
	return t, nil
}

// E10Ablations compares the sound Preventer (delay rule over the previewed
// coherent closure) with its direct-only ablation (per-entity last
// accessors, no transitive tracking — the naive nested-transaction
// specialization of Section 7) on two inputs: the banking workload, and a
// targeted three-transaction dependency chain where transitivity is
// load-bearing — t1 touches x, t2 relays x→y and finishes, t3 picks up y
// and then races t1 on w. The coherent closure forces all of t1 before t3
// (they relate only at level 1), so t3 touching w before t1 cycles; only
// closure-grade tracking sees this coming.
func E10Ablations(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E10: prevention, closure-based vs direct-only (naive nested specialization)",
		"control", "workload", "runs", "correctable", "unsound", "throughput(mean)")
	sc := o.scale()
	runs := 6 * sc
	for _, name := range []string{"prevent", "prevent-direct"} {
		correctable, unsound := 0, 0
		var thSum float64
		for r := 0; r < runs; r++ {
			wl := bankWorkload(2, 3, 10, 1, o.Seed+int64(r)*17)
			c := controlByName(name, wl.Nest, wl.Spec)
			res, err := runSim(o.ctx(), wl.Programs, c, wl.Spec, wl.Init)
			if err != nil {
				return nil, err
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				return nil, err
			}
			if ok {
				correctable++
			} else {
				unsound++
			}
			thSum += res.Throughput()
		}
		if name == "prevent" && unsound > 0 {
			return nil, fmt.Errorf("E10: sound preventer admitted %d non-correctable executions", unsound)
		}
		t.Row(name, "banking", runs, correctable, unsound, thSum/float64(runs))

		// Targeted chain.
		ok, err := chainScenarioCorrectable(o.ctx(), name)
		if err != nil {
			return nil, err
		}
		unsoundChain := 0
		if !ok {
			unsoundChain = 1
		}
		if name == "prevent" && unsoundChain > 0 {
			return nil, fmt.Errorf("E10: sound preventer admitted the chain counterexample")
		}
		t.Row(name, "chain", 1, boolToInt(ok), unsoundChain, "-")
	}
	return t, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// chainScenarioCorrectable runs the targeted three-transaction chain under
// the named control and reports whether the admitted execution is
// correctable.
func chainScenarioCorrectable(ctx context.Context, name string) (bool, error) {
	// t1: x, then private work, then w. t2: x, y (fast, finishes early).
	// t3: private warm-up, then y, then w. level(t1,t2)=2 with per-step
	// level-2 breakpoints, so t2 overtakes t1 mid-flight; t3 relates to
	// both only at level 1. The fillers time t3's y after t2's and t3's w
	// before t1's, materializing the t1→t2→t3→t1 closure cycle unless the
	// scheduler tracks t3's transitive dependency on t1.
	t1 := &model.Scripted{Txn: "t1", Ops: []model.Op{
		model.Add("x", 1), model.Add("p1", 1), model.Add("p2", 1),
		model.Add("p3", 1), model.Add("p4", 1), model.Add("w", 1),
	}}
	t2 := &model.Scripted{Txn: "t2", Ops: []model.Op{model.Add("x", 1), model.Add("y", 1)}}
	t3 := &model.Scripted{Txn: "t3", Ops: []model.Op{
		model.Add("q1", 1), model.Add("q2", 1), model.Add("q3", 1),
		model.Add("y", 1), model.Add("w", 1),
	}}
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	n.Add("t3", "solo")
	spec := breakpoint.Uniform{Levels: 3, C: 2}
	c := controlByName(name, n, spec)
	cfg := simDefault()
	res, err := simRun(ctx, cfg, []model.Program{t1, t2, t3}, c, spec)
	if err != nil {
		return false, err
	}
	return coherent.Correctable(res.Exec, n, spec)
}
