package bench

import (
	"fmt"

	"mla/internal/coherent"
	"mla/internal/engine"
	"mla/internal/fault"
	"mla/internal/metrics"
	"mla/internal/sched"
)

// E17EngineCrash runs the banking workload on the concurrent engine with
// the deterministic fault-injection layer: crashes at configured WAL-append
// counts (each tearing records off the durable tail) crossed with transient
// step-error rates the engine retries through. Committed transfers survive
// every crash un-redone, the stitched execution stays value-consistent and
// Theorem-2 correctable, and the fault/redo columns price the injected
// adversity.
func E17EngineCrash(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E17: engine crash-recovery under fault injection (banking, Preventer)",
		"crashes", "err-rate", "rounds", "committed", "redone", "torn", "faults", "conserved", "correctable")
	sc := o.scale()
	crashSweep := [][]int64{nil, {6}, {6, 18}}
	rateSweep := []float64{0, 0.2}
	for _, crashes := range crashSweep {
		for _, rate := range rateSweep {
			rounds, committed, redone, torn, faults := 0, 0, 0, 0, 0
			conserved, correct := true, true
			for s := 0; s < sc; s++ {
				wl := bankWorkload(3, 4, 10, 1, o.Seed+int64(s)*71)
				plan := engine.CrashPlan{
					Cfg:  engine.Config{Seed: o.Seed + int64(s)},
					Spec: wl.Spec,
					Init: wl.Init,
					Faults: fault.Plan{
						Seed:          o.Seed + int64(s)*13,
						CrashAppends:  crashes,
						TearTail:      2,
						StepErrorRate: rate,
					},
					NewControl: func() sched.Control {
						return sched.NewPreventer(wl.Nest, wl.Spec)
					},
				}
				res, err := engine.RunWithCrashes(o.ctx(), plan, wl.Programs)
				if err != nil {
					return nil, fmt.Errorf("E17 crashes=%d rate=%.1f: %w", len(crashes), rate, err)
				}
				if res.Committed+res.GaveUp != len(wl.Programs) {
					return nil, fmt.Errorf("E17: %d of %d transactions unaccounted for",
						len(wl.Programs)-res.Committed-res.GaveUp, len(wl.Programs))
				}
				rounds += res.Rounds
				committed += res.Committed
				redone += res.RedoneTxns
				torn += res.TornTotal
				faults += res.FaultsInjected
				inv := wl.Check(res.Exec, res.Final)
				conserved = conserved && inv.ConservationOK && inv.AuditsInexact == 0 && inv.TraceValid == nil
				ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
				if err != nil {
					return nil, err
				}
				correct = correct && ok
			}
			if !conserved || !correct {
				return nil, fmt.Errorf("E17 crashes=%d rate=%.1f: invariants violated (conserved=%v correctable=%v)",
					len(crashes), rate, conserved, correct)
			}
			t.Row(len(crashes), rate, rounds, committed, redone, torn, faults, conserved, correct)
		}
	}
	return t, nil
}
