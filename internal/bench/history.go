package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// HistoryEntry is one BENCH_HISTORY.json record: a full mla-bench/v1
// report keyed by the commit it measured.
type HistoryEntry struct {
	Commit string  `json:"commit"`
	Time   string  `json:"time"` // RFC3339
	Report *Report `json:"report"`
}

// History is the BENCH_HISTORY.json artifact: an append-only log of bench
// reports, one entry per recorded run, most recent last. The bench gate
// compares a fresh report against the last recorded entry of the same
// kind, so perf-sweep and load-cell histories interleave in one file.
type History struct {
	Schema  string         `json:"schema"` // Schema ("mla-bench/v1")
	Entries []HistoryEntry `json:"entries"`
}

// historyKeep bounds the file: old entries roll off the front.
const historyKeep = 200

// LoadHistory reads the history file; a missing file is an empty history.
func LoadHistory(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &History{Schema: Schema}, nil
	}
	if err != nil {
		return nil, err
	}
	h := &History{}
	if err := json.Unmarshal(data, h); err != nil {
		return nil, fmt.Errorf("bench: history %s: %w", path, err)
	}
	return h, nil
}

// Last returns the most recent entry whose report has the given kind, or
// nil.
func (h *History) Last(kind string) *HistoryEntry {
	for i := len(h.Entries) - 1; i >= 0; i-- {
		if r := h.Entries[i].Report; r != nil && r.Kind == kind {
			return &h.Entries[i]
		}
	}
	return nil
}

// LastFor returns the most recent entry matching both kind and shard count,
// or nil. Shard count is part of the lineage: a sharded load cell gates
// against the last sharded cell of the same width, never against the
// single-store cell interleaved in the same file.
func (h *History) LastFor(kind string, shards int) *HistoryEntry {
	for i := len(h.Entries) - 1; i >= 0; i-- {
		if r := h.Entries[i].Report; r != nil && r.Kind == kind && r.Shards == shards {
			return &h.Entries[i]
		}
	}
	return nil
}

// Append records rep under commit and writes the file back.
func (h *History) Append(path, commit string, rep *Report, now time.Time) error {
	h.Schema = Schema
	h.Entries = append(h.Entries, HistoryEntry{
		Commit: commit,
		Time:   now.UTC().Format(time.RFC3339),
		Report: rep,
	})
	if len(h.Entries) > historyKeep {
		h.Entries = h.Entries[len(h.Entries)-historyKeep:]
	}
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Gate tolerances: a regression must exceed the relative tolerance AND the
// absolute slack to fail the gate — CI cells are small, and small cells are
// noisy; the absolute floors keep microsecond jitter from failing pushes
// while still catching real cliffs.
const (
	gateTolerance   = 0.10    // 10% relative
	gateSlackTPS    = 5_000   // absolute throughput slack, txns/s
	gateSlackP99US  = 300     // absolute p99 slack, µs
	gateSlackAllocs = 2.0     // absolute allocs/txn slack
)

// Gate compares cur against prev (an earlier report of the same kind) and
// returns a description of every regression that exceeds both the relative
// tolerance and the absolute slack: throughput down, p99 up, or allocs/txn
// up. An empty slice means the gate passes. Cells are matched by identity
// (workload+mode for load, workload+config+procs for perf); cells present
// in only one report are ignored.
func Gate(prev, cur *Report) []string {
	var bad []string
	worseTPS := func(name string, old, new float64) {
		if old > 0 && new < old*(1-gateTolerance) && old-new > gateSlackTPS {
			bad = append(bad, fmt.Sprintf("%s: throughput %.0f → %.0f txn/s (-%.0f%%)", name, old, new, 100*(old-new)/old))
		}
	}
	worseP99 := func(name string, old, new int64) {
		if old > 0 && float64(new) > float64(old)*(1+gateTolerance) && new-old > gateSlackP99US {
			bad = append(bad, fmt.Sprintf("%s: p99 %dµs → %dµs (+%.0f%%)", name, old, new, 100*float64(new-old)/float64(old)))
		}
	}
	worseAllocs := func(name string, old, new float64) {
		if old > 0 && new > old*(1+gateTolerance) && new-old > gateSlackAllocs {
			bad = append(bad, fmt.Sprintf("%s: allocs/txn %.1f → %.1f", name, old, new))
		}
	}
	switch cur.Kind {
	case "load":
		for _, c := range cur.Load {
			for _, p := range prev.Load {
				if p.Workload == c.Workload && p.Mode == c.Mode && p.Shards == c.Shards {
					name := fmt.Sprintf("load %s/%s", c.Workload, c.Mode)
					if c.Shards > 1 {
						name = fmt.Sprintf("load %s/%s/s=%d", c.Workload, c.Mode, c.Shards)
					}
					worseTPS(name, p.ThroughputTPS, c.ThroughputTPS)
					worseP99(name, p.P99US, c.P99US)
					worseAllocs(name, p.AllocsPerTxn, c.AllocsPerTxn)
					break
				}
			}
		}
	case "perf", "shardperf":
		for _, c := range cur.Measurements {
			for _, p := range prev.Measurements {
				if p.Workload == c.Workload && p.Config == c.Config && p.Procs == c.Procs && p.Shards == c.Shards {
					name := fmt.Sprintf("%s %s/%s@%d", cur.Kind, c.Workload, c.Config, c.Procs)
					if c.Shards > 0 {
						name = fmt.Sprintf("%s %s/s=%d@%d", cur.Kind, c.Workload, c.Shards, c.Procs)
					}
					worseTPS(name, p.ThroughputTPS, c.ThroughputTPS)
					worseP99(name, p.P99LatencyUS, c.P99LatencyUS)
					worseAllocs(name, p.AllocsPerTxn, c.AllocsPerTxn)
					break
				}
			}
		}
	}
	return bad
}
