package bench

import (
	"path/filepath"
	"testing"
	"time"
)

func loadRep(tps float64, p99 int64, allocs float64) *Report {
	return &Report{Schema: Schema, Kind: "load", Load: []LoadCell{{
		Workload: "lowcontention", Mode: "open",
		ThroughputTPS: tps, P99US: p99, AllocsPerTxn: allocs,
	}}}
}

func TestHistoryAppendAndLast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	h, err := LoadHistory(path)
	if err != nil {
		t.Fatalf("LoadHistory(missing): %v", err)
	}
	if h.Last("load") != nil {
		t.Fatal("empty history has a last entry")
	}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	if err := h.Append(path, "aaa111", loadRep(60000, 2000, 5), now); err != nil {
		t.Fatalf("Append: %v", err)
	}
	perf := &Report{Schema: Schema, Kind: "perf"}
	if err := h.Append(path, "bbb222", perf, now.Add(time.Hour)); err != nil {
		t.Fatalf("Append: %v", err)
	}

	h2, err := LoadHistory(path)
	if err != nil {
		t.Fatalf("LoadHistory: %v", err)
	}
	if h2.Schema != Schema || len(h2.Entries) != 2 {
		t.Fatalf("reloaded schema=%q entries=%d", h2.Schema, len(h2.Entries))
	}
	// Last is kind-aware: the perf entry appended later must not shadow the
	// load entry — the two histories interleave in one file.
	if e := h2.Last("load"); e == nil || e.Commit != "aaa111" {
		t.Errorf("Last(load) = %+v, want commit aaa111", e)
	}
	if e := h2.Last("perf"); e == nil || e.Commit != "bbb222" {
		t.Errorf("Last(perf) = %+v, want commit bbb222", e)
	}
}

func TestHistoryKeepBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	h := &History{}
	now := time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)
	for i := 0; i < historyKeep+10; i++ {
		if err := h.Append(path, "c", loadRep(1, 1, 1), now); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if len(h.Entries) != historyKeep {
		t.Errorf("history holds %d entries, want the %d-entry bound", len(h.Entries), historyKeep)
	}
}

func TestGate(t *testing.T) {
	base := loadRep(60000, 2000, 5)
	cases := []struct {
		name string
		cur  *Report
		bad  bool
	}{
		{"identical", loadRep(60000, 2000, 5), false},
		// Within relative tolerance: fine.
		{"small dip", loadRep(57000, 2100, 5.5), false},
		// p99/allocs beyond 10% but under the absolute slack floors: still
		// fine — small CI cells jitter by microseconds and fractions of an
		// alloc.
		{"big relative, small absolute", loadRep(60000, 2290, 6.9), false},
		// Beyond both: regression.
		{"throughput cliff", loadRep(40000, 2000, 5), true},
		{"p99 cliff", loadRep(60000, 9000, 5), true},
		{"alloc cliff", loadRep(60000, 2000, 12), true},
		// Improvements never trip the gate.
		{"improvement", loadRep(90000, 900, 3), false},
	}
	for _, tc := range cases {
		got := Gate(base, tc.cur)
		if (len(got) > 0) != tc.bad {
			t.Errorf("%s: Gate → %v, want bad=%v", tc.name, got, tc.bad)
		}
	}
	// On a small cell, a >10% throughput dip under the 5k tps absolute slack
	// is jitter, not a regression.
	if got := Gate(loadRep(30000, 2000, 5), loadRep(26000, 2000, 5)); len(got) != 0 {
		t.Errorf("small-cell throughput jitter flagged: %v", got)
	}

	// Cells present on only one side are ignored, not regressions.
	cur := loadRep(1, 1, 1)
	cur.Load[0].Workload = "hotspot"
	if got := Gate(base, cur); len(got) != 0 {
		t.Errorf("unmatched cell flagged: %v", got)
	}
}
