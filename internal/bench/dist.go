package bench

import (
	"fmt"

	"mla/internal/coherent"
	"mla/internal/dist"
	"mla/internal/metrics"
	"mla/internal/sim"
)

// E13Distributed evaluates the distributed prevention controller of
// internal/dist: per-processor scheduling with breakpoint announcements
// that take Delay time units to propagate. The paper's Section 6 model is
// distributed ("entities of the database reside at nodes of a network, and
// the transactions migrate from entity to entity"), so a real prevention
// scheduler works from stale views of remote progress. Staleness is
// conservative — stale-waits rise with the delay — while soundness
// (Theorem 2 correctability) is asserted at every point; "delay=0" must
// match the centralized scheduler's admissions behaviorally.
func E13Distributed(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E13: distributed prevention vs announcement delay (banking)",
		"delay", "throughput", "p99-lat", "waits", "stale-waits", "aborts", "vs-central")
	sc := o.scale()
	seeds := 3 * sc

	// Centralized baseline.
	var centralTh float64
	for s := 0; s < seeds; s++ {
		wl := bankWorkload(3, 4, 14, 1, o.Seed+int64(s)*41)
		c := controlByName("prevent", wl.Nest, wl.Spec)
		res, err := runSim(o.ctx(), wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			return nil, err
		}
		centralTh += res.Throughput()
	}
	centralTh /= float64(seeds)
	t.Row("central", centralTh, "-", "-", "-", "-", "-")

	for _, delay := range []int64{0, 5, 25, 100, 400} {
		var th float64
		var p99 int64
		waits, stale, aborts := 0, 0, 0
		for s := 0; s < seeds; s++ {
			wl := bankWorkload(3, 4, 14, 1, o.Seed+int64(s)*41)
			cfg := sim.DefaultConfig()
			c := dist.New(wl.Nest, wl.Spec, cfg.Processors, sim.OwnerFunc(cfg.Processors), delay)
			res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
			if err != nil {
				return nil, fmt.Errorf("E13 delay=%d: %w", delay, err)
			}
			inv := wl.Check(res.Exec, res.Final)
			if !inv.ConservationOK || inv.AuditsInexact > 0 || inv.TraceValid != nil {
				return nil, fmt.Errorf("E13 delay=%d: invariants violated", delay)
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("E13 delay=%d: non-correctable execution admitted", delay)
			}
			th += res.Throughput()
			if v := res.LatencyPercentile(99); v > p99 {
				p99 = v
			}
			waits += res.Control.Waits
			stale += c.StaleWaits
			aborts += res.Stats.Aborts
		}
		th /= float64(seeds)
		t.Row(delay, th, p99, waits/seeds, stale/seeds, aborts/seeds, metrics.Ratio(th, centralTh))
	}
	return t, nil
}
