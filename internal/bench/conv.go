package bench

import (
	"fmt"

	"mla/internal/coherent"
	"mla/internal/conv"
	"mla/internal/metrics"
	"mla/internal/serial"
	"mla/internal/sim"
)

// E15Conversations runs conversation transactions (Section 7's pointer to
// [Ra]) under every control. A completed conversation is cyclic in its
// information flow and therefore never conflict serializable, yet each
// conversation pair is one π(2) class and multilevel atomic: the MLA
// controls complete every conversation; the serializable baselines complete
// none (and timestamp ordering livelocks — reported as "stalled"). This is
// the strongest qualitative separation: an application class that
// serializability cannot express at all.
func E15Conversations(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E15: conversations between transactions",
		"control", "completed", "failed", "serializable-exec", "correctable", "time")
	sc := o.scale()
	p := conv.DefaultParams()
	p.Conversations = 3 * sc
	p.Seed = o.Seed
	for _, name := range []string{"prevent", "detect", "serial", "2pl", "tso"} {
		wl := conv.Generate(p)
		c := controlByName(name, wl.Nest, wl.Spec)
		cfg := sim.DefaultConfig()
		cfg.MaxTime = 400000
		res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			t.Row(name, "-", "-", "-", "-", "stalled (livelock)")
			continue
		}
		out := wl.Check(res.Final)
		ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			return nil, err
		}
		if (name == "prevent" || name == "detect") && out.Failed > 0 {
			return nil, fmt.Errorf("E15: %s failed %d conversations", name, out.Failed)
		}
		if (name == "prevent" || name == "detect") && !ok {
			return nil, fmt.Errorf("E15: %s admitted a non-correctable execution", name)
		}
		t.Row(name, out.Completed, out.Failed, serial.Serializable(res.Exec), ok, res.Time)
	}
	return t, nil
}
