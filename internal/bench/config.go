package bench

import (
	"context"
	"math/rand"
	"time"

	"mla/internal/telemetry"
)

// Config is the one configuration type for every harness entry point: the
// experiment suite (All), the perf sweep (PerfRun), and the open-loop load
// cells (LoadRun). It replaces the old Options/PerfOptions split — those
// names remain as deprecated aliases — and is normally built with NewConfig
// and the With* functional options, though literal construction keeps
// working for existing call sites.
type Config struct {
	// Scale multiplies trial counts and workload sizes for the experiment
	// suite. 1 is the quick configuration used from benchmarks and tests;
	// cmd/mlabench defaults to 2.
	Scale int
	// Seed drives all randomness.
	Seed int64
	// Context, when non-nil, cancels in-flight runs between events; a
	// cancelled run returns the wrapped ctx error. cmd/mlabench wires the
	// interrupt signal here so ^C stops a long sweep promptly.
	Context context.Context
	// Telemetry, when non-nil, is the shared sink runs record into: spans
	// from the runs that support tracing and aggregated counters from every
	// Snapshot(). cmd/mlabench exports it via -telemetry / -trace-out.
	Telemetry *telemetry.Telemetry

	// Quick shrinks the perf sweep (smaller workloads, GOMAXPROCS {1, max}
	// only) and the load cells (shorter run).
	Quick bool
	// Procs is the perf sweep's GOMAXPROCS points; default {1,2,4,8}
	// (quick: {1,8}).
	Procs []int

	// Rate is the open-loop offered rate in transactions/second. 0 picks
	// the load harness default.
	Rate float64
	// Duration sizes the load run: Rate×Duration transactions are offered
	// unless Txns overrides the count explicitly.
	Duration time.Duration
	// Txns is the explicit transaction count for load runs (0 = derive
	// from Rate and Duration).
	Txns int
	// Closed switches the load run to the classic closed loop — workers
	// issue as fast as completions allow and latency is measured from
	// dispatch. Closed-loop numbers hide server stalls (coordinated
	// omission); the mode exists for comparison, not for headline numbers.
	Closed bool
	// SLOP99 is the p99 latency objective a load run is judged against
	// (0 = report latency without a verdict).
	SLOP99 time.Duration
	// Workload names the load shape: "lowcontention" (default) or
	// "hotspot".
	Workload string
	// Workers bounds the load pool's concurrent in-flight transactions
	// (0 = harness default).
	Workers int

	// Shards partitions the entity store: a load run with Shards > 1
	// drives a shard.Group of that many mini-engines instead of the single
	// resident engine, and ShardRun uses it as the top of its shard sweep.
	// 0 or 1 is the unsharded engine.
	Shards int
}

// Option mutates a Config under construction.
type Option func(*Config)

// NewConfig builds a Config from defaults (Scale 1, Seed 1) plus options.
func NewConfig(opts ...Option) Config {
	c := Config{Scale: 1, Seed: 1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithScale sets the experiment scale multiplier.
func WithScale(n int) Option { return func(c *Config) { c.Scale = n } }

// WithSeed sets the seed for all randomness.
func WithSeed(s int64) Option { return func(c *Config) { c.Seed = s } }

// WithContext wires cancellation into long runs.
func WithContext(ctx context.Context) Option { return func(c *Config) { c.Context = ctx } }

// WithTelemetry attaches the shared telemetry sink.
func WithTelemetry(t *telemetry.Telemetry) Option { return func(c *Config) { c.Telemetry = t } }

// WithQuick toggles the reduced sweep/run shape.
func WithQuick(q bool) Option { return func(c *Config) { c.Quick = q } }

// WithProcs sets the perf sweep's GOMAXPROCS points.
func WithProcs(ps ...int) Option { return func(c *Config) { c.Procs = ps } }

// WithRate sets the open-loop offered rate (txns/second).
func WithRate(r float64) Option { return func(c *Config) { c.Rate = r } }

// WithDuration sets the load run length (Rate×Duration transactions).
func WithDuration(d time.Duration) Option { return func(c *Config) { c.Duration = d } }

// WithTxns pins the load run's transaction count explicitly.
func WithTxns(n int) Option { return func(c *Config) { c.Txns = n } }

// WithClosedLoop switches the load run to closed-loop dispatch.
func WithClosedLoop() Option { return func(c *Config) { c.Closed = true } }

// WithSLO sets the p99 objective the load run reports against.
func WithSLO(p99 time.Duration) Option { return func(c *Config) { c.SLOP99 = p99 } }

// WithWorkload selects the load shape ("lowcontention", "hotspot").
func WithWorkload(name string) Option { return func(c *Config) { c.Workload = name } }

// WithWorkers bounds the load pool's in-flight transactions.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithShards partitions the entity store across n shards.
func WithShards(n int) Option { return func(c *Config) { c.Shards = n } }

// Options is the pre-redesign name for Config.
//
// Deprecated: use Config (and NewConfig with functional options).
type Options = Config

// PerfOptions is the pre-redesign perf-sweep configuration.
//
// Deprecated: use Config; PerfRun accepts it directly.
type PerfOptions = Config

// DefaultOptions returns Scale 1, Seed 1.
//
// Deprecated: use NewConfig.
func DefaultOptions() Options { return NewConfig() }

func (o Config) scale() int {
	if o.Scale < 1 {
		return 1
	}
	return o.Scale
}

func (o Config) rng() *rand.Rand { return rand.New(rand.NewSource(o.Seed)) }

func (o Config) ctx() context.Context {
	if o.Context == nil {
		return context.Background()
	}
	return o.Context
}
