// Shard perf cells: the harness behind `mlabench -shardperf` and the
// ci.yml shard-matrix job. It sweeps partition count × GOMAXPROCS over a
// shard-affine hot-spot workload on the partitioned store (shard.Group):
// ~90% of transactions touch only their home shard's hot entities, ~10%
// span two shards and pay the multi-shot cross-shard commit, so the sweep
// measures exactly what partitioning buys — independent shards proceed in
// parallel where the single store serializes on one engine mutex — while
// still charging the protocol's real coordination cost.
//
// Safety is asserted the same way as the E19 sweep: the workload is
// commutative increments, so every cell (any shard count, any schedule)
// must land exactly on init + the per-entity increment counts. The 1-shard
// cell IS the unsharded discipline, so a sharded cell agreeing with the
// expectation is decision equivalence against the unsharded engine; any
// divergence flips EquivalenceOK and `mlabench -shardperf` exits nonzero.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mla/internal/model"
	"mla/internal/shard"
)

// Shard cell shape: each shard owns a small hot set, so the 1-shard cell is
// one fought-over hot spot and the N-shard cell is N independent ones
// bridged by the cross-shard tail.
const (
	shardPerfTxns       = 8000
	shardPerfQuickTxns  = 2000
	shardPerfWorkers    = 16
	shardPerfHotEnts    = 8  // hot entities per shard
	shardPerfCrossPct   = 10 // % of transactions spanning two shards
	shardPerfUniverse   = 256
	shardPerfStepsPerUn = 2 // steps per unit; 2 units per transaction

	// shardPerfSpin is the per-step CPU work burned inside the lock hold
	// (a stand-in for real step work: deserialize, validate, index). With
	// zero-cost steps the cell measures nothing but lock handoff, which a
	// single engine already pipelines at memory speed — the quantity
	// partitioning actually parallelizes is the hot row's HOLD time, and
	// only steps that cost something make that the bottleneck.
	shardPerfSpin = 4000
)

// shardPerfSink defeats dead-code elimination of the spin loop.
var shardPerfSink atomic.Uint64

func shardPerfWork() {
	x := uint64(2166136261)
	for j := 0; j < shardPerfSpin; j++ {
		x = (x ^ uint64(j)) * 16777619
	}
	shardPerfSink.Store(x)
}

// shardTxnEnts returns transaction i's four entities (two units of two
// steps) deterministically: the first unit on the home shard, the second on
// the same shard or — for the cross-shard tail — on the next one. Each
// unit's first step is its shard's hot ROW (hot[s][0]): every transaction
// homed at a shard serializes through that one entity, so the 1-shard cell
// is a genuine single-point bottleneck — all workers funnel through one
// row — while the N-shard cell has N independent rows proceeding in
// parallel. The second step spreads over the rest of the hot window.
func shardTxnEnts(i int, hot [][]model.EntityID) (ents [4]model.EntityID, cross bool) {
	shards := len(hot)
	home := i % shards
	cross = shards > 1 && i%100 < shardPerfCrossPct
	second := home
	if cross {
		second = (home + 1) % shards
	}
	pick := func(s, k int) model.EntityID {
		if n := len(hot[s]) - 1; n > 0 {
			return hot[s][1+(i*31+k*7)%n]
		}
		return hot[s][0]
	}
	ents[0], ents[1] = hot[home][0], pick(home, 1)
	ents[2], ents[3] = hot[second][0], pick(second, 3)
	return ents, cross
}

// shardCell runs one (shards, procs) cell and verifies it against the
// schedule-independent expected state. equivOK=false is a decision-
// equivalence violation (the report fails); err is a harness failure.
func shardCell(ctx context.Context, shards, procs, txns, workers int) (m PerfMeasurement, equivOK bool, err error) {
	runtime.GOMAXPROCS(procs)

	init := make(map[model.EntityID]model.Value, shardPerfUniverse)
	ents := make([]model.EntityID, shardPerfUniverse)
	for e := range ents {
		ents[e] = model.EntityID(fmt.Sprintf("acct-%04d", e))
		init[ents[e]] = 0
	}
	g := shard.NewGroup(shard.GroupConfig{Shards: shards}, init)

	// Classify the universe by the group's own router and keep a small hot
	// window per shard. Routing is near-uniform (TestRouterBalance), so
	// every shard owns far more than the hot-window size out of 256.
	hot := make([][]model.EntityID, shards)
	for _, x := range ents {
		s := g.Router().Shard(x)
		if len(hot[s]) < shardPerfHotEnts {
			hot[s] = append(hot[s], x)
		}
	}
	for s := range hot {
		if len(hot[s]) == 0 {
			return m, false, fmt.Errorf("bench: shard %d of %d owns no entities in a %d-entity universe", s, shards, shardPerfUniverse)
		}
	}

	// The schedule-independent expectation, computed before anything runs.
	want := make(map[model.EntityID]model.Value, shardPerfUniverse)
	for i := 0; i < txns; i++ {
		es, _ := shardTxnEnts(i, hot)
		for _, x := range es {
			want[x]++
		}
	}

	inc := func(v model.Value) (model.Value, string) { shardPerfWork(); return v + 1, "inc" }
	lat := make([]int64, txns) // µs, one slot per transaction
	var next, committed atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= txns || ctx.Err() != nil {
					return
				}
				es, _ := shardTxnEnts(i, hot)
				txn := shard.Txn{
					ID: model.TxnID(fmt.Sprintf("sp%06d", i)),
					Units: []shard.Unit{
						{Steps: []shard.Step{{Entity: es[0], Apply: inc}, {Entity: es[1], Apply: inc}}},
						{Steps: []shard.Step{{Entity: es[2], Apply: inc}, {Entity: es[3], Apply: inc}}},
					},
				}
				t0 := time.Now()
				out, serr := g.Submit(ctx, txn)
				lat[i] = time.Since(t0).Microseconds()
				if serr != nil {
					firstErr.CompareAndSwap(nil, serr)
					return
				}
				if out.Committed {
					committed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	if e, _ := firstErr.Load().(error); e != nil {
		return m, false, fmt.Errorf("bench: shardperf s=%d@%d: %w", shards, procs, e)
	}
	if err := ctx.Err(); err != nil {
		return m, false, err
	}

	equivOK = true
	final := g.Values()
	for x, v := range want {
		if final[x] != v {
			equivOK = false
		}
	}
	st := g.Stats()
	if int(committed.Load()) != txns || st.Committed != int64(txns) {
		equivOK = false
	}

	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	m = PerfMeasurement{
		Workload:     "hotspot-affine",
		Config:       "sharded",
		Shards:       shards,
		Procs:        procs,
		Txns:         txns,
		Committed:    int(committed.Load()),
		Restarts:     int(st.Restarts),
		P50LatencyUS: lat[txns/2],
		P99LatencyUS: lat[txns*99/100],
		ElapsedUS:    elapsed.Microseconds(),
	}
	if elapsed > 0 {
		m.ThroughputTPS = float64(committed.Load()) / elapsed.Seconds()
	}
	if c := committed.Load(); c > 0 {
		m.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(c)
		m.CrossShardFrac = float64(st.CrossShard) / float64(c)
	}
	return m, equivOK, nil
}

// ShardRun executes the shard sweep (the Kind "shardperf" report behind
// `mlabench -shardperf`). cfg.Shards > 1 pins the sweep to {1, cfg.Shards}
// — the CI matrix leg, which always carries its own 1-shard baseline so
// ShardSpeedup is well-defined per job; the default sweeps {1, 2, 4}.
// ShardRun mutates GOMAXPROCS during the run and restores it on return.
func ShardRun(ctx context.Context, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = cfg.ctx()
	}
	shardPoints := []int{1, 2, 4}
	switch {
	case cfg.Shards == 1:
		shardPoints = []int{1}
	case cfg.Shards > 1:
		shardPoints = []int{1, cfg.Shards}
	}
	procs := cfg.Procs
	if len(procs) == 0 {
		procs = []int{1, 4}
	}
	txns := shardPerfTxns
	if cfg.Quick {
		txns = shardPerfQuickTxns
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = shardPerfWorkers
	}

	rep := &Report{
		Schema:        Schema,
		Kind:          "shardperf",
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		Shards:        shardPoints[len(shardPoints)-1],
		EquivalenceOK: true,
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	maxProcs := procs[len(procs)-1]
	maxShards := shardPoints[len(shardPoints)-1]
	var oneTPS, maxTPS float64
	for _, s := range shardPoints {
		for _, p := range procs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			m, equivOK, err := shardCell(ctx, s, p, txns, workers)
			if err != nil {
				return nil, fmt.Errorf("bench: shardperf s=%d@%d: %w", s, p, err)
			}
			if !equivOK {
				rep.EquivalenceOK = false
			}
			if p == maxProcs {
				if s == 1 {
					oneTPS = m.ThroughputTPS
				}
				if s == maxShards {
					maxTPS = m.ThroughputTPS
				}
			}
			rep.Measurements = append(rep.Measurements, m)
		}
	}
	if oneTPS > 0 {
		rep.ShardSpeedup = maxTPS / oneTPS
	}
	return rep, nil
}
