package bench

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"mla/internal/metrics"
	"mla/internal/serve"
)

// E22CrashSoak is the crash-restart durability soak as an experiment: build
// the real mlaserve binary, run it over a persistent data directory with
// transient disk faults injected in its WAL, SIGKILL it mid-load repeatedly,
// and audit every boot — each transaction ever acknowledged with 200 must be
// re-verifiable after every restart, recovery's replay must stay bounded by
// the last checkpoint, and the history spool concatenated across all boots
// must pass the black-box MLA checker. This is the claim the other tables
// assume: the WAL the scheduler commits into actually survives the process.
func E22CrashSoak(o Options) (*metrics.Table, error) {
	sc := o.scale()
	dir, err := os.MkdirTemp("", "mla-e22-")
	if err != nil {
		return nil, fmt.Errorf("E22: %w", err)
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "mlaserve")
	build := exec.Command("go", "build", "-o", bin, "mla/cmd/mlaserve")
	if out, err := build.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("E22: building mlaserve: %v: %s", err, out)
	}

	rep, err := serve.Soak(o.ctx(), serve.SoakOptions{
		Bin:                bin,
		Dir:                filepath.Join(dir, "data"),
		Rounds:             5,
		TxnsPerRound:       200 * sc,
		Sessions:           12,
		Rate:               120,
		CheckpointEvery:    64,
		DiskWriteErrRate:   0.02,
		DiskShortWriteRate: 0.02,
		DiskSyncErrRate:    0.01,
		Seed:               o.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("E22: %w", err)
	}

	t := metrics.NewTable("E22: crash-restart soak (SIGKILL + disk faults, real process)",
		"boot", "kind", "epoch", "replayed", "torn B", "reverified", "lost", "acked", "down")
	for i, r := range rep.Rounds {
		kind := "kill -9"
		if r.Graceful {
			kind = "graceful"
		}
		t.Row(i+1, kind, r.Epoch, r.SinceCheckpoint, r.TornBytes, r.Reverified, r.Lost, r.Acked, r.Down)
	}
	hist := "-"
	if rep.History != nil {
		hist = rep.History.Summary()
	}
	verdict := "PASS"
	if !rep.OK() {
		verdict = fmt.Sprintf("FAIL: %v", rep.Problems)
	}
	t.Row("total", fmt.Sprintf("%d ckpts", rep.Checkpoints), "", "", "",
		rep.TotalAcked, len(rep.LostAcks), hist, verdict)
	if !rep.OK() {
		return nil, fmt.Errorf("E22: %v", rep.Problems)
	}
	return t, nil
}
