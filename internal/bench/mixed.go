package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/dist"
	"mla/internal/engine"
	"mla/internal/fault"
	"mla/internal/history"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

// mixedWorkload builds the mixed-level scenario of E20: one application at
// three very different atomicity levels sharing one k=3 nest.
//
//   - Chatty banking sessions ("sess-N", class "app"): several
//     withdraw/deposit rounds, with a class-wide (coarseness-2) breakpoint
//     at each round boundary — long logical units, small atomicity units.
//   - Read-mostly analytics ("ana-N", class "app"): scans with a
//     breakpoint after every step — the weakest useful level.
//   - Serializable audits ("audit-N", each in its own class): whole-run
//     scans with no interior breakpoints; level 1 against everything, so
//     they demand full mutual serializability.
type mixedWorkload struct {
	progs []model.Program
	n     *nest.Nest
	spec  breakpoint.Spec
	init  map[model.EntityID]model.Value
}

func newMixedWorkload(sessions, rounds, analytics, audits, accounts int, seed int64) *mixedWorkload {
	rng := rand.New(rand.NewSource(seed))
	acct := func(i int) model.EntityID { return model.EntityID(fmt.Sprintf("acct-%02d", i)) }

	w := &mixedWorkload{
		n:    nest.New(3),
		init: make(map[model.EntityID]model.Value, accounts),
	}
	for i := 0; i < accounts; i++ {
		w.init[acct(i)] = 100
	}
	for s := 0; s < sessions; s++ {
		id := model.TxnID(fmt.Sprintf("sess-%d", s))
		var ops []model.Op
		for r := 0; r < rounds; r++ {
			amt := model.Value(1 + rng.Intn(9))
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			ops = append(ops, model.Add(acct(from), -amt), model.Add(acct(to), amt))
		}
		w.progs = append(w.progs, &model.Scripted{Txn: id, Ops: ops})
		w.n.Add(id, "app")
	}
	for a := 0; a < analytics; a++ {
		id := model.TxnID(fmt.Sprintf("ana-%d", a))
		var ops []model.Op
		for j := 0; j < 2+rng.Intn(3); j++ {
			ops = append(ops, model.Read(acct(rng.Intn(accounts))))
		}
		w.progs = append(w.progs, &model.Scripted{Txn: id, Ops: ops})
		w.n.Add(id, "app")
	}
	for a := 0; a < audits; a++ {
		id := model.TxnID(fmt.Sprintf("audit-%d", a))
		ops := make([]model.Op, accounts)
		for i := range ops {
			ops[i] = model.Read(acct(i))
		}
		w.progs = append(w.progs, &model.Scripted{Txn: id, Ops: ops})
		w.n.Add(id, fmt.Sprintf("audit-%d", a))
	}

	w.spec = breakpoint.Func{Levels: 3, Fn: func(t model.TxnID, prefix []model.Step) int {
		switch {
		case strings.HasPrefix(string(t), "sess-"):
			if len(prefix)%2 == 0 {
				return 2 // round boundary: the whole class may interleave here
			}
			return 3
		case strings.HasPrefix(string(t), "ana-"):
			return 2 // interruptible everywhere
		default:
			return 3 // audits: no interior breakpoints
		}
	}}
	return w
}

// E20MixedHistory drives the mixed-level workload through serial,
// serializable, multilevel, and distributed controls on the simulator plus
// the multilevel control on the concurrent engine (with a live history
// recorder attached), and cross-checks every admitted execution twice: the
// white-box Theorem 2 analysis on the execution, and the black-box history
// checker on the recorded event log. A disagreement fails the experiment —
// that is the point: two independent implementations of multilevel
// atomicity must agree on every schedule the system actually produces.
func E20MixedHistory(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E20: mixed-level history checking (sessions + analytics + audits)",
		"control", "executor", "committed", "steps", "atomic", "correctable", "agree")
	sc := o.scale()
	sessions, rounds, analytics, audits, accounts := 4*sc, 3, 3*sc, 2, 8

	for _, control := range []string{"serial", "2pl", "prevent", "dist"} {
		w := newMixedWorkload(sessions, rounds, analytics, audits, accounts, o.Seed)
		var c sched.Control
		if control == "dist" {
			cfg := sim.DefaultConfig()
			c = dist.NewNet(w.n, w.spec, dist.Params{
				Procs:  cfg.Processors,
				Owner:  sim.OwnerFunc(cfg.Processors),
				Delay:  5,
				Faults: fault.New(fault.Plan{Seed: o.Seed}),
			})
		} else {
			c = controlByName(control, w.n, w.spec)
		}
		res, err := runSim(o.ctx(), w.progs, c, w.spec, w.init)
		if err != nil {
			return nil, fmt.Errorf("E20 %s: %w", control, err)
		}
		rn := w.n.Restrict(res.Exec.Txns())
		h, err := history.FromExecution(res.Exec, rn, w.spec)
		if err != nil {
			return nil, fmt.Errorf("E20 %s: history: %w", control, err)
		}
		if err := e20row(t, control, "sim", res.Exec, rn, w.spec, h); err != nil {
			return nil, err
		}
	}

	// The engine path records the history live — every attempt, wait, and
	// commit lands in the recorder as it happens, not reconstructed after
	// the fact.
	w := newMixedWorkload(sessions, rounds, analytics, audits, accounts, o.Seed)
	rec := history.NewRecorder(w.n)
	cfg := engine.Config{Seed: o.Seed, Observer: rec}
	res, err := engine.Run(o.ctx(), cfg, w.progs, sched.NewPreventer(w.n, w.spec), w.spec, w.init)
	if err != nil {
		return nil, fmt.Errorf("E20 engine: %w", err)
	}
	rn := w.n.Restrict(res.Exec.Txns())
	if err := e20row(t, "prevent", "engine", res.Exec, rn, w.spec, rec.History()); err != nil {
		return nil, err
	}
	return t, nil
}

// e20row runs both checkers over one admitted execution and appends the
// comparison; it errors on checker disagreement or an inadmissible schedule.
func e20row(t *metrics.Table, control, executor string, exec model.Execution, n *nest.Nest, spec breakpoint.Spec, h *history.History) error {
	white, err := coherent.CheckExecution(exec, n, spec)
	if err != nil {
		return fmt.Errorf("E20 %s/%s: coherent: %w", control, executor, err)
	}
	black, err := history.Check(h)
	if err != nil {
		return fmt.Errorf("E20 %s/%s: history: %w", control, executor, err)
	}
	agree := white.Atomic == black.Atomic && white.Correctable == black.Correctable
	t.Row(control, executor, len(exec.Txns()), len(exec), black.Atomic, black.Correctable, agree)
	if !agree {
		return fmt.Errorf("E20 %s/%s: checker disagreement: history says atomic=%v correctable=%v, coherent says atomic=%v correctable=%v",
			control, executor, black.Atomic, black.Correctable, white.Atomic, white.Correctable)
	}
	if !white.Correctable {
		return fmt.Errorf("E20 %s/%s: control admitted a non-correctable execution", control, executor)
	}
	return nil
}
