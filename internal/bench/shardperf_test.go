package bench

import (
	"context"
	"testing"
)

// TestShardRunEquivalence runs a small shard sweep end to end: every cell
// must commit its full population and land exactly on the schedule-
// independent expected state (the decision-equivalence gate), and the
// report must carry the per-cell shard counts the bench gate matches on.
func TestShardRunEquivalence(t *testing.T) {
	rep, err := ShardRun(context.Background(), NewConfig(WithQuick(true), WithShards(2), WithProcs(1, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EquivalenceOK {
		t.Fatal("shard sweep diverged from the schedule-independent expected state")
	}
	if rep.Kind != "shardperf" || rep.Shards != 2 {
		t.Fatalf("report kind/shards = %s/%d", rep.Kind, rep.Shards)
	}
	if len(rep.Measurements) != 4 {
		t.Fatalf("got %d cells, want 4 (shards {1,2} × procs {1,4})", len(rep.Measurements))
	}
	for _, m := range rep.Measurements {
		if m.Committed != m.Txns {
			t.Errorf("cell s=%d@%d committed %d of %d", m.Shards, m.Procs, m.Committed, m.Txns)
		}
		if m.Shards > 1 && m.CrossShardFrac == 0 {
			t.Errorf("cell s=%d@%d saw no cross-shard transactions", m.Shards, m.Procs)
		}
		if m.Shards == 1 && m.CrossShardFrac != 0 {
			t.Errorf("1-shard cell reports cross-shard fraction %f", m.CrossShardFrac)
		}
	}
	t.Logf("shard speedup (2 shards vs 1 @ max procs): %.2fx", rep.ShardSpeedup)
}

// TestLoadRunSharded drives the open-loop load cell against the partitioned
// store and checks the sharded equivalence gate plus the shard signature on
// the cell (what BENCH_HISTORY.json lineage matching keys on).
func TestLoadRunSharded(t *testing.T) {
	cfg := NewConfig(WithQuick(true), WithShards(4), WithTxns(2000), WithRate(40000))
	rep, err := LoadRun(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EquivalenceOK {
		t.Fatal("sharded load cell diverged from acked increments")
	}
	if rep.Shards != 4 || len(rep.Load) != 1 || rep.Load[0].Shards != 4 {
		t.Fatalf("shard signature missing: report %d, cell %+v", rep.Shards, rep.Load)
	}
	if rep.Load[0].Committed == 0 {
		t.Fatal("no transactions committed")
	}
}

// TestGateShardLineage pins the gate's matching rule: a sharded load cell
// must gate against the previous sharded cell, never the single-store cell
// recorded in the same history.
func TestGateShardLineage(t *testing.T) {
	unsharded := &Report{Kind: "load", Load: []LoadCell{{Workload: "lowcontention", Mode: "open", ThroughputTPS: 100000}}}
	shardedOld := &Report{Kind: "load", Shards: 4, Load: []LoadCell{{Workload: "lowcontention", Mode: "open", Shards: 4, ThroughputTPS: 50000}}}
	shardedNew := &Report{Kind: "load", Shards: 4, Load: []LoadCell{{Workload: "lowcontention", Mode: "open", Shards: 4, ThroughputTPS: 48000}}}

	// vs the unsharded cell the sharded one would look like a 52% cliff —
	// the shard signature must keep them apart.
	if bad := Gate(unsharded, shardedNew); len(bad) != 0 {
		t.Fatalf("sharded cell gated against unsharded lineage: %v", bad)
	}
	if bad := Gate(shardedOld, shardedNew); len(bad) != 0 {
		t.Fatalf("4%% drift should pass: %v", bad)
	}
	shardedBad := &Report{Kind: "load", Shards: 4, Load: []LoadCell{{Workload: "lowcontention", Mode: "open", Shards: 4, ThroughputTPS: 30000}}}
	if bad := Gate(shardedOld, shardedBad); len(bad) == 0 {
		t.Fatal("40% regression within the sharded lineage passed the gate")
	}

	// History lineage: LastFor must skip entries of the other shard width.
	h := &History{}
	h.Entries = append(h.Entries,
		HistoryEntry{Commit: "a", Report: unsharded},
		HistoryEntry{Commit: "b", Report: shardedOld},
		HistoryEntry{Commit: "c", Report: unsharded},
	)
	if e := h.LastFor("load", 4); e == nil || e.Commit != "b" {
		t.Fatalf("LastFor(load, 4) = %+v, want commit b", e)
	}
	if e := h.LastFor("load", 0); e == nil || e.Commit != "c" {
		t.Fatalf("LastFor(load, 0) = %+v, want commit c", e)
	}
}
