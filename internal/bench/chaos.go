package bench

import (
	"fmt"

	"mla/internal/coherent"
	"mla/internal/dist"
	"mla/internal/fault"
	"mla/internal/metrics"
	"mla/internal/sim"
)

// E18Chaos sweeps the distributed preventer's failure space: message loss
// rate, reordering, partition duration, and processor-crash count, each
// applied to the full banking workload on the bus-backed multi-node
// control. The claim under test is the robustness contract of the
// partition- and failure-tolerant design: every completed run still admits
// only Theorem-2-correctable executions and preserves the banking
// invariants; committed transactions are never lost or re-decided; and no
// schedule hangs the run — transactions stranded by a partition or crash
// are aborted within the grace period and retried after the fault clears.
// Failures cost throughput (waits, grace aborts, crash aborts,
// retransmissions — all reported), never correctness.
func E18Chaos(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E18: distributed prevention under partitions, loss, and processor crashes (banking)",
		"scenario", "throughput", "p99-lat", "aborts", "grace-ab", "crash-ab", "probe-dl", "retransmit", "net-drop")
	sc := o.scale()
	seeds := 2 * sc

	type scenario struct {
		name string
		plan fault.Plan
	}
	scenarios := []scenario{
		{"baseline", fault.Plan{}},
		{"loss=0.1", fault.Plan{NetDropRate: 0.1}},
		{"loss=0.3", fault.Plan{NetDropRate: 0.3}},
		{"reorder", fault.Plan{NetDelayRate: 0.4, NetExtraDelay: 60}},
		{"part=300", fault.Plan{
			Partitions: []fault.Partition{{At: 100, Heal: 400}},
		}},
		{"part=900+loss", fault.Plan{
			NetDropRate: 0.1,
			Partitions:  []fault.Partition{{At: 100, Heal: 1000}},
		}},
		{"crash=1", fault.Plan{
			ProcCrashes: []fault.ProcCrash{{Proc: 1, At: 120, Rejoin: 520}},
		}},
		{"crash=3+loss", fault.Plan{
			NetDropRate: 0.1,
			ProcCrashes: []fault.ProcCrash{
				{Proc: 1, At: 100, Rejoin: 500},
				{Proc: 2, At: 250, Rejoin: 650},
				{Proc: 3, At: 400, Rejoin: 800},
			},
		}},
		{"everything", fault.Plan{
			NetDropRate:   0.15,
			NetDelayRate:  0.2,
			NetExtraDelay: 60,
			Partitions:    []fault.Partition{{At: 200, Heal: 700}},
			ProcCrashes:   []fault.ProcCrash{{Proc: 2, At: 150, Rejoin: 550}},
		}},
	}

	for _, scn := range scenarios {
		var th float64
		var p99, dropped int64
		aborts, grace, crash, probes, retrans := 0, 0, 0, 0, 0
		for s := 0; s < seeds; s++ {
			wl := bankWorkload(3, 4, 14, 1, o.Seed+int64(s)*41)
			cfg := sim.DefaultConfig()
			plan := scn.plan
			plan.Seed = o.Seed + int64(s)*101
			c := dist.NewNet(wl.Nest, wl.Spec, dist.Params{
				Procs:  cfg.Processors,
				Owner:  sim.OwnerFunc(cfg.Processors),
				Delay:  5,
				Faults: fault.New(plan),
			})
			if o.Telemetry != nil {
				cfg.Telemetry = o.Telemetry
				c.AttachTelemetry(o.Telemetry)
			}
			res, err := sim.RunContext(o.ctx(), cfg, wl.Programs, c, wl.Spec, wl.Init)
			if err != nil {
				return nil, fmt.Errorf("E18 %s seed=%d: %w", scn.name, s, err)
			}
			if res.Stats.Committed != len(wl.Programs) {
				return nil, fmt.Errorf("E18 %s seed=%d: committed %d of %d (run did not drain)",
					scn.name, s, res.Stats.Committed, len(wl.Programs))
			}
			inv := wl.Check(res.Exec, res.Final)
			if !inv.ConservationOK || inv.AuditsInexact > 0 || inv.TraceValid != nil {
				return nil, fmt.Errorf("E18 %s seed=%d: invariants violated under chaos", scn.name, s)
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("E18 %s seed=%d: non-correctable execution admitted", scn.name, s)
			}
			th += res.Throughput()
			if v := res.LatencyPercentile(99); v > p99 {
				p99 = v
			}
			aborts += res.Stats.Aborts
			grace += c.GraceAborts
			crash += c.CrashAborts
			probes += c.ProbeDeadlocks
			retrans += c.Retransmits
			dropped += c.NetStats().Dropped + c.NetStats().DroppedLink + c.NetStats().DroppedCrash
			if o.Telemetry != nil {
				c.FillTelemetry(o.Telemetry)
			}
		}
		th /= float64(seeds)
		t.Row(scn.name, th, p99, aborts/seeds, grace/seeds, crash/seeds,
			probes/seeds, retrans/seeds, dropped/int64(seeds))
	}
	return t, nil
}
