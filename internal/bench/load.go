// Open-loop load cells: the harness behind `mlabench -rate` and the Kind
// "load" section of the mla-bench/v1 report. Unlike the perf sweep (a
// closed batch of programs handed to RunOnStore), the load cell offers
// transactions to a RESIDENT engine session on a Poisson schedule whose
// rate does not bend to the server: arrivals that find every worker busy
// queue up, and their latency is measured from the scheduled arrival — the
// coordinated-omission-safe discipline that makes a stall show up in p99
// instead of silently deflating the sample count.
//
// The same loadgen.Pool drives two targets through one Client interface:
// the in-process engine (engineClient below, LoadRun) and a live mlaserve
// over HTTP (loadgen.HTTPClient, LoadRunHTTP). In-process cells also carry
// the allocation budget (allocs per committed txn) and the same
// commutative-increment equivalence gate the perf sweep uses.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mla/internal/engine"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/serve/loadgen"
	"mla/internal/shard"
)

// Load cell defaults: a 1-second cell at 120k/s demonstrates the ≥100k
// txn/s target; Quick shrinks it to a CI-friendly smoke. The nightly job
// passes an explicit -duration for the multi-million-txn cell.
const (
	loadDefaultRate     = 120_000
	loadDefaultDuration = time.Second
	loadQuickRate       = 60_000
	loadQuickDuration   = 250 * time.Millisecond
	loadStepsPerTxn     = 2
)

// loadProg is the load cell's pooled program: the same in-place increment
// state machine as perfProg, but with its entity slice aliasing a
// precomputed workload table so building a program costs one small
// transaction-ID allocation and nothing else.
type loadProg struct {
	id   model.TxnID
	ents []model.EntityID
	buf  []byte // recycled backing for the ID bytes
	st   perfState
}

func (p *loadProg) ID() model.TxnID { return p.id }

func (p *loadProg) Init() model.ProgState {
	p.st = perfState{ents: p.ents}
	return &p.st
}

// engineClient adapts a resident engine.Session to loadgen.Client, so the
// pool that drives mlaserve over HTTP drives the bare engine identically.
type engineClient struct {
	sess  *engine.Session
	table [][]model.EntityID // per-slot entity sets, precomputed
	next  atomic.Int64       // txn counter: unique IDs + workload slot

	progs sync.Pool // *loadProg

	restarts atomic.Int64
	// committedInc counts, per entity index, increments from acked
	// transactions only — the schedule-independent expected final state.
	committedInc []atomic.Int64
	entIndex     map[model.EntityID]int
}

func (c *engineClient) OpenSession(context.Context) (string, error) { return "inproc", nil }
func (c *engineClient) CloseSession(string)                         {}

func (c *engineClient) Do(ctx context.Context, _ loadgen.Request) loadgen.Result {
	i := c.next.Add(1)
	p, _ := c.progs.Get().(*loadProg)
	if p == nil {
		p = &loadProg{}
	}
	// The previous ID string escaped into the session's retired record, but
	// retirement finished before the last Submit returned, so its backing
	// buffer is free to reuse; the string conversion below copies.
	p.buf = strconv.AppendInt(append(p.buf[:0], 'l'), i, 36)
	p.id = model.TxnID(p.buf)
	p.ents = c.table[int(i)%len(c.table)]
	out, err := c.sess.Submit(ctx, p, engine.SubmitOpts{})
	res := loadgen.Result{}
	switch {
	case err != nil:
		res.Status = loadgen.StatusError
		res.ErrDetail = err.Error()
	case out.Committed:
		res.Status = loadgen.StatusAcked
		res.Txn = string(p.id)
		res.LatencyUS = out.Latency.Microseconds()
		for _, x := range p.ents {
			c.committedInc[c.entIndex[x]].Add(1)
		}
	case out.DeadlineExceeded:
		res.Status = loadgen.StatusDeadline
	case out.Canceled:
		res.Status = loadgen.StatusCanceled
	default: // GaveUp: restart budget exhausted, fully rolled back
		res.Status = loadgen.StatusShed
	}
	c.restarts.Add(int64(out.Restarts))
	c.progs.Put(p)
	return res
}

// groupClient adapts the partitioned store (shard.Group) to loadgen.Client,
// so the same pool that drives the resident engine and mlaserve drives the
// sharded store: each arrival becomes a one-unit transaction over its slot's
// entities — a single shot, cross-shard (participant votes and all) whenever
// the slot's entities hash to different homes.
type groupClient struct {
	g     *shard.Group
	table [][]model.EntityID
	next  atomic.Int64

	restarts     atomic.Int64
	committedInc []atomic.Int64
	entIndex     map[model.EntityID]int
}

func (c *groupClient) OpenSession(context.Context) (string, error) { return "inproc", nil }
func (c *groupClient) CloseSession(string)                         {}

func loadInc(v model.Value) (model.Value, string) { return v + 1, "inc" }

func (c *groupClient) Do(ctx context.Context, _ loadgen.Request) loadgen.Result {
	i := c.next.Add(1)
	ents := c.table[int(i)%len(c.table)]
	steps := make([]shard.Step, len(ents))
	for j, x := range ents {
		steps[j] = shard.Step{Entity: x, Apply: loadInc}
	}
	txn := shard.Txn{
		ID:    model.TxnID("l" + strconv.FormatInt(i, 36)),
		Units: []shard.Unit{{Steps: steps}},
	}
	start := time.Now()
	out, err := c.g.Submit(ctx, txn)
	res := loadgen.Result{}
	switch {
	case err != nil && ctx.Err() != nil:
		res.Status = loadgen.StatusCanceled
	case err != nil:
		res.Status = loadgen.StatusError
		res.ErrDetail = err.Error()
	case out.Committed:
		res.Status = loadgen.StatusAcked
		res.Txn = string(txn.ID)
		res.LatencyUS = time.Since(start).Microseconds()
		for _, x := range ents {
			c.committedInc[c.entIndex[x]].Add(1)
		}
	default:
		res.Status = loadgen.StatusShed
	}
	c.restarts.Add(int64(out.Restarts))
	return res
}

// loadWorkload builds the per-slot entity table. "hotspot" funnels every
// transaction through 4 entities; "lowcontention" (default) strides
// loadStepsPerTxn-entity windows over a wide table so only neighbouring
// slots collide.
func loadWorkload(name string) (string, [][]model.EntityID, []model.EntityID) {
	entities := 4096
	if name == "hotspot" {
		entities = 4
	} else {
		name = "lowcontention"
	}
	ents := make([]model.EntityID, entities)
	for e := range ents {
		ents[e] = model.EntityID(fmt.Sprintf("x%04d", e))
	}
	slots := entities
	if slots > 1024 {
		slots = 1024
	}
	table := make([][]model.EntityID, slots)
	for i := range table {
		set := make([]model.EntityID, loadStepsPerTxn)
		for j := range set {
			set[j] = ents[(i*loadStepsPerTxn+j)%entities]
		}
		table[i] = set
	}
	return name, table, ents
}

// loadShape resolves the cell's rate, transaction count, and worker bound
// from the Config defaults.
func loadShape(cfg Config) (rate float64, txns, workers int) {
	rate = cfg.Rate
	dur := cfg.Duration
	if rate <= 0 {
		if cfg.Quick {
			rate = loadQuickRate
		} else {
			rate = loadDefaultRate
		}
	}
	if dur <= 0 {
		if cfg.Quick {
			dur = loadQuickDuration
		} else {
			dur = loadDefaultDuration
		}
	}
	txns = cfg.Txns
	if txns <= 0 {
		txns = int(rate * dur.Seconds())
		if txns < 1 {
			txns = 1
		}
	}
	workers = cfg.Workers
	if workers <= 0 {
		workers = 32
	}
	return rate, txns, workers
}

// runLoadCell drives one cell through the pool and folds the pool report
// into a LoadCell. measureAllocs wraps the run in ReadMemStats (in-process
// cells only — over HTTP the allocations worth counting are the server's).
func runLoadCell(ctx context.Context, cfg Config, client loadgen.Client, workload, sid string, rate float64, txns, workers int, measureAllocs bool) (*LoadCell, error) {
	mode := "open"
	if cfg.Closed {
		mode = "closed"
	}
	mk := func(i int) loadgen.Request {
		return loadgen.Request{Session: sid, Kind: "transfer"}
	}
	pool := &loadgen.Pool{Client: client, Workers: workers}
	var before, after runtime.MemStats
	if measureAllocs {
		runtime.ReadMemStats(&before)
	}
	start := time.Now()
	var arrivals <-chan loadgen.Arrival
	if cfg.Closed {
		arrivals = loadgen.ClosedLoop(ctx, txns, mk)
	} else {
		arrivals = loadgen.OpenLoop(ctx, loadgen.Wall, txns, rate, rand.New(rand.NewSource(cfg.Seed)), mk)
	}
	pr := pool.Run(ctx, arrivals)
	elapsed := time.Since(start)
	if measureAllocs {
		runtime.ReadMemStats(&after)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bench: load: %w", err)
	}
	if pr.Errors > 0 {
		return nil, fmt.Errorf("bench: load: %d errors (samples: %v)", pr.Errors, pr.ErrorSamples)
	}
	cell := &LoadCell{
		Workload:  workload,
		Mode:      mode,
		RateTPS:   rate,
		Workers:   workers,
		Txns:      txns,
		Committed: pr.Acked,
		P50US:     pr.Latency.Percentile(50) / 1000,
		P99US:     pr.Latency.Percentile(99) / 1000,
		P999US:    pr.Latency.Percentile(99.9) / 1000,
		MaxUS:     pr.Latency.Max() / 1000,
		SLOP99US:  cfg.SLOP99.Microseconds(),
		ElapsedUS: elapsed.Microseconds(),
	}
	if cfg.Closed {
		cell.RateTPS = 0 // closed loop has no offered rate
	}
	if elapsed > 0 {
		cell.ThroughputTPS = float64(pr.Acked) / elapsed.Seconds()
	}
	cell.SLOMet = cell.SLOP99US == 0 || cell.P99US <= cell.SLOP99US
	if measureAllocs && pr.Acked > 0 {
		cell.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(pr.Acked)
	}
	return cell, nil
}

// LoadRun executes one open-loop (or, with cfg.Closed, closed-loop) load
// cell against an in-process engine session over a volatile store and the
// sharded 2PL control — the fast path the allocation budget is pinned on.
func LoadRun(ctx context.Context, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = cfg.ctx()
	}
	rate, txns, workers := loadShape(cfg)
	name, table, ents := loadWorkload(cfg.Workload)

	init := make(map[model.EntityID]model.Value, len(ents))
	entIndex := make(map[model.EntityID]int, len(ents))
	for i, x := range ents {
		init[x] = 0
		entIndex[x] = i
	}
	if cfg.Shards > 1 {
		return loadRunSharded(ctx, cfg, name, table, ents, init, entIndex, rate, txns, workers)
	}
	store := engine.NewVolatileStore(init)
	sess := engine.NewSession(engine.Config{Seed: cfg.Seed}, sched.NewShardedTwoPhase(16), nil, store)
	defer sess.Close()

	client := &engineClient{
		sess:         sess,
		table:        table,
		committedInc: make([]atomic.Int64, len(ents)),
		entIndex:     entIndex,
	}
	cell, err := runLoadCell(ctx, cfg, client, name, "inproc", rate, txns, workers, true)
	if err != nil {
		return nil, err
	}
	cell.Restarts = int(client.restarts.Load())

	// Equivalence gate: increments commute, so the store must hold exactly
	// the acked increment counts — any schedule the engine chose included.
	equiv := true
	if err := sess.Drain(ctx); err != nil {
		equiv = false
	} else {
		final := store.Values()
		for i, x := range ents {
			if final[x] != model.Value(client.committedInc[i].Load()) {
				equiv = false
			}
		}
	}
	return &Report{
		Schema:        Schema,
		Kind:          "load",
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		EquivalenceOK: equiv,
		Load:          []LoadCell{*cell},
	}, nil
}

// loadRunSharded is LoadRun's partitioned-store variant (cfg.Shards > 1):
// the same Poisson pool and CO-safe latency discipline over a shard.Group
// instead of the single resident engine, with the same commutative-
// increment equivalence gate over the merged shard states. The cell and the
// report carry the shard count, so the bench gate regresses sharded cells
// against their own lineage.
func loadRunSharded(ctx context.Context, cfg Config, name string, table [][]model.EntityID, ents []model.EntityID, init map[model.EntityID]model.Value, entIndex map[model.EntityID]int, rate float64, txns, workers int) (*Report, error) {
	g := shard.NewGroup(shard.GroupConfig{Shards: cfg.Shards}, init)
	client := &groupClient{
		g:            g,
		table:        table,
		committedInc: make([]atomic.Int64, len(ents)),
		entIndex:     entIndex,
	}
	cell, err := runLoadCell(ctx, cfg, client, name, "inproc", rate, txns, workers, true)
	if err != nil {
		return nil, err
	}
	cell.Shards = cfg.Shards
	cell.Restarts = int(client.restarts.Load())

	// Same equivalence gate as the unsharded cell: increments commute, so
	// the merged shard states must hold exactly the acked increment counts.
	// Submit is synchronous (a shot's votes are collected before it
	// returns), so there is nothing to drain.
	equiv := true
	final := g.Values()
	for i, x := range ents {
		if final[x] != model.Value(client.committedInc[i].Load()) {
			equiv = false
		}
	}
	return &Report{
		Schema:        Schema,
		Kind:          "load",
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		Shards:        cfg.Shards,
		EquivalenceOK: equiv,
		Load:          []LoadCell{*cell},
	}, nil
}

// LoadRunHTTP executes the same cell against a running mlaserve at
// baseURL, over real HTTP through the pooled-transport client. Allocation
// and equivalence accounting are server-side concerns there, so the cell
// reports throughput and CO-safe latency only.
func LoadRunHTTP(ctx context.Context, baseURL string, cfg Config) (*Report, error) {
	if ctx == nil {
		ctx = cfg.ctx()
	}
	rate, txns, workers := loadShape(cfg)
	hc := loadgen.NewHTTPClient(baseURL, nil)
	sid, err := hc.OpenSession(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: load: open session on %s: %w", baseURL, err)
	}
	defer hc.CloseSession(sid)
	cell, err := runLoadCell(ctx, cfg, hc, "serve", sid, rate, txns, workers, false)
	if err != nil {
		return nil, err
	}
	return &Report{
		Schema:        Schema,
		Kind:          "load",
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		EquivalenceOK: true,
		Load:          []LoadCell{*cell},
	}, nil
}
