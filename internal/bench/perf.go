// Perf is the engine performance harness behind `mlabench -perf` and E19:
// it runs hot-spot and low-contention increment workloads on the real
// concurrent engine in two configurations —
//
//   - baseline: the "unoptimized path" — wound-wait 2PL over a SINGLE lock
//     stripe, commits made durable one group at a time with a device sync
//     each, performed under the engine mutex;
//   - optimized: the tentpole — 16 lock stripes with Request outside the
//     engine mutex, commits batched by the WAL group-commit pipeline with
//     one sync per flush, acknowledged off the engine's critical path;
//
// sweeping GOMAXPROCS, and measuring throughput, commit-latency order
// statistics, device syncs per commit, and allocations per transaction.
// The device is simulated with a fixed per-sync delay (a fast SSD's fsync)
// so durability cost is explicit and identical for both configurations.
//
// Safety is asserted, not assumed: the workloads are commutative
// (increments), so every schedule that commits all transactions must reach
// the same final state. Each run is checked against the arithmetically
// expected values and against its sibling configuration at the equal seed;
// any divergence fails the report (EquivalenceOK=false), which `mlabench
// -perf` and the nightly perf job turn into a nonzero exit.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"mla/internal/engine"
	"mla/internal/fault"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/telemetry"
	"mla/internal/wal"
)

// perfSyncDelay simulates the device's per-sync latency; perfFlushEvery is
// the pipeline's flush window (must comfortably exceed the sync delay so
// flushes never queue behind each other).
const (
	perfSyncDelay  = 300 * time.Microsecond
	perfFlushEvery = 400 * time.Microsecond
)

// perfProg increments each of its entities once, in order. Increments
// commute, which is what makes cross-configuration equivalence checkable
// on a nondeterministic engine: any schedule committing every program
// yields exactly init + per-entity increment counts.
type perfProg struct {
	id   model.TxnID
	ents []model.EntityID
	st   perfState
}

func (p *perfProg) ID() model.TxnID { return p.id }

// Init recycles the program-owned state: a transaction's attempts are
// sequential (the engine rolls an attempt fully back before restarting), so
// one state per program suffices and stepping allocates nothing — a tuned
// client program is part of the workload the allocation budget measures.
func (p *perfProg) Init() model.ProgState {
	p.st = perfState{ents: p.ents}
	return &p.st
}

// perfState is a pointer state mutated in place: Apply returns the same
// ProgState value, so stepping a transaction re-boxes nothing. It is shared
// by the perf sweep's perfProg and the load cell's loadProg.
type perfState struct {
	ents []model.EntityID
	idx  int
}

func (s *perfState) Next() (model.EntityID, bool) {
	if s.idx < len(s.ents) {
		return s.ents[s.idx], true
	}
	return "", false
}

func (s *perfState) Apply(v model.Value) (model.Value, string, model.ProgState) {
	s.idx++
	return v + 1, "inc", s
}

// perfWorkload is one generated workload plus its schedule-independent
// expected outcome.
type perfWorkload struct {
	name  string
	progs []model.Program
	init  map[model.EntityID]model.Value
	want  map[model.EntityID]model.Value
}

// genPerfWorkload strides txns of k steps over the given entity count: a
// small count makes a hot spot (every transaction collides), a large one
// leaves only incidental overlap between neighbours.
func genPerfWorkload(name string, txns, k, entities int) perfWorkload {
	w := perfWorkload{
		name: name,
		init: make(map[model.EntityID]model.Value),
		want: make(map[model.EntityID]model.Value),
	}
	for e := 0; e < entities; e++ {
		x := model.EntityID(fmt.Sprintf("x%03d", e))
		w.init[x] = 100
		w.want[x] = 100
	}
	for i := 0; i < txns; i++ {
		p := &perfProg{id: model.TxnID(fmt.Sprintf("t%03d", i))}
		for j := 0; j < k; j++ {
			x := model.EntityID(fmt.Sprintf("x%03d", (i*k+j)%entities))
			p.ents = append(p.ents, x)
			w.want[x]++
		}
		w.progs = append(w.progs, p)
	}
	return w
}

// syncWALStore is the unbatched durability discipline: every commit group
// becomes durable individually, paying one device sync before the commit
// is acknowledged — and, because the engine calls CommitGroup under its
// mutex, stalling every worker for the sync. This is the baseline the
// group-commit pipeline is measured against.
type syncWALStore struct{ db *wal.DB }

func (s syncWALStore) Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) (model.Step, error) {
	return s.db.Perform(t, seq, x, f)
}
func (s syncWALStore) Abort(set map[model.TxnID]bool) error { return s.db.Abort(set) }
func (s syncWALStore) CommitGroup(ids []model.TxnID) {
	s.db.CommitGroup(ids)
	s.db.Sync()
}
func (s syncWALStore) Values() map[model.EntityID]model.Value { return s.db.Values() }

// PerfRun executes the full sweep (the Kind "perf" report behind
// `mlabench -perf` and BENCH_4.json). Telemetry, when configured, attaches
// a per-cell engine.TelemetryObserver (spans for every lock wait, commit
// group, …), folds each cell's WAL counters into the registry, and appends
// a small crash-recovery cell so the exported trace also contains recovery
// spans. PerfRun mutates GOMAXPROCS during the run and restores it before
// returning.
func PerfRun(ctx context.Context, opts Config) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	procs := opts.Procs
	if len(procs) == 0 {
		if opts.Quick {
			procs = []int{1, 8}
		} else {
			procs = []int{1, 2, 4, 8}
		}
	}
	txns, steps := 64, 6
	if opts.Quick {
		txns = 24
	}
	workloads := []perfWorkload{
		// Hot spot: every transaction fights over 4 entities.
		genPerfWorkload("hotspot", txns, steps, 4),
		// Low contention: only neighbouring transactions overlap.
		genPerfWorkload("lowcontention", txns, steps, txns*3),
	}
	rep := &Report{
		Schema:          Schema,
		Kind:            "perf",
		Seed:            opts.Seed,
		Quick:           opts.Quick,
		SyncDelayUS:     perfSyncDelay.Microseconds(),
		FlushIntervalUS: perfFlushEvery.Microseconds(),
		EquivalenceOK:   true,
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	maxProcs := procs[len(procs)-1]
	var hotBase, hotOpt float64
	for _, wl := range workloads {
		for _, p := range procs {
			for _, config := range []string{"baseline", "optimized"} {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				m, err := perfCase(ctx, wl, config, p, opts.Seed, opts.Telemetry)
				if err != nil {
					return nil, fmt.Errorf("bench: perf %s/%s@%d: %w", wl.name, config, p, err)
				}
				if m.Committed != m.Txns {
					rep.EquivalenceOK = false
				}
				if wl.name == "hotspot" && p == maxProcs {
					if config == "baseline" {
						hotBase = m.ThroughputTPS
					} else {
						hotOpt = m.ThroughputTPS
					}
				}
				rep.Measurements = append(rep.Measurements, m)
			}
		}
	}
	if hotBase > 0 {
		rep.HotspotSpeedup = hotOpt / hotBase
	}
	if opts.Telemetry != nil {
		rec, err := perfRecoveryCell(ctx, opts.Seed, opts.Telemetry)
		if err != nil {
			return nil, fmt.Errorf("bench: perf recovery cell: %w", err)
		}
		if rec.failed {
			rep.EquivalenceOK = false
		}
		rep.Recovery = &rec.PerfRecovery
	}
	return rep, nil
}

// perfRecoveryResult carries the recovery cell's summary plus its pass/fail
// verdict (a wrong final state flips the report's EquivalenceOK).
type perfRecoveryResult struct {
	PerfRecovery
	failed bool
}

// perfRecoveryCell runs a small crash-recovery plan under the telemetry
// observer: two injected crashes with a torn tail, so the exported trace
// contains crash and recovery spans next to the sweep's lock-wait and
// commit-group spans. The workload is the same commutative increment shape
// as the sweep, so the final state is checkable.
func perfRecoveryCell(ctx context.Context, seed int64, tel *telemetry.Telemetry) (*perfRecoveryResult, error) {
	wl := genPerfWorkload("recovery", 12, 4, 6)
	start := time.Now()
	plan := engine.CrashPlan{
		Cfg: engine.Config{
			Seed:     seed,
			Observer: engine.NewTelemetryObserver(tel, "perf/recovery"),
		},
		Init: wl.init,
		Faults: fault.Plan{
			Seed:         seed,
			CrashAppends: []int64{10, 25},
			TearTail:     1,
		},
		NewControl: func() sched.Control { return sched.NewShardedTwoPhase(16) },
	}
	out, err := engine.RunWithCrashes(ctx, plan, wl.progs)
	if err != nil {
		return nil, err
	}
	rec := &perfRecoveryResult{PerfRecovery: PerfRecovery{
		Crashes:   out.Crashes,
		Rounds:    out.Rounds,
		TornTotal: out.TornTotal,
		Committed: out.Committed,
		ElapsedUS: time.Since(start).Microseconds(),
	}}
	for x, v := range wl.want {
		if out.Final[x] != v {
			rec.failed = true
		}
	}
	if out.Committed != len(wl.progs) {
		rec.failed = true
	}
	return rec, nil
}

// perfCase runs one cell: build the store for the configuration, run the
// engine at the given GOMAXPROCS, verify the outcome against the
// schedule-independent expectation, and fold the counters.
func perfCase(ctx context.Context, wl perfWorkload, config string, procs int, seed int64, tel *telemetry.Telemetry) (PerfMeasurement, error) {
	runtime.GOMAXPROCS(procs)
	medium := wal.NewMedium()
	medium.SyncDelay = perfSyncDelay
	db, err := wal.Open(medium, wl.init)
	if err != nil {
		return PerfMeasurement{}, err
	}
	var store engine.Store
	var pipe *wal.Pipeline
	var control sched.Control
	if config == "optimized" {
		pipe = wal.NewPipeline(db, perfFlushEvery)
		store = engine.NewPipelinedWALStore(pipe)
		control = sched.NewShardedTwoPhase(16)
	} else {
		store = syncWALStore{db: db}
		control = sched.NewShardedTwoPhase(1) // single stripe: the unoptimized lock path
	}
	cfg := engine.Config{Seed: seed}
	if tel != nil {
		cfg.Observer = engine.NewTelemetryObserver(tel, fmt.Sprintf("%s/%s@%d", wl.name, config, procs))
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := engine.RunOnStore(ctx, cfg, wl.progs, control, nil, store)
	if pipe != nil {
		pipe.Close()
	}
	if err != nil {
		return PerfMeasurement{}, err
	}
	runtime.ReadMemStats(&after)
	if tel != nil {
		tel.Metrics.ObserveSnapshot("wal."+config, db.Snapshot())
	}
	// The equivalence assertion: commutative workload, so the optimized and
	// baseline paths must both land exactly on init + increment counts.
	for x, v := range wl.want {
		if res.Final[x] != v {
			return PerfMeasurement{}, fmt.Errorf("final[%s] = %d, want %d: optimized and baseline paths diverged", x, res.Final[x], v)
		}
	}
	lat := res.LatencySummary()
	m := PerfMeasurement{
		Workload:     wl.name,
		Config:       config,
		Procs:        procs,
		Txns:         len(wl.progs),
		Committed:    res.Committed,
		Restarts:     res.Restarts,
		P50LatencyUS: lat.P50,
		P99LatencyUS: lat.P99,
		Fsyncs:       db.Snapshot().Syncs,
		ElapsedUS:    res.Elapsed.Microseconds(),
	}
	if res.Elapsed > 0 {
		m.ThroughputTPS = float64(res.Committed) / res.Elapsed.Seconds()
	}
	if res.Committed > 0 {
		m.FsyncsPerCommit = float64(m.Fsyncs) / float64(res.Committed)
		m.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(res.Committed)
	}
	return m, nil
}

// E19Perf wraps the perf harness as an experiment: a quick sweep whose
// equivalence assertions must hold. Scale >= 2 runs the full sweep.
func E19Perf(o Config) (*metrics.Table, error) {
	rep, err := PerfRun(o.ctx(), NewConfig(WithSeed(o.Seed), WithQuick(o.scale() <= 1), WithTelemetry(o.Telemetry)))
	if err != nil {
		return nil, err
	}
	if !rep.EquivalenceOK {
		return nil, fmt.Errorf("bench: E19: optimized path changed commit outcomes")
	}
	return rep.Table(), nil
}
