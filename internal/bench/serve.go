package bench

import (
	"fmt"
	"time"

	"mla/internal/metrics"
	"mla/internal/serve"
)

// E21Serve runs the mlaserve front-end loop end to end, in process: a
// resident engine behind the HTTP API, an open-loop Poisson load from many
// concurrent client sessions with injected mid-flight disconnects, one
// cell that drains gracefully mid-run and one that is capacity-starved so
// admission control must shed. Each cell's acknowledged transactions are
// audited against the WAL and the recorded history, and the history must
// pass the black-box multilevel-atomicity checker — the serving contract
// (a 200 is a durable, correctly interleaved commit) is what the table
// shows holding under churn.
func E21Serve(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E21: resident front-end under open-loop load (drain + overload)",
		"cell", "offered", "acked", "shed", "draining", "disconnected", "p99", "history", "verdict")
	sc := o.scale()

	cells := []struct {
		name string
		opts serve.SelfTestOptions
	}{
		{"drain", serve.SelfTestOptions{
			Sessions:      25 * sc,
			Txns:          500 * sc,
			Rate:          20,
			AuditPct:      2,
			CreditPct:     8,
			DisconnectPct: 5,
			DrainAfter:    time.Duration(sc) * 500 * time.Millisecond,
			P99SLO:        5 * time.Second,
		}},
		{"overload", serve.SelfTestOptions{
			Sessions: 8 * sc,
			Txns:     120 * sc,
			Rate:     400,
			Overload: true,
		}},
	}
	for _, cell := range cells {
		cell.opts.Config = serve.DefaultConfig()
		cell.opts.Config.Seed = o.Seed
		cell.opts.Config.Telemetry = o.Telemetry
		rep, err := serve.SelfTest(o.ctx(), cell.opts)
		if err != nil {
			return nil, fmt.Errorf("E21 %s: %w", cell.name, err)
		}
		verdict := "PASS"
		if !rep.OK() {
			verdict = fmt.Sprintf("FAIL: %v", rep.Problems)
		}
		hist := "-"
		if rep.History != nil {
			hist = rep.History.Summary()
		}
		// Shed is "client-final/server-total": the server may shed a burst
		// that the client's capped backoff then lands on a later try.
		t.Row(cell.name, rep.Load.Offered, rep.Load.Acked,
			fmt.Sprintf("%d/%d", rep.Load.Shed, rep.Stats.Shed), rep.Load.Draining,
			rep.Load.Canceled, rep.P99.Round(time.Microsecond).String(), hist, verdict)
		if !rep.OK() {
			return nil, fmt.Errorf("E21 %s: %v", cell.name, rep.Problems)
		}
	}
	return t, nil
}
