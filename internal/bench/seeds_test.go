package bench

import "testing"

// TestExperimentsAcrossSeeds runs the soundness-asserting experiments at
// several seeds — the configuration that first exposed the Preventer's
// rule-(b) blind spot (benchmarks iterate seeds, plain tests did not).
func TestExperimentsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed experiment sweep skipped in -short mode")
	}
	for _, id := range []string{"E13", "E14", "E16", "E10", "E12"} {
		for seed := int64(1); seed <= 6; seed++ {
			for _, ex := range All() {
				if ex.ID != id {
					continue
				}
				if _, err := ex.Run(Options{Scale: 1, Seed: seed}); err != nil {
					t.Errorf("%s seed %d: %v", id, seed, err)
				}
			}
		}
	}
}
