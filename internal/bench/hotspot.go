package bench

import (
	"fmt"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/metrics"
	"mla/internal/model"
)

// E16HotSpot measures contention concentration: a fraction of transfers is
// redirected to deposit into one "fee account" every family pays into — the
// classic hot-spot pattern. Serializable controls serialize all hot
// transfers end-to-end; under the banking specification the hot account's
// writers still interleave at their phase boundaries (and family members
// everywhere), so the MLA controls degrade far more gently.
func E16HotSpot(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E16: hot-spot deposit account (banking)",
		"hot%", "control", "throughput", "p99-lat", "waits", "aborts", "vs-2pl")
	sc := o.scale()
	seeds := 3 * sc
	for _, hotPct := range []int{0, 25, 50, 100} {
		base := 0.0
		for _, name := range []string{"2pl", "prevent", "detect"} {
			var th float64
			var p99 int64
			waits, aborts := 0, 0
			for s := 0; s < seeds; s++ {
				wl := bankWorkload(3, 4, 14, 0, o.Seed+int64(s)*19)
				hotify(wl, hotPct)
				c := controlByName(name, wl.Nest, wl.Spec)
				res, err := runSim(o.ctx(), wl.Programs, c, wl.Spec, wl.Init)
				if err != nil {
					return nil, err
				}
				// Conservation including the fee account (outside the
				// generator's world, so checked here).
				var total model.Value
				for _, x := range wl.World.Accounts() {
					total += res.Final[x]
				}
				total += res.Final["acct/fee"]
				if total != wl.World.Total() {
					return nil, fmt.Errorf("E16: %s lost money at hot=%d", name, hotPct)
				}
				if err := res.Exec.Validate(wl.Init); err != nil {
					return nil, fmt.Errorf("E16: %s trace invalid at hot=%d: %w", name, hotPct, err)
				}
				ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("E16: %s non-correctable at hot=%d", name, hotPct)
				}
				th += res.Throughput()
				if v := res.LatencyPercentile(99); v > p99 {
					p99 = v
				}
				waits += res.Control.Waits
				aborts += res.Stats.Aborts
			}
			th /= float64(seeds)
			if name == "2pl" {
				base = th
			}
			ratio := "-"
			if name != "2pl" && base > 0 {
				ratio = metrics.Ratio(th, base)
			}
			t.Row(hotPct, name, th, p99, waits/seeds, aborts/seeds, ratio)
		}
	}
	return t, nil
}

// hotify redirects the second deposit target of hotPct% of transfers to a
// single shared fee account.
func hotify(wl *bank.Workload, hotPct int) {
	const fee = model.EntityID("acct/fee")
	wl.Init[fee] = 0
	i := 0
	for _, p := range wl.Programs {
		tr, ok := wl.Transfer(p.ID())
		if !ok {
			continue
		}
		if i*100 < hotPct*countTransfers(wl) {
			tr.Targets[1] = fee
		}
		i++
	}
}

func countTransfers(wl *bank.Workload) int {
	n := 0
	for _, p := range wl.Programs {
		if _, ok := wl.Transfer(p.ID()); ok {
			n++
		}
	}
	return n
}
