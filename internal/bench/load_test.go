package bench

import (
	"context"
	"testing"
	"time"
)

// TestLoadRunOpenLoopQuick is the open-loop smoke plus the allocation
// regression pin: a small in-process cell must commit every offered
// transaction, pass the commutative-increment equivalence gate, and stay
// under the hot-path allocation budget. The ceiling (25 allocs per committed
// transaction) is the PR's contract — the measured steady state is ~5, so a
// trip here means pooling or interning regressed, not noise. The rate is kept
// modest so the cell also fits under -race on one core.
func TestLoadRunOpenLoopQuick(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := NewConfig(
		WithSeed(3),
		WithRate(5000),
		WithDuration(400*time.Millisecond),
		WithWorkers(8),
	)
	rep, err := LoadRun(ctx, cfg)
	if err != nil {
		t.Fatalf("LoadRun: %v", err)
	}
	if rep.Schema != Schema || rep.Kind != "load" || len(rep.Load) != 1 {
		t.Fatalf("malformed report: schema=%q kind=%q cells=%d", rep.Schema, rep.Kind, len(rep.Load))
	}
	c := rep.Load[0]
	if c.Committed != c.Txns {
		t.Errorf("committed %d of %d offered", c.Committed, c.Txns)
	}
	if !rep.EquivalenceOK {
		t.Error("equivalence gate failed: final state diverged from acked increments")
	}
	if c.P50US <= 0 || c.P99US < c.P50US || c.P999US < c.P99US {
		t.Errorf("non-monotone percentiles: p50=%d p99=%d p99.9=%d µs", c.P50US, c.P99US, c.P999US)
	}
	const allocCeiling = 25
	if c.AllocsPerTxn <= 0 || c.AllocsPerTxn > allocCeiling {
		t.Errorf("allocs/txn %.1f outside (0, %d] — hot-path allocation budget regressed", c.AllocsPerTxn, allocCeiling)
	}
	t.Logf("cell: %d txns, %.0f txn/s, p50=%dµs p99=%dµs, %.1f allocs/txn, %d restarts",
		c.Committed, c.ThroughputTPS, c.P50US, c.P99US, c.AllocsPerTxn, c.Restarts)
}

// TestLoadRunClosedLoop exercises the comparison mode: no offered rate, every
// transaction still committed and equivalent.
func TestLoadRunClosedLoop(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg := NewConfig(WithSeed(4), WithTxns(500), WithWorkers(4), WithClosedLoop(), WithWorkload("hotspot"))
	rep, err := LoadRun(ctx, cfg)
	if err != nil {
		t.Fatalf("LoadRun: %v", err)
	}
	c := rep.Load[0]
	if c.Mode != "closed" || c.RateTPS != 0 {
		t.Errorf("closed cell reported mode=%q rate=%.0f", c.Mode, c.RateTPS)
	}
	if c.Committed != 500 || !rep.EquivalenceOK {
		t.Errorf("committed %d of 500, equivalence %v", c.Committed, rep.EquivalenceOK)
	}
}
