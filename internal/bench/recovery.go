package bench

import (
	"mla/internal/bank"
	"mla/internal/metrics"
	"mla/internal/sim"
)

// E11Recovery quantifies two of the paper's Section 1/6 observations about
// units of recovery and commitment:
//
//   - Commit chaining: under multilevel atomicity a transaction may not be
//     able to commit alone — value dependencies between finished
//     transactions can chain (even cycle), forcing group commits. The
//     serializable baselines always commit groups of exactly 1.
//   - Unit of recovery: the "+pr" rows enable suffix-only rollback to the
//     victim's last class-wide breakpoint (the paper's smaller unit of
//     recovery: "one would probably not want to roll back very long
//     transactions"); the undone-steps column shows the redone work saved.
func E11Recovery(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E11: commit chaining and recovery-unit accounting (sessioned banking, L=4)",
		"control", "commits", "group=1", "group>1", "max-group", "aborts", "partial", "undone-steps")
	sc := o.scale()
	for _, name := range []string{"2pl", "tso", "prevent", "detect", "prevent+pr", "detect+pr"} {
		ctrlName := name
		partial := false
		if cut := len(name) - len("+pr"); cut > 0 && name[cut:] == "+pr" {
			ctrlName, partial = name[:cut], true
		}
		commits, gOne, gMore, gMax, aborts, partials := 0, 0, 0, 0, 0, 0
		var undone int64
		for s := 0; s < 4*sc; s++ {
			p := bank.DefaultSessionParams()
			p.Sessions = 6
			p.SessionLength = 4
			p.Seed = o.Seed + int64(s)*31
			wl := bank.GenerateSessions(p)
			c := controlByName(ctrlName, wl.Nest, wl.Spec)
			cfg := simDefault()
			cfg.PartialRecovery = partial
			res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
			if err != nil {
				return nil, err
			}
			commits += res.Stats.Committed
			for _, g := range res.CommitGroups {
				if g == 1 {
					gOne++
				} else {
					gMore++
				}
				if g > gMax {
					gMax = g
				}
			}
			aborts += res.Stats.Aborts
			partials += res.Stats.PartialRollbacks
			undone += res.Stats.StepsUndone
		}
		t.Row(name, commits, gOne, gMore, gMax, aborts, partials, undone)
	}
	return t, nil
}
