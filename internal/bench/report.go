package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"mla/internal/metrics"
)

// Schema is the versioned identifier every bench artifact carries:
// BENCH_4.json, the open-loop load cells, and BENCH_HISTORY.json entries
// all serialize a Report with this string, so downstream tooling
// (scripts/bench_gate.sh, CI artifact diffing) parses exactly one format.
const Schema = "mla-bench/v1"

// PerfMeasurement is one (workload, configuration, GOMAXPROCS) cell of the
// perf sweep; field names are the BENCH_4.json schema.
type PerfMeasurement struct {
	Workload        string  `json:"workload"`          // "hotspot" | "lowcontention"
	Config          string  `json:"config"`            // "baseline" | "optimized" | "sharded"
	Shards          int     `json:"shards,omitempty"`  // partition count (shardperf cells; 0 = unsharded)
	Procs           int     `json:"gomaxprocs"`        // runtime.GOMAXPROCS during the run
	Txns            int     `json:"txns"`              // transactions offered
	Committed       int     `json:"committed"`         // transactions committed (must equal txns)
	Restarts        int     `json:"restarts"`          // rollback-and-retry count
	ThroughputTPS   float64 `json:"throughput_tps"`    // committed / elapsed
	P50LatencyUS    int64   `json:"latency_p50_us"`    // per-txn begin→durable-commit, median
	P99LatencyUS    int64   `json:"latency_p99_us"`    // …99th percentile
	Fsyncs          int64   `json:"fsyncs"`            // device syncs over the whole run
	FsyncsPerCommit float64 `json:"fsyncs_per_commit"` // the group-commit amortization
	AllocsPerTxn    float64 `json:"allocs_per_txn"`    // heap allocations per committed txn
	ElapsedUS       int64   `json:"elapsed_us"`        // wall clock of the run
	// CrossShardFrac is the fraction of committed transactions that spanned
	// shards and hence paid the multi-shot commit (shardperf cells only).
	CrossShardFrac float64 `json:"cross_shard_frac,omitempty"`
}

// PerfRecovery summarizes the crash-recovery cell that runs alongside the
// sweep when telemetry is enabled, so an exported trace always contains
// recovery spans. It is a separate summary field — not a Measurements row —
// to keep the row schema stable.
type PerfRecovery struct {
	Crashes   int   `json:"crashes"`
	Rounds    int   `json:"rounds"`
	TornTotal int   `json:"torn_total"`
	Committed int   `json:"committed"`
	ElapsedUS int64 `json:"elapsed_us"`
}

// LoadCell is one open- or closed-loop load run against the in-process
// engine (LoadRun) or a served endpoint. Latency percentiles are
// coordinated-omission-safe in open-loop cells: they are measured from each
// transaction's scheduled Poisson arrival, so time spent queued behind a
// stalled server counts.
type LoadCell struct {
	Workload      string  `json:"workload"`         // "lowcontention" | "hotspot"
	Mode          string  `json:"mode"`             // "open" | "closed"
	Shards        int     `json:"shards,omitempty"` // partition count (0 = single resident engine)
	RateTPS       float64 `json:"rate_tps"` // offered arrival rate (open loop)
	Workers       int     `json:"workers"`  // pool worker bound
	Txns          int     `json:"txns"`
	Committed     int     `json:"committed"`
	Restarts      int     `json:"restarts"`
	ThroughputTPS float64 `json:"throughput_tps"`
	P50US         int64   `json:"latency_p50_us"`
	P99US         int64   `json:"latency_p99_us"`
	P999US        int64   `json:"latency_p999_us"`
	MaxUS         int64   `json:"latency_max_us"`
	SLOP99US      int64   `json:"slo_p99_us,omitempty"` // objective, 0 = none
	SLOMet        bool    `json:"slo_met"`              // p99 ≤ objective (true when none set)
	AllocsPerTxn  float64 `json:"allocs_per_txn"`
	ElapsedUS     int64   `json:"elapsed_us"`
}

// Report is the single mla-bench/v1 artifact shared by the perf sweep
// (`mlabench -perf` → BENCH_4.json), the open-loop load cells
// (`mlabench -rate` → load section), and the BENCH_HISTORY.json entries the
// bench gate compares. Kind says which sections are populated.
type Report struct {
	Schema string `json:"schema"` // always Schema ("mla-bench/v1")
	Kind   string `json:"kind"`   // "perf" | "load" | "shardperf"
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// Shards is the partition count the run was configured with (0 =
	// unsharded). Part of the history-matching signature: sharded and
	// unsharded cells gate against their own lineage, never each other.
	Shards int `json:"shards,omitempty"`
	// EquivalenceOK reports that every run reached the schedule-independent
	// expected state — the decision-equivalence gate for every kind.
	EquivalenceOK bool `json:"equivalence_ok"`

	// Perf sweep section (Kind "perf").
	SyncDelayUS     int64             `json:"sync_delay_us,omitempty"`      // simulated device sync latency
	FlushIntervalUS int64             `json:"flush_interval_us,omitempty"`  // pipeline flush window
	HotspotSpeedup  float64           `json:"hotspot_speedup_8p,omitempty"` // optimized/baseline throughput, hotspot @ max procs
	ShardSpeedup    float64           `json:"shard_speedup,omitempty"`      // max-shards/1-shard throughput @ max procs (Kind "shardperf")
	Recovery        *PerfRecovery     `json:"recovery,omitempty"`           // telemetry-only crash-recovery cell
	Measurements    []PerfMeasurement `json:"measurements,omitempty"`

	// Load section (Kind "load").
	Load []LoadCell `json:"load,omitempty"`
}

// PerfReport is the pre-redesign name for Report.
//
// Deprecated: use Report.
type PerfReport = Report

// Table renders the report for terminal output.
func (r *Report) Table() *metrics.Table {
	if r.Kind == "load" {
		tbl := metrics.NewTable("open-loop load: engine under Poisson arrivals (CO-safe latency)",
			"workload", "mode", "rate/s", "workers", "txns", "txns/s", "p50 µs", "p99 µs", "p99.9 µs", "allocs/txn", "slo")
		for _, c := range r.Load {
			slo := "-"
			if c.SLOP99US > 0 {
				if c.SLOMet {
					slo = fmt.Sprintf("≤%dms ok", c.SLOP99US/1000)
				} else {
					slo = fmt.Sprintf("≤%dms MISS", c.SLOP99US/1000)
				}
			}
			tbl.Row(c.Workload, c.Mode, fmt.Sprintf("%.0f", c.RateTPS), c.Workers, c.Txns,
				fmt.Sprintf("%.0f", c.ThroughputTPS), c.P50US, c.P99US, c.P999US,
				fmt.Sprintf("%.0f", c.AllocsPerTxn), slo)
		}
		return tbl
	}
	if r.Kind == "shardperf" {
		tbl := metrics.NewTable("partitioned store: shards × GOMAXPROCS on the shard-affine hot spot",
			"workload", "shards", "procs", "txns/s", "p50 µs", "p99 µs", "cross-shard", "allocs/txn", "restarts")
		for _, m := range r.Measurements {
			tbl.Row(m.Workload, m.Shards, m.Procs, fmt.Sprintf("%.0f", m.ThroughputTPS),
				m.P50LatencyUS, m.P99LatencyUS, fmt.Sprintf("%.2f", m.CrossShardFrac),
				fmt.Sprintf("%.0f", m.AllocsPerTxn), m.Restarts)
		}
		tbl.Row("speedup@max", fmt.Sprintf("%d vs 1", r.Shards), "", fmt.Sprintf("%.2fx", r.ShardSpeedup), "", "", "", "", "")
		return tbl
	}
	tbl := metrics.NewTable("E19 engine perf: striped locks + group commit (sync delay 300µs)",
		"workload", "config", "procs", "txns/s", "p50 µs", "p99 µs", "fsync/commit", "allocs/txn", "restarts")
	for _, m := range r.Measurements {
		tbl.Row(m.Workload, m.Config, m.Procs, fmt.Sprintf("%.0f", m.ThroughputTPS),
			m.P50LatencyUS, m.P99LatencyUS, fmt.Sprintf("%.3f", m.FsyncsPerCommit),
			fmt.Sprintf("%.0f", m.AllocsPerTxn), m.Restarts)
	}
	tbl.Row("hotspot", "speedup@max", "", fmt.Sprintf("%.2fx", r.HotspotSpeedup), "", "", "", "", "")
	if r.Recovery != nil {
		tbl.Row("recovery", fmt.Sprintf("%d crashes", r.Recovery.Crashes), "",
			fmt.Sprintf("%d rounds", r.Recovery.Rounds), "", "", "", "",
			fmt.Sprintf("torn %d", r.Recovery.TornTotal))
	}
	return tbl
}

// WriteJSON serializes the report (the BENCH_4.json artifact).
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
