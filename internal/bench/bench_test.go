package bench

import (
	"context"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment at scale 1 and sanity
// checks the tables. This doubles as the end-to-end regression test for the
// harness: several experiments fail loudly (return an error) when a
// soundness property breaks, e.g. E4's "serializable but not
// MLA-correctable", E5/E7's invariant checks, or E10's sound-preventer
// check.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	for _, ex := range All() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			tbl, err := ex.Run(Options{Scale: 1, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if tbl.Len() == 0 {
				t.Fatal("empty table")
			}
			if tbl.String() == "" {
				t.Fatal("empty rendering")
			}
		})
	}
}

func TestE1NeverDisagrees(t *testing.T) {
	tbl, err := E1Equivalence(Options{Scale: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Every row's "disagree" column (last) must be 0.
	for _, line := range strings.Split(strings.TrimSpace(tbl.String()), "\n")[3:] {
		fields := strings.Fields(line)
		if fields[len(fields)-1] != "0" {
			t.Errorf("disagreement row: %s", line)
		}
	}
}

func TestE2AllExamplesPass(t *testing.T) {
	tbl, err := E2PaperExamples(Options{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tbl.String(), "false\n") {
		// The ok column would read "false" on a failing example.
		for _, line := range strings.Split(tbl.String(), "\n") {
			if strings.HasSuffix(strings.TrimSpace(line), "false") {
				t.Errorf("paper example failed: %s", line)
			}
		}
	}
}

func TestE10ChainDetectsUnsoundness(t *testing.T) {
	ok, err := chainScenarioCorrectable(context.Background(), "prevent")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("sound preventer must admit only correctable executions on the chain")
	}
	ok, err = chainScenarioCorrectable(context.Background(), "prevent-direct")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("the direct-only ablation should admit the non-correctable chain (that is its purpose)")
	}
}

func TestWindowedInterleaveCompletes(t *testing.T) {
	wl := bankWorkload(2, 3, 4, 1, 3)
	rng := Options{Seed: 5}.rng()
	e, err := windowedInterleave(wl.Programs, copyInit(wl.Init), rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(wl.Init); err != nil {
		t.Fatal(err)
	}
	// Zero switching yields a serial execution.
	e0, err := windowedInterleave(wl.Programs, copyInit(wl.Init), rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var last string
	for _, s := range e0 {
		id := string(s.Txn)
		if id != last && seen[id] {
			t.Fatal("switch%=0 must produce a serial execution")
		}
		seen[id] = true
		last = id
	}
}

func TestControlByNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown control must panic")
		}
	}()
	controlByName("bogus", nil, nil)
}
