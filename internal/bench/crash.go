package bench

import (
	"fmt"

	"mla/internal/coherent"
	"mla/internal/metrics"
	"mla/internal/sched"
	"mla/internal/sim"
)

// E14CrashRecovery runs the banking workload through injected crashes on
// the WAL-backed store: committed transfers survive each crash (never
// redone), in-flight ones restart, and the stitched execution of committed
// steps remains value-consistent and Theorem-2 correctable. The experiment
// sweeps the crash count; redone transactions measure the work lost to
// volatility.
func E14CrashRecovery(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E14: crash-recovery on the WAL-backed store (banking, Preventer)",
		"crashes", "rounds", "committed", "redone-txns", "conserved", "audits-exact", "correctable")
	sc := o.scale()
	for _, crashes := range [][]int64{nil, {150}, {100, 250}, {80, 160, 240, 320}} {
		rounds, committed, redone := 0, 0, 0
		conserved, exact, correct := true, true, true
		for s := 0; s < 2*sc; s++ {
			wl := bankWorkload(3, 4, 12, 1, o.Seed+int64(s)*53)
			plan := sim.CrashPlan{
				Cfg:     sim.DefaultConfig(),
				Spec:    wl.Spec,
				Init:    wl.Init,
				Crashes: crashes,
				NewControl: func() sched.Control {
					return sched.NewPreventer(wl.Nest, wl.Spec)
				},
			}
			res, err := sim.RunWithCrashes(plan, wl.Programs)
			if err != nil {
				return nil, fmt.Errorf("E14 crashes=%v: %w", crashes, err)
			}
			rounds += res.Rounds
			committed += res.Committed
			redone += res.RedoneTxns
			inv := wl.Check(res.Exec, res.Final)
			conserved = conserved && inv.ConservationOK && inv.TraceValid == nil
			exact = exact && inv.AuditsInexact == 0
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				return nil, err
			}
			correct = correct && ok
		}
		if !conserved || !exact || !correct {
			return nil, fmt.Errorf("E14 crashes=%v: invariants violated (conserved=%v exact=%v correctable=%v)",
				crashes, conserved, exact, correct)
		}
		t.Row(len(crashes), rounds, committed, redone, conserved, exact, correct)
	}
	return t, nil
}
