package bench

import (
	"fmt"
	"time"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/serial"
)

// randomScripted builds nTxn scripted transactions of nSteps random
// accesses over nEnt entities.
func randomScripted(o Options, rng interface{ Intn(int) int }, nTxn, nSteps, nEnt int) []model.Program {
	progs := make([]model.Program, nTxn)
	for i := 0; i < nTxn; i++ {
		ops := make([]model.Op, nSteps)
		for j := range ops {
			x := model.EntityID(fmt.Sprintf("x%02d", rng.Intn(nEnt)))
			ops[j] = model.Add(x, model.Value(1+rng.Intn(5)))
		}
		progs[i] = &model.Scripted{Txn: model.TxnID(fmt.Sprintf("t%02d", i)), Ops: ops}
	}
	return progs
}

// E1Equivalence measures agreement of the k=2 Theorem 2 test with the
// classical serialization-graph test on random interleavings. The paper's
// Section 4.3 claims exact coincidence, so the "disagree" column must be 0.
func E1Equivalence(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E1: k=2 correctability vs conflict serializability",
		"txns", "steps", "entities", "trials", "serializable", "agree", "disagree")
	rng := o.rng()
	trials := 150 * o.scale()
	for _, cfg := range [][3]int{{3, 3, 4}, {4, 4, 4}, {5, 5, 6}, {4, 6, 3}} {
		nTxn, nSteps, nEnt := cfg[0], cfg[1], cfg[2]
		agree, disagree, serOK := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			progs := randomScripted(o, rng, nTxn, nSteps, nEnt)
			n := nest.New(2)
			for _, p := range progs {
				n.Add(p.ID())
			}
			e, err := model.RandomInterleave(progs, map[model.EntityID]model.Value{}, o.rng())
			if err != nil {
				return nil, err
			}
			// Reseed derived rng per trial for variety.
			for i := 0; i < trial%7; i++ {
				rng.Intn(2)
			}
			mla, err := coherent.Correctable(e, n, breakpoint.Uniform{Levels: 2, C: 2})
			if err != nil {
				return nil, err
			}
			ser := serial.Serializable(e)
			if ser {
				serOK++
			}
			if mla == ser {
				agree++
			} else {
				disagree++
			}
		}
		t.Row(nTxn, nSteps, nEnt, trials, serOK, agree, disagree)
	}
	return t, nil
}

// E2PaperExamples re-evaluates the paper's worked examples and reports
// expected versus computed for each.
func E2PaperExamples(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E2: the paper's worked examples",
		"example", "expected", "got", "ok")
	row := func(name, want, got string) {
		t.Row(name, want, got, want == got)
	}

	// --- Subsection 4.2: R1, R2, R3 over the abstract 3-level instance.
	n := nest.New(3)
	n.Add("t1", "g12")
	n.Add("t2", "g12")
	n.Add("t3", "g3")
	descs := make(map[model.TxnID]*breakpoint.Description)
	counts := make(map[model.TxnID]int)
	for _, id := range []model.TxnID{"t1", "t2", "t3"} {
		d := breakpoint.NewDescription(3, 4)
		d.SetCut(1, 3)
		d.SetCut(2, 2)
		d.SetCut(3, 3)
		descs[id] = d
		counts[id] = 4
	}
	inst, err := coherent.NewAbstract(n, counts, descs)
	if err != nil {
		return nil, err
	}
	gi := func(txn model.TxnID, seq int) int {
		g, _ := inst.Index(txn, seq)
		return g
	}
	r1 := [][2]int{{gi("t1", 2), gi("t2", 2)}, {gi("t2", 2), gi("t1", 3)}, {gi("t1", 4), gi("t3", 1)}, {gi("t2", 4), gi("t3", 3)}}
	r2 := [][2]int{{gi("t1", 1), gi("t2", 2)}, {gi("t2", 1), gi("t1", 3)}, {gi("t1", 1), gi("t3", 1)}, {gi("t2", 1), gi("t3", 3)}}
	r3 := [][2]int{{gi("t1", 1), gi("t2", 2)}, {gi("t2", 1), gi("t1", 3)}, {gi("t3", 1), gi("t1", 1)}, {gi("t2", 1), gi("t3", 3)}}
	relR1 := inst.Closure(r1)
	relR2 := inst.Closure(r2)
	relR3 := inst.Closure(r3)
	row("closure(R1) is a partial order", "true", fmt.Sprint(relR1.Acyclic()))
	row("closure(R2) is a partial order", "true", fmt.Sprint(relR2.Acyclic()))
	eq := relR1.Pairs() == relR2.Pairs()
	for a := 0; a < inst.N() && eq; a++ {
		for b := 0; b < inst.N(); b++ {
			if relR1.Has(a, b) != relR2.Has(a, b) {
				eq = false
				break
			}
		}
	}
	row("closure(R2) equals closure(R1)", "true", fmt.Sprint(eq))
	row("closure(R3) contains a cycle", "true", fmt.Sprint(!relR3.Acyclic()))

	// Lemma 1 on R1.
	perm, err := relR1.ExtendTotal()
	ok := err == nil && inst.IsCoherentTotalOrder(perm)
	row("Lemma 1 extension of R1 is a coherent total order", "true", fmt.Sprint(ok))

	// --- Section 4.3/5.2 banking executions.
	bn, bspec, progs, init := benchBankFixture()
	run := func(order []int) (model.Execution, error) {
		vals := copyInit(init)
		return model.Interleave(progs, vals, order, false)
	}
	atomicOrder := []int{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 2, 2, 3, 3, 3}
	e, err := run(atomicOrder)
	if err != nil {
		return nil, err
	}
	res, err := coherent.CheckExecution(e, bn, bspec)
	if err != nil {
		return nil, err
	}
	row("phase-interleaved transfers are multilevel atomic", "true", fmt.Sprint(res.Atomic))
	row("...but not conflict serializable", "false", fmt.Sprint(serial.Serializable(e)))

	correctableOrder := []int{3, 2, 2, 3, 3, 2, 2, 0, 0, 0, 0, 1, 1, 1, 1}
	e2, err := run(correctableOrder)
	if err != nil {
		return nil, err
	}
	res2, err := coherent.CheckExecution(e2, bn, bspec)
	if err != nil {
		return nil, err
	}
	row("audit split by t3 is correctable", "true", fmt.Sprint(res2.Correctable))
	row("...though not atomic as recorded", "false", fmt.Sprint(res2.Atomic))

	badOrder := []int{3, 0, 0, 3, 3, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	e3, err := run(badOrder)
	if err != nil {
		return nil, err
	}
	bad, err := coherent.Correctable(e3, bn, bspec)
	if err != nil {
		return nil, err
	}
	row("audit split across t1's writes is not correctable", "false", fmt.Sprint(bad))
	return t, nil
}

// benchBankFixture mirrors the Section 5.2 fixture used in the tests.
func benchBankFixture() (*nest.Nest, breakpoint.Spec, []model.Program, map[model.EntityID]model.Value) {
	mk := func(id model.TxnID, w1, w2, d1, d2 model.EntityID) *model.Scripted {
		return &model.Scripted{Txn: id, Ops: []model.Op{
			model.Add(w1, -10), model.Add(w2, -10), model.Add(d1, 10), model.Add(d2, 10),
		}}
	}
	progs := []model.Program{
		mk("t1", "A", "B", "C", "D"),
		mk("t2", "A", "C", "E", "G"),
		mk("t3", "B", "D", "F", "H"),
		&model.Scripted{Txn: "a", Ops: []model.Op{model.Read("A"), model.Read("B"), model.Read("C")}},
	}
	n := nest.New(4)
	n.Add("t1", "cust", "f1")
	n.Add("t2", "cust", "f2")
	n.Add("t3", "cust", "f3")
	n.Add("a", "audit", "audit")
	spec := breakpoint.Func{Levels: 4, Fn: func(t model.TxnID, prefix []model.Step) int {
		if t == "a" {
			return 4
		}
		if len(prefix) == 2 {
			return 2
		}
		return 3
	}}
	init := map[model.EntityID]model.Value{}
	for _, x := range []model.EntityID{"A", "B", "C", "D", "E", "F", "G", "H"} {
		init[x] = 100
	}
	return n, spec, progs, init
}

// E3Extension exercises Lemma 1 at scale: random correctable executions
// across k and n, each extended to a coherent total order and re-verified.
func E3Extension(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E3: Lemma 1 extension of coherent partial orders",
		"k", "txns", "steps/txn", "correctable", "extended", "verified", "µs/extension")
	rng := o.rng()
	for _, cfg := range []struct{ k, txns, steps int }{
		{2, 4, 4}, {3, 4, 6}, {4, 6, 6}, {5, 6, 8},
	} {
		trials := 40 * o.scale()
		correctable, extended, verified := 0, 0, 0
		var elapsed time.Duration
		for trial := 0; trial < trials; trial++ {
			n := nest.New(cfg.k)
			progs := make([]model.Program, cfg.txns)
			for i := range progs {
				ops := make([]model.Op, cfg.steps)
				for j := range ops {
					ops[j] = model.Add(model.EntityID(fmt.Sprintf("x%d", rng.Intn(cfg.txns+2))), 1)
				}
				id := model.TxnID(fmt.Sprintf("t%02d", i))
				progs[i] = &model.Scripted{Txn: id, Ops: ops}
				mid := make([]string, cfg.k-2)
				for l := range mid {
					mid[l] = fmt.Sprintf("L%d-%d", l, (i>>uint(l))&1)
				}
				n.Add(id, mid...)
			}
			spec := breakpoint.Func{Levels: cfg.k, Fn: func(_ model.TxnID, prefix []model.Step) int {
				return 2 + len(prefix)%(cfg.k-1)
			}}
			// Gentle interleaving (10% switch rate): uniform merges are
			// almost never correctable at k ≥ 4, which would leave the
			// extension unexercised.
			e, err := windowedInterleave(progs, map[model.EntityID]model.Value{}, rng, 10)
			if err != nil {
				return nil, err
			}
			res, err := coherent.CheckExecution(e, n, spec)
			if err != nil {
				return nil, err
			}
			if !res.Correctable {
				continue
			}
			correctable++
			start := time.Now()
			w, ok := res.Witness()
			elapsed += time.Since(start)
			if !ok {
				continue
			}
			extended++
			if coherent.VerifyWitness(e, w, n, spec) == nil {
				verified++
			}
		}
		var us float64
		if extended > 0 {
			us = float64(elapsed.Microseconds()) / float64(extended)
		}
		t.Row(cfg.k, cfg.txns, cfg.steps, correctable, extended, verified, us)
	}
	return t, nil
}

// E4CycleRate scores identical interleavings of the banking programs under
// both criteria across a contention sweep: the switch probability controls
// how often the interleaving generator changes transactions mid-flight
// (0 = serial, 1 = uniformly random merge). The paper predicts the MLA
// rejection rate is bounded by the serializability rejection rate ("fewer
// cycles … leading to fewer rollbacks"); the gap is the concurrency MLA
// buys.
func E4CycleRate(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("E4: rejected interleavings, serializability vs multilevel atomicity",
		"switch%", "trials", "ser-rejected%", "mla-rejected%", "mla-only-admitted%")
	rng := o.rng()
	trials := 80 * o.scale()
	for _, switchPct := range []int{3, 6, 12, 25, 50} {
		serRej, mlaRej, mlaOnly := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			wl := bankWorkload(2, 4, 8, 1, int64(trial)+o.Seed*1000)
			e, err := windowedInterleave(wl.Programs, copyInit(wl.Init), rng, switchPct)
			if err != nil {
				return nil, err
			}
			ser := serial.Serializable(e)
			mla, err := coherent.Correctable(e, wl.Nest, wl.Spec)
			if err != nil {
				return nil, err
			}
			if !ser {
				serRej++
			}
			if !mla {
				mlaRej++
			}
			if mla && !ser {
				mlaOnly++
			}
			if !mla && ser {
				return nil, fmt.Errorf("E4: serializable execution rejected by MLA (impossible)")
			}
		}
		pct := func(x int) float64 { return 100 * float64(x) / float64(trials) }
		t.Row(switchPct, trials, pct(serRej), pct(mlaRej), pct(mlaOnly))
	}
	return t, nil
}

// windowedInterleave runs the programs to completion, switching away from
// the current transaction with probability switchPct% per step — a model of
// low-to-high context-switch contention.
func windowedInterleave(programs []model.Program, vals map[model.EntityID]model.Value, rng interface{ Intn(int) int }, switchPct int) (model.Execution, error) {
	states := make([]model.ProgState, len(programs))
	seqs := make([]int, len(programs))
	var live []int
	for i, p := range programs {
		states[i] = p.Init()
		if _, ok := states[i].Next(); ok {
			live = append(live, i)
		}
	}
	var e model.Execution
	cur := -1
	for len(live) > 0 {
		if cur < 0 || rng.Intn(100) < switchPct || !isLive(live, cur) {
			cur = live[rng.Intn(len(live))]
		}
		x, _ := states[cur].Next()
		seqs[cur]++
		before := vals[x]
		after, label, next := states[cur].Apply(before)
		vals[x] = after
		e = append(e, model.Step{Txn: programs[cur].ID(), Seq: seqs[cur], Entity: x, Label: label, Before: before, After: after})
		states[cur] = next
		if _, ok := next.Next(); !ok {
			for i, li := range live {
				if li == cur {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
			cur = -1
		}
	}
	return e, nil
}

func isLive(live []int, i int) bool {
	for _, l := range live {
		if l == i {
			return true
		}
	}
	return false
}
