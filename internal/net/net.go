// Package net is the in-simulator message substrate for the distributed
// prevention control (internal/dist). The paper's Section 6 setting is a
// network of processors with entities resident at nodes and transactions
// migrating between them; this package gives that setting a real — if
// simulated — transport: a Bus of per-processor links carrying typed
// messages (boundary announcements, finish + acknowledgment, heartbeats,
// deadlock probes, anti-entropy sync), delivered on the simulated clock
// after a configurable one-hop latency.
//
// The bus is deliberately unreliable. A fault Policy may drop any message
// or add per-message latency (which reorders it behind later traffic);
// named partitions block every message between processors on different
// sides until healed; a crashed processor loses its in-flight inbound
// messages and sends/receives nothing until restarted. Protocol-level
// robustness (retransmission, acknowledgments, failure detection, resync)
// is the sender's job — see internal/dist — exactly as on a real network.
//
// Determinism: delivery order is a pure function of (send order, latency,
// policy verdicts). Messages mature in (arrival time, send sequence) order,
// and a seeded fault.Injector supplies reproducible policy verdicts, so a
// failing chaos run replays exactly.
package net

import (
	"fmt"
	"sort"

	"mla/internal/model"
	"mla/internal/telemetry"
)

// Kind is the message type.
type Kind uint8

const (
	// Heartbeat is the failure detector's periodic liveness broadcast.
	Heartbeat Kind = iota
	// Boundary announces a transaction's latest breakpoint positions
	// (Bound, per level). Loss is safe: a missing announcement only
	// under-reports progress, making remote schedulers wait longer.
	Boundary
	// Finish announces that a transaction completed all its steps. Unlike
	// boundaries, a lost finish would strand remote waiters, so the sender
	// retransmits until it receives a FinishAck.
	Finish
	// FinishAck acknowledges a Finish back to its origin.
	FinishAck
	// Probe is an edge-chasing deadlock probe (Chandy–Misra–Haas style):
	// it chases the waits-for edge toward Txn, carrying the initiator and
	// the youngest transaction seen along the path.
	Probe
	// SyncRequest asks a peer for its full view state (anti-entropy),
	// sent on rejoin after a crash and on first contact after suspicion.
	SyncRequest
	// SyncReply carries a snapshot of the sender's view state.
	SyncReply
	// LockRequest asks the shard processor owning Entity for its exclusive
	// lock on behalf of Txn (internal/shard). Unreliable; the coordinator
	// retransmits until granted or the requester aborts.
	LockRequest
	// LockGrant tells a coordinator its LockRequest succeeded. Re-granting
	// an already-held lock is idempotent, so retransmitted requests are
	// harmless.
	LockGrant
	// ShotPrepare opens one shot of the multi-shot commit for Txn: it asks
	// a participant shard to vote on committing the current
	// breakpoint-delimited unit (internal/shard).
	ShotPrepare
	// ShotVote is a participant's commit vote for one shot back to the
	// coordinator.
	ShotVote
)

func (k Kind) String() string {
	switch k {
	case Heartbeat:
		return "heartbeat"
	case Boundary:
		return "boundary"
	case Finish:
		return "finish"
	case FinishAck:
		return "finish-ack"
	case Probe:
		return "probe"
	case SyncRequest:
		return "sync-request"
	case SyncReply:
		return "sync-reply"
	case LockRequest:
		return "lock-request"
	case LockGrant:
		return "lock-grant"
	case ShotPrepare:
		return "shot-prepare"
	case ShotVote:
		return "shot-vote"
	}
	return "unknown"
}

// SyncEntry is one transaction's worth of view state in a SyncReply.
type SyncEntry struct {
	Epoch    int
	Bound    []int // latest boundary per level; index 0 unused
	Finished bool
}

// Message is the one wire format: a flat struct whose populated fields
// depend on Kind. Epoch fields fence incarnations — a transaction's epoch
// is bumped on every (re)start, and receivers discard messages about dead
// incarnations, so a stale in-flight announcement can never resurrect
// progress a rollback undid.
type Message struct {
	Kind   Kind
	From   int
	To     int
	SentAt int64

	// Boundary, Finish, FinishAck, Probe: the subject transaction.
	Txn   model.TxnID
	Epoch int
	Bound []int // Boundary only

	// Probe only.
	Init       model.TxnID // the waiter whose blockage started the chase
	InitEpoch  int
	Victim     model.TxnID // youngest transaction on the chased path so far
	VictimPrio int64

	// SyncReply only.
	Sync map[model.TxnID]SyncEntry

	// LockRequest, LockGrant: the entity whose lock is requested/granted.
	Entity model.EntityID
	// ShotPrepare, ShotVote: the shot (unit) index within the transaction.
	Shot int
	// SyncReply from a shard processor: the locks it currently holds, per
	// transaction, so a rejoining coordinator relearns its grants
	// (internal/shard anti-entropy).
	Held map[model.TxnID][]model.EntityID
}

// Policy decides per-message faults: drop the message entirely, or deliver
// it with extra latency (enough extra reorders it behind later sends). A
// nil policy is a reliable network.
type Policy func(m Message) (drop bool, extra int64)

// Stats counts bus traffic.
type Stats struct {
	Sent         int64 // Send calls, including ones that did not get through
	Delivered    int64
	Dropped      int64 // lost by the fault policy
	DroppedLink  int64 // blocked by a partition or a down endpoint
	DroppedCrash int64 // destroyed in flight when the destination crashed
}

type packet struct {
	at  int64
	seq int64
	m   Message
}

// Bus connects procs processors with one-hop latency. Messages are handed
// to the delivery callback (OnDeliver) when they mature; zero-latency
// fault-free messages are delivered inline from Send, preserving the
// "instant announcement" semantics the Delay=0 configuration promises.
type Bus struct {
	procs    int
	latency  int64
	policy   Policy
	deliver  func(Message)
	now      int64
	seq      int64
	inflight []packet
	down     []bool
	parts    map[string]map[int]int // partition name -> proc -> side
	stats    Stats

	// trace, when attached, records one replica-rpc span per message fate:
	// an interval from send to delivery on the receiver's lane, or an
	// instant drop event on the sender's. Simulated time maps one unit to
	// one microsecond (telemetry.SimUnit). The bus is single-threaded (the
	// simulator drives it), so one lock-free Local suffices; nil trace —
	// the default — costs one nil check per message.
	trace    *telemetry.Local
	tracePID int64
}

// New creates a bus over procs processors with the given one-hop latency.
func New(procs int, latency int64, policy Policy) *Bus {
	if procs < 1 {
		panic("net: need at least one processor")
	}
	return &Bus{
		procs:   procs,
		latency: latency,
		policy:  policy,
		down:    make([]bool, procs),
		parts:   make(map[string]map[int]int),
	}
}

// OnDeliver installs the delivery callback. Must be set before any Send.
func (b *Bus) OnDeliver(f func(Message)) { b.deliver = f }

// Procs returns the processor count.
func (b *Bus) Procs() int { return b.procs }

// Stats returns a copy of the traffic counters.
func (b *Bus) Stats() Stats { return b.stats }

// Snapshot is the uniform point-in-time reading of the traffic counters —
// like every Snapshot() in this codebase (lock, sched, wal), the returned
// struct is a value copy that never aliases live state: it stays valid
// forever and mutating it has no effect on the bus.
func (b *Bus) Snapshot() Stats { return b.stats }

// AttachTelemetry starts recording replica-rpc spans into tel. Call before
// the run; a nil tel detaches.
func (b *Bus) AttachTelemetry(tel *telemetry.Telemetry) {
	if tel == nil {
		b.trace = nil
		return
	}
	b.trace = tel.Trace.Local()
	b.tracePID = tel.Trace.NextPID()
	tel.Trace.NameProcess(b.tracePID, "net bus")
	for p := 0; p < b.procs; p++ {
		tel.Trace.NameLane(b.tracePID, int64(p), fmt.Sprintf("proc %d", p))
	}
}

// traceDelivery records a delivered message as a send→deliver interval on
// the receiver's lane.
func (b *Bus) traceDelivery(m Message) {
	if b.trace == nil {
		return
	}
	start := telemetry.SimUnit(m.SentAt)
	b.trace.RecordAt(start, telemetry.SimUnit(b.now)-start, "replica-rpc", m.Kind.String(),
		b.tracePID, int64(m.To), 0,
		"from", fmt.Sprint(m.From), "to", fmt.Sprint(m.To), "txn", string(m.Txn))
}

// traceDrop records a lost message as an instant on the sender's lane.
func (b *Bus) traceDrop(m Message, reason string) {
	if b.trace == nil {
		return
	}
	b.trace.RecordAt(telemetry.SimUnit(b.now), 0, "replica-rpc", "drop "+m.Kind.String(),
		b.tracePID, int64(m.From), 0,
		"reason", reason, "from", fmt.Sprint(m.From), "to", fmt.Sprint(m.To))
}

// Down reports whether processor p is crashed.
func (b *Bus) Down(p int) bool { return b.down[p] }

// InFlight returns the number of undelivered messages.
func (b *Bus) InFlight() int { return len(b.inflight) }

// Partition installs (or replaces) a named partition: processors assigned
// to different sides cannot exchange messages while it is active;
// processors not listed in any side are unaffected. Multiple named
// partitions compose — a message is blocked if any active partition
// separates its endpoints.
func (b *Bus) Partition(name string, sides ...[]int) {
	m := make(map[int]int)
	for si, group := range sides {
		for _, q := range group {
			m[q] = si
		}
	}
	b.parts[name] = m
}

// Heal removes the named partition.
func (b *Bus) Heal(name string) { delete(b.parts, name) }

// Partitioned reports whether from and to are currently separated.
func (b *Bus) Partitioned(from, to int) bool {
	for _, sides := range b.parts {
		sf, okf := sides[from]
		st, okt := sides[to]
		if okf && okt && sf != st {
			return true
		}
	}
	return false
}

// Crash marks p down and destroys every message in flight to it: its
// mailbox dies with it. Messages it already sent stay on the wire.
func (b *Bus) Crash(p int) {
	b.down[p] = true
	kept := b.inflight[:0]
	for _, pk := range b.inflight {
		if pk.m.To == p {
			b.stats.DroppedCrash++
			b.traceDrop(pk.m, "crash")
			continue
		}
		kept = append(kept, pk)
	}
	b.inflight = kept
}

// Restart marks p up again. It rejoins with an empty mailbox; state
// recovery is the protocol's job (anti-entropy sync in internal/dist).
func (b *Bus) Restart(p int) { b.down[p] = false }

// Send routes one message. Sends to self are a protocol bug and panic;
// sends across a partition or to/from a down processor are silently lost
// (counted in Stats), exactly like a real network.
func (b *Bus) Send(m Message) {
	if m.From == m.To {
		panic(fmt.Sprintf("net: self-send of %v at proc %d", m.Kind, m.From))
	}
	m.SentAt = b.now
	b.stats.Sent++
	if b.down[m.From] || b.down[m.To] || b.Partitioned(m.From, m.To) {
		b.stats.DroppedLink++
		b.traceDrop(m, "link")
		return
	}
	var drop bool
	var extra int64
	if b.policy != nil {
		drop, extra = b.policy(m)
	}
	if drop {
		b.stats.Dropped++
		b.traceDrop(m, "fault")
		return
	}
	at := b.now + b.latency + extra
	if at <= b.now {
		b.stats.Delivered++
		b.traceDelivery(m)
		b.deliver(m)
		return
	}
	b.seq++
	b.inflight = append(b.inflight, packet{at: at, seq: b.seq, m: m})
}

// Broadcast sends m to every processor except m.From.
func (b *Bus) Broadcast(m Message) {
	for q := 0; q < b.procs; q++ {
		if q == m.From {
			continue
		}
		mm := m
		mm.To = q
		b.Send(mm)
	}
}

// Tick advances the clock and delivers every matured message in
// (arrival time, send order). Deliveries may send further messages;
// zero-latency ones are delivered inline, later ones wait in flight.
func (b *Bus) Tick(now int64) {
	if now < b.now {
		return
	}
	b.now = now
	if len(b.inflight) == 0 {
		return
	}
	var due []packet
	kept := b.inflight[:0]
	for _, pk := range b.inflight {
		if pk.at <= now {
			due = append(due, pk)
		} else {
			kept = append(kept, pk)
		}
	}
	b.inflight = kept
	sort.Slice(due, func(i, j int) bool {
		if due[i].at != due[j].at {
			return due[i].at < due[j].at
		}
		return due[i].seq < due[j].seq
	})
	for _, pk := range due {
		if b.down[pk.m.To] {
			// Crashed after the message was sent but before it matured.
			b.stats.DroppedCrash++
			b.traceDrop(pk.m, "crash")
			continue
		}
		b.stats.Delivered++
		b.traceDelivery(pk.m)
		b.deliver(pk.m)
	}
}

// NextDelivery returns the earliest in-flight arrival time, or 0 when
// nothing is in flight. The simulator uses it to schedule wake-ups.
func (b *Bus) NextDelivery() int64 {
	next := int64(0)
	for _, pk := range b.inflight {
		if next == 0 || pk.at < next {
			next = pk.at
		}
	}
	return next
}
