package net

import (
	"testing"
)

func collect(b *Bus) *[]Message {
	var got []Message
	b.OnDeliver(func(m Message) { got = append(got, m) })
	return &got
}

func TestLatencyAndOrder(t *testing.T) {
	b := New(3, 10, nil)
	got := collect(b)
	b.Send(Message{Kind: Boundary, From: 0, To: 1, Txn: "a"})
	b.Send(Message{Kind: Boundary, From: 0, To: 2, Txn: "b"})
	if len(*got) != 0 {
		t.Fatal("nothing should deliver before the latency elapses")
	}
	if at := b.NextDelivery(); at != 10 {
		t.Fatalf("NextDelivery = %d, want 10", at)
	}
	b.Tick(9)
	if len(*got) != 0 {
		t.Fatal("delivered early")
	}
	b.Tick(10)
	if len(*got) != 2 || (*got)[0].Txn != "a" || (*got)[1].Txn != "b" {
		t.Fatalf("got %v, want a then b in send order", *got)
	}
	if b.NextDelivery() != 0 {
		t.Error("NextDelivery must be 0 when nothing is in flight")
	}
	st := b.Stats()
	if st.Sent != 2 || st.Delivered != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestZeroLatencyDeliversInline(t *testing.T) {
	b := New(2, 0, nil)
	got := collect(b)
	b.Send(Message{Kind: Finish, From: 0, To: 1, Txn: "a"})
	if len(*got) != 1 {
		t.Fatal("zero-latency send must deliver inline")
	}
	if b.InFlight() != 0 {
		t.Error("nothing should stay in flight")
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	b := New(4, 5, nil)
	got := collect(b)
	b.Partition("split", []int{0, 1}, []int{2})
	if !b.Partitioned(0, 2) || b.Partitioned(0, 1) {
		t.Fatal("partition sides wrong")
	}
	// Processor 3 is unlisted: unaffected.
	if b.Partitioned(0, 3) || b.Partitioned(2, 3) {
		t.Fatal("unlisted processor must be unaffected")
	}
	b.Send(Message{Kind: Boundary, From: 0, To: 2}) // blocked
	b.Send(Message{Kind: Boundary, From: 0, To: 1}) // same side: flows
	b.Tick(5)
	if len(*got) != 1 || (*got)[0].To != 1 {
		t.Fatalf("got %v, want only the same-side message", *got)
	}
	if b.Stats().DroppedLink != 1 {
		t.Errorf("DroppedLink = %d, want 1", b.Stats().DroppedLink)
	}
	// A second named partition composes with the first.
	b.Partition("other", []int{1}, []int{3})
	if !b.Partitioned(1, 3) || !b.Partitioned(0, 2) {
		t.Fatal("named partitions must compose")
	}
	b.Heal("split")
	if b.Partitioned(0, 2) || !b.Partitioned(1, 3) {
		t.Fatal("heal must remove exactly the named partition")
	}
	b.Heal("other")
	b.Send(Message{Kind: Boundary, From: 0, To: 2})
	b.Tick(10)
	if len(*got) != 2 {
		t.Fatal("healed link must carry messages again")
	}
}

func TestCrashDropsInFlightMailbox(t *testing.T) {
	b := New(3, 10, nil)
	got := collect(b)
	b.Send(Message{Kind: Boundary, From: 0, To: 1, Txn: "dies"})
	b.Send(Message{Kind: Boundary, From: 0, To: 2, Txn: "lives"})
	b.Crash(1)
	if !b.Down(1) {
		t.Fatal("Down must report the crash")
	}
	b.Tick(10)
	if len(*got) != 1 || (*got)[0].Txn != "lives" {
		t.Fatalf("got %v: the crashed mailbox must die with its processor", *got)
	}
	if b.Stats().DroppedCrash != 1 {
		t.Errorf("DroppedCrash = %d, want 1", b.Stats().DroppedCrash)
	}
	// While down, sends to and from the processor are lost.
	b.Send(Message{Kind: Boundary, From: 0, To: 1})
	b.Send(Message{Kind: Boundary, From: 1, To: 0})
	if b.Stats().DroppedLink != 2 {
		t.Errorf("DroppedLink = %d, want 2", b.Stats().DroppedLink)
	}
	b.Restart(1)
	b.Send(Message{Kind: Boundary, From: 0, To: 1, Txn: "after"})
	b.Tick(20)
	if len(*got) != 2 || (*got)[1].Txn != "after" {
		t.Fatal("restarted processor must receive again")
	}
}

func TestCrashInFlightAtMaturity(t *testing.T) {
	// Crash between send and delivery, observed at Tick time: the packet
	// was kept in flight (Crash not called) but the destination went down
	// via a policy race — model by crashing after send, before Tick.
	b := New(2, 10, nil)
	got := collect(b)
	b.Send(Message{Kind: Finish, From: 0, To: 1})
	b.Crash(1)
	b.Restart(1)
	// The mailbox died with the crash even though the processor is back.
	b.Tick(10)
	if len(*got) != 0 {
		t.Fatal("a crash must destroy the in-flight mailbox for good")
	}
}

func TestPolicyDropAndExtraDelay(t *testing.T) {
	verdict := struct {
		drop  bool
		extra int64
	}{true, 0}
	b := New(2, 5, func(m Message) (bool, int64) { return verdict.drop, verdict.extra })
	got := collect(b)
	b.Send(Message{Kind: Boundary, From: 0, To: 1})
	if b.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", b.Stats().Dropped)
	}
	verdict.drop, verdict.extra = false, 20
	b.Send(Message{Kind: Boundary, From: 0, To: 1, Txn: "slow"})
	verdict.extra = 0
	b.Send(Message{Kind: Boundary, From: 0, To: 1, Txn: "fast"})
	b.Tick(5)
	if len(*got) != 1 || (*got)[0].Txn != "fast" {
		t.Fatalf("got %v: extra delay must reorder behind later sends", *got)
	}
	b.Tick(25)
	if len(*got) != 2 || (*got)[1].Txn != "slow" {
		t.Fatalf("got %v: the delayed message must still arrive", *got)
	}
}

func TestBroadcastSkipsSelf(t *testing.T) {
	b := New(4, 0, nil)
	got := collect(b)
	b.Broadcast(Message{Kind: Heartbeat, From: 2})
	if len(*got) != 3 {
		t.Fatalf("broadcast delivered %d, want 3", len(*got))
	}
	for _, m := range *got {
		if m.To == 2 {
			t.Fatal("broadcast must not deliver to the sender")
		}
	}
}

func TestSelfSendPanics(t *testing.T) {
	b := New(2, 0, nil)
	b.OnDeliver(func(Message) {})
	defer func() {
		if recover() == nil {
			t.Error("self-send must panic")
		}
	}()
	b.Send(Message{Kind: Boundary, From: 1, To: 1})
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Heartbeat, Boundary, Finish, FinishAck, Probe, SyncRequest, SyncReply}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d: bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}
