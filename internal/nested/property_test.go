package nested

import (
	"fmt"
	"math/rand"
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
)

// TestQuickWitnessesAlwaysBuildTrees: for random correctable executions,
// the Lemma 1 witness always admits a Section 7 nested action tree — the
// constructive content of the paper's correspondence claim, checked across
// random nests, breakpoint assignments, and interleavings.
func TestQuickWitnessesAlwaysBuildTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	built := 0
	for trial := 0; trial < 120; trial++ {
		k := 2 + rng.Intn(3)
		nTxn := 3 + rng.Intn(3)
		n := nest.New(k)
		progs := make([]model.Program, nTxn)
		for i := 0; i < nTxn; i++ {
			id := model.TxnID(fmt.Sprintf("t%d", i))
			ops := make([]model.Op, 2+rng.Intn(3))
			for j := range ops {
				ops[j] = model.Add(model.EntityID(fmt.Sprintf("x%d", rng.Intn(4))), 1)
			}
			progs[i] = &model.Scripted{Txn: id, Ops: ops}
			mid := make([]string, k-2)
			for l := range mid {
				mid[l] = fmt.Sprintf("c%d", rng.Intn(2))
			}
			n.Add(id, mid...)
		}
		seed := rng.Int63()
		spec := breakpoint.Func{Levels: k, Fn: func(tx model.TxnID, prefix []model.Step) int {
			h := seed
			for _, c := range tx {
				h = h*37 + int64(c)
			}
			h = h*37 + int64(len(prefix))
			if h < 0 {
				h = -h
			}
			return 2 + int(h)%(k-1)
		}}
		e, err := model.RandomInterleave(progs, map[model.EntityID]model.Value{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := coherent.CheckExecution(e, n, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correctable {
			continue
		}
		w, ok := res.Witness()
		if !ok {
			t.Fatalf("trial %d: witness failed", trial)
		}
		tree, err := Build(w, n, spec)
		if err != nil {
			t.Fatalf("trial %d: witness rejected by the tree builder: %v", trial, err)
		}
		if tree.Stats().Leaves != len(w) {
			t.Fatalf("trial %d: leaf count %d != steps %d", trial, tree.Stats().Leaves, len(w))
		}
		built++
	}
	if built == 0 {
		t.Fatal("no correctable executions sampled")
	}
	t.Logf("built trees for %d witnesses", built)
}
