// Package nested implements the Section 7 correspondence between multilevel
// atomicity and the nested transaction model [M, R, Ly]: every multilevel
// atomic execution can be described by a nested action tree in which
//
//   - all steps below a level-i node belong to π(i)-equivalent transactions,
//     and
//   - (for i > 1) those steps carry each transaction involved from one
//     level-(i−1) breakpoint to another.
//
// The tree is built from the execution, not statically: "the reorganization
// of transactions into actions is not statically determined, but rather
// depends on the particular execution."
package nested

import (
	"fmt"
	"strings"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Node is one action in the nested action tree. Leaves carry a single step;
// internal nodes at Level i group a contiguous run of the execution whose
// transactions are pairwise π(i)-equivalent.
type Node struct {
	Level    int // 1 = root
	Start    int // first execution position covered (inclusive)
	End      int // last execution position covered (inclusive)
	Step     *model.Step
	Children []*Node
}

// Txns returns the distinct transactions appearing under the node.
func (n *Node) Txns(e model.Execution) []model.TxnID {
	seen := make(map[model.TxnID]bool)
	var out []model.TxnID
	for i := n.Start; i <= n.End; i++ {
		if !seen[e[i].Txn] {
			seen[e[i].Txn] = true
			out = append(out, e[i].Txn)
		}
	}
	return out
}

// Tree is the nested action tree of one multilevel atomic execution.
type Tree struct {
	Exec model.Execution
	Nest *nest.Nest
	Spec breakpoint.Spec
	Root *Node
}

// Build constructs the nested action tree of a multilevel atomic execution.
// It recursively partitions the execution: a node at level i splits its
// range into maximal contiguous blocks whose transactions are pairwise
// π(i+1)-equivalent; leaves are single steps at level k+1. Build fails if
// the execution does not admit the tree structure — which, per Section 7,
// happens exactly when it is not multilevel atomic (callers should check
// atomicity first for a precise diagnosis).
func Build(e model.Execution, n *nest.Nest, spec breakpoint.Spec) (*Tree, error) {
	if n.K() != spec.K() {
		return nil, fmt.Errorf("nested: nest k=%d but spec k=%d", n.K(), spec.K())
	}
	t := &Tree{Exec: e, Nest: n, Spec: spec}
	if len(e) == 0 {
		t.Root = &Node{Level: 1, Start: 0, End: -1}
		return t, nil
	}
	root := &Node{Level: 1, Start: 0, End: len(e) - 1}
	if err := t.split(root); err != nil {
		return nil, err
	}
	t.Root = root
	if err := t.Verify(); err != nil {
		return nil, err
	}
	return t, nil
}

// split partitions node into children at level+1.
func (t *Tree) split(node *Node) error {
	k := t.Nest.K()
	if node.Level == k {
		// Children are single-step leaves.
		for i := node.Start; i <= node.End; i++ {
			s := t.Exec[i]
			node.Children = append(node.Children, &Node{Level: k + 1, Start: i, End: i, Step: &s})
		}
		return nil
	}
	childLevel := node.Level + 1
	start := node.Start
	for i := node.Start + 1; i <= node.End+1; i++ {
		if i <= node.End && t.Nest.SameClass(t.Exec[i].Txn, t.Exec[start].Txn, childLevel) {
			continue
		}
		child := &Node{Level: childLevel, Start: start, End: i - 1}
		if err := t.split(child); err != nil {
			return err
		}
		node.Children = append(node.Children, child)
		start = i
	}
	return nil
}

// Verify checks the two Section 7 properties on every node:
//
//  1. all steps below a level-i node belong to π(i)-equivalent transactions
//     (true by construction for the greedy split, but re-checked), and
//  2. for i > 1, the node's steps carry each involved transaction from one
//     level-(i−1) breakpoint to another: the transaction's steps inside the
//     node start just after a B(i−1) boundary (or at its beginning) and end
//     at one (or at its end).
func (t *Tree) Verify() error {
	descs := make(map[model.TxnID]*breakpoint.Description)
	for txn, steps := range stepsByTxn(t.Exec) {
		descs[txn] = breakpoint.Describe(t.Spec, txn, steps)
	}
	return t.verifyNode(t.Root, descs)
}

func stepsByTxn(e model.Execution) map[model.TxnID][]model.Step {
	m := make(map[model.TxnID][]model.Step)
	for _, s := range e {
		m[s.Txn] = append(m[s.Txn], s)
	}
	return m
}

func (t *Tree) verifyNode(node *Node, descs map[model.TxnID]*breakpoint.Description) error {
	if node.End < node.Start {
		return nil
	}
	txns := node.Txns(t.Exec)
	// Property 1: pairwise π(level) equivalence.
	for i := 1; i < len(txns); i++ {
		if !t.Nest.SameClass(txns[0], txns[i], node.Level) {
			return fmt.Errorf("nested: node at level %d mixes %s and %s (level %d)",
				node.Level, txns[0], txns[i], t.Nest.Level(txns[0], txns[i]))
		}
	}
	// Property 2: each transaction's step range inside the node is bounded
	// by B(level-1) breakpoints.
	if node.Level > 1 {
		first := make(map[model.TxnID]int) // first seq inside the node
		last := make(map[model.TxnID]int)  // last seq inside the node
		seqs := seqOf(t.Exec)
		for i := node.Start; i <= node.End; i++ {
			s := t.Exec[i]
			if _, ok := first[s.Txn]; !ok {
				first[s.Txn] = seqs[i]
			}
			last[s.Txn] = seqs[i]
		}
		lv := node.Level - 1
		for txn, fs := range first {
			d := descs[txn]
			if fs > 1 && !d.IsCut(fs-1, lv) {
				return fmt.Errorf("nested: %s enters level-%d node mid-segment (seq %d)", txn, node.Level, fs)
			}
			ls := last[txn]
			if ls < d.Len() && !d.IsCut(ls, lv) {
				return fmt.Errorf("nested: %s leaves level-%d node mid-segment (seq %d)", txn, node.Level, ls)
			}
		}
	}
	for _, c := range node.Children {
		if err := t.verifyNode(c, descs); err != nil {
			return err
		}
	}
	return nil
}

// seqOf maps each execution position to the step's Seq (identical to the
// recorded Seq but recomputed defensively).
func seqOf(e model.Execution) []int {
	counts := make(map[model.TxnID]int)
	out := make([]int, len(e))
	for i, s := range e {
		counts[s.Txn]++
		out[i] = counts[s.Txn]
	}
	return out
}

// Stats summarizes a tree's shape.
type Stats struct {
	Nodes     int
	Leaves    int
	MaxDepth  int
	MaxFanout int
}

// Stats walks the tree.
func (t *Tree) Stats() Stats {
	var st Stats
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		st.Nodes++
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		if len(n.Children) > st.MaxFanout {
			st.MaxFanout = len(n.Children)
		}
		if len(n.Children) == 0 {
			st.Leaves++
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if t.Root != nil {
		walk(t.Root, 1)
	}
	return st
}

// String renders the tree, one node per line, for the examples.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		if n.Step != nil {
			fmt.Fprintf(&b, "%s%s\n", indent, n.Step)
			return
		}
		fmt.Fprintf(&b, "%slevel %d [%d..%d] txns=%v\n", indent, n.Level, n.Start, n.End, n.Txns(t.Exec))
		for _, c := range n.Children {
			walk(c, indent+"  ")
		}
	}
	if t.Root != nil {
		walk(t.Root, "")
	}
	return b.String()
}
