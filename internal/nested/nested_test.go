package nested

import (
	"strings"
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
)

// fixture builds the paper's Section 7 banking scenario: transfers t1..t4
// (withdraw w then deposit δ) that may combine pairwise into actions, plus
// an audit relating to everything at level 1 only.
func fixture() (*nest.Nest, breakpoint.Spec, []model.Program, map[model.EntityID]model.Value) {
	n := nest.New(3)
	n.Add("t1", "xfers")
	n.Add("t2", "xfers")
	n.Add("t3", "xfers")
	n.Add("t4", "xfers")
	n.Add("a1", "audit")
	spec := breakpoint.Func{Levels: 3, Fn: func(t model.TxnID, _ []model.Step) int {
		if t == "a1" {
			return 3
		}
		return 2 // transfers: every interior boundary open to the class
	}}
	mk := func(id model.TxnID, w, d model.EntityID) *model.Scripted {
		return &model.Scripted{Txn: id, Ops: []model.Op{model.Add(w, -1), model.Add(d, 1)}}
	}
	progs := []model.Program{
		mk("t1", "A", "B"), mk("t2", "C", "D"),
		mk("t3", "E", "F"), mk("t4", "G", "H"),
		&model.Scripted{Txn: "a1", Ops: []model.Op{model.Read("A"), model.Read("C")}},
	}
	init := map[model.EntityID]model.Value{}
	for _, x := range []model.EntityID{"A", "B", "C", "D", "E", "F", "G", "H"} {
		init[x] = 10
	}
	return n, spec, progs, init
}

func interleave(t *testing.T, progs []model.Program, init map[model.EntityID]model.Value, order []int) model.Execution {
	t.Helper()
	vals := map[model.EntityID]model.Value{}
	for k, v := range init {
		vals[k] = v
	}
	e, err := model.Interleave(progs, vals, order, false)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPaperTreeShape reproduces the Section 7 tree: t1 and t2 interleave
// (forming one level-2 action with their four steps as siblings), then t3
// and t4, with the audit serialized between — each group becomes one
// level-2 node.
func TestPaperTreeShape(t *testing.T) {
	n, spec, progs, init := fixture()
	// w1 w2 δ1 δ2 | audit | w3 w4 δ3 δ4
	order := []int{0, 1, 0, 1, 4, 4, 2, 3, 2, 3}
	e := interleave(t, progs, init, order)
	ok, err := coherent.MultilevelAtomic(e, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fixture execution must be multilevel atomic")
	}
	tree, err := Build(e, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Root.Children); got != 3 {
		t.Fatalf("root has %d children, want 3 ({t1,t2}, {a1}, {t3,t4}): \n%s", got, tree)
	}
	first := tree.Root.Children[0]
	if tx := first.Txns(e); len(tx) != 2 {
		t.Errorf("first action covers %v, want t1+t2", tx)
	}
	mid := tree.Root.Children[1]
	if tx := mid.Txns(e); len(tx) != 1 || tx[0] != "a1" {
		t.Errorf("middle action covers %v, want audit alone", tx)
	}
	st := tree.Stats()
	if st.Leaves != len(e) {
		t.Errorf("leaves = %d, want %d", st.Leaves, len(e))
	}
	if st.MaxDepth < 3 {
		t.Errorf("depth = %d", st.MaxDepth)
	}
	if !strings.Contains(tree.String(), "level 2") {
		t.Error("String() should render levels")
	}
}

// TestBuildRejectsNonAtomic: an execution in which the audit interrupts a
// transfer cannot be organized into a valid action tree.
func TestBuildRejectsNonAtomic(t *testing.T) {
	n, spec, progs, init := fixture()
	// audit reads A, t1 runs, audit reads C: audit split across t1.
	order := []int{4, 0, 0, 4, 1, 1, 2, 2, 3, 3}
	e := interleave(t, progs, init, order)
	if ok, _ := coherent.MultilevelAtomic(e, n, spec); ok {
		t.Fatal("fixture: expected non-atomic execution")
	}
	if _, err := Build(e, n, spec); err == nil {
		t.Fatal("Build must reject a non-atomic execution")
	}
}

// TestBreakpointBoundaryProperty: with coarseness-3 interior boundaries
// (no class-level breakpoints) a mid-transaction interleave violates the
// level-(i-1) breakpoint property even among class members.
func TestBreakpointBoundaryProperty(t *testing.T) {
	n := nest.New(3)
	n.Add("t1", "g")
	n.Add("t2", "g")
	spec := breakpoint.Uniform{Levels: 3, C: 3} // no level-2 breakpoints
	progs := []model.Program{
		&model.Scripted{Txn: "t1", Ops: []model.Op{model.Add("x", 1), model.Add("y", 1)}},
		&model.Scripted{Txn: "t2", Ops: []model.Op{model.Add("z", 1), model.Add("w", 1)}},
	}
	vals := map[model.EntityID]model.Value{}
	e, err := model.Interleave(progs, vals, []int{0, 1, 0, 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := coherent.MultilevelAtomic(e, n, spec); ok {
		t.Fatal("interleaving without breakpoints must not be atomic")
	}
	if _, err := Build(e, n, spec); err == nil {
		t.Fatal("Build must reject executions violating the breakpoint property")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	n := nest.New(2)
	n.Add("t1")
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	tree, err := Build(nil, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Stats().Nodes != 1 {
		t.Error("empty tree is just a root")
	}
	e := model.Execution{{Txn: "t1", Seq: 1, Entity: "x"}, {Txn: "t1", Seq: 2, Entity: "y"}}
	tree, err = Build(e, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.Leaves != 2 {
		t.Errorf("leaves = %d", st.Leaves)
	}
}

func TestBuildKMismatch(t *testing.T) {
	n := nest.New(2)
	n.Add("t1")
	if _, err := Build(nil, n, breakpoint.Uniform{Levels: 3, C: 2}); err == nil {
		t.Error("k mismatch must error")
	}
}

// TestSerialAlwaysBuilds: serial executions always admit action trees, for
// any spec.
func TestSerialAlwaysBuilds(t *testing.T) {
	n, spec, progs, init := fixture()
	vals := map[model.EntityID]model.Value{}
	for k, v := range init {
		vals[k] = v
	}
	e, err := model.RunSerial(progs, vals)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(e, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Stats().Leaves != len(e) {
		t.Error("every step must be a leaf")
	}
}

func TestTreeNodeTxnsAndStats(t *testing.T) {
	n, spec, progs, init := fixture()
	vals := map[model.EntityID]model.Value{}
	for k, v := range init {
		vals[k] = v
	}
	e, err := model.RunSerial(progs, vals)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(e, n, spec)
	if err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.Nodes <= st.Leaves {
		t.Errorf("nodes=%d leaves=%d: internal nodes missing", st.Nodes, st.Leaves)
	}
	if got := tree.Root.Txns(e); len(got) != 5 {
		t.Errorf("root txns = %v", got)
	}
	if s := tree.String(); !strings.Contains(s, "level 1") {
		t.Error("String misses the root")
	}
}
