package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"mla/internal/model"
)

func add(d model.Value) func(model.Value) (model.Value, string) {
	return func(v model.Value) (model.Value, string) { return v + d, "add" }
}

func TestPerformRecordsStep(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"x": 100})
	step := s.Perform("t1", 1, "x", add(-30))
	if step.Before != 100 || step.After != 70 || step.Label != "add" {
		t.Fatalf("step = %v", step)
	}
	if s.Get("x") != 70 {
		t.Errorf("x = %d", s.Get("x"))
	}
	if s.PendingRecords() != 1 {
		t.Errorf("pending = %d", s.PendingRecords())
	}
}

func TestAbortRestoresValues(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"x": 10, "y": 20})
	s.Perform("t1", 1, "x", add(5))
	s.Perform("t1", 2, "y", add(7))
	if err := s.Abort(map[model.TxnID]bool{"t1": true}); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 10 || s.Get("y") != 20 {
		t.Errorf("values after abort: x=%d y=%d", s.Get("x"), s.Get("y"))
	}
	if s.PendingRecords() != 0 {
		t.Errorf("pending = %d", s.PendingRecords())
	}
}

func TestAbortDependencyClosedSet(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"x": 0})
	s.Perform("t1", 1, "x", add(1)) // x=1
	s.Perform("t2", 1, "x", add(2)) // x=3, observed t1's value
	// Aborting both (dependency-closed) restores 0 without error.
	if err := s.Abort(map[model.TxnID]bool{"t1": true, "t2": true}); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 0 {
		t.Errorf("x = %d", s.Get("x"))
	}
}

func TestAbortDetectsUnclosedSet(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"x": 0})
	s.Perform("t1", 1, "x", add(1))
	s.Perform("t2", 1, "x", add(2)) // t2 depends on t1
	// Aborting only t1 is unsound: t2's record stays, value chain broken.
	if err := s.Abort(map[model.TxnID]bool{"t1": true}); err == nil {
		t.Fatal("unclosed abort set must be reported")
	}
}

func TestCommitTruncates(t *testing.T) {
	s := New(nil)
	s.Perform("t1", 1, "x", add(1))
	s.Perform("t2", 1, "y", add(1))
	s.Commit("t1")
	if s.PendingRecords() != 1 {
		t.Errorf("pending = %d", s.PendingRecords())
	}
	// Aborting a committed transaction's records is a no-op.
	if err := s.Abort(map[model.TxnID]bool{"t1": true}); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 1 {
		t.Error("committed write must survive")
	}
}

func TestInterleavedAbortKeepsSurvivors(t *testing.T) {
	// t1 and t3 touch disjoint entities from t2; abort t2 alone.
	s := New(map[model.EntityID]model.Value{"x": 0, "y": 0})
	s.Perform("t1", 1, "x", add(1))
	s.Perform("t2", 1, "y", add(5))
	s.Perform("t3", 1, "x", add(2)) // depends on t1, not t2
	if err := s.Abort(map[model.TxnID]bool{"t2": true}); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 3 || s.Get("y") != 0 {
		t.Errorf("x=%d y=%d", s.Get("x"), s.Get("y"))
	}
}

func TestValuesAndSum(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"a": 1, "b": 2})
	v := s.Values()
	v["a"] = 99 // must be a copy
	if s.Get("a") != 1 {
		t.Error("Values leaked internal map")
	}
	if got := s.Sum([]model.EntityID{"a", "b"}); got != 3 {
		t.Errorf("Sum = %d", got)
	}
}

func TestCompaction(t *testing.T) {
	s := New(nil)
	for i := 0; i < 3000; i++ {
		s.Perform("t", i+1, "x", add(1))
	}
	s.Commit("t")
	if s.PendingRecords() != 0 {
		t.Errorf("pending = %d", s.PendingRecords())
	}
	// Log should have been compacted away.
	if len(s.log) != 0 {
		t.Errorf("log still has %d records after commit+compaction", len(s.log))
	}
}

func TestAbortSuffixKeepsPrefix(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"x": 0, "y": 0})
	s.Perform("t1", 1, "x", add(1)) // kept
	s.Perform("t1", 2, "y", add(2)) // undone
	s.Perform("t1", 3, "y", add(3)) // undone
	if err := s.AbortSuffix(map[model.TxnID]int{"t1": 1}); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 1 || s.Get("y") != 0 {
		t.Errorf("x=%d y=%d, want 1 0", s.Get("x"), s.Get("y"))
	}
	if s.PendingRecords() != 1 {
		t.Errorf("pending = %d, want 1", s.PendingRecords())
	}
	// The surviving prefix can still be fully aborted later.
	if err := s.Abort(map[model.TxnID]bool{"t1": true}); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 0 {
		t.Errorf("x = %d after full abort", s.Get("x"))
	}
}

func TestAbortSuffixZeroKeepEqualsAbort(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"x": 10})
	s.Perform("t1", 1, "x", add(5))
	s.Perform("t1", 2, "x", add(7))
	if err := s.AbortSuffix(map[model.TxnID]int{"t1": 0}); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 10 {
		t.Errorf("x = %d", s.Get("x"))
	}
}

func TestAbortSuffixDetectsUnclosed(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"x": 0})
	s.Perform("t1", 1, "x", add(1))
	s.Perform("t2", 1, "x", add(2)) // observed t1's suffix value
	// Undoing t1's step while keeping t2's is unsound.
	if err := s.AbortSuffix(map[model.TxnID]int{"t1": 0}); err == nil {
		t.Fatal("unclosed partial abort must be reported")
	}
}

func TestAbortSuffixMultipleTxns(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"x": 0, "y": 0})
	s.Perform("t1", 1, "x", add(1))
	s.Perform("t2", 1, "y", add(10))
	s.Perform("t1", 2, "x", add(2))  // undone
	s.Perform("t2", 2, "y", add(20)) // undone
	if err := s.AbortSuffix(map[model.TxnID]int{"t1": 1, "t2": 1}); err != nil {
		t.Fatal(err)
	}
	if s.Get("x") != 1 || s.Get("y") != 10 {
		t.Errorf("x=%d y=%d", s.Get("x"), s.Get("y"))
	}
}

// Property: perform k ops then abort all transactions → initial state.
func TestQuickAbortAllRestoresInit(t *testing.T) {
	prop := func(deltas []int8) bool {
		s := New(map[model.EntityID]model.Value{"x": 42, "y": -7})
		ents := []model.EntityID{"x", "y"}
		seqs := map[model.TxnID]int{}
		set := map[model.TxnID]bool{}
		for i, d := range deltas {
			txn := model.TxnID(rune('a' + i%3))
			seqs[txn]++
			set[txn] = true
			s.Perform(txn, seqs[txn], ents[i%2], add(model.Value(d)))
		}
		if err := s.Abort(set); err != nil {
			return false
		}
		return s.Get("x") == 42 && s.Get("y") == -7
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCommitIndexAcrossCompactionAndAborts: Commit uses the per-transaction
// position index; it must stay correct after abort-killed records, restarts
// that re-append under the same ID, and log compaction (which renumbers
// every position).
func TestCommitIndexAcrossCompactionAndAborts(t *testing.T) {
	s := New(map[model.EntityID]model.Value{"x": 0})
	// Enough committed churn to force compaction (threshold 1024 records).
	for i := 0; i < 1500; i++ {
		txn := model.TxnID(fmt.Sprintf("churn-%04d", i))
		s.Perform(txn, 1, "x", add(1))
		s.Commit(txn)
	}
	// A transaction that aborts, restarts, performs again, then commits.
	s.Perform("t", 1, "x", add(5))
	if err := s.Abort(map[model.TxnID]bool{"t": true}); err != nil {
		t.Fatal(err)
	}
	s.Perform("t", 1, "x", add(7))
	live := s.PendingRecords()
	if live != 1 {
		t.Fatalf("live = %d, want 1", live)
	}
	s.Commit("t")
	if s.PendingRecords() != 0 {
		t.Errorf("pending after commit = %d", s.PendingRecords())
	}
	if s.Get("x") != 1507 {
		t.Errorf("x = %d, want 1507", s.Get("x"))
	}
	// Committing again (or an unknown txn) is a harmless no-op.
	s.Commit("t")
	s.Commit("never-ran")
	if s.PendingRecords() != 0 {
		t.Errorf("no-op commits changed accounting: %d", s.PendingRecords())
	}
}
