// Package storage provides the in-memory entity store used by the
// concurrency controls: current values plus a global undo log supporting
// rollback of an arbitrary *dependency-closed* set of transactions (the
// paper's unit of recovery, Section 1; cascading rollback, Section 6).
//
// Rollback restores before-images by walking the log backwards. That is
// correct only when the aborted set is closed under value dependencies:
// every transaction that observed a value written by an aborted transaction
// must itself be in the set. The scheduler layer (internal/sched and
// internal/sim) maintains that closure; Store checks the resulting value
// chain and reports violations rather than silently corrupting state.
package storage

import (
	"fmt"

	"mla/internal/model"
)

type record struct {
	txn    model.TxnID
	seq    int
	entity model.EntityID
	before model.Value
	after  model.Value
	dead   bool // committed (truncated) or already undone
}

// Store holds entity values and the undo log.
type Store struct {
	vals map[model.EntityID]model.Value
	log  []record
	live int // number of non-dead records
	// byTxn indexes each transaction's log positions so Commit touches
	// only the transaction's own records instead of scanning the whole
	// log. Entries may point at dead records (aborts kill records without
	// maintaining the index); readers skip those.
	byTxn map[model.TxnID][]int
}

// New creates a store with the given initial values (copied).
func New(init map[model.EntityID]model.Value) *Store {
	s := &Store{
		vals:  make(map[model.EntityID]model.Value, len(init)),
		byTxn: make(map[model.TxnID][]int),
	}
	for x, v := range init {
		s.vals[x] = v
	}
	return s
}

// Get returns the current value of x (0 if never written).
func (s *Store) Get(x model.EntityID) model.Value { return s.vals[x] }

// Perform executes one atomic step for transaction t: it reads the current
// value of x, applies f to obtain the written value and label, logs the
// before-image, installs the new value, and returns the recorded step.
func (s *Store) Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) model.Step {
	before := s.vals[x]
	after, label := f(before)
	s.log = append(s.log, record{txn: t, seq: seq, entity: x, before: before, after: after})
	s.byTxn[t] = append(s.byTxn[t], len(s.log)-1)
	s.live++
	s.vals[x] = after
	return model.Step{Txn: t, Seq: seq, Entity: x, Label: label, Before: before, After: after}
}

// Abort rolls back every logged step of the transactions in set, newest
// first, restoring before-images. It returns an error if the log shows that
// a surviving transaction observed a value being undone (the set was not
// dependency-closed); the store is still left with the set's effects
// removed, but the caller's schedule is unsound.
func (s *Store) Abort(set map[model.TxnID]bool) error {
	var unsound error
	for i := len(s.log) - 1; i >= 0; i-- {
		r := &s.log[i]
		if r.dead || !set[r.txn] {
			continue
		}
		if r.before == r.after {
			// A value-preserving access (pure read, zero-amount deposit)
			// needs no undo, and later writers legitimately do not depend
			// on it — restoring would clobber their values.
			r.dead = true
			s.live--
			continue
		}
		if cur := s.vals[r.entity]; cur != r.after && unsound == nil {
			// Someone outside the set overwrote after us and was not undone
			// first: dependency closure was violated.
			unsound = fmt.Errorf("storage: abort set not dependency-closed at %s seq %d entity %s (value %d, expected %d)",
				r.txn, r.seq, r.entity, cur, r.after)
		}
		s.vals[r.entity] = r.before
		r.dead = true
		s.live--
	}
	// A full abort kills every record of the set, so the index entries
	// are all dead; drop them (restarts re-index from scratch).
	for t := range set {
		delete(s.byTxn, t)
	}
	s.maybeCompact()
	return unsound
}

// AbortSuffix rolls back each transaction in keep to its given sequence
// number: records with seq > keep[txn] are undone, newest first; earlier
// records survive. This is the paper's smaller unit of recovery — rolling a
// transaction back to a breakpoint instead of aborting it entirely. The
// same dependency-closure requirement applies, now at step granularity:
// every surviving step that observed an undone value must itself be in the
// undone suffix of its transaction, or the error is reported.
func (s *Store) AbortSuffix(keep map[model.TxnID]int) error {
	var unsound error
	for i := len(s.log) - 1; i >= 0; i-- {
		r := &s.log[i]
		k, ok := keep[r.txn]
		if r.dead || !ok || r.seq <= k {
			continue
		}
		if r.before == r.after {
			r.dead = true
			s.live--
			continue
		}
		if cur := s.vals[r.entity]; cur != r.after && unsound == nil {
			unsound = fmt.Errorf("storage: partial abort not dependency-closed at %s seq %d entity %s (value %d, expected %d)",
				r.txn, r.seq, r.entity, cur, r.after)
		}
		s.vals[r.entity] = r.before
		r.dead = true
		s.live--
	}
	s.maybeCompact()
	return unsound
}

// Commit truncates the log records of t; its effects become permanent.
// The per-transaction index makes this proportional to t's own records
// rather than the whole undo log.
func (s *Store) Commit(t model.TxnID) {
	for _, i := range s.byTxn[t] {
		if !s.log[i].dead {
			s.log[i].dead = true
			s.live--
		}
	}
	delete(s.byTxn, t)
	s.maybeCompact()
}

func (s *Store) maybeCompact() {
	if len(s.log) < 1024 || s.live*2 > len(s.log) {
		return
	}
	out := s.log[:0]
	for _, r := range s.log {
		if !r.dead {
			out = append(out, r)
		}
	}
	s.log = out
	s.byTxn = make(map[model.TxnID][]int)
	for i, r := range s.log {
		s.byTxn[r.txn] = append(s.byTxn[r.txn], i)
	}
}

// PendingRecords returns the number of live (uncommitted, not undone) log
// records.
func (s *Store) PendingRecords() int { return s.live }

// Values returns a copy of the current entity values.
func (s *Store) Values() map[model.EntityID]model.Value {
	out := make(map[model.EntityID]model.Value, len(s.vals))
	for x, v := range s.vals {
		out[x] = v
	}
	return out
}

// Sum returns the sum of the values of the given entities; applications use
// it for conservation invariants.
func (s *Store) Sum(entities []model.EntityID) model.Value {
	var total model.Value
	for _, x := range entities {
		total += s.vals[x]
	}
	return total
}
