package shard

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mla/internal/engine"
	"mla/internal/model"
	"mla/internal/sched"
)

// Step is one read-modify-write on an entity, the same shape the store
// applies everywhere else in the codebase.
type Step struct {
	Entity model.EntityID
	Apply  func(model.Value) (model.Value, string)
}

// Unit is one breakpoint-delimited unit of a transaction: the span between
// two breakpoints of the transaction's description. Each unit commits as
// one shot of the multi-shot protocol — strict two-phase locking inside
// the unit, locks released when the shot's participants have all voted its
// writes durable.
type Unit struct {
	Steps []Step
}

// Txn is a transaction declared as its sequence of units. Declaring units
// up front (rather than discovering steps by walking a model.ProgState) is
// what makes the multi-shot recovery rule implementable: a wound or crash
// inside unit i rolls back and retries exactly unit i, while units < i
// stay committed — the paper's smaller unit of recovery.
//
// Correctness contract: unit boundaries must be breakpoints at which every
// concurrent transaction may interleave (coarseness 2 in the paper's
// terms). Under that contract the Group's executions are strong partition
// serializable: strict within each shot, MLA-relaxed across shots. A
// single-unit transaction is plainly serializable.
type Txn struct {
	ID    model.TxnID
	Units []Unit
}

// GroupConfig configures a Group.
type GroupConfig struct {
	// Shards is the partition count (< 1 is pinned to 1).
	Shards int
	// LockShards stripes each shard's lock table (0 picks a default).
	LockShards int
	// NewStore builds shard i's store over its slice of the initial state.
	// Nil builds volatile stores. Per-shard WAL pipelines plug in here —
	// each shard then owns an independent group-commit pipeline, and a
	// cross-shard unit becomes one atomic log record per participant.
	NewStore func(i int, init map[model.EntityID]model.Value) engine.Store
}

// Outcome reports one submission's fate.
type Outcome struct {
	// Committed is true when every unit committed.
	Committed bool
	// UnitsCommitted counts the units whose shots committed — on a
	// cancelled submission this may be positive with Committed false:
	// committed shots are irrevocable, exactly the torn-transaction state
	// the recovery rules define.
	UnitsCommitted int
	// CrossShard is true when the transaction touched more than one shard.
	CrossShard bool
	// Restarts counts unit-level rollback-and-retry rounds (wounds).
	Restarts int
}

// Stats is a point-in-time counter snapshot (value copy, like every
// Snapshot in this codebase).
type Stats struct {
	Committed  int64 // transactions fully committed
	CrossShard int64 // committed transactions that spanned shards
	Shots      int64 // unit commits (multi-shot rounds)
	Restarts   int64 // unit rollback-and-retry rounds
	Wounds     int64 // wound decisions taken against a younger holder
}

// shardNode is one partition's mini-engine: a wound-wait control over its
// own striped lock table, a store serialized by its own mutex (the same
// discipline the engine applies globally — here the mutex spans one shard,
// which is the whole point), and a wait-generation channel for blocked
// acquirers.
type shardNode struct {
	ctl   *sched.ShardedTwoPhase
	async engine.AsyncCommitter // non-nil when the store pipelines commits

	mu    sync.Mutex // serializes store operations
	store engine.Store

	nmu  sync.Mutex
	wait chan struct{}
}

// bump wakes every waiter blocked on this shard's lock state.
func (n *shardNode) bump() {
	n.nmu.Lock()
	close(n.wait)
	n.wait = make(chan struct{})
	n.nmu.Unlock()
}

// waitCh returns the current generation channel; take it before deciding
// to block so a release between the decision and the block cannot be
// missed.
func (n *shardNode) waitCh() <-chan struct{} {
	n.nmu.Lock()
	ch := n.wait
	n.nmu.Unlock()
	return ch
}

// unitState is the abort coordination record for one in-flight unit
// attempt. Wounds signal it; the owner polls it at acquisition points.
// Once the unit enters its commit round it is immune: committed shots are
// irrevocable, and the wounding requester only ever needs the locks, which
// the shot release hands over anyway.
type unitState struct {
	abortCh   chan struct{}
	aborted   atomic.Bool
	committing atomic.Bool
}

func (u *unitState) signal() {
	if u.committing.Load() {
		return
	}
	if u.aborted.CompareAndSwap(false, true) {
		close(u.abortCh)
	}
}

// Group is the partitioned entity store: Shards() mini-engines behind one
// Submit interface. All methods are safe for concurrent use; Submit is
// called from many goroutines at once, and independent shards proceed in
// parallel — the single engine mutex the unsharded hot path serializes on
// simply does not exist here.
type Group struct {
	router *Router
	nodes  []*shardNode

	// inflight maps a unit's sub-transaction ID to its abort record so a
	// wound decision naming the sub-ID can reach the owning goroutine.
	inflight sync.Map // model.TxnID -> *unitState

	prioSeq atomic.Int64

	committed  atomic.Int64
	crossShard atomic.Int64
	shots      atomic.Int64
	restarts   atomic.Int64
	wounds     atomic.Int64
}

// NewGroup builds a partitioned store over init.
func NewGroup(cfg GroupConfig, init map[model.EntityID]model.Value) *Group {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.NewStore == nil {
		cfg.NewStore = func(_ int, part map[model.EntityID]model.Value) engine.Store {
			return engine.NewVolatileStore(part)
		}
	}
	g := &Group{router: NewRouter(cfg.Shards)}
	parts := g.router.Partition(init)
	g.nodes = make([]*shardNode, cfg.Shards)
	for i := range g.nodes {
		store := cfg.NewStore(i, parts[i])
		n := &shardNode{
			ctl:   sched.NewShardedTwoPhase(cfg.LockShards),
			store: store,
			wait:  make(chan struct{}),
		}
		n.async, _ = store.(engine.AsyncCommitter)
		g.nodes[i] = n
	}
	return g
}

// Router exposes the entity→shard assignment (serve pins sessions to home
// shards with it; bench builds shard-affine workloads with it).
func (g *Group) Router() *Router { return g.router }

// Shards returns the partition count.
func (g *Group) Shards() int { return len(g.nodes) }

// Values merges the per-shard stores into one state. Entities are routed
// to exactly one shard, so the merge is a disjoint union.
func (g *Group) Values() map[model.EntityID]model.Value {
	out := make(map[model.EntityID]model.Value)
	for _, n := range g.nodes {
		n.mu.Lock()
		vals := n.store.Values()
		n.mu.Unlock()
		for x, v := range vals {
			out[x] = v
		}
	}
	return out
}

// Stats returns a snapshot of the group counters.
func (g *Group) Stats() Stats {
	return Stats{
		Committed:  g.committed.Load(),
		CrossShard: g.crossShard.Load(),
		Shots:      g.shots.Load(),
		Restarts:   g.restarts.Load(),
		Wounds:     g.wounds.Load(),
	}
}

// subID names unit ui of transaction t: the per-shot sub-transaction the
// stores and lock tables see. Committing the sub-ID at each participant is
// what makes the shot one atomic commit per shard while leaving later
// units free to roll back independently.
func subID(buf []byte, t model.TxnID, ui int) ([]byte, model.TxnID) {
	buf = append(buf[:0], t...)
	buf = append(buf, '#')
	buf = strconv.AppendInt(buf, int64(ui), 10)
	return buf, model.TxnID(buf)
}

// Submit executes txn to completion: each unit acquires its locks under
// wound-wait, performs its steps at the entities' home shards, and commits
// as one shot — participants vote durability (the async-commit ack), and
// only a unanimous round releases the unit's locks and moves the
// transaction forward. A wound rolls back and retries the current unit
// only. Submit returns when every unit has committed, or when ctx is
// cancelled (earlier units stay committed; see Outcome.UnitsCommitted).
func (g *Group) Submit(ctx context.Context, txn Txn) (Outcome, error) {
	out := Outcome{}
	if len(txn.Units) == 0 {
		out.Committed = true
		return out, nil
	}
	prio := g.prioSeq.Add(1)
	var buf []byte
	touched := int(-1) // home shard of the first step; -2 = cross-shard
	for ui := range txn.Units {
		var sub model.TxnID
		buf, sub = subID(buf, txn.ID, ui)
		for {
			done, parts, err := g.runUnit(ctx, sub, prio, &txn.Units[ui])
			for _, s := range parts {
				switch {
				case touched == -1:
					touched = s
				case touched != s:
					touched = -2
				}
			}
			if err != nil {
				return out, err
			}
			if done {
				break
			}
			out.Restarts++
			g.restarts.Add(1)
			if err := ctx.Err(); err != nil {
				return out, err
			}
			// Capped backoff before retrying a wounded unit: the wound came
			// from an older transaction that may still hold what this unit
			// wants, and at a hot spot an instant retry mostly burns another
			// acquire-rollback round and wounds a third party on the way.
			// Same capped-shift idiom as the dist retransmit path; priority
			// is kept across retries, so the unit still ages to the front.
			shift := out.Restarts
			if shift > 6 {
				shift = 6
			}
			time.Sleep(time.Duration(1<<shift) * 10 * time.Microsecond)
		}
		out.UnitsCommitted++
		g.shots.Add(1)
	}
	out.Committed = true
	out.CrossShard = touched == -2
	g.committed.Add(1)
	if out.CrossShard {
		g.crossShard.Add(1)
	}
	return out, nil
}

// runUnit runs one attempt of one unit. It returns done=false when the
// attempt was wounded and rolled back (the caller retries), and a non-nil
// err only for fatal conditions (context cancellation mid-acquire, store
// failure); on err the attempt has already been rolled back.
func (g *Group) runUnit(ctx context.Context, sub model.TxnID, prio int64, unit *Unit) (done bool, parts []int, err error) {
	u := &unitState{abortCh: make(chan struct{})}
	g.inflight.Store(sub, u)
	defer g.inflight.Delete(sub)

	var partsBuf [4]int
	parts = partsBuf[:0]
	seen := func(s int) bool {
		for _, p := range parts {
			if p == s {
				return true
			}
		}
		return false
	}
	rollback := func() {
		set := map[model.TxnID]bool{sub: true}
		for _, s := range parts {
			n := g.nodes[s]
			n.mu.Lock()
			_ = n.store.Abort(set)
			n.mu.Unlock()
			n.ctl.Aborted([]model.TxnID{sub})
			n.bump()
		}
	}

	for si := range unit.Steps {
		st := &unit.Steps[si]
		s := g.router.Shard(st.Entity)
		n := g.nodes[s]
		if !seen(s) {
			n.ctl.Begin(sub, prio)
			parts = append(parts, s)
		}
		// Acquire under wound-wait: Grant proceeds, Wait blocks on the
		// shard's generation channel, Abort names a younger holder to
		// wound — signal it and wait for its rollback to free the lock.
		for {
			ch := n.waitCh()
			d := n.ctl.Request(sub, si, st.Entity)
			if d.Kind == sched.Grant {
				break
			}
			if d.Kind == sched.Abort {
				g.wounds.Add(1)
				for _, v := range d.Victims {
					if rec, ok := g.inflight.Load(v); ok {
						rec.(*unitState).signal()
					}
				}
			}
			select {
			case <-ch:
			case <-u.abortCh:
			case <-ctx.Done():
				rollback()
				return false, parts, ctx.Err()
			}
			if u.aborted.Load() {
				rollback()
				return false, parts, nil
			}
		}
		if u.aborted.Load() {
			rollback()
			return false, parts, nil
		}
		n.mu.Lock()
		_, perr := n.store.Perform(sub, si, st.Entity, st.Apply)
		n.mu.Unlock()
		if perr != nil {
			rollback()
			return false, parts, fmt.Errorf("shard %d: perform %s on %s: %w", s, sub, st.Entity, perr)
		}
	}

	// Shot commit round: each participant votes by making the sub-ID's
	// writes durable. With a pipelined store the vote is the async-commit
	// ack; otherwise the participant commits synchronously, which is a
	// unanimous yes by construction. Entering the round makes the unit
	// immune to wounds — shots are irrevocable once voting starts, and
	// the locks the wounding transaction wants are released right below.
	u.committing.Store(true)
	var votes []<-chan struct{}
	ids := []model.TxnID{sub}
	for _, s := range parts {
		n := g.nodes[s]
		n.mu.Lock()
		if n.async != nil {
			votes = append(votes, n.async.SubmitGroup(ids))
		} else {
			n.store.CommitGroup(ids)
		}
		n.mu.Unlock()
	}
	for _, ch := range votes {
		<-ch
	}
	for _, s := range parts {
		n := g.nodes[s]
		if ce, ok := n.store.(engine.CommitErrer); ok {
			if cerr := ce.CommitErr(); cerr != nil {
				return false, parts, fmt.Errorf("shard %d: shot commit %s: %w", s, sub, cerr)
			}
		}
	}
	// Unanimous: release the unit's locks (strict 2PL held them to here)
	// and retire the sub-transaction's handle at every participant.
	for _, s := range parts {
		n := g.nodes[s]
		n.ctl.Finished(sub)
		n.bump()
	}
	return true, parts, nil
}
