// Package shard partitions the entity store across processors: a Router
// assigns every entity a home shard by hashing its interned handle, a Group
// runs one mini-engine per shard (own lock manager, own store, own commit
// pipeline) behind a coordinator that executes single-shard transactions
// entirely at their home shard and commits cross-shard transactions with a
// multi-shot protocol — each breakpoint-delimited unit prepares and commits
// as one shot, the natural fit between Lynch's multilevel atomicity and
// Chockler & Gotsman's multi-shot atomic commit. The correctness frame is
// Abadi's "strong partition serializable": strict two-phase locking within
// each shot, MLA-relaxed interleaving across shot boundaries.
//
// SimControl is the simulator-facing face of the same design: a
// sched.Control whose per-shard lock tables live at the owning processors
// of a simulated message bus (internal/net), with lock requests, grants,
// and per-shot participant votes carried on typed messages, epoch fencing
// against stale incarnations, anti-entropy resync after crashes, and
// edge-chasing probes for deadlock cycles that span shards — the same
// robustness machinery internal/dist proved out on the E18 chaos grid.
package shard

import (
	"mla/internal/model"
)

// Router owns the entity→shard assignment. Entities are interned into
// dense handles (model.Interner) and routed by the handle's mixed hash, so
// a routing decision on the hot path costs one interner lookup and five
// arithmetic ops, and every component that needs placement — the Group's
// coordinator, the simulator control, the serve front-end's home-shard
// session pinning — agrees on it by construction.
//
// Router is safe for concurrent use (the interner is; the rest is
// immutable after construction).
type Router struct {
	shards int
	ids    *model.Interner[model.EntityID]
}

// NewRouter returns a router over n shards (n < 1 is pinned to 1).
func NewRouter(n int) *Router {
	if n < 1 {
		n = 1
	}
	return &Router{shards: n, ids: model.NewInterner[model.EntityID]()}
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.shards }

// Shard returns x's home shard in [0, Shards()). The assignment is stable
// for the router's lifetime: handles are interned once and never released,
// so the peak interned population is the entity universe, which a
// partitioned store holds resident anyway.
func (r *Router) Shard(x model.EntityID) int {
	return int(r.ids.Intern(x).Mix()) % r.shards
}

// Home returns the home shard of a whole entity set and whether the set is
// single-shard: single-shard transactions execute entirely at their home
// shard with no cross-shard protocol at all.
func (r *Router) Home(ents []model.EntityID) (home int, single bool) {
	if len(ents) == 0 {
		return 0, true
	}
	home = r.Shard(ents[0])
	for _, x := range ents[1:] {
		if r.Shard(x) != home {
			return home, false
		}
	}
	return home, true
}

// Partition splits an initial state by home shard: slot i holds exactly the
// entities routed to shard i. Per-shard stores are seeded with their slice,
// so the union of the shard stores' Values() is the full state and the
// intersection is empty.
func (r *Router) Partition(init map[model.EntityID]model.Value) []map[model.EntityID]model.Value {
	parts := make([]map[model.EntityID]model.Value, r.shards)
	for i := range parts {
		parts[i] = make(map[model.EntityID]model.Value)
	}
	for x, v := range init {
		parts[r.Shard(x)][x] = v
	}
	return parts
}
