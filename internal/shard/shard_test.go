package shard

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/engine"
	"mla/internal/fault"
	"mla/internal/history"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/sim"
	"mla/internal/wal"
)

// ---- Router ----

func TestRouterStableTotalAndDisjoint(t *testing.T) {
	r := NewRouter(4)
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d", r.Shards())
	}
	init := make(map[model.EntityID]model.Value)
	for i := 0; i < 200; i++ {
		x := model.EntityID(fmt.Sprintf("e%d", i))
		init[x] = model.Value(i)
		s := r.Shard(x)
		if s < 0 || s >= 4 {
			t.Fatalf("Shard(%s) = %d out of range", x, s)
		}
		if again := r.Shard(x); again != s {
			t.Fatalf("Shard(%s) unstable: %d then %d", x, s, again)
		}
	}
	parts := r.Partition(init)
	total := 0
	for i, part := range parts {
		total += len(part)
		for x := range part {
			if r.Shard(x) != i {
				t.Fatalf("entity %s in slot %d but routed to %d", x, i, r.Shard(x))
			}
		}
	}
	if total != len(init) {
		t.Fatalf("partition lost entities: %d of %d", total, len(init))
	}
}

func TestRouterBalance(t *testing.T) {
	r := NewRouter(4)
	counts := make([]int, 4)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Shard(model.EntityID(fmt.Sprintf("acct-%d", i)))]++
	}
	for s, got := range counts {
		// Dense handles through the Mix finalizer should land near-uniform;
		// 15% of total is a generous floor for a quarter share.
		if got < n*15/100 {
			t.Errorf("shard %d got %d of %d entities — routing is skewed", s, got, n)
		}
	}
}

func TestRouterHome(t *testing.T) {
	r := NewRouter(4)
	a := entityOn(t, r, 0, "h")
	b := entityOn(t, r, 1, "h")
	if home, single := r.Home([]model.EntityID{a, a}); !single || home != 0 {
		t.Fatalf("Home same-shard: home=%d single=%v", home, single)
	}
	if _, single := r.Home([]model.EntityID{a, b}); single {
		t.Fatal("Home cross-shard reported single")
	}
	if home, single := r.Home(nil); !single || home != 0 {
		t.Fatalf("Home empty: home=%d single=%v", home, single)
	}
}

// entityOn finds an entity routed to the given shard, with a name prefix to
// keep tests independent of each other's interning order.
func entityOn(t *testing.T, r *Router, shard int, prefix string) model.EntityID {
	t.Helper()
	for i := 0; i < 10000; i++ {
		x := model.EntityID(fmt.Sprintf("%s%d", prefix, i))
		if r.Shard(x) == shard {
			return x
		}
	}
	t.Fatalf("no entity routed to shard %d in 10000 tries", shard)
	return ""
}

// ---- Group (concurrent partitioned store) ----

// groupWorkload submits commutative increments from many goroutines and
// checks decision equivalence the same way the bench gate does: the final
// store values must equal the increment counts, or a shot tore / a lock was
// not where the control thought it was.
func groupWorkload(t *testing.T, g *Group, workers, txnsPer int, ents []model.EntityID) {
	t.Helper()
	expect := make(map[model.EntityID]int64)
	var mu sync.Mutex
	var wg sync.WaitGroup
	inc := func(v model.Value) (model.Value, string) { return v + 1, "inc" }
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make(map[model.EntityID]int64)
			for i := 0; i < txnsPer; i++ {
				// Two units of two steps; entity choice cycles so many
				// transactions collide and cross shards.
				pick := func(k int) model.EntityID { return ents[(w*7+i*3+k)%len(ents)] }
				txn := Txn{
					ID: model.TxnID(fmt.Sprintf("w%d-t%d", w, i)),
					Units: []Unit{
						{Steps: []Step{{Entity: pick(0), Apply: inc}, {Entity: pick(1), Apply: inc}}},
						{Steps: []Step{{Entity: pick(2), Apply: inc}, {Entity: pick(3), Apply: inc}}},
					},
				}
				out, err := g.Submit(context.Background(), txn)
				if err != nil {
					t.Errorf("submit %s: %v", txn.ID, err)
					return
				}
				if !out.Committed || out.UnitsCommitted != 2 {
					t.Errorf("submit %s: %+v", txn.ID, out)
					return
				}
				for k := 0; k < 4; k++ {
					local[pick(k)]++
				}
			}
			mu.Lock()
			for x, n := range local {
				expect[x] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	final := g.Values()
	for x, n := range expect {
		if final[x] != model.Value(n) {
			t.Errorf("entity %s: final %d, want %d increments", x, final[x], n)
		}
	}
	st := g.Stats()
	if st.Committed != int64(workers*txnsPer) {
		t.Errorf("committed %d, want %d", st.Committed, workers*txnsPer)
	}
	if st.Shots != int64(workers*txnsPer*2) {
		t.Errorf("shots %d, want %d", st.Shots, workers*txnsPer*2)
	}
}

func TestGroupConcurrentEquivalence(t *testing.T) {
	ents := make([]model.EntityID, 24)
	init := make(map[model.EntityID]model.Value)
	for i := range ents {
		ents[i] = model.EntityID(fmt.Sprintf("acct-%d", i))
		init[ents[i]] = 0
	}
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			g := NewGroup(GroupConfig{Shards: shards}, init)
			groupWorkload(t, g, 8, 30, ents)
			if shards > 1 && g.Stats().CrossShard == 0 {
				t.Error("no cross-shard transaction exercised the multi-shot path")
			}
		})
	}
}

func TestGroupWALPipelinedShots(t *testing.T) {
	ents := make([]model.EntityID, 16)
	init := make(map[model.EntityID]model.Value)
	for i := range ents {
		ents[i] = model.EntityID(fmt.Sprintf("acct-%d", i))
		init[ents[i]] = 0
	}
	var pmu sync.Mutex
	var pipes []*wal.Pipeline
	g := NewGroup(GroupConfig{
		Shards: 4,
		NewStore: func(i int, part map[model.EntityID]model.Value) engine.Store {
			db, err := wal.Open(wal.NewMedium(), part)
			if err != nil {
				t.Fatalf("shard %d wal: %v", i, err)
			}
			pipe := wal.NewPipeline(db, 200*time.Microsecond)
			pmu.Lock()
			pipes = append(pipes, pipe)
			pmu.Unlock()
			return engine.NewPipelinedWALStore(pipe)
		},
	}, init)
	groupWorkload(t, g, 6, 20, ents)
	for _, p := range pipes {
		p.Close()
	}
	if g.Stats().CrossShard == 0 {
		t.Error("no cross-shard transaction exercised per-shard WAL voting")
	}
}

func TestGroupCancelledSubmitLeavesCommittedShots(t *testing.T) {
	init := map[model.EntityID]model.Value{"a": 0, "b": 0}
	g := NewGroup(GroupConfig{Shards: 2}, init)
	inc := func(v model.Value) (model.Value, string) { return v + 1, "inc" }
	ctx, cancel := context.WithCancel(context.Background())
	// Hold b's lock before the submission starts so its second unit must
	// block. Priority 0 is oldest: the victim cannot wound it.
	n := g.nodes[g.router.Shard("b")]
	n.ctl.Begin("hold", 0)
	if d := n.ctl.Request("hold", 0, "b"); d.Kind != sched.Grant {
		t.Fatalf("hold acquire: %v", d.Kind)
	}
	victim := Txn{ID: "victim", Units: []Unit{
		{Steps: []Step{{Entity: "a", Apply: inc}}},
		{Steps: []Step{{Entity: "b", Apply: inc}}},
	}}
	done := make(chan Outcome, 1)
	go func() {
		out, _ := g.Submit(ctx, victim)
		done <- out
	}()
	time.Sleep(20 * time.Millisecond) // let unit 1 commit and unit 2 block
	cancel()
	out := <-done
	n.ctl.Finished("hold")
	n.bump()
	if out.Committed {
		t.Fatal("cancelled submission reported fully committed")
	}
	if out.UnitsCommitted != 1 {
		t.Fatalf("UnitsCommitted = %d, want 1 (the torn prefix)", out.UnitsCommitted)
	}
	// Committed shots are irrevocable: unit 1's increment survives.
	if v := g.Values()["a"]; v != 1 {
		t.Fatalf("a = %d, want 1 (committed shot)", v)
	}
	if v := g.Values()["b"]; v != 0 {
		t.Fatalf("b = %d, want 0 (aborted unit)", v)
	}
	// The shards stay serviceable after the torn submission.
	blocker := Txn{ID: "after", Units: []Unit{{Steps: []Step{{Entity: "b", Apply: inc}}}}}
	if out, err := g.Submit(context.Background(), blocker); err != nil || !out.Committed {
		t.Fatalf("post-cancel submit: %+v, %v", out, err)
	}
}

// ---- SimControl protocol ----

// twoShardEntities picks one entity homed at each of two shards.
func twoShardEntities(t *testing.T, c *SimControl) (a, b model.EntityID) {
	t.Helper()
	return entityOn(t, c.Router(), 0, "p"), entityOn(t, c.Router(), 1, "p")
}

// TestCrossShardDeadlockResolvedByProbes builds the canonical two-shard
// deadlock: two transactions lock one entity each at different shards, then
// request each other's in the opposite order. No single shard sees both
// waits-for edges, so only the edge-chasing probes can close the cycle.
func TestCrossShardDeadlockResolvedByProbes(t *testing.T) {
	c := NewSimControl(SimParams{Shards: 2, Delay: 2})
	a, b := twoShardEntities(t, c)
	c.Tick(0)
	c.Begin("t1", 1)
	c.Begin("t2", 2)
	if d := c.Request("t1", 1, a); d.Kind != sched.Grant {
		t.Fatalf("t1 %s: %v", a, d.Kind)
	}
	c.Performed("t1", 1, a, 0)
	if d := c.Request("t2", 1, b); d.Kind != sched.Grant {
		t.Fatalf("t2 %s: %v", b, d.Kind)
	}
	c.Performed("t2", 1, b, 0)
	// Opposite-order second locks: both go remote, both block.
	if d := c.Request("t1", 2, b); d.Kind == sched.Grant {
		t.Fatal("t1's cross-shard request granted instantly")
	}
	if d := c.Request("t2", 2, a); d.Kind == sched.Grant {
		t.Fatal("t2's cross-shard request granted instantly")
	}
	var victims []model.TxnID
	for now := int64(1); now <= 2000 && len(victims) == 0; now++ {
		c.Tick(now)
		c.Request("t1", 2, b)
		c.Request("t2", 2, a)
		victims = append(victims, c.TakeVictims()...)
	}
	if len(victims) != 1 || victims[0] != "t2" {
		t.Fatalf("victims = %v, want [t2] (the youngest in the cycle)", victims)
	}
	if c.ProbeDeadlocks == 0 {
		t.Error("deadlock resolved but no probe detection counted")
	}
	c.Aborted(victims)
	// The survivor's blocked request completes once the victim's locks free.
	granted := false
	for now := int64(2001); now <= 2200 && !granted; now++ {
		c.Tick(now)
		if d := c.Request("t1", 2, b); d.Kind == sched.Grant {
			granted = true
		}
	}
	if !granted {
		t.Fatal("survivor never acquired the freed lock")
	}
}

// TestTornMultiShotCoordinatorCrash commits one cross-shard shot, then
// crashes the coordinator between shots. The committed shot is irrevocable
// at the participant; the transaction itself is lost with its coordinator
// and every lock it still held is accounted for — the torn state the
// recovery rules define, with full rollback of the open unit.
func TestTornMultiShotCoordinatorCrash(t *testing.T) {
	inj := fault.New(fault.Plan{
		ProcCrashes: []fault.ProcCrash{{Proc: 0, At: 500}},
	})
	c := NewSimControl(SimParams{Shards: 2, Delay: 2, Faults: inj})
	a, b := twoShardEntities(t, c)
	a2 := entityOn(t, c.Router(), 0, "q")
	c.Tick(0)
	c.Begin("t1", 1)
	if d := c.Request("t1", 1, a); d.Kind != sched.Grant {
		t.Fatalf("t1 %s: %v", a, d.Kind)
	}
	c.Performed("t1", 1, a, 0)
	// Cross-shard step: wait out the lock-request round trip.
	granted := false
	for now := int64(1); now <= 100 && !granted; now++ {
		c.Tick(now)
		if d := c.Request("t1", 2, b); d.Kind == sched.Grant {
			granted = true
		}
	}
	if !granted {
		t.Fatal("remote lock never granted")
	}
	c.Performed("t1", 2, b, 2) // coarseness-2 breakpoint: shot round opens
	if c.pendingShot["t1"] == nil {
		t.Fatal("cross-shard unit did not open a shot round")
	}
	// Drive the vote round home: shot 1 commits.
	for now := int64(101); now <= 200 && c.pendingShot["t1"] != nil; now++ {
		c.Tick(now)
	}
	if c.Shots != 1 {
		t.Fatalf("Shots = %d, want 1 (the committed shot)", c.Shots)
	}
	if c.nodes[1].locks.Locked() != 0 {
		t.Fatal("participant kept the committed shot's locks")
	}
	// Unit 2 opens at the coordinator...
	if d := c.Request("t1", 3, a2); d.Kind != sched.Grant {
		t.Fatalf("t1 %s: %v", a2, d.Kind)
	}
	c.Performed("t1", 3, a2, 0)
	// ...and the coordinator dies between shots.
	c.Tick(500)
	victims := c.TakeVictims()
	if len(victims) != 1 || victims[0] != "t1" {
		t.Fatalf("victims = %v, want [t1] (lost with its coordinator)", victims)
	}
	if c.CrashAborts != 1 {
		t.Errorf("CrashAborts = %d, want 1", c.CrashAborts)
	}
	c.Aborted(victims)
	if c.nodes[1].locks.Locked() != 0 {
		t.Error("abort leaked locks at the surviving participant")
	}
}

// TestLockResyncAfterParticipantCrash: a participant crash wipes its lock
// table while a foreign coordinator still claims a grant there. On rejoin,
// anti-entropy re-installs the claim before the shard grants anything
// conflicting.
func TestLockResyncAfterParticipantCrash(t *testing.T) {
	inj := fault.New(fault.Plan{
		ProcCrashes: []fault.ProcCrash{{Proc: 1, At: 300, Rejoin: 400}},
	})
	c := NewSimControl(SimParams{Shards: 2, Delay: 2, Faults: inj})
	a, b := twoShardEntities(t, c)
	c.Tick(0)
	c.Begin("t1", 1)
	if d := c.Request("t1", 1, a); d.Kind != sched.Grant {
		t.Fatalf("t1 %s: %v", a, d.Kind)
	}
	c.Performed("t1", 1, a, 0)
	granted := false
	for now := int64(1); now <= 100 && !granted; now++ {
		c.Tick(now)
		if d := c.Request("t1", 2, b); d.Kind == sched.Grant {
			granted = true
		}
	}
	if !granted {
		t.Fatal("remote lock never granted")
	}
	c.Performed("t1", 2, b, 0)
	c.Tick(300) // shard 1 crashes: its lock table is gone
	if v := c.TakeVictims(); len(v) != 0 {
		t.Fatalf("participant crash aborted %v; only coordinator crashes kill", v)
	}
	// Rejoin and resync; then a rival wants b.
	for now := int64(301); now <= 500; now++ {
		c.Tick(now)
	}
	if !c.nodes[1].up || c.nodes[1].recovering {
		t.Fatal("shard 1 never finished recovering")
	}
	if !c.nodes[1].locks.Holds("t1", b) {
		t.Fatal("anti-entropy did not re-install the surviving claim")
	}
	c.Begin("t2", 2)
	stolen := false
	for now := int64(501); now <= 600; now++ {
		c.Tick(now)
		if d := c.Request("t2", 1, b); d.Kind == sched.Grant {
			stolen = true
			break
		}
	}
	if stolen {
		t.Fatal("rival acquired a lock the resynced claim should hold")
	}
	// The claim holder finishing releases it; the rival then gets through.
	c.Finished("t1")
	acquired := false
	for now := int64(601); now <= 800 && !acquired; now++ {
		c.Tick(now)
		if d := c.Request("t2", 1, b); d.Kind == sched.Grant {
			acquired = true
		}
	}
	if !acquired {
		t.Fatal("release after resync never reached the rival")
	}
}

// ---- full-simulator soundness under chaos ----

type shardChaos struct {
	name string
	plan fault.Plan
}

func shardChaosGrid(deep bool) []shardChaos {
	grid := []shardChaos{
		{"clean", fault.Plan{}},
		{"loss", fault.Plan{Seed: 11, NetDropRate: 0.2, NetDelayRate: 0.2, NetExtraDelay: 30}},
		{"partition", fault.Plan{
			Partitions: []fault.Partition{{At: 100, Heal: 500}},
		}},
		{"crash", fault.Plan{
			ProcCrashes: []fault.ProcCrash{{Proc: 1, At: 120, Rejoin: 520}},
		}},
		{"everything", fault.Plan{
			Seed:        13,
			NetDropRate: 0.15,
			Partitions:  []fault.Partition{{At: 200, Heal: 600}},
			ProcCrashes: []fault.ProcCrash{{Proc: 2, At: 150, Rejoin: 550}},
		}},
	}
	if deep {
		for _, rate := range []float64{0.1, 0.3} {
			for seed := int64(1); seed <= 3; seed++ {
				grid = append(grid, shardChaos{
					fmt.Sprintf("deep-loss-%.1f-%d", rate, seed),
					fault.Plan{Seed: seed, NetDropRate: rate, NetDelayRate: rate, NetExtraDelay: 60},
				})
			}
		}
		grid = append(grid, shardChaos{
			"deep-double-crash",
			fault.Plan{
				Seed: 19,
				ProcCrashes: []fault.ProcCrash{
					{Proc: 1, At: 100, Rejoin: 600},
					{Proc: 3, At: 300, Rejoin: 800},
				},
			},
		})
	}
	return grid
}

// TestShardClosureGateBlocksAudits pins the soundness fix for the shot
// protocol's early release: without the closure gate, the locks a transfer
// drops at its level-2 withdraw/deposit boundary were free for anyone —
// including a bank audit, which relates to transfers at level 1 and must
// see them atomically. Seed 3 at mlasim's default workload size reproduced
// an inexact audit and a non-correctable execution.
func TestShardClosureGateBlocksAudits(t *testing.T) {
	p := bank.DefaultParams()
	p.Seed = 3
	wl := bank.Generate(p)
	c := NewSimControl(SimParams{Shards: 4, Delay: 2, Nest: wl.Nest})
	res, err := sim.Run(sim.DefaultConfig(), wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		t.Fatalf("run did not drain: %v", err)
	}
	inv := wl.Check(res.Exec, res.Final)
	if inv.AuditsInexact > 0 {
		t.Errorf("%d inexact audits: the closure gate let an audit between a transfer's shots", inv.AuditsInexact)
	}
	ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("non-correctable execution admitted with the closure gate in place")
	}
}

// TestShardChaosSweepSoundness runs the full banking workload on the
// sharded control under the E18-style failure grid: the run must drain,
// every transaction commits, the banking invariants hold, the execution is
// Theorem-2-correctable, and the black-box history checker accepts the
// sharded history unchanged. MLA_CHAOS_DEEP=1 (nightly) widens the grid.
func TestShardChaosSweepSoundness(t *testing.T) {
	deep := os.Getenv("MLA_CHAOS_DEEP") != ""
	for _, sc := range shardChaosGrid(deep) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			p := bank.DefaultParams()
			p.Transfers = 14
			p.BankAudits = 1
			p.CreditorAudits = 2
			p.Seed = 5
			wl := bank.Generate(p)
			cfg := sim.DefaultConfig()
			c := NewSimControl(SimParams{
				Shards: 4,
				Delay:  5,
				Faults: fault.New(sc.plan),
				Nest:   wl.Nest,
			})
			res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
			if err != nil {
				t.Fatalf("run did not drain: %v", err)
			}
			if res.Stats.Committed != len(wl.Programs) {
				t.Fatalf("committed %d of %d transactions", res.Stats.Committed, len(wl.Programs))
			}
			inv := wl.Check(res.Exec, res.Final)
			if !inv.ConservationOK {
				t.Error("money not conserved under sharded chaos")
			}
			if inv.AuditsInexact > 0 {
				t.Error("inexact audits under sharded chaos")
			}
			if inv.TraceValid != nil {
				t.Errorf("trace invalid: %v", inv.TraceValid)
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Error("non-correctable execution admitted by the sharded control")
			}
			// The black-box checker must accept sharded histories unchanged.
			h, err := history.FromExecution(res.Exec, wl.Nest.Restrict(res.Exec.Txns()), wl.Spec)
			if err != nil {
				t.Fatalf("history: %v", err)
			}
			rep, err := history.Check(h)
			if err != nil {
				t.Fatalf("check: %v", err)
			}
			if !rep.Correctable {
				t.Errorf("history checker rejected a sharded history: %s", rep.Summary())
			}
		})
	}
}
