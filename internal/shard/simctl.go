// SimControl is the simulator-facing face of the partitioned store: a
// sched.Control in which each shard's lock table lives at its own processor
// of a simulated message bus (internal/net). Lock requests, grants, and
// per-shot commit votes travel as typed messages; the robustness machinery —
// epoch fencing, retransmission with capped backoff, heartbeat failure
// detection, grace-period escalation, anti-entropy lock resync after a
// crash, and edge-chasing deadlock probes — mirrors internal/dist, so the
// sharded engine survives the same partition/crash chaos grid (E18).
//
// Protocol shape (Chockler & Gotsman's multi-shot commit specialized to
// Lynch's breakpoint units):
//
//   - A transaction's coordinator is the home shard of its first requested
//     entity. Steps at the coordinator's shard acquire locks directly;
//     steps homed elsewhere send LockRequest and wait for LockGrant
//     (retransmitted until granted — re-granting an already-held lock is
//     idempotent, so lost grants cost latency, never correctness).
//   - Each breakpoint-delimited unit commits as one shot: at the unit's
//     closing breakpoint the coordinator releases its own shard's locks,
//     sends ShotPrepare to every other participant shard, and holds the
//     transaction at the boundary until every ShotVote is in. Participants
//     release the unit's locks when they prepare; a committed shot is
//     irrevocable, which is exactly the multilevel-atomicity contract —
//     everyone may interleave at a unit boundary (coarseness-2 cut).
//   - Strictness therefore holds within a shot and is relaxed across
//     shots: Abadi's "strong partition serializable", with the partition
//     boundary drawn at breakpoints instead of data partitions.
//
// Failure rules: a crashed processor takes its lock table with it, so every
// transaction it coordinates is aborted (CrashAborts) — their control state
// is gone. Transactions coordinated elsewhere keep running: their grants at
// the crashed shard are re-installed on rejoin by anti-entropy (each
// coordinator answers SyncRequest with the locks it believes it holds
// there), and the rejoining shard grants nothing until the resync
// completes. Waits that can only resolve through a dead or suspected
// processor abort after the grace period (GraceAborts); deadlock cycles
// spanning shards are closed by probes (ProbeDeadlocks).
package shard

import (
	"fmt"
	"sort"

	"mla/internal/coherent"
	"mla/internal/dist"
	"mla/internal/fault"
	"mla/internal/lock"
	"mla/internal/model"
	mnet "mla/internal/net"
	"mla/internal/nest"
	"mla/internal/sched"
)

// SimParams configures the simulator-side sharded control. Zero timer
// fields get the dist-style defaults derived from Delay, so both
// message-driven layers trip failure detection identically.
type SimParams struct {
	// Shards is the shard count; one bus processor per shard.
	Shards int
	// Delay is the bus's one-hop message latency in simulator units.
	Delay int64

	HeartbeatEvery  int64
	SuspectAfter    int64
	Grace           int64
	RetransmitEvery int64
	ProbeAfter      int64
	ProbeEvery      int64

	// Faults supplies per-message drop/delay verdicts and the scheduled
	// partition/crash chaos. Nil means a reliable, failure-free network.
	Faults *fault.Injector
	// NetPolicy, when non-nil, overrides Faults for per-message verdicts.
	NetPolicy mnet.Policy

	// Nest supplies the workload's multilevel nesting. When set, every
	// grant additionally passes the Section 6 delay rule over the online
	// coherent closure: locks released at a shot boundary reopen the
	// entity only to transactions whose pair level tolerates that
	// boundary's coarseness — an audit that must see transfers atomically
	// (level 1) still waits even though the lock plane would grant. Nil
	// disables the gate (protocol unit tests that never check histories).
	Nest *nest.Nest
}

func (pr SimParams) withDefaults() SimParams {
	if pr.Shards < 1 {
		pr.Shards = 1
	}
	if pr.HeartbeatEvery == 0 {
		pr.HeartbeatEvery = dist.DefaultHeartbeatEvery
	}
	if pr.SuspectAfter == 0 {
		pr.SuspectAfter = pr.Delay + 3*pr.HeartbeatEvery
	}
	if pr.Grace == 0 {
		pr.Grace = 2 * pr.SuspectAfter
	}
	if pr.RetransmitEvery == 0 {
		pr.RetransmitEvery = 2*pr.Delay + pr.HeartbeatEvery
	}
	if pr.ProbeAfter == 0 {
		pr.ProbeAfter = 2*pr.Delay + pr.HeartbeatEvery
	}
	if pr.ProbeEvery == 0 {
		pr.ProbeEvery = pr.ProbeAfter
	}
	return pr
}

// simWait is one blocked request recorded at the shard that owns the
// requested entity — the coordinator's own wait for local entities, a
// remote transaction's queued LockRequest otherwise.
type simWait struct {
	entity    model.EntityID
	seq       int
	epoch     int
	since     int64
	nextProbe int64
	// strandedSince is when every path forward started depending on a
	// suspected processor; 0 while reachable.
	strandedSince int64
	blockers      map[model.TxnID]bool
}

// simNode is one shard processor: the hard lock state for its slice of the
// entity space plus the volatile protocol soft state. A crash wipes
// everything here; the lock table is rebuilt by anti-entropy on rejoin.
type simNode struct {
	id int
	up bool

	locks   *lock.Manager
	waiting map[model.TxnID]*simWait
	// shotDone fences duplicate ShotPrepare deliveries: retransmits of an
	// already-prepared shot re-vote without re-releasing (a re-release
	// after the next unit acquired fresh locks here would tear it).
	shotDone map[model.TxnID]int

	// Anti-entropy recovery: grants are withheld between rejoin and the
	// last peer's SyncReply (or the deadline), so a fresh request cannot
	// steal a lock a coordinator still rightfully claims.
	recovering bool
	recoverBy  int64
	syncNeed   map[int]bool

	// Failure detector.
	lastSeen  []int64
	suspected []bool
	nextHb    int64

	// Probe dedup: (initiator, target) pairs recently chased, with expiry.
	seen map[chaseKey]int64
}

type chaseKey struct {
	init   model.TxnID
	target model.TxnID
}

func newSimNode(id, shards int) *simNode {
	n := &simNode{id: id, up: true}
	n.reset(shards)
	return n
}

// reset zeroes all per-node state (crash, and initial construction).
func (n *simNode) reset(shards int) {
	n.locks = lock.NewManager()
	n.waiting = make(map[model.TxnID]*simWait)
	n.shotDone = make(map[model.TxnID]int)
	n.lastSeen = make([]int64, shards)
	n.suspected = make([]bool, shards)
	n.seen = make(map[chaseKey]int64)
	n.nextHb = 0
	n.recovering = false
	n.syncNeed = nil
}

// reqRec is one outstanding remote lock request, owned by the coordinator
// and retransmitted with capped backoff until the grant arrives.
type reqRec struct {
	entity   model.EntityID
	shard    int
	seq      int
	since    int64
	tries    int
	nextSend int64
}

// shotRec is one in-flight shot round: the participants still owing votes,
// and the full remote-participant set so the coordinator can stop believing
// the released grants once the shot commits.
type shotRec struct {
	shot     int
	need     map[int]bool
	parts    map[int]bool
	since    int64
	tries    int
	nextSend int64
}

type simStrand struct {
	proc  int
	since int64
}

type simChaos struct {
	at    int64
	apply func()
}

// SimControl is the sharded concurrency control the simulator drives
// through sched.Control, sched.Ticker, sched.Waker, and sched.AsyncAborter.
type SimControl struct {
	params SimParams
	shards int
	router *Router

	// Multilevel admission gate (nil when SimParams.Nest is nil): the
	// same online coherent closure sched.Preventer grants through. The
	// lock/shot plane owns distribution — who holds what, where, through
	// which failures — while the closure is the ground-truth conflict
	// oracle that keeps early release at shot boundaries sound.
	nest *nest.Nest
	oc   *coherent.Online

	bus   *mnet.Bus
	nodes []*simNode

	// Control plane, carried by the migrating transactions themselves
	// (like dist.Preventer's): priorities, incarnation epochs, coordinator
	// placement, and each coordinator's record of its remote grants.
	prio    map[model.TxnID]int64
	epoch   map[model.TxnID]int
	coord   map[model.TxnID]int
	granted map[model.TxnID]map[model.EntityID]bool

	unitParts   map[model.TxnID]map[int]bool // shards touched in the open unit
	shotIdx     map[model.TxnID]int
	pendingReq  map[model.TxnID]*reqRec
	pendingShot map[model.TxnID]*shotRec
	stranded    map[model.TxnID]*simStrand
	waitSite    map[model.TxnID]int // shard holding t's wait record
	finished    map[model.TxnID]bool
	crossed     map[model.TxnID]bool
	victims     map[model.TxnID]bool // asynchronous abort queue

	chaos    []simChaos
	chaosIdx int

	now   int64
	stats sched.Stats

	Shots          int // breakpoint units committed through the shot protocol
	CrossShard     int // finished transactions that touched more than one shard
	GraceAborts    int // waiters aborted after the unreachability grace period
	CrashAborts    int // transactions lost with their crashed coordinator
	ProbeDeadlocks int // cross-shard deadlock cycles closed by probes
	Retransmits    int // lock-request and shot retransmissions beyond the first
}

// NewSimControl creates the sharded control with full network, failure, and
// chaos configuration.
func NewSimControl(pr SimParams) *SimControl {
	pr = pr.withDefaults()
	c := &SimControl{
		params:      pr,
		shards:      pr.Shards,
		router:      NewRouter(pr.Shards),
		prio:        make(map[model.TxnID]int64),
		epoch:       make(map[model.TxnID]int),
		coord:       make(map[model.TxnID]int),
		granted:     make(map[model.TxnID]map[model.EntityID]bool),
		unitParts:   make(map[model.TxnID]map[int]bool),
		shotIdx:     make(map[model.TxnID]int),
		pendingReq:  make(map[model.TxnID]*reqRec),
		pendingShot: make(map[model.TxnID]*shotRec),
		stranded:    make(map[model.TxnID]*simStrand),
		waitSite:    make(map[model.TxnID]int),
		finished:    make(map[model.TxnID]bool),
		crossed:     make(map[model.TxnID]bool),
		victims:     make(map[model.TxnID]bool),
	}
	if pr.Nest != nil {
		c.nest = pr.Nest
		c.oc = coherent.NewOnline(pr.Nest.K(), pr.Nest.Level)
	}
	pol := pr.NetPolicy
	if pol == nil && pr.Faults != nil {
		inj := pr.Faults
		pol = func(m mnet.Message) (bool, int64) { return inj.Net(m.Kind.String()) }
	}
	c.bus = mnet.New(pr.Shards, pr.Delay, pol)
	c.bus.OnDeliver(c.receive)
	c.nodes = make([]*simNode, pr.Shards)
	for i := range c.nodes {
		c.nodes[i] = newSimNode(i, pr.Shards)
	}
	c.buildChaos()
	return c
}

// Name implements sched.Control.
func (c *SimControl) Name() string { return fmt.Sprintf("shard/s=%d", c.shards) }

// Router returns the entity→shard assignment the control decides with.
func (c *SimControl) Router() *Router { return c.router }

// NetStats returns the bus traffic counters.
func (c *SimControl) NetStats() mnet.Stats { return c.bus.Stats() }

// Stats implements sched.Control.
func (c *SimControl) Stats() *sched.Stats { return &c.stats }

// DeadlineAborted implements the sched.DeadlineAborter capability.
func (c *SimControl) DeadlineAborted(model.TxnID) { c.stats.Deadlines++ }

// Begin implements sched.Control. Each (re)start bumps the transaction's
// epoch, fencing every in-flight message about the previous incarnation.
func (c *SimControl) Begin(t model.TxnID, prio int64) {
	c.prio[t] = prio
	c.epoch[t]++
	c.forget(t)
}

// forget erases all per-transaction state except priority and epoch,
// releasing any locks the incarnation still holds anywhere. The synchronous
// cross-shard release is a control-plane event the migrating transaction
// itself carries (exactly dist.Preventer's justification for Aborted); the
// message-driven data plane never relies on it, only benefits.
func (c *SimControl) forget(t model.TxnID) {
	delete(c.coord, t)
	delete(c.granted, t)
	delete(c.unitParts, t)
	delete(c.shotIdx, t)
	delete(c.pendingReq, t)
	delete(c.pendingShot, t)
	delete(c.stranded, t)
	delete(c.finished, t)
	delete(c.crossed, t)
	delete(c.victims, t)
	c.clearWait(t)
	for _, n := range c.nodes {
		delete(n.waiting, t)
		delete(n.shotDone, t)
		for _, w := range n.waiting {
			delete(w.blockers, t)
		}
		if n.up {
			n.locks.Release(t)
		}
	}
	for _, n := range c.nodes {
		if n.up {
			c.grantPass(n)
		}
	}
}

// Request implements sched.Control. A step homed at the coordinator's own
// shard acquires directly; a remote step opens (or re-checks) a LockRequest
// round. A transaction at a shot boundary waits until every participant
// voted — the next unit must not overlap the uncommitted shot.
func (c *SimControl) Request(t model.TxnID, seq int, x model.EntityID) sched.Decision {
	c.stats.Requests++
	if c.pendingShot[t] != nil {
		c.stats.Waits++
		return sched.Decision{Kind: sched.Wait}
	}
	s := c.router.Shard(x)
	co, ok := c.coord[t]
	if !ok {
		co = s
		c.coord[t] = co
	}
	if !c.nodes[co].up {
		return c.strand(t, co)
	}
	// Multilevel delay rule (Section 6): every closure predecessor must
	// have closed the segment containing its step at the pair level before
	// this step may proceed — the lock plane alone would re-admit any
	// requester the moment a shot boundary releases, which is only legal
	// for observers coarse enough to interleave there. The wait record
	// lands at the coordinator's shard so local cycle detection and
	// cross-shard probes resolve closure deadlocks like lock deadlocks.
	if c.oc != nil {
		if blk := c.closureBlockers(t, x); len(blk) > 0 {
			n := c.nodes[co]
			w := c.setWait(n, t, x, seq)
			w.blockers = blk
			if cycle := c.localCycle(n, t); len(cycle) > 0 {
				victim := c.youngest(cycle)
				c.clearWait(t)
				if victim != t {
					c.stats.Wounds++
				}
				return sched.Decision{Kind: sched.Abort, Victims: []model.TxnID{victim}}
			}
			c.stats.Waits++
			return sched.Decision{Kind: sched.Wait}
		}
	}
	node := c.nodes[s]
	if s == co {
		delete(c.stranded, t)
		if node.recovering {
			c.stats.Waits++
			return sched.Decision{Kind: sched.Wait}
		}
		ok, holder := node.locks.TryAcquire(t, x)
		if ok {
			c.clearWait(t)
			c.stats.Grants++
			return sched.Decision{Kind: sched.Grant}
		}
		w := c.setWait(node, t, x, seq)
		w.blockers = map[model.TxnID]bool{holder: true}
		if cycle := c.localCycle(node, t); len(cycle) > 0 {
			victim := c.youngest(cycle)
			c.clearWait(t)
			if victim != t {
				c.stats.Wounds++
			}
			return sched.Decision{Kind: sched.Abort, Victims: []model.TxnID{victim}}
		}
		c.stats.Waits++
		return sched.Decision{Kind: sched.Wait}
	}
	// Remote shard: the coordinator's own grant record is authoritative —
	// if the shard crashed since, anti-entropy re-installs the lock before
	// the rejoined shard grants anything conflicting.
	if c.granted[t][x] {
		delete(c.stranded, t)
		c.clearWait(t)
		c.stats.Grants++
		return sched.Decision{Kind: sched.Grant}
	}
	if !node.up {
		return c.strand(t, s)
	}
	delete(c.stranded, t)
	pr := c.pendingReq[t]
	if pr == nil || pr.entity != x {
		c.clearWait(t)
		pr = &reqRec{entity: x, shard: s, seq: seq, since: c.now, nextSend: c.now}
		c.pendingReq[t] = pr
		c.sendLockReq(t, pr)
	}
	c.stats.Waits++
	return sched.Decision{Kind: sched.Wait}
}

// closureBlockers previews the coherent-closure predecessors of t's
// would-be step on x and returns the open ones whose segment is not yet
// closed at the pair level — exactly sched.Preventer's delay rule.
func (c *SimControl) closureBlockers(t model.TxnID, x model.EntityID) map[model.TxnID]bool {
	var blk map[model.TxnID]bool
	c.oc.ForEachPredOfNewStep(t, x, func(u model.TxnID, s int) {
		if u == t || c.finished[u] {
			return
		}
		if !c.oc.SegmentClosedAfter(u, s, c.nest.Level(u, t)) {
			if blk == nil {
				blk = make(map[model.TxnID]bool)
			}
			blk[u] = true
		}
	})
	return blk
}

func (c *SimControl) strand(t model.TxnID, proc int) sched.Decision {
	if st := c.stranded[t]; st == nil {
		c.stranded[t] = &simStrand{proc: proc, since: c.now}
	} else {
		st.proc = proc
	}
	c.stats.Waits++
	return sched.Decision{Kind: sched.Wait}
}

// Performed implements sched.Control: the step's shard joins the open
// unit's participant set; a coarseness-2 breakpoint commits the unit as one
// shot. Finer breakpoints (cut > 2) do NOT end the shot — only at a
// coarseness-2 cut may every observer interleave, so releasing locks there
// is the one boundary that is safe for all levels at once; holding through
// finer cuts keeps the control conservative (it admits a strict subset of
// the MLA-legal histories). cut == 0 (no breakpoint, or the last step)
// likewise continues the unit; the final unit commits at Finished.
func (c *SimControl) Performed(t model.TxnID, seq int, x model.EntityID, cut int) {
	if c.oc != nil {
		if !c.oc.AddStep(t, x) {
			// The delay rule makes a cycle at insertion impossible;
			// hitting one means the gate was bypassed — fail loudly.
			panic(fmt.Sprintf("shard: sim control admitted a cyclic step %s on %s", t, x))
		}
		if cut > 0 {
			c.oc.AddCut(t, cut)
		}
	}
	s := c.router.Shard(x)
	up := c.unitParts[t]
	if up == nil {
		up = make(map[int]bool)
		c.unitParts[t] = up
	}
	up[s] = true
	co, ok := c.coord[t]
	if !ok {
		co = s
		c.coord[t] = co
	}
	if s != co {
		c.crossed[t] = true
	}
	if cut != 2 {
		return
	}
	delete(c.unitParts, t)
	// The coordinator's shard prepares inline: its locks for the unit
	// release at the boundary, before any remote vote is awaited — the
	// shot's outcome is already determined (all steps performed).
	if up[co] {
		if n := c.nodes[co]; n.up {
			n.locks.Release(t)
			c.grantPass(n)
		}
	}
	c.shotIdx[t]++
	need := make(map[int]bool)
	for q := range up {
		if q != co {
			need[q] = true
		}
	}
	if len(need) == 0 {
		c.Shots++
		return
	}
	parts := make(map[int]bool, len(need))
	for q := range need {
		parts[q] = true
	}
	sr := &shotRec{shot: c.shotIdx[t], need: need, parts: parts, since: c.now, nextSend: c.now}
	c.pendingShot[t] = sr
	c.sendShot(t, sr)
}

// Finished implements sched.Control: the final unit commits implicitly and
// every lock the transaction still holds is released (see forget for the
// synchronous-release justification).
func (c *SimControl) Finished(t model.TxnID) {
	c.finished[t] = true
	if c.crossed[t] {
		c.CrossShard++
	}
	delete(c.pendingReq, t)
	delete(c.pendingShot, t)
	delete(c.stranded, t)
	delete(c.coord, t)
	delete(c.granted, t)
	delete(c.unitParts, t)
	delete(c.shotIdx, t)
	delete(c.crossed, t)
	c.clearWait(t)
	for _, n := range c.nodes {
		if n.up {
			n.locks.Release(t)
		}
	}
	for _, n := range c.nodes {
		if n.up {
			c.grantPass(n)
		}
	}
}

// Aborted implements sched.Control. The epoch bump fences every in-flight
// message about the rolled-back incarnations.
func (c *SimControl) Aborted(victims []model.TxnID) {
	c.stats.Aborts += len(victims)
	drop := make(map[model.TxnID]bool, len(victims))
	for _, t := range victims {
		drop[t] = true
		c.epoch[t]++
		c.forget(t)
	}
	if c.oc != nil {
		c.oc.Rebuild(drop)
	}
}

// TakeVictims implements sched.AsyncAborter: transactions the protocol
// machinery (probes, failure detector, crashes) decided to abort since the
// last drain, sorted for determinism.
func (c *SimControl) TakeVictims() []model.TxnID {
	if len(c.victims) == 0 {
		return nil
	}
	out := make([]model.TxnID, 0, len(c.victims))
	for t := range c.victims {
		if c.finished[t] {
			continue
		}
		out = append(out, t)
	}
	c.victims = make(map[model.TxnID]bool)
	model.SortTxnIDs(out)
	return out
}

func (c *SimControl) enqueueVictim(t model.TxnID) {
	if _, began := c.prio[t]; !began || c.finished[t] {
		return
	}
	c.victims[t] = true
}

func (c *SimControl) prioOf(t model.TxnID) int64 {
	if pr, ok := c.prio[t]; ok {
		return pr
	}
	return -1
}

// youngest picks the abort victim from a cycle: highest priority value
// (youngest), ties broken toward the larger ID — the same rule as dist.
func (c *SimControl) youngest(cycle []model.TxnID) model.TxnID {
	victim := cycle[0]
	best := c.prioOf(victim)
	for _, u := range cycle[1:] {
		if pr := c.prioOf(u); pr > best || (pr == best && u > victim) {
			victim, best = u, pr
		}
	}
	return victim
}

// setWait installs (or refreshes) t's wait record at node n.
func (c *SimControl) setWait(n *simNode, t model.TxnID, x model.EntityID, seq int) *simWait {
	if w := n.waiting[t]; w != nil && w.entity == x && w.epoch == c.epoch[t] {
		w.seq = seq
		return w
	}
	c.clearWait(t)
	w := &simWait{
		entity: x, seq: seq, epoch: c.epoch[t],
		since: c.now, nextProbe: c.now + c.params.ProbeAfter,
	}
	n.waiting[t] = w
	c.waitSite[t] = n.id
	return w
}

// clearWait drops t's wait record wherever it is held.
func (c *SimControl) clearWait(t model.TxnID) {
	if q, ok := c.waitSite[t]; ok {
		delete(c.nodes[q].waiting, t)
		delete(c.waitSite, t)
	}
}

// grantPass retries every wait queued at a node after its lock table
// changed. Remote waiters are granted by message; local waiters only get
// their blocker sets refreshed — the simulator re-offers their Request,
// which acquires directly.
func (c *SimControl) grantPass(n *simNode) {
	if n.recovering {
		return
	}
	for _, t := range sortedTxnKeys(n.waiting) {
		w := n.waiting[t]
		if w.epoch != c.epoch[t] || c.finished[t] {
			delete(n.waiting, t)
			if c.waitSite[t] == n.id {
				delete(c.waitSite, t)
			}
			continue
		}
		if c.coord[t] == n.id {
			if h := n.locks.HolderOf(w.entity); h == "" || h == t {
				w.blockers = nil
			}
			continue
		}
		ok, holder := n.locks.TryAcquire(t, w.entity)
		if !ok {
			w.blockers = map[model.TxnID]bool{holder: true}
			continue
		}
		delete(n.waiting, t)
		delete(c.waitSite, t)
		c.bus.Send(mnet.Message{
			Kind: mnet.LockGrant, From: n.id, To: c.coord[t],
			Txn: t, Epoch: w.epoch, Entity: w.entity,
		})
	}
}

// sendLockReq transmits the outstanding request and schedules the next
// retransmission with capped exponential backoff.
func (c *SimControl) sendLockReq(t model.TxnID, pr *reqRec) {
	c.bus.Send(mnet.Message{
		Kind: mnet.LockRequest, From: c.coord[t], To: pr.shard,
		Txn: t, Epoch: c.epoch[t], Entity: pr.entity,
	})
	if pr.tries > 0 {
		c.Retransmits++
	}
	pr.tries++
	shift := pr.tries - 1
	if shift > 4 {
		shift = 4
	}
	pr.nextSend = c.now + c.params.RetransmitEvery<<uint(shift)
}

// sendShot transmits ShotPrepare to every participant still owing a vote.
func (c *SimControl) sendShot(t model.TxnID, sr *shotRec) {
	co := c.coord[t]
	for _, q := range sortedIntKeys(sr.need) {
		c.bus.Send(mnet.Message{
			Kind: mnet.ShotPrepare, From: co, To: q,
			Txn: t, Epoch: c.epoch[t], Shot: sr.shot,
		})
		if sr.tries > 0 {
			c.Retransmits++
		}
	}
	sr.tries++
	shift := sr.tries - 1
	if shift > 4 {
		shift = 4
	}
	sr.nextSend = c.now + c.params.RetransmitEvery<<uint(shift)
}

// localCycle is a DFS over the waits-for edges recorded at one shard
// (deterministic order). Cycles spanning shards have no single holder of
// all their edges; those are found by probes.
func (c *SimControl) localCycle(n *simNode, t model.TxnID) []model.TxnID {
	var path []model.TxnID
	onPath := map[model.TxnID]bool{}
	visited := map[model.TxnID]bool{}
	var dfs func(u model.TxnID) []model.TxnID
	dfs = func(u model.TxnID) []model.TxnID {
		if onPath[u] {
			for i, w := range path {
				if w == u {
					return append([]model.TxnID(nil), path[i:]...)
				}
			}
			return path
		}
		if visited[u] {
			return nil
		}
		visited[u] = true
		onPath[u] = true
		path = append(path, u)
		if w := n.waiting[u]; w != nil {
			for _, v := range sortedTxnKeys(w.blockers) {
				if cyc := dfs(v); cyc != nil {
					return cyc
				}
			}
		}
		onPath[u] = false
		path = path[:len(path)-1]
		return nil
	}
	return dfs(t)
}

// ---- clock, chaos, and periodic machinery ----

// buildChaos translates the fault plan's partition and processor-crash
// schedules into a sorted event list applied on the simulated clock.
func (c *SimControl) buildChaos() {
	if c.params.Faults == nil {
		return
	}
	plan := c.params.Faults.Plan()
	for i, part := range plan.Partitions {
		name := part.Name
		if name == "" {
			name = "partition"
		}
		sides := part.Sides
		if len(sides) == 0 {
			var a, b []int
			for q := 0; q < c.shards; q++ {
				if q < (c.shards+1)/2 {
					a = append(a, q)
				} else {
					b = append(b, q)
				}
			}
			sides = [][]int{a, b}
		}
		key := name
		if i > 0 {
			key = name + string(rune('a'+i%26))
		}
		c.chaos = append(c.chaos, simChaos{at: part.At, apply: func() { c.bus.Partition(key, sides...) }})
		if part.Heal > 0 {
			c.chaos = append(c.chaos, simChaos{at: part.Heal, apply: func() { c.bus.Heal(key) }})
		}
	}
	for _, cr := range plan.ProcCrashes {
		q := cr.Proc % c.shards
		c.chaos = append(c.chaos, simChaos{at: cr.At, apply: func() { c.crashProc(q) }})
		if cr.Rejoin > 0 {
			c.chaos = append(c.chaos, simChaos{at: cr.Rejoin, apply: func() { c.rejoinProc(q) }})
		}
	}
	sort.SliceStable(c.chaos, func(i, j int) bool { return c.chaos[i].at < c.chaos[j].at })
}

// Tick implements sched.Ticker: advance the clock, apply due chaos,
// deliver matured messages, and run every shard's periodic machinery.
func (c *SimControl) Tick(now int64) {
	if now < c.now {
		return
	}
	c.now = now
	for c.chaosIdx < len(c.chaos) && c.chaos[c.chaosIdx].at <= now {
		c.chaos[c.chaosIdx].apply()
		c.chaosIdx++
	}
	c.bus.Tick(now)
	if c.shards > 1 {
		for _, n := range c.nodes {
			if n.up {
				c.heartbeat(n)
			}
		}
		c.recoverySweep()
		c.retransmit()
		c.probeSweep()
	}
	c.graceSweep()
}

// NextWake implements sched.Waker: the earliest instant any timer or
// in-flight message needs a Tick.
func (c *SimControl) NextWake(int64) int64 {
	var next int64
	earlier := func(at int64) {
		if at > 0 && (next == 0 || at < next) {
			next = at
		}
	}
	if c.chaosIdx < len(c.chaos) {
		earlier(c.chaos[c.chaosIdx].at)
	}
	earlier(c.bus.NextDelivery())
	if c.shards > 1 {
		for _, n := range c.nodes {
			if n.up {
				earlier(n.nextHb)
			}
			if n.recovering {
				earlier(n.recoverBy)
			}
		}
		for _, pr := range c.pendingReq {
			earlier(pr.nextSend)
		}
		for _, sr := range c.pendingShot {
			earlier(sr.nextSend)
		}
	}
	return next
}

// heartbeat broadcasts liveness on schedule and turns prolonged silence
// into suspicion.
func (c *SimControl) heartbeat(n *simNode) {
	if c.now >= n.nextHb {
		n.nextHb = c.now + c.params.HeartbeatEvery
		c.bus.Broadcast(mnet.Message{Kind: mnet.Heartbeat, From: n.id})
	}
	for q := 0; q < c.shards; q++ {
		if q == n.id || n.suspected[q] {
			continue
		}
		if c.now-n.lastSeen[q] > c.params.SuspectAfter {
			n.suspected[q] = true
		}
	}
}

// recoverySweep ends anti-entropy recovery at its deadline even when some
// peers never replied (they may have crashed too): waiting forever would
// trade a bounded resync window for unavailability.
func (c *SimControl) recoverySweep() {
	for _, n := range c.nodes {
		if n.up && n.recovering && c.now >= n.recoverBy {
			n.recovering = false
			c.grantPass(n)
		}
	}
}

// retransmit resends outstanding lock requests and shot rounds whose
// backoff expired. A sender whose coordinator shard is down stays quiet —
// the crash already queued the transaction for abort.
func (c *SimControl) retransmit() {
	for _, t := range sortedTxnKeys(c.pendingReq) {
		pr := c.pendingReq[t]
		if co, ok := c.coord[t]; !ok || !c.nodes[co].up || c.now < pr.nextSend {
			continue
		}
		c.sendLockReq(t, pr)
	}
	for _, t := range sortedTxnKeys(c.pendingShot) {
		sr := c.pendingShot[t]
		if co, ok := c.coord[t]; !ok || !c.nodes[co].up || c.now < sr.nextSend {
			continue
		}
		c.sendShot(t, sr)
	}
}

// probeSweep starts (and periodically restarts) edge-chasing probes for
// requests blocked past ProbeAfter. Probes are unreliable messages;
// re-probing makes detection survive loss.
func (c *SimControl) probeSweep() {
	for _, n := range c.nodes {
		if !n.up {
			continue
		}
		for _, t := range sortedTxnKeys(n.waiting) {
			w := n.waiting[t]
			if w.epoch != c.epoch[t] {
				continue
			}
			if c.now-w.since < c.params.ProbeAfter || c.now < w.nextProbe {
				continue
			}
			w.nextProbe = c.now + c.params.ProbeEvery
			for _, u := range sortedTxnKeys(w.blockers) {
				c.sendProbe(n.id, t, c.epoch[t], u, t, c.prioOf(t))
			}
		}
	}
}

// sendProbe routes a probe to the shard holding target's wait record; a
// local target is chased inline without touching the bus.
func (c *SimControl) sendProbe(from int, init model.TxnID, initEpoch int, target, victim model.TxnID, victimPrio int64) {
	dst, ok := c.waitSite[target]
	if !ok {
		return // target is not blocked: no deadlock via this edge
	}
	m := mnet.Message{
		Kind: mnet.Probe, From: from, To: dst,
		Txn: target, Epoch: c.epoch[target],
		Init: init, InitEpoch: initEpoch,
		Victim: victim, VictimPrio: victimPrio,
	}
	if dst == from {
		c.onProbe(m)
		return
	}
	c.bus.Send(m)
}

// graceSweep aborts transactions that cannot make progress because of an
// unreachable shard, once the grace period expires: requests stranded at a
// crashed processor, lock requests and shot rounds addressed to dead or
// suspected participants, and waiters whose blockers are coordinated by an
// unreachable peer.
func (c *SimControl) graceSweep() {
	for _, t := range sortedTxnKeys(c.stranded) {
		st := c.stranded[t]
		if c.nodes[st.proc].up {
			delete(c.stranded, t) // re-offer will re-decide at the live shard
			continue
		}
		if c.now-st.since > c.params.Grace {
			c.GraceAborts++
			c.enqueueVictim(t)
			delete(c.stranded, t)
		}
	}
	if c.shards == 1 {
		return
	}
	for _, t := range sortedTxnKeys(c.pendingReq) {
		pr := c.pendingReq[t]
		co, ok := c.coord[t]
		if !ok || !c.nodes[co].up {
			continue // the coordinator crash already queued the abort
		}
		cn := c.nodes[co]
		if c.nodes[pr.shard].up && !cn.suspected[pr.shard] {
			continue
		}
		if c.now-pr.since > c.params.Grace {
			c.GraceAborts++
			c.enqueueVictim(t)
			pr.since = c.now // don't re-fire while the abort drains
		}
	}
	for _, t := range sortedTxnKeys(c.pendingShot) {
		sr := c.pendingShot[t]
		co, ok := c.coord[t]
		if !ok || !c.nodes[co].up {
			continue
		}
		cn := c.nodes[co]
		unreachable := false
		for q := range sr.need {
			if !c.nodes[q].up || cn.suspected[q] {
				unreachable = true
				break
			}
		}
		if !unreachable {
			continue
		}
		if c.now-sr.since > c.params.Grace {
			c.GraceAborts++
			c.enqueueVictim(t)
			sr.since = c.now
		}
	}
	for _, n := range c.nodes {
		if !n.up {
			continue
		}
		for _, t := range sortedTxnKeys(n.waiting) {
			w := n.waiting[t]
			unreachable := false
			for u := range w.blockers {
				cu, ok := c.coord[u]
				if !ok || cu == n.id {
					continue
				}
				if n.suspected[cu] || !c.nodes[cu].up {
					unreachable = true
					break
				}
			}
			if !unreachable {
				w.strandedSince = 0
				continue
			}
			if w.strandedSince == 0 {
				w.strandedSince = c.now
				continue
			}
			if c.now-w.strandedSince > c.params.Grace {
				c.GraceAborts++
				c.enqueueVictim(t)
				w.strandedSince = c.now
			}
		}
	}
}

// crashProc kills shard q: its lock table and soft state vanish, its
// in-flight mailbox dies on the bus, and every transaction it coordinates
// is lost with it (their control state has no other home). Transactions
// coordinated elsewhere keep their claims — anti-entropy restores their
// locks here on rejoin.
func (c *SimControl) crashProc(q int) {
	n := c.nodes[q]
	if !n.up {
		return
	}
	n.reset(c.shards)
	n.up = false
	c.bus.Crash(q)
	for _, t := range sortedTxnKeys(c.waitSite) {
		if c.waitSite[t] == q {
			delete(c.waitSite, t)
		}
	}
	for _, t := range sortedTxnKeys(c.coord) {
		if c.coord[t] == q && !c.finished[t] {
			c.CrashAborts++
			c.enqueueVictim(t)
		}
	}
}

// rejoinProc restarts shard q with an empty lock table: it asks every live
// peer for the locks their coordinated transactions claim here, and grants
// nothing until the resync completes (or its deadline passes).
func (c *SimControl) rejoinProc(q int) {
	n := c.nodes[q]
	if n.up {
		return
	}
	n.up = true
	for i := range n.lastSeen {
		n.lastSeen[i] = c.now
		n.suspected[i] = false
	}
	n.nextHb = c.now
	c.bus.Restart(q)
	if c.shards == 1 {
		return
	}
	n.syncNeed = make(map[int]bool)
	for p := 0; p < c.shards; p++ {
		if p != q && c.nodes[p].up {
			n.syncNeed[p] = true
		}
	}
	if len(n.syncNeed) > 0 {
		n.recovering = true
		n.recoverBy = c.now + c.params.SuspectAfter
	}
	c.bus.Broadcast(mnet.Message{Kind: mnet.SyncRequest, From: q})
	// Re-arm every sender that was waiting out q's downtime.
	for _, t := range sortedTxnKeys(c.pendingReq) {
		if pr := c.pendingReq[t]; pr.shard == q {
			pr.tries = 0
			pr.nextSend = c.now
		}
	}
	for _, t := range sortedTxnKeys(c.pendingShot) {
		if sr := c.pendingShot[t]; sr.need[q] {
			sr.tries = 0
			sr.nextSend = c.now
		}
	}
}

// ---- message handlers ----

// receive is the bus delivery callback: dispatch one message to its
// destination shard. Any message is liveness evidence for its sender.
func (c *SimControl) receive(m mnet.Message) {
	n := c.nodes[m.To]
	if !n.up {
		return
	}
	n.lastSeen[m.From] = c.now
	n.suspected[m.From] = false
	switch m.Kind {
	case mnet.Heartbeat:
		// Liveness already recorded above.
	case mnet.LockRequest:
		c.onLockRequest(n, m)
	case mnet.LockGrant:
		c.onLockGrant(m)
	case mnet.ShotPrepare:
		c.onShotPrepare(n, m)
	case mnet.ShotVote:
		c.onShotVote(m)
	case mnet.Probe:
		c.onProbe(m)
	case mnet.SyncRequest:
		c.onSyncRequest(m)
	case mnet.SyncReply:
		c.onSyncReply(n, m)
	}
}

// onLockRequest tries to acquire at the owning shard. A recovering shard
// only queues the request; the post-resync grant pass answers it. A busy
// lock queues a wait record that the next release's grant pass (or a probe
// victim) resolves. Re-requests for an already-held lock re-grant
// idempotently, which is what makes lost LockGrants harmless.
func (c *SimControl) onLockRequest(n *simNode, m mnet.Message) {
	if m.Epoch != c.epoch[m.Txn] || c.finished[m.Txn] {
		return
	}
	if n.recovering {
		c.setWait(n, m.Txn, m.Entity, 0)
		return
	}
	ok, holder := n.locks.TryAcquire(m.Txn, m.Entity)
	if ok {
		if q, have := c.waitSite[m.Txn]; have && q == n.id {
			delete(n.waiting, m.Txn)
			delete(c.waitSite, m.Txn)
		}
		c.bus.Send(mnet.Message{
			Kind: mnet.LockGrant, From: m.To, To: m.From,
			Txn: m.Txn, Epoch: m.Epoch, Entity: m.Entity,
		})
		return
	}
	w := c.setWait(n, m.Txn, m.Entity, 0)
	w.blockers = map[model.TxnID]bool{holder: true}
}

// onLockGrant records the coordinator's claim. A grant that arrives after
// the transaction finished (or re-requested a different entity) still holds
// the lock at the sender — release it rather than leak it.
func (c *SimControl) onLockGrant(m mnet.Message) {
	t := m.Txn
	if m.Epoch != c.epoch[t] {
		return
	}
	if c.finished[t] {
		src := c.nodes[m.From]
		if src.up {
			src.locks.Release(t)
			c.grantPass(src)
		}
		return
	}
	g := c.granted[t]
	if g == nil {
		g = make(map[model.EntityID]bool)
		c.granted[t] = g
	}
	g[m.Entity] = true
	if pr := c.pendingReq[t]; pr != nil && pr.entity == m.Entity {
		delete(c.pendingReq, t)
	}
}

// onShotPrepare commits one shot at a participant: release the unit's
// locks, remember the shot index (so retransmitted prepares re-vote without
// tearing the next unit's locks), and vote.
func (c *SimControl) onShotPrepare(n *simNode, m mnet.Message) {
	if m.Epoch != c.epoch[m.Txn] {
		return
	}
	if n.shotDone[m.Txn] < m.Shot {
		n.shotDone[m.Txn] = m.Shot
		n.locks.Release(m.Txn)
		c.grantPass(n)
	}
	c.bus.Send(mnet.Message{
		Kind: mnet.ShotVote, From: m.To, To: m.From,
		Txn: m.Txn, Epoch: m.Epoch, Shot: m.Shot,
	})
}

// onShotVote collects one participant's vote; the last vote commits the
// shot and retires the coordinator's claims on the released shards — the
// next unit re-requests from scratch.
func (c *SimControl) onShotVote(m mnet.Message) {
	t := m.Txn
	sr := c.pendingShot[t]
	if sr == nil || sr.shot != m.Shot || m.Epoch != c.epoch[t] {
		return
	}
	delete(sr.need, m.From)
	if len(sr.need) > 0 {
		return
	}
	delete(c.pendingShot, t)
	c.Shots++
	if g := c.granted[t]; g != nil {
		for x := range g {
			if sr.parts[c.router.Shard(x)] {
				delete(g, x)
			}
		}
	}
}

// onProbe is one hop of the edge chase: if the probed transaction is
// waiting here, the probe forwards along its waits-for edge, keeping the
// youngest transaction seen; reaching the initiator closes a cycle and the
// carried victim is aborted.
func (c *SimControl) onProbe(m mnet.Message) {
	n := c.nodes[m.To]
	if !n.up || m.Epoch != c.epoch[m.Txn] || m.InitEpoch != c.epoch[m.Init] {
		return
	}
	w := n.waiting[m.Txn]
	if w == nil || w.epoch != m.Epoch {
		return // not blocked here: the chase dies
	}
	key := chaseKey{init: m.Init, target: m.Txn}
	if exp, ok := n.seen[key]; ok && c.now < exp {
		return
	}
	if len(n.seen) > 1024 {
		for k, exp := range n.seen {
			if c.now >= exp {
				delete(n.seen, k)
			}
		}
	}
	n.seen[key] = c.now + c.params.ProbeEvery
	victim, vprio := m.Victim, m.VictimPrio
	if pr := c.prioOf(m.Txn); pr > vprio || (pr == vprio && m.Txn > victim) {
		victim, vprio = m.Txn, pr
	}
	for _, u := range sortedTxnKeys(w.blockers) {
		if u == m.Init {
			if !c.victims[victim] && !c.finished[victim] {
				c.ProbeDeadlocks++
				c.enqueueVictim(victim)
			}
			continue
		}
		c.sendProbe(m.To, m.Init, m.InitEpoch, u, victim, vprio)
	}
}

// onSyncRequest answers anti-entropy: the replying shard reports, for every
// transaction it coordinates, the locks it believes granted at the
// requester. The claims are re-validated against the coordinator's live
// state at delivery, which fences shots and aborts that landed while the
// reply was in flight.
func (c *SimControl) onSyncRequest(m mnet.Message) {
	held := make(map[model.TxnID][]model.EntityID)
	for _, t := range sortedTxnKeys(c.coord) {
		if c.coord[t] != m.To || c.finished[t] {
			continue
		}
		for x := range c.granted[t] {
			if c.router.Shard(x) == m.From {
				held[t] = append(held[t], x)
			}
		}
	}
	c.bus.Send(mnet.Message{Kind: mnet.SyncReply, From: m.To, To: m.From, Held: held})
}

// onSyncReply re-installs a peer coordinator's surviving lock claims into
// the rejoined shard's empty table. Claims are exclusive by construction
// (they were granted locks), so re-acquisition cannot conflict; anything
// the coordinator released or aborted meanwhile fails the live-state check
// and is skipped.
func (c *SimControl) onSyncReply(n *simNode, m mnet.Message) {
	for _, t := range sortedTxnKeys(m.Held) {
		if c.coord[t] != m.From || c.finished[t] {
			continue
		}
		g := c.granted[t]
		for _, x := range m.Held[t] {
			if g[x] && c.router.Shard(x) == n.id {
				n.locks.TryAcquire(t, x)
			}
		}
	}
	if n.syncNeed != nil {
		delete(n.syncNeed, m.From)
	}
	if n.recovering && len(n.syncNeed) == 0 {
		n.recovering = false
		c.grantPass(n)
	}
}

// sortedTxnKeys returns the map's keys in sorted order (deterministic
// iteration for anything that sends messages or makes decisions).
func sortedTxnKeys[V any](m map[model.TxnID]V) []model.TxnID {
	out := make([]model.TxnID, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	model.SortTxnIDs(out)
	return out
}

func sortedIntKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for q := range m {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}
