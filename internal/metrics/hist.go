package metrics

import "math/bits"

// Histogram is a log-linear latency histogram in the HdrHistogram style:
// values are bucketed with a fixed relative error instead of being stored
// individually, so recording is O(1) with no allocation and a multi-million
// sample run costs the same memory as a short one (~30KB). Each power-of-two
// range is split into 64 sub-buckets, bounding the relative quantile error
// at 1/64 ≈ 1.6%; values below 64 are exact. The value domain is the full
// non-negative int64 range — nanosecond latencies up to ~292 years fit
// without clamping.
//
// A Histogram is not safe for concurrent use. The intended pattern is one
// Histogram per load-generator worker, combined with Merge at the end of the
// run; that keeps the record path free of shared-cache contention.
type Histogram struct {
	counts [nBuckets]uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits // sub-buckets per power-of-two range
	// Exponent e covers [histSubCount<<e, histSubCount<<(e+1)); the largest
	// int64 has bit length 63, so e ranges over [0, 63-histSubBits-1+1).
	nBuckets = (63 - histSubBits + 1) * histSubCount
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: int64(^uint64(0) >> 1)}
}

// bucketOf maps a value to its bucket index. Values in [0, 64) map to
// themselves; a value with e extra significant bits maps into the 64-wide
// band for its power-of-two range.
func bucketOf(v int64) int {
	if v < histSubCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - histSubBits - 1
	return (e+1)*histSubCount + int(v>>uint(e)) - histSubCount
}

// bucketMid returns the representative (midpoint) value of bucket i, used
// when reading quantiles back out.
func bucketMid(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	e := i/histSubCount - 1
	lower := int64(i-e*histSubCount) << uint(e)
	return lower + int64(1)<<uint(e)/2
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordCorrected adds a sample with coordinated-omission back-fill: when a
// measured service time exceeds the expected sampling interval, the stalled
// requests that a closed-loop driver silently failed to issue are
// reconstructed as v-interval, v-2·interval, … so the quantiles reflect the
// latency an open-loop arrival process would have observed. Open-loop
// drivers that timestamp from the *scheduled* arrival should use plain
// Record — their samples already include queueing delay.
func (h *Histogram) RecordCorrected(v, expectedInterval int64) {
	h.Record(v)
	if expectedInterval <= 0 {
		return
	}
	for missed := v - expectedInterval; missed >= expectedInterval; missed -= expectedInterval {
		h.Record(missed)
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the recorded samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Percentile returns the value at percentile p (0–100), within the 1.6%
// bucketing error; the exact recorded extremes are returned at the ends.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(p / 100 * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			m := bucketMid(i)
			if m < h.min {
				m = h.min
			}
			if m > h.max {
				m = h.max
			}
			return m
		}
	}
	return h.max
}
