package metrics

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Count() != 64 {
		t.Fatalf("count = %d, want 64", h.Count())
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min/max = %d/%d, want 0/63", h.Min(), h.Max())
	}
	// Values below 64 land in unit buckets, so quantiles are exact.
	if got := h.Percentile(50); got != 32 {
		t.Fatalf("p50 = %d, want 32", got)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	var samples []int64
	for i := 0; i < 200000; i++ {
		// Log-uniform over ~6 decades of "nanoseconds".
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v)
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := samples[int(p/100*float64(len(samples)-1))]
		got := h.Percentile(p)
		err := float64(got-exact) / float64(exact)
		if err < 0 {
			err = -err
		}
		if err > 0.02 {
			t.Errorf("p%.1f = %d vs exact %d: relative error %.3f > 2%%", p, got, exact, err)
		}
	}
}

func TestHistogramCorrected(t *testing.T) {
	// One 10ms stall at a 1ms expected interval back-fills 9 phantom
	// samples: 9ms, 8ms, ... 1ms.
	h := NewHistogram()
	h.RecordCorrected(10_000_000, 1_000_000)
	if h.Count() != 10 {
		t.Fatalf("corrected count = %d, want 10", h.Count())
	}
	// Uncorrected, the same stall is a single sample.
	u := NewHistogram()
	u.Record(10_000_000)
	if u.Count() != 1 {
		t.Fatalf("uncorrected count = %d, want 1", u.Count())
	}
	// The corrected median sits mid-stall; uncorrected it is the stall.
	if p50 := h.Percentile(50); p50 > 6_000_000 {
		t.Errorf("corrected p50 = %d, want mid-stall (≤6ms)", p50)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		if v%2 == 0 {
			a.Record(v * 1000)
		} else {
			b.Record(v * 1000)
		}
	}
	a.Merge(b)
	if a.Count() != 1000 {
		t.Fatalf("merged count = %d, want 1000", a.Count())
	}
	if a.Min() != 1000 || a.Max() != 1000000 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	p50 := a.Percentile(50)
	if p50 < 480000 || p50 > 520000 {
		t.Errorf("merged p50 = %d, want ≈500000", p50)
	}
	// Merging an empty histogram is a no-op.
	before := a.Count()
	a.Merge(NewHistogram())
	a.Merge(nil)
	if a.Count() != before {
		t.Errorf("empty merge changed count")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatalf("empty histogram not all-zero")
	}
}

func TestHistogramRecordAllocs(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Record(123456) }); n != 0 {
		t.Fatalf("Record allocates %v per call, want 0", n)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)*7919 + 1)
	}
}
