// Package metrics provides the small reporting toolkit used by the bench
// harness: aligned text tables and summary statistics over int64 samples.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = cellWidth(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && cellWidth(c) > widths[i] {
				widths[i] = cellWidth(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// cellWidth measures a cell's display width in runes, not bytes —
// multi-byte cells like Ratio's "∞" would otherwise misalign columns.
// (Runes approximate display columns well enough for the harness's output;
// none of it uses combining marks or double-width scripts.)
func cellWidth(s string) int { return utf8.RuneCountInString(s) }

func pad(s string, w int) string {
	if cellWidth(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-cellWidth(s))
}

// Summary holds order statistics of a sample set.
type Summary struct {
	N             int
	Min, Max      int64
	Mean          float64
	P50, P95, P99 int64
}

// Summarize computes order statistics. An empty input yields a zero
// Summary.
func Summarize(samples []int64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum int64
	for _, v := range s {
		sum += v
	}
	pct := func(p float64) int64 {
		i := int(p / 100 * float64(len(s)-1))
		return s[i]
	}
	return Summary{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Mean: float64(sum) / float64(len(s)),
		P50:  pct(50),
		P95:  pct(95),
		P99:  pct(99),
	}
}

// Ratio formats a/b as "x.xx×", guarding division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// RenderMarkdown writes the table as GitHub-flavored markdown.
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		fmt.Fprint(w, "|")
		for _, c := range cells {
			fmt.Fprintf(w, " %s |", c)
		}
		fmt.Fprintln(w)
	}
	row(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.rows {
		row(r)
	}
}
