package metrics

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.Row("alpha", 1)
	tbl.Row("b", 123.456)
	out := tbl.String()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "123.46") {
		t.Errorf("missing cells:\n%s", out)
	}
	// Columns aligned: the header row and data rows share prefix widths.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{5, 1, 9, 3, 7})
	if s.N != 5 || s.Min != 1 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 5 {
		t.Errorf("p50 = %d", s.P50)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %f", s.Mean)
	}
	if z := Summarize(nil); z.N != 0 || z.P99 != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	one := Summarize([]int64{42})
	if one.P50 != 42 || one.P99 != 42 || one.Min != 42 {
		t.Errorf("singleton = %+v", one)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []int64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.50x" {
		t.Errorf("Ratio = %s", Ratio(3, 2))
	}
	if Ratio(1, 0) != "∞" {
		t.Errorf("Ratio by zero = %s", Ratio(1, 0))
	}
}

// TestRenderAlignsNonASCII: column widths must be measured in runes, not
// bytes — Ratio's "∞" is three bytes wide in UTF-8 but one display column,
// so byte-based padding shifts every cell after it.
func TestRenderAlignsNonASCII(t *testing.T) {
	tbl := NewTable("", "control", "ratio", "note")
	tbl.Row("prevent", Ratio(1, 0), "zero baseline") // "∞"
	tbl.Row("detect", Ratio(3, 2), "ok")             // "1.50x"
	tbl.Row("naïve-2pl", "10.00x", "é")              // non-ASCII in other columns too
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	want := utf8.RuneCountInString(lines[0])
	for i, ln := range lines {
		if got := utf8.RuneCountInString(ln); got != want {
			t.Errorf("line %d is %d runes wide, header row is %d:\n%s", i, got, want, out)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := NewTable("demo", "a", "b")
	tbl.Row(1, "x")
	var buf strings.Builder
	tbl.RenderMarkdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| --- | --- |") || !strings.Contains(out, "| 1 | x |") {
		t.Errorf("markdown:\n%s", out)
	}
}
