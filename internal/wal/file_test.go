package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mla/internal/fault"
	"mla/internal/model"
)

func openFileDB(t *testing.T, dir string, o FileOptions) (*Medium, *DB) {
	t.Helper()
	m, err := OpenFile(dir, o)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	db, err := Open(m, fuzzInit())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m, db
}

// lastSegment returns the path of the highest-indexed segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	last := names[0]
	for _, n := range names[1:] {
		if n > last {
			last = n
		}
	}
	return last
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return len(names)
}

// TestFileRoundTrip: committed work persists across a close/reopen; the
// epoch bumps on every mount; losers are rolled back by recovery.
func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, db := openFileDB(t, dir, FileOptions{})
	if got := m.Recovery().Epoch; got != 1 {
		t.Fatalf("first mount epoch = %d, want 1", got)
	}

	mustPerform := func(id model.TxnID, seq int, x model.EntityID, delta model.Value) {
		t.Helper()
		if _, err := db.Perform(id, seq, x, func(v model.Value) (model.Value, string) {
			return v + delta, "add"
		}); err != nil {
			t.Fatalf("perform: %v", err)
		}
	}
	mustPerform("t0", 1, "a", 5)
	mustPerform("t1", 1, "b", 7)
	mustPerform("t2", 1, "c", 100) // loser: never commits
	if err := db.CommitGroup([]model.TxnID{"t0", "t1"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, db2 := openFileDB(t, dir, FileOptions{})
	if got := m2.Recovery().Epoch; got != 2 {
		t.Fatalf("second mount epoch = %d, want 2", got)
	}
	want := map[model.EntityID]model.Value{"a": 15, "b": 27, "c": -5}
	if got := db2.Values(); !sameValues(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for _, id := range []model.TxnID{"t0", "t1"} {
		if !db2.Committed(id) {
			t.Fatalf("%s lost its durable commit across restart", id)
		}
	}
	if db2.Committed("t2") {
		t.Fatal("loser t2 reported committed")
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileTornTail: a partial trailing frame (the write the process died
// inside) is truncated away, the surviving prefix recovers, and the repair
// is idempotent — a second mount finds nothing torn.
func TestFileTornTail(t *testing.T) {
	dir := t.TempDir()
	m, db := openFileDB(t, dir, FileOptions{})
	for i := 1; i <= 5; i++ {
		if _, err := db.Perform("t0", i, "a", func(v model.Value) (model.Value, string) {
			return v + 1, "inc"
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit("t0"); err != nil {
		t.Fatal(err)
	}
	recs := m.Records()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear mid-frame: cut the commit record's frame in half.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	good, _, derr := decodeFrames(data, 0)
	if derr != nil {
		t.Fatalf("clean log did not decode: %v", derr)
	}
	if good != int64(len(data)) {
		t.Fatalf("clean log has %d undecoded bytes", int64(len(data))-good)
	}
	// Find the offset of the last frame and cut inside it.
	prevGood, _, _ := decodeFrames(data[:good-1], 0)
	cut := prevGood + (good-prevGood)/2
	if err := os.Truncate(seg, cut); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatalf("mount after torn tail: %v", err)
	}
	info := m2.Recovery()
	if info.TornBytes != cut-prevGood {
		t.Fatalf("TornBytes = %d, want %d", info.TornBytes, cut-prevGood)
	}
	if info.Records != len(recs)-1 {
		t.Fatalf("recovered %d records, want %d (commit frame torn off)", info.Records, len(recs)-1)
	}
	db2, err := Open(m2, fuzzInit())
	if err != nil {
		t.Fatal(err)
	}
	// The commit was torn away: t0 is a loser, its updates undone.
	if db2.Committed("t0") {
		t.Fatal("t0 committed despite torn commit record")
	}
	if got := db2.Get("a"); got != 10 {
		t.Fatalf("a = %d after undo, want 10", got)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// Idempotent repair: the next mount sees a clean log.
	m3, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tb := m3.Recovery().TornBytes; tb != 0 {
		t.Fatalf("second mount still torn: %d bytes", tb)
	}
	if _, err := Open(m3, fuzzInit()); err != nil {
		t.Fatal(err)
	}
	m3.Close()
}

// TestFileMidLogCorruption: an undecodable frame in a non-final segment is
// corruption, not a torn tail — the mount must fail loudly.
func TestFileMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation.
	m, db := openFileDB(t, dir, FileOptions{SegmentBytes: 128})
	for i := 1; i <= 20; i++ {
		if _, err := db.Perform("t0", i, "a", func(v model.Value) (model.Value, string) {
			return v + 1, "inc"
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countSegments(t, dir); n < 2 {
		t.Fatalf("wanted multiple segments, got %d", n)
	}

	// Flip a payload byte in the FIRST segment.
	names, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	first := names[0]
	for _, n := range names[1:] {
		if n < first {
			first = n
		}
	}
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[6] ^= 0x40
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenFile(dir, FileOptions{SegmentBytes: 128}); err == nil {
		t.Fatal("mount accepted mid-log corruption")
	}
}

// TestFileCheckpointCompact: compaction drops every segment behind the
// checkpoint, the committed set survives in the checkpoint's Done list, and
// the recovery replay distance restarts from the checkpoint.
func TestFileCheckpointCompact(t *testing.T) {
	dir := t.TempDir()
	m, db := openFileDB(t, dir, FileOptions{SegmentBytes: 256})
	for i := 0; i < 10; i++ {
		id := model.TxnID("t" + string(rune('0'+i)))
		if _, err := db.Perform(id, 1, "a", func(v model.Value) (model.Value, string) {
			return v + 1, "inc"
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.Commit(id); err != nil {
			t.Fatal(err)
		}
	}
	if db.RecordsSinceCheckpoint() != 20 {
		t.Fatalf("RecordsSinceCheckpoint = %d, want 20", db.RecordsSinceCheckpoint())
	}
	if err := db.CheckpointCompact(); err != nil {
		t.Fatal(err)
	}
	if db.RecordsSinceCheckpoint() != 0 {
		t.Fatalf("RecordsSinceCheckpoint = %d after compaction, want 0", db.RecordsSinceCheckpoint())
	}
	if n := countSegments(t, dir); n != 1 {
		t.Fatalf("%d segments after compaction, want 1", n)
	}
	if n := m.Len(); n != 1 {
		t.Fatalf("%d cached records after compaction, want 1", n)
	}
	// Post-checkpoint work.
	if _, err := db.Perform("u0", 1, "b", func(v model.Value) (model.Value, string) {
		return v * 2, "dbl"
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit("u0"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, db2 := openFileDB(t, dir, FileOptions{SegmentBytes: 256})
	// Replay is bounded by the checkpoint: only the 2 post-checkpoint
	// records, not the 20 compacted ones.
	if sc := m2.Recovery().SinceCheckpoint; sc != 2 {
		t.Fatalf("SinceCheckpoint = %d after restart, want 2", sc)
	}
	want := map[model.EntityID]model.Value{"a": 20, "b": 40, "c": -5}
	if got := db2.Values(); !sameValues(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	// The compacted prefix's commits survived via the checkpoint's Done set.
	for i := 0; i < 10; i++ {
		id := model.TxnID("t" + string(rune('0'+i)))
		if !db2.Committed(id) {
			t.Fatalf("%s lost its commit across compaction + restart", id)
		}
	}
	m2.Close()
}

// TestFileCheckpointRequiresQuiescence mirrors the in-memory rule for the
// compacting variant.
func TestFileCheckpointRequiresQuiescence(t *testing.T) {
	dir := t.TempDir()
	m, db := openFileDB(t, dir, FileOptions{})
	defer m.Close()
	if _, err := db.Perform("t0", 1, "a", func(v model.Value) (model.Value, string) {
		return v + 1, "inc"
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckpointCompact(); err == nil {
		t.Fatal("compacting checkpoint allowed with a live transaction")
	}
}

// TestFileDiskFaultRetry: transient write, short-write, and fsync faults at
// substantial rates are absorbed by the retry loop — every append lands,
// nothing degrades, and a restart recovers the full state.
func TestFileDiskFaultRetry(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(fault.Plan{
		Seed:               42,
		DiskWriteErrRate:   0.3,
		DiskShortWriteRate: 0.3,
		DiskSyncErrRate:    0.3,
	})
	m, db := openFileDB(t, dir, FileOptions{SegmentBytes: 512, Faults: inj})
	for i := 1; i <= 30; i++ {
		if _, err := db.Perform("t0", i, "a", func(v model.Value) (model.Value, string) {
			return v + 1, "inc"
		}); err != nil {
			t.Fatalf("perform %d under transient faults: %v", i, err)
		}
	}
	if err := db.Commit("t0"); err != nil {
		t.Fatalf("commit under transient faults: %v", err)
	}
	if err := db.Sync(); err != nil {
		t.Fatalf("sync under transient faults: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart WITHOUT faults: the on-disk log must be whole — retries
	// rewrote every torn frame before moving on.
	m2, db2 := openFileDB(t, dir, FileOptions{SegmentBytes: 512})
	if tb := m2.Recovery().TornBytes; tb != 0 {
		t.Fatalf("retried writes left %d torn bytes", tb)
	}
	if got := db2.Get("a"); got != 40 {
		t.Fatalf("a = %d, want 40", got)
	}
	if !db2.Committed("t0") {
		t.Fatal("commit lost")
	}
	m2.Close()
}

// TestFileDiskFullDegrades: once the injected byte budget is exhausted the
// medium latches degraded — the failing append reports ErrDegraded, and so
// does every later operation, fast.
func TestFileDiskFullDegrades(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(fault.Plan{Seed: 7, DiskFullAfter: 600})
	m, db := openFileDB(t, dir, FileOptions{Faults: inj})
	defer m.Close()
	var firstErr error
	for i := 1; i <= 100; i++ {
		_, err := db.Perform("t0", i, "a", func(v model.Value) (model.Value, string) {
			return v + 1, "inc"
		})
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("600-byte budget absorbed 100 appends")
	}
	if !errors.Is(firstErr, ErrDegraded) {
		t.Fatalf("disk-full error %v does not wrap ErrDegraded", firstErr)
	}
	if !errors.Is(firstErr, fault.ErrDiskFull) {
		t.Fatalf("disk-full error %v does not wrap fault.ErrDiskFull", firstErr)
	}
	// Latched: the next operations fail fast with the same sentinel.
	if _, err := db.Perform("t1", 1, "b", func(v model.Value) (model.Value, string) {
		return v, "noop"
	}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("post-degrade perform: %v", err)
	}
	if err := db.Sync(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("post-degrade sync: %v", err)
	}
}

// TestPipelineDegradedLatch: a pipeline over a degraded medium closes its
// acks (waiters unblock), latches Err, and fails later Performs fast —
// the contract the engine's ackHealthy check builds on.
func TestPipelineDegradedLatch(t *testing.T) {
	dir := t.TempDir()
	// Budget admits the early appends, then dies.
	inj := fault.New(fault.Plan{Seed: 11, DiskFullAfter: 400})
	m, err := OpenFile(dir, FileOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	db, err := Open(m, fuzzInit())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(db, 0)
	defer p.Close()

	var lastID model.TxnID
	for i := 0; i < 100; i++ {
		id := model.TxnID("t" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if _, perr := p.Perform(id, 1, "a", func(v model.Value) (model.Value, string) {
			return v + 1, "inc"
		}); perr != nil {
			if !errors.Is(perr, ErrDegraded) {
				t.Fatalf("perform error %v does not wrap ErrDegraded", perr)
			}
			break
		}
		lastID = id
		<-p.Submit([]model.TxnID{id})
		if p.Err() != nil {
			break
		}
	}
	if p.Err() == nil {
		t.Fatal("pipeline never degraded under a 400-byte budget")
	}
	if !errors.Is(p.Err(), ErrDegraded) {
		t.Fatalf("pipeline error %v does not wrap ErrDegraded", p.Err())
	}
	if p.Snapshot().Degraded != 1 {
		t.Fatal("stats do not report degraded")
	}
	// Acks still close after the latch — no waiter hangs.
	<-p.Submit([]model.TxnID{lastID})
}

// TestPipelineAutoCheckpoint: with auto-checkpointing on, quiescent flush
// boundaries compact the log, bounding RecordsSinceCheckpoint.
func TestPipelineAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenFile(dir, FileOptions{SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	db, err := Open(m, fuzzInit())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(db, 0)
	p.AutoCheckpoint(10)
	for i := 0; i < 60; i++ {
		id := model.TxnID("t" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if _, err := p.Perform(id, 1, "a", func(v model.Value) (model.Value, string) {
			return v + 1, "inc"
		}); err != nil {
			t.Fatal(err)
		}
		<-p.Submit([]model.TxnID{id})
	}
	p.Close()
	st := p.Snapshot()
	if st.Checkpoints == 0 {
		t.Fatal("auto-checkpoint never fired across 60 quiescent commits")
	}
	// The replay bound stays far below the 120 records written.
	if got := db.RecordsSinceCheckpoint(); got > 30 {
		t.Fatalf("RecordsSinceCheckpoint = %d, auto-checkpoint not bounding replay", got)
	}
	if got := db.Get("a"); got != 70 {
		t.Fatalf("a = %d, want 70", got)
	}
}

// FuzzFileWALRecovery drives a random single-entity-per-transaction history
// against a file-backed DB, then mangles the tail of the on-disk log
// (arbitrary byte truncation or a bit flip) and asserts the etcd-style
// repair contract: the mount succeeds, the surviving records are an exact
// prefix of what was written, recovery restores init plus exactly the
// commits inside that prefix (checked against the same oracle as the
// in-memory fuzz), and the repair is idempotent across a further restart.
func FuzzFileWALRecovery(f *testing.F) {
	f.Add([]byte{0, 3, 5, 0, 1, 4, 6, 2, 0, 1, 5, 9}, uint16(37), byte(0))
	f.Add([]byte{2, 9, 7, 7, 0, 1, 6, 6, 4, 4, 5, 5, 1, 2}, uint16(211), byte(1))
	f.Add([]byte{0, 0, 6, 0, 7, 0, 0, 1, 5, 1}, uint16(9999), byte(2))
	f.Fuzz(func(t *testing.T, data []byte, tamper uint16, mode byte) {
		dir := t.TempDir()
		m, err := OpenFile(dir, FileOptions{SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		db, err := Open(m, fuzzInit())
		if err != nil {
			t.Fatal(err)
		}
		// One entity per transaction: every singleton commit/abort is
		// trivially dependency-closed, so the driver needs no closure
		// tracking (FuzzWALRecovery covers the dependency-rich shapes on
		// the shared medium code).
		txns := []model.TxnID{"f0", "f1", "f2"}
		ents := []model.EntityID{"a", "b", "c"}
		seqs := make(map[model.TxnID]int)
		committed := make(map[model.TxnID]bool)
		ops := len(data) / 2
		if ops > 100 {
			ops = 100
		}
		for i := 0; i < ops; i++ {
			op, arg := data[2*i]%8, data[2*i+1]
			ti := int(arg) % len(txns)
			id, x := txns[ti], ents[ti]
			switch {
			case op <= 4: // perform
				if committed[id] {
					continue
				}
				delta := model.Value(int(arg%7) - 3)
				seqs[id]++
				if _, err := db.Perform(id, seqs[id], x, func(v model.Value) (model.Value, string) {
					return v + delta, "add"
				}); err != nil {
					t.Fatalf("perform: %v", err)
				}
			case op <= 6: // commit
				if committed[id] || seqs[id] == 0 {
					continue
				}
				if err := db.Commit(id); err != nil {
					t.Fatalf("commit: %v", err)
				}
				committed[id] = true
			default: // abort (the txn may run again afterwards)
				if committed[id] || seqs[id] == 0 {
					continue
				}
				if err := db.Abort(map[model.TxnID]bool{id: true}); err != nil {
					t.Fatalf("abort: %v", err)
				}
			}
		}
		recs := m.Records()
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}

		// Mangle the (single) segment's tail.
		seg := lastSegment(t, dir)
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) > 0 {
			at := int(tamper) % (len(raw) + 1)
			if mode%2 == 0 {
				// Crash-style truncation at an arbitrary byte.
				if err := os.Truncate(seg, int64(at)); err != nil {
					t.Fatal(err)
				}
			} else if at < len(raw) {
				// Bit rot within the last segment: the loader truncates from
				// the first frame the flip made undecodable.
				raw[at] ^= 1 << (mode % 8)
				if err := os.WriteFile(seg, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}

		m2, err := OpenFile(dir, FileOptions{SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatalf("mount after tamper: %v", err)
		}
		got := m2.Records()
		if len(got) > len(recs) {
			t.Fatalf("recovered %d records from a log of %d", len(got), len(recs))
		}
		for i := range got {
			if got[i].LSN != recs[i].LSN || got[i].Sum != recs[i].Sum {
				t.Fatalf("record %d: recovered lsn %d sum %#x, wrote lsn %d sum %#x — not a prefix",
					i, got[i].LSN, got[i].Sum, recs[i].LSN, recs[i].Sum)
			}
		}
		db2, err := Open(m2, fuzzInit())
		if err != nil {
			t.Fatalf("recovery after tamper: %v", err)
		}
		want := expectedAfterRecovery(recs[:len(got)], fuzzInit())
		if v := db2.Values(); !sameValues(v, want) {
			t.Fatalf("recovered %v, want %v (prefix of %d records)", v, want, len(got))
		}
		afterRecovery := db2.LogLen()
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}

		// Idempotence across another restart: the repaired log mounts with
		// nothing torn, recovery appends nothing, values hold.
		m3, err := OpenFile(dir, FileOptions{SegmentBytes: 1 << 20})
		if err != nil {
			t.Fatalf("second mount: %v", err)
		}
		if tb := m3.Recovery().TornBytes; tb != 0 {
			t.Fatalf("second mount still torn: %d bytes", tb)
		}
		db3, err := Open(m3, fuzzInit())
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if db3.LogLen() != afterRecovery {
			t.Fatalf("second recovery appended %d records", db3.LogLen()-afterRecovery)
		}
		if v := db3.Values(); !sameValues(v, want) {
			t.Fatalf("second recovery changed values to %v", v)
		}
		m3.Close()
	})
}
