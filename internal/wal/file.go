package wal

// The file-backed durable medium: a directory of length-prefixed record
// segments plus a boot-epoch counter. The format is deliberately dumb —
// every frame is [u32 big-endian payload length][JSON payload], and the
// payload carries the same per-record FNV checksum the in-memory medium
// computes, so torn tails and bit rot are detected by the record's own
// integrity machinery rather than a second framing CRC.
//
// Torn-tail policy (the etcd WAL discipline): an undecodable frame in the
// LAST segment marks the write the process died inside — everything from
// there on is truncated away and the log is a (consistent, by the WAL
// rule) prefix. An undecodable frame in any EARLIER segment means bytes
// the log already moved past went bad — that is corruption, and Open
// fails loudly instead of replaying around it.
//
// Every write and fsync passes through an optional fault.Injector, which
// can fail it transiently, shorten it, stall it, or declare the disk
// full. Transient faults are retried with capped backoff; a persistent
// failure (disk full, retries exhausted) latches the backing into a
// degraded state where every further write fails fast wrapping
// ErrDegraded.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mla/internal/fault"
)

// FileOptions configures OpenFile.
type FileOptions struct {
	// SegmentBytes rotates to a new segment once the active one reaches
	// this size (default 1 MiB). A frame never spans segments.
	SegmentBytes int64
	// Faults, when non-nil, sits between the medium and the OS: every
	// write and fsync consults it first. Nil injects nothing.
	Faults *fault.Injector
}

// RecoveryInfo reports what loading a file-backed medium found.
type RecoveryInfo struct {
	// Epoch is the boot count of this data directory, starting at 1. It
	// is bumped (durably) on every OpenFile, so identifiers derived from
	// it never collide across restarts.
	Epoch int64 `json:"epoch"`
	// Records is how many durable records survived the load.
	Records int `json:"records"`
	// SinceCheckpoint is how many of those followed the latest checkpoint
	// — the replay work recovery actually had to redo.
	SinceCheckpoint int `json:"since_checkpoint"`
	// TornBytes is how many trailing bytes of the last segment were
	// truncated as a torn write.
	TornBytes int64 `json:"torn_bytes"`
	// Segments is the number of on-disk segments after the load.
	Segments int `json:"segments"`
}

const (
	defaultSegmentBytes = 1 << 20
	maxFrameBytes       = 64 << 20 // sanity bound on a length prefix
	segPrefix           = "seg-"
	segSuffix           = ".wal"
	epochFile           = "epoch"

	diskRetries    = 8
	diskBackoffMin = 200 * time.Microsecond
	diskBackoffMax = 10 * time.Millisecond
)

// OpenFile mounts (creating if needed) the segmented log in dir and
// returns a Medium whose appends persist there before anything volatile
// changes. The load verifies every record's checksum, truncates a torn
// tail of the last segment in place, and refuses mid-log corruption. The
// caller passes the result to Open for WAL recovery as usual.
func OpenFile(dir string, o FileOptions) (*Medium, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	epoch, err := bumpEpoch(dir)
	if err != nil {
		return nil, err
	}
	b := &fileBacking{dir: dir, segBytes: o.SegmentBytes, inj: o.Faults}
	m := NewMedium()
	if err := b.load(m); err != nil {
		return nil, err
	}
	m.backing = b
	m.info.Epoch = epoch
	m.info.Records = len(m.records)
	m.info.SinceCheckpoint = m.sinceCkpt
	m.info.Segments = len(b.segs)
	m.info.TornBytes = b.tornBytes
	return m, nil
}

// bumpEpoch durably increments the data directory's boot counter.
func bumpEpoch(dir string) (int64, error) {
	path := filepath.Join(dir, epochFile)
	var epoch int64
	if raw, err := os.ReadFile(path); err == nil {
		n, perr := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
		if perr != nil {
			return 0, fmt.Errorf("wal: %s: unparseable epoch %q", path, raw)
		}
		epoch = n
	} else if !errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("wal: %w", err)
	}
	epoch++
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", epoch); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: epoch: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: epoch: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("wal: epoch: %w", err)
	}
	return epoch, nil
}

// fileBacking is the on-disk side of a Medium. Its mutex is a leaf (it
// never calls back into the Medium or DB), taken by append/sync/compact
// so the pipeline's "sync outside the batch lock" concurrency stays safe
// against segment rotation.
type fileBacking struct {
	dir      string
	segBytes int64
	inj      *fault.Injector

	mu        sync.Mutex
	f         *os.File // active segment
	segIndex  int64    // its index
	off       int64    // good (fully framed) offset within it
	segs      []int64  // all segment indices, ascending
	failed    error    // latched persistent failure
	tornBytes int64    // truncated at load
	buf       []byte   // frame scratch
}

func segName(idx int64) string { return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix) }

// load reads every segment into m.records, truncating a torn tail of the
// last segment and leaving the backing positioned to append after it.
func (b *fileBacking) load(m *Medium) error {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		idx, perr := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if perr != nil {
			return fmt.Errorf("wal: unrecognized segment name %q", name)
		}
		b.segs = append(b.segs, idx)
	}
	sort.Slice(b.segs, func(i, j int) bool { return b.segs[i] < b.segs[j] })

	var prevLSN int64
	for si, idx := range b.segs {
		path := filepath.Join(b.dir, segName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		last := si == len(b.segs)-1
		good, recs, derr := decodeFrames(data, prevLSN)
		if derr != nil && !last {
			return fmt.Errorf("wal: segment %s: %w (mid-log, not a torn tail)", segName(idx), derr)
		}
		if derr != nil {
			// Torn tail of the final segment: truncate it away in place so
			// the next append lands on a clean frame boundary and a second
			// load sees an identical log (idempotent repair).
			b.tornBytes = int64(len(data)) - good
			if err := os.Truncate(path, good); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", segName(idx), err)
			}
		}
		for _, r := range recs {
			m.records = append(m.records, r)
			m.nextLSN = r.LSN + 1
			if r.Kind == Checkpoint {
				m.sinceCkpt = 0
			} else {
				m.sinceCkpt++
			}
			prevLSN = r.LSN
		}
		if last {
			b.segIndex = idx
			b.off = good
		}
	}
	if len(b.segs) == 0 {
		b.segIndex = 1
		b.segs = []int64{1}
		if err := b.create(b.segIndex); err != nil {
			return err
		}
		return nil
	}
	f, err := os.OpenFile(filepath.Join(b.dir, segName(b.segIndex)), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	b.f = f
	return nil
}

// decodeFrames walks one segment's bytes. It returns the offset after the
// last fully decoded frame, the records, and a non-nil error describing
// the first undecodable frame (torn or rotted — the caller decides which
// by segment position). LSNs must strictly increase from prev.
func decodeFrames(data []byte, prev int64) (int64, []Record, error) {
	var recs []Record
	off := int64(0)
	for int64(len(data))-off >= 4 {
		n := int64(binary.BigEndian.Uint32(data[off:]))
		if n == 0 || n > maxFrameBytes {
			return off, recs, fmt.Errorf("frame at %d: implausible length %d", off, n)
		}
		if off+4+n > int64(len(data)) {
			return off, recs, fmt.Errorf("frame at %d: %d bytes long but only %d remain", off, n, int64(len(data))-off-4)
		}
		var r Record
		if err := json.Unmarshal(data[off+4:off+4+n], &r); err != nil {
			return off, recs, fmt.Errorf("frame at %d: %v", off, err)
		}
		if got, want := r.Sum, r.checksum(); got != want {
			return off, recs, fmt.Errorf("frame at %d (lsn %d): checksum %#x, expected %#x", off, r.LSN, got, want)
		}
		if r.LSN <= prev {
			return off, recs, fmt.Errorf("frame at %d: lsn %d not after %d", off, r.LSN, prev)
		}
		prev = r.LSN
		recs = append(recs, r)
		off += 4 + n
	}
	if off != int64(len(data)) {
		return off, recs, fmt.Errorf("trailing %d bytes at %d are shorter than a length prefix", int64(len(data))-off, off)
	}
	return off, recs, nil
}

// encode builds the frame for r into b.buf.
func (b *fileBacking) encode(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("wal: encode lsn %d: %w", r.LSN, err)
	}
	b.buf = b.buf[:0]
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	b.buf = append(b.buf, hdr[:]...)
	b.buf = append(b.buf, payload...)
	return nil
}

// append persists one record: rotate if the active segment is full, then
// write the frame at the good offset with fault-aware retries.
func (b *fileBacking) append(r Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failed != nil {
		return b.failed
	}
	if err := b.encode(r); err != nil {
		return err
	}
	if b.off > 0 && b.off+int64(len(b.buf)) > b.segBytes {
		if err := b.rotate(); err != nil {
			return err
		}
	}
	return b.writeFrame()
}

// writeFrame lands b.buf at b.off, retrying transient injected faults and
// real short writes with capped backoff. Retries always rewrite the WHOLE
// frame at the same offset, overwriting any partial bytes of the failed
// try — so the only torn state a crash can leave is a partial frame at
// the tail, exactly what the loader truncates.
func (b *fileBacking) writeFrame() error {
	backoff := diskBackoffMin
	for try := 0; ; try++ {
		err := b.writeOnce()
		if err == nil {
			b.off += int64(len(b.buf))
			return nil
		}
		if errors.Is(err, fault.ErrDiskFull) || try >= diskRetries {
			b.failed = fmt.Errorf("%w: segment %d offset %d: %w", ErrDegraded, b.segIndex, b.off, err)
			return b.failed
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > diskBackoffMax {
			backoff = diskBackoffMax
		}
	}
}

func (b *fileBacking) writeOnce() error {
	allowed, ierr := b.inj.DiskWrite(len(b.buf))
	if allowed > 0 {
		if n, werr := b.f.WriteAt(b.buf[:allowed], b.off); werr != nil {
			return werr
		} else if n < allowed {
			return io.ErrShortWrite
		}
	}
	if ierr != nil {
		return ierr
	}
	if allowed < len(b.buf) {
		return io.ErrShortWrite
	}
	return nil
}

// syncActive fsyncs the active segment with fault-aware retries.
func (b *fileBacking) syncActive() error {
	backoff := diskBackoffMin
	for try := 0; ; try++ {
		err := b.inj.DiskSync()
		if err == nil {
			err = b.f.Sync()
		}
		if err == nil {
			return nil
		}
		if try >= diskRetries {
			// An fsync that keeps failing leaves the kernel's dirty state
			// unknowable (the pages may have been dropped); latch degraded
			// rather than pretend a later success covers this data.
			b.failed = fmt.Errorf("%w: fsync segment %d: %w", ErrDegraded, b.segIndex, err)
			return b.failed
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > diskBackoffMax {
			backoff = diskBackoffMax
		}
	}
}

func (b *fileBacking) sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failed != nil {
		return b.failed
	}
	return b.syncActive()
}

// rotate seals the active segment (fsync, close) and opens the next one.
// Called with b.mu held.
func (b *fileBacking) rotate() error {
	if err := b.syncActive(); err != nil {
		return err
	}
	if err := b.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment %d: %w", b.segIndex, err)
	}
	next := b.segIndex + 1
	if err := b.create(next); err != nil {
		return err
	}
	b.segIndex = next
	b.segs = append(b.segs, next)
	return nil
}

// create opens a fresh segment file and fsyncs the directory so the name
// itself is durable. Sets b.f, resets b.off.
func (b *fileBacking) create(idx int64) error {
	f, err := os.OpenFile(filepath.Join(b.dir, segName(idx)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(b.dir); err != nil {
		f.Close()
		return err
	}
	b.f = f
	b.off = 0
	return nil
}

// compact writes ckpt as the first frame of a brand-new segment, makes it
// durable, then deletes every older segment. Called via
// Medium.checkpointCompact with the checkpoint already checksummed.
func (b *fileBacking) compact(ckpt Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failed != nil {
		return b.failed
	}
	// Seal whatever is in flight first: the checkpoint claims everything
	// before it is durable, so it must not outrun an unsynced tail.
	if err := b.syncActive(); err != nil {
		return err
	}
	if err := b.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment %d: %w", b.segIndex, err)
	}
	old := append([]int64(nil), b.segs...)
	next := b.segIndex + 1
	if err := b.create(next); err != nil {
		return err
	}
	b.segIndex = next
	b.segs = append(b.segs, next)
	if err := b.encode(ckpt); err != nil {
		return err
	}
	if err := b.writeFrame(); err != nil {
		return err
	}
	if err := b.syncActive(); err != nil {
		return err
	}
	// Only now is the prefix redundant. Deletion is best-effort: a
	// leftover old segment is entirely behind the checkpoint the loader
	// will pick, so it costs read work, never correctness.
	for _, idx := range old {
		os.Remove(filepath.Join(b.dir, segName(idx)))
	}
	if err := syncDir(b.dir); err != nil {
		return err
	}
	b.segs = []int64{next}
	return nil
}

func (b *fileBacking) close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	var err error
	if b.failed == nil {
		err = b.syncActive()
	}
	if cerr := b.f.Close(); err == nil {
		err = cerr
	}
	b.f = nil
	return err
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}
