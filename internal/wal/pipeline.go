package wal

import (
	"sync"
	"time"

	"mla/internal/model"
)

// Pipeline is the group-commit committer: a dedicated flusher goroutine
// that batches concurrent commit submissions into one durable CommitGroup
// record and one device sync per flush interval. Callers submit a
// dependency-closed commit group and receive an ack channel that closes
// only after the group's record has been flushed to the device — durability
// is acknowledged, never assumed.
//
// Merging commit groups is sound because it only coarsens atomicity: the
// merged record commits a superset all-or-none, so every member group is
// still all-or-none under any torn tail, which is all the recovery
// invariant needs (FuzzWALRecovery drives merged records through the
// every-prefix check). The win is the amortization: N groups flushed
// together cost one Medium.Sync instead of N.
//
// The Pipeline serializes all access to its DB: Perform, Abort, and the
// flusher share one mutex, so the DB's single-threaded invariants hold
// unchanged. The device sync itself happens outside that mutex — a slow
// flush never stalls concurrent Performs.
type Pipeline struct {
	interval time.Duration

	mu sync.Mutex // guards db, the current batch, stats
	db *DB

	// The current batch. Commit groups are disjoint (the engine commits
	// each transaction exactly once per run, and the DB tolerates a stray
	// duplicate idempotently), so member ids concatenate into one flat
	// slice, and every group in a batch shares one ack channel — the whole
	// batch becomes durable in the same record and sync. The slice's
	// backing array is recycled across flushes: the commit record copies
	// what it keeps, so steady-state submission allocates nothing per
	// group beyond the amortized ack channel.
	batchIDs    []model.TxnID
	batchAck    chan struct{}
	batchGroups int

	// err latches the first durable-medium failure (wrapping
	// wal.ErrDegraded). Once set, every flush closes its ack without
	// committing and every Perform/Submit fails fast: a medium that lost
	// a write cannot be trusted with the next one.
	err error

	// ckptEvery, when positive, opportunistically compacts the log after
	// a flush once RecordsSinceCheckpoint reaches it — only at quiescent
	// instants (no live transactions), so the checkpoint discipline stays
	// sound under load.
	ckptEvery int

	stats PipelineStats

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// PipelineStats is a point-in-time snapshot of the committer's counters,
// returned by Pipeline.Snapshot. Value copy; never aliases live state.
type PipelineStats struct {
	// Groups is the number of commit groups submitted.
	Groups int64
	// Txns is the number of transactions committed through the pipeline.
	Txns int64
	// Flushes is the number of durable flushes (one CommitGroup record
	// and one device sync each).
	Flushes int64
	// MaxBatch is the largest number of groups merged into one flush.
	MaxBatch int
	// Checkpoints is the number of opportunistic compacting checkpoints
	// taken (see Pipeline.AutoCheckpoint).
	Checkpoints int64
	// Degraded is 1 once the durable medium has persistently failed.
	Degraded int
}

// NewPipeline starts a committer over db. interval is the batching window:
// after the first submission arrives, the flusher waits that long for more
// before flushing (0 = flush as soon as the goroutine is scheduled; batching
// then comes only from submission bursts). Close must be called to stop the
// flusher; no methods may be called after Close.
func NewPipeline(db *DB, interval time.Duration) *Pipeline {
	p := &Pipeline{
		interval: interval,
		db:       db,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.flusher()
	return p
}

func (p *Pipeline) flusher() {
	defer close(p.done)
	// One timer serves every batching window; it is always drained before
	// Reset (either its fire was consumed or Stop found it already fired),
	// so reuse is safe and the per-wake timer allocation is gone.
	var timer *time.Timer
	if p.interval > 0 {
		timer = time.NewTimer(p.interval)
		if !timer.Stop() {
			<-timer.C
		}
	}
	for {
		select {
		case <-p.wake:
			if timer != nil {
				timer.Reset(p.interval)
				select {
				case <-timer.C:
				case <-p.quit:
					if !timer.Stop() {
						<-timer.C
					}
				}
			}
			p.flush()
		case <-p.quit:
			p.flush() // drain anything submitted before Close
			return
		}
	}
}

// flush commits the current batch in one record, syncs the device, then
// acks. The record append happens under mu (serialized with Perform/Abort,
// and with Submit — so the batch buffer can be recycled immediately: the
// record has already copied the members); the sync and the ack happen
// outside it (the file backing has its own leaf mutex, so a concurrent
// Perform cannot race the fsync against a segment rotation).
//
// A failed commit or sync latches p.err; the ack channel still closes —
// waiters unblock and learn the verdict from Err(). Durability is
// indeterminate for the failed batch (the record may or may not have
// reached the platter), so the only sound answer is "not acked".
func (p *Pipeline) flush() {
	p.mu.Lock()
	ids, ack, groups := p.batchIDs, p.batchAck, p.batchGroups
	var cerr error
	if p.err != nil {
		cerr = p.err
	} else if len(ids) > 0 {
		if cerr = p.db.CommitGroup(ids); cerr == nil {
			p.stats.Flushes++
			p.stats.Txns += int64(len(ids))
			if groups > p.stats.MaxBatch {
				p.stats.MaxBatch = groups
			}
		}
	}
	p.batchIDs = ids[:0]
	p.batchAck = nil
	p.batchGroups = 0
	p.mu.Unlock()
	if ack != nil {
		if cerr == nil {
			cerr = p.db.Sync()
		}
		if cerr != nil {
			p.mu.Lock()
			if p.err == nil {
				p.err = cerr
				p.stats.Degraded = 1
			}
			p.mu.Unlock()
		}
		close(ack)
	}
	if cerr == nil {
		p.maybeCheckpoint()
	}
}

// maybeCheckpoint compacts the log at a quiescent instant once enough
// records have accumulated since the last checkpoint. Holding mu through
// the compaction (fsyncs included) stalls concurrent Performs briefly;
// at checkpoint frequency that is the sound, simple trade.
func (p *Pipeline) maybeCheckpoint() {
	if p.ckptEvery <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil || p.db.Live() > 0 || p.db.RecordsSinceCheckpoint() < p.ckptEvery {
		return
	}
	if err := p.db.CheckpointCompact(); err != nil {
		p.err = err
		p.stats.Degraded = 1
		return
	}
	p.stats.Checkpoints++
}

// AutoCheckpoint enables opportunistic compacting checkpoints after
// flushes: whenever the log has grown by at least every records past the
// last checkpoint AND no transaction is live, the flusher compacts. Call
// before submitting work.
func (p *Pipeline) AutoCheckpoint(every int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ckptEvery = every
}

// Err returns the latched durable-medium failure, nil while healthy. Once
// non-nil it never clears: an acked Submit whose ack closed after Err
// became non-nil must be treated as not durable.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Submit enqueues a dependency-closed commit group and returns a channel
// that closes once the group is durable (record flushed and synced). The
// slice is copied; the caller may reuse it. Groups must be disjoint — the
// engine guarantees each transaction commits exactly once per run.
func (p *Pipeline) Submit(ids []model.TxnID) <-chan struct{} {
	p.mu.Lock()
	if p.batchAck == nil {
		p.batchAck = make(chan struct{})
	}
	ack := p.batchAck
	p.batchIDs = append(p.batchIDs, ids...)
	p.batchGroups++
	p.stats.Groups++
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default: // a wake is already queued; the flusher will see our group
	}
	return ack
}

// Perform executes one step WAL-first under the pipeline's lock; see
// DB.Perform.
func (p *Pipeline) Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) (model.Step, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return model.Step{}, p.err
	}
	return p.db.Perform(t, seq, x, f)
}

// Abort rolls back a dependency-closed set under the pipeline's lock; see
// DB.Abort. Transactions with an unflushed Submit in flight must not be
// aborted — the engine guarantees that by never wounding a committing
// transaction.
func (p *Pipeline) Abort(set map[model.TxnID]bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.db.Abort(set)
}

// Values returns a copy of the current volatile state.
func (p *Pipeline) Values() map[model.EntityID]model.Value {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.db.Values()
}

// Committed reports whether t has a durable commit.
func (p *Pipeline) Committed(t model.TxnID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.db.Committed(t)
}

// LogLen returns the durable log length.
func (p *Pipeline) LogLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.db.LogLen()
}

// RecordsSinceCheckpoint returns the current recovery replay bound; see
// DB.RecordsSinceCheckpoint.
func (p *Pipeline) RecordsSinceCheckpoint() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.db.RecordsSinceCheckpoint()
}

// Snapshot returns a value-copy of the committer's counters; see
// PipelineStats for the immutability contract.
func (p *Pipeline) Snapshot() PipelineStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close flushes every group submitted so far, stops the flusher, and
// returns once it has exited. The underlying DB remains usable (e.g. for
// Crash/recovery); the Pipeline does not.
func (p *Pipeline) Close() {
	close(p.quit)
	<-p.done
}
