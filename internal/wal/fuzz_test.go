package wal

import (
	"testing"

	"mla/internal/model"
)

// fuzzInit is the fixed initial state the fuzz driver recovers against.
func fuzzInit() map[model.EntityID]model.Value {
	return map[model.EntityID]model.Value{"a": 10, "b": 20, "c": -5}
}

// expectedAfterRecovery computes, independently of the recovery code, the
// state a correct recovery of this log must produce: init plus the net
// effect of every transaction with a commit record in the log. Update and
// compensation deltas of a committed transaction cancel pairwise (an
// aborted earlier attempt contributes zero), and uncommitted transactions
// contribute nothing because recovery undoes them.
func expectedAfterRecovery(recs []Record, init map[model.EntityID]model.Value) map[model.EntityID]model.Value {
	committed := make(map[model.TxnID]bool)
	for _, r := range recs {
		if r.Kind == Commit {
			committed[r.Txn] = true
			for _, t := range r.Group {
				committed[t] = true
			}
		}
	}
	out := make(map[model.EntityID]model.Value, len(init))
	for k, v := range init {
		out[k] = v
	}
	for _, r := range recs {
		if (r.Kind == Update || r.Kind == Compensation) && committed[r.Txn] {
			out[r.Entity] += r.After - r.Before
		}
	}
	return out
}

func sameValues(got, want map[model.EntityID]model.Value) bool {
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	for k, v := range got {
		if v != want[k] {
			return false
		}
	}
	return true
}

// FuzzWALRecovery drives a random history of performs, single and group
// commits, pipeline-style merged batch commits, and dependency-closed
// aborts against the WAL, then asserts the two recovery guarantees the
// crash-tolerant engine rests on:
//
//  1. Every prefix of the durable log is a consistent recovery input:
//     Open succeeds and restores exactly init plus the effects of the
//     transactions committed within the prefix.
//  2. Recovery is idempotent: recovering an already-recovered log appends
//     nothing and changes no value.
func FuzzWALRecovery(f *testing.F) {
	f.Add([]byte{0, 0, 3, 1, 1, 4, 5, 0, 0, 2, 2, 5, 7, 1, 0, 6, 2, 1})
	f.Add([]byte{0, 1, 2, 0, 2, 6, 7, 1, 3, 0, 1, 1, 5, 1, 9, 0, 3, 2, 6, 0, 4})
	f.Add([]byte{2, 3, 1, 2, 3, 5, 2, 3, 2, 7, 3, 9, 0, 3, 0, 5, 3, 1})
	// Regression seed for checksum verification: the trailing selector byte
	// picks a mid-log commit record to corrupt in check 3 below.
	f.Add([]byte{0, 0, 3, 0, 1, 4, 5, 0, 0, 0, 2, 5, 5, 0, 0, 8, 0, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		init := fuzzInit()
		db, err := Open(NewMedium(), init)
		if err != nil {
			t.Fatal(err)
		}
		txns := []model.TxnID{"t0", "t1", "t2", "t3"}
		ents := []model.EntityID{"a", "b", "c"}
		seqs := make(map[model.TxnID]int)
		committed := make(map[model.TxnID]bool)
		// authors[x] is the stack of live writers of x, oldest first: when a
		// writer aborts, the value reverts to the previous live writer's, so
		// the next reader depends on THAT transaction (a single-slot author
		// map would forget it — the engine rebuilds authors from its trace
		// for the same reason).
		authors := make(map[model.EntityID][]model.TxnID)
		deps := make(map[model.TxnID]map[model.TxnID]bool)       // what a txn observed
		dependents := make(map[model.TxnID]map[model.TxnID]bool) // who observed a txn

		clearTxn := func(id model.TxnID) {
			for x, st := range authors {
				kept := st[:0]
				for _, a := range st {
					if a != id {
						kept = append(kept, a)
					}
				}
				authors[x] = kept
			}
			delete(deps, id)
			delete(dependents, id)
			for _, m := range deps {
				delete(m, id)
			}
			for _, m := range dependents {
				delete(m, id)
			}
		}

		// closure expands seeds transitively along edges, skipping committed
		// transactions — the same dependency-closed sets the engine computes
		// for group commits (deps direction) and cascading aborts
		// (dependents direction).
		closure := func(seed model.TxnID, edges map[model.TxnID]map[model.TxnID]bool) map[model.TxnID]bool {
			set := map[model.TxnID]bool{seed: true}
			for frontier := []model.TxnID{seed}; len(frontier) > 0; {
				var next []model.TxnID
				for _, u := range frontier {
					for v := range edges[u] {
						if !set[v] && !committed[v] {
							set[v] = true
							next = append(next, v)
						}
					}
				}
				frontier = next
			}
			return set
		}

		ops := len(data) / 3
		if ops > 150 {
			ops = 150
		}
		for i := 0; i < ops; i++ {
			op, ti, arg := data[3*i]%9, data[3*i+1], data[3*i+2]
			id := txns[int(ti)%len(txns)]
			switch {
			case op <= 4: // perform
				if committed[id] {
					continue
				}
				x := ents[int(arg)%len(ents)]
				delta := model.Value(int(arg%7) - 3)
				seqs[id]++
				if _, err := db.Perform(id, seqs[id], x, func(v model.Value) (model.Value, string) {
					return v + delta, "add"
				}); err != nil {
					t.Fatalf("perform %s: %v", id, err)
				}
				// Conservative dependency edges: the closures the driver
				// computes are supersets of the true ones, which keeps them
				// dependency-closed.
				if st := authors[x]; len(st) > 0 && st[len(st)-1] != id {
					a := st[len(st)-1]
					if deps[id] == nil {
						deps[id] = make(map[model.TxnID]bool)
					}
					deps[id][a] = true
					if dependents[a] == nil {
						dependents[a] = make(map[model.TxnID]bool)
					}
					dependents[a][id] = true
				}
				if st := authors[x]; len(st) == 0 || st[len(st)-1] != id {
					authors[x] = append(authors[x], id)
				}
			case op == 5 || op == 6: // commit the dependency closure as a group
				if committed[id] || seqs[id] == 0 {
					continue
				}
				// The commit discipline: a transaction commits only together
				// with everything whose values it observed (its deps
				// closure) — exactly the chained commitment of Section 6.
				set := closure(id, deps)
				ids := make([]model.TxnID, 0, len(set))
				for v := range set {
					ids = append(ids, v)
				}
				if len(ids) == 1 {
					db.Commit(ids[0])
				} else {
					db.CommitGroup(ids)
				}
				for _, c := range ids {
					committed[c] = true
				}
				for _, c := range ids {
					clearTxn(c)
				}
			case op == 7: // merged batch commit (the Pipeline flusher's shape)
				// Merge the closures of two independent commit groups into
				// ONE record, exactly as the group-commit pipeline does when
				// submissions land in the same flush window. A torn tail must
				// keep or drop BOTH groups — the every-prefix loop below
				// checks that the coarsened record stays sound.
				id2 := txns[int(arg)%len(txns)]
				merged := make(map[model.TxnID]bool)
				for _, seed := range []model.TxnID{id, id2} {
					if committed[seed] || seqs[seed] == 0 {
						continue
					}
					for v := range closure(seed, deps) {
						merged[v] = true
					}
				}
				if len(merged) == 0 {
					continue
				}
				ids := make([]model.TxnID, 0, len(merged))
				for v := range merged {
					ids = append(ids, v)
				}
				db.CommitGroup(ids)
				for _, c := range ids {
					committed[c] = true
				}
				for _, c := range ids {
					clearTxn(c)
				}
			default: // abort the dependents closure of the victim
				if committed[id] || seqs[id] == 0 {
					continue
				}
				set := closure(id, dependents)
				if err := db.Abort(set); err != nil {
					t.Fatalf("closed abort rejected: %v", err)
				}
				for v := range set {
					clearTxn(v)
				}
			}
		}

		m := db.Crash()
		recs := m.Records()
		// Every prefix — including the full log — recovers to init plus
		// exactly the effects committed within it.
		for lsn := int64(0); lsn <= int64(len(recs)); lsn++ {
			pm := m.Prefix(lsn)
			pdb, err := Open(pm, fuzzInit())
			if err != nil {
				t.Fatalf("recovery of prefix %d/%d failed: %v", lsn, len(recs), err)
			}
			want := expectedAfterRecovery(recs[:lsn], fuzzInit())
			if got := pdb.Values(); !sameValues(got, want) {
				t.Fatalf("prefix %d: recovered %v, want %v", lsn, got, want)
			}
			// Idempotence: a second recovery of the (now compensated) log
			// appends nothing and preserves every value.
			m2 := pdb.Crash()
			n := m2.Len()
			pdb2, err := Open(m2, fuzzInit())
			if err != nil {
				t.Fatalf("re-recovery of prefix %d failed: %v", lsn, err)
			}
			if m2.Len() != n {
				t.Fatalf("prefix %d: re-recovery appended %d records", lsn, m2.Len()-n)
			}
			if got := pdb2.Values(); !sameValues(got, want) {
				t.Fatalf("prefix %d: re-recovery changed values to %v", lsn, got)
			}
		}

		// 3. Corruption detection: a torn tail is recoverable (checked
		// above), a corrupted record is not. Flip the payload of one
		// durable record — leaving its checksum stale — and recovery must
		// refuse the whole log instead of replaying garbage.
		if len(recs) > 0 && len(data) > 0 {
			cm := m.Prefix(int64(len(recs)))
			lsn := recs[int(data[len(data)-1])%len(recs)].LSN
			if !cm.Corrupt(lsn) {
				t.Fatalf("corrupt: lsn %d not found in log of %d records", lsn, len(recs))
			}
			if _, err := Open(cm, fuzzInit()); err == nil {
				t.Fatalf("recovery accepted a corrupted record at lsn %d", lsn)
			}
		}
	})
}
