package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mla/internal/model"
)

// TestPipelineBatchesCommits submits many commit groups concurrently and
// checks the pipeline's whole contract: every ack fires, every transaction
// is durably committed, and the device saw fewer syncs than groups (the
// amortization that justifies the pipeline's existence).
func TestPipelineBatchesCommits(t *testing.T) {
	db, err := Open(NewMedium(), map[model.EntityID]model.Value{"x": 0})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(db, 2*time.Millisecond)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := model.TxnID(fmt.Sprintf("t%d", i))
			if _, err := p.Perform(id, 1, "x", func(v model.Value) (model.Value, string) {
				return v + 1, "add"
			}); err != nil {
				t.Error(err)
				return
			}
			<-p.Submit([]model.TxnID{id})
			if !p.Committed(id) {
				t.Errorf("%s acked but not committed", id)
			}
		}(i)
	}
	wg.Wait()
	p.Close()

	st := p.Snapshot()
	if st.Groups != n || st.Txns != n {
		t.Fatalf("stats %+v, want %d groups and txns", st, n)
	}
	if st.Flushes >= n {
		t.Fatalf("no batching: %d flushes for %d groups", st.Flushes, n)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("MaxBatch = %d, expected a merged flush", st.MaxBatch)
	}
	if got := db.Snapshot().Syncs; got != st.Flushes {
		t.Fatalf("device syncs %d != flushes %d", got, st.Flushes)
	}
	// Crash and recover: all n commits survive.
	rdb, err := Open(db.Crash(), map[model.EntityID]model.Value{"x": 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := rdb.Get("x"); got != n {
		t.Fatalf("recovered x = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if id := model.TxnID(fmt.Sprintf("t%d", i)); !rdb.Committed(id) {
			t.Fatalf("%s lost across recovery", id)
		}
	}
}

// TestPipelineRecoveryEquivalence runs one deterministic history through
// an unbatched DB (one Commit record and sync per group) and through the
// pipeline, crashes both, and demands identical recovered values and
// committed sets — batching may change record layout, never outcomes.
func TestPipelineRecoveryEquivalence(t *testing.T) {
	init := map[model.EntityID]model.Value{"a": 5, "b": -2}
	type op struct {
		id    model.TxnID
		x     model.EntityID
		delta model.Value
	}
	history := []op{
		{"t0", "a", 3}, {"t1", "b", 4}, {"t2", "a", -1},
		{"t3", "b", 7}, {"t4", "a", 2},
	}

	plain, err := Open(NewMedium(), init)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := Open(NewMedium(), init)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(piped, 0)
	var acks []<-chan struct{}
	for _, o := range history {
		f := func(v model.Value) (model.Value, string) { return v + o.delta, "add" }
		if _, err := plain.Perform(o.id, 1, o.x, f); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Perform(o.id, 1, o.x, f); err != nil {
			t.Fatal(err)
		}
	}
	// t4 stays uncommitted in both: recovery must roll it back identically.
	for _, o := range history[:4] {
		plain.Commit(o.id)
		plain.Sync()
		acks = append(acks, p.Submit([]model.TxnID{o.id}))
	}
	for _, ack := range acks {
		<-ack
	}
	p.Close()

	ra, err := Open(plain.Crash(), init)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Open(piped.Crash(), init)
	if err != nil {
		t.Fatal(err)
	}
	if !sameValues(ra.Values(), rb.Values()) {
		t.Fatalf("recovered values diverge: unbatched %v, pipelined %v", ra.Values(), rb.Values())
	}
	for _, o := range history {
		if ra.Committed(o.id) != rb.Committed(o.id) {
			t.Fatalf("%s: committed %v unbatched vs %v pipelined", o.id, ra.Committed(o.id), rb.Committed(o.id))
		}
	}
	if rb.Committed("t4") {
		t.Fatal("uncommitted t4 survived recovery")
	}
}

// TestPipelineTornTailKeepsGroupsAtomic crashes the pipelined log at every
// prefix and checks that each merged commit record keeps its member groups
// all-or-none: no prefix ever shows a group partially committed.
func TestPipelineTornTailKeepsGroupsAtomic(t *testing.T) {
	init := map[model.EntityID]model.Value{"a": 0}
	db, err := Open(NewMedium(), init)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(db, 5*time.Millisecond)
	// Two 2-member groups submitted inside one batching window, so the
	// flusher merges them into one record.
	for _, id := range []model.TxnID{"g1a", "g1b", "g2a", "g2b"} {
		if _, err := p.Perform(id, 1, "a", func(v model.Value) (model.Value, string) {
			return v + 1, "add"
		}); err != nil {
			t.Fatal(err)
		}
	}
	a1 := p.Submit([]model.TxnID{"g1a", "g1b"})
	a2 := p.Submit([]model.TxnID{"g2a", "g2b"})
	<-a1
	<-a2
	p.Close()

	m := db.Crash()
	recs := m.Records()
	groups := [][]model.TxnID{{"g1a", "g1b"}, {"g2a", "g2b"}}
	for lsn := int64(0); lsn <= int64(len(recs)); lsn++ {
		rdb, err := Open(m.Prefix(lsn), init)
		if err != nil {
			t.Fatalf("prefix %d: %v", lsn, err)
		}
		for _, g := range groups {
			if rdb.Committed(g[0]) != rdb.Committed(g[1]) {
				t.Fatalf("prefix %d: group %v torn: %v vs %v",
					lsn, g, rdb.Committed(g[0]), rdb.Committed(g[1]))
			}
		}
	}
}

// TestPipelineCloseFlushesPending submits without waiting and closes; Close
// must flush the stragglers and fire their acks.
func TestPipelineCloseFlushesPending(t *testing.T) {
	db, err := Open(NewMedium(), map[model.EntityID]model.Value{"x": 0})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(db, time.Hour) // window far longer than the test
	if _, err := p.Perform("t0", 1, "x", func(v model.Value) (model.Value, string) {
		return v + 1, "add"
	}); err != nil {
		t.Fatal(err)
	}
	ack := p.Submit([]model.TxnID{"t0"})
	p.Close()
	select {
	case <-ack:
	default:
		t.Fatal("Close returned with an unacked pending commit")
	}
	if !db.Committed("t0") {
		t.Fatal("pending commit lost by Close")
	}
}

// TestSubmitSteadyStateAllocations pins the group-commit fast path: once a
// batch is open, enqueueing another commit group must not allocate — the
// batch slice is recycled across flushes and every group in a batch shares
// one ack channel. The historical regression this guards against allocated
// a per-group ids copy and a per-group ack channel on every Submit (and a
// timer per flush window), which showed up as ~4 extra allocs/txn on the
// hotspot benchmark.
func TestSubmitSteadyStateAllocations(t *testing.T) {
	db, err := Open(NewMedium(), map[model.EntityID]model.Value{"x": 0})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(db, time.Hour) // window far longer than the test: one open batch
	defer p.Close()
	const runs = 200
	groups := make([][]model.TxnID, 0, runs+2)
	for i := 0; i < runs+2; i++ {
		id := model.TxnID(fmt.Sprintf("t%d", i))
		if _, err := p.Perform(id, 1, "x", func(v model.Value) (model.Value, string) {
			return v + 1, "add"
		}); err != nil {
			t.Fatal(err)
		}
		groups = append(groups, []model.TxnID{id})
	}
	// The first submit of a batch lazily creates the shared ack channel;
	// prime it so the measured runs see only the steady state.
	p.Submit(groups[0])
	next := 1
	allocs := testing.AllocsPerRun(runs, func() {
		p.Submit(groups[next])
		next++
	})
	// Amortized slice growth across 200 appends is well under one
	// allocation per call; anything at or above 1 means a per-group
	// allocation crept back into Submit.
	if allocs >= 1 {
		t.Errorf("Submit allocates %.2f objects per group in steady state, want < 1", allocs)
	}
}
