package wal

import (
	"math/rand"
	"testing"

	"mla/internal/model"
)

func add(d model.Value) func(model.Value) (model.Value, string) {
	return func(v model.Value) (model.Value, string) { return v + d, "add" }
}

func mustPerform(t *testing.T, db *DB, txn model.TxnID, seq int, x model.EntityID, d model.Value) {
	t.Helper()
	if _, err := db.Perform(txn, seq, x, add(d)); err != nil {
		t.Fatal(err)
	}
}

func TestCommittedSurviveCrash(t *testing.T) {
	m := NewMedium()
	db, err := Open(m, map[model.EntityID]model.Value{"x": 10})
	if err != nil {
		t.Fatal(err)
	}
	mustPerform(t, db, "t1", 1, "x", 5)
	db.Commit("t1")
	mustPerform(t, db, "t2", 1, "x", 100) // in flight at the crash

	db2, err := Open(db.Crash(), map[model.EntityID]model.Value{"x": 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Get("x"); got != 15 {
		t.Errorf("x = %d, want 15 (t1 committed, t2 rolled back)", got)
	}
	if !db2.Committed("t1") {
		t.Error("t1 must be durably committed")
	}
	if db2.Committed("t2") {
		t.Error("t2 must not be committed")
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	m := NewMedium()
	db, _ := Open(m, map[model.EntityID]model.Value{"x": 0})
	mustPerform(t, db, "t1", 1, "x", 7)
	db.Commit("t1")
	mustPerform(t, db, "t2", 1, "x", 1)

	db2, err := Open(db.Crash(), map[model.EntityID]model.Value{"x": 0})
	if err != nil {
		t.Fatal(err)
	}
	db3, err := Open(db2.Crash(), map[model.EntityID]model.Value{"x": 0})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Get("x") != 7 || db3.Get("x") != 7 {
		t.Errorf("double recovery: %d then %d, want 7", db2.Get("x"), db3.Get("x"))
	}
}

func TestExplicitAbortThenCrash(t *testing.T) {
	m := NewMedium()
	db, _ := Open(m, map[model.EntityID]model.Value{"x": 10})
	mustPerform(t, db, "t1", 1, "x", 5)
	if err := db.Abort(map[model.TxnID]bool{"t1": true}); err != nil {
		t.Fatal(err)
	}
	if db.Get("x") != 10 {
		t.Fatalf("x = %d after abort", db.Get("x"))
	}
	mustPerform(t, db, "t2", 1, "x", 3)
	db.Commit("t2")
	db2, err := Open(db.Crash(), map[model.EntityID]model.Value{"x": 10})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Get("x") != 13 {
		t.Errorf("x = %d, want 13", db2.Get("x"))
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	m := NewMedium()
	db, _ := Open(m, map[model.EntityID]model.Value{"x": 0})
	for i := 0; i < 10; i++ {
		txn := model.TxnID(rune('a' + i))
		mustPerform(t, db, txn, 1, "x", 1)
		db.Commit(txn)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustPerform(t, db, "late", 1, "x", 5)
	db.Commit("late")
	db2, err := Open(db.Crash(), map[model.EntityID]model.Value{"x": 0})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Get("x") != 15 {
		t.Errorf("x = %d, want 15", db2.Get("x"))
	}
	// Pre-checkpoint transactions are simply absorbed into the snapshot;
	// their commit status needs no tracking after it.
	if !db2.Committed("late") {
		t.Error("post-checkpoint commit lost")
	}
}

func TestCheckpointRequiresQuiescence(t *testing.T) {
	m := NewMedium()
	db, _ := Open(m, nil)
	mustPerform(t, db, "t1", 1, "x", 1)
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint with an active transaction must fail")
	}
	db.Commit("t1")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestTornCrashPrefixes(t *testing.T) {
	// Every durable prefix must recover to a consistent state: only fully
	// committed transactions' effects are visible.
	m := NewMedium()
	db, _ := Open(m, map[model.EntityID]model.Value{"x": 0, "y": 0})
	mustPerform(t, db, "t1", 1, "x", 1)
	mustPerform(t, db, "t1", 2, "y", 2)
	db.Commit("t1")
	mustPerform(t, db, "t2", 1, "x", 10)
	db.Commit("t2")

	full := db.Crash()
	for lsn := int64(0); lsn <= int64(full.Len()); lsn++ {
		db2, err := Open(full.Prefix(lsn), map[model.EntityID]model.Value{"x": 0, "y": 0})
		if err != nil {
			t.Fatalf("prefix %d: %v", lsn, err)
		}
		x, y := db2.Get("x"), db2.Get("y")
		switch {
		case db2.Committed("t2"):
			if x != 11 || y != 2 {
				t.Errorf("prefix %d: x=%d y=%d want 11 2", lsn, x, y)
			}
		case db2.Committed("t1"):
			if x != 1 || y != 2 {
				t.Errorf("prefix %d: x=%d y=%d want 1 2", lsn, x, y)
			}
		default:
			if x != 0 || y != 0 {
				t.Errorf("prefix %d: x=%d y=%d want 0 0", lsn, x, y)
			}
		}
	}
}

func TestWinnerObservingLoserIsReported(t *testing.T) {
	// Violate the commit discipline on purpose: t2 reads t1's value and
	// commits while t1 stays in flight. Recovery must refuse.
	m := NewMedium()
	db, _ := Open(m, map[model.EntityID]model.Value{"x": 0})
	mustPerform(t, db, "t1", 1, "x", 5)
	mustPerform(t, db, "t2", 1, "x", 3) // builds on t1's uncommitted 5
	db.Commit("t2")
	if _, err := Open(db.Crash(), map[model.EntityID]model.Value{"x": 0}); err == nil {
		t.Fatal("recovery must report a winner depending on a loser")
	}
}

func TestPerformAfterCommitRejected(t *testing.T) {
	m := NewMedium()
	db, _ := Open(m, nil)
	mustPerform(t, db, "t1", 1, "x", 1)
	db.Commit("t1")
	if _, err := db.Perform("t1", 2, "x", add(1)); err == nil {
		t.Fatal("stepping a committed transaction must fail")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Update: "update", Commit: "commit", Abort: "abort", Checkpoint: "checkpoint", Kind(9): "unknown"} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
}

func TestNoOpUndoDoesNotClobber(t *testing.T) {
	// t1's pure read (value-preserving) is followed by t2's real write;
	// aborting t1 must not disturb t2, and recovery must agree.
	m := NewMedium()
	db, _ := Open(m, map[model.EntityID]model.Value{"x": 5})
	if _, err := db.Perform("t1", 1, "x", func(v model.Value) (model.Value, string) { return v, "read" }); err != nil {
		t.Fatal(err)
	}
	mustPerform(t, db, "t2", 1, "x", 10) // x = 15
	db.Commit("t2")
	if err := db.Abort(map[model.TxnID]bool{"t1": true}); err != nil {
		t.Fatalf("aborting a pure reader must be clean: %v", err)
	}
	if db.Get("x") != 15 {
		t.Fatalf("x = %d, want 15", db.Get("x"))
	}
	db2, err := Open(db.Crash(), map[model.EntityID]model.Value{"x": 5})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Get("x") != 15 {
		t.Errorf("after recovery x = %d, want 15", db2.Get("x"))
	}
}

func TestAbortSuffixPartialThenCommit(t *testing.T) {
	m := NewMedium()
	db, _ := Open(m, map[model.EntityID]model.Value{"x": 0, "y": 0})
	mustPerform(t, db, "t1", 1, "x", 5) // kept
	mustPerform(t, db, "t1", 2, "y", 7) // undone
	if err := db.AbortSuffix(map[model.TxnID]int{"t1": 1}); err != nil {
		t.Fatal(err)
	}
	if db.Get("x") != 5 || db.Get("y") != 0 {
		t.Fatalf("x=%d y=%d", db.Get("x"), db.Get("y"))
	}
	// Resume: redo step 2 differently, then commit.
	mustPerform(t, db, "t1", 2, "y", 9)
	db.Commit("t1")
	db2, err := Open(db.Crash(), map[model.EntityID]model.Value{"x": 0, "y": 0})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Get("x") != 5 || db2.Get("y") != 9 {
		t.Errorf("after recovery: x=%d y=%d, want 5 9", db2.Get("x"), db2.Get("y"))
	}
}

func TestAbortSuffixPartialThenCrash(t *testing.T) {
	// A partially rolled-back transaction that never commits is a loser:
	// its kept prefix must also vanish at recovery.
	m := NewMedium()
	db, _ := Open(m, map[model.EntityID]model.Value{"x": 0, "y": 0})
	mustPerform(t, db, "t1", 1, "x", 5)
	mustPerform(t, db, "t1", 2, "y", 7)
	if err := db.AbortSuffix(map[model.TxnID]int{"t1": 1}); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(db.Crash(), map[model.EntityID]model.Value{"x": 0, "y": 0})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Get("x") != 0 || db2.Get("y") != 0 {
		t.Errorf("loser prefix survived: x=%d y=%d", db2.Get("x"), db2.Get("y"))
	}
}

// TestQuickRandomHistories: random perform/commit/abort histories crash at
// random points; recovery must always equal the effects of exactly the
// committed transactions, replayed in their original order.
func TestQuickRandomHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ents := []model.EntityID{"x", "y", "z"}
	for trial := 0; trial < 60; trial++ {
		init := map[model.EntityID]model.Value{"x": 100, "y": 200, "z": 300}
		m := NewMedium()
		db, err := Open(m, init)
		if err != nil {
			t.Fatal(err)
		}
		// Serial transactions (each commits or aborts before the next
		// begins) so the commit discipline holds trivially.
		expected := copyVals(init)
		nTxn := 3 + rng.Intn(4)
		for i := 0; i < nTxn; i++ {
			txn := model.TxnID(rune('a' + i))
			var writes []struct {
				x model.EntityID
				d model.Value
			}
			steps := 1 + rng.Intn(3)
			for s := 0; s < steps; s++ {
				x := ents[rng.Intn(len(ents))]
				d := model.Value(rng.Intn(9) - 4)
				mustPerform(t, db, txn, s+1, x, d)
				writes = append(writes, struct {
					x model.EntityID
					d model.Value
				}{x, d})
			}
			switch rng.Intn(3) {
			case 0:
				if err := db.Abort(map[model.TxnID]bool{txn: true}); err != nil {
					t.Fatal(err)
				}
			default:
				db.Commit(txn)
				for _, w := range writes {
					expected[w.x] += w.d
				}
			}
		}
		db2, err := Open(db.Crash(), init)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, x := range ents {
			if db2.Get(x) != expected[x] {
				t.Fatalf("trial %d: %s = %d, want %d", trial, x, db2.Get(x), expected[x])
			}
		}
	}
}

// TestCommitGroupAtomicUnderTornTail: a group whose members observed each
// other's values commits with one record, so every torn prefix either keeps
// the whole group or rolls all of it back — per-member commit records would
// leave a winner depending on a loser at some prefix, which recovery
// rejects.
func TestCommitGroupAtomicUnderTornTail(t *testing.T) {
	init := map[model.EntityID]model.Value{"x": 0, "y": 0}
	m := NewMedium()
	db, err := Open(m, init)
	if err != nil {
		t.Fatal(err)
	}
	// Cyclic value dependency: a writes x, b reads-and-writes x then y,
	// a reads-and-writes y. Neither can commit before the other.
	mustPerform(t, db, "a", 1, "x", 1)
	mustPerform(t, db, "b", 1, "x", 1) // b observes a's uncommitted x
	mustPerform(t, db, "b", 2, "y", 1)
	mustPerform(t, db, "a", 2, "y", 1) // a observes b's uncommitted y
	db.CommitGroup([]model.TxnID{"a", "b"})
	if !db.Committed("a") || !db.Committed("b") {
		t.Fatal("group members not committed")
	}
	full := db.Crash()
	for lsn := int64(0); lsn <= int64(full.Len()); lsn++ {
		db2, err := Open(full.Prefix(lsn), init)
		if err != nil {
			t.Fatalf("prefix %d: %v", lsn, err)
		}
		if db2.Committed("a") != db2.Committed("b") {
			t.Fatalf("prefix %d split the commit group", lsn)
		}
		x, y := db2.Get("x"), db2.Get("y")
		if db2.Committed("a") {
			if x != 2 || y != 2 {
				t.Errorf("prefix %d: x=%d y=%d want 2 2", lsn, x, y)
			}
		} else if x != 0 || y != 0 {
			t.Errorf("prefix %d: x=%d y=%d want 0 0", lsn, x, y)
		}
	}
}

func TestCommitGroupEmptyAndSingle(t *testing.T) {
	m := NewMedium()
	db, _ := Open(m, nil)
	db.CommitGroup(nil) // no-op, no record
	if m.Len() != 0 {
		t.Fatalf("empty group appended %d records", m.Len())
	}
	mustPerform(t, db, "t", 1, "x", 1)
	db.CommitGroup([]model.TxnID{"t"})
	db2, err := Open(db.Crash(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !db2.Committed("t") || db2.Get("x") != 1 {
		t.Errorf("single-member group: committed=%v x=%d", db2.Committed("t"), db2.Get("x"))
	}
}

func TestMediumRecordsIsACopy(t *testing.T) {
	m := NewMedium()
	db, _ := Open(m, nil)
	mustPerform(t, db, "t", 1, "x", 1)
	recs := m.Records()
	if len(recs) != 1 || m.Len() != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	recs[0].Txn = "tampered"
	if m.Records()[0].Txn != "t" {
		t.Error("Records leaked internal storage")
	}
}

func TestPrefixBeyondEndIsFullCopy(t *testing.T) {
	m := NewMedium()
	db, _ := Open(m, nil)
	mustPerform(t, db, "t", 1, "x", 1)
	db.Commit("t")
	p := m.Prefix(1 << 30)
	if p.Len() != m.Len() {
		t.Errorf("prefix len %d, want %d", p.Len(), m.Len())
	}
}

func TestCorruptedRecordFailsRecovery(t *testing.T) {
	m := NewMedium()
	db, err := Open(m, map[model.EntityID]model.Value{"x": 10})
	if err != nil {
		t.Fatal(err)
	}
	mustPerform(t, db, "t1", 1, "x", 5)
	db.Commit("t1")
	mustPerform(t, db, "t2", 1, "x", 3)
	db.Commit("t2")
	med := db.Crash()

	// Every single-record corruption must be detected, wherever it lands:
	// an interior update, a commit, the tail record.
	for _, r := range med.Records() {
		cm := med.Prefix(int64(med.Len()))
		if !cm.Corrupt(r.LSN) {
			t.Fatalf("lsn %d not found", r.LSN)
		}
		if _, err := Open(cm, map[model.EntityID]model.Value{"x": 10}); err == nil {
			t.Errorf("recovery accepted corrupted %s record at lsn %d", r.Kind, r.LSN)
		}
	}
	// The uncorrupted log still recovers (the copies above never touched it).
	if db2, err := Open(med, map[model.EntityID]model.Value{"x": 10}); err != nil {
		t.Fatalf("clean log failed recovery: %v", err)
	} else if got := db2.Get("x"); got != 18 {
		t.Errorf("x = %d, want 18", got)
	}
}

func TestCorruptMissingLSN(t *testing.T) {
	m := NewMedium()
	if m.Corrupt(7) {
		t.Error("Corrupt reported success on an empty medium")
	}
}
