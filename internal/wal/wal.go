// Package wal adds durability to the entity store: a write-ahead log on a
// simulated durable medium, a volatile value cache, checkpoints, crash
// injection, and restart recovery. The paper's Section 1 separates three
// roles of a transaction — logical unit, unit of atomicity, unit of
// recovery — and this package realizes the recovery role across crashes:
// committed transactions survive, in-flight transactions are rolled back on
// restart.
//
// The design follows the standard write-ahead discipline with compensation
// log records (CLRs): every physical undo performed by a rollback is itself
// logged, so recovery is a single forward redo pass (updates and
// compensations alike) followed by undo of the remaining live updates of
// loser transactions. Recovery is idempotent — recovering an
// already-recovered log changes nothing.
//
// The commit discipline is the scheduler layer's: a transaction may commit
// only when every transaction whose values it observed has committed (group
// commit). Recovery relies on that — winners never depend on losers — and
// verifies the value chain, reporting corruption if a winner observed a
// loser's value.
package wal

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"mla/internal/model"
)

// ErrDegraded marks a durable medium that has persistently failed: a
// write or fsync kept failing after capped-backoff retries (or hit an
// injected disk-full). Every error the medium returns after giving up
// wraps this sentinel, so the layers above (pipeline, engine session,
// serve) can distinguish "the disk is gone — shed writes and degrade"
// from a logic error.
var ErrDegraded = errors.New("wal: durable medium degraded")

// Kind tags a log record.
type Kind int

const (
	// Update records one step's before/after images.
	Update Kind = iota
	// Compensation records one physical undo applied during a rollback:
	// the entity was restored from Before to After (= the cancelled
	// update's before-image). Redone like an Update at recovery.
	Compensation
	// Commit marks a transaction durable.
	Commit
	// Abort marks the completion of a rollback; Keep is the kept prefix
	// length (0 = full abort).
	Abort
	// Checkpoint snapshots the full value state, bounding recovery work.
	Checkpoint
)

func (k Kind) String() string {
	switch k {
	case Update:
		return "update"
	case Compensation:
		return "compensation"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	case Checkpoint:
		return "checkpoint"
	}
	return "unknown"
}

// Record is one durable log entry. The json tags are the on-disk frame
// payload of the file-backed medium (see file.go); the in-memory medium
// never serializes.
type Record struct {
	LSN    int64          `json:"l"`
	Kind   Kind           `json:"k"`
	Txn    model.TxnID    `json:"t,omitempty"`
	Seq    int            `json:"q,omitempty"`
	Entity model.EntityID `json:"e,omitempty"`
	Before model.Value    `json:"b,omitempty"`
	After  model.Value    `json:"a,omitempty"`
	// Keep is set on Abort records: the kept prefix length (0 = full).
	Keep int `json:"p,omitempty"`
	// Group is set on Commit records written by CommitGroup: the
	// additional members committed atomically with Txn. A commit group
	// whose members observed each other's values must be one record — a
	// torn tail then keeps the whole group or none of it, never a winner
	// depending on a loser.
	Group []model.TxnID `json:"g,omitempty"`
	// Snapshot is set on Checkpoint records.
	Snapshot map[model.EntityID]model.Value `json:"s,omitempty"`
	// Done is set on Checkpoint records: every transaction durably
	// committed at checkpoint time. Compaction deletes the Commit records
	// behind the checkpoint, so the committed set must travel with it —
	// restart re-verification (Durable/Committed lookups) depends on the
	// full set surviving any number of checkpoints.
	Done []model.TxnID `json:"d,omitempty"`

	// Sum is the record's integrity checksum, computed by the medium on
	// append over every payload field (including the LSN, so a record
	// cannot be relocated undetected). Recovery verifies it before
	// replaying anything: a torn tail is a missing suffix and every prefix
	// is a consistent input, but a CORRUPTED record — bit rot, a misdirected
	// write — is not recoverable-around and must fail Open loudly instead
	// of replaying garbage into the redo pass.
	Sum uint64 `json:"x"`
}

// FNV-1a, the codebase's standard seedless hash (see internal/fault).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func mixInt(h uint64, v int64) uint64 {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h = (h ^ (u & 0xff)) * fnvPrime
		u >>= 8
	}
	return h
}

func mixStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	// Length terminator: distinguishes ("ab","c") from ("a","bc").
	return mixInt(h, int64(len(s)))
}

// checksum folds every field that gives the record meaning. Allocation-free
// for the hot kinds (Update/Compensation/Commit); Checkpoint sorts its
// snapshot keys for a canonical order, which is fine at checkpoint
// frequency.
func (r *Record) checksum() uint64 {
	h := fnvOffset
	h = mixInt(h, r.LSN)
	h = mixInt(h, int64(r.Kind))
	h = mixStr(h, string(r.Txn))
	h = mixInt(h, int64(r.Seq))
	h = mixStr(h, string(r.Entity))
	h = mixInt(h, int64(r.Before))
	h = mixInt(h, int64(r.After))
	h = mixInt(h, int64(r.Keep))
	h = mixInt(h, int64(len(r.Group)))
	for _, g := range r.Group {
		h = mixStr(h, string(g))
	}
	h = mixInt(h, int64(len(r.Done)))
	for _, d := range r.Done {
		h = mixStr(h, string(d))
	}
	if r.Snapshot != nil {
		keys := make([]model.EntityID, 0, len(r.Snapshot))
		for k := range r.Snapshot {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			h = mixStr(h, string(k))
			h = mixInt(h, int64(r.Snapshot[k]))
		}
	}
	return h
}

// Medium is the simulated durable device: an append-only record sequence
// that survives Crash. Prefix returns a truncated copy for torn-crash
// tests.
//
// Sync models the device flush (fsync): it costs SyncDelay of wall-clock
// time and bumps a counter. Appended records are always recoverable in this
// simulation — Sync exists so that commit paths pay a realistic per-flush
// latency and so the benchmark harness can report fsyncs/commit; the
// group-commit Pipeline earns its throughput by amortizing exactly this
// cost across a batch.
type Medium struct {
	records []Record
	nextLSN int64

	// sinceCkpt counts records appended since the latest Checkpoint (or
	// since the start of the log) — the recovery replay bound.
	sinceCkpt int

	// backing, when non-nil, is the real on-disk segment log behind this
	// medium (see file.go). Appends persist to it BEFORE entering the
	// in-memory cache (the write-ahead rule applied to the medium itself),
	// and Sync becomes a real fsync.
	backing *fileBacking
	info    RecoveryInfo

	// SyncDelay is the simulated per-fsync device latency. Zero means
	// syncs are free (counted but instantaneous). Set before use; not
	// safe to change concurrently with Sync.
	SyncDelay time.Duration
	syncs     atomic.Int64
}

// NewMedium returns an empty in-memory durable medium.
func NewMedium() *Medium { return &Medium{nextLSN: 1} }

func (m *Medium) append(r Record) (Record, error) {
	r.LSN = m.nextLSN
	r.Sum = r.checksum()
	if m.backing != nil {
		if err := m.backing.append(r); err != nil {
			return Record{}, err
		}
	}
	m.nextLSN++
	m.records = append(m.records, r)
	if r.Kind == Checkpoint {
		m.sinceCkpt = 0
	} else {
		m.sinceCkpt++
	}
	return r, nil
}

// checkpointCompact appends a Checkpoint record as the FIRST record of a
// fresh segment and drops everything before it — in memory and on disk.
// The snapshot plus committed set subsume the deleted prefix, so recovery
// replay (and the record cache) is bounded by the checkpoint.
func (m *Medium) checkpointCompact(snap map[model.EntityID]model.Value, done []model.TxnID) error {
	r := Record{LSN: m.nextLSN, Kind: Checkpoint, Snapshot: snap, Done: done}
	r.Sum = r.checksum()
	if m.backing != nil {
		if err := m.backing.compact(r); err != nil {
			return err
		}
	}
	m.nextLSN++
	m.records = append(m.records[:0:0], r)
	m.sinceCkpt = 0
	return nil
}

// Recovery reports what the last OpenFile load found: the boot epoch, how
// many records survived, the replay distance from the latest checkpoint,
// and how many torn tail bytes were truncated away. Zero value for
// in-memory media.
func (m *Medium) Recovery() RecoveryInfo { return m.info }

// Close releases the on-disk backing (final fsync included). In-memory
// media close trivially.
func (m *Medium) Close() error {
	if m.backing == nil {
		return nil
	}
	return m.backing.close()
}

// Corrupt flips the payload of the record with the given LSN without
// recomputing its checksum — simulated bit rot for recovery tests. It
// reports whether a record with that LSN existed.
func (m *Medium) Corrupt(lsn int64) bool {
	for i := range m.records {
		if m.records[i].LSN == lsn {
			m.records[i].After++
			m.records[i].Before--
			return true
		}
	}
	return false
}

// Len returns the number of durable records.
func (m *Medium) Len() int { return len(m.records) }

// Sync flushes the device: sleeps SyncDelay, increments the sync counter,
// and — on a file-backed medium — fsyncs the active segment (with
// capped-backoff retries under injected faults). Safe to call concurrently
// with appends; callers deliberately invoke it outside any log lock so a
// slow flush does not stall appends (the backing has its own leaf mutex).
func (m *Medium) Sync() error {
	if m.SyncDelay > 0 {
		time.Sleep(m.SyncDelay)
	}
	m.syncs.Add(1)
	if m.backing != nil {
		return m.backing.sync()
	}
	return nil
}

// Syncs returns the number of device flushes performed.
func (m *Medium) Syncs() int64 { return m.syncs.Load() }

// Records returns a copy of the durable log.
func (m *Medium) Records() []Record { return append([]Record(nil), m.records...) }

// Prefix returns a new medium holding only records with LSN ≤ lsn —
// simulating a crash where later records never reached the device. Because
// the DB appends each record before applying its effect (the WAL rule),
// any prefix is a consistent recovery input.
func (m *Medium) Prefix(lsn int64) *Medium {
	out := NewMedium()
	out.SyncDelay = m.SyncDelay
	for _, r := range m.records {
		if r.LSN <= lsn {
			out.records = append(out.records, r)
			out.nextLSN = r.LSN + 1
			if r.Kind == Checkpoint {
				out.sinceCkpt = 0
			} else {
				out.sinceCkpt++
			}
		}
	}
	return out
}

// DB is the recoverable store.
type DB struct {
	medium *Medium
	init   map[model.EntityID]model.Value

	vals      map[model.EntityID]model.Value
	committed map[model.TxnID]bool
	// live: per transaction, the stack of update records not yet cancelled
	// by a compensation (oldest first).
	live map[model.TxnID][]Record
	// freeStacks recycles live-update stacks of retired transactions: a
	// committed transaction's stack goes back in the pool instead of to the
	// GC, so the steady-state Perform path of a long run stops allocating
	// per-transaction slices.
	freeStacks [][]Record
}

// maxFreeStacks caps the recycled stack pool (it only needs to cover peak
// concurrent transactions).
const maxFreeStacks = 64

// liveStack returns t's live stack, reusing a pooled one for a transaction's
// first update.
func (db *DB) liveStack(t model.TxnID) []Record {
	stack, ok := db.live[t]
	if !ok && len(db.freeStacks) > 0 {
		stack = db.freeStacks[len(db.freeStacks)-1]
		db.freeStacks = db.freeStacks[:len(db.freeStacks)-1]
	}
	return stack
}

// retireLive deletes t's live stack and pools its backing array.
func (db *DB) retireLive(t model.TxnID) {
	if stack, ok := db.live[t]; ok {
		delete(db.live, t)
		if cap(stack) > 0 && len(db.freeStacks) < maxFreeStacks {
			clear(stack) // drop record references (entity strings, group slices)
			db.freeStacks = append(db.freeStacks, stack[:0])
		}
	}
}

// Open mounts a DB on the medium, running recovery if the log is nonempty.
// init provides the values of a fresh database (used when no checkpoint
// precedes the replay point).
func Open(m *Medium, init map[model.EntityID]model.Value) (*DB, error) {
	db := &DB{
		medium:    m,
		init:      copyVals(init),
		vals:      copyVals(init),
		committed: make(map[model.TxnID]bool),
		live:      make(map[model.TxnID][]Record),
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	return db, nil
}

func copyVals(in map[model.EntityID]model.Value) map[model.EntityID]model.Value {
	out := make(map[model.EntityID]model.Value, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// recover replays the durable log: start from the latest checkpoint (or
// init), redo every update and compensation in order, then undo the losers
// (transactions with live updates but no Commit), newest-first, logging the
// undo as fresh compensations plus Abort markers.
func (db *DB) recover() error {
	records := db.medium.records
	// Integrity pass over the WHOLE durable log, before anything is
	// replayed: a checksum mismatch means the medium holds a corrupted
	// record (not a torn tail — truncation just shortens the sequence), and
	// no replay decision downstream of it can be trusted. Detection, not
	// repair: the operator (or test) gets an error naming the LSN.
	for i := range records {
		if got, want := records[i].Sum, records[i].checksum(); got != want {
			return fmt.Errorf("wal: corrupted record at lsn %d (%s): checksum %#x, expected %#x",
				records[i].LSN, records[i].Kind, got, want)
		}
	}
	start := 0
	for i := len(records) - 1; i >= 0; i-- {
		if records[i].Kind == Checkpoint {
			db.vals = copyVals(records[i].Snapshot)
			start = i + 1
			break
		}
	}
	for _, r := range records[start:] {
		switch r.Kind {
		case Update:
			if cur := db.vals[r.Entity]; cur != r.Before {
				return fmt.Errorf("wal: redo mismatch at lsn %d: %s expected %d, found %d",
					r.LSN, r.Entity, r.Before, cur)
			}
			db.vals[r.Entity] = r.After
			db.live[r.Txn] = append(db.live[r.Txn], r)
		case Compensation:
			if r.Before != r.After {
				// Value-preserving updates compensate as pure stack pops.
				if cur := db.vals[r.Entity]; cur != r.Before {
					return fmt.Errorf("wal: compensation redo mismatch at lsn %d: %s expected %d, found %d",
						r.LSN, r.Entity, r.Before, cur)
				}
				db.vals[r.Entity] = r.After
			}
			// Cancel the transaction's most recent live update.
			stack := db.live[r.Txn]
			if len(stack) == 0 {
				return fmt.Errorf("wal: compensation at lsn %d without a live update for %s", r.LSN, r.Txn)
			}
			top := stack[len(stack)-1]
			if top.Entity != r.Entity {
				return fmt.Errorf("wal: compensation at lsn %d cancels %s but top of stack is %s",
					r.LSN, r.Entity, top.Entity)
			}
			db.live[r.Txn] = stack[:len(stack)-1]
		case Commit:
			db.committed[r.Txn] = true
			delete(db.live, r.Txn)
			for _, t := range r.Group {
				db.committed[t] = true
				delete(db.live, t)
			}
		case Abort:
			// Marker only; the physical work was logged as compensations.
			if len(db.live[r.Txn]) == 0 {
				delete(db.live, r.Txn)
			}
		case Checkpoint:
			// Only the latest checkpoint is used.
		}
	}
	// The replay-start checkpoint carries the committed set of the deleted
	// prefix (compaction dropped those Commit records).
	if start > 0 {
		for _, t := range records[start-1].Done {
			db.committed[t] = true
		}
	}
	// Undo losers: all remaining live updates, newest first globally.
	var loserRecs []Record
	for t, stack := range db.live {
		if db.committed[t] {
			return fmt.Errorf("wal: committed transaction %s has live updates", t)
		}
		loserRecs = append(loserRecs, stack...)
	}
	sortByLSNDesc(loserRecs)
	for _, u := range loserRecs {
		if u.Before != u.After {
			if cur := db.vals[u.Entity]; cur != u.After {
				return fmt.Errorf("wal: loser undo mismatch at lsn %d (%s on %s): a committed transaction observed an uncommitted value",
					u.LSN, u.Txn, u.Entity)
			}
			db.vals[u.Entity] = u.Before
		}
		if _, err := db.medium.append(Record{Kind: Compensation, Txn: u.Txn, Seq: u.Seq, Entity: u.Entity, Before: u.After, After: u.Before}); err != nil {
			return fmt.Errorf("wal: recovery undo: %w", err)
		}
	}
	seen := make(map[model.TxnID]bool)
	for _, u := range loserRecs {
		if !seen[u.Txn] {
			seen[u.Txn] = true
			if _, err := db.medium.append(Record{Kind: Abort, Txn: u.Txn}); err != nil {
				return fmt.Errorf("wal: recovery abort marker: %w", err)
			}
			delete(db.live, u.Txn)
		}
	}
	return nil
}

func sortByLSNDesc(rs []Record) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].LSN > rs[j].LSN })
}

// Get returns the current value of x.
func (db *DB) Get(x model.EntityID) model.Value { return db.vals[x] }

// Values returns a copy of the current state.
func (db *DB) Values() map[model.EntityID]model.Value { return copyVals(db.vals) }

// Committed reports whether t has a durable commit.
func (db *DB) Committed(t model.TxnID) bool { return db.committed[t] }

// Perform executes one atomic step WAL-first: the update record is durable
// before the volatile value changes.
func (db *DB) Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) (model.Step, error) {
	if db.committed[t] {
		return model.Step{}, fmt.Errorf("wal: %s already committed", t)
	}
	before := db.vals[x]
	after, label := f(before)
	rec, err := db.medium.append(Record{Kind: Update, Txn: t, Seq: seq, Entity: x, Before: before, After: after})
	if err != nil {
		// WAL-first means a failed append changes nothing volatile: the
		// step simply did not happen.
		return model.Step{}, err
	}
	db.vals[x] = after
	db.live[t] = append(db.liveStack(t), rec)
	return model.Step{Txn: t, Seq: seq, Entity: x, Label: label, Before: before, After: after}, nil
}

// Commit makes t durable. On a file-backed medium the append can fail; the
// transaction is then NOT committed.
func (db *DB) Commit(t model.TxnID) error {
	if _, err := db.medium.append(Record{Kind: Commit, Txn: t}); err != nil {
		return err
	}
	db.committed[t] = true
	db.retireLive(t)
	return nil
}

// CommitGroup makes all of ids durable with ONE log record. Commit groups
// exist because value dependencies can cycle between finished transactions
// (the paper's commitment-chaining observation, Section 6); members may
// have observed each other's values, so their durability must be atomic:
// a torn tail that kept some members' commits but not others' would leave
// a committed winner depending on an uncommitted loser, which recovery
// rejects. One record keeps the group indivisible under any prefix.
func (db *DB) CommitGroup(ids []model.TxnID) error {
	if len(ids) == 0 {
		return nil
	}
	if _, err := db.medium.append(Record{Kind: Commit, Txn: ids[0], Group: append([]model.TxnID(nil), ids[1:]...)}); err != nil {
		return err
	}
	for _, t := range ids {
		db.committed[t] = true
		db.retireLive(t)
	}
	return nil
}

// Abort fully rolls back the transactions in set; the set must be closed
// under value dependencies, exactly as in storage.Store.
func (db *DB) Abort(set map[model.TxnID]bool) error {
	keep := make(map[model.TxnID]int, len(set))
	for t := range set {
		keep[t] = 0
	}
	return db.AbortSuffix(keep)
}

// AbortSuffix rolls each transaction in keep back to its given sequence
// number (0 = full abort), logging each physical undo as a compensation
// record and finishing with an Abort marker. The step-granular
// dependency-closure requirement of storage.Store.AbortSuffix applies.
func (db *DB) AbortSuffix(keep map[model.TxnID]int) error {
	var recs []Record
	for t, k := range keep {
		for _, r := range db.live[t] {
			if r.Seq > k {
				recs = append(recs, r)
			}
		}
	}
	sortByLSNDesc(recs)
	var unsound error
	for _, u := range recs {
		if u.Before != u.After {
			if cur := db.vals[u.Entity]; cur != u.After && unsound == nil {
				unsound = fmt.Errorf("wal: abort set not dependency-closed at %s seq %d", u.Txn, u.Seq)
			}
			db.vals[u.Entity] = u.Before
		}
		if _, err := db.medium.append(Record{Kind: Compensation, Txn: u.Txn, Seq: u.Seq, Entity: u.Entity, Before: u.After, After: u.Before}); err != nil {
			// The volatile undo already happened; the CLR is lost. The
			// medium is degraded — a crash now re-undoes from the original
			// updates, which is idempotent for recovery, so surfacing the
			// error (and stopping all further writes) is the right move.
			return err
		}
	}
	for t, k := range keep {
		var kept []Record
		for _, r := range db.live[t] {
			if r.Seq <= k {
				kept = append(kept, r)
			}
		}
		if _, err := db.medium.append(Record{Kind: Abort, Txn: t, Keep: k}); err != nil {
			return err
		}
		if len(kept) == 0 {
			db.retireLive(t)
		} else {
			db.live[t] = kept
		}
	}
	return unsound
}

// Checkpoint writes a snapshot record; recovery after a checkpoint replays
// only the suffix. The checkpoint is quiescent: it returns an error when
// transactions are in flight (the simplest sound discipline).
func (db *DB) Checkpoint() error {
	if len(db.live) > 0 {
		return fmt.Errorf("wal: checkpoint requires quiescence (%d active transactions)", len(db.live))
	}
	_, err := db.medium.append(Record{Kind: Checkpoint, Snapshot: copyVals(db.vals), Done: db.doneIDs()})
	return err
}

// CheckpointCompact writes a quiescent checkpoint AND truncates the log
// behind it: on a file-backed medium the checkpoint opens a fresh segment
// and every older segment is deleted; in memory the record cache drops its
// prefix. Recovery replay — and the resident record cache — is bounded by
// the distance to this checkpoint from then on.
func (db *DB) CheckpointCompact() error {
	if len(db.live) > 0 {
		return fmt.Errorf("wal: checkpoint requires quiescence (%d active transactions)", len(db.live))
	}
	return db.medium.checkpointCompact(copyVals(db.vals), db.doneIDs())
}

func (db *DB) doneIDs() []model.TxnID {
	ids := make([]model.TxnID, 0, len(db.committed))
	for t := range db.committed {
		ids = append(ids, t)
	}
	model.SortTxnIDs(ids)
	return ids
}

// Live returns the number of transactions with un-undone live updates —
// zero means the log is quiescent and a checkpoint may run.
func (db *DB) Live() int { return len(db.live) }

// RecordsSinceCheckpoint is the recovery replay bound: how many records a
// restart would redo before reaching the latest checkpoint (the whole log
// if none exists).
func (db *DB) RecordsSinceCheckpoint() int { return db.medium.sinceCkpt }

// Crash simulates losing all volatile state: it returns the durable medium,
// from which Open recovers a fresh DB. The old DB must not be used again.
func (db *DB) Crash() *Medium { return db.medium }

// LogLen returns the number of durable records, without the copying of
// Records(); fault injectors use it to attribute appends.
func (db *DB) LogLen() int { return db.medium.Len() }

// Sync flushes the underlying medium; see Medium.Sync. Unbatched commit
// paths call this once per commit record, the group-commit Pipeline once
// per flushed batch.
func (db *DB) Sync() error { return db.medium.Sync() }

// Stats is a point-in-time snapshot of the log, returned by DB.Snapshot.
// Like every Snapshot() in this codebase (lock, sched, net), the returned
// struct is a value copy: it never aliases live state, stays valid forever,
// and mutating it has no effect on the DB.
type Stats struct {
	// Records is the durable log length.
	Records int
	// Commits is the number of transactions durably committed.
	Commits int
	// Live is the number of transactions with un-undone live updates.
	Live int
	// Syncs is the number of device flushes performed.
	Syncs int64
}

// Snapshot returns a value-copy of the log's counters; see Stats for the
// immutability contract.
func (db *DB) Snapshot() Stats {
	return Stats{
		Records: db.medium.Len(),
		Commits: len(db.committed),
		Live:    len(db.live),
		Syncs:   db.medium.Syncs(),
	}
}
