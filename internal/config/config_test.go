package config

import (
	"strings"
	"testing"

	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/sim"
)

const sample = `{
  "k": 3,
  "init": {"x": 100, "y": 0},
  "transactions": [
    {"id": "t1", "classes": ["cust"], "ops": [
      {"entity": "x", "kind": "add", "amount": -10, "cutAfter": 2},
      {"entity": "y", "kind": "add", "amount": 10}
    ]},
    {"id": "t2", "classes": ["cust"], "ops": [
      {"entity": "x", "kind": "add", "amount": -5, "cutAfter": 2},
      {"entity": "y", "kind": "add", "amount": 5}
    ]},
    {"id": "audit", "classes": ["audit"], "ops": [
      {"entity": "x", "kind": "read"},
      {"entity": "y", "kind": "read"}
    ]}
  ]
}`

func TestLoadAndRun(t *testing.T) {
	wl, err := Load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Programs) != 3 || wl.Nest.K() != 3 {
		t.Fatalf("programs=%d k=%d", len(wl.Programs), wl.Nest.K())
	}
	if wl.Nest.Level("t1", "t2") != 2 || wl.Nest.Level("t1", "audit") != 1 {
		t.Error("nest levels wrong")
	}
	// Breakpoint after t1's first op is class-wide; after the last op the
	// spec is never queried, and unspecified positions default to k.
	p1 := []model.Step{{Txn: "t1", Seq: 1, Entity: "x"}}
	if got := wl.Spec.CutAfter("t1", p1); got != 2 {
		t.Errorf("cutAfter = %d", got)
	}
	pa := []model.Step{{Txn: "audit", Seq: 1, Entity: "x"}}
	if got := wl.Spec.CutAfter("audit", pa); got != 3 {
		t.Errorf("audit cutAfter = %d, want default k", got)
	}
	// Run it.
	res, err := sim.Run(sim.DefaultConfig(), wl.Programs,
		sched.NewPreventer(wl.Nest, wl.Spec), wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final["x"] != 85 || res.Final["y"] != 15 {
		t.Errorf("final: %v", res.Final)
	}
	ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("run not correctable")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"k":2,"bogus":1,"transactions":[{"id":"t","ops":[{"entity":"x"}]}]}`,
		"k too small":     `{"k":1,"transactions":[{"id":"t","ops":[{"entity":"x"}]}]}`,
		"no transactions": `{"k":2,"transactions":[]}`,
		"empty id":        `{"k":2,"transactions":[{"id":"","ops":[{"entity":"x"}]}]}`,
		"duplicate id":    `{"k":2,"transactions":[{"id":"t","ops":[{"entity":"x"}]},{"id":"t","ops":[{"entity":"x"}]}]}`,
		"class count":     `{"k":2,"transactions":[{"id":"t","classes":["a"],"ops":[{"entity":"x"}]}]}`,
		"no ops":          `{"k":2,"transactions":[{"id":"t","ops":[]}]}`,
		"no entity":       `{"k":2,"transactions":[{"id":"t","ops":[{"kind":"read"}]}]}`,
		"bad kind":        `{"k":2,"transactions":[{"id":"t","ops":[{"entity":"x","kind":"mul"}]}]}`,
		"bad cut":         `{"k":2,"transactions":[{"id":"t","ops":[{"entity":"x","cutAfter":7},{"entity":"y"}]}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestOpKinds(t *testing.T) {
	doc := `{"k":2,"init":{"x":7},"transactions":[
	  {"id":"t","ops":[
	    {"entity":"x","kind":"read"},
	    {"entity":"x","kind":"add","amount":3},
	    {"entity":"x","kind":"write","amount":42}
	  ]}
	]}`
	wl, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	vals := map[model.EntityID]model.Value{"x": 7}
	if _, err := model.RunSerial(wl.Programs, vals); err != nil {
		t.Fatal(err)
	}
	if vals["x"] != 42 {
		t.Errorf("x = %d", vals["x"])
	}
}
