// Package config loads user-defined workloads from JSON: straight-line
// transactions (op scripts), their nest classes, per-boundary breakpoint
// coarseness, and initial entity values. It gives cmd/mlasim a way to run
// arbitrary scenarios without writing Go — the moral equivalent of a
// specification file for a multilevel-atomicity application database.
//
// Format:
//
//	{
//	  "k": 3,
//	  "init": {"x": 100},
//	  "transactions": [
//	    {"id": "t1", "classes": ["cust"],
//	     "ops": [
//	       {"entity": "x", "kind": "add", "amount": -10, "cutAfter": 2},
//	       {"entity": "y", "kind": "add", "amount": 10}
//	     ]}
//	  ]
//	}
//
// classes supplies the k−2 intermediate nest labels. cutAfter is the
// coarseness (2..k) of the breakpoint after the op; omitted or 0 means the
// default k (no one may interleave there).
package config

import (
	"encoding/json"
	"fmt"
	"io"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// File is the JSON document.
type File struct {
	K            int                            `json:"k"`
	Init         map[model.EntityID]model.Value `json:"init,omitempty"`
	Transactions []Txn                          `json:"transactions"`
}

// Txn is one transaction definition.
type Txn struct {
	ID      model.TxnID `json:"id"`
	Classes []string    `json:"classes,omitempty"`
	Ops     []Op        `json:"ops"`
}

// Op is one step.
type Op struct {
	Entity   model.EntityID `json:"entity"`
	Kind     string         `json:"kind"` // "read", "add", or "write"
	Amount   model.Value    `json:"amount,omitempty"`
	CutAfter int            `json:"cutAfter,omitempty"`
}

// Workload is the loaded, runnable form.
type Workload struct {
	Programs []model.Program
	Nest     *nest.Nest
	Spec     breakpoint.Spec
	Init     map[model.EntityID]model.Value
}

// Load parses and validates a workload file.
func Load(r io.Reader) (*Workload, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return Build(f)
}

// Build turns a parsed File into a Workload.
func Build(f File) (*Workload, error) {
	if f.K < 2 {
		return nil, fmt.Errorf("config: k=%d out of range (need >= 2)", f.K)
	}
	if len(f.Transactions) == 0 {
		return nil, fmt.Errorf("config: no transactions")
	}
	wl := &Workload{Init: f.Init, Nest: nest.New(f.K)}
	if wl.Init == nil {
		wl.Init = map[model.EntityID]model.Value{}
	}
	cuts := make(map[model.TxnID][]int)
	seen := make(map[model.TxnID]bool)
	for _, t := range f.Transactions {
		if t.ID == "" {
			return nil, fmt.Errorf("config: transaction with empty id")
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("config: duplicate transaction %q", t.ID)
		}
		seen[t.ID] = true
		if len(t.Classes) != f.K-2 {
			return nil, fmt.Errorf("config: transaction %q has %d classes, want %d for k=%d",
				t.ID, len(t.Classes), f.K-2, f.K)
		}
		if len(t.Ops) == 0 {
			return nil, fmt.Errorf("config: transaction %q has no ops", t.ID)
		}
		ops := make([]model.Op, len(t.Ops))
		cs := make([]int, 0, len(t.Ops))
		for i, op := range t.Ops {
			if op.Entity == "" {
				return nil, fmt.Errorf("config: %q op %d has no entity", t.ID, i)
			}
			switch op.Kind {
			case "read", "":
				ops[i] = model.Read(op.Entity)
			case "add":
				ops[i] = model.Add(op.Entity, op.Amount)
			case "write":
				ops[i] = model.Write(op.Entity, op.Amount)
			default:
				return nil, fmt.Errorf("config: %q op %d has unknown kind %q", t.ID, i, op.Kind)
			}
			c := op.CutAfter
			if c == 0 {
				c = f.K
			}
			if c < 2 || c > f.K {
				return nil, fmt.Errorf("config: %q op %d cutAfter=%d out of range [2,%d]",
					t.ID, i, op.CutAfter, f.K)
			}
			if i < len(t.Ops)-1 {
				cs = append(cs, c)
			}
		}
		wl.Programs = append(wl.Programs, &model.Scripted{Txn: t.ID, Ops: ops})
		wl.Nest.Add(t.ID, t.Classes...)
		cuts[t.ID] = cs
	}
	k := f.K
	wl.Spec = breakpoint.Func{Levels: k, Fn: func(t model.TxnID, prefix []model.Step) int {
		cs := cuts[t]
		i := len(prefix) - 1
		if i < 0 || i >= len(cs) {
			return k
		}
		return cs[i]
	}}
	return wl, nil
}
