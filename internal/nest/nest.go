// Package nest implements k-nests (Section 4.2 of the paper): a chain of
// successively finer equivalence relations π(1) ⊇ π(2) ⊇ … ⊇ π(k) over a set
// of transactions, where π(1) has a single class and π(k) has singleton
// classes. Because nested equivalence relations form a hierarchy, a k-nest
// is represented by assigning each transaction a path of class labels: two
// transactions are π(i)-equivalent exactly when their paths agree on the
// first i labels. level(t,t′) — the largest i with (t,t′) ∈ π(i) — is then
// the length of the longest common prefix.
package nest

import (
	"fmt"
	"sort"
	"strings"

	"mla/internal/model"
)

// Nest is a k-nest for a set of transactions. The zero value is unusable;
// construct with New.
type Nest struct {
	k     int
	paths map[model.TxnID][]string
}

// New creates an empty k-nest. k must be at least 2: the paper's definition
// needs the trivial top relation π(1) and the singleton bottom relation
// π(k). k=2 yields classical serializability (Section 4.3).
func New(k int) *Nest {
	if k < 2 {
		panic(fmt.Sprintf("nest: k must be >= 2, got %d", k))
	}
	return &Nest{k: k, paths: make(map[model.TxnID][]string)}
}

// K returns the number of levels.
func (n *Nest) K() int { return n.k }

// Add registers transaction t with the given intermediate class labels for
// levels 2..k-1 (so len(mid) must be k-2). Level 1 is the universal class
// and level k is the singleton class {t}; both are implicit. Add panics on a
// wrong label count or a duplicate transaction — both are programming
// errors in the specification being built.
func (n *Nest) Add(t model.TxnID, mid ...string) {
	if len(mid) != n.k-2 {
		panic(fmt.Sprintf("nest: transaction %s: need %d intermediate labels for a %d-nest, got %d",
			t, n.k-2, n.k, len(mid)))
	}
	if _, dup := n.paths[t]; dup {
		panic(fmt.Sprintf("nest: transaction %s added twice", t))
	}
	path := make([]string, 0, n.k)
	path = append(path, "*") // level 1: everyone
	path = append(path, mid...)
	path = append(path, "t:"+string(t)) // level k: singleton
	n.paths[t] = path
}

// Has reports whether t is registered.
func (n *Nest) Has(t model.TxnID) bool { _, ok := n.paths[t]; return ok }

// Txns returns the registered transactions, sorted.
func (n *Nest) Txns() []model.TxnID {
	out := make([]model.TxnID, 0, len(n.paths))
	for t := range n.paths {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Level returns level(t,t′): the largest i (1-based) such that t and t′ lie
// in a common π(i) class. Level(t,t) = k. It panics if either transaction is
// unregistered, since a missing transaction means the interleaving
// specification is incomplete.
func (n *Nest) Level(t, u model.TxnID) int {
	pt, ok := n.paths[t]
	if !ok {
		panic(fmt.Sprintf("nest: unknown transaction %s", t))
	}
	pu, ok := n.paths[u]
	if !ok {
		panic(fmt.Sprintf("nest: unknown transaction %s", u))
	}
	lvl := 0
	for i := 0; i < n.k; i++ {
		if pt[i] != pu[i] {
			break
		}
		lvl = i + 1
	}
	return lvl
}

// SameClass reports whether (t,u) ∈ π(level).
func (n *Nest) SameClass(t, u model.TxnID, level int) bool {
	if level < 1 || level > n.k {
		panic(fmt.Sprintf("nest: level %d out of range [1,%d]", level, n.k))
	}
	return n.Level(t, u) >= level
}

// Classes returns the equivalence classes of π(level), each sorted, in a
// deterministic order.
func (n *Nest) Classes(level int) [][]model.TxnID {
	if level < 1 || level > n.k {
		panic(fmt.Sprintf("nest: level %d out of range [1,%d]", level, n.k))
	}
	byKey := make(map[string][]model.TxnID)
	for t, p := range n.paths {
		key := strings.Join(p[:level], "\x00")
		byKey[key] = append(byKey[key], t)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]model.TxnID, 0, len(keys))
	for _, k := range keys {
		c := byKey[k]
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out = append(out, c)
	}
	return out
}

// Validate checks the k-nest axioms over the registered transactions:
// π(1) is one class, π(k) is singletons, and each π(i) refines π(i-1). With
// the path representation the first two hold by construction; refinement is
// likewise structural, so Validate mainly guards against label collisions
// that would merge singleton classes (e.g. two distinct transactions whose
// paths coincide, which cannot happen because level k embeds the TxnID).
// It also rejects a label reused under *different* parents only if that
// would be ambiguous — with path semantics it is not, so the same label may
// safely recur under different parents ("team1" inside two specialties).
func (n *Nest) Validate() error {
	if len(n.paths) == 0 {
		return fmt.Errorf("nest: no transactions registered")
	}
	for t, p := range n.paths {
		if len(p) != n.k {
			return fmt.Errorf("nest: transaction %s has path length %d, want %d", t, len(p), n.k)
		}
	}
	return nil
}

// Restrict returns a new nest containing only the transactions in keep,
// preserving k and paths. Transactions absent from the nest are ignored.
func (n *Nest) Restrict(keep []model.TxnID) *Nest {
	out := &Nest{k: n.k, paths: make(map[model.TxnID][]string)}
	for _, t := range keep {
		if p, ok := n.paths[t]; ok {
			out.paths[t] = p
		}
	}
	return out
}
