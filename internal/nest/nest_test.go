package nest

import (
	"testing"
	"testing/quick"

	"mla/internal/model"
)

// bankingNest builds the 4-nest from the paper's Section 4.2 banking
// example: customers (by family), creditors, and bank audits.
func bankingNest() *Nest {
	n := New(4)
	n.Add("t1", "cust", "famA")
	n.Add("t2", "cust", "famA")
	n.Add("t3", "cust", "famB")
	n.Add("c1", "cust", "cred1")
	n.Add("a1", "audit1", "audit1")
	return n
}

func TestLevelBankingExample(t *testing.T) {
	n := bankingNest()
	cases := []struct {
		a, b model.TxnID
		want int
	}{
		{"t1", "t1", 4}, // self: level k
		{"t1", "t2", 3}, // same family
		{"t1", "t3", 2}, // both customers, different family
		{"t1", "c1", 2}, // customer vs creditor
		{"t1", "a1", 1}, // anything vs bank audit
		{"a1", "c1", 1},
	}
	for _, c := range cases {
		if got := n.Level(c.a, c.b); got != c.want {
			t.Errorf("Level(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := n.Level(c.b, c.a); got != c.want {
			t.Errorf("Level(%s,%s) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestSameClass(t *testing.T) {
	n := bankingNest()
	if !n.SameClass("t1", "t3", 2) {
		t.Error("t1,t3 should share the level-2 class")
	}
	if n.SameClass("t1", "t3", 3) {
		t.Error("t1,t3 must not share a level-3 class")
	}
	if !n.SameClass("t1", "a1", 1) {
		t.Error("everything shares the level-1 class")
	}
}

func TestClassesStructure(t *testing.T) {
	n := bankingNest()
	if got := len(n.Classes(1)); got != 1 {
		t.Errorf("π(1) has %d classes, want 1", got)
	}
	if got := len(n.Classes(4)); got != 5 {
		t.Errorf("π(4) has %d classes, want 5 singletons", got)
	}
	// π(2): {t1,t2,t3,c1}, {a1}.
	c2 := n.Classes(2)
	if len(c2) != 2 {
		t.Fatalf("π(2) has %d classes, want 2: %v", len(c2), c2)
	}
	sizes := map[int]bool{len(c2[0]): true, len(c2[1]): true}
	if !sizes[1] || !sizes[4] {
		t.Errorf("π(2) class sizes wrong: %v", c2)
	}
	// π(3): {t1,t2}, {t3}, {c1}, {a1}.
	if got := len(n.Classes(3)); got != 4 {
		t.Errorf("π(3) has %d classes, want 4", got)
	}
}

// Property: the class chain is a genuine nest — π(i) refines π(i-1) — and
// level is consistent with class membership.
func TestQuickNestAxioms(t *testing.T) {
	n := bankingNest()
	txns := n.Txns()
	f := func(ai, bi uint8, lvl uint8) bool {
		a := txns[int(ai)%len(txns)]
		b := txns[int(bi)%len(txns)]
		l := n.Level(a, b)
		if l < 1 || l > n.K() {
			return false
		}
		// Level(a,b) >= i ⇔ same π(i) class, and refinement: same at i ⇒
		// same at every j < i.
		for i := 1; i <= n.K(); i++ {
			if n.SameClass(a, b, i) != (l >= i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestK2NestIsSerializabilityShape(t *testing.T) {
	n := New(2)
	n.Add("a")
	n.Add("b")
	if n.Level("a", "b") != 1 {
		t.Error("distinct transactions in a 2-nest relate only at level 1")
	}
	if n.Level("a", "a") != 2 {
		t.Error("self level must be k")
	}
}

func TestValidate(t *testing.T) {
	n := New(3)
	if err := n.Validate(); err == nil {
		t.Error("empty nest should not validate")
	}
	n.Add("a", "g1")
	if err := n.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRestrict(t *testing.T) {
	n := bankingNest()
	r := n.Restrict([]model.TxnID{"t1", "a1", "zz"})
	if len(r.Txns()) != 2 {
		t.Fatalf("Restrict kept %v", r.Txns())
	}
	if r.Level("t1", "a1") != 1 {
		t.Error("Restrict must preserve levels")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("k<2", func() { New(1) })
	mustPanic("wrong label count", func() { New(4).Add("t", "only-one") })
	mustPanic("duplicate add", func() {
		n := New(2)
		n.Add("t")
		n.Add("t")
	})
	mustPanic("unknown txn", func() {
		n := New(2)
		n.Add("t")
		n.Level("t", "ghost")
	})
	mustPanic("bad level", func() {
		n := New(2)
		n.Add("t")
		n.Add("u")
		n.SameClass("t", "u", 9)
	})
}

func TestSameLabelUnderDifferentParents(t *testing.T) {
	// "team1" under two different specialties must not merge classes.
	n := New(4)
	n.Add("a", "spec1", "team1")
	n.Add("b", "spec2", "team1")
	if n.Level("a", "b") != 1 {
		t.Errorf("Level = %d, want 1: shared leaf label must not merge", n.Level("a", "b"))
	}
}
