package coherent

import (
	"math/rand"
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

func TestSCCTopoChain(t *testing.T) {
	// 0 -> 1 -> 2: three singleton components in order.
	adj := []bitset{newBitset(3), newBitset(3), newBitset(3)}
	adj[0].set(1)
	adj[1].set(2)
	comp, order := sccTopo(adj)
	if len(order) != 3 {
		t.Fatalf("components = %d", len(order))
	}
	if order[0][0] != 0 || order[1][0] != 1 || order[2][0] != 2 {
		t.Errorf("order = %v", order)
	}
	if comp[0] == comp[1] || comp[1] == comp[2] {
		t.Error("chain nodes must be in distinct components")
	}
}

func TestSCCTopoCycle(t *testing.T) {
	// 0 <-> 1, then -> 2.
	adj := []bitset{newBitset(3), newBitset(3), newBitset(3)}
	adj[0].set(1)
	adj[1].set(0)
	adj[1].set(2)
	comp, order := sccTopo(adj)
	if comp[0] != comp[1] {
		t.Error("0 and 1 form one component")
	}
	if comp[2] == comp[0] {
		t.Error("2 is separate")
	}
	if len(order) != 2 {
		t.Fatalf("components = %d", len(order))
	}
	// The cycle component must precede 2's.
	if len(order[0]) != 2 || len(order[1]) != 1 || order[1][0] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestSCCTopoDisconnected(t *testing.T) {
	adj := []bitset{newBitset(2), newBitset(2)}
	_, order := sccTopo(adj)
	if len(order) != 2 {
		t.Fatalf("components = %d", len(order))
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if b.count() != 3 {
		t.Errorf("count = %d", b.count())
	}
	if !b.has(64) || b.has(63) {
		t.Error("has broken")
	}
	var got []int
	b.forEach(func(i int) { got = append(got, i) })
	if len(got) != 3 || got[2] != 129 {
		t.Errorf("forEach = %v", got)
	}
	o := newBitset(130)
	o.set(0)
	diff := b.andNot(o)
	if diff.has(0) || !diff.has(64) {
		t.Error("andNot broken")
	}
	c := b.clone()
	c.set(1)
	if b.has(1) {
		t.Error("clone shares storage")
	}
	if !b.orWith(o) && b.count() != 3 {
		t.Error("orWith of subset should not change")
	}
	o2 := newBitset(130)
	o2.set(99)
	if !b.orWith(o2) || !b.has(99) {
		t.Error("orWith missed new element")
	}
}

// TestExtendTotalIdempotentRelation: the closure of an already-coherent
// total order is that order; extending returns it unchanged.
func TestExtendTotalOfTotalOrder(t *testing.T) {
	n := nest.New(2)
	n.Add("a")
	n.Add("b")
	e := model.Execution{
		{Txn: "a", Seq: 1, Entity: "x"},
		{Txn: "a", Seq: 2, Entity: "y"},
		{Txn: "b", Seq: 1, Entity: "x"},
		{Txn: "b", Seq: 2, Entity: "y"},
	}
	res, err := CheckExecution(e, n, breakpoint.Uniform{Levels: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Atomic {
		t.Fatal("serial execution must be atomic")
	}
	w, ok := res.Witness()
	if !ok {
		t.Fatal("witness failed")
	}
	for i := range e {
		if w[i] != e[i] {
			// Any coherent total order containing ≤e is acceptable, but for
			// a serial execution with full conflicts the order is forced.
			t.Fatalf("witness differs at %d: %v vs %v", i, w[i], e[i])
		}
	}
}

// TestQuickClosureIdempotent: feeding a closure's pairs back as extra edges
// changes nothing (the closure is a fixpoint).
func TestQuickClosureIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		inst := paperInstance(t)
		var extra [][2]int
		for i := 0; i < 3; i++ {
			a, b := rng.Intn(inst.N()), rng.Intn(inst.N())
			if a != b {
				extra = append(extra, [2]int{a, b})
			}
		}
		rel := inst.Closure(extra)
		if !rel.Acyclic() {
			continue
		}
		var pairs [][2]int
		for a := 0; a < inst.N(); a++ {
			for b := 0; b < inst.N(); b++ {
				if rel.Has(a, b) {
					pairs = append(pairs, [2]int{a, b})
				}
			}
		}
		rel2 := inst.Closure(pairs)
		if rel2.Pairs() != rel.Pairs() {
			t.Fatalf("trial %d: closure not idempotent: %d vs %d pairs", trial, rel2.Pairs(), rel.Pairs())
		}
	}
}

// TestWitnessContainsClosure: the witness order contains every closure
// pair, not just ≤e.
func TestWitnessContainsClosure(t *testing.T) {
	inst := paperInstance(t)
	rel := inst.Closure(r1Edges(t, inst))
	perm, err := rel.ExtendTotal()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, inst.N())
	for i, g := range perm {
		pos[g] = i
	}
	for a := 0; a < inst.N(); a++ {
		for b := 0; b < inst.N(); b++ {
			if rel.Has(a, b) && pos[a] > pos[b] {
				t.Fatalf("extension violates closure pair (%v,%v)", inst.ID(a), inst.ID(b))
			}
		}
	}
}
