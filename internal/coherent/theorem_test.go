package coherent

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/serial"
)

// bankFixture builds the Section 5.2 banking system: three transfers with
// two withdrawals and two deposits each (entity assignments from the
// paper's table) plus one bank audit reading A, B, C. The 4-nest puts each
// transfer in its own family; the level-2 breakpoint of a transfer sits
// between its withdrawal and deposit phases.
type bankFixture struct {
	n     *nest.Nest
	spec  breakpoint.Spec
	progs []model.Program
	init  map[model.EntityID]model.Value
}

func newBankFixture() *bankFixture {
	mk := func(id model.TxnID, w1, w2, d1, d2 model.EntityID) *model.Scripted {
		return &model.Scripted{Txn: id, Ops: []model.Op{
			model.Add(w1, -10), model.Add(w2, -10),
			model.Add(d1, 10), model.Add(d2, 10),
		}}
	}
	t1 := mk("t1", "A", "B", "C", "D")
	t2 := mk("t2", "A", "C", "E", "G")
	t3 := mk("t3", "B", "D", "F", "H")
	audit := &model.Scripted{Txn: "a", Ops: []model.Op{
		model.Read("A"), model.Read("B"), model.Read("C"),
	}}

	n := nest.New(4)
	n.Add("t1", "cust", "f1")
	n.Add("t2", "cust", "f2")
	n.Add("t3", "cust", "f3")
	n.Add("a", "audit", "audit")

	spec := breakpoint.Func{Levels: 4, Fn: func(t model.TxnID, prefix []model.Step) int {
		if t == "a" {
			return 4 // audits have no interior breakpoints
		}
		if len(prefix) == 2 { // withdrawal phase (two withdrawals) complete
			return 2
		}
		return 3
	}}

	init := map[model.EntityID]model.Value{}
	for _, x := range []model.EntityID{"A", "B", "C", "D", "E", "F", "G", "H"} {
		init[x] = 100
	}
	return &bankFixture{n: n, spec: spec, progs: []model.Program{t1, t2, t3, audit}, init: init}
}

func (f *bankFixture) run(t *testing.T, order []int) model.Execution {
	t.Helper()
	vals := map[model.EntityID]model.Value{}
	for k, v := range f.init {
		vals[k] = v
	}
	e, err := model.Interleave(f.progs, vals, order, false)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAtomicButNotSerializable: transfers t1 and t2 interleaved at their
// phase boundaries form a multilevel atomic execution whose serialization
// graph is cyclic — the paper's central point that MLA admits more than
// serializability.
func TestAtomicButNotSerializable(t *testing.T) {
	f := newBankFixture()
	// t1 withdrawals, t2 withdrawals, t1 deposits, t2 deposits, t3, audit.
	order := []int{0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 2, 2, 3, 3, 3}
	e := f.run(t, order)
	res, err := CheckExecution(e, f.n, f.spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Atomic {
		t.Error("phase-interleaved transfers must be multilevel atomic")
	}
	if !res.Correctable {
		t.Error("atomic implies correctable")
	}
	if serial.Serializable(e) {
		t.Error("the same execution must NOT be conflict serializable (t1↔t2 cycle on A and C)")
	}
}

// TestCorrectableNotAtomic: t3's steps interrupt the audit in the recorded
// order (illegal — they share only level 1) but the dependency relation
// only orders t3 before the audit, so the execution is correctable; the
// witness must be multilevel atomic and equivalent.
func TestCorrectableNotAtomic(t *testing.T) {
	f := newBankFixture()
	// a reads A; t3 performs w(B), w(D); a reads B, C; t3 deposits F, H;
	// then t1, t2 run serially.
	order := []int{3, 2, 2, 3, 3, 2, 2, 0, 0, 0, 0, 1, 1, 1, 1}
	e := f.run(t, order)
	res, err := CheckExecution(e, f.n, f.spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Atomic {
		t.Error("t3 interrupting the audit is not atomic as recorded")
	}
	if !res.Correctable {
		t.Fatal("execution should be correctable (t3 wholly precedes the audit in ≤e)")
	}
	w, ok := res.Witness()
	if !ok {
		t.Fatal("correctable execution must produce a witness")
	}
	if err := VerifyWitness(e, w, f.n, f.spec); err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
	if err := w.Validate(f.init); err != nil {
		t.Fatalf("witness value chain broken: %v", err)
	}
}

// TestNonCorrectable: the audit reads A before t1 touches it but reads B
// after t1 wrote it — the coherent closure cycles (the audit would have to
// be both before and after t1), so no equivalent multilevel atomic
// execution exists.
func TestNonCorrectable(t *testing.T) {
	f := newBankFixture()
	// a reads A; t1 w(A), w(B); a reads B, C; rest serial.
	order := []int{3, 0, 0, 3, 3, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	e := f.run(t, order)
	res, err := CheckExecution(e, f.n, f.spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Atomic {
		t.Error("must not be atomic")
	}
	if res.Correctable {
		t.Fatal("audit split across t1's writes must not be correctable")
	}
	if _, ok := res.Witness(); ok {
		t.Error("non-correctable execution must not produce a witness")
	}
}

// TestAuditBetweenTransfersIsCorrectable: the audit running at a point
// where no transfer is mid-flight is fine even though transfers interleave
// around it.
func TestAuditSerialPointCorrectable(t *testing.T) {
	f := newBankFixture()
	order := []int{3, 3, 3, 0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 2, 2}
	e := f.run(t, order)
	res, err := CheckExecution(e, f.n, f.spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correctable {
		t.Error("audit-first execution must be correctable")
	}
}

// TestK2MatchesSerializability: with the unique 2-level specification,
// Theorem 2's correctability coincides with conflict serializability on
// random interleavings (Section 4.3: "the multilevel atomic executions are
// just the serial executions").
func TestK2MatchesSerializability(t *testing.T) {
	f := newBankFixture()
	n2 := nest.New(2)
	for _, p := range f.progs {
		n2.Add(p.ID())
	}
	spec2 := breakpoint.Uniform{Levels: 2, C: 2}
	rng := rand.New(rand.NewSource(7))
	agree, disagree := 0, 0
	for trial := 0; trial < 200; trial++ {
		order := randomOrder(rng, []int{4, 4, 4, 3})
		e := f.run(t, order)
		ok, err := Correctable(e, n2, spec2)
		if err != nil {
			t.Fatal(err)
		}
		if ok == serial.Serializable(e) {
			agree++
		} else {
			disagree++
			t.Errorf("trial %d: k=2 correctable=%v, serializable=%v", trial, ok, serial.Serializable(e))
		}
	}
	if disagree > 0 {
		t.Fatalf("k=2 and serializability disagree on %d/%d executions", disagree, agree+disagree)
	}
}

// TestMLAAdmitsMoreThanSerializability: over many random interleavings the
// set of 4-level-correctable executions strictly contains the serializable
// ones.
func TestMLAAdmitsMoreThanSerializability(t *testing.T) {
	f := newBankFixture()
	rng := rand.New(rand.NewSource(11))
	mlaOnly, bothCount, serOnly := 0, 0, 0
	for trial := 0; trial < 300; trial++ {
		order := randomOrder(rng, []int{4, 4, 4, 3})
		e := f.run(t, order)
		mla, err := Correctable(e, f.n, f.spec)
		if err != nil {
			t.Fatal(err)
		}
		ser := serial.Serializable(e)
		switch {
		case mla && !ser:
			mlaOnly++
		case mla && ser:
			bothCount++
		case !mla && ser:
			serOnly++
		}
	}
	if serOnly > 0 {
		t.Errorf("%d executions serializable but not MLA-correctable — impossible, serial executions are multilevel atomic", serOnly)
	}
	if mlaOnly == 0 {
		t.Error("expected some executions correctable under MLA but not serializable")
	}
}

// TestQuickWitnessRoundTrip: for random interleavings, whenever Theorem 2
// says correctable, the Lemma 1 witness is multilevel atomic, equivalent,
// and value-consistent.
func TestQuickWitnessRoundTrip(t *testing.T) {
	f := newBankFixture()
	rng := rand.New(rand.NewSource(23))
	checked := 0
	prop := func(seed int64) bool {
		order := randomOrder(rng, []int{4, 4, 4, 3})
		e := f.run(t, order)
		res, err := CheckExecution(e, f.n, f.spec)
		if err != nil {
			return false
		}
		if res.Atomic && !res.Correctable {
			return false // atomic must imply correctable
		}
		if !res.Correctable {
			_, ok := res.Witness()
			return !ok
		}
		w, ok := res.Witness()
		if !ok {
			return false
		}
		checked++
		return VerifyWitness(e, w, f.n, f.spec) == nil && w.Validate(f.init) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Error("no correctable executions exercised")
	}
}

// randomOrder produces a uniformly random merge of transactions with the
// given step counts.
func randomOrder(rng *rand.Rand, counts []int) []int {
	remaining := append([]int(nil), counts...)
	total := 0
	for _, c := range counts {
		total += c
	}
	var order []int
	for len(order) < total {
		i := rng.Intn(len(counts))
		if remaining[i] == 0 {
			continue
		}
		remaining[i]--
		order = append(order, i)
	}
	return order
}

func TestCheckExecutionErrors(t *testing.T) {
	f := newBankFixture()
	// Out-of-sequence step.
	bad := model.Execution{{Txn: "t1", Seq: 2, Entity: "A"}}
	if _, err := CheckExecution(bad, f.n, f.spec); err == nil {
		t.Error("out-of-sequence execution must error")
	}
	// Nest/spec k mismatch.
	n2 := nest.New(2)
	n2.Add("t1")
	if _, _, err := FromExecution(model.Execution{{Txn: "t1", Seq: 1, Entity: "A"}}, n2, f.spec); err == nil {
		t.Error("k mismatch must error")
	}
	// Transaction not in nest.
	ghost := model.Execution{{Txn: "ghost", Seq: 1, Entity: "A"}}
	if _, err := CheckExecution(ghost, f.n, f.spec); err == nil {
		t.Error("unknown transaction must error")
	}
}

func TestSerialExecutionAlwaysAtomic(t *testing.T) {
	f := newBankFixture()
	vals := map[model.EntityID]model.Value{}
	for k, v := range f.init {
		vals[k] = v
	}
	e, err := model.RunSerial(f.progs, vals)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := MultilevelAtomic(e, f.n, f.spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("serial executions are multilevel atomic for every specification")
	}
}
