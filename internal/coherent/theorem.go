package coherent

import (
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Result bundles everything Theorem 2 derives from an execution: the
// interleaving specification Σ(B,e), the coherent closure of the dependency
// relation ≤e, whether the execution is itself multilevel atomic, and
// whether it is correctable (equivalent to a multilevel atomic execution).
type Result struct {
	Inst        *Instance
	Rel         *Relation // coherent closure of ≤e
	Atomic      bool      // e itself is multilevel atomic for (π, B)
	Correctable bool      // closure is a partial order (Theorem 2)

	exec  model.Execution
	order []int // position in e -> global index
}

// CheckExecution applies the machinery of Sections 4–5 to an execution:
// it derives Σ(B,e), computes the coherent closure of ≤e, and evaluates both
// multilevel atomicity (the total order of e is coherent) and correctability
// (Theorem 2: the closure is a partial order).
func CheckExecution(e model.Execution, n *nest.Nest, spec breakpoint.Spec) (*Result, error) {
	inst, order, err := FromExecution(e, n, spec)
	if err != nil {
		return nil, err
	}
	edges := make([][2]int, 0, 2*len(e))
	for _, pe := range e.DependencyEdges() {
		edges = append(edges, [2]int{order[pe[0]], order[pe[1]]})
	}
	rel := inst.Closure(edges)
	return &Result{
		Inst:        inst,
		Rel:         rel,
		Atomic:      inst.IsCoherentTotalOrder(order),
		Correctable: rel.Acyclic(),
		exec:        e,
		order:       order,
	}, nil
}

// Witness returns an equivalent multilevel atomic execution when the
// execution is correctable (the constructive half of Theorem 2, via
// Lemma 1), and ok=false otherwise. The witness contains exactly the steps
// of the original execution, reordered by a coherent total order extending
// the coherent closure of ≤e; per-transaction and per-entity orders are
// contained in ≤e, so the recorded Before/After values remain valid.
func (res *Result) Witness() (model.Execution, bool) {
	if !res.Correctable {
		return nil, false
	}
	perm, err := res.Rel.ExtendTotal()
	if err != nil {
		return nil, false
	}
	byID := make(map[model.StepID]model.Step, len(res.exec))
	for _, s := range res.exec {
		byID[s.ID()] = s
	}
	out := make(model.Execution, 0, len(perm))
	for _, g := range perm {
		s, ok := byID[res.Inst.ID(g)]
		if !ok {
			return nil, false
		}
		out = append(out, s)
	}
	return out, true
}

// Correctable is a convenience wrapper: Theorem 2's yes/no answer.
func Correctable(e model.Execution, n *nest.Nest, spec breakpoint.Spec) (bool, error) {
	res, err := CheckExecution(e, n, spec)
	if err != nil {
		return false, err
	}
	return res.Correctable, nil
}

// MultilevelAtomic reports whether e ∈ C(π,B): the total order of e is
// itself coherent for the nest and the derived interleaving specification.
func MultilevelAtomic(e model.Execution, n *nest.Nest, spec breakpoint.Spec) (bool, error) {
	inst, order, err := FromExecution(e, n, spec)
	if err != nil {
		return false, err
	}
	return inst.IsCoherentTotalOrder(order), nil
}

// VerifyWitness checks that w is a valid witness for e: same steps,
// equivalent dependency relation, and multilevel atomic. Used by tests and
// by cmd/mlacheck's -verify mode.
func VerifyWitness(e, w model.Execution, n *nest.Nest, spec breakpoint.Spec) error {
	if !e.SameSteps(w) {
		return fmt.Errorf("witness has different steps")
	}
	if !e.Equivalent(w) {
		return fmt.Errorf("witness is not dependency-equivalent")
	}
	ok, err := MultilevelAtomic(w, n, spec)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("witness is not multilevel atomic")
	}
	return nil
}
