package coherent

import (
	"errors"
	"fmt"
)

// ErrCyclic is returned when an extension is requested for a relation that
// is not a partial order.
var ErrCyclic = errors.New("coherent: relation is cyclic")

// ExtendTotal extends a coherent partial order to a coherent total order
// containing it, returning the steps (global indices) in the resulting
// order. It implements the stage-wise construction in the paper's Appendix
// (proof of Lemma 1):
//
// For each stage i = 2..k, partition the steps into the segments of the
// B(i-1) descriptions, form the directed graph over segments induced by the
// current relation, totally order its strongly connected components
// consistently with the edges, and add every cross-component step pair. The
// Appendix lemmas show each stage preserves coherence and acyclicity and
// that after stage i all steps of transactions with level(t,t′) < i are
// comparable; after stage k the relation is total.
//
// The receiver is not modified.
func (r *Relation) ExtendTotal() ([]int, error) {
	if r.cyclic {
		return nil, ErrCyclic
	}
	inst := r.inst
	n := inst.N()
	if n == 0 {
		return nil, nil
	}
	rel := r.Clone()

	for i := 2; i <= inst.K(); i++ {
		// Partition into segments of B(i-1).
		segOf := make([]int, n)
		var segSteps [][]int
		for ti, idxs := range inst.stepsOf {
			if len(idxs) == 0 {
				continue
			}
			for _, cls := range inst.desc[ti].Classes(i - 1) {
				sid := len(segSteps)
				var members []int
				for s := cls[0]; s <= cls[1]; s++ {
					g := idxs[s-1]
					segOf[g] = sid
					members = append(members, g)
				}
				segSteps = append(segSteps, members)
			}
		}
		ns := len(segSteps)

		// Segment graph induced by the current relation.
		adj := make([]bitset, ns)
		for s := range adj {
			adj[s] = newBitset(ns)
		}
		for a := 0; a < n; a++ {
			sa := segOf[a]
			rel.reach[a].forEach(func(b int) {
				if sb := segOf[b]; sb != sa {
					adj[sa].set(sb)
				}
			})
		}

		comps, order := sccTopo(adj)

		// Add all step pairs across components, following the topological
		// order of the condensation. Pairs within a component are left for
		// finer stages.
		mask := make([]bitset, len(order))
		for ci, comp := range order {
			m := newBitset(n)
			for _, s := range comp {
				for _, g := range segSteps[s] {
					m.set(g)
				}
			}
			mask[ci] = m
		}
		// Successors: sweep from the back accumulating "everything later".
		after := newBitset(n)
		for ci := len(order) - 1; ci >= 0; ci-- {
			mask[ci].forEach(func(a int) {
				rel.reach[a].orWith(after)
			})
			after.orWith(mask[ci])
		}
		// Predecessors: sweep forward accumulating "everything earlier".
		before := newBitset(n)
		for ci := 0; ci < len(order); ci++ {
			mask[ci].forEach(func(b int) {
				rel.pred[b].orWith(before)
			})
			before.orWith(mask[ci])
		}
		_ = comps
	}

	perm, ok := rel.Order()
	if !ok {
		return nil, fmt.Errorf("coherent: stage construction did not yield a total order (relation not coherent?)")
	}
	return perm, nil
}

// sccTopo computes the strongly connected components of the graph given by
// adjacency bitsets and returns (component index per node, components in
// topological order of the condensation). It is an iterative Tarjan; Tarjan
// emits components in reverse topological order, so the output list is the
// reversal of the emission order. Deterministic for a given adjacency.
func sccTopo(adj []bitset) ([]int, [][]int) {
	n := len(adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	var comps [][]int
	counter := 0

	type frame struct {
		v     int
		succs []int
		next  int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		var frames []frame
		push := func(v int) {
			index[v] = counter
			low[v] = counter
			counter++
			stack = append(stack, v)
			onStack[v] = true
			var succs []int
			adj[v].forEach(func(w int) { succs = append(succs, w) })
			frames = append(frames, frame{v: v, succs: succs})
		}
		push(start)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.succs) {
				w := f.succs[f.next]
				f.next++
				if index[w] == unvisited {
					push(w)
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// All successors done: maybe emit a component, then pop.
			if low[f.v] == index[f.v] {
				var c []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(comps)
					c = append(c, w)
					if w == f.v {
						break
					}
				}
				comps = append(comps, c)
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
		}
	}

	// Tarjan emitted sinks first: reverse for topological order.
	order := make([][]int, len(comps))
	for i, c := range comps {
		order[len(comps)-1-i] = c
	}
	return comp, order
}
