package coherent

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mla/internal/model"
	"mla/internal/nest"
)

// dump renders every observable fact of the closure in an index-free form:
// live edges named by (txn, seq), per-transaction extents, segment-closure
// answers, and the hypothetical predecessor sets for every (txn, entity)
// pair. Incremental retraction tombstones step slots while replay compacts
// them, so raw indices can never be compared — this semantic dump is the
// equality the equivalence test checks.
func dump(oc *Online, txns []model.TxnID, ents []model.EntityID) string {
	var lines []string
	name := func(g int) string {
		return fmt.Sprintf("%s#%d", oc.txns[oc.stepTxn[g]], oc.stepSeq[g])
	}
	for g := range oc.stepTxn {
		if oc.dead.has(g) {
			continue
		}
		oc.reach[g].forEach(func(h int) {
			if !oc.dead.has(h) {
				lines = append(lines, fmt.Sprintf("edge %s -> %s", name(g), name(h)))
			}
		})
	}
	lines = append(lines, fmt.Sprintf("steps %d", oc.Steps()))
	for _, t := range txns {
		ext := oc.Extent(t)
		lines = append(lines, fmt.Sprintf("extent %s %d", t, ext))
		for seq := 1; seq <= ext+1; seq++ {
			for lv := 1; lv <= oc.k; lv++ {
				lines = append(lines, fmt.Sprintf("closed %s %d %d %v", t, seq, lv, oc.SegmentClosedAfter(t, seq, lv)))
			}
		}
		for _, x := range ents {
			pred := oc.PredForNewStep(t, x)
			var ks []string
			for u, s := range pred {
				ks = append(ks, fmt.Sprintf("%s=%d", u, s))
			}
			sort.Strings(ks)
			lines = append(lines, fmt.Sprintf("pred %s %s {%s}", t, x, strings.Join(ks, ",")))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestRetractEquivalence drives two Onlines through identical randomized
// histories of steps, cuts, cycle rejections, and rollbacks. One is normal
// (incremental retraction whenever the fast-path conditions hold), the
// other has forceReplay set, so every rollback filters and replays. After
// every operation the two must agree on every observable: accept/reject
// verdicts, the live edge set, extents, segment closure, and hypothetical
// predecessor sets. The test also demands that the incremental path
// actually fired, so the equivalence is not vacuous.
func TestRetractEquivalence(t *testing.T) {
	txns := []model.TxnID{"t0", "t1", "t2", "t3", "t4"}
	ents := []model.EntityID{"x", "y", "z", "w"}
	fastPaths := 0
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		n := nest.New(k)
		for i, id := range txns {
			mid := make([]string, k-2)
			for l := range mid {
				mid[l] = fmt.Sprintf("c%d", i%(2+l))
			}
			n.Add(id, mid...)
		}
		inc := NewOnline(k, n.Level)
		rep := NewOnline(k, n.Level)
		rep.forceReplay = true

		for op := 0; op < 200; op++ {
			id := txns[rng.Intn(len(txns))]
			switch r := rng.Intn(10); {
			case r <= 5: // step
				x := ents[rng.Intn(len(ents))]
				okI := inc.AddStep(id, x)
				okR := rep.AddStep(id, x)
				if okI != okR {
					t.Fatalf("seed=%d op=%d: AddStep(%s,%s) incremental=%v replay=%v", seed, op, id, x, okI, okR)
				}
				if !okI {
					// Both reject: pop and drop the stepping transaction —
					// a deterministic victim, since the reported cycle pair
					// may legitimately differ between the twins.
					inc.PopStep()
					rep.PopStep()
					inc.Rebuild(map[model.TxnID]bool{id: true})
					rep.Rebuild(map[model.TxnID]bool{id: true})
				}
			case r <= 7: // cut
				c := 2 + rng.Intn(k)
				inc.AddCut(id, c)
				rep.AddCut(id, c)
			case r == 8: // full drop (retraction candidate)
				before := inc.Retractions()
				inc.Rebuild(map[model.TxnID]bool{id: true})
				rep.Rebuild(map[model.TxnID]bool{id: true})
				if inc.Retractions() > before {
					fastPaths++
				}
			default: // partial keep (always a replay, on both)
				keep := 0
				if ext := inc.Extent(id); ext > 0 {
					keep = rng.Intn(ext)
				}
				inc.RebuildPartial(map[model.TxnID]int{id: keep})
				rep.RebuildPartial(map[model.TxnID]int{id: keep})
			}
			if got, want := dump(inc, txns, ents), dump(rep, txns, ents); got != want {
				t.Fatalf("seed=%d op=%d: closures diverged\nincremental:\n%s\n\nreplay:\n%s", seed, op, got, want)
			}
		}
	}
	if fastPaths == 0 {
		t.Fatal("incremental retraction never fired: the equivalence test is vacuous")
	}
	t.Logf("incremental fast paths taken: %d", fastPaths)
}

// TestRetractFallsBackOnLiveSuccessor builds a history where the victim's
// step has a live closure-successor (a later accessor of the same entity),
// so retraction would be inexact; RebuildPartial must take the replay path
// and still produce the right closure.
func TestRetractFallsBackOnLiveSuccessor(t *testing.T) {
	n := nest.New(2)
	for _, id := range []model.TxnID{"a", "b", "c"} {
		n.Add(id)
	}
	oc := NewOnline(2, n.Level)
	oc.AddStep("a", "x") // a#1
	oc.AddStep("b", "x") // b#1: a#1 -> b#1
	oc.AddStep("c", "x") // c#1: b#1 -> c#1
	before := oc.Retractions()
	// b's step reaches live c#1 — the sink condition fails.
	oc.Rebuild(map[model.TxnID]bool{"b": true})
	if oc.Retractions() != before {
		t.Fatal("retraction fired despite a live closure-successor")
	}
	if oc.Steps() != 2 {
		t.Fatalf("steps = %d, want 2", oc.Steps())
	}
	// After the replay, a#1 -> c#1 is the surviving entity edge.
	pred := oc.PredForNewStep("b", "x")
	if pred["a"] != 1 || pred["c"] != 1 {
		t.Fatalf("pred after fallback = %v", pred)
	}
}

// TestRetractSinkVictim drops the newest transaction (a closure-sink by
// construction) and checks the fast path fires and leaves the exact state
// a replay would: the entity's last accessor reverts, and the victim can
// restart cleanly.
func TestRetractSinkVictim(t *testing.T) {
	n := nest.New(2)
	for _, id := range []model.TxnID{"a", "b"} {
		n.Add(id)
	}
	oc := NewOnline(2, n.Level)
	oc.AddStep("a", "x")
	oc.AddStep("b", "x") // b is the newest accessor: a sink
	oc.AddStep("b", "y")
	before := oc.Retractions()
	oc.Rebuild(map[model.TxnID]bool{"b": true})
	if oc.Retractions() != before+1 {
		t.Fatal("sink drop did not take the incremental path")
	}
	if oc.Steps() != 1 || oc.Extent("b") != 0 {
		t.Fatalf("steps=%d extent(b)=%d after retraction", oc.Steps(), oc.Extent("b"))
	}
	if !oc.SegmentClosedAfter("b", 1, 2) {
		t.Fatal("retracted transaction still reported as open")
	}
	// x's last accessor is a#1 again; a new b step depends on it.
	if pred := oc.PredForNewStep("b", "x"); pred["a"] != 1 {
		t.Fatalf("pred after retraction = %v", pred)
	}
	// The victim restarts: same txn, fresh seq numbering.
	if !oc.AddStep("b", "x") {
		t.Fatal("restart step rejected")
	}
	if oc.Extent("b") != 1 {
		t.Fatalf("restarted extent = %d", oc.Extent("b"))
	}
}
