package coherent

import (
	"fmt"
	"math/rand"
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// TestBruteForceCrossValidation is the strongest correctness evidence for
// the Theorem 2 implementation: on hundreds of small random instances, the
// closure-based verdict must agree with an exhaustive search for a coherent
// total order containing ≤e. The two algorithms share no logic beyond
// IsCoherentTotalOrder (which the abstract paper-example tests pin down
// independently).
func TestBruteForceCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	agree, correctableSeen, rejectedSeen := 0, 0, 0
	for trial := 0; trial < 400; trial++ {
		k := 2 + rng.Intn(3)
		nTxn := 2 + rng.Intn(2) // 2..3 transactions
		stepsPer := 2 + rng.Intn(3)
		nEnt := 1 + rng.Intn(3)

		n := nest.New(k)
		progs := make([]model.Program, nTxn)
		for i := 0; i < nTxn; i++ {
			id := model.TxnID(fmt.Sprintf("t%d", i))
			ops := make([]model.Op, stepsPer)
			for j := range ops {
				ops[j] = model.Add(model.EntityID(fmt.Sprintf("x%d", rng.Intn(nEnt))), 1)
			}
			progs[i] = &model.Scripted{Txn: id, Ops: ops}
			mid := make([]string, k-2)
			for l := range mid {
				mid[l] = fmt.Sprintf("c%d", rng.Intn(2))
			}
			n.Add(id, mid...)
		}
		cutSeed := rng.Int63()
		spec := breakpoint.Func{Levels: k, Fn: func(tx model.TxnID, prefix []model.Step) int {
			h := cutSeed
			for _, c := range tx {
				h = h*31 + int64(c)
			}
			h = h*31 + int64(len(prefix))
			if h < 0 {
				h = -h
			}
			return 2 + int(h)%(k-1)
		}}

		e, err := model.RandomInterleave(progs, map[model.EntityID]model.Value{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		inst, order, err := FromExecution(e, n, spec)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Correctable(e, n, spec)
		if err != nil {
			t.Fatal(err)
		}
		slow, valid := BruteCorrectable(e, inst, order)
		if !valid {
			continue
		}
		if fast != slow {
			t.Fatalf("trial %d: closure says %v, brute force says %v\nexecution: %v",
				trial, fast, slow, e)
		}
		agree++
		if fast {
			correctableSeen++
		} else {
			rejectedSeen++
		}
	}
	if correctableSeen == 0 || rejectedSeen == 0 {
		t.Fatalf("unbalanced sample: %d correctable, %d rejected of %d", correctableSeen, rejectedSeen, agree)
	}
	t.Logf("cross-validated %d instances (%d correctable, %d rejected)", agree, correctableSeen, rejectedSeen)
}

func TestBruteGuards(t *testing.T) {
	// Too-large instances are refused rather than searched.
	n := nest.New(2)
	var e model.Execution
	for i := 0; i < 13; i++ {
		id := model.TxnID(fmt.Sprintf("t%d", i))
		n.Add(id)
		e = append(e, model.Step{Txn: id, Seq: 1, Entity: "x"})
	}
	inst, order, err := FromExecution(e, n, breakpoint.Uniform{Levels: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, valid := BruteCorrectable(e, inst, order); valid {
		t.Error("oversized instance should be refused")
	}
}
