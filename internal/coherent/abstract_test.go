package coherent

import (
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// paperInstance reconstructs the running example of Subsection 4.2:
// k = 3, T = {t1,t2,t3}, π(2) classes {t1,t2} and {t3}; each ti has steps
// a_i1..a_i4 with B(2) classes {a_i1,a_i2}, {a_i3,a_i4} (B(1) and B(3) are
// forced).
func paperInstance(t *testing.T) *Instance {
	t.Helper()
	n := nest.New(3)
	n.Add("t1", "g12")
	n.Add("t2", "g12")
	n.Add("t3", "g3")
	descs := make(map[model.TxnID]*breakpoint.Description)
	counts := make(map[model.TxnID]int)
	for _, id := range []model.TxnID{"t1", "t2", "t3"} {
		d := breakpoint.NewDescription(3, 4)
		d.SetCut(1, 3)
		d.SetCut(2, 2)
		d.SetCut(3, 3)
		descs[id] = d
		counts[id] = 4
	}
	inst, err := NewAbstract(n, counts, descs)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// idx resolves a_{ti,s} to the global index.
func idx(t *testing.T, inst *Instance, txn model.TxnID, seq int) int {
	t.Helper()
	g, ok := inst.Index(txn, seq)
	if !ok {
		t.Fatalf("no index for %s[%d]", txn, seq)
	}
	return g
}

// transitiveClosure computes a plain reachability reference over the given
// edges (no coherence rule), for comparing against the coherent closure.
func transitiveClosure(n int, edges [][2]int) [][]bool {
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	for _, e := range edges {
		reach[e[0]][e[1]] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	return reach
}

func r1Edges(t *testing.T, inst *Instance) [][2]int {
	return [][2]int{
		{idx(t, inst, "t1", 2), idx(t, inst, "t2", 2)}, // (a12,a22)
		{idx(t, inst, "t2", 2), idx(t, inst, "t1", 3)}, // (a22,a13)
		{idx(t, inst, "t1", 4), idx(t, inst, "t3", 1)}, // (a14,a31)
		{idx(t, inst, "t2", 4), idx(t, inst, "t3", 3)}, // (a24,a33)
	}
}

func r2Edges(t *testing.T, inst *Instance) [][2]int {
	return [][2]int{
		{idx(t, inst, "t1", 1), idx(t, inst, "t2", 2)}, // (a11,a22)
		{idx(t, inst, "t2", 1), idx(t, inst, "t1", 3)}, // (a21,a13)
		{idx(t, inst, "t1", 1), idx(t, inst, "t3", 1)}, // (a11,a31)
		{idx(t, inst, "t2", 1), idx(t, inst, "t3", 3)}, // (a21,a33)
	}
}

// TestPaperR1Coherent: the paper states R1 is a coherent partial order.
// Under the formal definition of rule (b) its transitive closure is in fact
// missing a handful of level-1 completions — e.g. (a22,a31) ∈ R1 via
// a22→a13→a14→a31 and level(t2,t3)=1 forces (a23,a31) and (a24,a31), which
// are not derivable by transitivity alone (an apparent oversight in the
// example; both of the paper's own total orders contain these pairs). We
// therefore check: the closure contains the transitive closure, remains a
// partial order, and every extra pair is such a level-1 whole-transaction
// completion.
func TestPaperR1Coherent(t *testing.T) {
	inst := paperInstance(t)
	edges := r1Edges(t, inst)
	rel := inst.Closure(edges)
	if !rel.Acyclic() {
		t.Fatal("R1 must be acyclic")
	}
	all := append(inst.programEdges(), edges...)
	ref := transitiveClosure(inst.N(), all)
	for a := 0; a < inst.N(); a++ {
		for b := 0; b < inst.N(); b++ {
			if ref[a][b] && !rel.Has(a, b) {
				t.Errorf("closure lost transitive pair (%v,%v)", inst.ID(a), inst.ID(b))
			}
			if rel.Has(a, b) && !ref[a][b] {
				if lv := inst.level[inst.txnOf[a]][inst.txnOf[b]]; lv != 1 {
					t.Errorf("unexpected extra pair (%v,%v) at level %d", inst.ID(a), inst.ID(b), lv)
				}
			}
		}
	}
	// Both of the paper's total orders must contain the closure.
	if !rel.Has(idx(t, inst, "t2", 3), idx(t, inst, "t3", 1)) {
		t.Error("(a23,a31) should be a level-1 completion in the closure")
	}
}

// TestPaperR2ClosureEqualsR1: R2 is not coherent, but its coherent closure
// is exactly the partial order R1 (the paper's example).
func TestPaperR2ClosureEqualsR1(t *testing.T) {
	inst := paperInstance(t)
	relR2 := inst.Closure(r2Edges(t, inst))
	if !relR2.Acyclic() {
		t.Fatal("coherent closure of R2 must be a partial order")
	}
	relR1 := inst.Closure(r1Edges(t, inst))
	for a := 0; a < inst.N(); a++ {
		for b := 0; b < inst.N(); b++ {
			if relR1.Has(a, b) != relR2.Has(a, b) {
				t.Errorf("closure(R2) and closure(R1) differ at (%v,%v): %v vs %v",
					inst.ID(a), inst.ID(b), relR2.Has(a, b), relR1.Has(a, b))
			}
		}
	}
}

// TestPaperR3ClosureCyclic: replacing (a11,a31) by (a31,a11) makes the
// coherent closure R4 cyclic (the paper traces the cycle through (a32,a11),
// (a11,a22), (a22,a33)).
func TestPaperR3ClosureCyclic(t *testing.T) {
	inst := paperInstance(t)
	edges := [][2]int{
		{idx(t, inst, "t1", 1), idx(t, inst, "t2", 2)}, // (a11,a22)
		{idx(t, inst, "t2", 1), idx(t, inst, "t1", 3)}, // (a21,a13)
		{idx(t, inst, "t3", 1), idx(t, inst, "t1", 1)}, // (a31,a11) — flipped
		{idx(t, inst, "t2", 1), idx(t, inst, "t3", 3)}, // (a21,a33)
	}
	rel := inst.Closure(edges)
	if rel.Acyclic() {
		t.Fatal("coherent closure of R3 must contain a cycle")
	}
	// The paper's intermediate facts.
	if !rel.Has(idx(t, inst, "t3", 2), idx(t, inst, "t1", 1)) {
		t.Error("(a32,a11) should be in the closure (level-1 whole-transaction rule)")
	}
	if !rel.Has(idx(t, inst, "t2", 2), idx(t, inst, "t3", 3)) {
		t.Error("(a22,a33) should be in the closure")
	}
}

// TestPaperLemma1TotalOrders: the two coherent total orders the paper lists
// as containing R1 pass IsCoherentTotalOrder, and an order that interleaves
// inside a B(2) segment fails.
func TestPaperLemma1TotalOrders(t *testing.T) {
	inst := paperInstance(t)
	seqs := func(spec [][2]any) []int {
		var out []int
		for _, s := range spec {
			out = append(out, idx(t, inst, model.TxnID(s[0].(string)), s[1].(int)))
		}
		return out
	}
	order1 := seqs([][2]any{
		{"t1", 1}, {"t1", 2}, {"t2", 1}, {"t2", 2}, {"t1", 3}, {"t1", 4},
		{"t2", 3}, {"t2", 4}, {"t3", 1}, {"t3", 2}, {"t3", 3}, {"t3", 4},
	})
	order2 := seqs([][2]any{
		{"t1", 1}, {"t1", 2}, {"t2", 1}, {"t2", 2}, {"t2", 3}, {"t2", 4},
		{"t1", 3}, {"t1", 4}, {"t3", 1}, {"t3", 2}, {"t3", 3}, {"t3", 4},
	})
	if !inst.IsCoherentTotalOrder(order1) {
		t.Error("paper total order 1 must be coherent")
	}
	if !inst.IsCoherentTotalOrder(order2) {
		t.Error("paper total order 2 must be coherent")
	}
	// t2 interrupting t1 inside {a11,a12} violates the level-2 segment.
	bad := seqs([][2]any{
		{"t1", 1}, {"t2", 1}, {"t1", 2}, {"t2", 2}, {"t1", 3}, {"t1", 4},
		{"t2", 3}, {"t2", 4}, {"t3", 1}, {"t3", 2}, {"t3", 3}, {"t3", 4},
	})
	if inst.IsCoherentTotalOrder(bad) {
		t.Error("interleaving inside a B(2) segment must be incoherent")
	}
	// t3 interleaving with t1 at all (level 1) is incoherent even at the
	// phase boundary.
	bad2 := seqs([][2]any{
		{"t1", 1}, {"t1", 2}, {"t3", 1}, {"t3", 2}, {"t3", 3}, {"t3", 4},
		{"t1", 3}, {"t1", 4}, {"t2", 1}, {"t2", 2}, {"t2", 3}, {"t2", 4},
	})
	if inst.IsCoherentTotalOrder(bad2) {
		t.Error("level-1 transactions must be serialized")
	}
}

// TestLemma1Extension: extending the closure of R1 yields a coherent total
// order containing R1 — the constructive content of Lemma 1.
func TestLemma1Extension(t *testing.T) {
	inst := paperInstance(t)
	edges := r1Edges(t, inst)
	rel := inst.Closure(edges)
	perm, err := rel.ExtendTotal()
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != inst.N() {
		t.Fatalf("permutation covers %d of %d steps", len(perm), inst.N())
	}
	if !inst.IsCoherentTotalOrder(perm) {
		t.Fatal("extension must be coherent")
	}
	pos := make([]int, inst.N())
	for i, g := range perm {
		pos[g] = i
	}
	for _, e := range edges {
		if pos[e[0]] > pos[e[1]] {
			t.Errorf("extension violates R1 edge %v -> %v", inst.ID(e[0]), inst.ID(e[1]))
		}
	}
}

func TestExtendTotalOnCyclicFails(t *testing.T) {
	inst := paperInstance(t)
	rel := inst.Closure([][2]int{
		{idx(t, inst, "t1", 1), idx(t, inst, "t2", 1)},
		{idx(t, inst, "t2", 1), idx(t, inst, "t1", 1)},
	})
	if _, err := rel.ExtendTotal(); err == nil {
		t.Fatal("cyclic relation must not extend")
	}
}

func TestRelationQueries(t *testing.T) {
	inst := paperInstance(t)
	rel := inst.Closure(nil)
	a11 := idx(t, inst, "t1", 1)
	a12 := idx(t, inst, "t1", 2)
	a21 := idx(t, inst, "t2", 1)
	if !rel.Has(a11, a12) {
		t.Error("program order must be contained (condition (a))")
	}
	if rel.Comparable(a11, a21) {
		t.Error("steps of unrelated transactions start incomparable")
	}
	if !rel.Comparable(a11, a11) {
		t.Error("a step is comparable with itself")
	}
	if !rel.HasID(model.StepID{Txn: "t1", Seq: 1}, model.StepID{Txn: "t1", Seq: 4}) {
		t.Error("HasID must see transitive program order")
	}
	if rel.HasID(model.StepID{Txn: "ghost", Seq: 1}, model.StepID{Txn: "t1", Seq: 1}) {
		t.Error("unknown steps are unrelated")
	}
	// Program order contributes 3+2+1 pairs per transaction.
	if got := rel.Pairs(); got != 3*6 {
		t.Errorf("Pairs = %d, want 18", got)
	}
	if rel.Total() {
		t.Error("program orders alone are not total")
	}
}

func TestCloneIndependence(t *testing.T) {
	inst := paperInstance(t)
	rel := inst.Closure(nil)
	cl := rel.Clone()
	cl.Add([][2]int{{idx(t, inst, "t1", 1), idx(t, inst, "t2", 1)}})
	if rel.Has(idx(t, inst, "t1", 1), idx(t, inst, "t2", 1)) {
		t.Error("Clone must not share state")
	}
	if !cl.Has(idx(t, inst, "t1", 1), idx(t, inst, "t2", 1)) {
		t.Error("Add on clone must take effect")
	}
}

func TestNewAbstractErrors(t *testing.T) {
	n := nest.New(3)
	n.Add("t1", "g")
	d := breakpoint.NewDescription(3, 2)
	if _, err := NewAbstract(n, map[model.TxnID]int{"t1": 2}, map[model.TxnID]*breakpoint.Description{}); err == nil {
		t.Error("missing description must error")
	}
	if _, err := NewAbstract(n, map[model.TxnID]int{"t1": 3}, map[model.TxnID]*breakpoint.Description{"t1": d}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := NewAbstract(n, map[model.TxnID]int{"t2": 2}, map[model.TxnID]*breakpoint.Description{"t2": d}); err == nil {
		t.Error("transaction missing from nest must error")
	}
	wrongK := breakpoint.NewDescription(2, 2)
	if _, err := NewAbstract(n, map[model.TxnID]int{"t1": 2}, map[model.TxnID]*breakpoint.Description{"t1": wrongK}); err == nil {
		t.Error("k mismatch must error")
	}
	if _, err := NewAbstract(n, map[model.TxnID]int{"t1": 2}, map[model.TxnID]*breakpoint.Description{"t1": d}); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestIsCoherentTotalOrderRejectsMalformed(t *testing.T) {
	inst := paperInstance(t)
	if inst.IsCoherentTotalOrder([]int{0, 1}) {
		t.Error("short permutation accepted")
	}
	perm := make([]int, inst.N())
	for i := range perm {
		perm[i] = 0 // duplicates
	}
	if inst.IsCoherentTotalOrder(perm) {
		t.Error("duplicate permutation accepted")
	}
	// Reversed program order.
	var rev []int
	for _, txn := range []model.TxnID{"t1", "t2", "t3"} {
		for s := 4; s >= 1; s-- {
			rev = append(rev, idx(t, inst, txn, s))
		}
	}
	if inst.IsCoherentTotalOrder(rev) {
		t.Error("reversed program order accepted")
	}
}

func TestEmptyInstance(t *testing.T) {
	n := nest.New(2)
	n.Add("t")
	inst, err := NewAbstract(n, map[model.TxnID]int{"t": 0}, map[model.TxnID]*breakpoint.Description{
		"t": breakpoint.NewDescription(2, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := inst.Closure(nil)
	perm, err := rel.ExtendTotal()
	if err != nil || len(perm) != 0 {
		t.Fatalf("empty extension: %v %v", perm, err)
	}
	if !rel.Total() {
		t.Error("the empty relation is vacuously total")
	}
}
