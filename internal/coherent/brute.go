package coherent

import "mla/internal/model"

// BruteCorrectable decides correctability by exhaustive search: it looks
// for a coherent total order of the instance's steps that contains the
// dependency relation ≤e of the execution. This is the definition applied
// literally — exponential in the number of steps — and exists purely to
// cross-validate the Theorem 2 closure test on small instances (see the
// property tests). maxSteps guards against accidental blow-ups; executions
// longer than that return ok=false, valid=false.
func BruteCorrectable(e model.Execution, inst *Instance, order []int) (ok, valid bool) {
	n := inst.N()
	if n > 12 {
		return false, false
	}
	// ≤e generator edges in global-index space.
	succ := make([][]int, n)
	pred := make([][]int, n)
	for _, pe := range e.DependencyEdges() {
		a, b := order[pe[0]], order[pe[1]]
		succ[a] = append(succ[a], b)
		pred[b] = append(pred[b], a)
	}

	placed := make([]int, 0, n)
	posOf := make([]int, n)
	for i := range posOf {
		posOf[i] = -1
	}
	nextSeq := make([]int, len(inst.txns)) // steps of each txn placed so far

	var search func() bool
	search = func() bool {
		if len(placed) == n {
			return inst.IsCoherentTotalOrder(placed)
		}
		for ti := range inst.txns {
			if nextSeq[ti] >= len(inst.stepsOf[ti]) {
				continue
			}
			g := inst.stepsOf[ti][nextSeq[ti]]
			// All ≤e predecessors must already be placed.
			ready := true
			for _, p := range pred[g] {
				if posOf[p] < 0 {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			// Coherence pruning: placing g must not interrupt another
			// transaction inside a protected segment.
			legal := true
			for tj := range inst.txns {
				if tj == ti {
					continue
				}
				pl := nextSeq[tj]
				if pl == 0 || pl == len(inst.stepsOf[tj]) {
					continue
				}
				lv := inst.level[tj][ti]
				if inst.desc[tj].SameSegment(pl, pl+1, lv) {
					legal = false
					break
				}
			}
			if !legal {
				continue
			}
			posOf[g] = len(placed)
			placed = append(placed, g)
			nextSeq[ti]++
			if search() {
				return true
			}
			nextSeq[ti]--
			placed = placed[:len(placed)-1]
			posOf[g] = -1
		}
		return false
	}
	return search(), true
}
