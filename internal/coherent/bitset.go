package coherent

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers, used for
// the reachability rows of Relation. All sets in one Relation share the same
// capacity (the number of steps).
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) set(i int) { b[i>>6] |= 1 << uint(i&63) }

// orWith sets b |= other, returning whether b changed.
func (b bitset) orWith(other bitset) bool {
	changed := false
	for i, w := range other {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

// count returns the number of elements.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// forEach calls f on each element in ascending order.
func (b bitset) forEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// andNot returns a fresh bitset holding b \ other.
func (b bitset) andNot(other bitset) bitset {
	out := make(bitset, len(b))
	for i := range b {
		out[i] = b[i] &^ other[i]
	}
	return out
}

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}
