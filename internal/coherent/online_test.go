package coherent

import (
	"fmt"
	"math/rand"
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// TestOnlineClosureMatchesOffline is the soundness keystone for the
// Detector: drive random executions step by step through the online
// closure, and at every prefix compare its cycle verdict with the batch
// Theorem 2 checker. The two implementations share no code beyond the
// bitset idea, so agreement is strong evidence both are right.
func TestOnlineClosureMatchesOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(3) // 2..4
		nTxn := 3 + rng.Intn(3)
		nEnt := 2 + rng.Intn(3)
		stepsPer := 2 + rng.Intn(4)

		n := nest.New(k)
		progs := make([]model.Program, nTxn)
		for i := 0; i < nTxn; i++ {
			id := model.TxnID(fmt.Sprintf("t%d", i))
			ops := make([]model.Op, stepsPer)
			for j := range ops {
				ops[j] = model.Add(model.EntityID(fmt.Sprintf("x%d", rng.Intn(nEnt))), 1)
			}
			progs[i] = &model.Scripted{Txn: id, Ops: ops}
			mid := make([]string, k-2)
			for l := range mid {
				mid[l] = fmt.Sprintf("c%d", i%(2+l))
			}
			n.Add(id, mid...)
		}
		// Random per-position coarseness, fixed by (txn, position) so the
		// spec is a function (deterministic).
		cutSeed := rng.Int63()
		spec := breakpoint.Func{Levels: k, Fn: func(tx model.TxnID, prefix []model.Step) int {
			h := cutSeed
			for _, c := range tx {
				h = h*131 + int64(c)
			}
			h = h*131 + int64(len(prefix))
			if h < 0 {
				h = -h
			}
			return 2 + int(h)%(k-1)
		}}

		e, err := model.RandomInterleave(progs, map[model.EntityID]model.Value{}, rng)
		if err != nil {
			t.Fatal(err)
		}

		oc := NewOnline(k, n.Level)
		perTxn := make(map[model.TxnID][]model.Step)
		onlineCyclicAt := -1
		for i, s := range e {
			ok := oc.AddStep(s.Txn, s.Entity)
			if !ok {
				onlineCyclicAt = i
				break
			}
			perTxn[s.Txn] = append(perTxn[s.Txn], s)
			// Report the breakpoint after this step, as the simulator would
			// (not after the final step).
			if len(perTxn[s.Txn]) < stepsPer {
				oc.AddCut(s.Txn, spec.CutAfter(s.Txn, perTxn[s.Txn]))
			}

			// Offline verdict on the prefix so far.
			prefix := e[:i+1]
			okOff, err := Correctable(prefix, n, spec)
			if err != nil {
				t.Fatal(err)
			}
			if !okOff {
				t.Fatalf("trial %d: offline rejects prefix %d but online accepted", trial, i)
			}
		}
		if onlineCyclicAt >= 0 {
			// The prefix including the rejected step must be offline-rejected.
			prefix := e[:onlineCyclicAt+1]
			okOff, err := Correctable(prefix, n, spec)
			if err != nil {
				t.Fatal(err)
			}
			if okOff {
				t.Fatalf("trial %d: online rejected step %d of a correctable prefix", trial, onlineCyclicAt)
			}
		}
	}
}

// TestOnlineClosureRebuild: dropping a transaction and replaying must give
// the same verdicts as never having run it.
func TestOnlineClosureRebuild(t *testing.T) {
	n := nest.New(2)
	n.Add("a")
	n.Add("b")
	n.Add("c")
	oc := NewOnline(2, n.Level)
	// a and b ping-pong toward a cycle; c is independent.
	steps := []struct {
		txn model.TxnID
		ent model.EntityID
	}{
		{"a", "x"}, {"c", "z"}, {"b", "x"}, {"b", "y"},
	}
	for _, s := range steps {
		if !oc.AddStep(s.txn, s.ent) {
			t.Fatalf("unexpected cycle at %v", s)
		}
		oc.AddCut(s.txn, 2)
	}
	// a on y closes the a→b→a cycle.
	if oc.AddStep("a", "y") {
		t.Fatal("expected a cycle")
	}
	oc.PopStep()
	oc.Rebuild(map[model.TxnID]bool{"b": true})
	// With b gone, a on y is clean.
	if !oc.AddStep("a", "y") {
		t.Fatal("cycle persisted after rebuild dropped b")
	}
	if oc.Steps() != 3 {
		t.Errorf("steps = %d, want 3 (a's x, c's z, a's new y)", oc.Steps())
	}
}

func TestOnlineClosureCycleTxns(t *testing.T) {
	n := nest.New(2)
	n.Add("a")
	n.Add("b")
	oc := NewOnline(2, n.Level)
	oc.AddStep("a", "x")
	oc.AddStep("b", "x")
	oc.AddStep("b", "y")
	if oc.AddStep("a", "y") {
		t.Fatal("expected cycle")
	}
	txns := oc.CycleTxns()
	if len(txns) == 0 {
		t.Fatal("no cycle transactions reported")
	}
	seen := map[model.TxnID]bool{}
	for _, x := range txns {
		seen[x] = true
	}
	if !seen["a"] && !seen["b"] {
		t.Errorf("cycle txns = %v", txns)
	}
	if oc.CycleTxns() == nil {
		t.Error("CycleTxns must stay available until rebuild")
	}
}

func TestObitset(t *testing.T) {
	var b obitset
	if b.has(5) {
		t.Error("empty set has nothing")
	}
	b.set(5)
	b.set(64)
	b.set(129)
	if !b.has(5) || !b.has(64) || !b.has(129) || b.has(6) {
		t.Error("set/has broken")
	}
	var got []int
	b.forEach(func(i int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 5 || got[2] != 129 {
		t.Errorf("forEach = %v", got)
	}
	var other obitset
	other.set(5)
	var diff []int
	b.forEachNotIn(other, func(i int) { diff = append(diff, i) })
	if len(diff) != 2 || diff[0] != 64 {
		t.Errorf("forEachNotIn = %v", diff)
	}
}
