package coherent

import (
	"math/bits"

	"mla/internal/model"
)

// Online maintains the coherent closure of the dependency relation ≤e of a
// growing execution — the incremental counterpart of Relation and the data
// structure behind the Detector scheduler (Section 6's cycle-detection
// sketch). Unlike the static Relation it supports appending steps and
// breakpoints online:
//
//   - appending a step adds its program-order and entity-order generator
//     edges, plus the "pinned" edges required by coherence rule (b): if an
//     earlier step α of t precedes some β and t's segment containing α is
//     still open at the relevant level, then every future step of t in that
//     segment must also precede β. Such β are pinned per (transaction,
//     level) and released when a breakpoint of that level is crossed.
//   - appending a breakpoint (a cut of some coarseness) closes segments and
//     clears the corresponding pinned sets.
//
// Rollback is incremental when it can be and a rebuild when it must:
// dropping a whole transaction whose steps are closure-sinks (no live step
// is reachable from any of them) retracts exactly those steps in place —
// tombstone the step slots, clear the victim's per-transaction state, pop
// its steps off the per-entity access chains, and mask its bits out of
// every live reach/pred/pinned set. The sink condition makes this exact:
// a dead step that reaches no live step contributed nothing to any live
// step's predecessor set, so masking its bits leaves precisely the closure
// a filter-and-replay would rebuild (TestRetractEquivalence pins this on
// randomized histories). When bookkeeping is ambiguous — a partial keep, a
// relation left dirty by a rejected AddStep, or a dropped step with live
// closure-successors — RebuildPartial falls back to the full replay.
type Online struct {
	k     int
	level func(a, b model.TxnID) int

	events []oevent

	// Replayable state below; reset by rebuild.
	txns    []model.TxnID
	txnIdx  map[model.TxnID]int
	stepTxn []int            // global step -> txn index
	stepSeq []int            // global step -> 1-based seq
	stepEnt []model.EntityID // global step -> entity
	perTxn  [][]int
	coarse  [][]int // per txn: coarse[pos-1] = coarseness of cut after step pos (0 = none yet)

	reach, pred []obitset
	lastEntity  map[model.EntityID]int
	chains      map[model.EntityID][]int // per entity: live accessor steps, in order
	pinned      [][]obitset              // per txn, per level 2..k

	// Retraction bookkeeping: dead marks tombstoned step slots (indices are
	// never reused between rebuilds), liveSteps counts the rest, dirty is
	// set by PopStep — the relation then contains a rejected step's edges
	// and only a replay can remove them. forceReplay (tests only) disables
	// the incremental path so replay and retraction can be compared.
	dead        obitset
	liveSteps   int
	dirty       bool
	forceReplay bool
	retractions int // total successful incremental retractions

	// Preview scratch, reused across ForEachPredOfNewStep calls. Online is
	// driven under its owner's serialization (the engine mutex or the
	// simulator loop), so struct-owned scratch needs no locking. pvMax holds,
	// per transaction index, the max seq seen during the current preview; its
	// entries are zero between calls (touched entries are re-zeroed on exit),
	// so growing it lazily never needs a wipe. pvPushFn is pvPush bound once
	// so passing it to forEach does not allocate a method value per step.
	pvVisited obitset
	pvStack   []int
	pvMax     []int
	pvTouched []int
	pvPushFn  func(int)

	cyclic         bool
	cycleA, cycleB int
}

type oevent struct {
	isCut  bool
	txn    model.TxnID
	entity model.EntityID // step events
	coarse int            // cut events
}

// obitset is a growable bitset.
type obitset []uint64

func (b *obitset) set(i int) {
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << uint(i&63)
}

func (b obitset) has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<uint(i&63)) != 0
}

// forEachNotIn calls f for every element of b that is absent from other.
func (b obitset) forEachNotIn(other obitset, f func(i int)) {
	for wi, w := range b {
		if wi < len(other) {
			w &^= other[wi]
		}
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

func (b obitset) forEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// andNot clears every bit of other from b.
func (b obitset) andNot(other obitset) {
	n := len(b)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		b[i] &^= other[i]
	}
}

// intersects reports whether b and other share a set bit.
func (b obitset) intersects(other obitset) bool {
	n := len(b)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if b[i]&other[i] != 0 {
			return true
		}
	}
	return false
}

func NewOnline(k int, level func(a, b model.TxnID) int) *Online {
	oc := &Online{k: k, level: level}
	oc.pvPushFn = oc.pvPush
	oc.reset()
	return oc
}

func (oc *Online) reset() {
	oc.txns = nil
	oc.txnIdx = make(map[model.TxnID]int)
	oc.stepTxn = nil
	oc.stepSeq = nil
	oc.stepEnt = nil
	oc.perTxn = nil
	oc.coarse = nil
	oc.reach = nil
	oc.pred = nil
	oc.lastEntity = make(map[model.EntityID]int)
	oc.chains = make(map[model.EntityID][]int)
	oc.pinned = nil
	oc.dead = nil
	oc.liveSteps = 0
	oc.dirty = false
	oc.cyclic = false
}

func (oc *Online) txn(t model.TxnID) int {
	if ti, ok := oc.txnIdx[t]; ok {
		return ti
	}
	ti := len(oc.txns)
	oc.txnIdx[t] = ti
	oc.txns = append(oc.txns, t)
	oc.perTxn = append(oc.perTxn, nil)
	oc.coarse = append(oc.coarse, nil)
	oc.pinned = append(oc.pinned, make([]obitset, oc.k+1))
	return ti
}

// AddStep appends a step of t on x, returning false when it closes a cycle
// in the coherent closure. On false the caller must Rollback or Rebuild:
// the internal relation is left dirty.
func (oc *Online) AddStep(t model.TxnID, x model.EntityID) bool {
	oc.events = append(oc.events, oevent{txn: t, entity: x})
	oc.applyStep(t, x)
	return !oc.cyclic
}

// PopStep removes the most recent event, which must be the step just
// rejected by AddStep. The rejected step's edges remain in the relation
// until the Rebuild the caller is contractually about to perform; the
// dirty flag forces that rebuild down the full-replay path, since
// incremental retraction cannot see phantom edges.
func (oc *Online) PopStep() {
	oc.events = oc.events[:len(oc.events)-1]
	oc.dirty = true
}

// AddCut appends a breakpoint of the given coarseness after t's latest
// step.
func (oc *Online) AddCut(t model.TxnID, coarse int) {
	oc.events = append(oc.events, oevent{isCut: true, txn: t, coarse: coarse})
	oc.applyCut(t, coarse)
}

// Rebuild removes every event of the dropped transactions and replays the
// rest, resetting the relation.
func (oc *Online) Rebuild(drop map[model.TxnID]bool) {
	keep := make(map[model.TxnID]int, len(drop))
	for t := range drop {
		keep[t] = 0
	}
	oc.RebuildPartial(keep)
}

// RebuildPartial removes, for each transaction in keep, every step event
// beyond its kept prefix (and the breakpoints attached to the removed
// steps), then replays the remainder. keep[t] = 0 drops t entirely.
//
// Full drops of closure-sink transactions take the incremental retraction
// path (see tryRetract) and never replay; partial keeps, dirty relations,
// and drops with live closure-successors fall back to filter-and-replay.
func (oc *Online) RebuildPartial(keep map[model.TxnID]int) {
	if oc.tryRetract(keep) {
		return
	}
	seen := make(map[model.TxnID]int, len(keep))
	kept := oc.events[:0]
	for _, ev := range oc.events {
		k, tracked := keep[ev.txn]
		if !tracked {
			kept = append(kept, ev)
			continue
		}
		if ev.isCut {
			if seen[ev.txn] >= 1 && seen[ev.txn] <= k {
				kept = append(kept, ev)
			}
			continue
		}
		if seen[ev.txn] < k {
			seen[ev.txn]++
			kept = append(kept, ev)
		} else {
			seen[ev.txn]++ // dropped
		}
	}
	oc.events = kept
	oc.reset()
	for _, ev := range oc.events {
		if ev.isCut {
			oc.applyCut(ev.txn, ev.coarse)
		} else {
			oc.applyStep(ev.txn, ev.entity)
		}
	}
}

// tryRetract attempts to undo the dropped transactions in place instead of
// replaying. It succeeds only when the retraction is provably exact:
//
//   - the relation is clean (no rejected step's phantom edges — dirty),
//   - every keep is a full drop (partial keeps shift seq numbering),
//   - no dropped step reaches a live step outside the drop set (the
//     closure-sink condition).
//
// Under the sink condition the dropped steps contributed nothing to any
// surviving step's predecessor set — every edge they induced points INTO
// the drop set — so masking their bits out of reach/pred/pinned leaves
// exactly the closure a replay would rebuild. It also implies the dropped
// steps form a suffix of every per-entity access chain (a later live
// accessor would be a closure-successor), so popping chain suffixes
// restores each entity's last live accessor.
//
// On success the step slots are tombstoned, not compacted; indices stay
// stable until the next full replay.
func (oc *Online) tryRetract(keep map[model.TxnID]int) bool {
	if oc.dirty || oc.forceReplay || oc.cyclic {
		return false
	}
	for _, k := range keep {
		if k != 0 {
			return false
		}
	}
	var dying obitset
	total := 0
	for t := range keep {
		ti, ok := oc.txnIdx[t]
		if !ok {
			continue
		}
		for _, g := range oc.perTxn[ti] {
			dying.set(g)
			total++
		}
	}
	// Sink check: a dying step reaching a step that is neither dying nor
	// already dead has a live closure-successor — retraction would be
	// inexact, so replay.
	for t := range keep {
		ti, ok := oc.txnIdx[t]
		if !ok {
			continue
		}
		for _, g := range oc.perTxn[ti] {
			for wi, w := range oc.reach[g] {
				if wi < len(dying) {
					w &^= dying[wi]
				}
				if wi < len(oc.dead) {
					w &^= oc.dead[wi]
				}
				if w != 0 {
					return false
				}
			}
		}
	}

	// Commit point: everything below is pure bookkeeping removal.
	// 1. The event log loses every event of the dropped transactions.
	kept := oc.events[:0]
	for _, ev := range oc.events {
		if _, dropped := keep[ev.txn]; !dropped {
			kept = append(kept, ev)
		}
	}
	oc.events = kept
	// 2. Per-entity chains lose their dead suffixes; the last live accessor
	// becomes the entity's last accessor again.
	for t := range keep {
		ti, ok := oc.txnIdx[t]
		if !ok {
			continue
		}
		for _, g := range oc.perTxn[ti] {
			x := oc.stepEnt[g]
			ch := oc.chains[x]
			for len(ch) > 0 && (dying.has(ch[len(ch)-1]) || oc.dead.has(ch[len(ch)-1])) {
				ch = ch[:len(ch)-1]
			}
			if len(ch) == 0 {
				delete(oc.chains, x)
				delete(oc.lastEntity, x)
			} else {
				oc.chains[x] = ch
				oc.lastEntity[x] = ch[len(ch)-1]
			}
		}
		// 3. The victim's per-transaction state resets; its txn slot is kept
		// for reuse by a restarted attempt.
		oc.perTxn[ti] = nil
		oc.coarse[ti] = nil
		oc.pinned[ti] = make([]obitset, oc.k+1)
	}
	// 4. Tombstone the slots and mask the dead bits out of every live set.
	// pred of a live step cannot contain a dying bit (that edge would make
	// the live step a closure-successor), but masking is cheap and keeps
	// the invariant mechanical rather than argued.
	dying.forEach(func(g int) {
		oc.dead.set(g)
		oc.reach[g] = nil
		oc.pred[g] = nil
	})
	oc.liveSteps -= total
	for g := range oc.stepTxn {
		if oc.dead.has(g) {
			continue
		}
		oc.reach[g].andNot(dying)
		oc.pred[g].andNot(dying)
	}
	for ti := range oc.pinned {
		for lv := range oc.pinned[ti] {
			oc.pinned[ti][lv].andNot(dying)
		}
	}
	oc.retractions++
	return true
}

// Retractions returns the total number of rollbacks handled by incremental
// retraction rather than replay. Observability for benchmarks and the
// equivalence tests.
func (oc *Online) Retractions() int { return oc.retractions }

// CycleTxns returns the transactions of the two steps whose pair closed the
// cycle (valid after AddStep returned false).
func (oc *Online) CycleTxns() []model.TxnID {
	if !oc.cyclic {
		return nil
	}
	a := oc.txns[oc.stepTxn[oc.cycleA]]
	b := oc.txns[oc.stepTxn[oc.cycleB]]
	if a == b {
		return []model.TxnID{a}
	}
	return []model.TxnID{a, b}
}

// Steps returns the number of live steps.
func (oc *Online) Steps() int { return oc.liveSteps }

func (oc *Online) applyStep(t model.TxnID, x model.EntityID) {
	ti := oc.txn(t)
	g := len(oc.stepTxn)
	seq := len(oc.perTxn[ti]) + 1
	oc.stepTxn = append(oc.stepTxn, ti)
	oc.stepSeq = append(oc.stepSeq, seq)
	oc.stepEnt = append(oc.stepEnt, x)
	oc.reach = append(oc.reach, nil)
	oc.pred = append(oc.pred, nil)
	oc.liveSteps++

	var queue [][2]int
	if seq > 1 {
		queue = append(queue, [2]int{oc.perTxn[ti][seq-2], g})
	}
	if le, ok := oc.lastEntity[x]; ok {
		queue = append(queue, [2]int{le, g})
	}
	// Rule (b), future part: this step extends t's open segments, so it
	// inherits every pinned successor obligation. Level 1 is included: a
	// B(1) segment is the whole transaction, so level-1 pins persist until
	// the transaction ends.
	for lv := 1; lv <= oc.k; lv++ {
		oc.pinned[ti][lv].forEach(func(b int) {
			queue = append(queue, [2]int{g, b})
		})
	}

	oc.perTxn[ti] = append(oc.perTxn[ti], g)
	oc.coarse[ti] = append(oc.coarse[ti], 0) // boundary after seq not yet known
	oc.lastEntity[x] = g
	oc.chains[x] = append(oc.chains[x], g)
	oc.process(queue)
}

func (oc *Online) applyCut(t model.TxnID, coarse int) {
	ti := oc.txn(t)
	n := len(oc.perTxn[ti])
	if n == 0 {
		return
	}
	if coarse < 2 {
		coarse = 2
	}
	oc.coarse[ti][n-1] = coarse
	for lv := coarse; lv <= oc.k; lv++ {
		oc.pinned[ti][lv] = nil
	}
}

// segmentOpen reports whether no boundary of coarseness ≤ lv has been
// recorded at or after position seq of transaction ti.
func (oc *Online) segmentOpen(ti, seq, lv int) bool {
	for p := seq; p <= len(oc.perTxn[ti]); p++ {
		if c := oc.coarse[ti][p-1]; c != 0 && c <= lv {
			return false
		}
	}
	return true
}

func (oc *Online) process(queue [][2]int) {
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		a, b := p[0], p[1]
		if a == b {
			oc.cyclic = true
			oc.cycleA, oc.cycleB = a, b
			continue
		}
		if oc.reach[a].has(b) {
			continue
		}
		if oc.reach[b].has(a) {
			oc.cyclic = true
			oc.cycleA, oc.cycleB = a, b
		}
		oc.reach[a].set(b)
		oc.pred[b].set(a)

		ta, tb := oc.stepTxn[a], oc.stepTxn[b]
		if ta != tb {
			lv := oc.level(oc.txns[ta], oc.txns[tb])
			// Rule (b), past part: later performed steps of ta in the same
			// B(lv) segment also precede b.
			for s := oc.stepSeq[a] + 1; s <= len(oc.perTxn[ta]); s++ {
				if c := oc.coarse[ta][s-2]; c != 0 && c <= lv {
					break // boundary between s-1 and s closes the segment
				}
				g2 := oc.perTxn[ta][s-1]
				if !oc.reach[g2].has(b) {
					queue = append(queue, [2]int{g2, b})
				}
			}
			// Rule (b), future part: pin b if a's segment is still open.
			if oc.segmentOpen(ta, oc.stepSeq[a], lv) {
				oc.pinned[ta][lv].set(b)
			}
		}

		oc.reach[b].forEachNotIn(oc.reach[a], func(c int) {
			queue = append(queue, [2]int{a, c})
		})
		oc.pred[a].forEachNotIn(oc.pred[b], func(c int) {
			queue = append(queue, [2]int{c, b})
		})
	}
}

// SegmentClosedAfter reports whether transaction t has crossed a boundary
// of coarseness ≤ lv at or after position seq (within its current extent):
// the condition under which a step at seq is "closed off" for a level-lv
// observer in the Section 6 delay rule.
func (oc *Online) SegmentClosedAfter(t model.TxnID, seq, lv int) bool {
	ti, ok := oc.txnIdx[t]
	if !ok || len(oc.perTxn[ti]) == 0 {
		// No live steps (never seen, or retracted in place): nothing to
		// wait for.
		return true
	}
	return !oc.segmentOpen(ti, seq, lv)
}

// Extent returns the number of live steps of t.
func (oc *Online) Extent(t model.TxnID) int {
	ti, ok := oc.txnIdx[t]
	if !ok {
		return 0
	}
	return len(oc.perTxn[ti])
}

// PredForNewStep computes, per transaction, the latest step (max seq) that
// would precede a hypothetical next step of t on x in the coherent closure,
// WITHOUT mutating the closure. The hypothetical step's in-edges are its
// program predecessor and x's last accessor; rule (b) extends each
// predecessor α of another transaction u with u's already-performed steps
// in α's still-open level(u,t) segment; transitivity pulls in all their
// ancestors. The result is exactly the predecessor set the step would have
// if added (successor pins do not affect it).
func (oc *Online) PredForNewStep(t model.TxnID, x model.EntityID) map[model.TxnID]int {
	out := make(map[model.TxnID]int)
	oc.ForEachPredOfNewStep(t, x, func(u model.TxnID, s int) { out[u] = s })
	return out
}

// pvPush pushes step g onto the preview DFS stack if unvisited. Bound once
// as pvPushFn so forEach calls do not allocate.
func (oc *Online) pvPush(g int) {
	if g >= 0 && !oc.pvVisited.has(g) {
		oc.pvVisited.set(g)
		oc.pvStack = append(oc.pvStack, g)
	}
}

// ForEachPredOfNewStep is the allocation-free form of PredForNewStep: it
// calls f once per predecessor transaction with that transaction's latest
// preceding seq, in no particular order. All traversal state lives in
// scratch on oc, so steady-state calls allocate nothing; the callback must
// not re-enter oc.
func (oc *Online) ForEachPredOfNewStep(t model.TxnID, x model.EntityID, f func(u model.TxnID, maxSeq int)) {
	if len(oc.stepTxn) == 0 {
		return
	}
	for i := range oc.pvVisited {
		oc.pvVisited[i] = 0
	}
	oc.pvStack = oc.pvStack[:0]
	oc.pvTouched = oc.pvTouched[:0]
	if len(oc.pvMax) < len(oc.txns) {
		oc.pvMax = append(oc.pvMax, make([]int, len(oc.txns)-len(oc.pvMax))...)
	}
	if ti, ok := oc.txnIdx[t]; ok && len(oc.perTxn[ti]) > 0 {
		oc.pvPush(oc.perTxn[ti][len(oc.perTxn[ti])-1])
	}
	if le, ok := oc.lastEntity[x]; ok {
		oc.pvPush(le)
	}
	for len(oc.pvStack) > 0 {
		g := oc.pvStack[len(oc.pvStack)-1]
		oc.pvStack = oc.pvStack[:len(oc.pvStack)-1]
		gti := oc.stepTxn[g]
		gt := oc.txns[gti]
		if gt != t {
			// seq is 1-based, so pvMax[gti] == 0 means "not yet seen".
			if s := oc.stepSeq[g]; s > oc.pvMax[gti] {
				if oc.pvMax[gti] == 0 {
					oc.pvTouched = append(oc.pvTouched, gti)
				}
				oc.pvMax[gti] = s
			}
			// Rule (b): performed segment-mates after g, within g's
			// still-open level(gt, t) segment, would also precede the new
			// step.
			lv := oc.level(gt, t)
			for s := oc.stepSeq[g] + 1; s <= len(oc.perTxn[gti]); s++ {
				if c := oc.coarse[gti][s-2]; c != 0 && c <= lv {
					break
				}
				oc.pvPush(oc.perTxn[gti][s-1])
			}
		}
		oc.pred[g].forEach(oc.pvPushFn)
	}
	for _, ti := range oc.pvTouched {
		f(oc.txns[ti], oc.pvMax[ti])
		oc.pvMax[ti] = 0
	}
}
