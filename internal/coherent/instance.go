// Package coherent implements the combinatorial core of the paper: the
// coherence condition on relations over transaction steps (Section 4.2), the
// coherent closure, cycle detection, the stage-wise extension of a coherent
// partial order to a coherent total order (Lemma 1 and its Appendix proof),
// and the correctability characterization (Theorem 2).
package coherent

import (
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Instance is a k-level interleaving specification (Section 4.2): a set of
// transactions, each with a totally ordered set of steps and a k-level
// breakpoint description, plus the k-nest relating the transactions. Steps
// are addressed by a dense global index 0..N-1; within a transaction the
// global indices respect the <t order.
type Instance struct {
	nest   *nest.Nest
	txns   []model.TxnID
	txnIdx map[model.TxnID]int

	ids   []model.StepID // global index -> identity
	txnOf []int          // global index -> transaction index
	seqOf []int          // global index -> 1-based position within transaction

	stepsOf [][]int                   // transaction index -> global indices in <t order
	desc    []*breakpoint.Description // transaction index -> breakpoint description

	level [][]int // cached level(t,t') matrix
}

// NewAbstract builds an instance directly from step counts and breakpoint
// descriptions, without any recorded execution. It is the form used by the
// paper's abstract Subsection 4.2 examples and by property tests. counts and
// descs must have identical key sets, each description's length must match
// the count, and every transaction must be registered in n.
func NewAbstract(n *nest.Nest, counts map[model.TxnID]int, descs map[model.TxnID]*breakpoint.Description) (*Instance, error) {
	txns := make([]model.TxnID, 0, len(counts))
	for t := range counts {
		txns = append(txns, t)
	}
	model.SortTxnIDs(txns)

	inst := &Instance{nest: n, txnIdx: make(map[model.TxnID]int)}
	for _, t := range txns {
		d, ok := descs[t]
		if !ok {
			return nil, fmt.Errorf("coherent: no breakpoint description for %s", t)
		}
		if d.Len() != counts[t] {
			return nil, fmt.Errorf("coherent: %s has %d steps but description covers %d", t, counts[t], d.Len())
		}
		if d.K() != n.K() {
			return nil, fmt.Errorf("coherent: %s description has k=%d, nest has k=%d", t, d.K(), n.K())
		}
		if !n.Has(t) {
			return nil, fmt.Errorf("coherent: transaction %s not in nest", t)
		}
		ti := len(inst.txns)
		inst.txns = append(inst.txns, t)
		inst.txnIdx[t] = ti
		inst.desc = append(inst.desc, d)
		var idxs []int
		for s := 1; s <= counts[t]; s++ {
			g := len(inst.ids)
			inst.ids = append(inst.ids, model.StepID{Txn: t, Seq: s})
			inst.txnOf = append(inst.txnOf, ti)
			inst.seqOf = append(inst.seqOf, s)
			idxs = append(idxs, g)
		}
		inst.stepsOf = append(inst.stepsOf, idxs)
	}
	inst.buildLevels()
	return inst, nil
}

// FromExecution builds the instance Σ(B,e) derived from an execution
// (Section 4.3): the transactions appearing in e, their step subsequences in
// e-order, and the breakpoint descriptions the specification assigns to
// those subsequences. The returned order slice maps each position of e to
// its global step index, so callers can translate e's total order into
// relation edges.
func FromExecution(e model.Execution, n *nest.Nest, spec breakpoint.Spec) (*Instance, []int, error) {
	if spec.K() != n.K() {
		return nil, nil, fmt.Errorf("coherent: spec has k=%d, nest has k=%d", spec.K(), n.K())
	}
	counts := make(map[model.TxnID]int)
	perTxn := make(map[model.TxnID][]model.Step)
	for _, s := range e {
		counts[s.Txn]++
		perTxn[s.Txn] = append(perTxn[s.Txn], s)
	}
	descs := make(map[model.TxnID]*breakpoint.Description, len(counts))
	for t, steps := range perTxn {
		descs[t] = breakpoint.Describe(spec, t, steps)
	}
	inst, err := NewAbstract(n, counts, descs)
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, len(e))
	seen := make(map[model.TxnID]int)
	for i, s := range e {
		seen[s.Txn]++
		if s.Seq != seen[s.Txn] {
			return nil, nil, fmt.Errorf("coherent: execution step %d (%s) out of sequence", i, s)
		}
		g, ok := inst.Index(s.Txn, s.Seq)
		if !ok {
			return nil, nil, fmt.Errorf("coherent: no index for %s", s.ID())
		}
		order[i] = g
	}
	return inst, order, nil
}

func (inst *Instance) buildLevels() {
	tn := len(inst.txns)
	inst.level = make([][]int, tn)
	for i := range inst.level {
		inst.level[i] = make([]int, tn)
		for j := range inst.level[i] {
			inst.level[i][j] = inst.nest.Level(inst.txns[i], inst.txns[j])
		}
	}
}

// N returns the total number of steps.
func (inst *Instance) N() int { return len(inst.ids) }

// K returns the number of levels.
func (inst *Instance) K() int { return inst.nest.K() }

// Txns returns the transactions, in global-index order.
func (inst *Instance) Txns() []model.TxnID { return inst.txns }

// ID returns the identity of the step at global index g.
func (inst *Instance) ID(g int) model.StepID { return inst.ids[g] }

// Index returns the global index of the seq-th step of t.
func (inst *Instance) Index(t model.TxnID, seq int) (int, bool) {
	ti, ok := inst.txnIdx[t]
	if !ok {
		return 0, false
	}
	if seq < 1 || seq > len(inst.stepsOf[ti]) {
		return 0, false
	}
	return inst.stepsOf[ti][seq-1], true
}

// Desc returns the breakpoint description of t.
func (inst *Instance) Desc(t model.TxnID) *breakpoint.Description {
	ti, ok := inst.txnIdx[t]
	if !ok {
		return nil
	}
	return inst.desc[ti]
}

// programEdges returns the generator edges of the <t orders: consecutive
// steps of each transaction.
func (inst *Instance) programEdges() [][2]int {
	var out [][2]int
	for _, idxs := range inst.stepsOf {
		for i := 1; i < len(idxs); i++ {
			out = append(out, [2]int{idxs[i-1], idxs[i]})
		}
	}
	return out
}
