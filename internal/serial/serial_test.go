package serial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mla/internal/model"
)

func st(t model.TxnID, seq int, x model.EntityID) model.Step {
	return model.Step{Txn: t, Seq: seq, Entity: x}
}

func TestSerializableSimple(t *testing.T) {
	// t1 then t2 on x: acyclic.
	e := model.Execution{st("t1", 1, "x"), st("t2", 1, "x")}
	if !Serializable(e) {
		t.Error("simple ordered conflict must be serializable")
	}
	// Classic cycle: t1→t2 on x, t2→t1 on y.
	bad := model.Execution{
		st("t1", 1, "x"), st("t2", 1, "x"),
		st("t2", 2, "y"), st("t1", 2, "y"),
	}
	if Serializable(bad) {
		t.Error("t1↔t2 cycle must not be serializable")
	}
}

func TestGraphEdges(t *testing.T) {
	e := model.Execution{
		st("t1", 1, "x"), st("t2", 1, "x"), st("t1", 2, "y"),
	}
	g := BuildGraph(e)
	if !g.HasEdge("t1", "t2") {
		t.Error("missing edge t1→t2")
	}
	if g.HasEdge("t2", "t1") {
		t.Error("phantom edge t2→t1")
	}
	if g.Edges() != 1 {
		t.Errorf("Edges = %d", g.Edges())
	}
	if g.HasEdge("ghost", "t1") {
		t.Error("unknown transactions have no edges")
	}
}

func TestWitnessIsSerialAndEquivalent(t *testing.T) {
	// Interleaved but serializable: t2 fully after t1 in conflict order.
	e := model.Execution{
		st("t1", 1, "x"),
		st("t2", 1, "z"),
		st("t1", 2, "y"),
		st("t2", 2, "x"),
	}
	w, ok := Witness(e)
	if !ok {
		t.Fatal("expected a serial witness")
	}
	if !IsSerial(w) {
		t.Errorf("witness not serial: %v", w)
	}
	if !e.Equivalent(w) {
		t.Errorf("witness not equivalent: %v", w)
	}
	if _, ok := Witness(model.Execution{
		st("t1", 1, "x"), st("t2", 1, "x"),
		st("t2", 2, "y"), st("t1", 2, "y"),
	}); ok {
		t.Error("non-serializable execution must not have a witness")
	}
}

func TestIsSerial(t *testing.T) {
	if !IsSerial(model.Execution{st("a", 1, "x"), st("a", 2, "y"), st("b", 1, "x")}) {
		t.Error("contiguous transactions are serial")
	}
	if IsSerial(model.Execution{st("a", 1, "x"), st("b", 1, "x"), st("a", 2, "y")}) {
		t.Error("a resumed after b: not serial")
	}
	if !IsSerial(nil) {
		t.Error("empty execution is serial")
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	// No conflicts: order should be ID-sorted.
	e := model.Execution{st("c", 1, "z"), st("a", 1, "x"), st("b", 1, "y")}
	order, ok := BuildGraph(e).TopoOrder()
	if !ok || len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v ok=%v", order, ok)
	}
}

// Property: a witness, when it exists, is always serial and conflict
// equivalent; serial executions are always serializable.
func TestQuickWitnessProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func(uint8) bool {
		// Random 3 txns × 3 steps over 3 entities.
		var e model.Execution
		seqs := [3]int{}
		type slot struct{ txn, cnt int }
		var slots []slot
		for i := 0; i < 3; i++ {
			slots = append(slots, slot{i, 3})
		}
		ents := []model.EntityID{"x", "y", "z"}
		for len(slots) > 0 {
			i := rng.Intn(len(slots))
			txn := slots[i].txn
			slots[i].cnt--
			if slots[i].cnt == 0 {
				slots = append(slots[:i], slots[i+1:]...)
			}
			seqs[txn]++
			e = append(e, st(model.TxnID(rune('a'+txn)), seqs[txn], ents[rng.Intn(3)]))
		}
		w, ok := Witness(e)
		if ok != Serializable(e) {
			return false
		}
		if ok {
			return IsSerial(w) && e.Equivalent(w)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
