// Package serial implements classical conflict serializability [EGLT, BG]
// as an independent baseline and cross-check for the k=2 degenerate case of
// multilevel atomicity. In the paper's model every step is an atomic
// read-modify-write of one entity, so any two steps on the same entity
// conflict and conflict equivalence coincides with the paper's execution
// equivalence (identical dependency relation ≤e).
package serial

import (
	"sort"

	"mla/internal/model"
)

// Graph is the serialization graph of an execution: nodes are transactions;
// there is an edge t → u when some step of t precedes a step of u on a
// common entity.
type Graph struct {
	txns []model.TxnID
	idx  map[model.TxnID]int
	adj  [][]bool
}

// BuildGraph constructs the serialization graph of e.
func BuildGraph(e model.Execution) *Graph {
	g := &Graph{idx: make(map[model.TxnID]int)}
	for _, t := range e.Txns() {
		g.idx[t] = len(g.txns)
		g.txns = append(g.txns, t)
	}
	n := len(g.txns)
	g.adj = make([][]bool, n)
	for i := range g.adj {
		g.adj[i] = make([]bool, n)
	}
	for _, idxs := range e.ByEntity() {
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				ta, tb := g.idx[e[idxs[a]].Txn], g.idx[e[idxs[b]].Txn]
				if ta != tb {
					g.adj[ta][tb] = true
				}
			}
		}
	}
	return g
}

// Edges returns the number of directed edges.
func (g *Graph) Edges() int {
	n := 0
	for _, row := range g.adj {
		for _, b := range row {
			if b {
				n++
			}
		}
	}
	return n
}

// HasEdge reports whether the graph has an edge t → u.
func (g *Graph) HasEdge(t, u model.TxnID) bool {
	i, ok1 := g.idx[t]
	j, ok2 := g.idx[u]
	return ok1 && ok2 && g.adj[i][j]
}

// TopoOrder returns a topological order of the transactions, or ok=false if
// the graph has a cycle. Deterministic: among ready nodes the smallest
// transaction ID is chosen first.
func (g *Graph) TopoOrder() ([]model.TxnID, bool) {
	n := len(g.txns)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g.adj[i][j] {
				indeg[j]++
			}
		}
	}
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	var out []model.TxnID
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return g.txns[ready[a]] < g.txns[ready[b]] })
		v := ready[0]
		ready = ready[1:]
		out = append(out, g.txns[v])
		for j := 0; j < n; j++ {
			if g.adj[v][j] {
				indeg[j]--
				if indeg[j] == 0 {
					ready = append(ready, j)
				}
			}
		}
	}
	return out, len(out) == n
}

// Serializable reports whether e is conflict serializable: its
// serialization graph is acyclic.
func Serializable(e model.Execution) bool {
	_, ok := BuildGraph(e).TopoOrder()
	return ok
}

// Witness returns a serial execution equivalent to e, or ok=false when e is
// not serializable. The witness replays e's steps grouped by transaction in
// a topological order of the serialization graph.
func Witness(e model.Execution) (model.Execution, bool) {
	order, ok := BuildGraph(e).TopoOrder()
	if !ok {
		return nil, false
	}
	byTxn := e.ByTxn()
	out := make(model.Execution, 0, len(e))
	for _, t := range order {
		for _, i := range byTxn[t] {
			out = append(out, e[i])
		}
	}
	return out, true
}

// IsSerial reports whether e is a serial execution: the steps of each
// transaction are contiguous.
func IsSerial(e model.Execution) bool {
	seen := make(map[model.TxnID]bool)
	var cur model.TxnID
	for i, s := range e {
		if i == 0 || s.Txn != cur {
			if seen[s.Txn] {
				return false
			}
			seen[s.Txn] = true
			cur = s.Txn
		}
	}
	return true
}
