package lock

import (
	"fmt"
	"math/rand"
	"testing"

	"mla/internal/model"
)

// TestPropertyExclusiveHolder drives the manager through seeded random
// acquire/release sequences and checks the safety property after every
// operation: no entity ever has two holders. The manager's own holder map
// is cross-checked against an independently maintained shadow table, so a
// bookkeeping desync between holder and held would also surface.
func TestPropertyExclusiveHolder(t *testing.T) {
	txns := make([]model.TxnID, 6)
	for i := range txns {
		txns[i] = model.TxnID(fmt.Sprintf("t%d", i))
	}
	entities := []model.EntityID{"x", "y", "z", "w"}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewManager()
		shadow := make(map[model.EntityID]model.TxnID)
		for op := 0; op < 400; op++ {
			tx := txns[rng.Intn(len(txns))]
			if rng.Intn(5) == 0 {
				m.Release(tx)
				for x, h := range shadow {
					if h == tx {
						delete(shadow, x)
					}
				}
			} else {
				x := entities[rng.Intn(len(entities))]
				ok, holder := m.TryAcquire(tx, x)
				prev, locked := shadow[x]
				if ok {
					if locked && prev != tx {
						t.Fatalf("seed=%d op=%d: %s granted %s while %s held it", seed, op, x, tx, prev)
					}
					shadow[x] = tx
				} else {
					if !locked {
						t.Fatalf("seed=%d op=%d: free entity %s refused %s", seed, op, x, tx)
					}
					if holder != prev {
						t.Fatalf("seed=%d op=%d: reported holder %s, shadow says %s", seed, op, holder, prev)
					}
				}
			}
			// Global invariant: each entity has at most one holder, every
			// held set agrees with the holder map, and the shadow matches.
			holders := make(map[model.EntityID]model.TxnID)
			for _, tx := range txns {
				for _, x := range entities {
					if m.Holds(tx, x) {
						if other, dup := holders[x]; dup {
							t.Fatalf("seed=%d op=%d: %s held by both %s and %s", seed, op, x, other, tx)
						}
						holders[x] = tx
					}
				}
			}
			if len(holders) != len(shadow) {
				t.Fatalf("seed=%d op=%d: manager holds %d entities, shadow %d", seed, op, len(holders), len(shadow))
			}
			for x, h := range shadow {
				if holders[x] != h {
					t.Fatalf("seed=%d op=%d: %s holder %s, shadow %s", seed, op, x, holders[x], h)
				}
			}
			if m.Locked() != len(shadow) {
				t.Fatalf("seed=%d op=%d: Locked()=%d, shadow %d", seed, op, m.Locked(), len(shadow))
			}
		}
	}
}

// TestPropertyWoundOnlyStrictlyYounger: under randomized priorities and
// conflicts, Acquire may answer Wound only when the requester is strictly
// older (smaller priority) than the named victim, and the victim is always
// the actual holder; equal-or-older holders always make the requester
// Wait. This is the wound-wait condition that makes the scheme
// deadlock-free and starvation-free.
func TestPropertyWoundOnlyStrictlyYounger(t *testing.T) {
	txns := make([]model.TxnID, 8)
	for i := range txns {
		txns[i] = model.TxnID(fmt.Sprintf("t%d", i))
	}
	entities := []model.EntityID{"a", "b", "c"}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prios := make(map[model.TxnID]int64)
		for _, tx := range txns {
			// Duplicates allowed on purpose: ties must Wait, never Wound.
			prios[tx] = int64(rng.Intn(4))
		}
		prio := func(tx model.TxnID) int64 { return prios[tx] }
		m := NewManager()
		for op := 0; op < 300; op++ {
			tx := txns[rng.Intn(len(txns))]
			if rng.Intn(6) == 0 {
				m.Release(tx)
				continue
			}
			x := entities[rng.Intn(len(entities))]
			holderBefore := model.TxnID("")
			for _, cand := range txns {
				if m.Holds(cand, x) {
					holderBefore = cand
				}
			}
			out, victim := m.Acquire(tx, x, prio)
			switch out {
			case Granted:
				if holderBefore != "" && holderBefore != tx {
					t.Fatalf("seed=%d op=%d: granted %s to %s over holder %s", seed, op, x, tx, holderBefore)
				}
				if !m.Holds(tx, x) {
					t.Fatalf("seed=%d op=%d: Granted but not holding", seed, op)
				}
			case Wound:
				if victim != holderBefore {
					t.Fatalf("seed=%d op=%d: wound victim %s is not the holder %s", seed, op, victim, holderBefore)
				}
				if prio(tx) >= prio(victim) {
					t.Fatalf("seed=%d op=%d: %s (prio %d) wounded non-younger %s (prio %d)",
						seed, op, tx, prio(tx), victim, prio(victim))
				}
				// The caller's contract: abort the victim, then retry wins.
				m.Release(victim)
				if got, _ := m.TryAcquire(tx, x); !got {
					t.Fatalf("seed=%d op=%d: retry after wounding failed", seed, op)
				}
			case Wait:
				if holderBefore == "" || holderBefore == tx {
					t.Fatalf("seed=%d op=%d: told to wait on a free/self lock", seed, op)
				}
				if prio(tx) < prio(holderBefore) {
					t.Fatalf("seed=%d op=%d: strictly older %s waited on %s", seed, op, tx, holderBefore)
				}
			}
		}
	}
}
