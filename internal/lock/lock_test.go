package lock

import (
	"testing"

	"mla/internal/model"
)

func prios(m map[model.TxnID]int64) func(model.TxnID) int64 {
	return func(t model.TxnID) int64 { return m[t] }
}

func TestAcquireGrantAndReentry(t *testing.T) {
	m := NewManager()
	p := prios(map[model.TxnID]int64{"t1": 1, "t2": 2})
	if out, _ := m.Acquire("t1", "x", p); out != Granted {
		t.Fatal("free lock must grant")
	}
	if out, _ := m.Acquire("t1", "x", p); out != Granted {
		t.Fatal("re-acquire by holder must grant")
	}
	if !m.Holds("t1", "x") {
		t.Error("Holds must report the holder")
	}
}

func TestWoundWaitPolicy(t *testing.T) {
	m := NewManager()
	p := prios(map[model.TxnID]int64{"old": 1, "young": 9})
	m.Acquire("young", "x", p)
	// Older requester wounds the younger holder.
	out, victim := m.Acquire("old", "x", p)
	if out != Wound || victim != "young" {
		t.Fatalf("out=%v victim=%v", out, victim)
	}
	// Younger requester waits for the older holder.
	m2 := NewManager()
	m2.Acquire("old", "x", p)
	out, _ = m2.Acquire("young", "x", p)
	if out != Wait {
		t.Fatalf("young vs old: out=%v", out)
	}
}

func TestReleaseFreesAll(t *testing.T) {
	m := NewManager()
	p := prios(map[model.TxnID]int64{"t1": 1, "t2": 2})
	m.Acquire("t1", "x", p)
	m.Acquire("t1", "y", p)
	if m.Locked() != 2 {
		t.Fatalf("locked = %d", m.Locked())
	}
	m.Release("t1")
	if m.Locked() != 0 {
		t.Fatalf("locked after release = %d", m.Locked())
	}
	if out, _ := m.Acquire("t2", "x", p); out != Granted {
		t.Error("released lock must be acquirable")
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	m := NewManager()
	m.Release("ghost") // must not panic
	if m.Locked() != 0 {
		t.Error("phantom locks appeared")
	}
}
