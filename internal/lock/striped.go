package lock

import (
	"sync"

	"mla/internal/model"
)

// Striped is the entity-hashed, sharded lock manager: N independent lock
// tables, each behind its own mutex. Every entity maps to exactly one shard,
// so a decision about x involves only x's shard — requests on entities in
// different shards proceed in parallel with no shared cache line beyond the
// shard array itself. Semantics are identical to Manager's (each shard IS a
// Manager); the wound-wait priority rule, single-holder, and
// wound-only-strictly-younger properties all hold per shard and therefore
// globally, because no lock state spans shards.
//
// Striped is safe for concurrent use. The prio callback passed to Acquire is
// invoked while the shard mutex is held; it must not call back into the
// manager.
type Striped struct {
	shards []stripe
	mask   uint32
}

type stripe struct {
	mu sync.Mutex
	m  *Manager
	_  [40]byte // pad to a cache line so shard mutexes don't false-share
}

// NewStriped returns a manager with the given number of shards, rounded up
// to a power of two (minimum 1).
func NewStriped(shards int) *Striped {
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Striped{shards: make([]stripe, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i].m = NewManager()
	}
	return s
}

// Shards returns the shard count.
func (s *Striped) Shards() int { return len(s.shards) }

// shardOf hashes an entity to its shard (FNV-1a).
func (s *Striped) shardOf(x model.EntityID) *stripe {
	h := uint32(2166136261)
	for i := 0; i < len(x); i++ {
		h = (h ^ uint32(x[i])) * 16777619
	}
	return &s.shards[h&s.mask]
}

// Acquire attempts to take the exclusive lock on x for t under the
// wound-wait rule; see Manager.Acquire. Only x's shard is locked.
func (s *Striped) Acquire(t model.TxnID, x model.EntityID, prio func(model.TxnID) int64) (Outcome, model.TxnID) {
	sh := s.shardOf(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Acquire(t, x, prio)
}

// TryAcquire takes the lock when free or already held by t; see
// Manager.TryAcquire.
func (s *Striped) TryAcquire(t model.TxnID, x model.EntityID) (bool, model.TxnID) {
	sh := s.shardOf(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.TryAcquire(t, x)
}

// Holds reports whether t holds the lock on x.
func (s *Striped) Holds(t model.TxnID, x model.EntityID) bool {
	sh := s.shardOf(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Holds(t, x)
}

// Release frees every lock held by t across all shards (strict 2PL). Each
// shard's work is O(locks t holds there); shards where t holds nothing cost
// one uncontended lock/unlock.
func (s *Striped) Release(t model.TxnID) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m.Release(t)
		sh.mu.Unlock()
	}
}

// Locked returns the number of currently locked entities, summed over
// shards. The count is a consistent-per-shard snapshot, not a global one:
// concurrent acquisitions may land between shard reads.
func (s *Striped) Locked() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m.holder)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot returns a value-copy of the table's counters summed over shards;
// see Stats for the immutability contract. Holders counts per-shard holder
// entries, so a transaction holding locks in k shards contributes k.
func (s *Striped) Snapshot() Stats {
	out := Stats{Shards: len(s.shards)}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.Locked += len(sh.m.holder)
		out.Holders += len(sh.m.held)
		sh.mu.Unlock()
	}
	return out
}
