package lock

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mla/internal/model"
)

// locker is the surface shared by Manager and Striped, letting the property
// tests run identically against both.
type locker interface {
	Acquire(model.TxnID, model.EntityID, func(model.TxnID) int64) (Outcome, model.TxnID)
	TryAcquire(model.TxnID, model.EntityID) (bool, model.TxnID)
	Holds(model.TxnID, model.EntityID) bool
	Release(model.TxnID)
	Locked() int
	Snapshot() Stats
}

// TestStripedPropertyExclusiveHolder reruns the exclusive-holder property
// against the sharded manager: seeded random acquire/release sequences, with
// the holder state cross-checked against a shadow table after every op. The
// entity set is wide enough to land in several shards, so the invariant is
// exercised both per shard and across shards.
func TestStripedPropertyExclusiveHolder(t *testing.T) {
	txns := make([]model.TxnID, 6)
	for i := range txns {
		txns[i] = model.TxnID(fmt.Sprintf("t%d", i))
	}
	entities := make([]model.EntityID, 12)
	for i := range entities {
		entities[i] = model.EntityID(fmt.Sprintf("e%d", i))
	}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewStriped(8)
		shadow := make(map[model.EntityID]model.TxnID)
		for op := 0; op < 400; op++ {
			tx := txns[rng.Intn(len(txns))]
			if rng.Intn(5) == 0 {
				m.Release(tx)
				for x, h := range shadow {
					if h == tx {
						delete(shadow, x)
					}
				}
			} else {
				x := entities[rng.Intn(len(entities))]
				ok, holder := m.TryAcquire(tx, x)
				prev, locked := shadow[x]
				if ok {
					if locked && prev != tx {
						t.Fatalf("seed=%d op=%d: %s granted %s while %s held it", seed, op, x, tx, prev)
					}
					shadow[x] = tx
				} else {
					if !locked {
						t.Fatalf("seed=%d op=%d: free entity %s refused %s", seed, op, x, tx)
					}
					if holder != prev {
						t.Fatalf("seed=%d op=%d: reported holder %s, shadow says %s", seed, op, holder, prev)
					}
				}
			}
			holders := make(map[model.EntityID]model.TxnID)
			for _, tx := range txns {
				for _, x := range entities {
					if m.Holds(tx, x) {
						if other, dup := holders[x]; dup {
							t.Fatalf("seed=%d op=%d: %s held by both %s and %s", seed, op, x, other, tx)
						}
						holders[x] = tx
					}
				}
			}
			if len(holders) != len(shadow) {
				t.Fatalf("seed=%d op=%d: manager holds %d entities, shadow %d", seed, op, len(holders), len(shadow))
			}
			for x, h := range shadow {
				if holders[x] != h {
					t.Fatalf("seed=%d op=%d: %s holder %s, shadow %s", seed, op, x, holders[x], h)
				}
			}
			if m.Locked() != len(shadow) {
				t.Fatalf("seed=%d op=%d: Locked()=%d, shadow %d", seed, op, m.Locked(), len(shadow))
			}
		}
	}
}

// TestStripedPropertyWoundOnlyStrictlyYounger reruns the wound-wait property
// against the sharded manager: Wound only when the requester is strictly
// older than the named victim, and the victim is the actual holder.
func TestStripedPropertyWoundOnlyStrictlyYounger(t *testing.T) {
	txns := make([]model.TxnID, 8)
	for i := range txns {
		txns[i] = model.TxnID(fmt.Sprintf("t%d", i))
	}
	entities := make([]model.EntityID, 9)
	for i := range entities {
		entities[i] = model.EntityID(fmt.Sprintf("e%d", i))
	}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prioTable := make(map[model.TxnID]int64)
		for _, tx := range txns {
			prioTable[tx] = int64(rng.Intn(4))
		}
		prio := func(tx model.TxnID) int64 { return prioTable[tx] }
		m := NewStriped(8)
		for op := 0; op < 300; op++ {
			tx := txns[rng.Intn(len(txns))]
			if rng.Intn(6) == 0 {
				m.Release(tx)
				continue
			}
			x := entities[rng.Intn(len(entities))]
			holderBefore := model.TxnID("")
			for _, cand := range txns {
				if m.Holds(cand, x) {
					holderBefore = cand
				}
			}
			out, victim := m.Acquire(tx, x, prio)
			switch out {
			case Granted:
				if holderBefore != "" && holderBefore != tx {
					t.Fatalf("seed=%d op=%d: granted %s to %s over holder %s", seed, op, x, tx, holderBefore)
				}
				if !m.Holds(tx, x) {
					t.Fatalf("seed=%d op=%d: Granted but not holding", seed, op)
				}
			case Wound:
				if victim != holderBefore {
					t.Fatalf("seed=%d op=%d: wound victim %s is not the holder %s", seed, op, victim, holderBefore)
				}
				if prio(tx) >= prio(victim) {
					t.Fatalf("seed=%d op=%d: %s (prio %d) wounded non-younger %s (prio %d)",
						seed, op, tx, prio(tx), victim, prio(victim))
				}
				m.Release(victim)
				if got, _ := m.TryAcquire(tx, x); !got {
					t.Fatalf("seed=%d op=%d: retry after wounding failed", seed, op)
				}
			case Wait:
				if holderBefore == "" || holderBefore == tx {
					t.Fatalf("seed=%d op=%d: told to wait on a free/self lock", seed, op)
				}
				if prio(tx) < prio(holderBefore) {
					t.Fatalf("seed=%d op=%d: strictly older %s waited on %s", seed, op, tx, holderBefore)
				}
			}
		}
	}
}

// TestStripedDecisionEquivalence pins the claim in the package doc: on the
// same serial request sequence, a Striped manager makes byte-for-byte the
// decisions an unsharded Manager makes — striping changes where state lives,
// never what is decided. Every outcome (grant/wait/wound, reported holders,
// victims, lock counts) is appended to a decision log per manager and the
// logs are compared.
func TestStripedDecisionEquivalence(t *testing.T) {
	txns := make([]model.TxnID, 7)
	for i := range txns {
		txns[i] = model.TxnID(fmt.Sprintf("t%d", i))
	}
	entities := make([]model.EntityID, 16)
	for i := range entities {
		entities[i] = model.EntityID(fmt.Sprintf("acct-%d", i))
	}
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prioTable := make(map[model.TxnID]int64)
		for i, tx := range txns {
			prioTable[tx] = int64(i)
		}
		prio := func(tx model.TxnID) int64 { return prioTable[tx] }
		mgrs := []locker{NewManager(), NewStriped(1), NewStriped(8)}
		logs := make([][]string, len(mgrs))
		for op := 0; op < 500; op++ {
			kind := rng.Intn(10)
			tx := txns[rng.Intn(len(txns))]
			x := entities[rng.Intn(len(entities))]
			for i, m := range mgrs {
				var entry string
				switch {
				case kind == 0:
					m.Release(tx)
					entry = fmt.Sprintf("release %s locked=%d", tx, m.Locked())
				case kind <= 5:
					out, victim := m.Acquire(tx, x, prio)
					entry = fmt.Sprintf("acquire %s %s -> %d %s", tx, x, out, victim)
				default:
					ok, holder := m.TryAcquire(tx, x)
					entry = fmt.Sprintf("try %s %s -> %v %s", tx, x, ok, holder)
				}
				logs[i] = append(logs[i], entry)
			}
		}
		for i := 1; i < len(mgrs); i++ {
			for j := range logs[0] {
				if logs[i][j] != logs[0][j] {
					t.Fatalf("seed=%d op=%d: manager %d diverged from unsharded:\n  unsharded: %s\n  striped:   %s",
						seed, j, i, logs[0][j], logs[i][j])
				}
			}
			a, b := mgrs[0].Snapshot(), mgrs[i].Snapshot()
			if a.Locked != b.Locked {
				t.Fatalf("seed=%d: final Locked %d vs %d", seed, a.Locked, b.Locked)
			}
		}
	}
}

// distinctShardEntities returns n entities that hash to n pairwise-distinct
// shards of s, so tests can construct conflicts that provably span shards.
func distinctShardEntities(t *testing.T, s *Striped, n int) []model.EntityID {
	t.Helper()
	used := make(map[*stripe]bool)
	var out []model.EntityID
	for i := 0; len(out) < n && i < 10000; i++ {
		x := model.EntityID(fmt.Sprintf("entity-%d", i))
		sh := s.shardOf(x)
		if !used[sh] {
			used[sh] = true
			out = append(out, x)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d entities in distinct shards", n)
	}
	return out
}

// TestCrossShardDeadlockWounded builds the classic wait-for cycle across
// three transactions whose locks live in three different shards — t0 holds
// e0 wants e1, t1 holds e1 wants e2, t2 holds e2 wants e0 — and checks that
// wound-wait still breaks it even though no single shard can see the cycle.
// That is the point of wound-wait under striping: deadlock freedom comes
// from the priority order (a transaction only ever waits for strictly older
// ones, so wait chains cannot close into cycles), not from any global
// wait-graph, so sharding the table loses nothing. The driver retries each
// transaction until all three finish and asserts (a) the run terminates,
// (b) at least one wound occurred, (c) every victim was strictly younger
// than its wounder, and (d) the oldest transaction was never wounded.
func TestCrossShardDeadlockWounded(t *testing.T) {
	s := NewStriped(8)
	ents := distinctShardEntities(t, s, 3)
	txns := []model.TxnID{"t-old", "t-mid", "t-young"}
	prioTable := map[model.TxnID]int64{"t-old": 0, "t-mid": 1, "t-young": 2}
	prio := func(tx model.TxnID) int64 { return prioTable[tx] }

	// wants[i] is txn i's acquisition list: its own entity, then the next
	// txn's — the cyclic hold-and-wait pattern.
	wants := [][]model.EntityID{
		{ents[0], ents[1]},
		{ents[1], ents[2]},
		{ents[2], ents[0]},
	}
	progress := make([]int, 3)
	done := make([]bool, 3)
	wounds := 0
	for round := 0; round < 100; round++ {
		alldone := true
		for i, tx := range txns {
			if done[i] {
				continue
			}
			alldone = false
		retry:
			out, victim := s.Acquire(tx, wants[i][progress[i]], prio)
			switch out {
			case Granted:
				progress[i]++
				if progress[i] == len(wants[i]) {
					done[i] = true
					s.Release(tx)
				}
			case Wound:
				wounds++
				if prio(tx) >= prio(victim) {
					t.Fatalf("%s (prio %d) wounded non-younger %s (prio %d)", tx, prio(tx), victim, prio(victim))
				}
				if victim == "t-old" {
					t.Fatalf("oldest transaction was wounded")
				}
				// Abort the victim (release its locks, restart its program),
				// then the wounder retries at once — that immediate retry is
				// the wound-wait contract; without it the victim could
				// re-grab the lock first and the pair would livelock.
				s.Release(victim)
				for j, v := range txns {
					if v == victim {
						progress[j] = 0
					}
				}
				goto retry
			case Wait:
				// Retry next round.
			}
		}
		if alldone {
			if wounds == 0 {
				t.Fatal("cycle spanning 3 shards completed without any wound — conflicts never materialized")
			}
			if s.Locked() != 0 {
				t.Fatalf("locks leaked: %d", s.Locked())
			}
			return
		}
	}
	t.Fatalf("cross-shard cycle did not resolve in 100 rounds: progress=%v done=%v", progress, done)
}

// TestStripedConcurrentHammer drives the sharded manager from many
// goroutines at once — the race detector checks the locking discipline, and
// the final state must be empty once every worker has released.
func TestStripedConcurrentHammer(t *testing.T) {
	s := NewStriped(8)
	entities := make([]model.EntityID, 32)
	for i := range entities {
		entities[i] = model.EntityID(fmt.Sprintf("e%d", i))
	}
	prio := func(tx model.TxnID) int64 {
		var n int64
		fmt.Sscanf(string(tx), "w%d", &n)
		return n
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := model.TxnID(fmt.Sprintf("w%d", w))
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for op := 0; op < 2000; op++ {
				x := entities[rng.Intn(len(entities))]
				out, victim := s.Acquire(tx, x, prio)
				if out == Wound && victim == tx {
					panic("self-wound")
				}
				if rng.Intn(4) == 0 {
					s.Release(tx)
				}
				_ = s.Snapshot()
			}
			s.Release(tx)
		}(w)
	}
	wg.Wait()
	if got := s.Locked(); got != 0 {
		t.Fatalf("locks leaked after all releases: %d", got)
	}
	if st := s.Snapshot(); st.Holders != 0 || st.Locked != 0 {
		t.Fatalf("non-empty final snapshot: %+v", st)
	}
}
