// Package lock provides the exclusive per-entity lock manager used by the
// strict two-phase-locking baseline [EGLT]. In the paper's model every step
// is an atomic read-modify-write, so all locks are exclusive; there is no
// shared mode. Deadlocks are resolved by wound-wait: an older requester
// wounds (aborts) a younger holder, a younger requester waits.
package lock

import "mla/internal/model"

// Outcome of an acquisition attempt.
type Outcome int

const (
	// Granted: the requester now holds the lock.
	Granted Outcome = iota
	// Wait: a higher-priority transaction holds the lock; retry later.
	Wait
	// Wound: the holder is younger; the caller must abort the returned
	// victim and retry.
	Wound
)

// Manager tracks exclusive entity locks.
type Manager struct {
	holder map[model.EntityID]model.TxnID
	held   map[model.TxnID]map[model.EntityID]bool
}

// NewManager returns an empty lock table.
func NewManager() *Manager {
	return &Manager{
		holder: make(map[model.EntityID]model.TxnID),
		held:   make(map[model.TxnID]map[model.EntityID]bool),
	}
}

// Acquire attempts to take the exclusive lock on x for t. prio returns a
// transaction's priority; smaller values are older (higher priority). On
// Wound, victim is the current holder, which the caller must abort (its
// locks are released by Release) before retrying.
func (m *Manager) Acquire(t model.TxnID, x model.EntityID, prio func(model.TxnID) int64) (Outcome, model.TxnID) {
	ok, h := m.TryAcquire(t, x)
	if ok {
		return Granted, ""
	}
	if prio(t) < prio(h) {
		return Wound, h
	}
	return Wait, h
}

// TryAcquire takes the lock when it is free or already held by t, otherwise
// reporting the current holder. Callers that prefer deadlock detection over
// wound-wait use this directly.
func (m *Manager) TryAcquire(t model.TxnID, x model.EntityID) (bool, model.TxnID) {
	h, locked := m.holder[x]
	if !locked || h == t {
		m.holder[x] = t
		if m.held[t] == nil {
			m.held[t] = make(map[model.EntityID]bool)
		}
		m.held[t][x] = true
		return true, ""
	}
	return false, h
}

// Holds reports whether t holds the lock on x.
func (m *Manager) Holds(t model.TxnID, x model.EntityID) bool {
	return m.holder[x] == t
}

// Release frees every lock held by t (commit or abort — strict 2PL).
func (m *Manager) Release(t model.TxnID) {
	for x := range m.held[t] {
		if m.holder[x] == t {
			delete(m.holder, x)
		}
	}
	delete(m.held, t)
}

// Locked returns the number of currently locked entities.
func (m *Manager) Locked() int { return len(m.holder) }
