// Package lock provides the exclusive per-entity lock managers used by the
// strict two-phase-locking baselines [EGLT]. In the paper's model every step
// is an atomic read-modify-write, so all locks are exclusive; there is no
// shared mode. Deadlocks are resolved by wound-wait: an older requester
// wounds (aborts) a younger holder, a younger requester waits.
//
// Two managers share one semantics:
//
//   - Manager is the single-table manager. It is not safe for concurrent
//     use; the simulator and the single-mutex controls drive it serially.
//   - Striped shards the table by entity hash with one mutex per shard, so
//     independent entities take independent locks — the concurrent engine's
//     hot path. Because every entity lives in exactly one shard and shards
//     share no state, a Striped manager makes precisely the decisions a
//     Manager would on the same request sequence (pinned by
//     TestStripedDecisionEquivalence).
package lock

import "mla/internal/model"

// Outcome of an acquisition attempt.
type Outcome int

const (
	// Granted: the requester now holds the lock.
	Granted Outcome = iota
	// Wait: a higher-priority transaction holds the lock; retry later.
	Wait
	// Wound: the holder is younger; the caller must abort the returned
	// victim and retry.
	Wound
)

// Stats is a point-in-time snapshot of a lock table, returned by the
// Snapshot methods. Like every Snapshot() in this codebase (sched, wal,
// net), the returned struct is a value copy: it never aliases live state,
// stays valid forever, and mutating it has no effect on the manager.
type Stats struct {
	// Locked is the number of currently locked entities.
	Locked int
	// Holders is the number of transactions holding at least one lock.
	Holders int
	// Shards is the stripe count (1 for the unsharded Manager).
	Shards int
}

// Manager tracks exclusive entity locks. The zero value is not usable; call
// NewManager.
type Manager struct {
	holder map[model.EntityID]model.TxnID
	// held indexes holder→entities so Release is O(locks held), not
	// O(table size): the slice lists every entity t ever acquired in its
	// current lock epoch, appended once per first acquisition (re-acquiring
	// a held lock appends nothing, so there are no duplicates).
	held map[model.TxnID][]model.EntityID
	// free recycles held-index slices released by retired transactions, so
	// the steady-state lock path of a long run allocates no per-transaction
	// slices (a fresh holder would otherwise pay one per first acquisition
	// plus growth).
	free [][]model.EntityID
}

// maxFreeHeld caps the recycled-slice pool; beyond it, slices are left to
// the GC (the pool only needs to cover peak concurrent holders).
const maxFreeHeld = 64

// NewManager returns an empty lock table.
func NewManager() *Manager {
	return &Manager{
		holder: make(map[model.EntityID]model.TxnID),
		held:   make(map[model.TxnID][]model.EntityID),
	}
}

// Acquire attempts to take the exclusive lock on x for t. prio returns a
// transaction's priority; smaller values are older (higher priority). On
// Wound, victim is the current holder, which the caller must abort (its
// locks are released by Release) before retrying.
func (m *Manager) Acquire(t model.TxnID, x model.EntityID, prio func(model.TxnID) int64) (Outcome, model.TxnID) {
	ok, h := m.TryAcquire(t, x)
	if ok {
		return Granted, ""
	}
	if prio(t) < prio(h) {
		return Wound, h
	}
	return Wait, h
}

// TryAcquire takes the lock when it is free or already held by t, otherwise
// reporting the current holder. Callers that prefer deadlock detection over
// wound-wait use this directly.
func (m *Manager) TryAcquire(t model.TxnID, x model.EntityID) (bool, model.TxnID) {
	h, locked := m.holder[x]
	if locked {
		if h == t {
			return true, ""
		}
		return false, h
	}
	m.holder[x] = t
	hs, have := m.held[t]
	if !have && len(m.free) > 0 {
		hs = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
	}
	m.held[t] = append(hs, x)
	return true, ""
}

// Holds reports whether t holds the lock on x.
func (m *Manager) Holds(t model.TxnID, x model.EntityID) bool {
	return m.holder[x] == t
}

// HolderOf returns the current holder of x ("" when unlocked). Deadlock
// probes chase waits-for edges with it: the edge from a waiter leads to
// whoever holds the entity it is blocked on.
func (m *Manager) HolderOf(x model.EntityID) model.TxnID { return m.holder[x] }

// Release frees every lock held by t (commit or abort — strict 2PL). It
// walks only t's own held index, so the cost is proportional to the locks
// released, independent of the table size (BenchmarkReleaseManyHolders
// pins this).
func (m *Manager) Release(t model.TxnID) {
	hs, have := m.held[t]
	if !have {
		return
	}
	for _, x := range hs {
		if m.holder[x] == t {
			delete(m.holder, x)
		}
	}
	delete(m.held, t)
	if cap(hs) > 0 && len(m.free) < maxFreeHeld {
		clear(hs) // drop entity-string references before pooling
		m.free = append(m.free, hs[:0])
	}
}

// Locked returns the number of currently locked entities.
func (m *Manager) Locked() int { return len(m.holder) }

// Snapshot returns a value-copy of the table's counters; see Stats for the
// immutability contract.
func (m *Manager) Snapshot() Stats {
	return Stats{Locked: len(m.holder), Holders: len(m.held), Shards: 1}
}
