package lock

import (
	"fmt"
	"sync/atomic"
	"testing"

	"mla/internal/model"
)

// BenchmarkReleaseManyHolders pins the O(held) release fix: releasing one
// transaction's handful of locks must not scale with the number of OTHER
// transactions holding locks in the table. Before the holder→entities index,
// Release walked the whole holder map, so this benchmark degraded linearly
// in the holder population.
func BenchmarkReleaseManyHolders(b *testing.B) {
	for _, holders := range []int{16, 1024, 16384} {
		b.Run(fmt.Sprintf("holders=%d", holders), func(b *testing.B) {
			m := NewManager()
			for i := 0; i < holders; i++ {
				tx := model.TxnID(fmt.Sprintf("bg-%d", i))
				m.TryAcquire(tx, model.EntityID(fmt.Sprintf("bg-ent-%d", i)))
			}
			hot := model.TxnID("hot")
			ents := []model.EntityID{"h0", "h1", "h2", "h3"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range ents {
					m.TryAcquire(hot, x)
				}
				m.Release(hot)
			}
		})
	}
}

// BenchmarkStripedAcquireRelease compares the sharded manager's uncontended
// acquire/release path across stripe counts; more stripes should not make
// the serial path slower.
func BenchmarkStripedAcquireRelease(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := NewStriped(shards)
			tx := model.TxnID("t")
			ents := []model.EntityID{"a", "b", "c", "d"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range ents {
					s.TryAcquire(tx, x)
				}
				s.Release(tx)
			}
		})
	}
}

// BenchmarkStripedParallel measures the point of striping: disjoint-entity
// workloads from parallel goroutines contend on shard mutexes, so 8 shards
// should scale where 1 shard serializes.
func BenchmarkStripedParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := NewStriped(shards)
			var ctr atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				id := ctr.Add(1)
				tx := model.TxnID(fmt.Sprintf("t%d", id))
				ents := make([]model.EntityID, 4)
				for i := range ents {
					ents[i] = model.EntityID(fmt.Sprintf("w%d-e%d", id, i))
				}
				for pb.Next() {
					for _, x := range ents {
						s.TryAcquire(tx, x)
					}
					s.Release(tx)
				}
			})
		})
	}
}
