package conv

import (
	"testing"

	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/serial"
	"mla/internal/sim"
)

// TestConversationProtocolInterleaved drives one conversation by hand with
// a perfectly alternating schedule: both parties complete and the recorded
// execution is multilevel atomic but not conflict serializable.
func TestConversationProtocolInterleaved(t *testing.T) {
	wl := Generate(Params{Conversations: 1, Rounds: 2, PollCap: 10, Seed: 1})
	// Identify initiator (index) and responder.
	var ini, resp int
	for i, p := range wl.Programs {
		if wl.parties[p.ID()].Initiator {
			ini = i
		} else {
			resp = i
		}
	}
	// Per round: initiator send, responder recv+reply, initiator recv;
	// finally both record.
	var order []int
	for r := 0; r < 2; r++ {
		order = append(order, ini, resp, ini)
	}
	order = append(order, ini, resp)
	vals := map[model.EntityID]model.Value{}
	for k, v := range wl.Init {
		vals[k] = v
	}
	e, err := model.Interleave(wl.Programs, vals, order, false)
	if err != nil {
		t.Fatal(err)
	}
	out := wl.Check(vals)
	if out.Completed != 2 || out.Failed != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	atomic, err := coherent.MultilevelAtomic(e, wl.Nest, wl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !atomic {
		t.Error("an alternating conversation must be multilevel atomic")
	}
	if serial.Serializable(e) {
		t.Error("a completed conversation must NOT be conflict serializable")
	}
}

// TestConversationsUnderControls: the MLA controls complete every
// conversation; the serializable baselines complete none — the paper's
// point that some applications require non-serializable interleaving.
func TestConversationsUnderControls(t *testing.T) {
	for _, tc := range []struct {
		name         string
		wantComplete bool
		mayStall     bool
	}{
		{"prevent", true, false},
		{"detect", true, false},
		{"serial", false, false},
		{"2pl", false, false},
		{"tso", false, true},
	} {
		wl := Generate(DefaultParams())
		var c sched.Control
		switch tc.name {
		case "prevent":
			c = sched.NewPreventer(wl.Nest, wl.Spec)
		case "detect":
			c = sched.NewDetector(wl.Nest, wl.Spec)
		case "serial":
			c = sched.NewSerial()
		case "2pl":
			c = sched.NewTwoPhase()
		case "tso":
			c = sched.NewTimestamp()
		}
		cfg := sim.DefaultConfig()
		cfg.MaxTime = 300000
		res, err := sim.Run(cfg, wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			if tc.mayStall {
				continue // timestamp ordering livelocks on conversations
			}
			t.Fatalf("%s: %v", tc.name, err)
		}
		out := wl.Check(res.Final)
		total := out.Completed + out.Failed
		if tc.wantComplete && out.Completed != total {
			t.Errorf("%s: completed %d/%d, want all", tc.name, out.Completed, total)
		}
		if !tc.wantComplete && out.Completed != 0 {
			t.Errorf("%s: completed %d/%d, want none (serializable controls cannot converse)",
				tc.name, out.Completed, total)
		}
		// MLA runs must also be correctable.
		if tc.name == "prevent" || tc.name == "detect" {
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("%s: non-correctable execution", tc.name)
			}
		}
	}
}

func TestExpectedSum(t *testing.T) {
	p := &Party{Rounds: 3, Initiator: true}
	if p.ExpectedSum() != 2+4+6 {
		t.Errorf("initiator sum = %d", p.ExpectedSum())
	}
	p.Initiator = false
	if p.ExpectedSum() != 1+3+5 {
		t.Errorf("responder sum = %d", p.ExpectedSum())
	}
}

func TestGenerateShape(t *testing.T) {
	wl := Generate(Params{Conversations: 3, Rounds: 2, PollCap: 5, Seed: 9})
	if len(wl.Programs) != 6 {
		t.Fatalf("programs = %d", len(wl.Programs))
	}
	// Partners share a level-2 class; strangers relate at level 1.
	if wl.Nest.Level("conv-00-init", "conv-00-resp") != 2 {
		t.Error("partners must be level 2")
	}
	if wl.Nest.Level("conv-00-init", "conv-01-resp") != 1 {
		t.Error("strangers must be level 1")
	}
	// Determinism.
	wl2 := Generate(Params{Conversations: 3, Rounds: 2, PollCap: 5, Seed: 9})
	for i := range wl.Programs {
		if wl.Programs[i].ID() != wl2.Programs[i].ID() {
			t.Fatal("not deterministic")
		}
	}
}

func TestPollCapFailsCleanly(t *testing.T) {
	// A responder alone (initiator never sends) gives up and records -1.
	wl := Generate(Params{Conversations: 1, Rounds: 1, PollCap: 3, Seed: 1})
	var resp model.Program
	for _, p := range wl.Programs {
		if !wl.parties[p.ID()].Initiator {
			resp = p
		}
	}
	vals := map[model.EntityID]model.Value{}
	for k, v := range wl.Init {
		vals[k] = v
	}
	if _, err := model.RunSerial([]model.Program{resp}, vals); err != nil {
		t.Fatal(err)
	}
	if vals[wl.parties[resp.ID()].Result] != -1 {
		t.Errorf("result = %d, want -1", vals[wl.parties[resp.ID()].Result])
	}
}
