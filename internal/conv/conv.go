// Package conv implements conversations between transactions — the
// application class the paper points to in Section 7 ("for modelling many
// situations of interest (multilevel atomicity, conversations between
// transactions [Ra]), it will be necessary for the logical program
// structure to be different from the atomicity structure").
//
// A conversation is a pair of transactions exchanging values through a
// shared mailbox entity in alternating turns. The information flow is
// cyclic by construction — the initiator's later steps depend on the
// responder's reply and vice versa — so a completed conversation is *never*
// conflict serializable. It is, however, perfectly multilevel atomic: the
// two parties form one π(2) class whose members interleave freely, while
// the conversation as a whole remains atomic with respect to everyone else.
// Serializable controls cannot run conversations at all: under 2PL the
// first poller holds the mailbox until transaction end and the partner can
// never reply; under timestamp ordering the initiator aborts on reading the
// reply and can never catch up after restarting. Experiment E15 measures
// exactly this.
//
// Parties poll the mailbox (conditional branching on the observed value —
// the paper's transactions may branch and even run forever; polling is
// capped so failed conversations terminate and report). Timestamp ordering
// is worse than failing: the initiator's read of the reply always carries a
// too-old timestamp, and the resulting abort cascades to the responder,
// resetting the conversation — a genuine livelock that only ends at the
// simulator's horizon. E15 reports it as non-termination.
package conv

import (
	"fmt"
	"math/rand"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Party is one side of a conversation. The mailbox value encodes the turn:
// after round r (1-based), the initiator has written 2r-1 and the responder
// 2r. A party waiting for its turn re-reads the mailbox until the expected
// value appears or its poll budget is exhausted, then records the outcome
// in its Result entity: the sum of the values it received, or -1 on
// failure.
type Party struct {
	Txn       model.TxnID
	Mailbox   model.EntityID
	Result    model.EntityID
	Rounds    int
	Initiator bool
	PollCap   int
}

// ID implements model.Program.
func (p *Party) ID() model.TxnID { return p.Txn }

// Init implements model.Program.
func (p *Party) Init() model.ProgState { return convState{p: p, phase: 1} }

type convState struct {
	p       *Party
	phase   int // 1 converse, 2 record, 3 done (starts at 1)
	round   int // completed rounds
	polls   int
	sum     model.Value
	failed  bool
	waiting bool // waiting to observe the partner's turn value
}

func (s convState) Next() (model.EntityID, bool) {
	switch s.phase {
	case 1:
		return s.p.Mailbox, true
	case 2:
		return s.p.Result, true
	}
	return "", false
}

// expectations for the current round (0-based s.round):
//   - initiator: writes 2r+1 when mailbox == 2r, then waits for 2r+2.
//   - responder: waits for 2r+1, then writes 2r+2 (receiving 2r+1).
func (s convState) Apply(v model.Value) (model.Value, string, model.ProgState) {
	ns := s
	switch s.phase {
	case 2:
		ns.phase = 3
		if s.failed {
			return -1, "record", ns
		}
		return s.sum, "record", ns
	}

	// Conversing on the mailbox.
	r := model.Value(s.round)
	give := func(w model.Value, label string) (model.Value, string, model.ProgState) {
		ns.polls = 0
		return w, label, ns
	}
	if s.p.Initiator {
		if !s.waiting {
			if v == 2*r { // our turn: send the request
				ns.waiting = true
				return give(2*r+1, "send")
			}
		} else if v == 2*r+2 { // reply received
			ns.sum += v
			ns.waiting = false
			ns.round++
			if ns.round >= s.p.Rounds {
				ns.phase = 2
			}
			return give(v, "recv")
		}
	} else {
		if v == 2*r+1 { // request received: reply
			ns.sum += v
			ns.round++
			if ns.round >= s.p.Rounds {
				ns.phase = 2
			}
			return give(2*r+2, "reply")
		}
	}
	// Not our turn yet: poll.
	ns.polls++
	if ns.polls > s.p.PollCap {
		ns.failed = true
		ns.phase = 2
	}
	return v, "poll", ns
}

// Params configures a conversation workload.
type Params struct {
	Conversations int
	Rounds        int
	PollCap       int
	Seed          int64
}

// DefaultParams returns a small workload.
func DefaultParams() Params {
	return Params{Conversations: 4, Rounds: 3, PollCap: 60, Seed: 1}
}

// Workload bundles the programs and the 3-level specification: each
// conversation pair is one π(2) class with free internal interleaving
// (coarseness-2 boundaries everywhere); distinct conversations are mutually
// atomic.
type Workload struct {
	Params   Params
	Programs []model.Program
	Nest     *nest.Nest
	Spec     breakpoint.Spec
	Init     map[model.EntityID]model.Value

	parties map[model.TxnID]*Party
}

// Generate builds the workload.
func Generate(p Params) *Workload {
	rng := rand.New(rand.NewSource(p.Seed))
	wl := &Workload{
		Params:  p,
		Init:    map[model.EntityID]model.Value{},
		parties: make(map[model.TxnID]*Party),
	}
	n := nest.New(3)
	var programs []model.Program
	for c := 0; c < p.Conversations; c++ {
		mbox := model.EntityID(fmt.Sprintf("conv/%02d/mbox", c))
		wl.Init[mbox] = 0
		class := fmt.Sprintf("conv-%02d", c)
		for _, side := range []struct {
			name string
			init bool
		}{{"init", true}, {"resp", false}} {
			id := model.TxnID(fmt.Sprintf("conv-%02d-%s", c, side.name))
			party := &Party{
				Txn:       id,
				Mailbox:   mbox,
				Result:    model.EntityID("convres/" + string(id)),
				Rounds:    p.Rounds,
				Initiator: side.init,
				PollCap:   p.PollCap,
			}
			wl.Init[party.Result] = 0
			wl.parties[id] = party
			programs = append(programs, party)
			n.Add(id, class)
		}
	}
	rng.Shuffle(len(programs), func(i, j int) { programs[i], programs[j] = programs[j], programs[i] })
	wl.Programs = programs
	wl.Nest = n
	wl.Spec = breakpoint.Uniform{Levels: 3, C: 2}
	return wl
}

// ExpectedSum returns the checksum a successful party of the given side
// records: the initiator receives the even turn values, the responder the
// odd ones.
func (p *Party) ExpectedSum() model.Value {
	var sum model.Value
	for r := 0; r < p.Rounds; r++ {
		if p.Initiator {
			sum += model.Value(2*r + 2)
		} else {
			sum += model.Value(2*r + 1)
		}
	}
	return sum
}

// Outcome summarizes a run.
type Outcome struct {
	Completed int // parties that recorded their expected checksum
	Failed    int // parties that gave up (result -1) or recorded junk
}

// Check counts completed conversations from the final values.
func (wl *Workload) Check(final map[model.EntityID]model.Value) Outcome {
	var out Outcome
	for _, p := range wl.parties {
		if final[p.Result] == p.ExpectedSum() {
			out.Completed++
		} else {
			out.Failed++
		}
	}
	return out
}
