// Package engine executes transaction programs concurrently — one
// goroutine per transaction — under a pluggable concurrency control. It is
// the "real" counterpart of internal/sim's deterministic discrete-event
// simulator: the same Control interface, the same undo-log store, the same
// dependency-closed cascading rollback and group commit, but actual
// parallel execution with wall-clock timing. Runs are not deterministic;
// correctness is established per run by validating the surviving execution
// (value chains) and, in tests, by the offline Theorem 2 checker.
//
// Concurrency discipline: store and bookkeeping state is guarded by one
// engine mutex, making each performed step atomic exactly as the model
// requires. Control calls are serialized under that same mutex UNLESS the
// control declares the sched.Concurrent capability: then Request — the
// contended part, where lock waits and wound decisions happen — runs
// outside the engine mutex, on the control's own per-entity (per-shard)
// critical sections. That is sound exactly because such a control's
// decision provably depends only on the requested entity's state and the
// requester's fixed priority (see sched.ShardedTwoPhase); the engine
// revalidates the attempt afterwards and discards stale grants through the
// Releaser capability. Blocked transactions wait on a generation channel
// that is closed whenever any state changes; aborted transactions observe
// their bumped attempt counter, back off, and restart.
//
// Commit durability is synchronous by default (store.CommitGroup returns
// durable). A store that additionally implements AsyncCommitter (see
// PipelinedWALStore) gets group-commit pipelining: the engine submits the
// group, marks its members "committing", and a finalizer goroutine marks
// them committed only after the store acknowledges durability. Committing
// transactions are immune to abort and count as satisfied dependencies —
// safe because submission order bounds durability order.
//
// Run lifecycle: Run owns every goroutine it starts. The run ends when all
// transactions commit, the caller's context is cancelled, the configured
// timeout expires, or a worker fails; in every case Run closes a stop
// channel that all blocking points (generation waits, backoff sleeps,
// commit waits) select on, then joins the workers before returning. No
// goroutine outlives Run — the regression test counts them.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mla/internal/breakpoint"
	"mla/internal/fault"
	"mla/internal/metrics"
	"mla/internal/model"
	"mla/internal/sched"
)

// DefaultTimeout is the whole-run deadline applied when Config.Timeout is
// zero. It bounds a *batch* run (Run/RunOnStore/RunWithCrashes): long enough
// that no experiment in internal/bench ever hits it on a healthy machine,
// short enough that a livelocked or leaked run fails fast in CI instead of
// hanging a job. Resident sessions (NewSession) have no whole-run deadline —
// they are bounded per transaction by SubmitOpts.Deadline instead.
const DefaultTimeout = 30 * time.Second

// Config bounds a run.
type Config struct {
	// Timeout aborts the whole run if it has not completed; defaults to
	// DefaultTimeout. It composes with the caller's context: whichever
	// expires first stops the run. Ignored by resident sessions.
	Timeout time.Duration
	// BackoffBase is the initial restart backoff; defaults to 100µs.
	BackoffBase time.Duration
	// StepDelay simulates per-step service time (slept outside the engine
	// lock after each performed step), forcing real overlap between
	// transactions. Zero means full speed.
	StepDelay time.Duration
	// Seed drives backoff jitter.
	Seed int64
	// Observer, when non-nil, receives the run's lifecycle events (see
	// Observer); hooks are serialized under the engine mutex.
	Observer Observer

	// Faults, when non-nil, injects deterministic failures: transient step
	// errors the engine retries with capped exponential backoff, and — on
	// a WAL-backed store — crashes at configured append counts or after a
	// wall-clock budget (see internal/fault and RunWithCrashes).
	Faults *fault.Injector
	// MaxRestarts is the per-transaction restart budget: a transaction
	// rolled back more than this many times is parked and reported in
	// Result.GaveUp instead of livelocking the run. 0 means unlimited.
	MaxRestarts int
	// MaxStepRetries caps in-place retries of a transiently failing step
	// before the transaction aborts itself and restarts (consuming one
	// unit of the restart budget); defaults to 6.
	MaxStepRetries int
}

// Result mirrors sim.Result for the concurrent engine.
type Result struct {
	Exec         model.Execution
	Final        map[model.EntityID]model.Value
	Committed    int
	Aborts       int
	Cascades     int
	Restarts     int
	CommitGroups []int
	Elapsed      time.Duration

	// GaveUp counts transactions parked after exhausting the restart
	// budget (Config.MaxRestarts): graceful degradation instead of
	// livelock. A run with GaveUp > 0 completes without error; the parked
	// transactions simply contribute no steps.
	GaveUp int
	// DeadlineAborts counts rollbacks performed because a transaction's
	// per-submission deadline expired or its client context was cancelled
	// (resident sessions only; batch runs have no per-txn deadlines). Each
	// is also counted in Aborts/Restarts like any rollback — this is the
	// distinct cause sub-count, mirrored in sched.Stats.Deadlines for
	// controls with the DeadlineAborter capability.
	DeadlineAborts int
	// FaultsInjected counts transient step errors the fault injector
	// placed in this run (each was retried or escalated to a restart).
	FaultsInjected int

	// Latencies holds one sample per committed transaction: wall-clock
	// time from its first Begin to commit.
	Latencies []time.Duration
	// WaitTimes holds one sample per committed transaction: total
	// wall-clock time it spent blocked on Wait decisions (lock/closure
	// waits), summed across attempts.
	WaitTimes []time.Duration
}

// LatencySummary returns order statistics, in microseconds, over the
// per-transaction commit latencies.
func (r *Result) LatencySummary() metrics.Summary { return summarizeDurations(r.Latencies) }

// WaitSummary returns order statistics, in microseconds, over the
// per-transaction lock/closure wait times.
func (r *Result) WaitSummary() metrics.Summary { return summarizeDurations(r.WaitTimes) }

func summarizeDurations(ds []time.Duration) metrics.Summary {
	us := make([]int64, len(ds))
	for i, d := range ds {
		us[i] = d.Microseconds()
	}
	return metrics.Summarize(us)
}

type etxn struct {
	prog     model.Program
	id       model.TxnID
	attempt  int
	seq      int
	steps    []model.Step
	finished bool
	commit   bool
	// committing marks a transaction whose commit group was submitted to an
	// AsyncCommitter and is awaiting the durability ack. It is immune to
	// abort (its record may already be on the device) and counts as a
	// satisfied dependency for later groups (submission order bounds
	// durability order); the finalizer goroutine flips it to commit.
	committing bool
	gaveUp     bool // parked after exhausting the restart budget
	prio       int64
	deps       map[model.TxnID]bool
	began      time.Time     // first Begin, for commit latency
	waited     time.Duration // total time blocked on Wait decisions

	// lastCut is the coarseness of the breakpoint after the most recently
	// performed step of the current attempt (0 while mid-unit or before the
	// first step). Deadline aborts fire only when it is non-zero or no step
	// has been performed yet — i.e. at unit boundaries.
	lastCut int
	// killed records why the engine itself aborted the current attempt:
	// killDeadline (the submission deadline expired) or killCanceled (the
	// client's context was cancelled). The session run loop reads it to
	// stop restarting and report the outcome.
	killed int8
}

const (
	killNone int8 = iota
	killDeadline
	killCanceled
)

type engine struct {
	mu sync.Mutex
	// waitGen is the wait generation channel: a goroutine that must sleep
	// until engine state changes registers (waiters++) and captures waitGen
	// under the mutex, then sleeps on it. bump() closes and replaces the
	// channel ONLY when waiters > 0 — one close wakes every registered
	// sleeper at once (one wakeup per state change, not per waiter) and an
	// idle engine allocates no channels at all. genSeq increments on every
	// bump regardless, so the concurrent request path can detect that state
	// changed while its decision was being made outside the mutex (see
	// attempt) without anyone paying for a channel.
	waitGen chan struct{}
	waiters int
	genSeq  uint64
	stop    chan struct{} // closed exactly once when the run is abandoned or done

	control sched.Control
	caps    sched.Capabilities
	spec    breakpoint.Spec
	store   Store
	async   AsyncCommitter // non-nil when the store pipelines group commits
	cerr    CommitErrer    // non-nil when the store reports durable failures
	faults  *fault.Injector
	obs     Observer

	// asyncErr latches the first durable-medium failure reported through
	// cerr after an async-commit ack. Guarded by mu. Once set, no further
	// groups are submitted, waiters are woken (bump), and every commit
	// wait path surfaces the error instead of an ack.
	asyncErr error

	// committers tracks the commit-finalizer goroutine (one per run, fed
	// through finCh); RunOnStore joins it after the workers so no goroutine
	// outlives the run.
	committers sync.WaitGroup
	// finCh feeds submitted commit groups to the finalizer in submission
	// order. Buffered to the program count: groups are disjoint and each
	// transaction commits at most once per run, so a send under the engine
	// mutex can never block. Batch runs only — resident sessions have no
	// program count to size the buffer by, so they queue through finPending
	// instead (same single finalizer, same submission order).
	finCh chan asyncFin

	// resident marks an open-submission engine (NewSession): transactions
	// arrive and retire over time, so everything sized or accumulated "per
	// run" — finCh, order, the Result sample slices, the step trace — must
	// be bounded differently (see finPending, compactTraceLocked).
	resident bool
	// finPending queues submitted commit groups for the resident finalizer,
	// which drains it in append (= submission) order; finWake (1-buffered)
	// wakes the finalizer when the queue goes non-empty. Guarded by mu.
	finPending []asyncFin
	finWake    chan struct{}
	// traceCap is the resident trace-compaction threshold: when the step
	// trace reaches it, entries of committed/retired attempts are dropped
	// and the threshold is reset to twice the surviving length (amortized
	// O(1) per step, like slice growth).
	traceCap int

	txns   map[model.TxnID]*etxn
	order  []model.TxnID
	trace  []traceEntry
	author map[model.EntityID]model.TxnID

	// commitScratch is tryCommitLocked's candidate set, reused across calls
	// (always under mu, cleared on entry) so the commit probe that runs after
	// every finish allocates nothing when no group forms.
	commitScratch map[model.TxnID]bool
	// abortSet/abortCasc/abortFrontier are abortLocked's closure scratch,
	// reused the same way.
	abortSet      map[model.TxnID]bool
	abortCasc     map[model.TxnID]bool
	abortFrontier []model.TxnID
	abortNext     []model.TxnID
	// appliers recycles the per-attempt applier (program-state stepper +
	// its bound store callback) across attempts and transactions.
	appliers sync.Pool
	// txnPool recycles resident submissions' etxn records (with their deps
	// maps and steps slices) across the session's lifetime. Safe because a
	// retired record is unreachable: the transaction table maps by id, trace
	// entries carry ids, and the submission goroutine retires its record
	// only after its outcome resolved.
	txnPool sync.Pool

	stats       Result
	start       time.Time
	prioCounter int64
	rng         *rand.Rand
	rngMu       sync.Mutex
}

type traceEntry struct {
	id      model.TxnID
	attempt int
	step    model.Step
}

// asyncFin is one submitted commit group awaiting its durability ack.
type asyncFin struct {
	ack <-chan struct{}
	ids []model.TxnID
}

// applier carries one attempt's program state across store callbacks. The
// store's Perform takes a func(Value) (Value, string); building that func as
// a closure per step made every step pay two heap allocations (the closure
// and the escaping next-state variable). The applier is allocated once per
// attempt (from a pool, so in steady state not at all) and its bound method
// value fn is reused for every step of the attempt.
type applier struct {
	cur, next model.ProgState
	fn        func(model.Value) (model.Value, string)
}

func (a *applier) apply(v model.Value) (model.Value, string) {
	w, label, ns := a.cur.Apply(v)
	a.next = ns
	return w, label
}

func (e *engine) getApplier(cur model.ProgState) *applier {
	a, _ := e.appliers.Get().(*applier)
	if a == nil {
		a = &applier{}
		a.fn = a.apply
	}
	a.cur = cur
	return a
}

func (e *engine) putApplier(a *applier) {
	a.cur, a.next = nil, nil // don't retain program state across attempts
	e.appliers.Put(a)
}

// getTxn returns a fresh transaction record for a resident submission,
// recycling a retired one's deps map and steps slice when available.
func (e *engine) getTxn(p model.Program, id model.TxnID) *etxn {
	t, _ := e.txnPool.Get().(*etxn)
	if t == nil {
		return &etxn{prog: p, id: id, deps: make(map[model.TxnID]bool)}
	}
	steps, deps := t.steps[:0], t.deps
	clear(deps)
	*t = etxn{prog: p, id: id, steps: steps, deps: deps}
	return t
}

// putTxn recycles a retired record. Caller must have removed it from the
// transaction table first.
func (e *engine) putTxn(t *etxn) {
	t.prog = nil // don't retain the program across tenants
	e.txnPool.Put(t)
}

// errStopped is the workers' internal signal that the run was abandoned
// (cancellation, timeout, or another worker's failure). It never escapes
// Run.
var errStopped = errors.New("engine: run stopped")

// Run executes the programs concurrently to completion. Cancelling ctx (or
// exceeding cfg.Timeout, whichever comes first) stops every transaction
// goroutine deterministically; Run joins all of them before returning, so
// no goroutine it started outlives it.
func Run(ctx context.Context, cfg Config, programs []model.Program, control sched.Control, spec breakpoint.Spec, init map[model.EntityID]model.Value) (*Result, error) {
	res, err := RunOnStore(ctx, cfg, programs, control, spec, NewVolatileStore(init))
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunOnStore is Run against a caller-provided backend. Unlike Run it can
// return BOTH a result and an error: when the fault injector crashes the
// system (errors.Is(err, fault.ErrCrash)) the returned Result carries the
// partial run — the steps of transactions that committed before the crash —
// which RunWithCrashes stitches across recovery rounds. Every other error
// returns a nil Result.
func RunOnStore(ctx context.Context, cfg Config, programs []model.Program, control sched.Control, spec breakpoint.Spec, store Store) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 100 * time.Microsecond
	}
	if cfg.MaxStepRetries == 0 {
		cfg.MaxStepRetries = 6
	}
	tctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	cctx, crash := context.WithCancelCause(tctx)
	defer crash(nil)
	ctx = cctx
	if d, ok := cfg.Faults.ArmWallClock(); ok {
		// The wall-clock crash budget: the whole system dies mid-run.
		tm := time.AfterFunc(d, func() { crash(fault.ErrCrash) })
		defer tm.Stop()
	}
	e := &engine{
		waitGen: make(chan struct{}),
		stop:    make(chan struct{}),
		control: control,
		caps:    sched.CapabilitiesOf(control),
		spec:    spec,
		store:   store,
		faults:  cfg.Faults,
		obs:     cfg.Observer,
		txns:    make(map[model.TxnID]*etxn),
		author:  make(map[model.EntityID]model.TxnID),
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	e.async, _ = store.(AsyncCommitter)
	e.cerr, _ = store.(CommitErrer)
	for _, p := range programs {
		e.txns[p.ID()] = &etxn{prog: p, id: p.ID(), deps: make(map[model.TxnID]bool)}
		e.order = append(e.order, p.ID())
	}
	// One sample per committed transaction, at most one group per txn: size
	// once instead of re-growing under the mutex all run long.
	e.stats.Latencies = make([]time.Duration, 0, len(programs))
	e.stats.WaitTimes = make([]time.Duration, 0, len(programs))
	e.stats.CommitGroups = make([]int, 0, len(programs))
	if e.async != nil {
		// One finalizer goroutine serves every commit group of the run —
		// groups become durable in submission order (a flush drains the
		// pipeline's whole batch), so waiting on acks sequentially adds no
		// latency and spawning a goroutine per group added two allocations
		// per group for nothing.
		e.finCh = make(chan asyncFin, len(programs))
		e.committers.Add(1)
		go e.finalizer()
	}

	e.start = time.Now()
	done := make(chan error, len(programs))
	var wg sync.WaitGroup
	wg.Add(len(programs))
	for i, p := range programs {
		go func(i int, p model.Program) {
			defer wg.Done()
			e.runTxn(cfg, p, int64(i), done)
		}(i, p)
	}
	var runErr error
	for range programs {
		select {
		case err := <-done:
			runErr = err
		case <-ctx.Done():
			switch cause := context.Cause(ctx); {
			case errors.Is(cause, fault.ErrCrash):
				runErr = fmt.Errorf("engine: wall-clock crash: %w", fault.ErrCrash)
			case errors.Is(ctx.Err(), context.DeadlineExceeded):
				runErr = fmt.Errorf("engine: timeout after %v", cfg.Timeout)
			default:
				runErr = fmt.Errorf("engine: run cancelled: %w", ctx.Err())
			}
		}
		if runErr != nil {
			break
		}
	}
	// Shut down: wake and stop every worker, then join them — and the
	// commit finalizers, which select on the same stop channel. This is
	// what makes a timed-out, cancelled, or crashed run leak-free.
	close(e.stop)
	wg.Wait()
	e.committers.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.obs != nil {
		// One RunEnded per engine run, on every exit path — clean, crash,
		// timeout, cancellation — fired under the mutex like the per-step
		// hooks, after every worker joined (so it is provably the last
		// per-run event an observer sees before the recovery loop's
		// Crashed/Recovered, and a telemetry recorder can seal its spans).
		e.obs.RunEnded(e.stats.Committed, e.stats.GaveUp, time.Since(e.start))
	}
	if runErr != nil && !errors.Is(runErr, fault.ErrCrash) {
		return nil, runErr
	}
	res := e.stats
	res.Exec = e.survivors()
	res.Final = e.store.Values()
	res.Elapsed = time.Since(e.start)
	if runErr != nil {
		// Injected crash: hand the partial run to the recovery loop.
		return &res, runErr
	}
	if res.Committed+res.GaveUp != len(programs) {
		return nil, fmt.Errorf("engine: only %d/%d committed (%d gave up)", res.Committed, len(programs), res.GaveUp)
	}
	return &res, nil
}

// bump advances the wait generation so blocked goroutines re-check. The
// channel is closed (and replaced) only when someone is actually registered
// on it: one close wakes every sleeper, and state changes on an engine with
// no sleepers cost a counter increment, not a channel allocation. Callers
// hold the mutex.
func (e *engine) bump() {
	e.genSeq++
	if e.waiters > 0 {
		close(e.waitGen)
		e.waitGen = make(chan struct{})
		e.waiters = 0
	}
}

// waitReg registers the caller as a sleeper on the current wait generation
// and returns the channel to sleep on. Caller holds the mutex and must call
// waitDereg(ch) under the mutex after waking (on any path where the engine
// keeps running) so a wake-by-timeout doesn't leave a phantom registration.
func (e *engine) waitReg() chan struct{} {
	e.waiters++
	return e.waitGen
}

// waitDereg cancels a registration made by waitReg, unless a bump already
// consumed it (the generation changed). Caller holds the mutex.
func (e *engine) waitDereg(ch chan struct{}) {
	if ch == e.waitGen {
		e.waiters--
	}
}

// stopped reports whether the run has been abandoned.
func (e *engine) stopped() bool {
	select {
	case <-e.stop:
		return true
	default:
		return false
	}
}

// sleep blocks for d or until the run stops; it reports false on stop.
func (e *engine) sleep(d time.Duration) bool {
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return true
	case <-e.stop:
		return false
	}
}

func (e *engine) jitter(base time.Duration, attempt int) time.Duration {
	if attempt > 8 {
		attempt = 8
	}
	window := base << uint(attempt)
	e.rngMu.Lock()
	j := time.Duration(e.rng.Int63n(int64(window) + 1))
	e.rngMu.Unlock()
	return base + j
}

// runTxn is one transaction's goroutine: execute, restart on abort, signal
// completion once committed or parked. It exits silently when the run
// stops.
func (e *engine) runTxn(cfg Config, p model.Program, prio int64, done chan<- error) {
	id := p.ID()
	for {
		if e.stopped() {
			return
		}
		e.mu.Lock()
		t := e.txns[id]
		if cfg.MaxRestarts > 0 && t.attempt > cfg.MaxRestarts {
			// Restart budget exhausted: park instead of livelocking. The
			// transaction was fully rolled back by its last abort, so it
			// holds no store records, no control state, and no dependents;
			// the run completes without it and reports it in GaveUp. One
			// exception: a concurrent control's Request can race past that
			// last rollback and grant the dead attempt a lock nobody would
			// ever release — ReleaseAll discards such residue so the parked
			// transaction provably blocks no one.
			t.gaveUp = true
			if e.caps.ReleaseAll != nil {
				e.caps.ReleaseAll(id)
			}
			e.stats.GaveUp++
			if e.obs != nil {
				e.obs.TxnGaveUp(id, t.attempt)
			}
			e.bump()
			e.mu.Unlock()
			done <- nil
			return
		}
		attempt := t.attempt
		e.beginAttemptLocked(t, prio)
		cur := p.Init()
		e.mu.Unlock()

		aborted, err := e.attempt(cfg, id, attempt, cur, time.Time{}, nil)
		if err != nil {
			if !errors.Is(err, errStopped) {
				done <- err
			}
			return
		}
		if !aborted {
			// Wait until our commit group forms.
			e.mu.Lock()
			for !e.txns[id].commit && e.txns[id].attempt == attempt {
				if err := e.asyncErr; err != nil {
					e.mu.Unlock()
					done <- fmt.Errorf("engine: commit durability lost: %w", err)
					return
				}
				ch := e.waitReg()
				e.mu.Unlock()
				select {
				case <-ch:
				case <-e.stop:
					return
				}
				e.mu.Lock()
				e.waitDereg(ch)
			}
			committed := e.txns[id].commit
			e.mu.Unlock()
			if committed {
				done <- nil
				return
			}
			// Cascaded abort after finishing: fall through to restart.
		}
		e.mu.Lock()
		att := e.txns[id].attempt
		e.mu.Unlock()
		if !e.sleep(e.jitter(cfg.BackoffBase, att)) {
			return
		}
	}
}

// beginAttemptLocked resets t for a fresh attempt and registers it with the
// control. prio is the caller's base priority band (the program index for
// batch runs, 0 for session submissions, where admission order alone
// decides age). Caller holds the mutex.
func (e *engine) beginAttemptLocked(t *etxn, prio int64) {
	t.seq = 0
	t.steps = t.steps[:0] // superseded steps live on in e.trace, never here
	t.finished = false
	t.lastCut = 0
	if t.deps == nil {
		t.deps = make(map[model.TxnID]bool)
	} else {
		clear(t.deps)
	}
	if t.began.IsZero() {
		t.began = time.Now()
	}
	if t.prio == 0 {
		e.prioCounter++
		t.prio = prio*1024 + e.prioCounter
	} else if e.caps.NewPriority != nil {
		// Timestamp ordering needs a fresh, larger timestamp on restart.
		e.prioCounter++
		t.prio = e.caps.NewPriority(t.id, t.prio, 1_000_000_000+e.prioCounter)
	}
	e.control.Begin(t.id, t.prio)
}

// attempt runs one attempt of the transaction; it returns aborted=true when
// the attempt was rolled back (by itself, a cascade, or its deadline), and
// errStopped when the run was abandoned. Non-errStopped errors (an injected
// crash, a store failure) abandon the whole run.
//
// deadline and quit carry a resident submission's bounds (zero/nil for
// batch runs): when the deadline passes or quit (the client context's Done
// channel) closes, the attempt is rolled back at the next unit boundary —
// never mid-unit while runnable, so granted steps always run to the next
// breakpoint — or immediately when blocked on a Wait decision, where the
// whole attempt rolls back and nothing partial survives either way.
func (e *engine) attempt(cfg Config, id model.TxnID, attempt int, cur model.ProgState, deadline time.Time, quit <-chan struct{}) (bool, error) {
	performed := 0 // this attempt's step count (local mirror of t.seq)
	retries := 0   // in-place retries of the current step after transient faults
	ap := e.getApplier(cur)
	defer e.putApplier(ap)
	for {
		if e.stopped() {
			return false, errStopped
		}
		x, more := ap.cur.Next()
		// Deadline/cancel check, at step granularity but acted on only at a
		// unit boundary (nothing performed yet, or the previous step was
		// followed by a breakpoint): a runnable transaction is never cut
		// down mid-unit — it finishes the unit it started, then aborts at
		// the breakpoint, which is exactly where MLA lets the schedule
		// change its mind about a transaction cheaply.
		if more {
			if reason := expired(deadline, quit); reason != killNone {
				e.mu.Lock()
				t := e.txns[id]
				if t == nil || t.attempt != attempt {
					e.mu.Unlock()
					return true, nil // rolled back meanwhile
				}
				if performed == 0 || t.lastCut > 0 {
					e.killLocked(t, reason)
					e.mu.Unlock()
					return true, nil
				}
				e.mu.Unlock()
			}
		}
		// Transient fault injection: the step request fails before it
		// reaches the control or the store (a lost message, a timed-out
		// I/O). The engine retries in place with capped exponential
		// backoff; a step that keeps failing escalates to a self-abort and
		// restart, which consumes one unit of the restart budget.
		if more && e.faults != nil {
			if ferr := e.faults.StepError(id, performed+1, attempt, retries); ferr != nil {
				e.mu.Lock()
				if e.txns[id].attempt != attempt {
					e.mu.Unlock()
					return true, nil // rolled back meanwhile
				}
				e.stats.FaultsInjected++
				if e.obs != nil {
					e.obs.FaultInjected(id, performed+1, retries)
				}
				retries++
				exhausted := retries > cfg.MaxStepRetries
				if exhausted {
					e.abortLocked([]model.TxnID{id})
					e.bump()
				}
				e.mu.Unlock()
				if exhausted {
					return true, nil
				}
				if !e.sleep(e.jitter(cfg.BackoffBase, retries)) {
					return false, errStopped
				}
				continue
			}
		}
		e.mu.Lock()
		t := e.txns[id]
		if t.attempt != attempt {
			e.mu.Unlock()
			return true, nil // rolled back meanwhile
		}
		if !more {
			t.finished = true
			e.control.Finished(id)
			e.tryCommitLocked()
			e.bump()
			e.mu.Unlock()
			return false, nil
		}
		var d sched.Decision
		if e.caps.Concurrent {
			// The control's decision depends only on the requested entity's
			// state (its lock shard) and the requester's fixed priority, so
			// it needs none of the engine's global state: run it outside the
			// engine mutex, where contending workers serialize only on the
			// entity's shard. Revalidate the attempt afterwards — a rollback
			// can race with the request, in which case any lock the dead
			// attempt just acquired is residue to discard.
			//
			// Capture the wait generation SEQUENCE before requesting: a Wait
			// decision made outside the mutex can be stale by the time we'd
			// block — the holder may release (and bump) in the gap — and a
			// sleeper who missed that bump would sleep on a wakeup that never
			// comes. If genSeq moved while the decision was out, the decision
			// is re-made instead of slept on (seqlock style); if it did not
			// move, no release happened since the decision, so registering
			// now (under the same mutex genSeq is read under) cannot miss
			// one.
			seq := t.seq + 1
			gen0 := e.genSeq
			e.mu.Unlock()
			d = e.control.Request(id, seq, x)
			e.mu.Lock()
			if t.attempt != attempt {
				if e.caps.ReleaseAll != nil {
					e.caps.ReleaseAll(id)
				}
				e.mu.Unlock()
				return true, nil
			}
			if d.Kind == sched.Wait && e.genSeq != gen0 {
				e.mu.Unlock()
				continue
			}
		} else {
			d = e.control.Request(id, t.seq+1, x)
		}
		switch d.Kind {
		case sched.Grant:
			step, perr := e.store.Perform(id, t.seq+1, x, ap.fn)
			if perr != nil {
				// An injected crash (or a fatal store error): the volatile
				// system is dead. Abandon the run; RunWithCrashes recovers
				// from the durable medium.
				e.mu.Unlock()
				return false, perr
			}
			if a, ok := e.author[x]; ok && a != id {
				t.deps[a] = true
			}
			if step.After != step.Before {
				e.author[x] = id
			}
			t.seq++
			performed++
			retries = 0
			t.steps = append(t.steps, step)
			e.trace = append(e.trace, traceEntry{id: id, attempt: attempt, step: step})
			cut := 0
			if _, m := ap.next.Next(); m && e.spec != nil {
				cut = e.spec.CutAfter(id, t.steps)
			}
			t.lastCut = cut
			e.control.Performed(id, t.seq, x, cut)
			if e.obs != nil {
				e.obs.StepPerformed(id, t.seq, x, attempt, cut)
			}
			ap.cur = ap.next
			if cut > 0 || !e.caps.QuiescentSteps {
				// A performed step can unblock someone only under a control
				// whose decisions observe step progress (closure previews,
				// unit-boundary releases). Under a strict control that only
				// releases at Finished/Aborted (QuiescentSteps), waking every
				// sleeper per step is pure thundering herd — skip it.
				e.bump()
			}
			e.mu.Unlock()
			if cfg.StepDelay > 0 {
				if !e.sleep(cfg.StepDelay) {
					return false, errStopped
				}
			}
		case sched.Wait:
			if e.obs != nil {
				e.obs.WaitBegin(id, x)
			}
			ch := e.waitReg()
			e.mu.Unlock()
			t0 := time.Now()
			// A resident submission's deadline (or client cancellation) must
			// be able to interrupt the wait: a blocked transaction's current
			// unit is incomplete either way, so the whole attempt rolls back
			// and nothing partial is exposed — the one place a deadline may
			// fire "mid-unit".
			var tm *time.Timer
			var timerC <-chan time.Time
			if !deadline.IsZero() {
				tm = time.NewTimer(time.Until(deadline))
				timerC = tm.C
			}
			reason := killNone
			select {
			case <-ch:
			case <-e.stop:
				if tm != nil {
					tm.Stop()
				}
				return false, errStopped
			case <-timerC:
				reason = killDeadline
			case <-quit:
				reason = killCanceled
			}
			if tm != nil {
				tm.Stop()
			}
			waited := time.Since(t0)
			e.mu.Lock()
			e.waitDereg(ch)
			t.waited += waited
			if e.obs != nil {
				e.obs.WaitEnd(id, x, waited)
			}
			if reason != killNone {
				if t.attempt == attempt {
					e.killLocked(t, reason)
				}
				e.mu.Unlock()
				return true, nil
			}
			e.mu.Unlock()
		case sched.Abort:
			e.abortLocked(d.Victims)
			selfDead := e.txns[id].attempt != attempt
			e.bump()
			e.mu.Unlock()
			if selfDead {
				return true, nil
			}
		}
	}
}

// expired reports why a submission should stop: killCanceled when quit (the
// client context's Done channel) is closed, killDeadline when the deadline
// has passed, killNone otherwise. Batch runs pass zero values and take the
// two cheap branches — no clock read.
func expired(deadline time.Time, quit <-chan struct{}) int8 {
	if quit != nil {
		select {
		case <-quit:
			return killCanceled
		default:
		}
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return killDeadline
	}
	return killNone
}

// killLocked rolls back t's current attempt because its deadline expired or
// its client walked away: the cause is recorded on the transaction (so the
// session run loop stops restarting it), counted distinctly in the result
// and — via the DeadlineAborter capability — in the control's stats, and
// then the rollback flows through the normal dependency-closed abort path.
// Caller holds the mutex and has verified the attempt is current.
func (e *engine) killLocked(t *etxn, reason int8) {
	t.killed = reason
	e.stats.DeadlineAborts++
	if e.caps.DeadlineAborted != nil {
		e.caps.DeadlineAborted(t.id)
	}
	e.abortLocked([]model.TxnID{t.id})
	e.bump()
}

// abortLocked rolls back the victims plus their value dependents. Caller
// holds the mutex. The closure scratch (set/cascaded/frontiers) is engine
// state reused across calls; only the sorted victim id slice is allocated
// fresh, because the control and observer receive it.
func (e *engine) abortLocked(victims []model.TxnID) {
	if e.abortSet == nil {
		e.abortSet = make(map[model.TxnID]bool)
		e.abortCasc = make(map[model.TxnID]bool)
	}
	set, cascaded := e.abortSet, e.abortCasc
	clear(set)
	clear(cascaded)
	frontier := e.abortFrontier[:0]
	for _, v := range victims {
		t := e.txns[v]
		// Committing transactions are immune: their group is submitted and
		// its record may already be durable. (Unreachable in practice — a
		// committing transaction is finished, holds no locks, and its deps
		// are all committed or committing — but the guard keeps the
		// invariant local instead of spread over that argument.)
		if t != nil && !t.commit && !t.committing && !t.gaveUp {
			set[v] = true
			frontier = append(frontier, v)
		}
	}
	next := e.abortNext[:0]
	for len(frontier) > 0 {
		next = next[:0]
		for id, t := range e.txns {
			if set[id] || t.commit || t.committing || t.gaveUp {
				continue
			}
			for _, f := range frontier {
				if t.deps[f] {
					set[id] = true
					cascaded[id] = true
					next = append(next, id)
					e.stats.Cascades++
					break
				}
			}
		}
		frontier, next = next, frontier
	}
	e.abortFrontier, e.abortNext = frontier[:0], next[:0]
	if len(set) == 0 {
		return
	}
	if err := e.store.Abort(set); err != nil {
		panic(err) // dependency closure above must make this unreachable
	}
	ids := make([]model.TxnID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	model.SortTxnIDs(ids)
	for _, id := range ids {
		t := e.txns[id]
		t.attempt++
		t.finished = false
		clear(t.deps)
		e.stats.Aborts++
		e.stats.Restarts++
		if e.obs != nil {
			e.obs.TxnAborted(id, cascaded[id])
		}
	}
	e.control.Aborted(ids)
	e.rebuildAuthorsLocked()
}

func (e *engine) rebuildAuthorsLocked() {
	clear(e.author)
	for _, te := range e.trace {
		t := e.txns[te.id]
		// A nil t is a retired resident transaction whose trace entries
		// haven't been compacted away yet: committed or fully rolled back
		// either way, so never a live author.
		if t == nil || te.attempt != t.attempt || t.commit {
			continue
		}
		if te.step.After != te.step.Before {
			e.author[te.step.Entity] = te.id
		}
	}
}

// tryCommitLocked commits the largest set of finished transactions whose
// value dependencies stay within the set or the committed. Caller holds the
// mutex.
func (e *engine) tryCommitLocked() {
	// After a crash the store silently discards writes; committing now
	// would mark transactions committed in memory (and fire the observer)
	// with no durable record behind them, so the next recovery round would
	// expose the lie. Workers still mid-flight when another worker hits
	// the crash point simply stop committing.
	type crashedStore interface{ Crashed() bool }
	if cs, ok := e.store.(crashedStore); ok && cs.Crashed() {
		return
	}
	// Same logic for a degraded durable medium: submitting more groups
	// into a pipeline that can no longer flush would only queue lies.
	if e.asyncErr != nil {
		return
	}
	// The candidate set is engine scratch: this probe runs after every
	// finish and usually commits either nothing or a small group, so it must
	// not allocate a map per call. Only the sorted ids slice is fresh — it
	// escapes into the async pipeline.
	inS := e.commitScratch
	if inS == nil {
		inS = make(map[model.TxnID]bool)
		e.commitScratch = inS
	} else {
		clear(inS)
	}
	for id, t := range e.txns {
		if t.finished && !t.commit && !t.committing {
			inS[id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for id := range inS {
			for dep := range e.txns[id].deps {
				d := e.txns[dep]
				// A committing dependency is as good as committed: it was
				// submitted to the pipeline before this group will be, and
				// the pipeline makes groups durable in submission order (a
				// flush drains every pending group into one record), so our
				// record can never become durable ahead of the value we read.
				if d == nil || (!d.commit && !d.committing && !inS[dep]) {
					delete(inS, id)
					changed = true
					break
				}
			}
		}
	}
	if len(inS) == 0 {
		return
	}
	ids := make([]model.TxnID, 0, len(inS))
	for id := range inS {
		ids = append(ids, id)
	}
	model.SortTxnIDs(ids)
	if e.async != nil {
		// Pipelined path: submit the group and let a finalizer goroutine
		// mark it committed once the store acknowledges durability. Members
		// are "committing" until then — immune to abort, valid as
		// dependencies, not yet counted in stats or shown to the observer.
		for _, id := range ids {
			e.txns[id].committing = true
		}
		ack := e.async.SubmitGroup(ids)
		if e.finCh != nil {
			e.finCh <- asyncFin{ack: ack, ids: ids} // buffered; never blocks
		} else {
			// Resident path: no program count to bound a channel by, so
			// queue under the mutex and nudge the finalizer.
			e.finPending = append(e.finPending, asyncFin{ack: ack, ids: ids})
			select {
			case e.finWake <- struct{}{}:
			default: // already signalled; the finalizer re-checks the queue
			}
		}
		return
	}
	// One store call for the whole group: members may have observed each
	// other's values, so a durable backend must commit them atomically.
	e.store.CommitGroup(ids)
	e.finalizeGroupLocked(ids)
}

// finalizer marks each submitted group committed once the store
// acknowledges its durability, in submission order. It exits when the run
// stops (abandoned acks are discarded with it) or when the store reports
// the durable medium failed — the ack of a degraded flush is a wake-up,
// not a durability promise.
func (e *engine) finalizer() {
	defer e.committers.Done()
	for {
		var f asyncFin
		select {
		case f = <-e.finCh:
		case <-e.stop:
			return
		}
		select {
		case <-f.ack:
		case <-e.stop:
			return // run abandoned; the result is discarded
		}
		if !e.ackHealthy() {
			return
		}
		e.mu.Lock()
		e.finalizeGroupLocked(f.ids)
		e.bump()
		e.mu.Unlock()
	}
}

// ackHealthy checks the store's durable-failure latch after an ack. On
// failure it latches asyncErr, wakes every waiter, and reports false — the
// finalizer must stop finalizing: once one flush failed, no later ack can
// be trusted either.
func (e *engine) ackHealthy() bool {
	if e.cerr == nil {
		return true
	}
	err := e.cerr.CommitErr()
	if err == nil {
		return true
	}
	e.mu.Lock()
	if e.asyncErr == nil {
		e.asyncErr = err
	}
	e.bump()
	e.mu.Unlock()
	return false
}

// finalizeGroupLocked records a now-durable commit group: stats, latency
// samples, retirement hooks, observer, and the author/deps cleanup that
// releases the members' dependents. Caller holds the mutex.
func (e *engine) finalizeGroupLocked(ids []model.TxnID) {
	if !e.resident {
		// Per-commit sample slices grow with the run: fine for a batch, a
		// leak for a resident session, where each submission carries its
		// latency home in its Outcome instead.
		e.stats.CommitGroups = append(e.stats.CommitGroups, len(ids))
	}
	now := time.Now()
	for _, id := range ids {
		t := e.txns[id]
		if t == nil {
			// Resident stop-path race: the submission was abandoned (Close
			// without Drain) and retired its record while the ack was in
			// flight. The commit is durable regardless; there is just no
			// record left to flip.
			e.stats.Committed++
			continue
		}
		t.committing = false
		t.commit = true
		e.stats.Committed++
		if !e.resident {
			e.stats.Latencies = append(e.stats.Latencies, now.Sub(t.began))
			e.stats.WaitTimes = append(e.stats.WaitTimes, t.waited)
		}
		if e.caps.Retired != nil {
			e.caps.Retired(id)
		}
	}
	if e.obs != nil {
		e.obs.CommitGroup(ids)
	}
	for x, a := range e.author {
		if t := e.txns[a]; t == nil || t.commit {
			delete(e.author, x)
		}
	}
	for _, t := range e.txns {
		for dep := range t.deps {
			if d := e.txns[dep]; d != nil && d.commit {
				delete(t.deps, dep)
			}
		}
	}
}

// survivors returns the committed steps in performance order. Caller holds
// the mutex.
func (e *engine) survivors() model.Execution {
	out := make(model.Execution, 0, len(e.trace))
	for _, te := range e.trace {
		t := e.txns[te.id]
		if t != nil && t.commit && te.attempt == t.attempt {
			out = append(out, te.step)
		}
	}
	return out
}

// compactTraceLocked drops trace entries that can no longer matter to
// rebuildAuthorsLocked — entries of retired, committed, parked, or
// superseded attempts — once the trace reaches the current threshold, then
// doubles the threshold from the surviving length. Resident engines only;
// a batch run keeps its whole trace because survivors() is its Result.Exec.
// Caller holds the mutex.
func (e *engine) compactTraceLocked() {
	if !e.resident || len(e.trace) < e.traceCap {
		return
	}
	kept := e.trace[:0]
	for _, te := range e.trace {
		t := e.txns[te.id]
		if t != nil && !t.commit && !t.gaveUp && te.attempt == t.attempt {
			kept = append(kept, te)
		}
	}
	clear(e.trace[len(kept):]) // release retired steps for GC
	e.trace = kept
	e.traceCap = 2 * len(kept)
	if e.traceCap < 1024 {
		e.traceCap = 1024
	}
}

// residentFinalizer is the resident engines' commit finalizer: it drains
// finPending in submission order, waiting on each group's durability ack
// before finalizing it, and parks on finWake when the queue is empty. It
// exits when the session stops.
func (e *engine) residentFinalizer() {
	defer e.committers.Done()
	for {
		e.mu.Lock()
		pending := e.finPending
		e.finPending = nil
		e.mu.Unlock()
		for _, f := range pending {
			select {
			case <-f.ack:
			case <-e.stop:
				return // session abandoned; the ack is discarded
			}
			if !e.ackHealthy() {
				return
			}
			e.mu.Lock()
			e.finalizeGroupLocked(f.ids)
			e.bump()
			e.mu.Unlock()
		}
		if len(pending) > 0 {
			continue // more may have queued while we waited on acks
		}
		select {
		case <-e.finWake:
		case <-e.stop:
			return
		}
	}
}
