package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mla/internal/bank"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/serial"
	"mla/internal/wal"
)

// incProg increments each of its entities once, in order. Increments
// commute, so any schedule that commits every program yields the same
// final state — which is what lets these tests compare optimized and
// unoptimized engine configurations byte-for-byte despite the engine's
// nondeterminism.
type incProg struct {
	id   model.TxnID
	ents []model.EntityID
}

func (p *incProg) ID() model.TxnID       { return p.id }
func (p *incProg) Init() model.ProgState { return incState{p: p} }

type incState struct {
	p   *incProg
	idx int
}

func (s incState) Next() (model.EntityID, bool) {
	if s.idx < len(s.p.ents) {
		return s.p.ents[s.idx], true
	}
	return "", false
}

func (s incState) Apply(v model.Value) (model.Value, string, model.ProgState) {
	return v + 1, "inc", incState{p: s.p, idx: s.idx + 1}
}

// incWorkload builds n programs of k steps over the given entities,
// striding so neighbours collide, plus the init map and the expected final
// state (init + per-entity increment counts).
func incWorkload(n, k, entities int) ([]model.Program, map[model.EntityID]model.Value, map[model.EntityID]model.Value) {
	init := make(map[model.EntityID]model.Value)
	want := make(map[model.EntityID]model.Value)
	for e := 0; e < entities; e++ {
		x := model.EntityID(fmt.Sprintf("x%d", e))
		init[x] = 100
		want[x] = 100
	}
	var progs []model.Program
	for i := 0; i < n; i++ {
		p := &incProg{id: model.TxnID(fmt.Sprintf("t%02d", i))}
		for j := 0; j < k; j++ {
			x := model.EntityID(fmt.Sprintf("x%d", (i*3+j)%entities))
			p.ents = append(p.ents, x)
			want[x]++
		}
		progs = append(progs, p)
	}
	return progs, init, want
}

// TestEngineShardedControl runs the banking workload under the concurrent
// wound-wait control: Request executes outside the engine mutex, on the
// entity's lock shard. Strict 2PL must still conserve money, keep audits
// exact, and admit only serializable executions. Run with -race.
func TestEngineShardedControl(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 12
	params.BankAudits = 1
	params.CreditorAudits = 2
	wl := bank.Generate(params)
	stp := sched.NewShardedTwoPhase(8)
	res, err := Run(context.Background(), Config{Seed: 7, StepDelay: 50 * time.Microsecond}, wl.Programs, stp, wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != len(wl.Programs) {
		t.Fatalf("committed %d/%d", res.Committed, len(wl.Programs))
	}
	inv := wl.Check(res.Exec, res.Final)
	if !inv.ConservationOK {
		t.Error("money not conserved")
	}
	if inv.AuditsInexact > 0 {
		t.Errorf("%d inexact audits", inv.AuditsInexact)
	}
	if inv.TraceValid != nil {
		t.Errorf("trace invalid: %v", inv.TraceValid)
	}
	if !serial.Serializable(res.Exec) {
		t.Error("strict 2PL produced a non-serializable execution")
	}
	if ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec); err != nil || !ok {
		t.Errorf("not correctable (err=%v)", err)
	}
	if got := stp.LockSnapshot(); got.Locked != 0 {
		t.Errorf("locks leaked after run: %+v", got)
	}
}

// TestEnginePipelinedCommitDurable runs on the group-commit pipeline and
// then recovers the medium from scratch: every transaction the engine
// reported committed must be durably committed, with the recovered values
// matching the run's final state, and durability must have cost exactly
// one device sync per pipeline flush.
func TestEnginePipelinedCommitDurable(t *testing.T) {
	progs, init, want := incWorkload(24, 5, 8)
	medium := wal.NewMedium()
	db, err := wal.Open(medium, init)
	if err != nil {
		t.Fatal(err)
	}
	pipe := wal.NewPipeline(db, time.Millisecond)
	store := NewPipelinedWALStore(pipe)
	res, err := RunOnStore(context.Background(), Config{Seed: 3, StepDelay: 30 * time.Microsecond},
		progs, sched.NewShardedTwoPhase(8), nil, store)
	if err != nil {
		t.Fatal(err)
	}
	pipe.Close()
	if res.Committed != len(progs) {
		t.Fatalf("committed %d/%d", res.Committed, len(progs))
	}
	for x, v := range want {
		if res.Final[x] != v {
			t.Fatalf("final[%s] = %d, want %d", x, res.Final[x], v)
		}
	}
	ps := pipe.Snapshot()
	if ps.Txns != int64(len(progs)) {
		t.Fatalf("pipeline saw %d txns, want %d", ps.Txns, len(progs))
	}
	if syncs := db.Snapshot().Syncs; syncs != ps.Flushes {
		t.Fatalf("syncs = %d, flushes = %d: durability not one sync per flush", syncs, ps.Flushes)
	}
	// Recover from the raw medium as if the process died now.
	db2, err := wal.Open(db.Crash(), init)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		if !db2.Committed(p.ID()) {
			t.Fatalf("%s reported committed but not durable", p.ID())
		}
	}
	rec := db2.Values()
	for x, v := range want {
		if rec[x] != v {
			t.Fatalf("recovered[%s] = %d, want %d", x, rec[x], v)
		}
	}
}

// TestEngineOptimizedEquivalence pins the tentpole's safety claim: the
// optimized configuration (sharded concurrent control + pipelined WAL
// commits) reaches exactly the outcome of the unoptimized one (global-mutex
// 2PL + volatile store) — same committed set, same final values — on a
// commutative workload where that comparison is schedule-independent.
func TestEngineOptimizedEquivalence(t *testing.T) {
	progs, init, want := incWorkload(16, 4, 6)
	cfg := Config{Seed: 11, StepDelay: 20 * time.Microsecond}

	base, err := Run(context.Background(), cfg, progs, sched.NewTwoPhase(), nil, init)
	if err != nil {
		t.Fatal(err)
	}
	db, err := wal.Open(wal.NewMedium(), init)
	if err != nil {
		t.Fatal(err)
	}
	pipe := wal.NewPipeline(db, time.Millisecond)
	defer pipe.Close()
	opt, err := RunOnStore(context.Background(), cfg, progs, sched.NewShardedTwoPhase(8), nil, NewPipelinedWALStore(pipe))
	if err != nil {
		t.Fatal(err)
	}
	if base.Committed != len(progs) || opt.Committed != len(progs) {
		t.Fatalf("committed: base %d, opt %d, want %d", base.Committed, opt.Committed, len(progs))
	}
	for x, v := range want {
		if base.Final[x] != v {
			t.Fatalf("baseline final[%s] = %d, want %d", x, base.Final[x], v)
		}
		if opt.Final[x] != v {
			t.Fatalf("optimized final[%s] = %d, want %d", x, opt.Final[x], v)
		}
	}
}

// TestEngineShardedGaveUpReleasesLocks drives a hot-spot workload with a
// tiny restart budget: whether or not transactions actually park, the lock
// table must be empty when the run ends — the park path and the
// stale-grant path both discharge through ReleaseAll.
func TestEngineShardedGaveUpReleasesLocks(t *testing.T) {
	progs, init, _ := incWorkload(16, 6, 2) // 2 entities: everything collides
	stp := sched.NewShardedTwoPhase(4)
	res, err := RunOnStore(context.Background(),
		Config{Seed: 5, StepDelay: 40 * time.Microsecond, MaxRestarts: 2},
		progs, stp, nil, NewVolatileStore(init))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed+res.GaveUp != len(progs) {
		t.Fatalf("committed %d + gaveUp %d != %d", res.Committed, res.GaveUp, len(progs))
	}
	if got := stp.LockSnapshot(); got.Locked != 0 {
		t.Fatalf("locks leaked (gaveUp=%d): %+v", res.GaveUp, got)
	}
}
