package engine

import (
	"time"

	"mla/internal/model"
)

// Observer receives the engine's per-run lifecycle events. The engine
// invokes every hook while holding its internal mutex, so calls are
// serialized and totally ordered with respect to the run's state changes;
// implementations must return quickly and must not call back into the
// engine or the control. A nil Config.Observer disables eventing with no
// overhead beyond a nil check.
type Observer interface {
	// StepPerformed fires after a granted step executed against the store.
	// attempt is the transaction's current attempt number (0 = first); cut
	// is the coarseness of the breakpoint boundary after this step (0 = no
	// boundary), i.e. cut > 0 means the step ends a breakpoint unit.
	StepPerformed(t model.TxnID, seq int, x model.EntityID, attempt, cut int)
	// WaitBegin fires when the control answers Wait and the transaction
	// blocks until the next state change.
	WaitBegin(t model.TxnID, x model.EntityID)
	// WaitEnd fires when the blocked transaction wakes; waited is the
	// wall-clock time spent blocked on this wait.
	WaitEnd(t model.TxnID, x model.EntityID, waited time.Duration)
	// TxnAborted fires once per rolled-back victim. cascade reports whether
	// the victim was added by the value-dependency closure rather than
	// named by the control's decision.
	TxnAborted(t model.TxnID, cascade bool)
	// CommitGroup fires when a commit group forms, with the sorted members.
	CommitGroup(txns []model.TxnID)

	// FaultInjected fires when the fault injector fails a step attempt
	// transiently; try counts the in-place retries of this step so far.
	FaultInjected(t model.TxnID, seq int, try int)
	// TxnGaveUp fires when a transaction exhausts its restart budget and
	// is parked (reported in Result.GaveUp) instead of restarting again.
	TxnGaveUp(t model.TxnID, restarts int)
	// Crashed fires when an injected crash kills round (0-based) of a
	// RunWithCrashes plan; torn is the number of durable records the crash
	// tore off the log tail. Unlike the per-step hooks it is invoked by the
	// recovery loop between rounds, not under the engine mutex.
	Crashed(round int, torn int)
	// Recovered fires after wal.Open replays the durable log before round
	// (0-based); committed is the number of durably committed transactions
	// that survived. Invoked by the recovery loop between rounds.
	Recovered(round int, committed int)
	// RunEnded fires exactly once per engine run (per recovery round under
	// RunWithCrashes), after every worker has been joined — on clean
	// completion, cancellation, timeout, and injected crash alike.
	RunEnded(committed, gaveUp int, elapsed time.Duration)
}

// NopObserver implements Observer with no-ops; embed it to implement only
// the events of interest.
type NopObserver struct{}

// StepPerformed implements Observer.
func (NopObserver) StepPerformed(model.TxnID, int, model.EntityID, int, int) {}

// WaitBegin implements Observer.
func (NopObserver) WaitBegin(model.TxnID, model.EntityID) {}

// WaitEnd implements Observer.
func (NopObserver) WaitEnd(model.TxnID, model.EntityID, time.Duration) {}

// TxnAborted implements Observer.
func (NopObserver) TxnAborted(model.TxnID, bool) {}

// CommitGroup implements Observer.
func (NopObserver) CommitGroup([]model.TxnID) {}

// FaultInjected implements Observer.
func (NopObserver) FaultInjected(model.TxnID, int, int) {}

// TxnGaveUp implements Observer.
func (NopObserver) TxnGaveUp(model.TxnID, int) {}

// Crashed implements Observer.
func (NopObserver) Crashed(int, int) {}

// Recovered implements Observer.
func (NopObserver) Recovered(int, int) {}

// RunEnded implements Observer.
func (NopObserver) RunEnded(int, int, time.Duration) {}

// EventCounts is a ready-made Observer that tallies every event; cmd/mlasim
// prints it after an engine run. The engine serializes hook calls, so no
// internal locking is needed — but the counts must only be read after Run
// returns.
type EventCounts struct {
	Steps      int
	Cuts       int // steps that ended a breakpoint unit
	Waits      int
	WaitTime   time.Duration
	Aborts     int
	Cascades   int
	Groups     int
	Faults     int
	GaveUps    int
	Crashes    int
	Recoveries int
	Runs       int
}

// StepPerformed implements Observer.
func (c *EventCounts) StepPerformed(_ model.TxnID, _ int, _ model.EntityID, _, cut int) {
	c.Steps++
	if cut > 0 {
		c.Cuts++
	}
}

// WaitBegin implements Observer.
func (c *EventCounts) WaitBegin(model.TxnID, model.EntityID) { c.Waits++ }

// WaitEnd implements Observer.
func (c *EventCounts) WaitEnd(_ model.TxnID, _ model.EntityID, waited time.Duration) {
	c.WaitTime += waited
}

// TxnAborted implements Observer.
func (c *EventCounts) TxnAborted(_ model.TxnID, cascade bool) {
	c.Aborts++
	if cascade {
		c.Cascades++
	}
}

// CommitGroup implements Observer.
func (c *EventCounts) CommitGroup([]model.TxnID) { c.Groups++ }

// FaultInjected implements Observer.
func (c *EventCounts) FaultInjected(model.TxnID, int, int) { c.Faults++ }

// TxnGaveUp implements Observer.
func (c *EventCounts) TxnGaveUp(model.TxnID, int) { c.GaveUps++ }

// Crashed implements Observer.
func (c *EventCounts) Crashed(int, int) { c.Crashes++ }

// Recovered implements Observer.
func (c *EventCounts) Recovered(int, int) { c.Recoveries++ }

// RunEnded implements Observer.
func (c *EventCounts) RunEnded(int, int, time.Duration) { c.Runs++ }

// Tee fans every event out to each non-nil observer in order. It lets a
// caller combine a tallying EventCounts with a telemetry recorder on the
// same run. Tee(nil...) and Tee() return nil, preserving the "nil observer
// = disabled" fast path.
func Tee(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o == nil {
			continue
		}
		// A disabled TelemetryObserver arrives as a typed nil (the
		// constructor returns *TelemetryObserver), which an interface
		// comparison alone would not catch.
		if to, ok := o.(*TelemetryObserver); ok && to == nil {
			continue
		}
		live = append(live, o)
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee(live)
}

type tee []Observer

func (t tee) StepPerformed(id model.TxnID, seq int, x model.EntityID, attempt, cut int) {
	for _, o := range t {
		o.StepPerformed(id, seq, x, attempt, cut)
	}
}

func (t tee) WaitBegin(id model.TxnID, x model.EntityID) {
	for _, o := range t {
		o.WaitBegin(id, x)
	}
}

func (t tee) WaitEnd(id model.TxnID, x model.EntityID, waited time.Duration) {
	for _, o := range t {
		o.WaitEnd(id, x, waited)
	}
}

func (t tee) TxnAborted(id model.TxnID, cascade bool) {
	for _, o := range t {
		o.TxnAborted(id, cascade)
	}
}

func (t tee) CommitGroup(ids []model.TxnID) {
	for _, o := range t {
		o.CommitGroup(ids)
	}
}

func (t tee) FaultInjected(id model.TxnID, seq, try int) {
	for _, o := range t {
		o.FaultInjected(id, seq, try)
	}
}

func (t tee) TxnGaveUp(id model.TxnID, restarts int) {
	for _, o := range t {
		o.TxnGaveUp(id, restarts)
	}
}

func (t tee) Crashed(round, torn int) {
	for _, o := range t {
		o.Crashed(round, torn)
	}
}

func (t tee) Recovered(round, committed int) {
	for _, o := range t {
		o.Recovered(round, committed)
	}
}

func (t tee) RunEnded(committed, gaveUp int, elapsed time.Duration) {
	for _, o := range t {
		o.RunEnded(committed, gaveUp, elapsed)
	}
}
