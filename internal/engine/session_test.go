package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mla/internal/breakpoint"
	"mla/internal/fault"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/wal"
)

// waitGoroutines retries until the goroutine count returns to the baseline
// or the deadline passes — shared leak check for every session lifecycle
// test (workers, finalizers, and timer goroutines must all be joined or
// retired by Close).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionConcurrentCommits is the open-submission smoke test: many
// goroutines submit contended transactions into one resident engine, all of
// them commit, the final state is exact, and the session winds down without
// lock residue or goroutine leaks.
func TestSessionConcurrentCommits(t *testing.T) {
	before := runtime.NumGoroutine()
	ents := []model.EntityID{"a", "b", "c", "d"}
	init := map[model.EntityID]model.Value{}
	for _, x := range ents {
		init[x] = 100
	}
	stp := sched.NewShardedTwoPhase(8)
	s := NewSession(Config{Seed: 11}, stp, breakpoint.Uniform{Levels: 2, C: 2}, NewVolatileStore(init))

	const subs = 48
	var wg sync.WaitGroup
	errs := make(chan error, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each transaction moves 1 between two entities — contention on
			// four entities from 48 goroutines forces real waits and wounds.
			from, to := ents[i%len(ents)], ents[(i+1)%len(ents)]
			p := &model.Scripted{
				Txn: model.TxnID(fmt.Sprintf("t%02d", i)),
				Ops: []model.Op{model.Add(from, -1), model.Add(to, 1)},
			}
			out, err := s.Submit(context.Background(), p, SubmitOpts{})
			if err != nil {
				errs <- err
				return
			}
			if !out.Committed {
				errs <- fmt.Errorf("t%02d resolved without committing: %+v", i, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.Committed != subs {
		t.Errorf("session committed %d/%d", st.Committed, subs)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight %d after all submissions returned", st.Inflight)
	}
	var sum model.Value
	for _, v := range s.e.store.Values() {
		sum += v
	}
	if want := model.Value(100 * len(ents)); sum != want {
		t.Errorf("transfers did not conserve: sum %d, want %d", sum, want)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("drain of an idle session: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if locked := stp.LockSnapshot().Locked; locked != 0 {
		t.Errorf("%d locks leaked after close", locked)
	}
	waitGoroutines(t, before)
}

// waitControl always answers Wait — the deterministic way to park a
// submission so its deadline or cancellation must fire. It implements the
// DeadlineAborter capability so the test can assert the engine routes
// deadline kills into the control's distinct counter.
type waitControl struct{ stats sched.Stats }

func (*waitControl) Name() string             { return "wait" }
func (*waitControl) Begin(model.TxnID, int64) {}
func (w *waitControl) Request(model.TxnID, int, model.EntityID) sched.Decision {
	w.stats.Requests++
	w.stats.Waits++
	return sched.Decision{Kind: sched.Wait}
}
func (*waitControl) Performed(model.TxnID, int, model.EntityID, int) {}
func (*waitControl) Finished(model.TxnID)                            {}
func (w *waitControl) Aborted(v []model.TxnID)                       { w.stats.Aborts += len(v) }
func (w *waitControl) DeadlineAborted(model.TxnID)                   { w.stats.Deadlines++ }
func (w *waitControl) Stats() *sched.Stats                           { return &w.stats }

// TestSessionDeadline: a submission blocked forever by the control must be
// withdrawn at its deadline, reported DeadlineExceeded, and counted
// distinctly from conflict aborts in both the engine's and the control's
// stats.
func TestSessionDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	wc := &waitControl{}
	s := NewSession(Config{}, wc, breakpoint.Uniform{Levels: 2, C: 2}, NewVolatileStore(nil))
	p := &model.Scripted{Txn: "d", Ops: []model.Op{model.Add("x", 1)}}
	start := time.Now()
	out, err := s.Submit(context.Background(), p, SubmitOpts{Deadline: time.Now().Add(40 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.DeadlineExceeded || out.Committed || out.Canceled || out.GaveUp {
		t.Fatalf("want DeadlineExceeded, got %+v", out)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("deadline took %v to fire", e)
	}
	if st := s.Stats(); st.DeadlineAborts != 1 {
		t.Errorf("engine DeadlineAborts = %d, want 1", st.DeadlineAborts)
	}
	if wc.stats.Deadlines != 1 {
		t.Errorf("control Deadlines = %d, want 1 (DeadlineAborter not wired?)", wc.stats.Deadlines)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, before)
}

// TestSessionCancel: cancelling the Submit context withdraws a blocked
// transaction promptly and reports Canceled, not an error — the client
// walked away, the engine is fine.
func TestSessionCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewSession(Config{}, &waitControl{}, breakpoint.Uniform{Levels: 2, C: 2}, NewVolatileStore(nil))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	p := &model.Scripted{Txn: "c", Ops: []model.Op{model.Add("x", 1)}}
	out, err := s.Submit(ctx, p, SubmitOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Canceled {
		t.Fatalf("want Canceled, got %+v", out)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	waitGoroutines(t, before)
}

// TestSessionGiveUp: a submission that exhausts its restart budget is parked
// and reported GaveUp, holding nothing.
func TestSessionGiveUp(t *testing.T) {
	// StepErrorRate 1.0 makes every step attempt fail, so each attempt
	// burns its in-place retries and restarts until the budget runs out.
	inj := fault.New(fault.Plan{Seed: 3, StepErrorRate: 1.0})
	s := NewSession(
		Config{Faults: inj, BackoffBase: time.Microsecond, MaxStepRetries: 1},
		sched.NewNone(), breakpoint.Uniform{Levels: 2, C: 2}, NewVolatileStore(nil),
	)
	p := &model.Scripted{Txn: "g", Ops: []model.Op{model.Add("x", 1)}}
	out, err := s.Submit(context.Background(), p, SubmitOpts{MaxRestarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.GaveUp {
		t.Fatalf("want GaveUp, got %+v", out)
	}
	if out.Restarts < 3 {
		t.Errorf("restarts = %d, want >= 3", out.Restarts)
	}
	if st := s.Stats(); st.GaveUp != 1 || st.FaultsInjected == 0 {
		t.Errorf("stats %+v: want GaveUp 1 and faults injected", st)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestSessionDrainRejects: Drain flips the session to draining — new
// submissions are refused with ErrDraining while in-flight ones resolve —
// and returns once idle.
func TestSessionDrainRejects(t *testing.T) {
	s := NewSession(Config{}, sched.NewNone(), breakpoint.Uniform{Levels: 2, C: 2}, NewVolatileStore(nil))
	p := &model.Scripted{Txn: "a", Ops: []model.Op{model.Add("x", 1)}}
	if out, err := s.Submit(context.Background(), p, SubmitOpts{}); err != nil || !out.Committed {
		t.Fatalf("pre-drain submit: %+v, %v", out, err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	q := &model.Scripted{Txn: "b", Ops: []model.Op{model.Add("x", 1)}}
	if _, err := s.Submit(context.Background(), q, SubmitOpts{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	// Submits on the closed session report closed, not draining.
	if _, err := s.Submit(context.Background(), q, SubmitOpts{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("post-close submit error = %v, want ErrSessionClosed", err)
	}
}

// TestSessionDuplicateID: two in-flight submissions may not share a
// transaction ID, and the rejection must not disturb the first submission's
// record (the rejected path owns nothing to retire).
func TestSessionDuplicateID(t *testing.T) {
	s := NewSession(Config{}, &waitControl{}, breakpoint.Uniform{Levels: 2, C: 2}, NewVolatileStore(nil))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Outcome, 1)
	go func() {
		out, _ := s.Submit(ctx, &model.Scripted{Txn: "dup", Ops: []model.Op{model.Add("x", 1)}}, SubmitOpts{})
		done <- out
	}()
	// Wait until the first submission's record exists.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.e.mu.Lock()
		_, ok := s.e.txns["dup"]
		s.e.mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first submission never registered")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := s.Submit(context.Background(), &model.Scripted{Txn: "dup", Ops: []model.Op{model.Add("x", 1)}}, SubmitOpts{})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate submit error = %v", err)
	}
	cancel()
	if out := <-done; !out.Canceled {
		t.Fatalf("first submission should cancel cleanly, got %+v", out)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestSessionPrepareCleanup: the per-submission hooks run under the engine
// mutex, Prepare before the transaction's first control interaction and
// Cleanup exactly once at retirement — on success and on rollback paths
// alike.
func TestSessionPrepareCleanup(t *testing.T) {
	s := NewSession(Config{}, sched.NewNone(), breakpoint.Uniform{Levels: 2, C: 2}, NewVolatileStore(nil))
	var mu sync.Mutex
	meta := make(map[model.TxnID]int)
	submit := func(id model.TxnID, deadline time.Time) {
		t.Helper()
		_, err := s.Submit(context.Background(), &model.Scripted{Txn: id, Ops: []model.Op{model.Add("x", 1)}}, SubmitOpts{
			Deadline: deadline,
			Prepare:  func() { mu.Lock(); meta[id]++; mu.Unlock() },
			Cleanup:  func() { mu.Lock(); meta[id] += 10; mu.Unlock() },
		})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	submit("ok", time.Time{})
	// An already-expired deadline resolves before the first attempt, but
	// Prepare/Cleanup still bracket the admission.
	submit("late", time.Now().Add(-time.Second))
	mu.Lock()
	defer mu.Unlock()
	for id, n := range meta {
		if n != 11 {
			t.Errorf("%s: prepare+cleanup count = %d, want 11 (one each)", id, n)
		}
	}
}

// TestSessionCrashRace is the robustness test the service front-end rests
// on: N goroutines submit through the session while an injected crash kills
// the store mid-run. Every submission must return (committed, or failed with
// the session's cause — never hang), every outcome acknowledged Committed
// must be durable on the recovered medium, and the wreck must leave no lock
// residue and no goroutines behind.
func TestSessionCrashRace(t *testing.T) {
	before := runtime.NumGoroutine()
	ents := []model.EntityID{"a", "b", "c", "d", "e", "f"}
	init := map[model.EntityID]model.Value{}
	for _, x := range ents {
		init[x] = 1000
	}
	db, err := wal.Open(wal.NewMedium(), init)
	if err != nil {
		t.Fatal(err)
	}
	// Crash at the 150th durable append: mid-run with 96 transactions of
	// ~4 appends each, so a healthy prefix commits and a healthy suffix
	// slams into the dead store from many goroutines at once.
	ws := NewWALStore(db, fault.New(fault.Plan{Seed: 9, CrashAppends: []int64{150}}))
	stp := sched.NewShardedTwoPhase(8)
	s := NewSession(Config{Seed: 5, MaxRestarts: 64}, stp, breakpoint.Uniform{Levels: 2, C: 2}, ws)

	const workers, perWorker = 24, 4
	var (
		mu     sync.Mutex
		acked  []model.TxnID
		failed int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := model.TxnID(fmt.Sprintf("w%02d-%d", w, i))
				from, to := ents[(w+i)%len(ents)], ents[(w+i+1)%len(ents)]
				p := &model.Scripted{Txn: id, Ops: []model.Op{
					model.Add(from, -1), model.Add(to, 1), model.Add(ents[w%len(ents)], 0),
				}}
				out, err := s.Submit(context.Background(), p, SubmitOpts{})
				mu.Lock()
				switch {
				case err != nil:
					if !errors.Is(err, ErrSessionClosed) {
						t.Errorf("%s: unexpected error %v", id, err)
					}
					failed++
				case out.Committed:
					acked = append(acked, id)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// The session must have failed closed with the injected crash as cause.
	if err := s.Close(); !errors.Is(err, fault.ErrCrash) {
		t.Errorf("session cause = %v, want fault.ErrCrash", err)
	}
	if _, err := s.Submit(context.Background(), &model.Scripted{Txn: "post"}, SubmitOpts{}); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("post-crash submit error = %v, want ErrSessionClosed", err)
	}
	if len(acked) == 0 {
		t.Error("crash point fired before any commit was acknowledged — test lost its teeth")
	}
	if failed == 0 {
		t.Error("no submission observed the crash — test lost its teeth")
	}

	// The durability contract: recovery of the crashed medium succeeds and
	// every acknowledged commit survives it. (No torn tail in this plan:
	// WALStore acknowledges only records that reached the medium.)
	rdb, err := wal.Open(db.Crash(), init)
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	for _, id := range acked {
		if !rdb.Committed(id) {
			t.Errorf("acknowledged commit %s lost by the crash", id)
		}
	}
	if locked := stp.LockSnapshot().Locked; locked != 0 {
		t.Errorf("%d locks leaked through the crash", locked)
	}
	waitGoroutines(t, before)
}

// TestSessionPipelinedDurability runs the session over the group-commit
// pipeline — the resident finalizer path — and checks every acknowledged
// commit is durable once the pipeline is flushed and closed.
func TestSessionPipelinedDurability(t *testing.T) {
	before := runtime.NumGoroutine()
	init := map[model.EntityID]model.Value{"x": 0, "y": 0}
	db, err := wal.Open(wal.NewMedium(), init)
	if err != nil {
		t.Fatal(err)
	}
	pipe := wal.NewPipeline(db, 200*time.Microsecond)
	stp := sched.NewShardedTwoPhase(4)
	s := NewSession(Config{Seed: 2}, stp, breakpoint.Uniform{Levels: 2, C: 2}, NewPipelinedWALStore(pipe))

	const subs = 32
	var wg sync.WaitGroup
	errs := make(chan error, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := model.EntityID("x")
			if i%2 == 1 {
				x = "y"
			}
			p := &model.Scripted{Txn: model.TxnID(fmt.Sprintf("p%02d", i)), Ops: []model.Op{model.Add(x, 1)}}
			out, err := s.Submit(context.Background(), p, SubmitOpts{})
			if err != nil {
				errs <- err
			} else if !out.Committed {
				errs <- fmt.Errorf("p%02d: %+v", i, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	pipe.Close()
	for i := 0; i < subs; i++ {
		id := model.TxnID(fmt.Sprintf("p%02d", i))
		if !db.Committed(id) {
			t.Errorf("%s acknowledged but not durable", id)
		}
	}
	if vals := db.Values(); vals["x"]+vals["y"] != subs {
		t.Errorf("recovered sum %d, want %d", vals["x"]+vals["y"], subs)
	}
	waitGoroutines(t, before)
}

// TestSessionCloseAbandonsInflight: Close without Drain must unblock a
// parked submission with ErrSessionClosed promptly — the abandoned client
// never hangs — and still leak nothing.
func TestSessionCloseAbandonsInflight(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewSession(Config{}, &waitControl{}, breakpoint.Uniform{Levels: 2, C: 2}, NewVolatileStore(nil))
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), &model.Scripted{Txn: "z", Ops: []model.Op{model.Add("x", 1)}}, SubmitOpts{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it park on the wait generation
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrSessionClosed) {
			t.Errorf("abandoned submission error = %v, want ErrSessionClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned submission never returned")
	}
	waitGoroutines(t, before)
}
