package engine

import (
	"context"
	"testing"
	"time"

	"mla/internal/bank"
	"mla/internal/fault"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/telemetry"
)

func spansByCat(spans []telemetry.Span) map[string][]telemetry.Span {
	out := make(map[string][]telemetry.Span)
	for _, s := range spans {
		out[s.Cat] = append(out[s.Cat], s)
	}
	return out
}

// TestTelemetryObserverLifecycle runs a contended banking workload with the
// telemetry observer teed behind the counting observer and checks the two
// agree exactly: every engine event opened (and closed) the right number of
// spans, nothing is left open, and child spans nest inside their parents.
func TestTelemetryObserverLifecycle(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 12
	params.BankAudits = 1
	params.CreditorAudits = 1
	wl := bank.Generate(params)

	tel := telemetry.New()
	var ev EventCounts
	cfg := Config{
		Seed:     7,
		Observer: Tee(&ev, NewTelemetryObserver(tel, "lifecycle")),
		Faults:   fault.New(fault.Plan{Seed: 7, StepErrorRate: 0.05}),
	}
	res, err := Run(context.Background(), cfg, wl.Programs, sched.NewPreventer(wl.Nest, wl.Spec), wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != len(wl.Programs) {
		t.Fatalf("committed %d/%d", res.Committed, len(wl.Programs))
	}

	spans := spansByCat(tel.Trace.Spans())
	for _, s := range spans["txn"] {
		if s.Args["open"] == "true" {
			t.Errorf("txn span %q left open after the run", s.Name)
		}
	}
	// Exactly one span (or instant) per observed event, category by
	// category: the observer and the counter watched the same stream.
	checks := []struct {
		cat  string
		want int
	}{
		{"run", ev.Runs},
		{"lock-wait", ev.Waits},
		{"commit-group", ev.Groups},
		{"abort", ev.Aborts},
		{"fault", ev.Faults},
		{"gaveup", ev.GaveUps},
		{"crash", ev.Crashes},
		{"recovery", ev.Recoveries},
	}
	for _, c := range checks {
		if got := len(spans[c.cat]); got != c.want {
			t.Errorf("%s spans = %d, observer counted %d", c.cat, got, c.want)
		}
	}
	if ev.Runs != 1 {
		t.Errorf("runs = %d, want 1", ev.Runs)
	}
	if ev.Cuts == 0 {
		t.Error("no breakpoint cuts observed on a breakpoint-bearing workload")
	}
	if got := tel.Metrics.Counter("engine.steps").Value(); got != int64(ev.Steps) {
		t.Errorf("engine.steps = %d, observer counted %d", got, ev.Steps)
	}
	if got := tel.Metrics.Counter("engine.committed").Value(); got != int64(res.Committed) {
		t.Errorf("engine.committed = %d, result has %d", got, res.Committed)
	}

	// Nesting: every wait and unit span lies within its parent's bounds,
	// and parents resolve transitively up to the run span.
	byID := make(map[telemetry.SpanID]telemetry.Span)
	all := tel.Trace.Spans()
	for _, s := range all {
		byID[s.ID] = s
	}
	for _, s := range all {
		if s.Cat != "lock-wait" && s.Cat != "unit" {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("%s span %q has unknown parent %d", s.Cat, s.Name, s.Parent)
		}
		if s.Start < p.Start || s.End > p.End {
			t.Errorf("%s [%d,%d] escapes parent %s [%d,%d]", s.Cat, s.Start, s.End, p.Cat, p.Start, p.End)
		}
		hops := 0
		for cur := s; cur.Parent != 0; cur = byID[cur.Parent] {
			if _, ok := byID[cur.Parent]; !ok {
				t.Fatalf("broken parent chain from %s %q", s.Cat, s.Name)
			}
			if hops++; hops > 10 {
				t.Fatal("parent cycle")
			}
		}
	}
}

// TestTelemetryObserverCrashRecovery: one observer serves a whole crash
// plan — run spans per round, a crash instant per injected crash, and a
// recovery interval bracketing each recovery pass.
func TestTelemetryObserverCrashRecovery(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 10
	params.BankAudits = 0
	params.CreditorAudits = 0
	wl := bank.Generate(params)

	tel := telemetry.New()
	var ev EventCounts
	plan := CrashPlan{
		Cfg: Config{
			Seed:      21,
			StepDelay: 20 * time.Microsecond,
			Observer:  Tee(&ev, NewTelemetryObserver(tel, "crash")),
		},
		Spec: wl.Spec,
		Init: wl.Init,
		Faults: fault.Plan{
			Seed:         21,
			CrashAppends: []int64{5, 14},
			TearTail:     2,
		},
		NewControl: func() sched.Control { return sched.NewPreventer(wl.Nest, wl.Spec) },
	}
	out, err := RunWithCrashes(context.Background(), plan, wl.Programs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", out.Crashes)
	}
	spans := spansByCat(tel.Trace.Spans())
	if got := len(spans["run"]); got != out.Rounds {
		t.Errorf("run spans = %d, rounds = %d", got, out.Rounds)
	}
	if got := len(spans["crash"]); got != out.Crashes {
		t.Errorf("crash spans = %d, crashes = %d", got, out.Crashes)
	}
	if got := len(spans["recovery"]); got != out.Crashes {
		t.Errorf("recovery spans = %d, want %d", got, out.Crashes)
	}
	for _, s := range spans["recovery"] {
		if s.Args["open"] == "true" {
			t.Error("recovery span left open")
		}
		if s.Args["durable_commits"] == "" {
			t.Error("recovery span missing durable_commits")
		}
	}
	// Interrupted transactions were sealed by RunEnded, not leaked.
	for _, s := range spans["txn"] {
		if s.Args["open"] == "true" {
			t.Errorf("txn span %q leaked across rounds", s.Name)
		}
	}
	if got := tel.Metrics.Counter("engine.crashes").Value(); got != int64(out.Crashes) {
		t.Errorf("engine.crashes = %d, want %d", got, out.Crashes)
	}
	if got := tel.Metrics.Counter("engine.runs").Value(); got != int64(out.Rounds) {
		t.Errorf("engine.runs = %d, want %d", got, out.Rounds)
	}
}

// TestTeeFiltersDisabledTelemetry: a nil sink produces a typed-nil
// *TelemetryObserver; Tee must drop it (and collapse to the sole live
// observer) rather than hand the engine a nil receiver.
func TestTeeFiltersDisabledTelemetry(t *testing.T) {
	var ev EventCounts
	obs := Tee(&ev, NewTelemetryObserver(nil, ""))
	if obs != Observer(&ev) {
		t.Fatalf("Tee did not collapse to the live observer: %T", obs)
	}
	if Tee(NewTelemetryObserver(nil, "")) != nil {
		t.Fatal("Tee of only disabled observers should be nil")
	}
	progs := []model.Program{
		&model.Scripted{Txn: "a", Ops: []model.Op{model.Add("x", 1)}},
	}
	res, err := Run(context.Background(), Config{Seed: 1, Observer: obs}, progs,
		sched.NewTwoPhase(), nil, map[model.EntityID]model.Value{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 1 || ev.Runs != 1 {
		t.Fatalf("committed %d, runs %d", res.Committed, ev.Runs)
	}
}
