package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/conv"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/serial"
)

func mkControl(name string, n *nest.Nest, spec breakpoint.Spec) sched.Control {
	switch name {
	case "serial":
		return sched.NewSerial()
	case "2pl":
		return sched.NewTwoPhase()
	case "tso":
		return sched.NewTimestamp()
	case "prevent":
		return sched.NewPreventer(n, spec)
	case "detect":
		return sched.NewDetector(n, spec)
	}
	return sched.NewNone()
}

// TestEngineBankingAllControls is the concurrent counterpart of the
// simulator's banking test: a real goroutine-per-transaction run under each
// control must conserve money, keep audits exact, produce a valid value
// chain, and (for the sound controls) admit only correctable executions.
// Run with -race for the full payoff.
func TestEngineBankingAllControls(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 12
	params.BankAudits = 1
	params.CreditorAudits = 2
	for _, name := range []string{"serial", "2pl", "tso", "prevent", "detect"} {
		name := name
		t.Run(name, func(t *testing.T) {
			wl := bank.Generate(params)
			c := mkControl(name, wl.Nest, wl.Spec)
			// A small per-step delay forces genuine goroutine overlap.
			res, err := Run(context.Background(), Config{Seed: 7, StepDelay: 50 * time.Microsecond}, wl.Programs, c, wl.Spec, wl.Init)
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed != len(wl.Programs) {
				t.Fatalf("committed %d/%d", res.Committed, len(wl.Programs))
			}
			inv := wl.Check(res.Exec, res.Final)
			if !inv.ConservationOK {
				t.Error("money not conserved")
			}
			if inv.AuditsInexact > 0 {
				t.Errorf("%d inexact audits", inv.AuditsInexact)
			}
			if inv.TraceValid != nil {
				t.Errorf("trace invalid: %v", inv.TraceValid)
			}
			ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Error("admitted a non-correctable execution")
			}
			if name == "2pl" || name == "serial" || name == "tso" {
				if !serial.Serializable(res.Exec) {
					t.Error("serializable control produced a non-serializable execution")
				}
			}
		})
	}
}

func TestEngineCommitGroups(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 10
	params.Families = 1 // maximal within-class interleaving
	params.BankAudits = 0
	params.CreditorAudits = 0
	wl := bank.Generate(params)
	c := sched.NewPreventer(wl.Nest, wl.Spec)
	res, err := Run(context.Background(), Config{Seed: 3}, wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, g := range res.CommitGroups {
		total += g
	}
	if total != res.Committed {
		t.Errorf("commit groups cover %d of %d commits", total, res.Committed)
	}
}

func TestEngineSimpleDisjoint(t *testing.T) {
	// Disjoint transactions: no conflicts, everything must sail through.
	var progs []model.Program
	n := nest.New(2)
	for i := 0; i < 8; i++ {
		id := model.TxnID(rune('a' + i))
		progs = append(progs, &model.Scripted{Txn: id, Ops: []model.Op{
			model.Add(model.EntityID("x"+string(id)), 1),
			model.Add(model.EntityID("y"+string(id)), 2),
		}})
		n.Add(id)
	}
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	res, err := Run(context.Background(), Config{Seed: 1}, progs, sched.NewTwoPhase(), spec, map[model.EntityID]model.Value{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Errorf("disjoint workload aborted %d times", res.Aborts)
	}
	if len(res.Exec) != 16 {
		t.Errorf("steps = %d", len(res.Exec))
	}
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		if res.Final[model.EntityID("x"+id)] != 1 || res.Final[model.EntityID("y"+id)] != 2 {
			t.Errorf("final values wrong for %s", id)
		}
	}
}

func TestEngineContendedCounter(t *testing.T) {
	// All transactions increment one counter twice: final value exact.
	var progs []model.Program
	n := nest.New(2)
	const txns = 10
	for i := 0; i < txns; i++ {
		id := model.TxnID(rune('a' + i))
		progs = append(progs, &model.Scripted{Txn: id, Ops: []model.Op{
			model.Add("ctr", 1), model.Add("ctr", 1),
		}})
		n.Add(id)
	}
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	for _, name := range []string{"2pl", "detect", "prevent"} {
		c := mkControl(name, n, spec)
		res, err := Run(context.Background(), Config{Seed: 5}, progs, c, spec, map[model.EntityID]model.Value{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Final["ctr"] != 2*txns {
			t.Errorf("%s: ctr = %d, want %d", name, res.Final["ctr"], 2*txns)
		}
	}
}

// TestEngineConversations: conversations complete under the MLA controls
// with real goroutine concurrency (see internal/conv; serializable controls
// cannot run them, which TestConversationsUnderControls covers on the
// deterministic simulator).
func TestEngineConversations(t *testing.T) {
	p := conv.DefaultParams()
	p.Conversations = 3
	p.PollCap = 400 // real concurrency needs a generous poll budget
	for _, name := range []string{"prevent", "detect"} {
		wl := conv.Generate(p)
		c := mkControl(name, wl.Nest, wl.Spec)
		res, err := Run(context.Background(), Config{Seed: 11, StepDelay: 20 * time.Microsecond}, wl.Programs, c, wl.Spec, wl.Init)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := wl.Check(res.Final)
		if out.Failed > 0 {
			t.Errorf("%s: %d conversations failed under the engine", name, out.Failed)
		}
		ok, err := coherent.Correctable(res.Exec, wl.Nest, wl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s: non-correctable execution", name)
		}
	}
}

// stuckControl waits forever: used to exercise the engine's run timeout.
type stuckControl struct{ stats sched.Stats }

func (*stuckControl) Name() string             { return "stuck" }
func (*stuckControl) Begin(model.TxnID, int64) {}
func (s *stuckControl) Request(model.TxnID, int, model.EntityID) sched.Decision {
	return sched.Decision{Kind: sched.Wait}
}
func (*stuckControl) Performed(model.TxnID, int, model.EntityID, int) {}
func (*stuckControl) Finished(model.TxnID)                            {}
func (*stuckControl) Aborted([]model.TxnID)                           {}
func (s *stuckControl) Stats() *sched.Stats                           { return &s.stats }

func TestEngineTimeout(t *testing.T) {
	progs := []model.Program{
		&model.Scripted{Txn: "t", Ops: []model.Op{model.Add("x", 1)}},
	}
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	_, err := Run(context.Background(), Config{Timeout: 50 * time.Millisecond}, progs, &stuckControl{}, spec, nil)
	if err == nil {
		t.Fatal("a permanently waiting control must time out")
	}
}

// stuckProgs builds n single-step programs for forced-timeout runs.
func stuckProgs(n int) []model.Program {
	progs := make([]model.Program, n)
	for i := range progs {
		id := model.TxnID(rune('a' + i))
		progs[i] = &model.Scripted{Txn: id, Ops: []model.Op{model.Add("x", 1)}}
	}
	return progs
}

// TestEngineTimeoutLeaksNoGoroutines is the lifecycle regression test: a
// forced-timeout run must stop and join every transaction goroutine before
// Run returns — previously they spun forever on the wait generation,
// mutating the shared store after Run had already given up.
func TestEngineTimeoutLeaksNoGoroutines(t *testing.T) {
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	before := runtime.NumGoroutine()
	_, err := Run(context.Background(), Config{Timeout: 50 * time.Millisecond}, stuckProgs(8), &stuckControl{}, spec, nil)
	if err == nil {
		t.Fatal("a permanently waiting control must time out")
	}
	// Run joins its workers; allow the runtime a moment to retire them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after timeout: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEngineCancelStopsRun: caller cancellation (not just the engine's own
// timeout) must stop a stuck run promptly and leak-free.
func TestEngineCancelStopsRun(t *testing.T) {
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, Config{Timeout: 30 * time.Second}, stuckProgs(4), &stuckControl{}, spec, nil)
	if err == nil {
		t.Fatal("a cancelled run must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error should wrap context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled run took %v to return", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancel: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEngineObserverAndHistograms: the observability layer — event hooks
// fire consistently with the run's counters, and every committed
// transaction contributes one latency and one wait-time sample.
func TestEngineObserverAndHistograms(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 10
	params.BankAudits = 1
	params.CreditorAudits = 1
	wl := bank.Generate(params)
	var ev EventCounts
	c := sched.NewPreventer(wl.Nest, wl.Spec)
	res, err := Run(context.Background(), Config{Seed: 13, StepDelay: 20 * time.Microsecond, Observer: &ev}, wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Steps < len(res.Exec) {
		t.Errorf("observer saw %d steps, surviving execution has %d", ev.Steps, len(res.Exec))
	}
	if ev.Aborts != res.Aborts {
		t.Errorf("observer aborts = %d, result aborts = %d", ev.Aborts, res.Aborts)
	}
	if ev.Cascades != res.Cascades {
		t.Errorf("observer cascades = %d, result cascades = %d", ev.Cascades, res.Cascades)
	}
	if ev.Groups != len(res.CommitGroups) {
		t.Errorf("observer groups = %d, result groups = %d", ev.Groups, len(res.CommitGroups))
	}
	if len(res.Latencies) != res.Committed || len(res.WaitTimes) != res.Committed {
		t.Errorf("histograms: %d latency and %d wait samples for %d commits",
			len(res.Latencies), len(res.WaitTimes), res.Committed)
	}
	lat := res.LatencySummary()
	if lat.N != res.Committed || lat.Max < lat.P50 || lat.P50 < 0 {
		t.Errorf("latency summary inconsistent: %+v", lat)
	}
	ws := res.WaitSummary()
	if ws.N != res.Committed {
		t.Errorf("wait summary has %d samples, want %d", ws.N, res.Committed)
	}
	var totalWait time.Duration
	for _, w := range res.WaitTimes {
		totalWait += w
	}
	if totalWait > ev.WaitTime {
		t.Errorf("committed wait time %v exceeds observed total %v", totalWait, ev.WaitTime)
	}
}
