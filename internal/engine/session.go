package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/sched"
)

// Session is the engine's open-submission mode: one resident engine whose
// transactions arrive over time from many goroutines instead of as a fixed
// batch. It is what a long-lived service front-end (internal/serve) runs on.
//
// Differences from Run/RunOnStore:
//
//   - Submit admits one transaction into the already-running scheduler and
//     blocks the calling goroutine until the transaction durably commits,
//     exhausts its restart budget, hits its deadline, or its client walks
//     away. There is no whole-run timeout; bounds are per submission.
//   - Per-submission deadlines abort at breakpoints: a runnable transaction
//     finishes the unit it started before its rollback, a blocked one rolls
//     back in place (nothing partial survives a full rollback either way).
//     Deadline rollbacks are counted distinctly (Result.DeadlineAborts,
//     sched.Stats.Deadlines) from the control's own conflict aborts.
//   - Book-keeping that grows per transaction in a batch run — the step
//     trace, commit-latency samples, the transaction table — is bounded:
//     retired transactions are deleted, the trace is compacted amortized,
//     and per-commit samples are returned in each Outcome instead of
//     accumulated.
//
// Lifecycle: NewSession → Submit (any number, concurrently) → Drain (stop
// admitting, wait for in-flight submissions to resolve) → Close (stop the
// engine, join its goroutines, fire Observer.RunEnded). Close without Drain
// abandons in-flight submissions: they return ErrSessionClosed promptly and
// no goroutine leaks, but their transactions' outcomes are unreported (a
// transaction whose commit group was already submitted may still be durable
// — the engine never un-commits).
//
// A store failure or injected crash fails the whole session: the first
// error is recorded, every blocked submission returns ErrSessionClosed
// wrapping it, and new submissions are rejected. Commits acknowledged
// before the failure remain durable.
type Session struct {
	cfg Config
	e   *engine

	stopOnce sync.Once
	endOnce  sync.Once

	mu         sync.Mutex
	state      int
	inflight   int
	idle       chan struct{} // closed when draining/closed and inflight hits 0
	idleClosed bool
	cause      error // first fatal engine error; session fails closed
}

const (
	sessAccepting = iota
	sessDraining
	sessClosed
)

// ErrDraining rejects a Submit that arrives after Drain began: the session
// still resolves in-flight submissions but admits no new work.
var ErrDraining = errors.New("engine: session draining")

// ErrSessionClosed rejects Submits on (and unblocks submissions abandoned
// by) a closed session. When the session closed because the engine failed,
// the returned error wraps the cause.
var ErrSessionClosed = errors.New("engine: session closed")

// SubmitOpts bounds one submission.
type SubmitOpts struct {
	// Deadline, when non-zero, is the instant after which the transaction
	// is rolled back at its next breakpoint and reported DeadlineExceeded.
	// The Submit context's deadline, if earlier, takes precedence.
	Deadline time.Time
	// MaxRestarts overrides Config.MaxRestarts for this submission; 0 keeps
	// the session default.
	MaxRestarts int
	// Prepare, when non-nil, runs under the engine mutex after admission
	// checks and before the transaction first touches the control. It is
	// where the caller registers per-transaction metadata that the
	// breakpoint spec or an MLA control reads during the run (nest classes,
	// cut tables) — those reads happen under the same mutex, so mutation
	// here is race-free. It must not call back into the engine or block.
	Prepare func()
	// Cleanup, when non-nil, runs under the engine mutex when the
	// submission's record is retired, symmetric with Prepare.
	Cleanup func()
}

// Outcome reports how one submission resolved. Exactly one of Committed,
// DeadlineExceeded, Canceled, or GaveUp is set when the error is nil.
type Outcome struct {
	// Committed means the transaction's commit group is durable on the
	// session's store. It is the only outcome a server may acknowledge as
	// success.
	Committed bool
	// DeadlineExceeded means the submission's deadline expired and the
	// transaction was rolled back at a breakpoint (or refused a restart).
	DeadlineExceeded bool
	// Canceled means the submission's context was cancelled — the client
	// walked away — and the transaction was rolled back. A transaction
	// whose commit group was already submitted when the client left is
	// seen through and reported Committed instead: durability is never
	// abandoned mid-ack.
	Canceled bool
	// GaveUp means the restart budget was exhausted and the transaction
	// was parked (fully rolled back, holding nothing).
	GaveUp bool
	// Restarts counts the rollbacks this submission survived before
	// resolving.
	Restarts int
	// Latency is first-Begin-to-commit wall time (Committed outcomes).
	Latency time.Duration
	// Waited is total time blocked on Wait decisions across attempts.
	Waited time.Duration
}

// SessionStats is a point-in-time snapshot of the session's counters, in
// the codebase-wide Snapshot() sense: a value copy that never aliases live
// state.
type SessionStats struct {
	Committed      int
	Aborts         int
	Cascades       int
	Restarts       int
	GaveUp         int
	DeadlineAborts int
	FaultsInjected int
	Inflight       int
	Uptime         time.Duration
}

// NewSession starts a resident engine over the given control, spec, and
// store. Config.Timeout is ignored (bounds are per submission); the other
// Config fields keep their Run semantics. The caller owns the store and the
// control and must not share them with another run.
func NewSession(cfg Config, control sched.Control, spec breakpoint.Spec, store Store) *Session {
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 100 * time.Microsecond
	}
	if cfg.MaxStepRetries == 0 {
		cfg.MaxStepRetries = 6
	}
	e := &engine{
		waitGen:  make(chan struct{}),
		stop:     make(chan struct{}),
		control:  control,
		caps:     sched.CapabilitiesOf(control),
		spec:     spec,
		store:    store,
		faults:   cfg.Faults,
		obs:      cfg.Observer,
		txns:     make(map[model.TxnID]*etxn),
		author:   make(map[model.EntityID]model.TxnID),
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		resident: true,
		finWake:  make(chan struct{}, 1),
		traceCap: 1024,
	}
	e.start = time.Now()
	e.async, _ = store.(AsyncCommitter)
	e.cerr, _ = store.(CommitErrer)
	s := &Session{cfg: cfg, e: e, idle: make(chan struct{})}
	if e.async != nil {
		e.committers.Add(1)
		go e.residentFinalizer()
	}
	return s
}

// Submit admits p into the running scheduler and blocks until it resolves;
// see Outcome. Safe for concurrent use. Transaction IDs must be unique
// among in-flight submissions (a duplicate is rejected), and should be
// unique across the session's lifetime for controls that retain committed-
// transaction state (sched.Preventer).
//
// The context bounds the submission two ways: its deadline merges with
// opts.Deadline (earlier wins), and its cancellation withdraws the
// transaction at the next breakpoint — unless the commit group was already
// submitted for durability, in which case the commit is seen through and
// reported, because the record may already be on the device.
func (s *Session) Submit(ctx context.Context, p model.Program, opts SubmitOpts) (Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e := s.e
	id := p.ID()
	deadline := opts.Deadline
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	quit := ctx.Done()
	maxRestarts := opts.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = s.cfg.MaxRestarts
	}

	s.mu.Lock()
	switch s.state {
	case sessAccepting:
	case sessDraining:
		s.mu.Unlock()
		return Outcome{}, ErrDraining
	default:
		err := s.causeLocked()
		s.mu.Unlock()
		return Outcome{}, err
	}
	s.inflight++
	s.mu.Unlock()
	defer s.endInflight()

	e.mu.Lock()
	if _, dup := e.txns[id]; dup {
		e.mu.Unlock()
		return Outcome{}, fmt.Errorf("engine: session: duplicate in-flight transaction %q", id)
	}
	if opts.Prepare != nil {
		opts.Prepare()
	}
	t := e.getTxn(p, id)
	e.txns[id] = t
	e.mu.Unlock()
	defer s.retire(id, opts.Cleanup)

	for {
		if e.stopped() {
			return Outcome{}, s.failure()
		}
		// Restart boundary: a spent deadline or a gone client means we
		// refuse to begin another attempt. Nothing is live to abort — the
		// previous attempt was fully rolled back — so this is a refusal,
		// not a rollback, and is not counted in DeadlineAborts.
		if reason := expired(deadline, quit); reason != killNone {
			e.mu.Lock()
			att := t.attempt
			e.mu.Unlock()
			return killedOutcome(reason, att), nil
		}
		e.mu.Lock()
		if maxRestarts > 0 && t.attempt > maxRestarts {
			// Park, exactly like the batch path (see runTxn): fully rolled
			// back, holding nothing — including lock residue a concurrent
			// control's racing Request may have granted the dead attempt.
			t.gaveUp = true
			if e.caps.ReleaseAll != nil {
				e.caps.ReleaseAll(id)
			}
			e.stats.GaveUp++
			if e.obs != nil {
				e.obs.TxnGaveUp(id, t.attempt)
			}
			e.bump()
			restarts := t.attempt
			e.mu.Unlock()
			return Outcome{GaveUp: true, Restarts: restarts}, nil
		}
		attempt := t.attempt
		e.beginAttemptLocked(t, 0)
		cur := p.Init()
		e.mu.Unlock()

		aborted, err := e.attempt(s.cfg, id, attempt, cur, deadline, quit)
		if err != nil {
			if errors.Is(err, errStopped) {
				return Outcome{}, s.failure()
			}
			// A store failure or injected crash kills the engine, not just
			// this submission: poison the session so every other submission
			// unblocks with the cause.
			s.fail(err)
			return Outcome{}, fmt.Errorf("%w: %w", ErrSessionClosed, err)
		}
		if !aborted {
			out, resolved, rerr := s.awaitCommit(t, attempt, deadline, quit)
			if resolved || rerr != nil {
				return out, rerr
			}
			// Cascaded abort after finishing: fall through to restart.
		}
		e.mu.Lock()
		killed := t.killed
		att := t.attempt
		e.mu.Unlock()
		if killed != killNone {
			return killedOutcome(killed, attempt), nil
		}
		if !e.sleep(e.jitter(s.cfg.BackoffBase, att)) {
			return Outcome{}, s.failure()
		}
	}
}

// awaitCommit blocks until t's commit group is durable (resolved, with the
// committed Outcome), the attempt is rolled back by a cascade (not resolved
// — the caller restarts), the deadline/client gives up on a group that has
// not been submitted yet (resolved, killed), or the session stops.
func (s *Session) awaitCommit(t *etxn, attempt int, deadline time.Time, quit <-chan struct{}) (Outcome, bool, error) {
	e := s.e
	for {
		e.mu.Lock()
		if err := e.asyncErr; err != nil && !t.commit {
			// The durable medium failed while this group's ack was (or would
			// be) in flight: its durability is indeterminate, and the session
			// must not acknowledge it. Poison the session so every submission
			// resolves with the cause.
			e.mu.Unlock()
			werr := fmt.Errorf("engine: commit durability lost: %w", err)
			s.fail(werr)
			return Outcome{}, true, fmt.Errorf("%w: %w", ErrSessionClosed, werr)
		}
		if t.commit {
			out := Outcome{
				Committed: true,
				Restarts:  attempt,
				Latency:   time.Since(t.began),
				Waited:    t.waited,
			}
			e.mu.Unlock()
			return out, true, nil
		}
		if t.attempt != attempt {
			e.mu.Unlock()
			return Outcome{}, false, nil
		}
		ch := e.waitReg()
		committing := t.committing
		e.mu.Unlock()
		if committing {
			// Durable-bound: the group was submitted and its record may
			// already be on the device, so the client's deadline no longer
			// applies — see the ack through and report the truth.
			deadline, quit = time.Time{}, nil
		}
		var tm *time.Timer
		var timerC <-chan time.Time
		if !deadline.IsZero() {
			tm = time.NewTimer(time.Until(deadline))
			timerC = tm.C
		}
		reason := killNone
		select {
		case <-ch:
		case <-e.stop:
			if tm != nil {
				tm.Stop()
			}
			return Outcome{}, false, s.failure()
		case <-timerC:
			reason = killDeadline
		case <-quit:
			reason = killCanceled
		}
		if tm != nil {
			tm.Stop()
		}
		e.mu.Lock()
		e.waitDereg(ch)
		if reason == killNone {
			e.mu.Unlock()
			continue
		}
		if t.attempt == attempt && !t.commit && !t.committing {
			// Finished but its group never formed (a dependency is still
			// running) and the submission's bounds ran out: withdraw.
			e.killLocked(t, reason)
			e.mu.Unlock()
			return killedOutcome(reason, attempt), true, nil
		}
		e.mu.Unlock()
		// Committing, committed, or already rolled back meanwhile: stop
		// watching the client and resolve on the engine's terms.
		deadline, quit = time.Time{}, nil
	}
}

func killedOutcome(reason int8, restarts int) Outcome {
	return Outcome{
		DeadlineExceeded: reason == killDeadline,
		Canceled:         reason == killCanceled,
		Restarts:         restarts,
	}
}

// retire deletes the submission's transaction record (bounding the table)
// and runs the caller's Cleanup hook under the engine mutex. It also
// discards any lock residue unconditionally: on the clean outcomes the
// control already released everything (Finished/Aborted), so this is a
// no-op, but a submission abandoned mid-attempt by Close — or a racing
// concurrent-control grant to the dead attempt — must not leave a lock
// behind for a session that keeps running other tenants.
func (s *Session) retire(id model.TxnID, cleanup func()) {
	e := s.e
	e.mu.Lock()
	if e.caps.ReleaseAll != nil {
		e.caps.ReleaseAll(id)
	}
	if t, ok := e.txns[id]; ok {
		delete(e.txns, id)
		e.putTxn(t)
	}
	if cleanup != nil {
		cleanup()
	}
	e.compactTraceLocked()
	// ReleaseAll may have just freed residue locks a racing grant gave the
	// dead attempt; anyone waiting on them must re-request now — with lazy
	// (waiter-counted) wakeups there is no later bump to piggyback on in a
	// quiet session.
	e.bump()
	e.mu.Unlock()
}

func (s *Session) endInflight() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 && s.state != sessAccepting && !s.idleClosed {
		close(s.idle)
		s.idleClosed = true
	}
	s.mu.Unlock()
}

func (s *Session) causeLocked() error {
	if s.cause != nil {
		return fmt.Errorf("%w: %w", ErrSessionClosed, s.cause)
	}
	return ErrSessionClosed
}

// failure returns the error in-flight submissions resolve with once the
// session stopped.
func (s *Session) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.causeLocked()
}

// fail poisons the session with the first fatal engine error and stops it.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.cause == nil {
		s.cause = err
	}
	s.state = sessClosed
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.e.stop) })
}

// Drain stops admitting (new Submits return ErrDraining) and waits for
// in-flight submissions to resolve naturally — commit, give up, or hit
// their own deadlines; drain imposes no new ones. It returns nil once the
// session is idle, the context error if the caller's patience runs out
// first (the session stays draining; Close still works), or the session's
// failure cause if the engine died. Safe to call more than once.
func (s *Session) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.state == sessAccepting {
		s.state = sessDraining
	}
	if s.inflight == 0 && !s.idleClosed {
		close(s.idle)
		s.idleClosed = true
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-s.e.stop:
		return s.failure()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the engine (abandoning any submissions still in flight —
// Drain first for a clean shutdown), joins every goroutine the session
// started, and fires Observer.RunEnded exactly once. It returns the
// session's failure cause, if any. Safe to call more than once.
func (s *Session) Close() error {
	s.mu.Lock()
	s.state = sessClosed
	cause := s.cause
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.e.stop) })
	s.e.committers.Wait()
	s.endOnce.Do(func() {
		e := s.e
		e.mu.Lock()
		if e.obs != nil {
			e.obs.RunEnded(e.stats.Committed, e.stats.GaveUp, time.Since(e.start))
		}
		e.mu.Unlock()
	})
	return cause
}

// Stats snapshots the session's counters.
func (s *Session) Stats() SessionStats {
	e := s.e
	e.mu.Lock()
	st := SessionStats{
		Committed:      e.stats.Committed,
		Aborts:         e.stats.Aborts,
		Cascades:       e.stats.Cascades,
		Restarts:       e.stats.Restarts,
		GaveUp:         e.stats.GaveUp,
		DeadlineAborts: e.stats.DeadlineAborts,
		FaultsInjected: e.stats.FaultsInjected,
		Uptime:         time.Since(e.start),
	}
	e.mu.Unlock()
	s.mu.Lock()
	st.Inflight = s.inflight
	s.mu.Unlock()
	return st
}
