package engine

import (
	"context"
	"runtime"
	"testing"
	"time"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/fault"
	"mla/internal/model"
	"mla/internal/sched"
)

// TestEngineRunWithCrashesRecovers is the headline robustness test: a real
// concurrent banking run killed by two injected crashes, each tearing
// records off the durable tail, must recover, re-run only the uncommitted
// transactions, and still satisfy every workload invariant plus the
// offline Theorem 2 checker. Run with -race for the full payoff.
func TestEngineRunWithCrashesRecovers(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 10
	params.BankAudits = 1
	params.CreditorAudits = 1
	wl := bank.Generate(params)
	before := runtime.NumGoroutine()
	var ev EventCounts
	plan := CrashPlan{
		Cfg:  Config{Seed: 21, StepDelay: 20 * time.Microsecond, Observer: &ev},
		Spec: wl.Spec,
		Init: wl.Init,
		Faults: fault.Plan{
			Seed:         21,
			CrashAppends: []int64{5, 14},
			TearTail:     2,
		},
		NewControl: func() sched.Control { return sched.NewPreventer(wl.Nest, wl.Spec) },
	}
	out, err := RunWithCrashes(context.Background(), plan, wl.Programs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashes != 2 {
		t.Errorf("crashes = %d, want 2", out.Crashes)
	}
	if out.TornTotal == 0 {
		t.Error("no records were torn off the tail")
	}
	if out.Rounds < 3 {
		t.Errorf("rounds = %d, want at least 3", out.Rounds)
	}
	if out.Committed != len(wl.Programs) || out.GaveUp != 0 {
		t.Fatalf("committed %d/%d (gave up %d)", out.Committed, len(wl.Programs), out.GaveUp)
	}
	if ev.Crashes != out.Crashes || ev.Recoveries != out.Crashes {
		t.Errorf("observer saw %d crashes / %d recoveries, result has %d", ev.Crashes, ev.Recoveries, out.Crashes)
	}
	// Each committed transaction contributes its steps exactly once, even
	// though crashed rounds re-ran the unlucky ones.
	seen := make(map[model.StepID]bool)
	for _, s := range out.Exec {
		if seen[s.ID()] {
			t.Fatalf("step %v appears twice in the stitched execution", s.ID())
		}
		seen[s.ID()] = true
	}
	inv := wl.Check(out.Exec, out.Final)
	if !inv.ConservationOK {
		t.Error("money not conserved across crashes")
	}
	if inv.AuditsInexact > 0 {
		t.Errorf("%d inexact audits", inv.AuditsInexact)
	}
	if inv.TraceValid != nil {
		t.Errorf("stitched trace invalid: %v", inv.TraceValid)
	}
	ok, err := coherent.Correctable(out.Exec, wl.Nest, wl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("crash-recovery run admitted a non-correctable execution")
	}
	// No goroutine outlives the run — across every round.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// redoTracker flags any step performed by a transaction that already
// committed — with TearTail 0 every in-memory commit is durable, so a
// committed transaction must never run again in a later round.
type redoTracker struct {
	NopObserver
	committed map[model.TxnID]bool
	redone    []model.TxnID
}

func (r *redoTracker) StepPerformed(t model.TxnID, _ int, _ model.EntityID, _, _ int) {
	if r.committed[t] {
		r.redone = append(r.redone, t)
	}
}

func (r *redoTracker) CommitGroup(ids []model.TxnID) {
	for _, id := range ids {
		r.committed[id] = true
	}
}

func TestEngineCrashCommittedNotRedone(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 10
	params.BankAudits = 0
	params.CreditorAudits = 0
	wl := bank.Generate(params)
	tr := &redoTracker{committed: make(map[model.TxnID]bool)}
	plan := CrashPlan{
		Cfg:  Config{Seed: 5, StepDelay: 20 * time.Microsecond, Observer: tr},
		Spec: wl.Spec,
		Init: wl.Init,
		Faults: fault.Plan{
			Seed:         5,
			CrashAppends: []int64{8, 20},
			// TearTail 0: the durable log and the in-memory commit history
			// agree, so the tracker's judgement is exact.
		},
		NewControl: func() sched.Control { return sched.NewPreventer(wl.Nest, wl.Spec) },
	}
	out, err := RunWithCrashes(context.Background(), plan, wl.Programs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Committed != len(wl.Programs) {
		t.Fatalf("committed %d/%d", out.Committed, len(wl.Programs))
	}
	if len(tr.redone) > 0 {
		t.Errorf("committed transactions re-ran after recovery: %v", tr.redone)
	}
	if out.Crashes < 1 {
		t.Error("no crash fired; the test exercised nothing")
	}
}

// TestEngineWallClockCrash: the time-budget crash kills a slowed-down run
// mid-flight; recovery completes the workload.
func TestEngineWallClockCrash(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 8
	params.BankAudits = 0
	params.CreditorAudits = 0
	wl := bank.Generate(params)
	plan := CrashPlan{
		Cfg:  Config{Seed: 9, StepDelay: 5 * time.Millisecond},
		Spec: wl.Spec,
		Init: wl.Init,
		Faults: fault.Plan{
			Seed:       9,
			CrashAfter: 4 * time.Millisecond,
			TearTail:   1,
		},
		NewControl: func() sched.Control { return sched.NewPreventer(wl.Nest, wl.Spec) },
	}
	out, err := RunWithCrashes(context.Background(), plan, wl.Programs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashes != 1 {
		t.Errorf("crashes = %d, want 1 (wall-clock budget fires once)", out.Crashes)
	}
	if out.Committed != len(wl.Programs) {
		t.Fatalf("committed %d/%d", out.Committed, len(wl.Programs))
	}
	inv := wl.Check(out.Exec, out.Final)
	if !inv.ConservationOK || inv.TraceValid != nil {
		t.Errorf("invariants violated: conservation=%v trace=%v", inv.ConservationOK, inv.TraceValid)
	}
}

// TestEngineTransientFaultsRetried: a moderate transient-error rate slows
// the run but every step eventually goes through; the run completes with
// no give-ups and counts the injected faults.
func TestEngineTransientFaultsRetried(t *testing.T) {
	params := bank.DefaultParams()
	params.Transfers = 8
	params.BankAudits = 0
	params.CreditorAudits = 0
	wl := bank.Generate(params)
	var ev EventCounts
	cfg := Config{
		Seed:     3,
		Observer: &ev,
		Faults:   fault.New(fault.Plan{Seed: 3, StepErrorRate: 0.3}),
	}
	c := sched.NewPreventer(wl.Nest, wl.Spec)
	res, err := Run(context.Background(), cfg, wl.Programs, c, wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != len(wl.Programs) || res.GaveUp != 0 {
		t.Fatalf("committed %d/%d (gave up %d)", res.Committed, len(wl.Programs), res.GaveUp)
	}
	if res.FaultsInjected == 0 {
		t.Error("a 30%% error rate injected nothing")
	}
	if ev.Faults != res.FaultsInjected {
		t.Errorf("observer faults = %d, result = %d", ev.Faults, res.FaultsInjected)
	}
	inv := wl.Check(res.Exec, res.Final)
	if !inv.ConservationOK || inv.TraceValid != nil {
		t.Errorf("invariants violated under transient faults")
	}
}

// TestEngineGiveUpInsteadOfLivelock: with every step attempt failing, the
// restart budget parks each transaction and the run returns GaveUp ==
// len(programs) quickly — graceful degradation, not a timeout.
func TestEngineGiveUpInsteadOfLivelock(t *testing.T) {
	progs := []model.Program{
		&model.Scripted{Txn: "a", Ops: []model.Op{model.Add("x", 1)}},
		&model.Scripted{Txn: "b", Ops: []model.Op{model.Add("x", 2)}},
		&model.Scripted{Txn: "c", Ops: []model.Op{model.Add("y", 3)}},
	}
	var ev EventCounts
	cfg := Config{
		Seed:           1,
		Timeout:        10 * time.Second,
		MaxRestarts:    2,
		MaxStepRetries: 2,
		Observer:       &ev,
		Faults:         fault.New(fault.Plan{Seed: 1, StepErrorRate: 1.0}),
	}
	spec := breakpoint.Uniform{Levels: 2, C: 2}
	start := time.Now()
	res, err := Run(context.Background(), cfg, progs, sched.NewTwoPhase(), spec, map[model.EntityID]model.Value{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GaveUp != len(progs) || res.Committed != 0 {
		t.Fatalf("gaveUp=%d committed=%d, want %d/0", res.GaveUp, res.Committed, len(progs))
	}
	if ev.GaveUps != res.GaveUp {
		t.Errorf("observer gave-ups = %d, result = %d", ev.GaveUps, res.GaveUp)
	}
	if len(res.Exec) != 0 {
		t.Errorf("parked transactions contributed %d steps", len(res.Exec))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("give-up path took %v; should be far below the timeout", elapsed)
	}
	if res.FaultsInjected == 0 {
		t.Error("no faults recorded despite rate 1.0")
	}
}

// TestEngineCrashGiveUpTerminal: give-ups in the completing round of a
// crash plan surface in CrashResult.GaveUp rather than failing the run.
func TestEngineCrashGiveUpTerminal(t *testing.T) {
	progs := []model.Program{
		&model.Scripted{Txn: "a", Ops: []model.Op{model.Add("x", 1)}},
		&model.Scripted{Txn: "b", Ops: []model.Op{model.Add("y", 2)}},
	}
	plan := CrashPlan{
		Cfg: Config{
			Seed:           2,
			Timeout:        10 * time.Second,
			MaxRestarts:    2,
			MaxStepRetries: 2,
		},
		Spec:       breakpoint.Uniform{Levels: 2, C: 2},
		Init:       map[model.EntityID]model.Value{},
		Faults:     fault.Plan{Seed: 2, StepErrorRate: 1.0},
		NewControl: func() sched.Control { return sched.NewTwoPhase() },
	}
	out, err := RunWithCrashes(context.Background(), plan, progs)
	if err != nil {
		t.Fatal(err)
	}
	if out.GaveUp != len(progs) || out.Committed != 0 {
		t.Fatalf("gaveUp=%d committed=%d, want %d/0", out.GaveUp, out.Committed, len(progs))
	}
}
