package engine

import (
	"context"
	"errors"
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/fault"
	"mla/internal/model"
	"mla/internal/sched"
	"mla/internal/wal"
)

// CrashPlan runs a workload to completion across injected crashes, the
// concurrent counterpart of sim.CrashPlan: the engine executes on a
// WAL-backed store until the fault injector kills it (at a configured
// append count or after a wall-clock budget), the volatile state —
// control, in-flight transactions, program states — is lost, optionally
// the durable tail is torn, the WAL recovers the committed state, and a
// fresh round restarts every transaction without a durable commit.
type CrashPlan struct {
	Cfg  Config
	Spec breakpoint.Spec
	Init map[model.EntityID]model.Value
	// Faults configures the injector shared across all recovery rounds;
	// crash-append counts are cumulative over the whole run, so each
	// configured crash fires exactly once and the run provably converges.
	Faults fault.Plan
	// NewControl builds a fresh control per round (controls are volatile).
	NewControl func() sched.Control
}

// CrashResult aggregates a crash-recovery run of the concurrent engine.
type CrashResult struct {
	// Exec holds the committed steps across all rounds in performance
	// order, filtered to transactions whose commits were durable — steps
	// of a commit group torn off the log tail are excluded (those
	// transactions re-ran in a later round).
	Exec      model.Execution
	Final     map[model.EntityID]model.Value
	Rounds    int
	Crashes   int
	TornTotal int // durable records lost to torn tails across all crashes
	Committed int
	// GaveUp counts transactions parked by the final round's restart
	// budget. A crash reboots parked transactions — the operator restarts
	// the system and parked work is retried — so only the completing
	// round's give-ups are terminal.
	GaveUp int
	// RedoneTxns counts transaction attempts lost to crashes: in-flight
	// (or in-memory committed but durably torn) at a crash and restarted
	// in a later round.
	RedoneTxns     int
	Restarts       int
	FaultsInjected int
}

// RunWithCrashes executes the plan to completion. Each crash is a full
// stop: rounds are separate engine runs over the recovered durable state,
// sharing only the durable medium and the fault injector. Committed work
// is never redone — a transaction with a durable commit record is filtered
// out of every later round, and its steps survive in Exec exactly once.
func RunWithCrashes(ctx context.Context, plan CrashPlan, programs []model.Program) (*CrashResult, error) {
	if plan.NewControl == nil {
		return nil, fmt.Errorf("engine: CrashPlan.NewControl is required")
	}
	inj := fault.New(plan.Faults)
	medium := wal.NewMedium()
	out := &CrashResult{Final: map[model.EntityID]model.Value{}}
	obs := plan.Cfg.Observer
	maxRounds := plan.Faults.Crashes() + 8

	// pending holds the crashed round's in-memory committed steps; they
	// join Exec only after the next recovery confirms the commits survived
	// the torn tail.
	var pending model.Execution
	prevTodo, prevDurable := 0, 0
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, fmt.Errorf("engine: crash plan did not converge after %d rounds", round)
		}
		db, err := wal.Open(medium, plan.Init)
		if err != nil {
			return nil, fmt.Errorf("engine: recovery before round %d: %w", round, err)
		}
		// Keep only steps whose transaction is durably committed; the rest
		// belonged to commit groups lost with the torn tail and will be
		// re-executed (and re-recorded) by a later round.
		for _, s := range pending {
			if db.Committed(s.Txn) {
				out.Exec = append(out.Exec, s)
			}
		}
		pending = nil

		// Restart every transaction without a durable commit. Give-ups are
		// not carried across crashes: a reboot retries parked work with a
		// fresh restart budget.
		var todo []model.Program
		durable := 0
		for _, p := range programs {
			if db.Committed(p.ID()) {
				durable++
			} else {
				todo = append(todo, p)
			}
		}
		if round > 0 {
			// Attempts lost to the last crash: everything the crashed round
			// tried minus what it made durable (post-tear).
			out.RedoneTxns += prevTodo - (durable - prevDurable)
			if obs != nil {
				obs.Recovered(round, durable)
			}
		}
		out.Rounds = round + 1
		out.Committed = durable
		if len(todo) == 0 {
			out.Final = db.Values()
			return out, nil
		}

		cfg := plan.Cfg
		cfg.Faults = inj
		store := NewWALStore(db, inj)
		base := db.LogLen()
		res, err := RunOnStore(ctx, cfg, todo, plan.NewControl(), plan.Spec, store)
		switch {
		case err == nil:
			// Clean completion: every commit this round is durable and the
			// round's give-ups are terminal.
			out.Exec = append(out.Exec, res.Exec...)
			out.Committed += res.Committed
			out.GaveUp = res.GaveUp
			out.Restarts += res.Restarts
			out.FaultsInjected += res.FaultsInjected
			out.Final = res.Final
			return out, nil
		case errors.Is(err, fault.ErrCrash):
			out.Crashes++
			prevTodo, prevDurable = len(todo), durable
			if res != nil {
				pending = res.Exec
				out.Restarts += res.Restarts
				out.FaultsInjected += res.FaultsInjected
			}
			// Tear the tail: in-flight writes of this round never reached
			// the device. Records that survived an earlier recovery were
			// already durable, so the tear cannot reach past this round's
			// first append.
			torn := inj.TearTail()
			if n := db.LogLen() - base; torn > n {
				torn = n
			}
			medium = db.Crash()
			if torn > 0 {
				recs := medium.Records()
				keep := int64(0)
				if torn < len(recs) {
					keep = recs[len(recs)-1-torn].LSN
				}
				medium = medium.Prefix(keep)
				out.TornTotal += torn
			}
			if obs != nil {
				obs.Crashed(round, torn)
			}
		default:
			return nil, fmt.Errorf("engine: round %d: %w", round, err)
		}
	}
}
