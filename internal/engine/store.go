package engine

import (
	"mla/internal/fault"
	"mla/internal/model"
	"mla/internal/storage"
	"mla/internal/wal"
)

// Store is the engine's pluggable backend, mirroring sim.Store: the
// volatile storage.Store by default, or a WAL-backed wal.DB when
// durability and crash injection are wanted. The engine serializes every
// call under its mutex, so implementations need no locking of their own.
//
// Perform may fail: a WAL-backed store returns fault.ErrCrash when the
// fault injector decides the system dies at this append, and the engine
// abandons the run (RunWithCrashes then recovers from the durable medium).
// Commit is group-at-a-time — members of a commit group may have observed
// each other's values, so their durability must be atomic (one log record;
// see wal.DB.CommitGroup).
type Store interface {
	Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) (model.Step, error)
	Abort(set map[model.TxnID]bool) error
	CommitGroup(ids []model.TxnID)
	Values() map[model.EntityID]model.Value
}

// AsyncCommitter is the optional store capability behind the engine's
// group-commit pipelining: SubmitGroup hands the commit group to the store
// and returns a channel that closes once the group is durable (on a WAL,
// after the batched record reaches the device and syncs). The engine marks
// the group's members "committing" until the ack, so workers keep stepping
// — and later groups keep forming — while the flush is in flight.
//
// A store implementing AsyncCommitter must make groups durable in
// submission order (batching adjacent groups into one atomic record is
// fine; reordering is not): the engine lets a submitted-but-unacked
// transaction satisfy dependencies, which is sound only if its record can
// never land after its dependents'.
type AsyncCommitter interface {
	SubmitGroup(ids []model.TxnID) <-chan struct{}
}

// CommitErrer is the optional store capability for durable-medium failure
// detection: CommitErr returns the store's latched persistent write/fsync
// failure (wrapping wal.ErrDegraded), nil while healthy. The engine
// consults it after every async-commit ack — an ack that closed after the
// error latched means the group's durability is indeterminate, and the
// engine fails the run instead of acknowledging the commit.
type CommitErrer interface {
	CommitErr() error
}

// volatileStore adapts the undo-log store; Perform cannot fail.
type volatileStore struct{ s *storage.Store }

// NewVolatileStore wraps a fresh storage.Store as an engine Store.
func NewVolatileStore(init map[model.EntityID]model.Value) Store {
	return volatileStore{s: storage.New(init)}
}

func (v volatileStore) Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) (model.Step, error) {
	return v.s.Perform(t, seq, x, f), nil
}
func (v volatileStore) Abort(set map[model.TxnID]bool) error { return v.s.Abort(set) }
func (v volatileStore) CommitGroup(ids []model.TxnID) {
	for _, id := range ids {
		v.s.Commit(id)
	}
}
func (v volatileStore) Values() map[model.EntityID]model.Value { return v.s.Values() }

// WALStore backs the engine with a recoverable wal.DB and threads every
// durable append through the fault injector's crash counter. A crash
// triggered at a commit append is remembered and surfaces at the next
// Perform — the commit record itself is already durable (append precedes
// failure), exactly the torn-edge a recovery discipline must tolerate.
type WALStore struct {
	db      *wal.DB
	inj     *fault.Injector
	crashed bool
}

// NewWALStore wraps an opened wal.DB; inj may be nil (no fault injection).
func NewWALStore(db *wal.DB, inj *fault.Injector) *WALStore {
	return &WALStore{db: db, inj: inj}
}

// DB exposes the underlying wal.DB (RunWithCrashes needs the medium).
func (w *WALStore) DB() *wal.DB { return w.db }

// Crashed reports whether the injector already killed the system. The
// engine checks it before committing: a commit after the crash point would
// be volatile-only, and reporting it (observer, Result) would overstate
// what recovery can preserve.
func (w *WALStore) Crashed() bool { return w.crashed }

func (w *WALStore) Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) (model.Step, error) {
	if w.crashed {
		return model.Step{}, fault.ErrCrash
	}
	step, err := w.db.Perform(t, seq, x, f)
	if err != nil {
		// Stepping a committed transaction is an engine bug, not a fault.
		return model.Step{}, err
	}
	if w.inj.OnAppend() {
		// The update record IS durable; the volatile system dies now, and
		// no later operation of this round reaches the device.
		w.crashed = true
		return step, fault.ErrCrash
	}
	return step, nil
}

func (w *WALStore) Abort(set map[model.TxnID]bool) error {
	if w.crashed {
		return nil // the device is gone; the run is being abandoned
	}
	// Rollback appends compensation and abort-marker records; count them
	// so crash points keyed to append counts land inside rollbacks too.
	before := w.db.LogLen()
	err := w.db.Abort(set)
	for i := before; i < w.db.LogLen(); i++ {
		if w.inj.OnAppend() {
			w.crashed = true
		}
	}
	return err
}

func (w *WALStore) CommitGroup(ids []model.TxnID) {
	if w.crashed {
		return // the system is dead; nothing more becomes durable
	}
	w.db.CommitGroup(ids)
	if len(ids) > 0 && w.inj.OnAppend() {
		w.crashed = true
	}
}

func (w *WALStore) Values() map[model.EntityID]model.Value { return w.db.Values() }

// PipelinedWALStore backs the engine with a group-commit pipeline over a
// wal.DB: commit groups submitted within a flush window are merged into one
// durable record and one device sync (see wal.Pipeline). It implements
// AsyncCommitter, so the engine overlaps execution with the flush instead
// of stalling every worker on the device. No fault injection — crash
// recovery testing stays on the synchronous WALStore, whose append-counted
// crash points the injector understands.
type PipelinedWALStore struct{ p *wal.Pipeline }

// NewPipelinedWALStore wraps a running pipeline as an engine Store. The
// caller keeps ownership: close the pipeline after the run (and after
// reading Values) to flush and stop its committer goroutine.
func NewPipelinedWALStore(p *wal.Pipeline) *PipelinedWALStore {
	return &PipelinedWALStore{p: p}
}

// Pipeline exposes the underlying pipeline (for stats: flushes, batch sizes).
func (s *PipelinedWALStore) Pipeline() *wal.Pipeline { return s.p }

func (s *PipelinedWALStore) Perform(t model.TxnID, seq int, x model.EntityID, f func(model.Value) (model.Value, string)) (model.Step, error) {
	return s.p.Perform(t, seq, x, f)
}

func (s *PipelinedWALStore) Abort(set map[model.TxnID]bool) error { return s.p.Abort(set) }

// CommitGroup is the synchronous fallback (Store interface): submit and
// wait for durability. The engine prefers SubmitGroup.
func (s *PipelinedWALStore) CommitGroup(ids []model.TxnID) { <-s.p.Submit(ids) }

// SubmitGroup implements AsyncCommitter. Ordering: wal.Pipeline appends
// pending groups under one mutex and every flush drains ALL of them into a
// single atomic record, so durability follows submission order exactly as
// the contract demands.
func (s *PipelinedWALStore) SubmitGroup(ids []model.TxnID) <-chan struct{} { return s.p.Submit(ids) }

// CommitErr implements CommitErrer: the pipeline's latched durable-medium
// failure, if any.
func (s *PipelinedWALStore) CommitErr() error { return s.p.Err() }

func (s *PipelinedWALStore) Values() map[model.EntityID]model.Value { return s.p.Values() }
