package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

// TestEngineMatchesSimulatorOnCommutativeWorkloads: for increment-only
// workloads the final state is schedule independent, so the deterministic
// simulator and the concurrent engine must agree exactly — a differential
// test across the two execution substrates, under every control.
func TestEngineMatchesSimulatorOnCommutativeWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4; trial++ {
		nTxn := 4 + rng.Intn(4)
		nEnt := 2 + rng.Intn(3)
		progs := make([]model.Program, nTxn)
		n := nest.New(3)
		for i := 0; i < nTxn; i++ {
			id := model.TxnID(fmt.Sprintf("t%02d", i))
			ops := make([]model.Op, 2+rng.Intn(3))
			for j := range ops {
				ops[j] = model.Add(model.EntityID(fmt.Sprintf("x%d", rng.Intn(nEnt))), model.Value(1+rng.Intn(7)))
			}
			progs[i] = &model.Scripted{Txn: id, Ops: ops}
			n.Add(id, fmt.Sprintf("g%d", i%2))
		}
		spec := breakpoint.Uniform{Levels: 3, C: 2}

		for _, name := range []string{"2pl", "prevent", "detect", "tso", "serial"} {
			mk := func() sched.Control { return mkControl(name, n, spec) }
			simRes, err := sim.Run(sim.DefaultConfig(), progs, mk(), spec, map[model.EntityID]model.Value{})
			if err != nil {
				t.Fatalf("trial %d %s sim: %v", trial, name, err)
			}
			engRes, err := Run(context.Background(), Config{Seed: int64(trial)}, progs, mk(), spec, map[model.EntityID]model.Value{})
			if err != nil {
				t.Fatalf("trial %d %s engine: %v", trial, name, err)
			}
			for e := 0; e < nEnt; e++ {
				x := model.EntityID(fmt.Sprintf("x%d", e))
				if simRes.Final[x] != engRes.Final[x] {
					t.Errorf("trial %d %s: %s = %d (sim) vs %d (engine)",
						trial, name, x, simRes.Final[x], engRes.Final[x])
				}
			}
			if len(simRes.Exec) != len(engRes.Exec) {
				t.Errorf("trial %d %s: step counts differ: %d vs %d",
					trial, name, len(simRes.Exec), len(engRes.Exec))
			}
		}
	}
}
