package engine

import (
	"fmt"
	"time"

	"mla/internal/model"
	"mla/internal/telemetry"
)

// TelemetryObserver adapts a telemetry sink to the engine's Observer: every
// lifecycle event becomes exactly one span (intervals for run, transaction
// attempt, breakpoint unit, lock wait, and recovery; instants for abort,
// commit group, fault, give-up, and crash) plus a registry counter under
// the engine.* naming scheme. One observer serves a whole RunWithCrashes
// plan: each recovery round opens a fresh run span and Crashed/Recovered
// bracket the recovery spans between rounds.
//
// Concurrency: the engine serializes every hook (under its mutex during a
// run; between rounds for Crashed/Recovered), so the observer appends to
// one lock-free telemetry.Local and adds no locking of its own — enabled
// telemetry costs the engine nothing beyond the work recorded here, and
// disabled telemetry (nil Config.Observer) stays one nil check.
type TelemetryObserver struct {
	tel *telemetry.Telemetry
	l   *telemetry.Local
	pid int64

	run      telemetry.SpanID
	runOpen  bool
	rounds   int
	recovery telemetry.SpanID
	recOpen  bool

	lanes   map[model.TxnID]int64
	attempt map[model.TxnID]int
	txn     map[model.TxnID]telemetry.SpanID
	unit    map[model.TxnID]telemetry.SpanID
	wait    map[model.TxnID]telemetry.SpanID
}

// NewTelemetryObserver returns an observer recording into tel. label names
// the process lane in the exported trace (e.g. "hotspot/optimized@8");
// each observer gets its own lane, so several runs export side by side.
// A nil tel returns nil, which Config.Observer treats as disabled.
func NewTelemetryObserver(tel *telemetry.Telemetry, label string) *TelemetryObserver {
	if tel == nil {
		return nil
	}
	o := &TelemetryObserver{
		tel:     tel,
		l:       tel.Trace.Local(),
		pid:     tel.Trace.NextPID(),
		lanes:   make(map[model.TxnID]int64),
		attempt: make(map[model.TxnID]int),
		txn:     make(map[model.TxnID]telemetry.SpanID),
		unit:    make(map[model.TxnID]telemetry.SpanID),
		wait:    make(map[model.TxnID]telemetry.SpanID),
	}
	if label == "" {
		label = "engine"
	}
	tel.Trace.NameProcess(o.pid, label)
	tel.Trace.NameLane(o.pid, 0, "run")
	return o
}

func (o *TelemetryObserver) c(name string) *telemetry.Counter {
	return o.tel.Metrics.Counter(name)
}

func (o *TelemetryObserver) lane(t model.TxnID) int64 {
	tid, ok := o.lanes[t]
	if !ok {
		tid = int64(len(o.lanes) + 1)
		o.lanes[t] = tid
		o.tel.Trace.NameLane(o.pid, tid, string(t))
	}
	return tid
}

func (o *TelemetryObserver) ensureRun() telemetry.SpanID {
	if !o.runOpen {
		o.rounds++
		o.run = o.l.Begin("run", fmt.Sprintf("run %d", o.rounds), o.pid, 0, 0)
		o.runOpen = true
	}
	return o.run
}

func (o *TelemetryObserver) ensureTxn(t model.TxnID) telemetry.SpanID {
	id, ok := o.txn[t]
	if !ok {
		name := fmt.Sprintf("%s#%d", t, o.attempt[t])
		id = o.l.Begin("txn", name, o.pid, o.lane(t), o.ensureRun())
		o.txn[t] = id
	}
	return id
}

// closeTxn seals a transaction's open wait, unit, and attempt spans with
// the given outcome arg.
func (o *TelemetryObserver) closeTxn(t model.TxnID, outcome string) {
	if id, ok := o.wait[t]; ok {
		o.l.Arg(id, "outcome", outcome)
		o.l.End(id)
		delete(o.wait, t)
	}
	if id, ok := o.unit[t]; ok {
		o.l.End(id)
		delete(o.unit, t)
	}
	if id, ok := o.txn[t]; ok {
		o.l.Arg(id, "outcome", outcome)
		o.l.End(id)
		delete(o.txn, t)
	}
}

// StepPerformed implements Observer: steps accrete into breakpoint-unit
// spans; a positive cut closes the current unit at this step.
func (o *TelemetryObserver) StepPerformed(t model.TxnID, seq int, x model.EntityID, attempt, cut int) {
	o.c("engine.steps").Inc()
	o.attempt[t] = attempt
	parent := o.ensureTxn(t)
	id, ok := o.unit[t]
	if !ok {
		id = o.l.Begin("unit", "unit", o.pid, o.lane(t), parent, "first_step", fmt.Sprint(seq))
		o.unit[t] = id
	}
	if cut > 0 {
		o.c("engine.cuts").Inc()
		o.l.Arg(id, "cut", fmt.Sprint(cut))
		o.l.Arg(id, "last_step", fmt.Sprint(seq))
		o.l.End(id)
		delete(o.unit, t)
	}
	// The step instant makes the trace a replayable history: the importer
	// in internal/history rebuilds the execution from these.
	o.l.Event("step", fmt.Sprintf("%s[%d]", t, seq), o.pid, o.lane(t), id,
		"txn", string(t), "seq", fmt.Sprint(seq), "entity", string(x), "cut", fmt.Sprint(cut))
}

// WaitBegin implements Observer.
func (o *TelemetryObserver) WaitBegin(t model.TxnID, x model.EntityID) {
	o.c("engine.waits").Inc()
	parent := o.ensureTxn(t)
	if u, ok := o.unit[t]; ok {
		parent = u
	}
	o.wait[t] = o.l.Begin("lock-wait", "wait "+string(x), o.pid, o.lane(t), parent)
}

// WaitEnd implements Observer.
func (o *TelemetryObserver) WaitEnd(t model.TxnID, x model.EntityID, waited time.Duration) {
	o.tel.Metrics.Histogram("engine.wait_us").Observe(waited.Microseconds())
	if id, ok := o.wait[t]; ok {
		o.l.End(id)
		delete(o.wait, t)
	}
	_ = x
}

// TxnAborted implements Observer.
func (o *TelemetryObserver) TxnAborted(t model.TxnID, cascade bool) {
	o.c("engine.aborts").Inc()
	outcome := "abort"
	if cascade {
		o.c("engine.cascades").Inc()
		outcome = "cascade"
	}
	o.closeTxn(t, outcome)
	o.l.Event("abort", "abort "+string(t), o.pid, o.lane(t), o.ensureRun(),
		"txn", string(t), "cascade", fmt.Sprint(cascade))
}

// CommitGroup implements Observer.
func (o *TelemetryObserver) CommitGroup(txns []model.TxnID) {
	o.c("engine.commit_groups").Inc()
	o.c("engine.committed").Add(int64(len(txns)))
	for _, t := range txns {
		o.closeTxn(t, "commit")
	}
	o.l.Event("commit-group", fmt.Sprintf("commit group (%d)", len(txns)),
		o.pid, 0, o.ensureRun(), "size", fmt.Sprint(len(txns)), "txns", joinTxns(txns))
}

// joinTxns renders a commit group's members as one comma-joined arg value,
// the form the history importer parses back.
func joinTxns(txns []model.TxnID) string {
	var b []byte
	for i, t := range txns {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, t...)
	}
	return string(b)
}

// FaultInjected implements Observer.
func (o *TelemetryObserver) FaultInjected(t model.TxnID, seq int, try int) {
	o.c("engine.faults").Inc()
	o.l.Event("fault", "fault "+string(t), o.pid, o.lane(t), o.ensureTxn(t),
		"seq", fmt.Sprint(seq), "try", fmt.Sprint(try))
}

// TxnGaveUp implements Observer.
func (o *TelemetryObserver) TxnGaveUp(t model.TxnID, restarts int) {
	o.c("engine.gaveups").Inc()
	o.closeTxn(t, "gaveup")
	o.l.Event("gaveup", "gaveup "+string(t), o.pid, o.lane(t), o.ensureRun(),
		"restarts", fmt.Sprint(restarts))
}

// Crashed implements Observer: RunEnded has already sealed the round's
// spans (the recovery loop calls Crashed after RunOnStore returns), so the
// crash is an instant and the recovery pass opens as an interval that
// Recovered will close.
func (o *TelemetryObserver) Crashed(round int, torn int) {
	o.c("engine.crashes").Inc()
	o.l.Event("crash", fmt.Sprintf("crash round %d", round), o.pid, 0, 0,
		"torn", fmt.Sprint(torn))
	if o.recOpen {
		o.l.End(o.recovery) // defensive: recovery interrupted by a crash
	}
	o.recovery = o.l.Begin("recovery", fmt.Sprintf("recovery %d", round+1), o.pid, 0, 0)
	o.recOpen = true
}

// Recovered implements Observer.
func (o *TelemetryObserver) Recovered(round int, committed int) {
	o.c("engine.recoveries").Inc()
	if o.recOpen {
		o.l.Arg(o.recovery, "durable_commits", fmt.Sprint(committed))
		o.l.End(o.recovery)
		o.recOpen = false
		return
	}
	// No matching Crashed (defensive): record the recovery as an instant.
	o.l.Event("recovery", fmt.Sprintf("recovery %d", round), o.pid, 0, 0,
		"durable_commits", fmt.Sprint(committed))
}

// RunEnded implements Observer: seal whatever the run left open — on a
// clean run nothing, on a crash or timeout the in-flight transactions —
// and close the round's run span.
func (o *TelemetryObserver) RunEnded(committed, gaveUp int, elapsed time.Duration) {
	o.c("engine.runs").Inc()
	for t := range o.txn {
		o.closeTxn(t, "interrupted")
	}
	if o.runOpen {
		o.l.Arg(o.run, "committed", fmt.Sprint(committed))
		o.l.Arg(o.run, "gaveup", fmt.Sprint(gaveUp))
		o.l.Arg(o.run, "elapsed_us", fmt.Sprint(elapsed.Microseconds()))
		o.l.End(o.run)
		o.runOpen = false
	}
}
