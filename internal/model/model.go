// Package model defines the formal objects of Lynch's application-database
// model (Section 3 of the paper): entities (shared variables), transactions
// (deterministic automata whose atomic steps each access one entity), and
// executions (totally ordered sequences of steps), together with the
// dependency partial order ≤e and execution equivalence.
//
// A step is an arbitrary atomic read-modify-write access: the transaction
// observes the entity's current value, may update its local state, and
// writes a (possibly unchanged) value back. Reads and writes are the obvious
// special cases. Because every step both observes and writes its entity, any
// two steps on the same entity conflict, which is what the paper's
// dependency relation assumes.
package model

import (
	"fmt"
	"math/rand"
	"sort"
)

// EntityID names a database entity (the paper's "variable").
type EntityID string

// TxnID names a transaction (the paper's "process").
type TxnID string

// Value is the contents of an entity. All applications in this repository
// (bank balances, CAD plan versions, synthetic counters) use integers.
type Value int64

// StepID identifies a step as the Seq-th step (1-based) of transaction Txn.
// The paper formalizes steps of an execution of t as pairs (i, a_i); StepID
// is exactly that pair.
type StepID struct {
	Txn TxnID
	Seq int
}

func (s StepID) String() string { return fmt.Sprintf("%s[%d]", s.Txn, s.Seq) }

// Step is one atomic access in a recorded execution.
type Step struct {
	Txn    TxnID    // transaction performing the step
	Seq    int      // 1-based index of this step within its transaction
	Entity EntityID // entity accessed
	Label  string   // human-readable operation name ("withdraw", "read", …)
	Before Value    // entity value observed by the step
	After  Value    // entity value written by the step
}

// ID returns the step's identity.
func (s Step) ID() StepID { return StepID{s.Txn, s.Seq} }

func (s Step) String() string {
	return fmt.Sprintf("%s[%d]:%s(%s)%d->%d", s.Txn, s.Seq, s.Label, s.Entity, s.Before, s.After)
}

// Execution is a finite totally ordered set of steps: the order of the slice
// is the order of the execution.
type Execution []Step

// Txns returns the distinct transactions appearing in e, in order of first
// appearance.
func (e Execution) Txns() []TxnID {
	seen := make(map[TxnID]bool)
	var out []TxnID
	for _, s := range e {
		if !seen[s.Txn] {
			seen[s.Txn] = true
			out = append(out, s.Txn)
		}
	}
	return out
}

// ByTxn returns, for each transaction, the global indices of its steps in
// execution order. Within each transaction the indices are ascending and the
// Seq fields are 1..n: that is validated by Validate, not here.
func (e Execution) ByTxn() map[TxnID][]int {
	m := make(map[TxnID][]int)
	for i, s := range e {
		m[s.Txn] = append(m[s.Txn], i)
	}
	return m
}

// ByEntity returns, for each entity, the global indices of the steps that
// access it, in execution order.
func (e Execution) ByEntity() map[EntityID][]int {
	m := make(map[EntityID][]int)
	for i, s := range e {
		m[s.Entity] = append(m[s.Entity], i)
	}
	return m
}

// Steps of transaction t, in execution order.
func (e Execution) StepsOf(t TxnID) []Step {
	var out []Step
	for _, s := range e {
		if s.Txn == t {
			out = append(out, s)
		}
	}
	return out
}

// Validate checks the consistency requirements of Section 3.1: within each
// transaction the Seq numbers run 1,2,3,… in execution order, and each step
// accessing an entity observes the value written by the previous step on
// that entity (initial values are supplied by init; entities absent from
// init start at 0).
func (e Execution) Validate(init map[EntityID]Value) error {
	seq := make(map[TxnID]int)
	val := make(map[EntityID]Value)
	for x, v := range init {
		val[x] = v
	}
	for i, s := range e {
		if s.Seq != seq[s.Txn]+1 {
			return fmt.Errorf("step %d (%s): want seq %d, got %d", i, s, seq[s.Txn]+1, s.Seq)
		}
		seq[s.Txn] = s.Seq
		if cur := val[s.Entity]; cur != s.Before {
			return fmt.Errorf("step %d (%s): entity %s holds %d, step observed %d", i, s, s.Entity, cur, s.Before)
		}
		val[s.Entity] = s.After
	}
	return nil
}

// DependencyEdges returns the generator edges of the dependency partial
// order ≤e as pairs of global indices (i, j) with i < j: consecutive steps
// of the same transaction and consecutive accesses to the same entity. The
// transitive closure of these edges is exactly ≤e, because "same
// transaction" and "same entity" pairs chain through the consecutive ones.
func (e Execution) DependencyEdges() [][2]int {
	var edges [][2]int
	lastTxn := make(map[TxnID]int)
	lastEnt := make(map[EntityID]int)
	for i, s := range e {
		if j, ok := lastTxn[s.Txn]; ok {
			edges = append(edges, [2]int{j, i})
		}
		lastTxn[s.Txn] = i
		if j, ok := lastEnt[s.Entity]; ok {
			edges = append(edges, [2]int{j, i})
		}
		lastEnt[s.Entity] = i
	}
	return edges
}

// SameSteps reports whether e and f consist of exactly the same steps
// (identified by StepID, with equal entity/label/values), possibly in a
// different order.
func (e Execution) SameSteps(f Execution) bool {
	if len(e) != len(f) {
		return false
	}
	m := make(map[StepID]Step, len(e))
	for _, s := range e {
		m[s.ID()] = s
	}
	for _, s := range f {
		t, ok := m[s.ID()]
		if !ok || t != s {
			return false
		}
	}
	return true
}

// Equivalent reports whether e and f are equivalent executions in the sense
// of Section 3.1: they contain the same steps and induce the identical
// dependency relation ≤e. Because both are total orders over the same steps,
// this holds exactly when every pair of steps that share a transaction or an
// entity appears in the same relative order in both.
func (e Execution) Equivalent(f Execution) bool {
	if !e.SameSteps(f) {
		return false
	}
	pos := make(map[StepID]int, len(f))
	for i, s := range f {
		pos[s.ID()] = i
	}
	check := func(groups map[string][]int) bool {
		for _, idxs := range groups {
			for a := 0; a < len(idxs); a++ {
				for b := a + 1; b < len(idxs); b++ {
					if pos[e[idxs[a]].ID()] > pos[e[idxs[b]].ID()] {
						return false
					}
				}
			}
		}
		return true
	}
	byTxn := make(map[string][]int)
	for i, s := range e {
		byTxn["t:"+string(s.Txn)] = append(byTxn["t:"+string(s.Txn)], i)
	}
	byEnt := make(map[string][]int)
	for i, s := range e {
		byEnt["x:"+string(s.Entity)] = append(byEnt["x:"+string(s.Entity)], i)
	}
	return check(byTxn) && check(byEnt)
}

// Entities returns the distinct entities accessed by e, sorted.
func (e Execution) Entities() []EntityID {
	seen := make(map[EntityID]bool)
	for _, s := range e {
		seen[s.Entity] = true
	}
	out := make([]EntityID, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sortOrdered(out)
	return out
}

// SortTxnIDs sorts transaction IDs ascending. Victim sets, commit groups,
// and announcement fan-outs are tiny almost everywhere, so small slices use
// insertion sort — no interface calls, no closure — and only larger ones
// fall back to sort.Slice.
func SortTxnIDs(ids []TxnID) { sortOrdered(ids) }

func sortOrdered[T ~string](xs []T) {
	if len(xs) <= 24 {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Program is a deterministic transaction automaton. A fresh run starts from
// Init; each state names the entity it accesses next, and Apply consumes the
// observed value, producing the value to write, a label for the step, and
// the successor state. Conditional branching (the paper's transfer t1, whose
// later accesses depend on the balances it encounters) is expressed by
// returning different successor states for different observed values.
type Program interface {
	ID() TxnID
	Init() ProgState
}

// ProgState is one local state of a transaction automaton.
type ProgState interface {
	// Next returns the entity the transaction accesses from this state.
	// ok=false means the state is final: the transaction has finished.
	Next() (EntityID, bool)
	// Apply performs the access on observed value v, returning the value to
	// write back, the step label, and the successor state.
	Apply(v Value) (write Value, label string, next ProgState)
}

// RunSerial executes the programs one after another against vals (mutated in
// place), returning the serial execution. It is the reference semantics used
// by tests and by witness validation.
func RunSerial(programs []Program, vals map[EntityID]Value) (Execution, error) {
	var e Execution
	for _, p := range programs {
		st := p.Init()
		seq := 0
		for {
			x, ok := st.Next()
			if !ok {
				break
			}
			seq++
			if seq > 1<<20 {
				return nil, fmt.Errorf("transaction %s exceeded step limit", p.ID())
			}
			before := vals[x]
			after, label, next := st.Apply(before)
			vals[x] = after
			e = append(e, Step{Txn: p.ID(), Seq: seq, Entity: x, Label: label, Before: before, After: after})
			st = next
		}
	}
	return e, nil
}

// RandomInterleave executes all programs to completion against vals
// (mutated in place), choosing the next transaction uniformly at random
// among the unfinished ones. Unlike Interleave it handles branching
// programs, whose step counts are not known in advance.
func RandomInterleave(programs []Program, vals map[EntityID]Value, rng *rand.Rand) (Execution, error) {
	states := make([]ProgState, len(programs))
	seqs := make([]int, len(programs))
	var live []int
	for i, p := range programs {
		states[i] = p.Init()
		if _, ok := states[i].Next(); ok {
			live = append(live, i)
		}
	}
	var e Execution
	for len(live) > 0 {
		li := rng.Intn(len(live))
		pi := live[li]
		x, ok := states[pi].Next()
		if !ok {
			return nil, fmt.Errorf("live transaction %s has no next step", programs[pi].ID())
		}
		seqs[pi]++
		if seqs[pi] > 1<<20 {
			return nil, fmt.Errorf("transaction %s exceeded step limit", programs[pi].ID())
		}
		before := vals[x]
		after, label, next := states[pi].Apply(before)
		vals[x] = after
		e = append(e, Step{Txn: programs[pi].ID(), Seq: seqs[pi], Entity: x, Label: label, Before: before, After: after})
		states[pi] = next
		if _, ok := next.Next(); !ok {
			live = append(live[:li], live[li+1:]...)
		}
	}
	return e, nil
}

// Interleave replays the programs against vals (mutated in place) in the
// step order given by order: order[i] is the index into programs of the
// transaction performing the i-th global step. It returns an error if some
// transaction is asked to step after finishing or has steps remaining when
// order is exhausted (incomplete executions are permitted when allowPartial
// is true — the paper drops the fairness assumption of [LF]).
func Interleave(programs []Program, vals map[EntityID]Value, order []int, allowPartial bool) (Execution, error) {
	states := make([]ProgState, len(programs))
	seqs := make([]int, len(programs))
	for i, p := range programs {
		states[i] = p.Init()
	}
	var e Execution
	for _, pi := range order {
		if pi < 0 || pi >= len(programs) {
			return nil, fmt.Errorf("order names program %d, have %d", pi, len(programs))
		}
		x, ok := states[pi].Next()
		if !ok {
			return nil, fmt.Errorf("transaction %s stepped after finishing", programs[pi].ID())
		}
		seqs[pi]++
		before := vals[x]
		after, label, next := states[pi].Apply(before)
		vals[x] = after
		e = append(e, Step{Txn: programs[pi].ID(), Seq: seqs[pi], Entity: x, Label: label, Before: before, After: after})
		states[pi] = next
	}
	if !allowPartial {
		for i, st := range states {
			if _, ok := st.Next(); ok {
				return nil, fmt.Errorf("transaction %s has steps remaining", programs[i].ID())
			}
		}
	}
	return e, nil
}
