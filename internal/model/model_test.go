package model

import (
	"testing"
	"testing/quick"
)

func step(t TxnID, seq int, x EntityID, before, after Value) Step {
	return Step{Txn: t, Seq: seq, Entity: x, Label: "op", Before: before, After: after}
}

func TestExecutionTxnsOrder(t *testing.T) {
	e := Execution{
		step("b", 1, "x", 0, 1),
		step("a", 1, "y", 0, 1),
		step("b", 2, "y", 1, 2),
	}
	got := e.Txns()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("Txns() = %v, want [b a]", got)
	}
}

func TestByTxnAndByEntity(t *testing.T) {
	e := Execution{
		step("a", 1, "x", 0, 1),
		step("b", 1, "x", 1, 2),
		step("a", 2, "y", 0, 5),
	}
	bt := e.ByTxn()
	if len(bt["a"]) != 2 || bt["a"][0] != 0 || bt["a"][1] != 2 {
		t.Errorf("ByTxn[a] = %v", bt["a"])
	}
	be := e.ByEntity()
	if len(be["x"]) != 2 || be["x"][1] != 1 {
		t.Errorf("ByEntity[x] = %v", be["x"])
	}
}

func TestValidateAcceptsConsistent(t *testing.T) {
	e := Execution{
		step("a", 1, "x", 10, 5),
		step("b", 1, "x", 5, 7),
		step("a", 2, "y", 0, 1),
	}
	if err := e.Validate(map[EntityID]Value{"x": 10}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsSeqGap(t *testing.T) {
	e := Execution{step("a", 2, "x", 0, 1)}
	if err := e.Validate(nil); err == nil {
		t.Fatal("Validate accepted a sequence gap")
	}
}

func TestValidateRejectsValueMismatch(t *testing.T) {
	e := Execution{
		step("a", 1, "x", 10, 5),
		step("b", 1, "x", 10, 7), // observed stale value
	}
	if err := e.Validate(map[EntityID]Value{"x": 10}); err == nil {
		t.Fatal("Validate accepted a broken value chain")
	}
}

func TestDependencyEdgesChainCoverage(t *testing.T) {
	e := Execution{
		step("a", 1, "x", 0, 1),
		step("b", 1, "x", 1, 2),
		step("a", 2, "x", 2, 3),
	}
	edges := e.DependencyEdges()
	// Consecutive same-entity: (0,1), (1,2); same-txn: (0,2).
	want := map[[2]int]bool{{0, 1}: true, {1, 2}: true, {0, 2}: true}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for _, ed := range edges {
		if !want[ed] {
			t.Errorf("unexpected edge %v", ed)
		}
	}
}

func TestEquivalentReordersIndependentSteps(t *testing.T) {
	e := Execution{
		step("a", 1, "x", 0, 1),
		step("b", 1, "y", 0, 1),
	}
	f := Execution{e[1], e[0]}
	if !e.Equivalent(f) {
		t.Fatal("independent steps should be swappable")
	}
}

func TestEquivalentRejectsEntityReorder(t *testing.T) {
	e := Execution{
		step("a", 1, "x", 0, 1),
		step("b", 1, "x", 1, 2),
	}
	f := Execution{e[1], e[0]}
	if e.Equivalent(f) {
		t.Fatal("same-entity steps must keep their order")
	}
}

func TestEquivalentRejectsDifferentSteps(t *testing.T) {
	e := Execution{step("a", 1, "x", 0, 1)}
	f := Execution{step("a", 1, "y", 0, 1)}
	if e.Equivalent(f) {
		t.Fatal("different steps cannot be equivalent")
	}
}

func TestSameStepsIsOrderInsensitive(t *testing.T) {
	e := Execution{step("a", 1, "x", 0, 1), step("b", 1, "y", 0, 2)}
	f := Execution{e[1], e[0]}
	if !e.SameSteps(f) {
		t.Fatal("SameSteps should ignore order")
	}
	if !e.SameSteps(e) {
		t.Fatal("SameSteps should be reflexive")
	}
}

func TestRunSerial(t *testing.T) {
	p1 := &Scripted{Txn: "a", Ops: []Op{Add("x", -30), Add("y", 30)}}
	p2 := &Scripted{Txn: "b", Ops: []Op{Read("x")}}
	vals := map[EntityID]Value{"x": 100, "y": 0}
	e, err := RunSerial([]Program{p1, p2}, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 3 {
		t.Fatalf("got %d steps", len(e))
	}
	if vals["x"] != 70 || vals["y"] != 30 {
		t.Fatalf("vals = %v", vals)
	}
	if err := e.Validate(map[EntityID]Value{"x": 100, "y": 0}); err != nil {
		t.Fatal(err)
	}
	if e[0].Label != "withdraw" || e[1].Label != "deposit" {
		t.Errorf("labels = %q %q", e[0].Label, e[1].Label)
	}
}

func TestInterleaveRespectsOrder(t *testing.T) {
	p1 := &Scripted{Txn: "a", Ops: []Op{Add("x", 1), Add("x", 1)}}
	p2 := &Scripted{Txn: "b", Ops: []Op{Add("x", 10)}}
	vals := map[EntityID]Value{}
	e, err := Interleave([]Program{p1, p2}, vals, []int{0, 1, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if vals["x"] != 12 {
		t.Fatalf("x = %d", vals["x"])
	}
	if e[1].Txn != "b" || e[1].Before != 1 || e[1].After != 11 {
		t.Fatalf("middle step = %v", e[1])
	}
}

func TestInterleaveErrors(t *testing.T) {
	p := &Scripted{Txn: "a", Ops: []Op{Read("x")}}
	if _, err := Interleave([]Program{p}, map[EntityID]Value{}, []int{0, 0}, false); err == nil {
		t.Error("stepping past the end should error")
	}
	if _, err := Interleave([]Program{p}, map[EntityID]Value{}, []int{}, false); err == nil {
		t.Error("incomplete execution should error when allowPartial=false")
	}
	if _, err := Interleave([]Program{p}, map[EntityID]Value{}, []int{}, true); err != nil {
		t.Errorf("allowPartial should permit incompleteness: %v", err)
	}
	if _, err := Interleave([]Program{p}, map[EntityID]Value{}, []int{3}, true); err == nil {
		t.Error("out-of-range program index should error")
	}
}

// Property: any interleaving of independent single-entity counters is a
// valid execution and is equivalent to itself under Validate/Equivalent.
func TestQuickInterleavingsValidate(t *testing.T) {
	f := func(orderSeed uint8) bool {
		progs := []Program{
			&Scripted{Txn: "a", Ops: []Op{Add("x", 1), Add("y", 1)}},
			&Scripted{Txn: "b", Ops: []Op{Add("y", 2), Add("z", 2)}},
		}
		// Derive a merge order deterministically from the seed.
		var order []int
		remaining := []int{2, 2}
		s := int(orderSeed)
		for remaining[0]+remaining[1] > 0 {
			pick := s % 2
			s /= 2
			if remaining[pick] == 0 {
				pick = 1 - pick
			}
			order = append(order, pick)
			remaining[pick]--
			if s == 0 {
				s = 3
			}
		}
		vals := map[EntityID]Value{}
		e, err := Interleave(progs, vals, order, false)
		if err != nil {
			return false
		}
		return e.Validate(map[EntityID]Value{}) == nil && e.Equivalent(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScriptedOps(t *testing.T) {
	w := Write("x", 42)
	if got := w.Apply(7); got != 42 {
		t.Errorf("Write applied = %d", got)
	}
	r := Read("x")
	if r.Apply != nil {
		t.Errorf("Read should have nil transform")
	}
	a := Add("x", 5)
	if got := a.Apply(7); got != 12 {
		t.Errorf("Add applied = %d", got)
	}
	if Add("x", -1).Label != "withdraw" || Add("x", 1).Label != "deposit" {
		t.Error("Add labels wrong")
	}
}

func TestStepString(t *testing.T) {
	s := step("a", 3, "x", 1, 2)
	if s.ID() != (StepID{"a", 3}) {
		t.Errorf("ID = %v", s.ID())
	}
	if s.ID().String() != "a[3]" {
		t.Errorf("StepID.String = %q", s.ID().String())
	}
}

func TestEntitiesSorted(t *testing.T) {
	e := Execution{
		step("a", 1, "z", 0, 1),
		step("a", 2, "m", 0, 1),
		step("b", 1, "z", 1, 2),
	}
	got := e.Entities()
	if len(got) != 2 || got[0] != "m" || got[1] != "z" {
		t.Fatalf("Entities = %v", got)
	}
}

func TestStepsOf(t *testing.T) {
	e := Execution{
		step("a", 1, "x", 0, 1),
		step("b", 1, "x", 1, 2),
		step("a", 2, "y", 0, 1),
	}
	sa := e.StepsOf("a")
	if len(sa) != 2 || sa[1].Seq != 2 {
		t.Fatalf("StepsOf(a) = %v", sa)
	}
}
