package model

// Op is one scripted access: the entity to touch, a label, and a transform
// applied to the observed value to produce the written value. A nil
// transform leaves the value unchanged (a pure read).
type Op struct {
	Entity EntityID
	Label  string
	Apply  func(Value) Value
}

// Scripted is the simplest Program: a fixed, unconditional sequence of
// accesses. It covers straight-line transactions; branching transactions
// implement Program directly (see the bank package's transfer).
type Scripted struct {
	Txn TxnID
	Ops []Op
}

// ID implements Program.
func (s *Scripted) ID() TxnID { return s.Txn }

// Init implements Program.
func (s *Scripted) Init() ProgState { return scriptedState{s, 0} }

type scriptedState struct {
	p *Scripted
	i int
}

func (st scriptedState) Next() (EntityID, bool) {
	if st.i >= len(st.p.Ops) {
		return "", false
	}
	return st.p.Ops[st.i].Entity, true
}

func (st scriptedState) Apply(v Value) (Value, string, ProgState) {
	op := st.p.Ops[st.i]
	w := v
	if op.Apply != nil {
		w = op.Apply(v)
	}
	return w, op.Label, scriptedState{st.p, st.i + 1}
}

// Read returns an Op that reads x and writes the value back unchanged.
func Read(x EntityID) Op { return Op{Entity: x, Label: "read"} }

// Write returns an Op that overwrites x with v.
func Write(x EntityID, v Value) Op {
	return Op{Entity: x, Label: "write", Apply: func(Value) Value { return v }}
}

// Add returns an Op that adds d to x (withdrawals are negative deposits).
func Add(x EntityID, d Value) Op {
	label := "deposit"
	if d < 0 {
		label = "withdraw"
	}
	return Op{Entity: x, Label: label, Apply: func(v Value) Value { return v + d }}
}
