package model

import (
	"math/rand"
	"testing"
)

func TestRandomInterleaveCompletesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	progs := []Program{
		&Scripted{Txn: "a", Ops: []Op{Add("x", 1), Add("y", 1), Add("z", 1)}},
		&Scripted{Txn: "b", Ops: []Op{Add("x", 2)}},
		&Scripted{Txn: "c", Ops: []Op{Add("y", 3), Add("z", 3)}},
	}
	vals := map[EntityID]Value{}
	e, err := RandomInterleave(progs, vals, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 6 {
		t.Fatalf("steps = %d", len(e))
	}
	if vals["x"] != 3 || vals["y"] != 4 || vals["z"] != 4 {
		t.Errorf("vals = %v", vals)
	}
	if err := e.Validate(map[EntityID]Value{}); err != nil {
		t.Fatal(err)
	}
	// Per-transaction order is preserved.
	if e.StepsOf("a")[0].Entity != "x" || e.StepsOf("a")[2].Entity != "z" {
		t.Error("program order violated")
	}
}

func TestRandomInterleaveBranchingPrograms(t *testing.T) {
	// A branching program (conditional step counts) must be handled — the
	// exact step count is not known up front.
	rng := rand.New(rand.NewSource(9))
	cond := &condProg{}
	vals := map[EntityID]Value{"flag": 1}
	e, err := RandomInterleave([]Program{cond, &Scripted{Txn: "s", Ops: []Op{Read("flag")}}}, vals, rng)
	if err != nil {
		t.Fatal(err)
	}
	// flag=1 at cond's read → it takes the long branch (2 more steps).
	if got := len(e.StepsOf("cond")); got != 3 {
		t.Errorf("cond steps = %d, want 3", got)
	}
}

// condProg reads "flag"; if nonzero it performs two extra steps.
type condProg struct{}

func (*condProg) ID() TxnID       { return "cond" }
func (*condProg) Init() ProgState { return condState{0} }

type condState struct{ phase int }

func (s condState) Next() (EntityID, bool) {
	switch s.phase {
	case 0:
		return "flag", true
	case 1:
		return "a", true
	case 2:
		return "b", true
	}
	return "", false
}

func (s condState) Apply(v Value) (Value, string, ProgState) {
	if s.phase == 0 {
		if v != 0 {
			return v, "read", condState{1}
		}
		return v, "read", condState{3}
	}
	return v + 1, "work", condState{s.phase + 1}
}

func TestRunSerialStepLimit(t *testing.T) {
	// An infinite program trips the step limit instead of hanging.
	if _, err := RunSerial([]Program{infinite{}}, map[EntityID]Value{}); err == nil {
		t.Fatal("infinite program must be rejected")
	}
}

type infinite struct{}

func (infinite) ID() TxnID       { return "inf" }
func (infinite) Init() ProgState { return infState{} }

type infState struct{}

func (infState) Next() (EntityID, bool)                   { return "x", true }
func (infState) Apply(v Value) (Value, string, ProgState) { return v, "spin", infState{} }
