package model

import "sync"

// Handle is a dense integer identity assigned by an Interner: small,
// comparable, and usable as a slice index, which is what makes per-identity
// state (priorities, histogram rows, shard assignments) storable in flat
// arrays instead of string-keyed maps on hot paths.
type Handle uint32

// Mix scrambles the handle through a finalizing integer hash (the 32-bit
// splitmix/murmur finalizer). Handles are dense and assigned in first-sight
// order, so consecutive identities get consecutive handles; anything that
// buckets handles by modulus (shard routing, stripe selection) would see
// perfectly correlated placement without a mix. The mixed value is uniform
// in the low bits, stable for the life of the handle, and costs five
// arithmetic ops — no strings, no allocation.
func (h Handle) Mix() uint32 {
	x := uint32(h) + 0x9e3779b9 // avoid fixing Mix(0) == 0
	x ^= x >> 16
	x *= 0x21f0aaad
	x ^= x >> 15
	x *= 0x735a2d97
	x ^= x >> 15
	return x
}

// Interner assigns dense Handles to string-like identifiers (TxnID,
// EntityID). Handles are recycled through Release, so a long-lived session
// interning millions of transient transaction IDs keeps the handle space —
// and any slice indexed by it — bounded by the peak number of live
// identities, not by lifetime churn.
//
// Interner is safe for concurrent use; Lookup is a read-lock only.
type Interner[K ~string] struct {
	mu   sync.RWMutex
	ids  map[K]Handle
	free []Handle
	next Handle
}

// NewInterner returns an empty interner.
func NewInterner[K ~string]() *Interner[K] {
	return &Interner[K]{ids: make(map[K]Handle)}
}

// Intern returns the handle for k, assigning the lowest recycled (else the
// next fresh) handle on first sight. Interning an already-interned key
// returns its existing handle.
func (in *Interner[K]) Intern(k K) Handle {
	in.mu.RLock()
	h, ok := in.ids[k]
	in.mu.RUnlock()
	if ok {
		return h
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if h, ok = in.ids[k]; ok {
		return h
	}
	if n := len(in.free); n > 0 {
		h = in.free[n-1]
		in.free = in.free[:n-1]
	} else {
		h = in.next
		in.next++
	}
	in.ids[k] = h
	return h
}

// Lookup returns k's handle without assigning one.
func (in *Interner[K]) Lookup(k K) (Handle, bool) {
	in.mu.RLock()
	h, ok := in.ids[k]
	in.mu.RUnlock()
	return h, ok
}

// Release forgets k and recycles its handle for a future Intern. Releasing
// an unknown key is a no-op. The caller owns the invariant that no
// handle-indexed state still attributes meaning to the released handle.
func (in *Interner[K]) Release(k K) {
	in.mu.Lock()
	if h, ok := in.ids[k]; ok {
		delete(in.ids, k)
		in.free = append(in.free, h)
	}
	in.mu.Unlock()
}

// Cap returns the size any slice indexed by this interner's handles must
// have: one past the highest handle ever assigned.
func (in *Interner[K]) Cap() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return int(in.next)
}

// Len returns the number of currently interned keys.
func (in *Interner[K]) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.ids)
}
