// Package invariant evaluates data-consistency predicates at the atomic
// points of an execution. The paper deliberately shifts emphasis from data
// constraints to transaction structure ("I prefer to shift emphasis to the
// transactions themselves rather than the data"), but its examples are
// justified by implicit predicates — the bank's conserved total, the CAD
// plan's object/total equation. This package closes the loop: given an
// execution, a specification, and a predicate, it checks that the predicate
// holds at every level-L quiescent point of the Lemma 1 witness — the
// positions where every transaction of interest sits at a B(L) boundary (or
// outside the execution).
//
// For the banking specification, Conservation holds at every level-1
// quiescent point (between whole transfers) and the audit-exactness results
// follow; for CAD, the object/total equation holds at every level-2
// quiescent point (unit boundaries). The generic checker lets applications
// state such predicates directly.
package invariant

import (
	"fmt"

	"mla/internal/breakpoint"
	"mla/internal/coherent"
	"mla/internal/model"
	"mla/internal/nest"
)

// Predicate examines a value snapshot.
type Predicate func(vals map[model.EntityID]model.Value) error

// Report lists the quiescent points examined and any violations.
type Report struct {
	Points     int // quiescent points found (including start and end)
	Violations []Violation
}

// Violation records a failed evaluation.
type Violation struct {
	Position int // witness position before which the predicate failed
	Err      error
}

// Ok reports whether no violation occurred.
func (r Report) Ok() bool { return len(r.Violations) == 0 }

// CheckAtLevel verifies the predicate at every level-L quiescent point of
// the execution's witness: the witness is replayed from init, and at each
// position where *every* transaction either has not started, has finished,
// or sits exactly at a B(L) boundary, the predicate is evaluated on the
// current values. The execution must be correctable; otherwise an error is
// returned (a non-correctable execution has no meaningful atomic points).
func CheckAtLevel(e model.Execution, n *nest.Nest, spec breakpoint.Spec,
	init map[model.EntityID]model.Value, level int, p Predicate) (Report, error) {

	if level < 1 || level > n.K() {
		return Report{}, fmt.Errorf("invariant: level %d out of range [1,%d]", level, n.K())
	}
	res, err := coherent.CheckExecution(e, n, spec)
	if err != nil {
		return Report{}, err
	}
	w, ok := res.Witness()
	if !ok {
		return Report{}, fmt.Errorf("invariant: execution is not correctable")
	}

	// Per-transaction descriptions over the witness (equivalent executions
	// share per-transaction step sequences, so these match the originals).
	perTxn := make(map[model.TxnID][]model.Step)
	for _, s := range w {
		perTxn[s.Txn] = append(perTxn[s.Txn], s)
	}
	descs := make(map[model.TxnID]*breakpoint.Description, len(perTxn))
	for t, steps := range perTxn {
		descs[t] = breakpoint.Describe(spec, t, steps)
	}

	vals := make(map[model.EntityID]model.Value, len(init))
	for k, v := range init {
		vals[k] = v
	}
	placed := make(map[model.TxnID]int)

	var rep Report
	check := func(pos int) {
		rep.Points++
		if err := p(vals); err != nil {
			rep.Violations = append(rep.Violations, Violation{Position: pos, Err: err})
		}
	}
	quiescent := func() bool {
		for t, n := range placed {
			d := descs[t]
			if n == 0 || n == d.Len() {
				continue
			}
			if !d.IsCut(n, level) {
				return false
			}
		}
		return true
	}

	check(0) // the initial state is always quiescent
	for i, s := range w {
		vals[s.Entity] = s.After
		placed[s.Txn]++
		if quiescent() {
			check(i + 1)
		}
	}
	return rep, nil
}
