package invariant

import (
	"fmt"
	"testing"

	"mla/internal/bank"
	"mla/internal/breakpoint"
	"mla/internal/cad"
	"mla/internal/model"
	"mla/internal/nest"
	"mla/internal/sched"
	"mla/internal/sim"
)

// TestBankConservationAtLevel1: across a contended banking run, the total
// money is exactly conserved at every level-1 quiescent point of the
// witness (between whole transactions), even though transfers interleave
// heavily in the recorded order.
func TestBankConservationAtLevel1(t *testing.T) {
	p := bank.DefaultParams()
	p.Transfers = 10
	p.BankAudits = 1
	p.CreditorAudits = 1
	wl := bank.Generate(p)
	res, err := sim.Run(sim.DefaultConfig(), wl.Programs,
		sched.NewPreventer(wl.Nest, wl.Spec), wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	total := wl.World.Total()
	accounts := wl.World.Accounts()
	conserved := func(vals map[model.EntityID]model.Value) error {
		var sum model.Value
		for _, x := range accounts {
			sum += vals[x]
		}
		if sum != total {
			return fmt.Errorf("total %d, want %d", sum, total)
		}
		return nil
	}
	rep, err := CheckAtLevel(res.Exec, wl.Nest, wl.Spec, wl.Init, 1, conserved)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations: %+v", rep.Violations)
	}
	if rep.Points < 2 {
		t.Errorf("only %d quiescent points", rep.Points)
	}
}

// TestBankConservationFailsMidPhase: at level 3 (family members interleave
// inside transfer phases) quiescent points can catch money in transit, so
// the same predicate must report violations on a run with interleaving —
// demonstrating the checker detects as well as confirms.
func TestBankInTransitVisibleAtFinerLevels(t *testing.T) {
	// Build a tiny hand-interleaved execution: t2 interleaves at t1's phase
	// boundary (allowed at level 2), where $20 is in transit.
	t1 := &model.Scripted{Txn: "t1", Ops: []model.Op{
		model.Add("A", -20), model.Add("B", 20),
	}}
	t2 := &model.Scripted{Txn: "t2", Ops: []model.Op{
		model.Add("C", -5), model.Add("D", 5),
	}}
	wl := bankLikeSpec()
	vals := map[model.EntityID]model.Value{"A": 100, "B": 100, "C": 100, "D": 100}
	exec, err := model.Interleave([]model.Program{t1, t2}, vals, []int{0, 1, 1, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	conserved := func(v map[model.EntityID]model.Value) error {
		sum := v["A"] + v["B"] + v["C"] + v["D"]
		if sum != 400 {
			return fmt.Errorf("total %d", sum)
		}
		return nil
	}
	init := map[model.EntityID]model.Value{"A": 100, "B": 100, "C": 100, "D": 100}
	// At level 1 (whole transactions) the predicate holds everywhere.
	rep1, err := CheckAtLevel(exec, wl.n, wl.spec, init, 1, conserved)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Ok() {
		t.Errorf("level 1: %+v", rep1.Violations)
	}
	// At level 2 the phase boundary is quiescent — and money is in transit
	// there, so the predicate must fail.
	rep2, err := CheckAtLevel(exec, wl.n, wl.spec, init, 2, conserved)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Ok() {
		t.Error("level 2 should observe money in transit")
	}
	if rep2.Points <= rep1.Points {
		t.Errorf("finer level should have more quiescent points: %d vs %d", rep2.Points, rep1.Points)
	}
}

// fixture is a minimal nest/spec pair for hand-built executions: t1 and t2
// share a level-2 class; each transaction's interior boundary after its
// first step has coarseness 2. strict carries no interior breakpoints.
type fixture struct {
	n    *nest.Nest
	spec breakpoint.Spec

	strict struct {
		n    *nest.Nest
		spec breakpoint.Spec
	}
}

func bankLikeSpec() fixture {
	var f fixture
	f.n = nest.New(3)
	f.n.Add("t1", "cust")
	f.n.Add("t2", "cust")
	f.spec = breakpoint.Uniform{Levels: 3, C: 2}
	f.strict.n = nest.New(2)
	f.strict.n.Add("t1")
	f.strict.n.Add("t2")
	f.strict.spec = breakpoint.Uniform{Levels: 2, C: 2}
	return f
}

// TestCADEquationAtUnitBoundaries: the CAD object/total equation holds at
// every level-2 quiescent point (completed work units).
func TestCADEquationAtUnitBoundaries(t *testing.T) {
	p := cad.DefaultParams()
	p.Mods = 8
	p.Snapshots = 1
	wl := cad.Generate(p)
	res, err := sim.Run(sim.DefaultConfig(), wl.Programs,
		sched.NewPreventer(wl.Nest, wl.Spec), wl.Spec, wl.Init)
	if err != nil {
		t.Fatal(err)
	}
	eq := func(vals map[model.EntityID]model.Value) error {
		for s := 0; s < p.Specialties; s++ {
			var sum model.Value
			for o := 0; o < p.ObjectsPerSpec; o++ {
				sum += vals[model.EntityID(fmt.Sprintf("plan/s%02d/o%02d", s, o))]
			}
			if tot := vals[model.EntityID(fmt.Sprintf("plan/s%02d/total", s))]; sum != tot {
				return fmt.Errorf("specialty %d: objects %d, total %d", s, sum, tot)
			}
		}
		return nil
	}
	rep, err := CheckAtLevel(res.Exec, wl.Nest, wl.Spec, wl.Init, 2, eq)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations: %+v", rep.Violations)
	}
}

func TestCheckErrors(t *testing.T) {
	wl := bankLikeSpec()
	init := map[model.EntityID]model.Value{}
	// Bad level.
	if _, err := CheckAtLevel(nil, wl.n, wl.spec, init, 9, func(map[model.EntityID]model.Value) error { return nil }); err == nil {
		t.Error("bad level accepted")
	}
	// Non-correctable execution.
	bad := model.Execution{
		{Txn: "t1", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 1, Entity: "x"},
		{Txn: "t2", Seq: 2, Entity: "y"},
		{Txn: "t1", Seq: 2, Entity: "y"},
	}
	// Make the spec strict (no interior cuts) so the ping-pong is rejected.
	if _, err := CheckAtLevel(bad, wl.strict.n, wl.strict.spec, init, 1,
		func(map[model.EntityID]model.Value) error { return nil }); err == nil {
		t.Error("non-correctable execution accepted")
	}
}
