package bank

import (
	"testing"
	"testing/quick"

	"mla/internal/coherent"
	"mla/internal/model"
)

// runProgram executes a program serially against vals.
func runProgram(t *testing.T, p model.Program, vals map[model.EntityID]model.Value) model.Execution {
	t.Helper()
	e, err := model.RunSerial([]model.Program{p}, vals)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestTransferPaperE1 reproduces the paper's execution e1 of t1 (Section
// 4.3): "Access A, see $20, leave $0. Access B, see $150, leave $70.
// Access D, see $20, leave $120." — the goal is met after two withdrawals
// and nothing remains after the first deposit, so C and E are never
// accessed.
func TestTransferPaperE1(t *testing.T) {
	tr := &Transfer{
		Txn: "t1", Sources: []model.EntityID{"A", "B", "C"},
		Targets: [2]model.EntityID{"D", "E"}, Amount: 100, Reserve: 125,
	}
	vals := map[model.EntityID]model.Value{"A": 20, "B": 150, "C": 500, "D": 20, "E": 0}
	e := runProgram(t, tr, vals)
	if len(e) != 3 {
		t.Fatalf("e1 has %d steps, want 3: %v", len(e), e)
	}
	if vals["A"] != 0 || vals["B"] != 70 || vals["D"] != 120 {
		t.Errorf("balances: A=%d B=%d D=%d", vals["A"], vals["B"], vals["D"])
	}
	if vals["C"] != 500 || vals["E"] != 0 {
		t.Error("C and E must not be touched")
	}
}

// TestTransferPaperE2 reproduces the paper's execution e2: "Access A, see
// $0, leave $0. Access B, see $15, leave $0. Access C, see $70, leave $0.
// Access D, see $110, leave $125. Access E, see $30, leave $100."
func TestTransferPaperE2(t *testing.T) {
	tr := &Transfer{
		Txn: "t1", Sources: []model.EntityID{"A", "B", "C"},
		Targets: [2]model.EntityID{"D", "E"}, Amount: 100, Reserve: 125,
	}
	vals := map[model.EntityID]model.Value{"A": 0, "B": 15, "C": 70, "D": 110, "E": 30}
	e := runProgram(t, tr, vals)
	if len(e) != 5 {
		t.Fatalf("e2 has %d steps, want 5: %v", len(e), e)
	}
	want := map[model.EntityID]model.Value{"A": 0, "B": 0, "C": 0, "D": 125, "E": 100}
	for x, v := range want {
		if vals[x] != v {
			t.Errorf("%s = %d, want %d", x, vals[x], v)
		}
	}
}

// TestTransferConserves: for arbitrary balances, a transfer never creates
// or destroys money across the entities it touches.
func TestQuickTransferConserves(t *testing.T) {
	prop := func(a, b, c, d, e uint16) bool {
		tr := &Transfer{
			Txn: "t", Sources: []model.EntityID{"A", "B", "C"},
			Targets: [2]model.EntityID{"D", "E"}, Amount: 100, Reserve: 125,
		}
		vals := map[model.EntityID]model.Value{
			"A": model.Value(a % 300), "B": model.Value(b % 300), "C": model.Value(c % 300),
			"D": model.Value(d % 300), "E": model.Value(e % 300),
		}
		var before model.Value
		for _, v := range vals {
			before += v
		}
		if _, err := model.RunSerial([]model.Program{tr}, vals); err != nil {
			return false
		}
		var after model.Value
		for _, v := range vals {
			after += v
		}
		return before == after
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferStopsEarly(t *testing.T) {
	tr := &Transfer{
		Txn: "t", Sources: []model.EntityID{"A", "B", "C"},
		Targets: [2]model.EntityID{"D", "E"}, Amount: 50, Reserve: 60,
	}
	vals := map[model.EntityID]model.Value{"A": 500, "D": 0, "E": 0}
	e := runProgram(t, tr, vals)
	// One withdrawal suffices; deposit 50 into D (< reserve 60), E skipped.
	if len(e) != 2 {
		t.Fatalf("%d steps: %v", len(e), e)
	}
	if vals["A"] != 450 || vals["D"] != 50 {
		t.Errorf("A=%d D=%d", vals["A"], vals["D"])
	}
}

func TestWithdrawDoneDetection(t *testing.T) {
	tr := &Transfer{
		Txn: "t", Sources: []model.EntityID{"A", "B", "C"},
		Targets: [2]model.EntityID{"D", "E"}, Amount: 100, Reserve: 125,
	}
	// Prefix with one withdrawal of 40: phase not done.
	p1 := []model.Step{{Txn: "t", Seq: 1, Entity: "A", Label: "withdraw", Before: 40, After: 0}}
	if tr.WithdrawDone(p1) {
		t.Error("40 < 100 with sources remaining: not done")
	}
	// Collected 100: done.
	p2 := append(p1, model.Step{Txn: "t", Seq: 2, Entity: "B", Label: "withdraw", Before: 80, After: 20})
	if !tr.WithdrawDone(p2) {
		t.Error("collected 100: done")
	}
	// All three sources scanned with less than the goal: done.
	p3 := []model.Step{
		{Txn: "t", Seq: 1, Entity: "A", Label: "withdraw", Before: 1, After: 0},
		{Txn: "t", Seq: 2, Entity: "B", Label: "withdraw", Before: 1, After: 0},
		{Txn: "t", Seq: 3, Entity: "C", Label: "withdraw", Before: 1, After: 0},
	}
	if !tr.WithdrawDone(p3) {
		t.Error("all sources scanned: done")
	}
}

func TestAuditRecordsTotal(t *testing.T) {
	a := &Audit{Txn: "a", Accounts: []model.EntityID{"A", "B"}, Result: "res"}
	vals := map[model.EntityID]model.Value{"A": 30, "B": 12, "res": 0}
	e := runProgram(t, a, vals)
	if len(e) != 3 {
		t.Fatalf("%d steps", len(e))
	}
	if vals["res"] != 42 {
		t.Errorf("res = %d", vals["res"])
	}
	if e[0].Label != "read" || e[2].Label != "record" {
		t.Errorf("labels: %v", e)
	}
	// Reads must not disturb balances.
	if vals["A"] != 30 || vals["B"] != 12 {
		t.Error("audit mutated balances")
	}
}

func TestAuditRestartResets(t *testing.T) {
	// A fresh Init must reset the accumulator (regression guard against
	// shared closure state surviving a rollback-restart).
	a := &Audit{Txn: "a", Accounts: []model.EntityID{"A"}, Result: "res"}
	vals := map[model.EntityID]model.Value{"A": 5, "res": 0}
	runProgram(t, a, vals)
	vals["res"] = 0
	runProgram(t, a, vals)
	if vals["res"] != 5 {
		t.Errorf("second run recorded %d, want 5 (accumulator leaked)", vals["res"])
	}
}

func TestWorldGeometry(t *testing.T) {
	w := World{Families: 3, AccountsPerFamily: 2, InitialBalance: 10}
	if len(w.Accounts()) != 6 {
		t.Errorf("accounts = %d", len(w.Accounts()))
	}
	if len(w.FamilyAccounts(1)) != 2 {
		t.Errorf("family accounts = %d", len(w.FamilyAccounts(1)))
	}
	if w.Total() != 60 {
		t.Errorf("total = %d", w.Total())
	}
	init := w.Init()
	if len(init) != 6 || init[w.Account(2, 1)] != 10 {
		t.Errorf("init = %v", init)
	}
	if w.Account(0, 0) == w.Account(0, 1) || w.Account(0, 0) == w.Account(1, 0) {
		t.Error("account IDs must be distinct")
	}
}

func TestGenerateWorkloadShape(t *testing.T) {
	p := DefaultParams()
	wl := Generate(p)
	if len(wl.Programs) != p.Transfers+p.BankAudits+p.CreditorAudits {
		t.Fatalf("programs = %d", len(wl.Programs))
	}
	if err := wl.Nest.Validate(); err != nil {
		t.Fatal(err)
	}
	if wl.Nest.K() != 4 || wl.Spec.K() != 4 {
		t.Error("banking uses a 4-nest")
	}
	// Transfers of a common family relate at level 3; audits at level 1.
	var xferIDs []model.TxnID
	for _, pr := range wl.Programs {
		if tr, ok := wl.Transfer(pr.ID()); ok && tr != nil {
			xferIDs = append(xferIDs, pr.ID())
		}
	}
	if len(xferIDs) != p.Transfers {
		t.Fatalf("transfers = %d", len(xferIDs))
	}
	aud := wl.BankAuditIDs()
	if len(aud) != p.BankAudits {
		t.Fatalf("audits = %v", aud)
	}
	for _, x := range xferIDs {
		if wl.Nest.Level(x, aud[0]) != 1 {
			t.Errorf("transfer %s vs audit: level %d, want 1", x, wl.Nest.Level(x, aud[0]))
		}
	}
	// Determinism.
	wl2 := Generate(p)
	for i := range wl.Programs {
		if wl.Programs[i].ID() != wl2.Programs[i].ID() {
			t.Fatal("generation not deterministic")
		}
	}
}

// TestWorkloadSerialBaseline: running the generated workload serially must
// conserve money, record exact audits, and be multilevel atomic.
func TestWorkloadSerialBaseline(t *testing.T) {
	p := DefaultParams()
	p.Transfers = 8
	p.BankAudits = 2
	p.CreditorAudits = 2
	wl := Generate(p)
	vals := map[model.EntityID]model.Value{}
	for k, v := range wl.Init {
		vals[k] = v
	}
	e, err := model.RunSerial(wl.Programs, vals)
	if err != nil {
		t.Fatal(err)
	}
	inv := wl.Check(e, vals)
	if !inv.ConservationOK {
		t.Error("serial run must conserve money")
	}
	if inv.AuditsInexact != 0 {
		t.Errorf("%d inexact audits in a serial run", inv.AuditsInexact)
	}
	if inv.TraceValid != nil {
		t.Errorf("trace: %v", inv.TraceValid)
	}
	ok, err := coherent.MultilevelAtomic(e, wl.Nest, wl.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("serial run must be multilevel atomic")
	}
}

func TestCutAfterPlacesPhaseBoundary(t *testing.T) {
	p := DefaultParams()
	wl := Generate(p)
	var tr *Transfer
	for _, pr := range wl.Programs {
		if x, ok := wl.Transfer(pr.ID()); ok {
			tr = x
			break
		}
	}
	if tr == nil {
		t.Fatal("no transfer found")
	}
	// Simulate a prefix completing the withdrawal phase.
	prefix := []model.Step{{Txn: tr.Txn, Seq: 1, Entity: tr.Sources[0], Label: "withdraw",
		Before: tr.Amount + 50, After: 50}}
	if got := wl.Spec.CutAfter(tr.Txn, prefix); got != 2 {
		t.Errorf("phase boundary coarseness = %d, want 2", got)
	}
	// Mid-phase boundary is level 3.
	prefix[0].Before = 10
	prefix[0].After = 0
	if got := wl.Spec.CutAfter(tr.Txn, prefix); got != 3 {
		t.Errorf("mid-phase coarseness = %d, want 3", got)
	}
	// Audits have no interior breakpoints.
	aud := wl.BankAuditIDs()[0]
	ap := []model.Step{{Txn: aud, Seq: 1, Entity: "acct/f00/a00", Label: "read"}}
	if got := wl.Spec.CutAfter(aud, ap); got != 4 {
		t.Errorf("audit coarseness = %d, want 4", got)
	}
}

func TestSerializabilitySpecCovers(t *testing.T) {
	wl := Generate(DefaultParams())
	n2, s2 := wl.SerializabilitySpec()
	if n2.K() != 2 || s2.K() != 2 {
		t.Fatal("k=2 expected")
	}
	for _, p := range wl.Programs {
		if !n2.Has(p.ID()) {
			t.Fatalf("%s missing from k=2 nest", p.ID())
		}
	}
}
