package bank

import (
	"fmt"
	"math/rand"

	"mla/internal/breakpoint"
	"mla/internal/model"
	"mla/internal/nest"
)

// Session is the paper's motivating "very long transaction" (Section 1): a
// single logical unit — one customer's banking session — performing many
// transfers in sequence, remembering its earlier processing, while exposing
// much smaller units of atomicity. The boundary after each completed
// transfer is a class-wide (coarseness-2) breakpoint: other customers *and
// the bank audit* may interleave there, where no money is in transit.
// Boundaries inside a transfer are family-level (coarseness 3).
//
// Under serializability the whole session is one atomic unit — locks or
// dependencies span all its transfers, and concurrency collapses as
// sessions grow. Under multilevel atomicity the session's length is
// irrelevant to everyone except its own family. Experiment E12 measures
// exactly this.
type Session struct {
	Txn       model.TxnID
	Family    int
	Transfers []Transfer // parameter blocks, executed in order
}

// ID implements model.Program.
func (s *Session) ID() model.TxnID { return s.Txn }

// Init implements model.Program.
func (s *Session) Init() model.ProgState {
	return sessionState{s: s, inner: s.Transfers[0].Init()}
}

type sessionState struct {
	s     *Session
	idx   int // current transfer
	inner model.ProgState
}

func (st sessionState) Next() (model.EntityID, bool) {
	if x, ok := st.inner.Next(); ok {
		return x, true
	}
	// Current transfer finished; more to come?
	if st.idx+1 < len(st.s.Transfers) {
		ns := st.advance()
		return ns.Next()
	}
	return "", false
}

func (st sessionState) advance() sessionState {
	return sessionState{s: st.s, idx: st.idx + 1, inner: st.s.Transfers[st.idx+1].Init()}
}

func (st sessionState) Apply(v model.Value) (model.Value, string, model.ProgState) {
	if _, ok := st.inner.Next(); !ok {
		// The exposed Next() already advanced past a finished transfer;
		// keep Apply consistent by advancing here too.
		return st.advance().Apply(v)
	}
	w, label, ni := st.inner.Apply(v)
	ns := sessionState{s: st.s, idx: st.idx, inner: ni}
	if _, more := ni.Next(); !more {
		// Last step of the current transfer: mark the step so the
		// breakpoint specification can place the class-wide boundary.
		label = "xfer-end"
		if st.idx+1 < len(st.s.Transfers) {
			ns = ns.advance()
		}
	}
	return w, label, ns
}

// SessionParams configures a sessioned banking workload.
type SessionParams struct {
	Families          int
	AccountsPerFamily int
	InitialBalance    model.Value

	Sessions      int // concurrent customer sessions
	SessionLength int // transfers per session
	BankAudits    int

	// CrossFamilyPct is the percentage of transfers whose deposit targets
	// lie in another family ("transfers of money from the accounts of one
	// family to the accounts of another family are also fairly common").
	CrossFamilyPct int

	Amount  model.Value
	Reserve model.Value
	Seed    int64
}

// DefaultSessionParams returns a medium configuration.
func DefaultSessionParams() SessionParams {
	return SessionParams{
		Families:          3,
		AccountsPerFamily: 4,
		InitialBalance:    1000,
		Sessions:          8,
		SessionLength:     4,
		BankAudits:        1,
		CrossFamilyPct:    30,
		Amount:            100,
		Reserve:           125,
		Seed:              1,
	}
}

// SessionWorkload bundles a sessioned run. The 4-nest differs from the
// plain banking workload: audits share the level-2 class with the customers
// (they may interleave at session transfer boundaries, where totals are
// consistent) instead of being isolated at level 1.
type SessionWorkload struct {
	World    World
	Params   SessionParams
	Programs []model.Program
	Nest     *nest.Nest
	Spec     breakpoint.Spec
	Init     map[model.EntityID]model.Value

	sessions map[model.TxnID]*Session
	audits   map[model.TxnID]*Audit
}

// GenerateSessions builds a deterministic sessioned workload.
func GenerateSessions(p SessionParams) *SessionWorkload {
	rng := rand.New(rand.NewSource(p.Seed))
	w := World{Families: p.Families, AccountsPerFamily: p.AccountsPerFamily, InitialBalance: p.InitialBalance}
	wl := &SessionWorkload{
		World:    w,
		Params:   p,
		Init:     w.Init(),
		sessions: make(map[model.TxnID]*Session),
		audits:   make(map[model.TxnID]*Audit),
	}
	n := nest.New(4)
	var programs []model.Program
	for i := 0; i < p.Sessions; i++ {
		f := rng.Intn(p.Families)
		id := model.TxnID(fmt.Sprintf("sess-%03d", i))
		s := &Session{Txn: id, Family: f}
		for j := 0; j < p.SessionLength; j++ {
			// Sources within the family; targets anywhere.
			srcIdx := rng.Perm(p.AccountsPerFamily)
			nsrc := 3
			if nsrc > p.AccountsPerFamily {
				nsrc = p.AccountsPerFamily
			}
			var sources []model.EntityID
			for _, ai := range srcIdx[:nsrc] {
				sources = append(sources, w.Account(f, ai))
			}
			tf := f
			if p.Families > 1 && rng.Intn(100) < p.CrossFamilyPct {
				for tf == f {
					tf = rng.Intn(p.Families)
				}
			}
			targets := [2]model.EntityID{
				w.Account(tf, rng.Intn(p.AccountsPerFamily)),
				w.Account(tf, rng.Intn(p.AccountsPerFamily)),
			}
			s.Transfers = append(s.Transfers, Transfer{
				Txn: id, Family: f, Sources: sources, Targets: targets,
				Amount: p.Amount, Reserve: p.Reserve,
			})
		}
		wl.sessions[id] = s
		programs = append(programs, s)
		n.Add(id, "cust", fmt.Sprintf("fam-%02d", f))
	}
	for i := 0; i < p.BankAudits; i++ {
		id := model.TxnID(fmt.Sprintf("audit-%03d", i))
		a := &Audit{Txn: id, Accounts: w.Accounts(), Result: model.EntityID("auditres/" + string(id))}
		wl.audits[id] = a
		wl.Init[a.Result] = 0
		programs = append(programs, a)
		// Audits live beside the customers at level 2: they may interleave
		// at session transfer boundaries (consistent totals) but never
		// inside a transfer.
		n.Add(id, "cust", "audit/"+string(id))
	}
	rng.Shuffle(len(programs), func(i, j int) { programs[i], programs[j] = programs[j], programs[i] })
	wl.Programs = programs
	wl.Nest = n
	wl.Spec = breakpoint.Func{Levels: 4, Fn: wl.cutAfter}
	return wl
}

// cutAfter: the boundary after a completed transfer ("xfer-end") is
// class-wide (2); every other interior boundary of a session is
// family-level (3); audits expose no interior breakpoints.
func (wl *SessionWorkload) cutAfter(t model.TxnID, prefix []model.Step) int {
	if _, ok := wl.sessions[t]; ok {
		if prefix[len(prefix)-1].Label == "xfer-end" {
			return 2
		}
		return 3
	}
	return 4
}

// Check evaluates the sessioned invariants: conservation, audit exactness
// (audits interleave only where no money is in transit), and value-chain
// validity.
func (wl *SessionWorkload) Check(exec model.Execution, final map[model.EntityID]model.Value) Invariants {
	inv := Invariants{Expected: wl.World.Total()}
	var total model.Value
	for _, x := range wl.World.Accounts() {
		total += final[x]
	}
	inv.ConservationOK = total == inv.Expected
	for _, a := range wl.audits {
		if final[a.Result] == inv.Expected {
			inv.AuditsExact++
		} else {
			inv.AuditsInexact++
		}
	}
	inv.TraceValid = exec.Validate(wl.Init)
	return inv
}

// SessionIDs returns the session transaction IDs, sorted.
func (wl *SessionWorkload) SessionIDs() []model.TxnID {
	var out []model.TxnID
	for id := range wl.sessions {
		out = append(out, id)
	}
	sortTxnIDs(out)
	return out
}
